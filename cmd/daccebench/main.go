// Command daccebench regenerates the paper's evaluation artifacts:
//
//	daccebench table1 [-calls N] [-bench name,name]   Table 1
//	daccebench fig8   [-calls N] [-bench ...]         Figure 8 overhead
//	daccebench fig9   [-calls N] [-bench ...]         Figure 9 progress series
//	daccebench fig10  [-calls N] [-bench ...]         Figure 10 depth CDFs
//	daccebench steady [-threads 1,2,4,8] [-compare]   steady-state scalability suite
//	daccebench warmup [-threads 1,2,4,8] [-compare]   cold-start scalability suite
//	daccebench all    [-calls N]                      everything
//
// Every subcommand accepts -cpuprofile/-memprofile (pprof output) and
// -bench-json (machine-readable results; the steady suite's JSON is
// the committed BENCH_steady_state.json format). Results print to
// stdout; progress goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dacce/internal/cliutil"
	"dacce/internal/experiments"
	"dacce/internal/workload"
)

func main() {
	// Dispatch through run so deferred profile writers flush before the
	// process exits — os.Exit skips defers.
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	calls := fs.Int64("calls", 0, "calls per benchmark (0 = profile default)")
	benchList := fs.String("bench", "", "comma-separated benchmark subset")
	sample := fs.Int64("sample", 256, "sampling period in calls")
	profileFile := fs.String("profiles", "", "JSON file of custom workload profiles (see 'daccebench dump-profiles')")
	tel := cliutil.AddTelemetry(fs)
	state := cliutil.AddState(fs)
	version := cliutil.AddVersion(fs)
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON := fs.String("bench-json", "", "write machine-readable results (JSON) to this file")
	threadsFlag := fs.String("threads", "", "steady: comma-separated thread counts (default 1,2,4,8)")
	compare := fs.Bool("compare", false, "steady/warmup: also run the mutex-serialized comparison build and report speedups")
	noReplay := fs.Bool("no-replay", false, "warmup: skip the warm-start replay rows")
	_ = fs.Parse(os.Args[2:])

	if *version || cmd == "-version" || cmd == "version" {
		cliutil.PrintVersion("daccebench")
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "daccebench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "daccebench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "daccebench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "daccebench:", err)
			}
		}()
	}

	if cmd == "dump-profiles" {
		if err := workload.WriteProfiles(os.Stdout, workload.Profiles()); err != nil {
			fmt.Fprintln(os.Stderr, "daccebench:", err)
			return 1
		}
		return 0
	}

	// Telemetry sinks aggregate across every benchmark run the
	// subcommand performs; snapshots are written once on the way out.
	cfg := experiments.RunConfig{Calls: *calls, SampleEvery: *sample, Sink: tel.Sink()}
	var err error
	profiles := func() []workload.Profile {
		if *profileFile != "" {
			ps, err := workload.LoadProfilesFile(*profileFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "daccebench:", err)
				os.Exit(1)
			}
			return ps
		}
		return selectProfiles(*benchList)
	}

	if state.Active() && cmd != "steady" {
		fmt.Fprintln(os.Stderr, "daccebench: -save-state/-load-state only apply to the steady subcommand")
		return 2
	}

	switch cmd {
	case "table1":
		err = runTable1(profiles(), cfg, false)
	case "fig8":
		err = runTable1(profiles(), cfg, true)
	case "fig9":
		err = runFig9(names(*benchList, experiments.Fig9Names), cfg)
	case "fig10":
		err = runFig10(names(*benchList, experiments.Fig10Names), cfg)
	case "report":
		out := "EXPERIMENTS.md"
		if args := fs.Args(); len(args) > 0 {
			out = args[0]
		}
		err = runReport(out, cfg)
	case "steady":
		err = runSteady(*threadsFlag, *calls, *sample, *compare, *benchJSON, state)
	case "warmup":
		err = runWarmup(*threadsFlag, *calls, *sample, *compare, *noReplay, *benchJSON)
	case "all":
		if err = runTable1(profiles(), cfg, true); err == nil {
			if err = runFig9(experiments.Fig9Names, cfg); err == nil {
				err = runFig10(experiments.Fig10Names, cfg)
			}
		}
	default:
		usage()
		return 2
	}
	if err == nil {
		err = tel.Finish(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "daccebench:", err)
		return 1
	}
	return 0
}

// runSteady drives the multi-threaded steady-state scalability suite
// and renders a summary table; -bench-json additionally writes the full
// report in the BENCH_steady_state.json format.
func runSteady(threadsCSV string, callsPerThread, sampleEvery int64, compare bool, jsonOut string, state *cliutil.State) error {
	cfg := experiments.SteadyConfig{
		CallsPerThread: callsPerThread,
		SampleEvery:    sampleEvery,
		Compare:        compare,
		LoadState:      state.Load,
		SaveState:      state.Save,
	}
	// The shared -sample default (256) suits the figure benchmarks; the
	// steady suite wants its own aggressive default so the sampling
	// controller is part of the measured load.
	if sampleEvery == 256 {
		cfg.SampleEvery = 0
	}
	if threadsCSV != "" {
		for _, part := range strings.Split(threadsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -threads value %q", part)
			}
			cfg.Threads = append(cfg.Threads, n)
		}
	}
	rep, err := experiments.SteadyState(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Steady-state scalability (GOMAXPROCS=%d, NumCPU=%d)\n", rep.GoMaxProcs, rep.NumCPU)
	fmt.Printf("%-8s %-11s %-7s %14s %14s %8s %7s\n",
		"threads", "mode", "phase", "calls/s", "allocs/call", "traps", "epochs")
	for _, r := range rep.Rows {
		fmt.Printf("%-8d %-11s %-7s %14.0f %14.4f %8d %7d\n",
			r.Threads, r.Mode, r.Phase, r.CallsPerSec, r.AllocsPerCall, r.HandlerTraps, r.Epochs)
	}
	for _, n := range rep.Config.Threads {
		k := fmt.Sprint(n)
		if s, ok := rep.Scaling[k]; ok {
			line := fmt.Sprintf("threads=%s scaling=%.2fx", k, s)
			if sp, ok := rep.Speedup[k]; ok {
				line += fmt.Sprintf(" speedup-vs-serialized=%.2fx", sp)
			}
			fmt.Println(line)
		}
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "steady report written to", jsonOut)
	}
	return nil
}

// runWarmup drives the cold-start scalability suite and renders a
// summary table; -bench-json additionally writes the full report in the
// BENCH_warmup.json format.
func runWarmup(threadsCSV string, callsPerThread, sampleEvery int64, compare, noReplay bool, jsonOut string) error {
	cfg := experiments.WarmupConfig{
		CallsPerThread: callsPerThread,
		Compare:        compare,
		NoReplay:       noReplay,
	}
	// The shared -sample default (256) suits the figure benchmarks; the
	// warmup suite has its own default (64).
	if sampleEvery != 256 {
		cfg.SampleEvery = sampleEvery
	}
	if threadsCSV != "" {
		for _, part := range strings.Split(threadsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -threads value %q", part)
			}
			cfg.Threads = append(cfg.Threads, n)
		}
	}
	rep, err := experiments.Warmup(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Cold-start scalability (GOMAXPROCS=%d, NumCPU=%d)\n", rep.GoMaxProcs, rep.NumCPU)
	fmt.Printf("%-8s %-8s %-7s %12s %8s %7s %7s %12s %14s\n",
		"threads", "mode", "phase", "traps/s", "traps", "edges", "passes", "stable-ms", "calls/s")
	for _, r := range rep.Rows {
		fmt.Printf("%-8d %-8s %-7s %12.0f %8d %7d %7d %12.2f %14.0f\n",
			r.Threads, r.Mode, r.Phase, r.TrapsPerSec, r.HandlerTraps, r.EdgesDiscovered,
			r.Passes, r.TimeToStableMs, r.CallsPerSec)
	}
	for _, n := range rep.Config.Threads {
		k := fmt.Sprint(n)
		var parts []string
		if sp, ok := rep.TrapSpeedup[k]; ok {
			parts = append(parts, fmt.Sprintf("trap-speedup-vs-global=%.2fx", sp))
		}
		if tr, ok := rep.ReplayTraps[k]; ok {
			parts = append(parts, fmt.Sprintf("replay-traps=%d", tr))
		}
		if len(parts) > 0 {
			fmt.Printf("threads=%s %s\n", k, strings.Join(parts, " "))
		}
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "warmup report written to", jsonOut)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: daccebench {table1|fig8|fig9|fig10|steady|warmup|all|report [file]|dump-profiles|version} [-calls N] [-bench a,b] [-sample N] [-threads 1,2,4,8] [-compare] [-no-replay] [-save-state file] [-load-state file] [-profiles file.json] [-metrics] [-metrics-format prom|json] [-trace-out file.json] [-flight-recorder N] [-cpuprofile file] [-memprofile file] [-bench-json file]")
}

func runReport(path string, cfg experiments.RunConfig) error {
	if cfg.Calls == 0 {
		cfg.Calls = 300_000
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteReport(f, cfg, os.Stderr); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "report written to", path)
	return nil
}

func selectProfiles(list string) []workload.Profile {
	if list == "" {
		return workload.Profiles()
	}
	var out []workload.Profile
	for _, n := range strings.Split(list, ",") {
		pr, ok := workload.ByName(strings.TrimSpace(n))
		if !ok {
			fmt.Fprintf(os.Stderr, "daccebench: unknown benchmark %q (see workload.Names)\n", n)
			os.Exit(2)
		}
		out = append(out, pr)
	}
	return out
}

func names(list string, def []string) []string {
	if list == "" {
		return def
	}
	parts := strings.Split(list, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func runTable1(profiles []workload.Profile, cfg experiments.RunConfig, fig8 bool) error {
	rows, err := experiments.Table1(profiles, cfg, os.Stderr)
	if err != nil {
		return err
	}
	if fig8 {
		fmt.Println("# Figure 8: runtime overhead (cost model), PCCE vs DACCE")
		return experiments.RenderFig8(rows, os.Stdout)
	}
	fmt.Println("# Table 1: characteristics under PCCE and DACCE")
	return experiments.RenderTable1(rows, os.Stdout)
}

func runFig9(benchNames []string, cfg experiments.RunConfig) error {
	for _, n := range benchNames {
		s, err := experiments.Fig9(n, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# Figure 9: encoding progress — %s\n", n)
		if err := s.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig10(benchNames []string, cfg experiments.RunConfig) error {
	for _, n := range benchNames {
		s, err := experiments.Fig10(n, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# Figure 10: cumulative stack-depth distribution — %s\n", n)
		if err := s.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
