// Command daccebench regenerates the paper's evaluation artifacts:
//
//	daccebench table1 [-calls N] [-bench name,name]   Table 1
//	daccebench fig8   [-calls N] [-bench ...]         Figure 8 overhead
//	daccebench fig9   [-calls N] [-bench ...]         Figure 9 progress series
//	daccebench fig10  [-calls N] [-bench ...]         Figure 10 depth CDFs
//	daccebench steady [-threads 1,2,4,8] [-compare]   steady-state scalability suite
//	daccebench warmup [-threads 1,2,4,8] [-compare]   cold-start scalability suite
//	daccebench obs    [-threads 1,2,4]                observability-overhead suite
//	daccebench stream [-samples 1000000]              streaming-decode firehose suite
//	daccebench evict  [-rounds 120]                   epoch-retirement reclamation suite
//	daccebench adversarial [-targets 2,16,1024]       adversarial-workload suite
//	daccebench pause  [-edges 10000,1000000]          pause-vs-graph-size suite
//	daccebench all    [-calls N]                      everything
//
// Every subcommand accepts -cpuprofile/-memprofile (pprof output) and
// -bench-json (machine-readable results; the steady suite's JSON is
// the committed BENCH_steady_state.json format, the obs suite's the
// committed BENCH_observability.json format). Results print to stdout;
// progress goes to stderr.
//
// `steady -ccprof-out FILE` attaches the always-on streaming context
// profiler to the measured encoder and writes the aggregated context
// profile at exit (pprof protobuf; folded text when the name ends in
// .folded) — the quickest way to flame-graph what the suite executed.
// The warmup table reports the STW re-encode pause p50/p99/max each
// configuration paid, from the encoder's always-on pause histogram.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dacce/internal/cliutil"
	"dacce/internal/experiments"
	"dacce/internal/workload"
)

func main() {
	// Dispatch through run so deferred profile writers flush before the
	// process exits — os.Exit skips defers.
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	calls := fs.Int64("calls", 0, "calls per benchmark (0 = profile default)")
	benchList := fs.String("bench", "", "comma-separated benchmark subset")
	sample := fs.Int64("sample", 256, "sampling period in calls")
	profileFile := fs.String("profiles", "", "JSON file of custom workload profiles (see 'daccebench dump-profiles')")
	tel := cliutil.AddTelemetry(fs)
	state := cliutil.AddState(fs)
	version := cliutil.AddVersion(fs)
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON := fs.String("bench-json", "", "write machine-readable results (JSON) to this file")
	threadsFlag := fs.String("threads", "", "steady: comma-separated thread counts (default 1,2,4,8)")
	compare := fs.Bool("compare", false, "steady/warmup: also run the mutex-serialized comparison build and report speedups")
	noReplay := fs.Bool("no-replay", false, "warmup: skip the warm-start replay rows")
	ccprofOut := fs.String("ccprof-out", "", "steady: write the streaming context profile to this file (pprof protobuf; folded text for .folded names)")
	reps := fs.Int("reps", 0, "obs: steady runs per cell, fastest reported (default 3); pause: measured passes per cell (default 5)")
	samples := fs.Int64("samples", 0, "stream: firehose decodes per timed pass (default 1000000)")
	rounds := fs.Int("rounds", 0, "evict: epoch retirements per plane (default 120)")
	targets := fs.String("targets", "", "adversarial: comma-separated mega-indirect target counts (default 2,4,8,16,64,256,1024)")
	depth := fs.Int("depth", 0, "adversarial: recursion-torture depth (default 100000)")
	edgesFlag := fs.String("edges", "", "pause: comma-separated base graph sizes (default 10000,100000,1000000)")
	deltasFlag := fs.String("deltas", "", "pause: comma-separated per-pass injection sizes (default 64,4096)")
	modesFlag := fs.String("modes", "", "pause: comma-separated modes (default incremental,full,serialized)")
	sloPauseP99 := fs.Float64("slo-pause-p99", 0, "pause: fail if any incremental p99 pause exceeds this many microseconds (0 = off)")
	_ = fs.Parse(os.Args[2:])

	if *version || cmd == "-version" || cmd == "version" {
		cliutil.PrintVersion("daccebench")
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "daccebench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "daccebench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "daccebench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "daccebench:", err)
			}
		}()
	}

	if cmd == "dump-profiles" {
		if err := workload.WriteProfiles(os.Stdout, workload.Profiles()); err != nil {
			fmt.Fprintln(os.Stderr, "daccebench:", err)
			return 1
		}
		return 0
	}

	// Telemetry sinks aggregate across every benchmark run the
	// subcommand performs; snapshots are written once on the way out.
	cfg := experiments.RunConfig{Calls: *calls, SampleEvery: *sample, Sink: tel.Sink()}
	var err error
	profiles := func() []workload.Profile {
		if *profileFile != "" {
			ps, err := workload.LoadProfilesFile(*profileFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "daccebench:", err)
				os.Exit(1)
			}
			return ps
		}
		return selectProfiles(*benchList)
	}

	if state.Active() && cmd != "steady" {
		fmt.Fprintln(os.Stderr, "daccebench: -save-state/-load-state only apply to the steady subcommand")
		return 2
	}

	switch cmd {
	case "table1":
		err = runTable1(profiles(), cfg, false)
	case "fig8":
		err = runTable1(profiles(), cfg, true)
	case "fig9":
		err = runFig9(names(*benchList, experiments.Fig9Names), cfg)
	case "fig10":
		err = runFig10(names(*benchList, experiments.Fig10Names), cfg)
	case "report":
		out := "EXPERIMENTS.md"
		if args := fs.Args(); len(args) > 0 {
			out = args[0]
		}
		err = runReport(out, cfg)
	case "steady":
		err = runSteady(*threadsFlag, *calls, *sample, *compare, *benchJSON, *ccprofOut, state)
	case "warmup":
		err = runWarmup(*threadsFlag, *calls, *sample, *compare, *noReplay, *benchJSON)
	case "obs":
		err = runObs(*threadsFlag, *calls, *sample, *reps, *benchJSON)
	case "stream":
		err = runStream(*threadsFlag, *samples, *calls, *sample, *benchJSON)
	case "evict":
		err = runEvict(*threadsFlag, *rounds, *calls, *sample, *benchJSON)
	case "adversarial":
		err = runAdversarial(*targets, *threadsFlag, *calls, *sample, *depth, *benchJSON)
	case "pause":
		err = runPause(*edgesFlag, *deltasFlag, *modesFlag, *reps, *sloPauseP99, *benchJSON)
	case "all":
		if err = runTable1(profiles(), cfg, true); err == nil {
			if err = runFig9(experiments.Fig9Names, cfg); err == nil {
				err = runFig10(experiments.Fig10Names, cfg)
			}
		}
	default:
		usage()
		return 2
	}
	if err == nil {
		err = tel.Finish(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "daccebench:", err)
		return 1
	}
	return 0
}

// runSteady drives the multi-threaded steady-state scalability suite
// and renders a summary table; -bench-json additionally writes the full
// report in the BENCH_steady_state.json format.
func runSteady(threadsCSV string, callsPerThread, sampleEvery int64, compare bool, jsonOut, ccprofOut string, state *cliutil.State) error {
	cfg := experiments.SteadyConfig{
		CallsPerThread: callsPerThread,
		SampleEvery:    sampleEvery,
		Compare:        compare,
		LoadState:      state.Load,
		SaveState:      state.Save,
		CcprofOut:      ccprofOut,
	}
	// The shared -sample default (256) suits the figure benchmarks; the
	// steady suite wants its own aggressive default so the sampling
	// controller is part of the measured load.
	if sampleEvery == 256 {
		cfg.SampleEvery = 0
	}
	// -ccprof-out needs one thread count (each generates its own
	// program); default to the largest swept elsewhere.
	if ccprofOut != "" && threadsCSV == "" {
		cfg.Threads = []int{4}
	}
	var err error
	if cfg.Threads, err = parseThreads(threadsCSV, cfg.Threads); err != nil {
		return err
	}
	rep, err := experiments.SteadyState(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Steady-state scalability (GOMAXPROCS=%d, NumCPU=%d)\n", rep.GoMaxProcs, rep.NumCPU)
	fmt.Printf("%-8s %-11s %-7s %14s %14s %8s %7s\n",
		"threads", "mode", "phase", "calls/s", "allocs/call", "traps", "epochs")
	for _, r := range rep.Rows {
		fmt.Printf("%-8d %-11s %-7s %14.0f %14.4f %8d %7d\n",
			r.Threads, r.Mode, r.Phase, r.CallsPerSec, r.AllocsPerCall, r.HandlerTraps, r.Epochs)
	}
	for _, n := range rep.Config.Threads {
		k := fmt.Sprint(n)
		if s, ok := rep.Scaling[k]; ok {
			line := fmt.Sprintf("threads=%s scaling=%.2fx", k, s)
			if sp, ok := rep.Speedup[k]; ok {
				line += fmt.Sprintf(" speedup-vs-serialized=%.2fx", sp)
			}
			fmt.Println(line)
		}
	}
	if ccprofOut != "" {
		fmt.Fprintf(os.Stderr, "ccprof: %d contexts written to %s\n", rep.CcprofContexts, ccprofOut)
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "steady report written to", jsonOut)
	}
	return nil
}

// runWarmup drives the cold-start scalability suite and renders a
// summary table; -bench-json additionally writes the full report in the
// BENCH_warmup.json format.
func runWarmup(threadsCSV string, callsPerThread, sampleEvery int64, compare, noReplay bool, jsonOut string) error {
	cfg := experiments.WarmupConfig{
		CallsPerThread: callsPerThread,
		Compare:        compare,
		NoReplay:       noReplay,
	}
	// The shared -sample default (256) suits the figure benchmarks; the
	// warmup suite has its own default (64).
	if sampleEvery != 256 {
		cfg.SampleEvery = sampleEvery
	}
	var err error
	if cfg.Threads, err = parseThreads(threadsCSV, cfg.Threads); err != nil {
		return err
	}
	rep, err := experiments.Warmup(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Cold-start scalability (GOMAXPROCS=%d, NumCPU=%d)\n", rep.GoMaxProcs, rep.NumCPU)
	fmt.Printf("%-8s %-8s %-7s %12s %8s %7s %7s %12s %14s %10s %10s %10s\n",
		"threads", "mode", "phase", "traps/s", "traps", "edges", "passes", "stable-ms", "calls/s",
		"pause-p50", "pause-p99", "pause-max")
	for _, r := range rep.Rows {
		fmt.Printf("%-8d %-8s %-7s %12.0f %8d %7d %7d %12.2f %14.0f %8.1fus %8.1fus %8.1fus\n",
			r.Threads, r.Mode, r.Phase, r.TrapsPerSec, r.HandlerTraps, r.EdgesDiscovered,
			r.Passes, r.TimeToStableMs, r.CallsPerSec, r.PauseP50Us, r.PauseP99Us, r.PauseMaxUs)
	}
	for _, n := range rep.Config.Threads {
		k := fmt.Sprint(n)
		var parts []string
		if sp, ok := rep.TrapSpeedup[k]; ok {
			parts = append(parts, fmt.Sprintf("trap-speedup-vs-global=%.2fx", sp))
		}
		if tr, ok := rep.ReplayTraps[k]; ok {
			parts = append(parts, fmt.Sprintf("replay-traps=%d", tr))
		}
		if len(parts) > 0 {
			fmt.Printf("threads=%s %s\n", k, strings.Join(parts, " "))
		}
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "warmup report written to", jsonOut)
	}
	return nil
}

// runObs drives the observability-overhead suite — the steady workload
// with the plane off, with the streaming context profiler attached, and
// with the full plane — and renders a summary table; -bench-json
// additionally writes the full report in the BENCH_observability.json
// format.
func runObs(threadsCSV string, callsPerThread, sampleEvery int64, reps int, jsonOut string) error {
	cfg := experiments.ObservabilityConfig{
		CallsPerThread: callsPerThread,
		Reps:           reps,
	}
	// The shared -sample default (256) suits the figure benchmarks; the
	// obs suite has its own default (64) — the plane's cost is
	// per-sample, so -sample directly sets how hard the suite leans on
	// it.
	if sampleEvery != 256 {
		cfg.SampleEvery = sampleEvery
	}
	var err error
	if cfg.Threads, err = parseThreads(threadsCSV, cfg.Threads); err != nil {
		return err
	}
	rep, err := experiments.Observability(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Observability overhead (GOMAXPROCS=%d, NumCPU=%d, best of %d)\n",
		rep.GoMaxProcs, rep.NumCPU, rep.Config.Reps)
	fmt.Printf("%-8s %-8s %14s %14s %12s %10s\n",
		"threads", "mode", "calls/s", "allocs/call", "contexts", "overhead")
	for _, r := range rep.Rows {
		fmt.Printf("%-8d %-8s %14.0f %14.4f %12d %9.2f%%\n",
			r.Threads, r.Mode, r.CallsPerSec, r.AllocsPerCall, r.ContextsObserved, r.OverheadPct)
	}
	fmt.Printf("max profiler overhead: %.2f%%\n", rep.MaxProfilerOverheadPct)
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "observability report written to", jsonOut)
	}
	return nil
}

// runStream drives the streaming-decode firehose suite — a real capture
// corpus replayed through the slice and node decode paths far past DAG
// saturation — and renders a summary; -bench-json additionally writes
// the full report in the BENCH_dag.json format.
func runStream(threadsCSV string, samples, callsPerThread, sampleEvery int64, jsonOut string) error {
	cfg := experiments.StreamConfig{
		Samples:        samples,
		CallsPerThread: callsPerThread,
	}
	// The shared -sample default (256) suits the figure benchmarks; the
	// stream suite wants a dense corpus (default 16).
	if sampleEvery != 256 {
		cfg.SampleEvery = sampleEvery
	}
	threads, err := parseThreads(threadsCSV, nil)
	if err != nil {
		return err
	}
	if len(threads) > 0 {
		cfg.Threads = threads[0]
	}
	rep, err := experiments.Stream(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Streaming decode firehose (GOMAXPROCS=%d, NumCPU=%d)\n", rep.GoMaxProcs, rep.NumCPU)
	fmt.Printf("corpus: %d captures, %d distinct contexts\n", rep.CorpusCaptures, rep.DistinctContexts)
	fmt.Printf("decoded %d samples per pass:\n", rep.Decoded)
	fmt.Printf("  slice path: %8.1f ns/sample\n", rep.SliceNsPerSample)
	fmt.Printf("  node path:  %8.1f ns/sample  (%.2fx, %.4f allocs/sample warm)\n",
		rep.NodeNsPerSample, rep.NodeSpeedupVsSlice, rep.AllocsPerSampleWarm)
	fmt.Printf("DAG: %d nodes, %.4f intern hit rate, ~%d bytes (%.1f bytes/distinct context)\n",
		rep.DAGNodes, rep.InternHitRate, rep.DAGBytesEstimate, rep.BytesPerDistinctContext)
	fmt.Printf("equality @ depth %d: pointer %0.3f ns/op vs DiffContexts %0.1f ns/op (%.0fx)\n",
		rep.EqualityDepth, rep.PointerEqNsPerOp, rep.DiffContextsNsPerOp, rep.PointerEqSpeedup)
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "stream report written to", jsonOut)
	}
	return nil
}

// runEvict drives the epoch-retirement reclamation suite — encoder
// plane (generation collection after forced passes) and dacced plane
// (epoch-bucketed memo + /v1/retire) — and renders a summary;
// -bench-json writes the full report in the BENCH_evict.json format.
func runEvict(threadsCSV string, rounds int, callsPerRound, sampleEvery int64, jsonOut string) error {
	cfg := experiments.EvictConfig{
		Rounds:        rounds,
		CallsPerRound: callsPerRound,
	}
	// The shared -sample default (256) suits the figure benchmarks; the
	// evict suite wants dense churn (default 5).
	if sampleEvery != 256 {
		cfg.SampleEvery = sampleEvery
	}
	threads, err := parseThreads(threadsCSV, nil)
	if err != nil {
		return err
	}
	if len(threads) > 0 {
		cfg.Threads = threads[0]
	}
	rep, err := experiments.Evict(cfg)
	if err != nil {
		return err
	}
	verdict := func(ok bool) string {
		if ok {
			return "flat"
		}
		return "GROWING"
	}
	fmt.Printf("# Epoch-retirement reclamation (GOMAXPROCS=%d, NumCPU=%d)\n", rep.GoMaxProcs, rep.NumCPU)
	fmt.Printf("encoder plane: %d retirements, DAG nodes early %d / late peak %d / final %d [%s]\n",
		rep.EncoderRounds, rep.EncoderDAGNodesEarly, rep.EncoderDAGNodesLate,
		rep.EncoderDAGNodesFinal, verdict(rep.EncoderFlat))
	fmt.Printf("  %d collections freed %d nodes\n", rep.EncoderCollections, rep.EncoderCollected)
	fmt.Printf("server plane:  %d retirements, DAG nodes early %d / late peak %d / final %d [%s]\n",
		rep.ServerRounds, rep.ServerDAGNodesEarly, rep.ServerDAGNodesLate,
		rep.ServerDAGNodesFinal, verdict(rep.ServerFlat))
	fmt.Printf("  memo peak %d, final %d, dropped %d entries; DAG collected %d nodes\n",
		rep.ServerMemoPeak, rep.ServerMemoFinal, rep.ServerMemoDropped, rep.ServerCollected)
	fmt.Printf("warm decode with collection enabled: %.4f allocs/decode over %d decodes\n",
		rep.AllocsPerWarmDecode, rep.WarmDecodes)
	if !rep.EncoderFlat || !rep.ServerFlat {
		return fmt.Errorf("evict: footprint grew with history (encoder flat=%v, server flat=%v)",
			rep.EncoderFlat, rep.ServerFlat)
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "evict report written to", jsonOut)
	}
	return nil
}

// runAdversarial drives the adversarial-workload suite — the
// inline-chain-vs-hash dispatch crossover sweep, the 64-thread module
// churn run, and the recursion-torture decode-latency probe — and
// renders a summary; -bench-json additionally writes the full report in
// the BENCH_adversarial.json format.
func runAdversarial(targetsCSV, threadsCSV string, calls, sampleEvery int64, depth int, jsonOut string) error {
	cfg := experiments.AdversarialConfig{
		CrossoverCalls: calls,
		TortureDepth:   depth,
	}
	// The shared -sample default (256) suits the figure benchmarks; the
	// adversarial suite has its own default (64).
	if sampleEvery != 256 {
		cfg.SampleEvery = sampleEvery
	}
	var err error
	if cfg.Targets, err = parseThreads(targetsCSV, cfg.Targets); err != nil {
		return fmt.Errorf("bad -targets list: %w", err)
	}
	// -threads picks the churn leg's thread count (first value wins).
	churn, err := parseThreads(threadsCSV, nil)
	if err != nil {
		return err
	}
	if len(churn) > 0 {
		cfg.ChurnThreads = churn[0]
	}
	rep, err := experiments.Adversarial(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Adversarial workloads (GOMAXPROCS=%d, NumCPU=%d)\n", rep.GoMaxProcs, rep.NumCPU)
	fmt.Println("## Mega-indirect dispatch: inline chain vs hash")
	fmt.Printf("%-8s %-6s %12s %14s %12s %16s %8s\n",
		"targets", "mode", "calls", "compares/call", "probes/call", "instr-cost/call", "traps")
	for _, r := range rep.Crossover {
		fmt.Printf("%-8d %-6s %12d %14.3f %12.3f %16.3f %8d\n",
			r.Targets, r.Mode, r.Calls, r.ComparesPerCall, r.ProbesPerCall, r.InstrCostPerCall, r.HandlerTraps)
	}
	if rep.CrossoverTargets > 0 {
		fmt.Printf("crossover: hash dispatch wins from %d targets\n", rep.CrossoverTargets)
	} else {
		fmt.Println("crossover: inline chain won at every swept fan-out")
	}
	c := rep.Churn
	fmt.Printf("## Module churn @ %d threads: %d loads, %d unloads, %d threads total, %d traps (%.0f traps/s), %d epochs, pause p50/p99/max %.1f/%.1f/%.1fus\n",
		c.Threads, c.ModuleLoads, c.ModuleUnloads, c.SpawnedTotal, c.HandlerTraps, c.TrapsPerSec,
		c.Epochs, c.PauseP50Us, c.PauseP99Us, c.PauseMaxUs)
	tr := rep.Torture
	fmt.Printf("## Recursion torture @ depth %d: max sampled depth %d, ccStack max %d, %d decodes (p50/p99/max %.1f/%.1f/%.1fus), %d mismatches\n",
		tr.Depth, tr.MaxDepth, tr.CcStackMax, tr.Decodes, tr.DecodeP50Us, tr.DecodeP99Us, tr.DecodeMaxUs, tr.Mismatches)
	if tr.Mismatches > 0 {
		return fmt.Errorf("adversarial: %d torture decodes disagreed with the shadow stack", tr.Mismatches)
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "adversarial report written to", jsonOut)
	}
	return nil
}

// runPause drives the pause-vs-graph-size suite and renders a summary
// table; -bench-json additionally writes the full report in the
// BENCH_pause.json format. With -slo-pause-p99 the suite exits non-zero
// when any incremental row's p99 pause exceeds the budget — the CI
// smoke gate.
func runPause(edgesCSV, deltasCSV, modesCSV string, reps int, sloPauseP99 float64, jsonOut string) error {
	cfg := experiments.PauseConfig{
		Reps:          reps,
		SLOPauseP99Us: sloPauseP99,
	}
	var err error
	if cfg.Edges, err = parseThreads(edgesCSV, nil); err != nil {
		return fmt.Errorf("bad -edges list: %w", err)
	}
	if cfg.Deltas, err = parseThreads(deltasCSV, nil); err != nil {
		return fmt.Errorf("bad -deltas list: %w", err)
	}
	if modesCSV != "" {
		for _, m := range strings.Split(modesCSV, ",") {
			cfg.Modes = append(cfg.Modes, strings.TrimSpace(m))
		}
	}
	rep, sloErr := experiments.Pause(cfg)
	if rep == nil {
		return sloErr
	}
	fmt.Printf("# Re-encoding pause vs graph size (GOMAXPROCS=%d, NumCPU=%d, %d passes per cell)\n",
		rep.GoMaxProcs, rep.NumCPU, rep.Config.Reps)
	fmt.Printf("%-9s %-7s %-12s %11s %11s %11s %11s %10s %10s\n",
		"edges", "delta", "mode", "pause-p50", "pause-p99", "pause-max", "prep-mean", "changed", "rebuilt")
	for _, r := range rep.Rows {
		fmt.Printf("%-9d %-7d %-12s %9.1fus %9.1fus %9.1fus %9.1fus %10.0f %10.0f\n",
			r.Edges, r.Delta, r.Mode, r.PauseP50Us, r.PauseP99Us, r.PauseMaxUs,
			r.PrepareMeanUs, r.ChangedEdges, r.SitesRebuilt)
	}
	for _, r := range rep.Rows {
		if r.Mode != "incremental" {
			continue
		}
		key := fmt.Sprintf("%d/%d", r.Edges, r.Delta)
		var parts []string
		if v, ok := rep.P99RatioFullOverIncr[key]; ok {
			parts = append(parts, fmt.Sprintf("p99-full/incr=%.1fx", v))
		}
		if v, ok := rep.P99RatioSerOverIncr[key]; ok {
			parts = append(parts, fmt.Sprintf("p99-serialized/incr=%.1fx", v))
		}
		if len(parts) > 0 {
			fmt.Printf("edges=%d delta=%d %s\n", r.Edges, r.Delta, strings.Join(parts, " "))
		}
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "pause report written to", jsonOut)
	}
	return sloErr
}

// parseThreads parses a -threads CSV, returning def untouched when the
// flag was not given.
func parseThreads(csv string, def []int) ([]int, error) {
	if csv == "" {
		return def, nil
	}
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -threads value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: daccebench {table1|fig8|fig9|fig10|steady|warmup|obs|stream|evict|adversarial|pause|all|report [file]|dump-profiles|version} [-calls N] [-bench a,b] [-sample N] [-threads 1,2,4,8] [-compare] [-no-replay] [-reps N] [-samples N] [-rounds N] [-targets 2,16,1024] [-depth N] [-edges 10000,1000000] [-deltas 64,4096] [-modes incremental,full,serialized] [-slo-pause-p99 US] [-ccprof-out file] [-save-state file] [-load-state file] [-profiles file.json] [-metrics] [-metrics-format prom|json] [-trace-out file.json] [-flight-recorder N] [-cpuprofile file] [-memprofile file] [-bench-json file]")
}

func runReport(path string, cfg experiments.RunConfig) error {
	if cfg.Calls == 0 {
		cfg.Calls = 300_000
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteReport(f, cfg, os.Stderr); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "report written to", path)
	return nil
}

func selectProfiles(list string) []workload.Profile {
	if list == "" {
		return workload.Profiles()
	}
	var out []workload.Profile
	for _, n := range strings.Split(list, ",") {
		pr, ok := workload.ByName(strings.TrimSpace(n))
		if !ok {
			fmt.Fprintf(os.Stderr, "daccebench: unknown benchmark %q (see workload.Names)\n", n)
			os.Exit(2)
		}
		out = append(out, pr)
	}
	return out
}

func names(list string, def []string) []string {
	if list == "" {
		return def
	}
	parts := strings.Split(list, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func runTable1(profiles []workload.Profile, cfg experiments.RunConfig, fig8 bool) error {
	rows, err := experiments.Table1(profiles, cfg, os.Stderr)
	if err != nil {
		return err
	}
	if fig8 {
		fmt.Println("# Figure 8: runtime overhead (cost model), PCCE vs DACCE")
		return experiments.RenderFig8(rows, os.Stdout)
	}
	fmt.Println("# Table 1: characteristics under PCCE and DACCE")
	return experiments.RenderTable1(rows, os.Stdout)
}

func runFig9(benchNames []string, cfg experiments.RunConfig) error {
	for _, n := range benchNames {
		s, err := experiments.Fig9(n, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# Figure 9: encoding progress — %s\n", n)
		if err := s.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig10(benchNames []string, cfg experiments.RunConfig) error {
	for _, n := range benchNames {
		s, err := experiments.Fig10(n, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# Figure 10: cumulative stack-depth distribution — %s\n", n)
		if err := s.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
