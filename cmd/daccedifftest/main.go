// Command daccedifftest drives the cross-encoder differential oracle:
// it records one deterministic workload trace per seed and replays it
// under every context tracker — DACCE, PCCE, CCT, PCC, with the shadow
// stack as ground truth — failing (exit 1) on any disagreement at any
// sampled query point.
//
//	daccedifftest -seeds 0:1000                  # sweep random specs
//	daccedifftest -spec testdata/seed.json       # replay one seed file
//	daccedifftest -seeds 3:4 -mutate skew-id -shrink
//	daccedifftest -stress -threads 4             # live run under forced re-encoding
//	daccedifftest -bench 429.mcf,401.bzip2       # Table 1 profiles through the oracle
//
// A failing seed prints its divergences; with -shrink it is
// delta-debugged to a minimal spec, printed as a ready-to-paste
// regression test, and optionally written with -save-spec so the exact
// failure replays from one committed JSON file.
//
// Telemetry: -metrics prints a metrics snapshot (divergences included)
// after the run, -flight-recorder dumps the last N events to stderr the
// moment a divergence is found, -json emits the full per-run reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dacce/internal/cliutil"
	"dacce/internal/difftest"
	"dacce/internal/experiments"
	"dacce/internal/telemetry"
)

func main() {
	seeds := flag.String("seeds", "0:20", "seed range A:B (half-open) or a count N meaning 0:N")
	specPath := flag.String("spec", "", "run a single spec seed file instead of -seeds")
	bench := flag.String("bench", "", "comma-separated Table 1 benchmarks to run through the oracle instead of -seeds")
	encoders := flag.String("encoders", "", "comma-separated encoder subset (default all: "+strings.Join(difftest.AllEncoders, ",")+")")
	calls := flag.Int64("calls", 0, "override each spec's total call budget")
	threads := flag.Int("threads", 0, "override each spec's thread count")
	sample := flag.Int64("sample", 0, "override the query density (context query every n calls per thread)")
	forceEpoch := flag.Int64("force-epoch", -1, "override forced re-encoding period in samples (0 disables forcing)")
	mutate := flag.String("mutate", "", "inject a fault into a scratch DACCE wrapper: skew-id|drop-repetition|stale-epoch")
	incremental := flag.Bool("incremental", false, "run the DACCE replays with incremental (subgraph) re-encoding and require at least one incremental pass across the sweep")
	shrink := flag.Bool("shrink", false, "delta-debug the first failing spec to a minimal reproducer")
	shrinkBudget := flag.Int("shrink-budget", 150, "max harness runs the shrinker may spend")
	saveSpec := flag.String("save-spec", "", "write the first failing spec (shrunk when -shrink) to this JSON file")
	stress := flag.Bool("stress", false, "run the live concurrency stress driver instead of trace replay (best under -race)")
	stressForcers := flag.Int("stress-forcers", 2, "goroutines hammering ForceReencode during -stress")
	jsonOut := flag.Bool("json", false, "emit each run's full report as JSON on stdout")
	metrics := flag.Bool("metrics", false, "print a telemetry metrics snapshot after the run")
	metricsFormat := flag.String("metrics-format", "prom", "metrics snapshot format: prom|json")
	flightN := flag.Int("flight-recorder", 0, "keep a flight-recorder ring of the last N events, dumped to stderr on the first divergence")
	version := cliutil.AddVersion(flag.CommandLine)
	flag.Parse()

	if *version {
		cliutil.PrintVersion("daccedifftest")
		return
	}

	// All replays share one telemetry pipeline: encoder events plus one
	// EvDivergence per recorded mismatch.
	var mts *telemetry.Metrics
	var fr *telemetry.FlightRecorder
	var sinks []telemetry.Sink
	if *metrics {
		mts = telemetry.NewMetrics()
		sinks = append(sinks, mts)
	}
	if *flightN > 0 {
		fr = telemetry.NewFlightRecorder(*flightN, os.Stderr)
		sinks = append(sinks, fr)
	}
	opt := difftest.Options{Sink: telemetry.Multi(sinks...)}

	err := run(runConfig{
		seeds: *seeds, specPath: *specPath, bench: *bench,
		encoders: *encoders, calls: *calls, threads: *threads,
		sample: *sample, forceEpoch: *forceEpoch, mutate: *mutate,
		shrink: *shrink, shrinkBudget: *shrinkBudget, saveSpec: *saveSpec,
		stress: *stress, stressForcers: *stressForcers, jsonOut: *jsonOut,
		incremental: *incremental,
	}, opt)

	if mts != nil {
		fmt.Println()
		switch *metricsFormat {
		case "prom":
			mts.WritePrometheus(os.Stdout)
		case "json":
			mts.WriteJSON(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "daccedifftest: unknown -metrics-format %q\n", *metricsFormat)
			os.Exit(2)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "daccedifftest:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	seeds, specPath, bench, encoders, mutate, saveSpec string
	calls                                              int64
	threads                                            int
	sample, forceEpoch                                 int64
	shrink                                             bool
	shrinkBudget, stressForcers                        int
	stress, jsonOut, incremental                       bool
}

// apply folds the command-line overrides into a spec.
func (cfg *runConfig) apply(spec difftest.Spec) difftest.Spec {
	if cfg.calls > 0 {
		spec.Profile.TotalCalls = cfg.calls
	}
	if cfg.threads > 0 {
		spec.Profile.Threads = cfg.threads
	}
	if cfg.sample > 0 {
		spec.SampleEvery = cfg.sample
	}
	if cfg.forceEpoch >= 0 {
		spec.ForceEpochEvery = cfg.forceEpoch
	}
	if cfg.encoders != "" {
		spec.Encoders = strings.Split(cfg.encoders, ",")
	}
	if cfg.mutate != "" {
		spec.Mutation = cfg.mutate
	}
	if cfg.incremental {
		spec.Incremental = true
	}
	return spec
}

func run(cfg runConfig, opt difftest.Options) error {
	switch {
	case cfg.bench != "":
		rows, err := experiments.DifferentialTable(strings.Split(cfg.bench, ","),
			experiments.RunConfig{Calls: cfg.calls, SampleEvery: cfg.sample, Sink: opt.Sink}, os.Stdout)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if r.Divergences > 0 {
				return fmt.Errorf("%d divergences across benchmarks", r.Divergences)
			}
		}
		return nil
	case cfg.stress:
		return runStress(cfg)
	default:
		return runSweep(cfg, opt)
	}
}

// specsFor yields the specs of this invocation: the seed file when
// given, the seed-range family otherwise.
func specsFor(cfg runConfig) ([]difftest.Spec, error) {
	if cfg.specPath != "" {
		spec, err := difftest.LoadSpec(cfg.specPath)
		if err != nil {
			return nil, err
		}
		return []difftest.Spec{cfg.apply(spec)}, nil
	}
	lo, hi, err := parseSeeds(cfg.seeds)
	if err != nil {
		return nil, err
	}
	specs := make([]difftest.Spec, 0, hi-lo)
	for s := lo; s < hi; s++ {
		specs = append(specs, cfg.apply(difftest.RandomSpec(s)))
	}
	return specs, nil
}

func runSweep(cfg runConfig, opt difftest.Options) error {
	specs, err := specsFor(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	totalSamples, maxEpochs := 0, uint32(0)
	// Per-spec replay latency rides the same log-bucketed histogram the
	// rest of the observability plane uses, so the sweep's tail is
	// visible without timing every seed by hand.
	lat := telemetry.NewHistogram(telemetry.DurationBuckets())
	incrementalPasses := 0
	for i, spec := range specs {
		start := time.Now()
		res, err := difftest.Run(spec, opt)
		lat.ObserveDuration(time.Since(start))
		if err != nil {
			return fmt.Errorf("spec %d (%s): %w", i, spec.Profile.Name, err)
		}
		if cfg.jsonOut {
			if err := enc.Encode(res); err != nil {
				return err
			}
		}
		totalSamples += res.Samples
		incrementalPasses += res.IncrementalPasses
		if res.Epochs > maxEpochs {
			maxEpochs = res.Epochs
		}
		if !res.Diverged() {
			continue
		}

		fmt.Printf("DIVERGED: %s (%d recorded, %d dropped)\n", spec.Profile.Name, len(res.Divergences), res.Dropped)
		for j, d := range res.Divergences {
			if j >= 10 {
				fmt.Printf("  ... %d more\n", len(res.Divergences)-j)
				break
			}
			fmt.Printf("  %s\n", d)
		}
		if cfg.shrink {
			fmt.Printf("shrinking (budget %d runs)...\n", cfg.shrinkBudget)
			small, accepted := difftest.Shrink(spec, nil, cfg.shrinkBudget)
			fmt.Printf("minimized after %d accepted reductions; paste as a regression test:\n\n", accepted)
			if err := difftest.WriteRegressionTest(os.Stdout, small); err != nil {
				return err
			}
			spec = small
		}
		if cfg.saveSpec != "" {
			if err := difftest.SaveSpec(cfg.saveSpec, spec); err != nil {
				return err
			}
			fmt.Printf("failing spec written to %s (replay: daccedifftest -spec %s)\n", cfg.saveSpec, cfg.saveSpec)
		}
		return fmt.Errorf("divergence on spec %q", spec.Profile.Name)
	}
	if cfg.incremental && incrementalPasses == 0 {
		return fmt.Errorf("-incremental sweep performed no incremental re-encoding passes — the subgraph path never ran")
	}
	ls := lat.Snapshot()
	extra := ""
	if cfg.incremental {
		extra = fmt.Sprintf(", %d incremental passes", incrementalPasses)
	}
	fmt.Printf("OK: %d specs, %d query points, max %d epochs%s, 0 divergences (replay p50 %v, p99 %v, max %v)\n",
		len(specs), totalSamples, maxEpochs, extra,
		time.Duration(ls.P50), time.Duration(ls.P99), time.Duration(ls.Max))
	return nil
}

func runStress(cfg runConfig) error {
	specs, err := specsFor(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	for i, spec := range specs {
		if spec.Profile.Threads < 2 && cfg.threads == 0 {
			spec.Profile.Threads = 4 // stress wants real concurrency
		}
		rep, err := difftest.Stress(spec, cfg.stressForcers)
		if err != nil {
			return fmt.Errorf("spec %d (%s): %w", i, spec.Profile.Name, err)
		}
		if cfg.jsonOut {
			if err := enc.Encode(rep); err != nil {
				return err
			}
		} else {
			fmt.Printf("%s: %d threads, %d calls, %d samples, %d epochs (%d forced passes), %d divergences\n",
				spec.Profile.Name, rep.Threads, rep.Calls, rep.Samples, rep.Epochs, rep.ForcedPasses, len(rep.Divergences))
		}
		if rep.Diverged() {
			for j, d := range rep.Divergences {
				if j >= 10 {
					break
				}
				fmt.Printf("  %s\n", d)
			}
			return fmt.Errorf("stress divergence on spec %q", spec.Profile.Name)
		}
	}
	return nil
}

// parseSeeds parses "A:B" (half-open) or "N" (meaning 0:N).
func parseSeeds(s string) (lo, hi uint64, err error) {
	if a, b, ok := strings.Cut(s, ":"); ok {
		lo, err = strconv.ParseUint(a, 10, 64)
		if err == nil {
			hi, err = strconv.ParseUint(b, 10, 64)
		}
	} else {
		hi, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q (want N or A:B): %v", s, err)
	}
	if hi <= lo {
		return 0, 0, fmt.Errorf("bad -seeds %q: empty range", s)
	}
	return lo, hi, nil
}
