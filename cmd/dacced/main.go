// Command dacced is the multi-tenant decode daemon: it serves the
// decode side of the DACCE error-reporting pipeline over HTTP, so
// instrumented processes ship tiny (epoch, id, ccStack) captures and a
// central service expands them into full calling contexts using
// persisted encoder snapshots.
//
//	daccerun -bench 429.mcf -save-state mcf.snap -dump /tmp/run
//	dacced -listen :8357 -load mcf=mcf.snap
//	daccedecode -dir /tmp/run -remote http://localhost:8357 -tenant mcf
//
// Each -load registers one tenant, keyed by name and by the snapshot's
// state hash (name@hash), so several snapshot generations of the same
// program can be served side by side; new generations can also be
// uploaded at runtime via POST /v1/snapshot?tenant=NAME.
//
// Endpoints: POST /v1/decode, GET|POST /v1/snapshot, GET /v1/stats,
// GET /healthz, GET /metrics, GET /debug/ccprof (live per-tenant
// context profile: pprof protobuf, ?format=folded|tree), GET
// /debug/vars (metrics as JSON with quantile snapshots). See
// internal/server for the wire format.
//
// -slo-decode-p99 arms the SLO watchdog over the decode latency
// histogram; a breach logs an slo_breach event ring to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dacce/internal/buildinfo"
	"dacce/internal/cliutil"
	"dacce/internal/server"
	"dacce/internal/telemetry"
)

// loadFlags collects repeated -load name=path (or bare path) values.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }

func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads loadFlags
	listen := flag.String("listen", ":8357", "HTTP listen address")
	maxConcurrent := flag.Int("max-concurrent", 4, "concurrent decode requests per tenant")
	queueDepth := flag.Int("queue-depth", 64, "queued decode requests per tenant before 429")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight requests")
	sloDecodeP99 := flag.Duration("slo-decode-p99", 0, "SLO: breach when the decode-request p99 exceeds this duration (0 disables)")
	sloCheckEvery := flag.Duration("slo-check-every", time.Second, "how often the SLO watchdog samples its rules")
	version := cliutil.AddVersion(flag.CommandLine)
	flag.Var(&loads, "load", "snapshot to serve, as name=path or path (tenant name from the file name); repeatable")
	flag.Parse()

	if *version {
		cliutil.PrintVersion("dacced")
		return
	}
	if err := run(*listen, loads, *maxConcurrent, *queueDepth, *drainTimeout, *sloDecodeP99, *sloCheckEvery); err != nil {
		fmt.Fprintln(os.Stderr, "dacced:", err)
		os.Exit(1)
	}
}

func run(listen string, loads []string, maxConcurrent, queueDepth int, drainTimeout, sloDecodeP99, sloCheckEvery time.Duration) error {
	srv := server.New(server.Config{MaxConcurrent: maxConcurrent, QueueDepth: queueDepth})
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			path = spec
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		if name == "" {
			return fmt.Errorf("-load %q: empty tenant name", spec)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		key, err := srv.Register(name, data)
		if err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
		log.Printf("tenant %s: %s (%d bytes)", key, path, len(data))
	}

	// SLO watchdog over the live decode-latency histogram. Breaches go
	// through a flight recorder, so each one dumps its event ring (the
	// breach itself, plus any earlier breaches) to stderr for postmortem.
	if sloDecodeP99 > 0 {
		fr := telemetry.NewFlightRecorder(0, os.Stderr)
		w := telemetry.NewWatchdog(fr)
		w.Add(telemetry.SLORule{
			Name:   "decode_p99_us",
			Source: telemetry.QuantileSource(srv.DecodeLatency(), 0.99),
			Max:    sloDecodeP99.Microseconds(),
		})
		stop := w.Watch(sloCheckEvery)
		defer stop()
		log.Printf("slo: decode p99 ≤ %v, checked every %v", sloDecodeP99, sloCheckEvery)
	}

	hs := &http.Server{Addr: listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("dacced %s listening on %s (%d tenants)", buildinfo.Get().String(), listen, len(loads))
		errc <- hs.ListenAndServe()
	}()

	// Graceful shutdown: stop accepting, drain in-flight decodes, then
	// exit; a second signal or the drain timeout forces the issue.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("received %v, draining (timeout %v)", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("drained cleanly")
		return nil
	}
}
