// Command daccedecode decodes captured calling contexts offline, from a
// decode bundle and a capture file produced by `daccerun -dump` — the
// error-reporting pipeline of the paper's §1: the instrumented process
// ships tiny (id, ccStack) records; the analyst decodes them later.
//
//	daccerun -bench 445.gobmk -dump /tmp/run        # writes bundle + captures
//	daccedecode -dir /tmp/run [-n 10]
//
// With -remote the captures are posted to a dacced decode server
// instead of being decoded in-process; the output lines are identical,
// so `daccedecode -remote` can be diffed against a local decode.
//
//	daccedecode -dir /tmp/run -remote http://localhost:8357 -tenant myprog
//
// -ccprof-out aggregates every decoded context into a calling-context
// profile and writes it (pprof protobuf, or folded text when the name
// ends in .folded) — the offline twin of the live /debug/ccprof
// endpoint, for dumps collected without a profiler attached.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dacce/internal/ccprof"
	"dacce/internal/cliutil"
	"dacce/internal/core"
	"dacce/internal/server"
)

// remoteBatch bounds how many captures each /v1/decode request carries;
// remoteTimeout bounds each request attempt.
const (
	remoteBatch   = 512
	remoteTimeout = 30 * time.Second
)

func main() {
	dir := flag.String("dir", "", "directory holding bundle.json and captures.json")
	n := flag.Int("n", 0, "decode only the first n captures (0 = all)")
	tree := flag.Bool("tree", false, "aggregate all captures into a calling-context profile tree instead of listing them")
	remote := flag.String("remote", "", "decode via a dacced server at this base URL instead of in-process")
	tenant := flag.String("tenant", "", "tenant name or name@hash for -remote")
	ccprofOut := flag.String("ccprof-out", "", "aggregate the decoded contexts into a profile and write it to this file (pprof protobuf; folded text for .folded names)")
	version := cliutil.AddVersion(flag.CommandLine)
	flag.Parse()
	if *version {
		cliutil.PrintVersion("daccedecode")
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: daccedecode -dir <dump-dir> [-n N] [-tree] [-ccprof-out file] [-remote URL -tenant NAME]")
		os.Exit(2)
	}
	if *remote != "" && *tree {
		fmt.Fprintln(os.Stderr, "daccedecode: -remote and -tree are mutually exclusive")
		os.Exit(2)
	}
	if *remote != "" && *ccprofOut != "" {
		fmt.Fprintln(os.Stderr, "daccedecode: -ccprof-out needs the local decode bundle (drop -remote)")
		os.Exit(2)
	}
	if *remote != "" && *tenant == "" {
		fmt.Fprintln(os.Stderr, "daccedecode: -remote requires -tenant")
		os.Exit(2)
	}
	if err := run(*dir, *n, *tree, *remote, *tenant, *ccprofOut); err != nil {
		fmt.Fprintln(os.Stderr, "daccedecode:", err)
		os.Exit(1)
	}
}

func run(dir string, n int, tree bool, remote, tenant, ccprofOut string) error {
	captures, err := readCaptures(dir)
	if err != nil {
		return err
	}
	if n > 0 && n < len(captures) {
		captures = captures[:n]
	}

	if remote != "" {
		return runRemote(remote, tenant, captures)
	}

	bf, err := os.Open(filepath.Join(dir, "bundle.json"))
	if err != nil {
		return err
	}
	defer bf.Close()
	bundle, err := core.ReadBundle(bf)
	if err != nil {
		return err
	}
	dec, err := core.NewDecoderFromBundle(bundle)
	if err != nil {
		return err
	}

	fmt.Printf("bundle: %d funcs, %d edges, %d epochs; decoding %d captures\n\n",
		len(bundle.Funcs), len(bundle.Edges), len(bundle.Epochs), len(captures))

	// -ccprof-out aggregates into a profile in either print mode; -tree
	// prints the same aggregation as a tree.
	var prof *ccprof.Profile
	if tree || ccprofOut != "" {
		prof = ccprof.New(dec.P)
	}

	if tree {
		failures := 0
		for _, c := range captures {
			ctx, err := dec.Decode(c)
			if err != nil {
				failures++
				continue
			}
			if err := prof.Add(ctx); err != nil {
				failures++
			}
		}
		fmt.Printf("calling-context profile: %d contexts, %d distinct\n\n", prof.Total(), prof.NumContexts())
		if err := prof.WriteTree(os.Stdout, 0.01); err != nil {
			return err
		}
		fmt.Println("\nhottest contexts:")
		for _, h := range prof.Hot(10) {
			fmt.Printf("  %5.1f%%  %s\n", 100*h.Frac, pretty(bundle, h.Context))
		}
		if err := writeCcprof(ccprofOut, prof); err != nil {
			return err
		}
		if failures > 0 {
			return fmt.Errorf("%d captures failed to decode", failures)
		}
		return nil
	}

	failures := 0
	for i, c := range captures {
		ctx, err := dec.Decode(c)
		if err != nil {
			failures++
			fmt.Printf("%4d  epoch=%-3d id=%-8d  DECODE ERROR: %v\n", i, c.Epoch, c.ID, err)
			continue
		}
		fmt.Printf("%4d  epoch=%-3d id=%-8d |cc|=%-3d %s\n", i, c.Epoch, c.ID, len(c.CC), pretty(bundle, ctx))
		if prof != nil {
			if err := prof.Add(ctx); err != nil {
				return fmt.Errorf("aggregating context %d: %w", i, err)
			}
		}
	}
	if err := writeCcprof(ccprofOut, prof); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d captures failed to decode", failures, len(captures))
	}
	return nil
}

// writeCcprof writes the aggregated profile to path (no-op when path is
// empty): folded text when the name ends in .folded, gzipped pprof
// protobuf otherwise.
func writeCcprof(path string, prof *ccprof.Profile) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".folded") {
		werr = prof.WriteFolded(f)
	} else {
		werr = prof.WritePprof(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("writing context profile: %w", werr)
	}
	fmt.Fprintf(os.Stderr, "ccprof: %d contexts written to %s\n", prof.Total(), path)
	return nil
}

// runRemote posts the captures to a dacced server in batches and prints
// the same per-capture lines the in-process path does, frame names
// taken from the server's response. The client bounds each request with
// a timeout and retries transient failures, honoring the server's
// Retry-After back-pressure, so a dead or briefly saturated dacced does
// not hang or hard-fail the CLI.
func runRemote(base, tenant string, captures []*core.Capture) error {
	c := &server.Client{BaseURL: base, Timeout: remoteTimeout}
	fmt.Printf("remote: %s tenant %s; decoding %d captures\n\n", base, tenant, len(captures))
	failures := 0
	for off := 0; off < len(captures); off += remoteBatch {
		batch := captures[off:min(off+remoteBatch, len(captures))]
		dr, err := c.Decode(&server.DecodeRequest{Tenant: tenant, Captures: batch})
		if err != nil {
			return err
		}
		for j, res := range dr.Results {
			i, c := off+j, batch[j]
			if res.Error != "" {
				failures++
				fmt.Printf("%4d  epoch=%-3d id=%-8d  DECODE ERROR: %v\n", i, c.Epoch, c.ID, res.Error)
				continue
			}
			s := ""
			for k, f := range res.Frames {
				if k > 0 {
					s += " → "
				}
				s += f.Name
			}
			fmt.Printf("%4d  epoch=%-3d id=%-8d |cc|=%-3d %s\n", i, c.Epoch, c.ID, len(c.CC), s)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d captures failed to decode", failures, len(captures))
	}
	return nil
}

func readCaptures(dir string) ([]*core.Capture, error) {
	cf, err := os.Open(filepath.Join(dir, "captures.json"))
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	var captures []*core.Capture
	if err := json.NewDecoder(cf).Decode(&captures); err != nil {
		return nil, fmt.Errorf("reading captures: %w", err)
	}
	return captures, nil
}

func pretty(b *core.Bundle, ctx core.Context) string {
	s := ""
	for i, f := range ctx {
		if i > 0 {
			s += " → "
		}
		s += b.Funcs[f.Fn].Name
	}
	return s
}
