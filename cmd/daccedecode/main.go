// Command daccedecode decodes captured calling contexts offline, from a
// decode bundle and a capture file produced by `daccerun -dump` — the
// error-reporting pipeline of the paper's §1: the instrumented process
// ships tiny (id, ccStack) records; the analyst decodes them later.
//
//	daccerun -bench 445.gobmk -dump /tmp/run        # writes bundle + captures
//	daccedecode -dir /tmp/run [-n 10]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dacce/internal/ccprof"
	"dacce/internal/core"
)

func main() {
	dir := flag.String("dir", "", "directory holding bundle.json and captures.json")
	n := flag.Int("n", 0, "decode only the first n captures (0 = all)")
	tree := flag.Bool("tree", false, "aggregate all captures into a calling-context profile tree instead of listing them")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: daccedecode -dir <dump-dir> [-n N] [-tree]")
		os.Exit(2)
	}
	if err := run(*dir, *n, *tree); err != nil {
		fmt.Fprintln(os.Stderr, "daccedecode:", err)
		os.Exit(1)
	}
}

func run(dir string, n int, tree bool) error {
	bf, err := os.Open(filepath.Join(dir, "bundle.json"))
	if err != nil {
		return err
	}
	defer bf.Close()
	bundle, err := core.ReadBundle(bf)
	if err != nil {
		return err
	}
	dec, err := core.NewDecoderFromBundle(bundle)
	if err != nil {
		return err
	}

	cf, err := os.Open(filepath.Join(dir, "captures.json"))
	if err != nil {
		return err
	}
	defer cf.Close()
	var captures []*core.Capture
	if err := json.NewDecoder(cf).Decode(&captures); err != nil {
		return fmt.Errorf("reading captures: %w", err)
	}
	if n > 0 && n < len(captures) {
		captures = captures[:n]
	}

	fmt.Printf("bundle: %d funcs, %d edges, %d epochs; decoding %d captures\n\n",
		len(bundle.Funcs), len(bundle.Edges), len(bundle.Epochs), len(captures))

	if tree {
		prof := ccprof.New(dec.P)
		failures := 0
		for _, c := range captures {
			ctx, err := dec.Decode(c)
			if err != nil {
				failures++
				continue
			}
			if err := prof.Add(ctx); err != nil {
				failures++
			}
		}
		fmt.Printf("calling-context profile: %d contexts, %d distinct\n\n", prof.Total(), prof.NumContexts())
		if err := prof.WriteTree(os.Stdout, 0.01); err != nil {
			return err
		}
		fmt.Println("\nhottest contexts:")
		for _, h := range prof.Hot(10) {
			fmt.Printf("  %5.1f%%  %s\n", 100*h.Frac, pretty(bundle, h.Context))
		}
		if failures > 0 {
			return fmt.Errorf("%d captures failed to decode", failures)
		}
		return nil
	}

	failures := 0
	for i, c := range captures {
		ctx, err := dec.Decode(c)
		if err != nil {
			failures++
			fmt.Printf("%4d  epoch=%-3d id=%-8d  DECODE ERROR: %v\n", i, c.Epoch, c.ID, err)
			continue
		}
		fmt.Printf("%4d  epoch=%-3d id=%-8d |cc|=%-3d %s\n", i, c.Epoch, c.ID, len(c.CC), pretty(bundle, ctx))
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d captures failed to decode", failures, len(captures))
	}
	return nil
}

func pretty(b *core.Bundle, ctx core.Context) string {
	s := ""
	for i, f := range ctx {
		if i > 0 {
			s += " → "
		}
		s += b.Funcs[f.Fn].Name
	}
	return s
}
