// Command daccerun executes one synthetic benchmark under a chosen
// calling-context scheme and prints the full counter breakdown — the
// quickest way to inspect what an encoder does on a workload.
//
//	daccerun -bench 483.xalancbmk -scheme dacce [-calls N] [-sample N]
//
// Schemes: null, dacce, pcce, stackwalk, cct, pcc.
//
// Persistence: -save-state writes the warmed encoder snapshot after the
// run; -load-state warm-starts from one, re-installing the discovered
// graph and every epoch's dictionary so the replay executes zero
// handler traps (dacce only).
//
// Telemetry: -metrics prints a metrics snapshot after the run,
// -trace-out writes a Chrome trace-event file (load it in
// chrome://tracing or Perfetto), -flight-recorder keeps a ring buffer
// of the last N events and dumps it on id overflow or decode failure.
//
// Profiling (dacce only): the streaming context profiler rides every
// sample; -ccprof-out writes the aggregate at exit (pprof protobuf, or
// folded text with a .folded name), -debug-listen serves it live at
// /debug/ccprof. -slo-pause-p99/-slo-decode-p99/-slo-trap-backlog arm
// the SLO watchdog: a breach emits an slo_breach event and auto-dumps
// the flight recorder (enabled implicitly when thresholds are set).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dacce/internal/cct"
	"dacce/internal/cliutil"
	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/pcc"
	"dacce/internal/pcce"
	"dacce/internal/stackwalk"
	"dacce/internal/stats"
	"dacce/internal/workload"
)

func main() {
	bench := flag.String("bench", "429.mcf", "benchmark name (see -list)")
	scheme := flag.String("scheme", "dacce", "null|dacce|pcce|stackwalk|cct|pcc")
	calls := flag.Int64("calls", 0, "total calls (0 = profile default)")
	sample := flag.Int64("sample", 256, "sampling period (0 = off)")
	dump := flag.String("dump", "", "directory to write bundle.json + captures.json (dacce only)")
	validate := flag.Bool("validate", false, "cross-validate every sampled context against the shadow stack (dacce/pcce)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	tel := cliutil.AddTelemetry(flag.CommandLine)
	state := cliutil.AddState(flag.CommandLine)
	prof := cliutil.AddProfiler(flag.CommandLine)
	version := cliutil.AddVersion(flag.CommandLine)
	flag.Parse()

	if *version {
		cliutil.PrintVersion("daccerun")
		return
	}
	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := run(*bench, *scheme, *calls, *sample, *dump, *validate, tel, state, prof); err != nil {
		fmt.Fprintln(os.Stderr, "daccerun:", err)
		os.Exit(1)
	}
}

func run(bench, schemeName string, calls, sample int64, dump string, validate bool, tel *cliutil.Telemetry, state *cliutil.State, prof *cliutil.Profiler) error {
	pr, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	if calls > 0 {
		pr.TotalCalls = calls
	}
	w, err := workload.Build(pr)
	if err != nil {
		return err
	}

	// Assemble the telemetry pipeline. All enabled sinks see the same
	// event stream: DACCE emits encoder events through Options.Sink,
	// and Instrument adds thread lifecycle and sampling events for
	// every scheme, baselines included. Armed SLO thresholds implicitly
	// enable the flight recorder so a breach has history to dump.
	prof.EnsureFlight(tel)
	sink := tel.Sink()

	if state.Active() && schemeName != "dacce" {
		return fmt.Errorf("-save-state/-load-state require -scheme dacce")
	}

	var sch machine.Scheme
	var d *core.DACCE
	var ps *pcce.Scheme
	switch schemeName {
	case "null":
		sch = machine.NullScheme{}
	case "dacce":
		d, err = state.NewEncoder(w.P, core.Options{
			TrackProgress:   true,
			Sink:            sink,
			ContextObserver: prof.Observer(w.P),
		})
		if err != nil {
			return err
		}
		if _, err := prof.Start(d, sink, tel.Metrics()); err != nil {
			return err
		}
		if state.Load != "" {
			st := d.Stats()
			fmt.Printf("warm start     %s: epoch %d, %d nodes, %d edges\n", state.Load, d.Epoch(), st.Nodes, st.Edges)
		}
		sch = d
	case "pcce":
		prof, err := w.CollectProfile()
		if err != nil {
			return fmt.Errorf("profiling run: %w", err)
		}
		ps = pcce.New(w.P, pcce.Profile(prof), pcce.Options{})
		sch = ps
	case "stackwalk":
		sch = stackwalk.New()
	case "cct":
		sch = cct.New()
	case "pcc":
		sch = pcc.New()
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	sch = machine.Instrument(sch, sink)

	m := w.NewMachine(sch, machine.Config{
		SampleEvery:      sample,
		DropSamples:      dump == "" && !validate,
		SteadyAfterCalls: pr.TotalCalls / int64(pr.Threads) / 3,
	})
	rs, err := m.Run()
	if err != nil {
		return err
	}

	c := rs.C
	fmt.Printf("benchmark      %s (%s), %d threads, seed %d\n", pr.Name, pr.Suite, pr.Threads, pr.Seed)
	fmt.Printf("scheme         %s\n", rs.Scheme)
	fmt.Printf("wall time      %v\n", rs.Elapsed)
	fmt.Printf("calls          %d (%d tail, %d spawns)\n", c.Calls, c.TailCalls, c.Spawns)
	fmt.Printf("model calls/s  %.0f\n", rs.CallsPerSecond())
	fmt.Printf("base cost      %d cycles\n", c.BaseCost)
	fmt.Printf("instr cost     %d cycles\n", c.InstrCost)
	fmt.Printf("overhead       %s whole-run, %s steady-state\n",
		stats.Pct(rs.Overhead()), stats.Pct(rs.SteadyOverhead()))
	fmt.Printf("ccStack        %d push / %d pop / %d peek (%.0f ops/s, avg depth %.2f, max %d)\n",
		c.CCPush, c.CCPop, c.CCPeek, rs.CCOpsPerSecond(), c.AvgCCDepth(), c.MaxCCDepth)
	fmt.Printf("tc saves       %d\n", c.TcSaves)
	fmt.Printf("handler traps  %d\n", c.HandlerTraps)
	fmt.Printf("ind. dispatch  %d compares, %d hash probes\n", c.Compares, c.HashProbes)
	fmt.Printf("stack depth    max %d\n", c.MaxShadowDepth)
	fmt.Printf("samples        %d\n", c.Samples)

	if d != nil {
		st := d.Stats()
		fmt.Printf("dacce          %d nodes, %d edges, maxID %s, gTS %d, re-encode cost %.0f us, tail fixups %d\n",
			st.Nodes, st.Edges, stats.SciNotation(st.MaxID, st.Overflowed), st.GTS, st.ReencodeCostMicros(), st.TailFixups)
		if ph := d.PauseHist().Snapshot(); ph.Count > 0 {
			fmt.Printf("stw pause      %d passes, p50 %v, p99 %v, max %v\n",
				ph.Count, time.Duration(ph.P50), time.Duration(ph.P99), time.Duration(ph.Max))
		}
	}
	if ps != nil {
		fmt.Printf("pcce           %d nodes, %d edges, maxID %s, %d unknown indirect targets\n",
			ps.Graph().NumNodes(), ps.Graph().NumEdges(),
			stats.SciNotation(ps.Assignment().UnrestrictedMaxID, ps.Overflowed()), ps.UnknownTargets())
	}
	if validate {
		decode := func(s machine.Sample) (core.Context, error) {
			switch {
			case d != nil:
				return d.DecodeSample(s)
			case ps != nil:
				return ps.DecodeSample(s)
			default:
				return nil, fmt.Errorf("-validate requires -scheme dacce or pcce")
			}
		}
		spawnShadow := map[int][]machine.Frame{}
		for _, th := range m.Threads() {
			spawnShadow[th.ID()] = th.SpawnShadow
		}
		bad := 0
		for _, s := range rs.Samples {
			ctx, err := decode(s)
			if err != nil {
				return fmt.Errorf("validation: sample %d/%d: %w", s.Thread, s.Seq, err)
			}
			if !ctx.Equal(core.ShadowContext(spawnShadow[s.Thread], s.Shadow)) {
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("validation FAILED: %d of %d samples mis-decoded", bad, len(rs.Samples))
		}
		fmt.Printf("validation     all %d sampled contexts decode to the exact call path\n", len(rs.Samples))
	}
	if dump != "" {
		if d == nil {
			return fmt.Errorf("-dump requires -scheme dacce")
		}
		if err := writeDump(dump, d, rs.Samples); err != nil {
			return err
		}
		fmt.Printf("dump           bundle + %d captures written to %s\n", len(rs.Samples), dump)
	}
	if d != nil {
		if err := state.SaveIfSet(d); err != nil {
			return err
		}
	}
	if w := prof.Watchdog(); w != nil {
		if br := w.Breaches(); len(br) > 0 {
			total := int64(0)
			for _, n := range br {
				total += n
			}
			fmt.Printf("slo            %d breach check(s) over threshold: %v\n", total, br)
		} else {
			fmt.Printf("slo            all rules within threshold\n")
		}
	}
	if fr := tel.Flight(); fr != nil && fr.Dumps() == 0 {
		fmt.Printf("flight rec.    %d events buffered, no overflow or decode failure\n", fr.Len())
	}
	if err := prof.Finish(); err != nil {
		return err
	}
	if tel.PrintMetrics {
		fmt.Println()
	}
	return tel.Finish(os.Stdout)
}

// writeDump exports the decode bundle and the sampled captures, the
// offline error-reporting pipeline daccedecode consumes.
func writeDump(dir string, d *core.DACCE, samples []machine.Sample) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	bf, err := os.Create(filepath.Join(dir, "bundle.json"))
	if err != nil {
		return err
	}
	defer bf.Close()
	if err := core.WriteBundle(bf, d.ExportBundle()); err != nil {
		return err
	}
	var captures []*core.Capture
	for _, s := range samples {
		if c, ok := s.Capture.(*core.Capture); ok {
			captures = append(captures, c)
		}
	}
	cf, err := os.Create(filepath.Join(dir, "captures.json"))
	if err != nil {
		return err
	}
	defer cf.Close()
	return json.NewEncoder(cf).Encode(captures)
}
