module dacce

go 1.23
