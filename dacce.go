// Package dacce is a library implementation of DACCE — Dynamic and
// Adaptive Calling Context Encoding (Li, Wang, Wu, Hsu, Xu; CGO 2014) —
// together with the substrate it needs (an instrumentable execution
// machine and a program model) and the baselines it is evaluated
// against (PCCE, stack walking, calling-context trees, probabilistic
// calling context).
//
// A calling context — the call path from main to the current point — is
// encoded online into a single integer id per thread, maintained by
// instrumentation on call edges. DACCE discovers call edges at run
// time, encodes only what actually executes, adapts the encoding to the
// program's behaviour, and can decode any captured (id, ccStack) pair
// back into the exact call path.
//
// # Quick start
//
//	b := dacce.NewBuilder()
//	main := b.Func("main")
//	f := b.Func("f")
//	site := b.CallSite(main, f)
//	b.Body(main, func(x dacce.Exec) { x.Call(site, dacce.NoFunc) })
//	b.Body(f, func(x dacce.Exec) { /* ... */ })
//	p := b.MustBuild()
//
//	enc := dacce.NewEncoder(p, dacce.Options{})
//	m := dacce.NewMachine(p, enc, dacce.MachineConfig{SampleEvery: 100})
//	stats, _ := m.Run()
//	for _, s := range stats.Samples {
//	    ctx, _ := enc.DecodeSample(s)
//	    fmt.Println(ctx.Pretty(p))
//	}
//
// The examples/ directory contains runnable programs: a quickstart, a
// data-race reporter, an event-log deduplicator and an adaptive hot-path
// profiler. The cmd/daccebench binary regenerates the paper's Table 1
// and Figures 8–10 on synthetic SPEC CPU2006 / Parsec 2.1 workloads.
package dacce

import (
	"io"

	"dacce/internal/breadcrumbs"
	"dacce/internal/ccdag"
	"dacce/internal/ccprof"
	"dacce/internal/cct"
	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/pcc"
	"dacce/internal/pcce"
	"dacce/internal/persist"
	"dacce/internal/prog"
	"dacce/internal/stackwalk"
	"dacce/internal/telemetry"
	"dacce/internal/trace"
	"dacce/internal/workload"
)

// Program model: build programs with a Builder, give functions bodies
// written against Exec, then run them on a Machine.
type (
	// Program is an immutable executable program.
	Program = prog.Program
	// Builder constructs Programs.
	Builder = prog.Builder
	// Exec is the interface function bodies are written against.
	Exec = prog.Exec
	// Body is a function's behaviour.
	Body = prog.Body
	// FuncID identifies a function.
	FuncID = prog.FuncID
	// SiteID identifies a call site.
	SiteID = prog.SiteID
	// ModuleID identifies a module (executable or shared library).
	ModuleID = prog.ModuleID
	// Site is a call site.
	Site = prog.Site
	// CallKind classifies call sites (normal, indirect, tail, PLT).
	CallKind = prog.Kind
)

// Sentinel identifiers.
const (
	NoFunc = prog.NoFunc
	NoSite = prog.NoSite
)

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return prog.NewBuilder() }

// Execution machine: the instrumentable substrate encoders run on.
type (
	// Machine executes one Program under one Scheme.
	Machine = machine.Machine
	// MachineConfig configures sampling, seeding and steady-state
	// accounting.
	MachineConfig = machine.Config
	// Scheme is an installable calling-context encoding scheme.
	Scheme = machine.Scheme
	// RunStats is the result of a run.
	RunStats = machine.RunStats
	// Sample pairs an encoder capture with the ground-truth shadow
	// stack.
	Sample = machine.Sample
	// Thread is an executing thread (the concrete Exec).
	Thread = machine.Thread
	// NullScheme runs without any instrumentation (baseline).
	NullScheme = machine.NullScheme
)

// NewMachine creates a machine running p under scheme.
func NewMachine(p *Program, scheme Scheme, cfg MachineConfig) *Machine {
	return machine.New(p, scheme, cfg)
}

// The DACCE encoder (the paper's contribution).
type (
	// Encoder is the dynamic and adaptive calling-context encoder.
	Encoder = core.DACCE
	// Options configures the encoder (id budget, indirect dispatch
	// thresholds, adaptive triggers).
	Options = core.Options
	// Triggers are the adaptive re-encoding thresholds.
	Triggers = core.Triggers
	// Capture is a snapshot of a thread's encoded context.
	Capture = core.Capture
	// CCEntry is one saved entry on the ccStack.
	CCEntry = core.CCEntry
	// Context is a decoded calling context, root first.
	Context = core.Context
	// ContextFrame is one step of a decoded context.
	ContextFrame = core.ContextFrame
	// EncoderStats reports graph size, re-encoding count (gTS) and
	// costs.
	EncoderStats = core.Stats
)

// NewEncoder returns a DACCE encoder for p.
func NewEncoder(p *Program, opt Options) *Encoder { return core.New(p, opt) }

// ShadowContext converts machine shadow stacks into a Context, the
// ground truth decodes are validated against.
func ShadowContext(spawn, shadow []machine.Frame) Context {
	return core.ShadowContext(spawn, shadow)
}

// Baselines evaluated against DACCE.
type (
	// PCCE is the static Precise Calling Context Encoding baseline.
	PCCE = pcce.Scheme
	// PCCEProfile is the offline edge-frequency profile PCCE consumes.
	PCCEProfile = pcce.Profile
	// PCCEOptions configures the PCCE baseline.
	PCCEOptions = pcce.Options
	// StackWalk is the walk-on-demand baseline.
	StackWalk = stackwalk.Scheme
	// CCT is the calling-context-tree baseline.
	CCT = cct.Scheme
	// PCC is the probabilistic-calling-context baseline.
	PCC = pcc.Scheme
)

// NewPCCE builds the static PCCE encoding for p under a profile.
func NewPCCE(p *Program, prof PCCEProfile, opt pcce.Options) *PCCE {
	return pcce.New(p, prof, opt)
}

// NewStackWalk returns the stack-walking baseline.
func NewStackWalk() *StackWalk { return stackwalk.New() }

// Breadcrumbs is the hash-then-reconstruct baseline (Bond et al.).
type Breadcrumbs = breadcrumbs.Scheme

// NewBreadcrumbs returns the Breadcrumbs-style baseline for p.
func NewBreadcrumbs(p *Program) *Breadcrumbs { return breadcrumbs.New(p) }

// Trace recording and replay: capture a run's exact call event stream
// and re-execute it under a different scheme.
type (
	// Trace is a recorded per-thread event stream.
	Trace = trace.Trace
	// TraceRecorder is a Scheme that records the event stream.
	TraceRecorder = trace.Recorder
)

// NewTraceRecorder returns a recording scheme.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// ReplayProgram builds a program that replays a recorded trace.
func ReplayProgram(p *Program, tr *Trace) (*Program, error) {
	return trace.ReplayProgram(p, tr)
}

// NewCCT returns the calling-context-tree baseline.
func NewCCT() *CCT { return cct.New() }

// NewPCC returns the probabilistic-calling-context baseline.
func NewPCC() *PCC { return pcc.New() }

// Calling-context profiling: aggregate decoded contexts into hot-path
// rankings, context trees and run-to-run diffs (the paper's §1
// performance-analysis application).
type (
	// CCProfile is an aggregated calling-context profile.
	CCProfile = ccprof.Profile
	// HotContext is one ranked profile entry.
	HotContext = ccprof.HotContext
	// CCDiffEntry is one context whose weight changed between runs.
	CCDiffEntry = ccprof.DiffEntry
)

// NewCCProfile returns an empty context profile over p.
func NewCCProfile(p *Program) *CCProfile { return ccprof.New(p) }

// DiffCCProfiles ranks contexts by weight change between two profiles.
func DiffCCProfiles(a, b *CCProfile) []CCDiffEntry { return ccprof.Diff(a, b) }

// Always-on profiling and SLO observability: the streaming profiler
// aggregates every context the live sampling controller decodes into
// per-thread shards (allocation-free once warm) and exports pprof
// protobuf, folded stacks or an HTTP handler at any point of the run;
// the watchdog checks quantile rules over the encoder's always-on
// pause/decode histograms and emits breach events.
type (
	// CCStreaming is the always-on streaming context profiler; attach
	// it via Options.ContextObserver.
	CCStreaming = ccprof.Streaming
	// ContextObserver consumes decoded contexts from the sampling path.
	ContextObserver = core.ContextObserver
	// Histogram is a lock-free log-bucketed histogram with estimated
	// p50/p90/p99 and exact-max snapshots.
	Histogram = telemetry.Histogram
	// HistSnapshot is one histogram quantile snapshot.
	HistSnapshot = telemetry.HistSnapshot
	// Watchdog periodically evaluates SLO rules and emits EvSLOBreach
	// events into its sink on violation.
	Watchdog = telemetry.Watchdog
	// SLORule is one watchdog threshold over a gauge-valued source.
	SLORule = telemetry.SLORule
)

// NewCCStreaming returns a streaming context profiler over p.
func NewCCStreaming(p *Program) *CCStreaming { return ccprof.NewStreaming(p) }

// Hash-consed context DAG: every decoded context interned as an
// immutable node so a full calling context is one pointer, equality is
// pointer comparison, contexts share suffix storage, and a warm
// re-decode allocates nothing. Encoder.DecodeNode / DecodeSampleNode
// return interned nodes from the encoder's own DAG; NodeContext
// materializes a node back into a Context. The DAG is bounded, not
// append-only: the encoder collects generations below the oldest
// still-referenced epoch after each re-encoding pass (release captures
// with Encoder.ReleaseCapture to let the floor advance), preserving
// survivor pointer identity across collections.
type (
	// CCNode is one interned context node; pointer-equal CCNodes are
	// equal contexts.
	CCNode = ccdag.Node
	// CCDAG is a concurrency-safe hash-consed context DAG.
	CCDAG = ccdag.DAG
	// CCDAGStats is a DAG health snapshot (nodes, intern hit rate,
	// memory estimate).
	CCDAGStats = ccdag.Stats
	// CCDAGCollectStats reports one DAG collection: the generation
	// floor, the node count before, and how many nodes were freed or
	// rescued by racing readers.
	CCDAGCollectStats = ccdag.CollectStats
	// NodeObserver is a ContextObserver upgrade: implementations
	// receive interned nodes instead of frame slices from the sampling
	// path.
	NodeObserver = core.NodeObserver
	// NodeReleaser is an optional ContextObserver extension: the
	// encoder calls ReleaseNodes before collecting the DAG so the
	// observer can drop its node pins (CCStreaming implements it by
	// folding pinned counts into the merged profile).
	NodeReleaser = core.NodeReleaser
)

// NewCCDAG returns an empty context DAG, for interning contexts
// decoded through a standalone Decoder. Live encoders already carry
// one (Encoder.DAG).
func NewCCDAG() *CCDAG { return ccdag.New() }

// NodeContext materializes an interned context node into a root-first
// Context.
func NodeContext(n *CCNode) Context { return core.NodeContext(n) }

// AppendNodeContext materializes n into a caller-reused buffer,
// allocating only when dst is too small.
func AppendNodeContext(dst Context, n *CCNode) Context { return core.AppendNodeContext(dst, n) }

// NewWatchdog returns an SLO watchdog emitting breaches into sink.
func NewWatchdog(sink Sink) *Watchdog { return telemetry.NewWatchdog(sink) }

// QuantileSource adapts a histogram quantile into an SLORule source.
func QuantileSource(h *Histogram, q float64) func() int64 {
	return telemetry.QuantileSource(h, q)
}

// Synthetic benchmarks: the 41 SPEC CPU2006 / Parsec 2.1 workload
// profiles calibrated from the paper's Table 1.
type (
	// Workload is a generated benchmark program with its driver.
	Workload = workload.Workload
	// WorkloadProfile parameterizes a synthetic benchmark.
	WorkloadProfile = workload.Profile
)

// Benchmarks returns all 41 benchmark profiles in Table 1 order.
func Benchmarks() []WorkloadProfile { return workload.Profiles() }

// BenchmarkByName returns one benchmark profile.
func BenchmarkByName(name string) (WorkloadProfile, bool) { return workload.ByName(name) }

// BuildWorkload generates the program for a benchmark profile.
func BuildWorkload(pr WorkloadProfile) (*Workload, error) { return workload.Build(pr) }

// Telemetry: a structured event stream, a metrics registry with
// Prometheus-style and JSON exposition, a Chrome trace-event exporter
// and a flight recorder. Pass a Sink via Options.Sink (DACCE) or wrap
// any baseline with Instrument to put it on the same stream.
type (
	// Sink consumes telemetry events. Implementations must be safe for
	// concurrent use and must not call back into the emitting encoder.
	Sink = telemetry.Sink
	// Event is one telemetry event.
	Event = telemetry.Event
	// EventKind discriminates telemetry events.
	EventKind = telemetry.Kind
	// ReencodeReason attributes a re-encoding pass to its trigger.
	ReencodeReason = telemetry.Reason
	// Telemetry is a metrics-registry sink: it aggregates the event
	// stream into counters, gauges and histograms and writes
	// Prometheus-style text or JSON snapshots.
	Telemetry = telemetry.Metrics
	// ChromeTrace is a sink that renders the event stream as a Chrome
	// trace-event JSON file (chrome://tracing, Perfetto), with one
	// duration span per re-encoding epoch.
	ChromeTrace = telemetry.ChromeTrace
	// FlightRecorder is a bounded ring-buffer sink that dumps the last
	// N events on id overflow or decode failure.
	FlightRecorder = telemetry.FlightRecorder
	// CountingSink counts events by kind (useful in tests).
	CountingSink = telemetry.CountingSink
)

// NewTelemetry returns a metrics-registry sink.
func NewTelemetry() *Telemetry { return telemetry.NewMetrics() }

// NewChromeTrace returns a Chrome trace-event sink.
func NewChromeTrace() *ChromeTrace { return telemetry.NewChromeTrace() }

// NewFlightRecorder returns a flight-recorder sink holding the last n
// events (n <= 0 selects the default capacity) and auto-dumping to out
// on id overflow or decode failure. out may be nil to disable
// auto-dumps.
func NewFlightRecorder(n int, out io.Writer) *FlightRecorder {
	return telemetry.NewFlightRecorder(n, out)
}

// MultiSink fans events out to several sinks; nils are dropped.
func MultiSink(sinks ...Sink) Sink { return telemetry.Multi(sinks...) }

// Instrument wraps any scheme so thread lifecycle and sampling events
// flow into sink, putting baselines on the same event stream as DACCE.
// A nil sink returns s unchanged.
func Instrument(s Scheme, sink Sink) Scheme { return machine.Instrument(s, sink) }

// Persistence: snapshot the full encoder state to a self-describing
// binary blob (magic, version, CRC) and warm-start a later process from
// it — the restarted encoder re-installs the discovered graph and every
// epoch's dictionary, so replaying the same workload executes zero
// handler traps. Snapshots also rehydrate into standalone decoders,
// which is what the dacced decode service serves per tenant.
type (
	// EncoderState is the complete persisted encoder state.
	EncoderState = core.EncoderState
	// Decoder decodes captures offline, without a live encoder.
	Decoder = core.Decoder
)

// MarshalState serializes a state snapshot to the versioned,
// checksummed binary format.
func MarshalState(st *EncoderState) ([]byte, error) { return persist.Marshal(st) }

// UnmarshalState parses and validates a snapshot blob.
func UnmarshalState(data []byte) (*EncoderState, error) { return persist.Unmarshal(data) }

// StateHash returns the canonical content hash of a snapshot blob, the
// tenant-distinguishing suffix of the dacced registry key.
func StateHash(data []byte) string { return persist.Hash(data) }

// SaveState atomically writes enc's snapshot to path
// (write-to-temp + rename).
func SaveState(path string, enc *Encoder) error { return persist.SaveEncoder(path, enc) }

// LoadState reads and validates a snapshot file.
func LoadState(path string) (*EncoderState, error) { return persist.Load(path) }

// WarmStart builds an encoder for p pre-loaded with the snapshot at
// path: the graph, dictionaries and adaptive counters resume where the
// saving process left off.
func WarmStart(path string, p *Program, opt Options) (*Encoder, error) {
	return persist.WarmStart(path, p, opt)
}
