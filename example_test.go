package dacce_test

import (
	"fmt"

	"dacce"
)

// Example builds a three-function program, runs it under the DACCE
// encoder and decodes a captured context.
func Example() {
	b := dacce.NewBuilder()
	mainF := b.Func("main")
	parse := b.Func("parse")
	emit := b.Func("emit")
	sp := b.CallSite(mainF, parse)
	se := b.CallSite(parse, emit)

	var enc *dacce.Encoder
	var captured *dacce.Capture
	b.Body(mainF, func(x dacce.Exec) { x.Call(sp, dacce.NoFunc) })
	b.Body(parse, func(x dacce.Exec) { x.Call(se, dacce.NoFunc) })
	b.Body(emit, func(x dacce.Exec) {
		captured = enc.CaptureTyped(x.(*dacce.Thread))
	})

	p := b.MustBuild()
	enc = dacce.NewEncoder(p, dacce.Options{})
	m := dacce.NewMachine(p, enc, dacce.MachineConfig{})
	if _, err := m.Run(); err != nil {
		fmt.Println("run failed:", err)
		return
	}
	ctx, err := enc.Decode(captured)
	if err != nil {
		fmt.Println("decode failed:", err)
		return
	}
	fmt.Println(ctx.Pretty(p))
	// Output: main → parse → emit
}

// ExampleEncoder_ForceReencode shows that contexts captured before a
// re-encoding stay decodable through their epoch's dictionary.
func ExampleEncoder_ForceReencode() {
	b := dacce.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	sf := b.CallSite(mainF, f)

	var enc *dacce.Encoder
	var old *dacce.Capture
	b.Body(mainF, func(x dacce.Exec) { x.Call(sf, dacce.NoFunc) })
	b.Body(f, func(x dacce.Exec) { old = enc.CaptureTyped(x.(*dacce.Thread)) })
	p := b.MustBuild()
	enc = dacce.NewEncoder(p, dacce.Options{})
	m := dacce.NewMachine(p, enc, dacce.MachineConfig{})
	if _, err := m.Run(); err != nil {
		fmt.Println(err)
		return
	}

	enc.ForceReencode(nil) // gTimeStamp advances; old epoch's dictionary is retained
	ctx, err := enc.Decode(old)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("epoch %d capture still decodes: %s\n", old.Epoch, ctx.Pretty(p))
	// Output: epoch 0 capture still decodes: main → f
}

// ExampleCCProfile aggregates decoded contexts into a hot-path ranking.
func ExampleCCProfile() {
	b := dacce.NewBuilder()
	mainF := b.Func("main")
	hot := b.Func("hot")
	cold := b.Func("cold")
	sh := b.CallSite(mainF, hot)
	sc := b.CallSite(mainF, cold)

	var enc *dacce.Encoder
	var caps []*dacce.Capture
	grab := func(x dacce.Exec) { caps = append(caps, enc.CaptureTyped(x.(*dacce.Thread))) }
	b.Body(mainF, func(x dacce.Exec) {
		for i := 0; i < 9; i++ {
			x.Call(sh, dacce.NoFunc)
		}
		x.Call(sc, dacce.NoFunc)
	})
	b.Body(hot, grab)
	b.Body(cold, grab)
	p := b.MustBuild()
	enc = dacce.NewEncoder(p, dacce.Options{})
	m := dacce.NewMachine(p, enc, dacce.MachineConfig{})
	if _, err := m.Run(); err != nil {
		fmt.Println(err)
		return
	}

	prof := dacce.NewCCProfile(p)
	for _, c := range caps {
		ctx, err := enc.Decode(c)
		if err != nil {
			fmt.Println(err)
			return
		}
		prof.Add(ctx)
	}
	for _, h := range prof.Hot(2) {
		fmt.Printf("%3.0f%% %s\n", 100*h.Frac, h.Context.Pretty(p))
	}
	// Output:
	//  90% main → hot
	//  10% main → cold
}

// ExampleBenchmarkByName runs a paper benchmark under the encoder.
func ExampleBenchmarkByName() {
	pr, ok := dacce.BenchmarkByName("429.mcf")
	if !ok {
		fmt.Println("unknown benchmark")
		return
	}
	pr.TotalCalls = 10_000
	w, err := dacce.BuildWorkload(pr)
	if err != nil {
		fmt.Println(err)
		return
	}
	enc := dacce.NewEncoder(w.P, dacce.Options{})
	m := dacce.NewMachine(w.P, enc, dacce.MachineConfig{Seed: pr.Seed + 1, DropSamples: true})
	if _, err := m.Run(); err != nil {
		fmt.Println(err)
		return
	}
	st := enc.Stats()
	fmt.Printf("discovered %d functions, %d edges\n", st.Nodes, st.Edges)
	// Output: discovered 11 functions, 12 edges
}
