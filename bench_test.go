// Benchmarks regenerating the paper's evaluation (one per table/figure,
// DESIGN.md §4) plus microbenchmarks and ablations of DACCE's design
// choices. Wall time here measures this implementation; the paper-shape
// numbers (overhead %, maxID, gTS, depths) are attached to each result
// via b.ReportMetric, so `go test -bench . -benchmem` prints the same
// quantities the paper reports.
//
// The per-figure benchmarks run a representative subset of the 41
// workloads to keep `go test -bench .` short; `cmd/daccebench` runs the
// full suite.
package dacce_test

import (
	"testing"

	"dacce"
	"dacce/internal/core"
	"dacce/internal/experiments"
	"dacce/internal/machine"
	"dacce/internal/pcce"
	"dacce/internal/stats"
	"dacce/internal/workload"
)

const benchCalls = 120_000

// representative covers the paper's discussion points: tiny (mcf),
// recursion-heavy (gobmk), indirect-heavy OO (xalancbmk), many-target
// indirect + threads (x264), static-friendly (sjeng, milc), dlopen
// (perlbench).
var representative = []string{
	"429.mcf", "445.gobmk", "483.xalancbmk", "x264", "458.sjeng", "433.milc", "400.perlbench",
}

func mustProfile(b *testing.B, name string) workload.Profile {
	b.Helper()
	pr, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %q", name)
	}
	pr.TotalCalls = benchCalls
	return pr
}

// BenchmarkTable1Characteristics regenerates Table 1 rows: per
// benchmark, both encoders' graph sizes, maxID, ccStack traffic and
// re-encoding counts.
func BenchmarkTable1Characteristics(b *testing.B) {
	for _, name := range representative {
		b.Run(name, func(b *testing.B) {
			var r *experiments.BenchResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = experiments.RunBenchmark(mustProfile(b, name), experiments.RunConfig{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.PCCE.Edges), "pcceEdges")
			b.ReportMetric(float64(r.DACCE.Edges), "dacceEdges")
			b.ReportMetric(float64(r.DACCE.MaxID), "dacceMaxID")
			b.ReportMetric(float64(r.DACCE.GTS), "gTS")
			b.ReportMetric(r.DACCE.CCPerSec, "ccStack/s")
		})
	}
}

// BenchmarkFig8Overhead regenerates Figure 8: steady-state runtime
// overhead of PCCE vs DACCE (cost model, attached as metrics) while
// measuring the real wall time per simulated call of each scheme.
func BenchmarkFig8Overhead(b *testing.B) {
	for _, name := range representative {
		pr := mustProfile(b, name)
		w := workload.MustBuild(pr)
		prof, err := w.CollectProfile()
		if err != nil {
			b.Fatal(err)
		}
		steady := pr.TotalCalls / int64(pr.Threads) / 3

		b.Run(name+"/pcce", func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				s := pcce.New(w.P, pcce.Profile(prof), pcce.Options{})
				m := machine.New(w.P, s, machine.Config{SampleEvery: 256, DropSamples: true, SteadyAfterCalls: steady, Seed: pr.Seed + 1})
				rs, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				last = rs.SteadyOverhead()
			}
			b.ReportMetric(100*last, "overhead%")
			b.ReportMetric(float64(pr.TotalCalls)*float64(b.N)/b.Elapsed().Seconds(), "simcalls/s")
		})
		b.Run(name+"/dacce", func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				d := core.New(w.P, core.Options{})
				m := machine.New(w.P, d, machine.Config{SampleEvery: 256, DropSamples: true, SteadyAfterCalls: steady, Seed: pr.Seed + 1})
				rs, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				last = rs.SteadyOverhead()
			}
			b.ReportMetric(100*last, "overhead%")
			b.ReportMetric(float64(pr.TotalCalls)*float64(b.N)/b.Elapsed().Seconds(), "simcalls/s")
		})
	}
}

// BenchmarkFig9Progress regenerates Figure 9: the growth of the encoded
// graph over time for the four benchmarks the paper plots.
func BenchmarkFig9Progress(b *testing.B) {
	for _, name := range experiments.Fig9Names {
		b.Run(name, func(b *testing.B) {
			var s *stats.Series
			for i := 0; i < b.N; i++ {
				var err error
				s, err = experiments.Fig9(name, experiments.RunConfig{Calls: benchCalls})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.Len()), "points")
		})
	}
}

// BenchmarkFig10StackDepth regenerates Figure 10: the cumulative
// distributions of call-stack depth and ccStack depth.
func BenchmarkFig10StackDepth(b *testing.B) {
	for _, name := range experiments.Fig10Names {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig10(name, experiments.RunConfig{Calls: benchCalls}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchemes compares the per-call wall cost of every scheme on
// one mid-size workload — the related-work spectrum (§7): nothing <
// pcc < encoding schemes < cct, with stackwalk paying at capture time.
func BenchmarkSchemes(b *testing.B) {
	pr := mustProfile(b, "456.hmmer")
	w := workload.MustBuild(pr)
	prof, err := w.CollectProfile()
	if err != nil {
		b.Fatal(err)
	}
	mk := map[string]func() machine.Scheme{
		"null":      func() machine.Scheme { return machine.NullScheme{} },
		"pcc":       func() machine.Scheme { return dacce.NewPCC() },
		"stackwalk": func() machine.Scheme { return dacce.NewStackWalk() },
		"dacce":     func() machine.Scheme { return core.New(w.P, core.Options{}) },
		"pcce":      func() machine.Scheme { return pcce.New(w.P, pcce.Profile(prof), pcce.Options{}) },
		"cct":       func() machine.Scheme { return dacce.NewCCT() },
	}
	for _, name := range []string{"null", "pcc", "stackwalk", "dacce", "pcce", "cct"} {
		b.Run(name, func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				m := machine.New(w.P, mk[name](), machine.Config{SampleEvery: 256, DropSamples: true, Seed: pr.Seed + 1})
				rs, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				overhead = rs.Overhead()
			}
			b.ReportMetric(100*overhead, "overhead%")
		})
	}
}

// BenchmarkAblationRecursionCompression measures the Fig. 5e counter
// compression: ccStack traffic and max depth with and without it on the
// recursion-heavy gobmk workload.
func BenchmarkAblationRecursionCompression(b *testing.B) {
	pr := mustProfile(b, "445.gobmk")
	w := workload.MustBuild(pr)
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"compress", core.Options{CompressMinPushes: 16}},
		{"nocompress", core.Options{CompressMinPushes: 1 << 60}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var rs *machine.RunStats
			for i := 0; i < b.N; i++ {
				d := core.New(w.P, cfg.opt)
				m := machine.New(w.P, d, machine.Config{SampleEvery: 256, DropSamples: true, Seed: pr.Seed + 1})
				var err error
				rs, err = m.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rs.C.MaxCCDepth), "maxCCDepth")
			b.ReportMetric(float64(rs.C.CCPush), "ccPushes")
			b.ReportMetric(100*rs.Overhead(), "overhead%")
		})
	}
}

// BenchmarkAblationIndirectHash measures the Fig. 4 hash dispatch
// against pure inline comparison chains on the many-target x264
// workload (the paper's §6.4 x264 discussion).
func BenchmarkAblationIndirectHash(b *testing.B) {
	pr := mustProfile(b, "x264")
	w := workload.MustBuild(pr)
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"hash", core.Options{InlineThreshold: 4}},
		{"inlineonly", core.Options{InlineThreshold: 1 << 30}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var rs *machine.RunStats
			for i := 0; i < b.N; i++ {
				d := core.New(w.P, cfg.opt)
				m := machine.New(w.P, d, machine.Config{SampleEvery: 256, DropSamples: true, Seed: pr.Seed + 1})
				var err error
				rs, err = m.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rs.C.Compares), "compares")
			b.ReportMetric(float64(rs.C.HashProbes), "probes")
			b.ReportMetric(100*rs.Overhead(), "overhead%")
		})
	}
}

// BenchmarkAblationHotFirst measures the hottest-edge-gets-code-0
// ordering (§4): without it, hot paths keep their id arithmetic.
func BenchmarkAblationHotFirst(b *testing.B) {
	pr := mustProfile(b, "458.sjeng")
	w := workload.MustBuild(pr)
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"hotfirst", core.Options{}},
		{"unordered", core.Options{NoHotFirst: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var rs *machine.RunStats
			for i := 0; i < b.N; i++ {
				d := core.New(w.P, cfg.opt)
				m := machine.New(w.P, d, machine.Config{SampleEvery: 256, DropSamples: true, Seed: pr.Seed + 1})
				var err error
				rs, err = m.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*rs.Overhead(), "overhead%")
		})
	}
}

// BenchmarkAblationAdaptivity caps re-encoding after the first pass
// ("dynamic but not adaptive"): later-discovered and phase-shifted hot
// edges stay on the ccStack, inflating traffic — the reason the paper
// is *adaptive*, not just dynamic.
func BenchmarkAblationAdaptivity(b *testing.B) {
	pr := mustProfile(b, "483.xalancbmk")
	w := workload.MustBuild(pr)
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"adaptive", core.Options{}},
		{"frozen", core.Options{MaxReencodes: 1}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var rs *machine.RunStats
			for i := 0; i < b.N; i++ {
				d := core.New(w.P, cfg.opt)
				m := machine.New(w.P, d, machine.Config{SampleEvery: 256, DropSamples: true, Seed: pr.Seed + 1})
				var err error
				rs, err = m.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rs.C.CCPush), "ccPushes")
			b.ReportMetric(100*rs.Overhead(), "overhead%")
		})
	}
}

// BenchmarkAblationIncremental compares full re-encoding against the
// incremental renumbering extension on a discovery-heavy benchmark:
// the accounted re-encoding cost (Table 1 "costs") shrinks to the
// changed region.
func BenchmarkAblationIncremental(b *testing.B) {
	pr := mustProfile(b, "403.gcc")
	w := workload.MustBuild(pr)
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"full", core.Options{}},
		{"incremental", core.Options{Incremental: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				d := core.New(w.P, cfg.opt)
				m := machine.New(w.P, d, machine.Config{SampleEvery: 256, DropSamples: true, Seed: pr.Seed + 1})
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				st = d.Stats()
			}
			b.ReportMetric(float64(st.GTS), "gTS")
			b.ReportMetric(float64(st.IncrementalPasses), "incrPasses")
			b.ReportMetric(st.ReencodeCostMicros(), "reencode_us")
		})
	}
}

// BenchmarkEncodePass measures one re-encoding pass (numbering +
// back-edge classification) on the largest discovered graph — the
// latency every stop-the-world pays.
func BenchmarkEncodePass(b *testing.B) {
	pr := mustProfile(b, "403.gcc")
	w := workload.MustBuild(pr)
	d := core.New(w.P, core.Options{})
	m := machine.New(w.P, d, machine.Config{SampleEvery: 512, DropSamples: true, Seed: pr.Seed + 1})
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(d.Graph().NumEdges()), "edges")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ForceReencode(nil)
	}
}

// BenchmarkDecode measures decoding captures back into call paths — the
// offline analysis cost.
func BenchmarkDecode(b *testing.B) {
	pr := mustProfile(b, "445.gobmk")
	w := workload.MustBuild(pr)
	d := core.New(w.P, core.Options{})
	m := machine.New(w.P, d, machine.Config{SampleEvery: 64, Seed: pr.Seed + 1})
	rs, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	if len(rs.Samples) == 0 {
		b.Fatal("no samples")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rs.Samples[i%len(rs.Samples)]
		if _, err := d.DecodeSample(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCapture measures taking one context snapshot, the operation
// client tools (race detectors, event loggers) perform on their hot
// paths — the reason encoding beats stack walking (§1).
func BenchmarkCapture(b *testing.B) {
	bld := dacce.NewBuilder()
	mainF := bld.Func("main")
	leaf := bld.Func("leaf")
	site := bld.CallSite(mainF, leaf)
	var d *core.DACCE
	var th *machine.Thread
	stop := make(chan struct{})
	done := make(chan struct{})
	bld.Body(mainF, func(x dacce.Exec) { x.Call(site, dacce.NoFunc) })
	bld.Body(leaf, func(x dacce.Exec) {
		th = x.(*machine.Thread)
		close(done)
		<-stop
	})
	p := bld.MustBuild()
	d = core.New(p, core.Options{})
	m := machine.New(p, d, machine.Config{})
	go func() { _, _ = m.Run() }()
	<-done
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Capture(th)
	}
	b.StopTimer()
	close(stop)
}

// BenchmarkTelemetry quantifies the cost of the telemetry layer on a
// full DACCE workload run. The nil-sink variant is the library default
// and must stay within noise of no telemetry at all — every emission
// site guards on the sink before constructing an event, so disabled
// telemetry costs one predicted branch. The counting variant bounds the
// per-event cost of the cheapest real sink, and the metrics variant the
// full registry pipeline.
func BenchmarkTelemetry(b *testing.B) {
	pr := mustProfile(b, "445.gobmk")
	w := workload.MustBuild(pr)
	run := func(b *testing.B, sink dacce.Sink) {
		for i := 0; i < b.N; i++ {
			d := core.New(w.P, core.Options{Sink: sink})
			m := machine.New(w.P, machine.Instrument(d, sink), machine.Config{SampleEvery: 256, DropSamples: true, Seed: pr.Seed + 1})
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(pr.TotalCalls)*float64(b.N)/b.Elapsed().Seconds(), "simcalls/s")
	}
	b.Run("NilSink", func(b *testing.B) { run(b, nil) })
	b.Run("Counting", func(b *testing.B) { run(b, &dacce.CountingSink{}) })
	b.Run("Metrics", func(b *testing.B) { run(b, dacce.NewTelemetry()) })
}
