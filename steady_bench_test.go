// Steady-state benchmarks and allocation gates for the lock-free
// runtime paths: the encoded call fast path, capture, and the sampling
// controller. The gates are tests, not benchmarks, so `go test ./...`
// fails if an allocation sneaks back into a path the snapshot design
// made allocation-free; the benchmarks report the same paths' wall
// cost and allocs/op for trend tracking. The multi-threaded scalability
// suite itself lives in internal/experiments (SteadyState) and is
// driven by `daccebench steady`; BenchmarkSteadyScaling runs a reduced
// version here so `go test -bench Steady` shows the shape without the
// full sweep.
package dacce_test

import (
	"fmt"
	"testing"

	"dacce"
	"dacce/internal/ccprof"
	"dacce/internal/core"
	"dacce/internal/experiments"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// steadyFixture is a warmed single-thread machine parked at
// main → mid, with mid's body blocked on a channel so the benchmark
// goroutine can puppet the thread: drive calls on an already-encoded
// site, take captures, and feed the sampling controller directly. The
// pattern follows BenchmarkCapture; it works because the machine's
// thread is a cooperative executor, not an OS thread, and exactly one
// goroutine drives it at a time.
type steadyFixture struct {
	d    *core.DACCE
	th   *machine.Thread
	site dacce.SiteID
	stop chan struct{}
}

func newSteadyFixture(tb testing.TB) *steadyFixture {
	return newSteadyFixtureOpts(tb, func(*prog.Program) core.Options { return core.Options{} })
}

// newSteadyFixtureOpts builds the fixture with caller-chosen encoder
// options; the callback sees the built program so options can hold
// program-derived state (the streaming profiler, say).
func newSteadyFixtureOpts(tb testing.TB, opts func(*prog.Program) core.Options) *steadyFixture {
	tb.Helper()
	bld := dacce.NewBuilder()
	mainF := bld.Func("main")
	mid := bld.Func("mid")
	leaf := bld.Func("leaf")
	siteMid := bld.CallSite(mainF, mid)
	siteLeaf := bld.CallSite(mid, leaf)
	f := &steadyFixture{stop: make(chan struct{})}
	done := make(chan struct{})
	bld.Body(mainF, func(x dacce.Exec) { x.Call(siteMid, dacce.NoFunc) })
	bld.Body(mid, func(x dacce.Exec) {
		f.th = x.(*machine.Thread)
		close(done)
		<-f.stop
	})
	p := bld.MustBuild()
	f.d = core.New(p, opts(p))
	// Sampling off: the fixture's users sample by hand; Maintain still
	// runs on its default period and must stay allocation-free too.
	m := machine.New(p, f.d, machine.Config{})
	go func() { _, _ = m.Run() }()
	<-done

	// Discover the leaf edge, then re-encode so the site is patched with
	// the zero-cost encoded stub — the steady state under test.
	f.th.Call(siteLeaf, dacce.NoFunc)
	f.d.ForceReencode(f.th)
	f.site = siteLeaf
	if got := f.d.Epoch(); got == 0 {
		tb.Fatal("fixture: forced re-encoding did not advance the epoch")
	}
	return f
}

func (f *steadyFixture) close() { close(f.stop) }

// encodedCall drives one full call+return through the encoded stub:
// prologue safepoint, id arithmetic, empty leaf body, epilogue.
func (f *steadyFixture) encodedCall() { f.th.Call(f.site, dacce.NoFunc) }

// sampleOnce exercises the full steady-state sampling path the machine
// runs every SampleEvery calls: pooled capture, lock-free decode on the
// thread's scratch buffers, heat credit, trigger check, release.
func (f *steadyFixture) sampleOnce() {
	c := f.d.Capture(f.th)
	f.d.OnSample(f.th, c)
	f.d.ReleaseCapture(c)
}

// TestEncodedFastPathNoAllocs gates the tentpole invariant: a call
// through an encoded site in steady state performs zero heap
// allocations. This is the path the paper's near-zero overhead claim
// rests on — one add on call, one subtract on return.
func TestEncodedFastPathNoAllocs(t *testing.T) {
	f := newSteadyFixture(t)
	defer f.close()
	for i := 0; i < 64; i++ { // warm pools and thread-local buffers
		f.encodedCall()
	}
	if avg := testing.AllocsPerRun(1000, f.encodedCall); avg != 0 {
		t.Fatalf("encoded call fast path allocates %v allocs/op, want 0", avg)
	}
}

// TestOnSampleNoAllocs gates the sampling controller: capture, decode,
// heat estimation and trigger check run without heap allocation once
// the capture pool and the thread's decoder scratch are warm. Before
// the snapshot rework this path allocated a Decoder, a ccStack copy
// and two decode buffers per sample while holding the global mutex.
func TestOnSampleNoAllocs(t *testing.T) {
	f := newSteadyFixture(t)
	defer f.close()
	for i := 0; i < 64; i++ {
		f.sampleOnce()
	}
	if avg := testing.AllocsPerRun(1000, f.sampleOnce); avg != 0 {
		t.Fatalf("steady-state sampling allocates %v allocs/op, want 0", avg)
	}
}

// TestDecodeSampleNodeNoAllocs gates the DAG decode path: once a
// context has been interned, re-decoding a sample of it into its
// canonical node touches neither the heap nor any lock — the pooled
// scratch and the DAG's lock-free read path cover the whole decode.
// This is the invariant the streaming pipeline's firehose pricing
// (`daccebench stream`) rests on.
func TestDecodeSampleNodeNoAllocs(t *testing.T) {
	f := newSteadyFixture(t)
	defer f.close()
	c := f.d.CaptureTyped(f.th)
	s := machine.Sample{Thread: 0, Fn: c.Fn, Capture: c}
	for i := 0; i < 64; i++ { // warm the scratch pool and intern the context
		if _, err := f.d.DecodeSampleNode(s); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := f.d.DecodeSampleNode(s); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("warm DecodeSampleNode allocates %v allocs/op, want 0", avg)
	}
}

// BenchmarkDecodeSampleNode measures the warm node decode against
// BenchmarkOnSample's slice path — the per-sample cost a streaming
// consumer pays for a canonical pointer instead of a frame slice.
func BenchmarkDecodeSampleNode(b *testing.B) {
	f := newSteadyFixture(b)
	defer f.close()
	c := f.d.CaptureTyped(f.th)
	s := machine.Sample{Thread: 0, Fn: c.Fn, Capture: c}
	for i := 0; i < 64; i++ {
		if _, err := f.d.DecodeSampleNode(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.d.DecodeSampleNode(s); err != nil {
			b.Fatal(err)
		}
	}
}

// newProfiledFixture is the steady fixture with the always-on streaming
// profiler attached as the encoder's context observer.
func newProfiledFixture(tb testing.TB) (*steadyFixture, *ccprof.Streaming) {
	var s *ccprof.Streaming
	f := newSteadyFixtureOpts(tb, func(p *prog.Program) core.Options {
		s = ccprof.NewStreaming(p)
		return core.Options{ContextObserver: s}
	})
	return f, s
}

// TestEncodedFastPathNoAllocsProfiled re-runs the fast-path gate with
// the streaming profiler attached: the observer rides the sample path
// only, so the encoded call must be bit-for-bit as free as without it.
func TestEncodedFastPathNoAllocsProfiled(t *testing.T) {
	f, _ := newProfiledFixture(t)
	defer f.close()
	for i := 0; i < 64; i++ {
		f.encodedCall()
	}
	if avg := testing.AllocsPerRun(1000, f.encodedCall); avg != 0 {
		t.Fatalf("encoded call with profiler allocates %v allocs/op, want 0", avg)
	}
}

// TestOnSampleNoAllocsProfiled gates the always-on profiler's headline
// claim: streaming context aggregation adds zero allocations to the
// steady-state sampling path once its shard tree is warm.
func TestOnSampleNoAllocsProfiled(t *testing.T) {
	f, s := newProfiledFixture(t)
	defer f.close()
	for i := 0; i < 64; i++ {
		f.sampleOnce()
	}
	if avg := testing.AllocsPerRun(1000, f.sampleOnce); avg != 0 {
		t.Fatalf("sampling with streaming profiler allocates %v allocs/op, want 0", avg)
	}
	if s.Observed() == 0 {
		t.Fatal("profiler observed nothing — the gate proved the wrong path")
	}
	if got := s.Total(); got != s.Observed() {
		t.Fatalf("merged total %d != observed %d", got, s.Observed())
	}
}

// BenchmarkOnSampleProfiled measures the sampling path with the
// streaming profiler attached — the delta against BenchmarkOnSample is
// the profiler's per-sample cost.
func BenchmarkOnSampleProfiled(b *testing.B) {
	f, _ := newProfiledFixture(b)
	defer f.close()
	for i := 0; i < 64; i++ {
		f.sampleOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.sampleOnce()
	}
}

// BenchmarkEncodedCall measures the encoded call+return fast path.
func BenchmarkEncodedCall(b *testing.B) {
	f := newSteadyFixture(b)
	defer f.close()
	for i := 0; i < 64; i++ {
		f.encodedCall()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.encodedCall()
	}
}

// BenchmarkOnSample measures the steady-state sampling path
// (capture + lock-free decode + heat credit + release).
func BenchmarkOnSample(b *testing.B) {
	f := newSteadyFixture(b)
	defer f.close()
	for i := 0; i < 64; i++ {
		f.sampleOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.sampleOnce()
	}
}

// BenchmarkSteadyScaling runs a reduced steady-state suite per thread
// count: warm-up on a fresh encoder, then the steady run whose
// throughput is reported. The full sweep with the serialized
// comparison is `daccebench steady`.
func BenchmarkSteadyScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dthreads", n), func(b *testing.B) {
			var rep *experiments.SteadyReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = experiments.SteadyState(experiments.SteadyConfig{
					Threads:        []int{n},
					CallsPerThread: 60_000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, row := range rep.Rows {
				switch row.Phase {
				case "steady":
					b.ReportMetric(row.CallsPerSec, "steady_calls/s")
					b.ReportMetric(row.AllocsPerCall, "steady_allocs/call")
				case "warmup":
					b.ReportMetric(row.CallsPerSec, "warm_calls/s")
				}
			}
		})
	}
}
