package dacce_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuild compiles every example program. The examples are
// standalone main packages outside the library's build graph, so plain
// `go build ./...` from CI would catch them, but a broken example left
// unbuilt for a while is the classic docs-rot failure — this keeps them
// honest on every `go test` too.
func TestExamplesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example builds in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		n++
		dir := filepath.Join("examples", e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			cmd := exec.Command("go", "build", "-o", os.DevNull, "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go build ./%s failed: %v\n%s", dir, err, out)
			}
		})
	}
	if n == 0 {
		t.Fatal("no example directories found under examples/")
	}
}
