package dacce_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"dacce"
	"dacce/internal/core"
)

// TestPublicAPIRoundTrip drives the documented public surface end to
// end: build, run, capture, decode.
func TestPublicAPIRoundTrip(t *testing.T) {
	b := dacce.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	g := b.Func("g")
	sf := b.CallSite(mainF, f)
	sg := b.CallSite(f, g)

	var enc *dacce.Encoder
	var cap1 *dacce.Capture
	b.Body(mainF, func(x dacce.Exec) { x.Call(sf, dacce.NoFunc) })
	b.Body(f, func(x dacce.Exec) { x.Call(sg, dacce.NoFunc) })
	b.Body(g, func(x dacce.Exec) {
		cap1 = enc.CaptureTyped(x.(*dacce.Thread))
	})
	p := b.MustBuild()
	enc = dacce.NewEncoder(p, dacce.Options{})
	m := dacce.NewMachine(p, enc, dacce.MachineConfig{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.Calls != 2 {
		t.Errorf("calls = %d", rs.C.Calls)
	}
	ctx, err := enc.Decode(cap1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.Pretty(p); got != "main → f → g" {
		t.Errorf("decoded %q", got)
	}
	if st := enc.Stats(); st.Nodes != 3 || st.Edges != 2 {
		t.Errorf("graph = %d/%d", st.Nodes, st.Edges)
	}
}

// TestBaselinesRunViaPublicAPI exercises every exported baseline on a
// benchmark workload.
func TestBaselinesRunViaPublicAPI(t *testing.T) {
	pr, ok := dacce.BenchmarkByName("429.mcf")
	if !ok {
		t.Fatal("benchmark missing")
	}
	pr.TotalCalls = 5000
	w, err := dacce.BuildWorkload(pr)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []dacce.Scheme{
		dacce.NullScheme{},
		dacce.NewStackWalk(),
		dacce.NewCCT(),
		dacce.NewPCC(),
		dacce.NewEncoder(w.P, dacce.Options{}),
	}
	for _, s := range schemes {
		m := dacce.NewMachine(w.P, s, dacce.MachineConfig{Seed: 3, DropSamples: true})
		if _, err := m.Run(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestBenchmarksListComplete(t *testing.T) {
	all := dacce.Benchmarks()
	if len(all) != 41 {
		t.Fatalf("Benchmarks() lists %d profiles, want 41 (Table 1)", len(all))
	}
	seen := map[string]bool{}
	for _, pr := range all {
		if seen[pr.Name] {
			t.Errorf("duplicate profile %q", pr.Name)
		}
		seen[pr.Name] = true
		if pr.Suite == "" || pr.StaticFuncs == 0 {
			t.Errorf("profile %q incomplete", pr.Name)
		}
	}
	for _, name := range []string{"400.perlbench", "483.xalancbmk", "x264", "streamcluster"} {
		if !seen[name] {
			t.Errorf("missing benchmark %q", name)
		}
	}
}

// TestBundleRoundTrip checks the offline decode pipeline: export the
// dictionary, serialize, reload in a fresh decoder, decode serialized
// captures identically.
func TestBundleRoundTrip(t *testing.T) {
	pr, _ := dacce.BenchmarkByName("456.hmmer")
	pr.TotalCalls = 30_000
	w, err := dacce.BuildWorkload(pr)
	if err != nil {
		t.Fatal(err)
	}
	enc := dacce.NewEncoder(w.P, dacce.Options{})
	m := dacce.NewMachine(w.P, enc, dacce.MachineConfig{SampleEvery: 97, Seed: pr.Seed + 1})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Samples) == 0 {
		t.Fatal("no samples")
	}

	var buf bytes.Buffer
	if err := core.WriteBundle(&buf, enc.ExportBundle()); err != nil {
		t.Fatal(err)
	}
	bundle, err := core.ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewDecoderFromBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}

	for i, s := range rs.Samples {
		c := s.Capture.(*core.Capture)
		// Serialize the capture itself too, as daccerun -dump does.
		raw, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var c2 core.Capture
		if err := json.Unmarshal(raw, &c2); err != nil {
			t.Fatal(err)
		}

		want, err := enc.Decode(c)
		if err != nil {
			t.Fatalf("sample %d: live decode: %v", i, err)
		}
		got, err := dec.Decode(&c2)
		if err != nil {
			t.Fatalf("sample %d: offline decode: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("sample %d: offline %v != live %v", i, got, want)
		}
	}
}

// TestCaptureFingerprint checks dedup semantics: equal contexts agree,
// different contexts (almost surely) differ.
func TestCaptureFingerprint(t *testing.T) {
	a := &core.Capture{Epoch: 1, ID: 5, Fn: 2, Root: 0}
	b := &core.Capture{Epoch: 1, ID: 5, Fn: 2, Root: 0}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal captures disagree")
	}
	c := &core.Capture{Epoch: 1, ID: 6, Fn: 2, Root: 0}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different ids collide")
	}
	d := &core.Capture{Epoch: 1, ID: 5, Fn: 2, Root: 0,
		CC: []core.CCEntry{{ID: 1, Site: 3, Target: 4}}}
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("ccStack ignored")
	}
	e := &core.Capture{Epoch: 1, ID: 5, Fn: 2, Root: 0, Spawn: a}
	if a.Fingerprint() == e.Fingerprint() {
		t.Error("spawn chain ignored")
	}
}
