// racedetect shows the paper's §1 motivation: a dynamic data-race
// detector that records the *calling context* of every shared-memory
// access, cheaply, via DACCE context captures. When two threads touch
// the same location without ordering and at least one writes, the
// report shows the full call paths of both accesses — not just the two
// program counters a context-insensitive detector would give.
//
// The "shared memory" is simulated: worker bodies announce accesses to
// a tiny happens-before-free detector. What matters here is the cost
// and precision of the context machinery, which is real.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"dacce"
)

// access is one recorded shared-memory access.
type access struct {
	addr   int
	write  bool
	thread int
	ctx    *dacce.Capture
}

// detector collects accesses; it is deliberately simple — every pair of
// unordered accesses from different threads with a write is a race.
type detector struct {
	mu       sync.Mutex
	accesses map[int][]access
}

func (d *detector) record(addr int, write bool, th *dacce.Thread, enc *dacce.Encoder) {
	a := access{addr: addr, write: write, thread: th.ID(), ctx: enc.CaptureTyped(th)}
	d.mu.Lock()
	d.accesses[addr] = append(d.accesses[addr], a)
	d.mu.Unlock()
}

func main() {
	b := dacce.NewBuilder()
	mainF := b.Func("main")
	worker := b.Func("worker")
	b.ThreadRoot(worker)
	produce := b.Func("produce")
	consume := b.Func("consume")
	update := b.Func("update_stats")

	wProd := b.CallSite(worker, produce)
	wCons := b.CallSite(worker, consume)
	pUpd := b.CallSite(produce, update)
	cUpd := b.CallSite(consume, update)

	var enc *dacce.Encoder
	det := &detector{accesses: make(map[int][]access)}

	const slots = 4
	b.Body(mainF, func(x dacce.Exec) {
		for i := 0; i < 3; i++ {
			x.Spawn(worker)
		}
	})
	b.Body(worker, func(x dacce.Exec) {
		for i := 0; i < 200; i++ {
			x.Call(wProd, dacce.NoFunc)
			x.Call(wCons, dacce.NoFunc)
		}
	})
	b.Body(produce, func(x dacce.Exec) {
		x.Work(40)
		x.Call(pUpd, dacce.NoFunc)
	})
	b.Body(consume, func(x dacce.Exec) {
		x.Work(40)
		x.Call(cUpd, dacce.NoFunc)
	})
	b.Body(update, func(x dacce.Exec) {
		x.Work(10)
		th := x.(*dacce.Thread)
		// Each thread hammers a shared statistics slot.
		addr := int(x.CallCount()) % slots
		det.record(addr, x.CallCount()%3 == 0, th, enc)
	})

	p := b.MustBuild()
	enc = dacce.NewEncoder(p, dacce.Options{})
	m := dacce.NewMachine(p, enc, dacce.MachineConfig{Seed: 42})
	rs, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Report: one representative racing pair per address, with decoded
	// contexts. Deduplicate by the pair of context encodings — the
	// whole point of cheap precise contexts (paper §1).
	type racePair struct{ a, b access }
	var races []racePair
	addrs := make([]int, 0, len(det.accesses))
	for addr := range det.accesses {
		addrs = append(addrs, addr)
	}
	sort.Ints(addrs)
	for _, addr := range addrs {
		accs := det.accesses[addr]
		found := false
		for i := 0; i < len(accs) && !found; i++ {
			for j := i + 1; j < len(accs) && !found; j++ {
				if accs[i].thread != accs[j].thread && (accs[i].write || accs[j].write) {
					races = append(races, racePair{accs[i], accs[j]})
					found = true
				}
			}
		}
	}

	fmt.Printf("ran %d threads, %d calls, %d shared accesses recorded\n",
		rs.Threads, rs.C.Calls, len(det.accesses[0])+len(det.accesses[1])+len(det.accesses[2])+len(det.accesses[3]))
	fmt.Printf("context machinery overhead (cost model): %.2f%%\n\n", 100*rs.Overhead())

	for _, r := range races {
		ctxA, err := enc.Decode(r.a.ctx)
		if err != nil {
			log.Fatal(err)
		}
		ctxB, err := enc.Decode(r.b.ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("RACE on slot %d:\n", r.a.addr)
		fmt.Printf("  thread %d (%s): %s\n", r.a.thread, rw(r.a.write), ctxA.Pretty(p))
		fmt.Printf("  thread %d (%s): %s\n", r.b.thread, rw(r.b.write), ctxB.Pretty(p))
	}
}

func rw(w bool) string {
	if w {
		return "write"
	}
	return "read"
}
