// replaydiff records one run's exact call event stream, then replays
// the identical stream under every calling-context scheme — the fairest
// possible comparison, with zero run-to-run variance. It prints the
// cost-model overhead ladder: nothing < PCC < encoders < CCT, with
// stack walking cheap to run but expensive per capture.
package main

import (
	"fmt"
	"log"

	"dacce"
)

func main() {
	pr, ok := dacce.BenchmarkByName("456.hmmer")
	if !ok {
		log.Fatal("unknown benchmark")
	}
	pr.TotalCalls = 150_000
	w, err := dacce.BuildWorkload(pr)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Record.
	rec := dacce.NewTraceRecorder()
	m := dacce.NewMachine(w.P, rec, dacce.MachineConfig{Seed: pr.Seed + 1})
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	tr := rec.Trace()
	tr.SyntheticWork = w.WorkPerCall() // replays re-add the application work
	fmt.Printf("recorded %s: %d threads, %d events\n\n", pr.Name, tr.NumThreads(), tr.NumEvents())

	// 2. Replay under each scheme.
	prof, err := w.CollectProfile()
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		name string
		mk   func(p *dacce.Program) dacce.Scheme
	}
	schemes := []entry{
		{"null", func(p *dacce.Program) dacce.Scheme { return dacce.NullScheme{} }},
		{"pcc", func(p *dacce.Program) dacce.Scheme { return dacce.NewPCC() }},
		{"breadcrumbs", func(p *dacce.Program) dacce.Scheme { return dacce.NewBreadcrumbs(p) }},
		{"stackwalk", func(p *dacce.Program) dacce.Scheme { return dacce.NewStackWalk() }},
		{"dacce", func(p *dacce.Program) dacce.Scheme { return dacce.NewEncoder(p, dacce.Options{}) }},
		{"pcce", func(p *dacce.Program) dacce.Scheme { return dacce.NewPCCE(p, prof, dacce.PCCEOptions{}) }},
		{"cct", func(p *dacce.Program) dacce.Scheme { return dacce.NewCCT() }},
	}

	fmt.Printf("%-12s %10s %12s %12s\n", "scheme", "overhead", "instrCycles", "ccStackOps")
	for _, e := range schemes {
		// Each replay needs a fresh program copy: replay cursors are
		// stateful per run.
		rp2, err := dacce.ReplayProgram(w.P, tr)
		if err != nil {
			log.Fatal(err)
		}
		m := dacce.NewMachine(rp2, e.mk(rp2), dacce.MachineConfig{SampleEvery: 256, DropSamples: true})
		rs, err := m.Run()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("%-12s %9.2f%% %12d %12d\n",
			e.name, 100*rs.Overhead(), rs.C.InstrCost, rs.C.CCOps())
	}
	fmt.Println("\nevery scheme observed the identical call stream — differences are pure instrumentation cost")
}
