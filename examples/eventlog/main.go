// eventlog shows the paper's event-logging motivation (§1, citing
// execution fast-forwarding): a tool that logs context-sensitive events
// can collapse the log dramatically when events are keyed by their
// *encoded* calling context — one integer comparison — instead of
// storing a stack walk per event. The replayer later decodes only the
// few distinct contexts.
package main

import (
	"fmt"
	"log"
	"sort"

	"dacce"
)

// event is one logged runtime event, tagged with an encoded context.
type event struct {
	kind string
	ctx  *dacce.Capture
}

// ctxKey is the dedup key: the capture's fingerprint hashes the epoch,
// id and every saved ccStack entry — no stack walking, no per-frame
// hashing at event time.
type ctxKey struct {
	kind string
	fp   uint64
}

func keyOf(e event) ctxKey {
	return ctxKey{kind: e.kind, fp: e.ctx.Fingerprint()}
}

func main() {
	b := dacce.NewBuilder()
	mainF := b.Func("main")
	handle := b.Func("handle_request")
	auth := b.Func("auth")
	query := b.Func("query_db")
	render := b.Func("render")
	lg := b.Func("log_io")

	mH := b.CallSite(mainF, handle)
	hA := b.CallSite(handle, auth)
	hQ := b.CallSite(handle, query)
	hR := b.CallSite(handle, render)
	aL := b.CallSite(auth, lg)
	qL := b.CallSite(query, lg)
	rL := b.CallSite(render, lg)

	var enc *dacce.Encoder
	var events []event
	emit := func(x dacce.Exec, kind string) {
		events = append(events, event{kind: kind, ctx: enc.CaptureTyped(x.(*dacce.Thread))})
	}

	b.Body(mainF, func(x dacce.Exec) {
		for i := 0; i < 5000; i++ {
			x.Call(mH, dacce.NoFunc)
		}
	})
	b.Body(handle, func(x dacce.Exec) {
		x.Work(20)
		x.Call(hA, dacce.NoFunc)
		if x.Rand().Float64() < 0.7 {
			x.Call(hQ, dacce.NoFunc)
		}
		x.Call(hR, dacce.NoFunc)
	})
	b.Body(auth, func(x dacce.Exec) { x.Work(10); x.Call(aL, dacce.NoFunc) })
	b.Body(query, func(x dacce.Exec) { x.Work(30); x.Call(qL, dacce.NoFunc) })
	b.Body(render, func(x dacce.Exec) { x.Work(15); x.Call(rL, dacce.NoFunc) })
	b.Body(lg, func(x dacce.Exec) {
		x.Work(5)
		emit(x, "io")
	})

	p := b.MustBuild()
	enc = dacce.NewEncoder(p, dacce.Options{})
	m := dacce.NewMachine(p, enc, dacce.MachineConfig{Seed: 7})
	rs, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Deduplicate the log by (event kind, encoded context).
	counts := map[ctxKey]int{}
	rep := map[ctxKey]event{}
	for _, e := range events {
		k := keyOf(e)
		counts[k]++
		if _, ok := rep[k]; !ok {
			rep[k] = e
		}
	}

	fmt.Printf("logged %d events during %d calls (overhead %.2f%%)\n",
		len(events), rs.C.Calls, 100*rs.Overhead())
	fmt.Printf("distinct (event, context) classes: %d  → compression %.1fx\n\n",
		len(counts), float64(len(events))/float64(len(counts)))

	// Decode each class once; classes from different epochs may name the
	// same call path (the encoding changed under them), so merge for
	// display.
	merged := map[string]int{}
	for k, e := range rep {
		ctx, err := enc.Decode(e.ctx)
		if err != nil {
			log.Fatal(err)
		}
		merged[k.kind+"  "+ctx.Pretty(p)] += counts[k]
	}
	lines := make([]string, 0, len(merged))
	for l := range merged {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return merged[lines[i]] > merged[lines[j]] })
	fmt.Println("replay dictionary (decoded once per class, not per event):")
	for _, l := range lines {
		fmt.Printf("  %6d × %s\n", merged[l], l)
	}
}
