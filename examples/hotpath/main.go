// hotpath is an adaptive calling-context profiler: it samples encoded
// contexts while a phase-changing workload runs, aggregates the hottest
// call paths, and shows the encoder re-encoding itself as the hot paths
// move (paper §4 and Fig. 9). Run it to watch gTS grow early and settle.
package main

import (
	"fmt"
	"log"
	"sort"

	"dacce"
)

func main() {
	// A synthetic SPEC-like benchmark with rotating hot paths.
	pr, ok := dacce.BenchmarkByName("445.gobmk")
	if !ok {
		log.Fatal("unknown benchmark")
	}
	pr.TotalCalls = 300_000
	w, err := dacce.BuildWorkload(pr)
	if err != nil {
		log.Fatal(err)
	}

	enc := dacce.NewEncoder(w.P, dacce.Options{TrackProgress: true})
	m := dacce.NewMachine(w.P, enc, dacce.MachineConfig{SampleEvery: 101, Seed: pr.Seed + 1})
	rs, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate sampled contexts.
	counts := map[string]int{}
	pretty := map[string]string{}
	decodeFailures := 0
	for _, s := range rs.Samples {
		ctx, err := enc.DecodeSample(s)
		if err != nil {
			decodeFailures++
			continue
		}
		k := ctx.String()
		counts[k]++
		if _, ok := pretty[k]; !ok {
			pretty[k] = ctx.Pretty(w.P)
		}
	}
	if decodeFailures > 0 {
		log.Fatalf("%d samples failed to decode", decodeFailures)
	}

	st := enc.Stats()
	fmt.Printf("benchmark %s: %d calls, %d samples, %d distinct contexts\n",
		pr.Name, rs.C.Calls, len(rs.Samples), len(counts))
	fmt.Printf("dynamic call graph: %d nodes, %d edges, maxID %d\n", st.Nodes, st.Edges, st.MaxID)
	fmt.Printf("re-encodings (gTS): %d, total cost %.0f us, overhead %.2f%%\n\n",
		st.GTS, st.ReencodeCostMicros(), 100*rs.SteadyOverhead())

	fmt.Println("re-encoding history (early churn, then steady state — Fig. 9):")
	for _, h := range st.History {
		fmt.Printf("  pass %2d at sample %5d: %4d nodes %5d edges maxID %d\n",
			h.Epoch, h.AtSample, h.Nodes, h.Edges, h.MaxID)
	}

	type hot struct {
		k string
		n int
	}
	var hots []hot
	for k, n := range counts {
		hots = append(hots, hot{k, n})
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].n > hots[j].n })
	fmt.Println("\nhottest calling contexts:")
	for i, h := range hots {
		if i >= 8 {
			break
		}
		fmt.Printf("  %5.1f%%  %s\n", 100*float64(h.n)/float64(len(rs.Samples)), pretty[h.k])
	}
}
