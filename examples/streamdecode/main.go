// Streamdecode: consume a firehose of context samples through the
// hash-consed context DAG. Every sample is decoded with
// DecodeSampleNode into an interned *CCNode, so repeated contexts
// resolve to the same pointer: the hot-context histogram is a plain
// map keyed by node pointer, equality checks are pointer compares, and
// warm re-decodes allocate nothing. Contexts are only materialized
// into frame slices at the very end, for the handful of winners worth
// printing.
package main

import (
	"fmt"
	"log"
	"sort"

	"dacce"
)

func main() {
	// A small service-shaped program: a dispatch loop fans out into two
	// handlers that share a common helper chain, so their contexts share
	// suffixes in the DAG.
	b := dacce.NewBuilder()
	mainF := b.Func("main")
	loop := b.Func("loop")
	hGet := b.Func("handle_get")
	hPut := b.Func("handle_put")
	auth := b.Func("auth")
	store := b.Func("store")

	mLoop := b.CallSite(mainF, loop)
	loopGet := b.CallSite(loop, hGet)
	loopPut := b.CallSite(loop, hPut)
	getAuth := b.CallSite(hGet, auth)
	putAuth := b.CallSite(hPut, auth)
	authStore := b.CallSite(auth, store)

	b.Body(mainF, func(x dacce.Exec) { x.Call(mLoop, dacce.NoFunc) })
	b.Body(loop, func(x dacce.Exec) {
		for i := 0; i < 4000; i++ {
			if i%3 == 0 {
				x.Call(loopPut, dacce.NoFunc)
			} else {
				x.Call(loopGet, dacce.NoFunc)
			}
		}
	})
	b.Body(hGet, func(x dacce.Exec) { x.Work(20); x.Call(getAuth, dacce.NoFunc) })
	b.Body(hPut, func(x dacce.Exec) { x.Work(30); x.Call(putAuth, dacce.NoFunc) })
	b.Body(auth, func(x dacce.Exec) { x.Work(10); x.Call(authStore, dacce.NoFunc) })
	b.Body(store, func(x dacce.Exec) { x.Work(40) })

	p := b.MustBuild()
	enc := dacce.NewEncoder(p, dacce.Options{})
	m := dacce.NewMachine(p, enc, dacce.MachineConfig{SampleEvery: 7})
	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	// The streaming loop: one interned node per sample, one map bump.
	// After the first decode of each distinct context the DAG is warm
	// and this loop performs zero heap allocations per sample.
	hot := make(map[*dacce.CCNode]int)
	for _, s := range stats.Samples {
		n, err := enc.DecodeSampleNode(s)
		if err != nil {
			log.Fatalf("decode sample: %v", err)
		}
		hot[n]++
	}

	st := enc.DAG().Stats()
	fmt.Printf("stream: %d samples → %d distinct contexts\n", len(stats.Samples), len(hot))
	fmt.Printf("dag:    %d nodes, intern hit rate %.4f, ≈%d bytes\n\n",
		st.Nodes, st.HitRate(), st.BytesEstimate)

	// Equality is pointer comparison: rank the histogram and only now
	// materialize the top contexts into printable frame slices.
	type entry struct {
		n *dacce.CCNode
		c int
	}
	ranked := make([]entry, 0, len(hot))
	for n, c := range hot {
		ranked = append(ranked, entry{n, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].n.ID() < ranked[j].n.ID()
	})
	if len(ranked) > 5 {
		ranked = ranked[:5]
	}
	fmt.Println("hottest contexts:")
	for _, e := range ranked {
		ctx := dacce.NodeContext(e.n)
		fmt.Printf("%6d  depth=%-2d  %s\n", e.c, e.n.Depth(), ctx.Pretty(p))
	}
}
