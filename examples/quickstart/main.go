// Quickstart: build a small program, run it under the DACCE encoder,
// capture calling contexts while it runs, and decode them back into
// call paths — including a context captured before a re-encoding, which
// stays decodable through its epoch's dictionary.
package main

import (
	"fmt"
	"log"

	"dacce"
)

func main() {
	// A small program: main calls parse and eval; eval recurses through
	// reduce and calls apply through a function pointer.
	b := dacce.NewBuilder()
	mainF := b.Func("main")
	parse := b.Func("parse")
	eval := b.Func("eval")
	reduce := b.Func("reduce")
	applyA := b.Func("apply_add")
	applyB := b.Func("apply_mul")

	mParse := b.CallSite(mainF, parse)
	mEval := b.CallSite(mainF, eval)
	evRed := b.CallSite(eval, reduce)
	redEv := b.CallSite(reduce, eval) // recursion: eval ⇄ reduce
	evApply := b.IndirectSite(eval, applyA, applyB)

	var enc *dacce.Encoder
	var captured []*dacce.Capture

	capture := func(x dacce.Exec) {
		captured = append(captured, enc.CaptureTyped(x.(*dacce.Thread)))
	}

	b.Body(mainF, func(x dacce.Exec) {
		x.Call(mParse, dacce.NoFunc)
		x.Call(mEval, dacce.NoFunc)
	})
	b.Body(parse, func(x dacce.Exec) {
		x.Work(100)
		capture(x)
	})
	b.Body(eval, func(x dacce.Exec) {
		x.Work(50)
		if x.Depth() < 6 {
			x.Call(evRed, dacce.NoFunc)
		}
		target := applyA
		if x.CallCount()%2 == 0 {
			target = applyB
		}
		x.Call(evApply, target)
	})
	b.Body(reduce, func(x dacce.Exec) {
		x.Work(25)
		x.Call(redEv, dacce.NoFunc)
	})
	b.Body(applyA, func(x dacce.Exec) { capture(x) })
	b.Body(applyB, func(x dacce.Exec) { capture(x) })

	p := b.MustBuild()
	enc = dacce.NewEncoder(p, dacce.Options{})
	m := dacce.NewMachine(p, enc, dacce.MachineConfig{})
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run complete: %d contexts captured, call graph has %d nodes / %d edges, gTS=%d\n\n",
		len(captured), enc.Stats().Nodes, enc.Stats().Edges, enc.Stats().GTS)

	for i, c := range captured {
		ctx, err := enc.Decode(c)
		if err != nil {
			log.Fatalf("decode capture %d: %v", i, err)
		}
		fmt.Printf("capture %2d  epoch=%d id=%-4d ccStack=%d entries\n", i, c.Epoch, c.ID, len(c.CC))
		fmt.Printf("            %s\n", ctx.Pretty(p))
	}

	// Re-encode explicitly and show that older captures still decode
	// through their epoch's dictionary (paper Fig. 6).
	enc.ForceReencode(nil)
	fmt.Printf("\nafter forced re-encoding (epoch now %d):\n", enc.Epoch())
	ctx, err := enc.Decode(captured[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture 0 (epoch %d) still decodes: %s\n", captured[0].Epoch, ctx.Pretty(p))
}
