package cct

import (
	"testing"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/progtest"
)

func runWithSamples(t *testing.T, p *prog.Program, root []progtest.Call) (*Scheme, *machine.RunStats) {
	t.Helper()
	sc := progtest.NewScript(p)
	sc.Root = root
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	s := New()
	m := machine.New(p, s, machine.Config{SampleEvery: 1})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s, rs
}

func TestCCTTracksContexts(t *testing.T) {
	fx, b := progtest.Fig1()
	p := b.MustBuild()
	fx.P = p
	root := []progtest.Call{
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DE")))),
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"), progtest.By(fx.S("DF")))),
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DE")))),
	}
	s, rs := runWithSamples(t, p, root)
	for _, sm := range rs.Samples {
		ctx, err := s.Decode(sm.Capture)
		if err != nil {
			t.Fatalf("sample %d: %v", sm.Seq, err)
		}
		want := core.ShadowContext(nil, sm.Shadow)
		if !ctx.Equal(want) {
			t.Errorf("sample %d: got %v want %v", sm.Seq, ctx, want)
		}
	}
	if rs.C.InstrCost == 0 {
		t.Error("CCT charged no cost")
	}
}

func TestCCTNodeCountsAndReuse(t *testing.T) {
	fx, b := progtest.Fig1()
	p := b.MustBuild()
	fx.P = p
	root := []progtest.Call{
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"))),
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"))),
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"))),
	}
	s, rs := runWithSamples(t, p, root)
	// Samples are taken at call sites, so the deepest sampled node is
	// the caller B. The same context must map to the same node (visit
	// counts accumulate rather than new nodes appearing).
	var bNode *Node
	for _, sm := range rs.Samples {
		n := sm.Capture.(*Node)
		if n.Fn == fx.F("B") {
			if bNode == nil {
				bNode = n
			} else if bNode != n {
				t.Fatal("same context produced two CCT nodes")
			}
		}
	}
	if bNode == nil {
		t.Fatal("context AB never sampled")
	}
	if bNode.Count != 2 {
		t.Errorf("AB entered %d times, want 2", bNode.Count)
	}
	if bNode.Parent == nil || bNode.Parent.Fn != fx.F("A") {
		t.Errorf("B's parent = %v, want A", bNode.Parent)
	}
	_ = s
}

func TestCCTTailDrift(t *testing.T) {
	// Under binary-level tail semantics the cursor is only repaired at
	// the enclosing return; this test pins that documented behaviour.
	fx, b := progtest.Fig7()
	p := b.MustBuild()
	fx.P = p
	var after *Node
	s := New()
	sc := progtest.NewScript(p)
	sc.Root = []progtest.Call{
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"))), // C tail-calls D
		{Site: fx.S("AB"), Target: prog.NoFunc, Hook: func(x prog.Exec) {
			after = x.(*machine.Thread).State.(*tls).cur
		}},
	}
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	m := machine.New(p, s, machine.Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// After AC returned, the cursor was restored by A's saved node, so
	// the next call (AB) correctly hangs off main→...→B.
	if after == nil || after.Fn != fx.F("B") {
		t.Fatalf("cursor after tail-returning call = %v, want node B", after)
	}
}
