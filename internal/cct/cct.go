// Package cct implements the calling-context-tree baseline (Ammons,
// Ball, Larus — the approach the paper cites as adding "a factor of 2
// to 4 to program execution time", §7). Every call moves a per-thread
// cursor to the child node for its call site, creating it on first
// visit; every return restores the cursor. A context capture is just
// the cursor, and decoding walks parent pointers.
//
// Tail calls expose the approach's weakness under binary-level
// semantics: the jmp has no return, so the cursor is only repaired when
// the enclosing non-tail call returns. Captures taken in the caller
// after a tail-called callee returned are attributed to the tail path
// until then. The tests pin this behaviour; the encoding schemes exist
// precisely to avoid this class of problem (paper §5.2).
package cct

import (
	"fmt"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// Node is one calling-context-tree node.
type Node struct {
	Site   prog.SiteID
	Fn     prog.FuncID
	Parent *Node
	kids   map[nodeKey]*Node
	// Count is the number of times this exact context was entered.
	Count int64
}

type nodeKey struct {
	site prog.SiteID
	fn   prog.FuncID
}

// tls is the per-thread tree and cursor. saved parallels the non-tail
// call frames: each prologue pushes the pre-call node, each epilogue
// restores from it (tail calls push nothing — they get no epilogue).
type tls struct {
	root  *Node
	cur   *Node
	saved []*Node
}

// Scheme is the CCT baseline.
type Scheme struct {
	threads []*tls
}

// New returns a CCT scheme.
func New() *Scheme { return &Scheme{} }

// Name implements machine.Scheme.
func (*Scheme) Name() string { return "cct" }

// Install implements machine.Scheme: every site is instrumented with
// the cursor-moving stub.
func (s *Scheme) Install(m *machine.Machine) {
	st := &stub{s: s}
	for i := 0; i < m.Program().NumSites(); i++ {
		m.SetStub(prog.SiteID(i), st)
	}
}

// ThreadStart implements machine.Scheme.
func (s *Scheme) ThreadStart(t, parent *machine.Thread) {
	root := &Node{Site: prog.NoSite, Fn: t.Entry(), Count: 1}
	t.State = &tls{root: root, cur: root}
	if parent != nil {
		t.SpawnCapture = s.Capture(parent)
	}
}

// ThreadExit implements machine.Scheme.
func (*Scheme) ThreadExit(t *machine.Thread) {}

// Capture implements machine.Scheme: the current tree node.
func (s *Scheme) Capture(t *machine.Thread) any {
	return t.State.(*tls).cur
}

// Decode walks the node's parent chain to the thread root.
func (*Scheme) Decode(capture any) (core.Context, error) {
	n, ok := capture.(*Node)
	if !ok {
		return nil, fmt.Errorf("cct: capture is not a tree node")
	}
	var rev core.Context
	for ; n != nil; n = n.Parent {
		rev = append(rev, core.ContextFrame{Site: n.Site, Fn: n.Fn})
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// DecodeCapture is Decode under the uniform decode shape shared with
// the other context trackers. The result covers the capturing thread
// only; a spawned thread's tree is rooted at its entry function, with
// the spawning context available separately as the parent's capture.
func (s *Scheme) DecodeCapture(capture any) (core.Context, error) {
	return s.Decode(capture)
}

// stub moves the cursor down on call and restores it on return. It
// must restore to the exact pre-call node — after tail drift the
// callee's subtree may have moved the cursor arbitrarily — so the
// prologue saves the node on the per-thread saved stack rather than
// walking parent pointers.
type stub struct{ s *Scheme }

func (st *stub) Prologue(t *machine.Thread, site *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	state := t.State.(*tls)
	t.C.InstrCost += machine.CostCCTStep
	key := nodeKey{site: site.ID, fn: target}
	child := state.cur.kids[key]
	if child == nil {
		child = &Node{Site: site.ID, Fn: target, Parent: state.cur}
		if state.cur.kids == nil {
			state.cur.kids = make(map[nodeKey]*Node)
		}
		state.cur.kids[key] = child
	}
	child.Count++
	if !site.Kind.IsTail() {
		state.saved = append(state.saved, state.cur)
	}
	state.cur = child
	return machine.Cookie{}, st
}

func (st *stub) Epilogue(t *machine.Thread, site *prog.Site, target prog.FuncID, c machine.Cookie) {
	state := t.State.(*tls)
	t.C.InstrCost += machine.CostCCTStep
	n := len(state.saved)
	state.cur = state.saved[n-1]
	state.saved = state.saved[:n-1]
}
