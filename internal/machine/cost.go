package machine

// Cost-model constants, in abstract cycles. The machine charges BaseCost
// for application behaviour (work and bare call dispatch) and schemes
// charge InstrCost through the Thread helpers below. Overhead is
// reported as InstrCost/BaseCost, which reproduces the paper's Fig. 8
// ordering: overhead there is driven by call frequency, ccStack
// operations and handler traps (paper §6.4), all of which these
// constants price.
//
// The absolute values are calibrated so that a workload in the paper's
// calls/s regime lands in the paper's few-percent overhead regime; the
// ratios between them follow the instruction counts of the published
// instrumentation sequences (Figs. 2b, 3b/d, 4, 5e, 7b).
const (
	// CostCallDispatch is the base price of executing any call
	// instruction, charged to the application.
	CostCallDispatch = 4

	// CostIDAdd is one id increment or decrement (Fig. 1): a single
	// add on a thread-local variable.
	CostIDAdd = 1

	// CostCompare is one compare-and-branch (inline indirect-target
	// checks, Fig. 3d; recursion top-of-stack compare, Fig. 5e).
	CostCompare = 1

	// CostCCPush is pushing <id, callsite, target> onto the ccStack
	// (Fig. 2b): a few stores plus a bounds check.
	CostCCPush = 6

	// CostCCPop is restoring id from the ccStack.
	CostCCPop = 4

	// CostCCPeek is reading/adjusting the top entry without popping
	// (compressed recursion, Fig. 5e).
	CostCCPeek = 2

	// CostTcSave is one TcStack save or restore around a call to a
	// tail-containing function (Fig. 7b).
	CostTcSave = 3

	// CostHashProbe is one probe of the indirect-target hash table
	// (Fig. 4): hash, load, compare.
	CostHashProbe = 3

	// CostHandlerTrap is one trip through the runtime handler: trap,
	// graph update, code generation and patching (paper §3). Dominates
	// warm-up, amortizes away as sites get patched.
	CostHandlerTrap = 400

	// CostReencodePerEdge is the per-edge price of renumbering during a
	// re-encoding pass (topological sweep, code assignment). An
	// incremental pass pays it only for the edges it actually
	// renumbered. The per-pass total — renumbering plus the three
	// phases below — is reported as Table 1's "costs" column.
	CostReencodePerEdge = 300

	// CostIndexPerEdge is the per-in-edge price of (re)building the
	// epoch's decode index entry: one map insert plus the code/numCC
	// lookups.
	CostIndexPerEdge = 40

	// CostStubRebuild is the price of regenerating one call site's
	// stub: action computation per known target plus the patch.
	CostStubRebuild = 150

	// CostTranslatePerFrame is the per-active-frame price of replaying
	// a thread's shadow stack after a re-encoding (rewriting the frame's
	// epilogue cookie and re-deriving the TLS contribution).
	CostTranslatePerFrame = 30

	// CostSampleDecode prices DACCE's dynamic profiling: the online part
	// of consuming one sample for the adaptive controller (copying the
	// capture and queueing it; the decode itself runs off the critical
	// path, like the paper's analysis during suspension). §6.4
	// attributes DACCE's edge over PCCE on static-friendly benchmarks
	// to this dynamic-profiling overhead.
	CostSampleDecode = 80

	// CostStackWalkFrame is the per-frame price of walking the stack
	// (the expensive baseline, paper §1/§7).
	CostStackWalkFrame = 25

	// CostCCTStep is one calling-context-tree transition (find/create
	// child, move cursor; paper §7 "adds a factor of 2 to 4").
	CostCCTStep = 12

	// CostPCCHash is the probabilistic-calling-context hash update
	// (Bond–McKinley: one multiply-add).
	CostPCCHash = 2

	// CostModuleLoad / CostModuleUnload price the dynamic linker's
	// dlopen/dlclose work (mapping segments, running init/fini), charged
	// to the application: module churn is program behaviour, not
	// instrumentation.
	CostModuleLoad   = 2400
	CostModuleUnload = 1200

	// workSafepointChunk is how many work units run between safepoint
	// checks inside Thread.Work, bounding stop-the-world latency even
	// in call-free loops.
	workSafepointChunk = 1 << 14
)
