package machine

import (
	"sync"
	"testing"

	"dacce/internal/prog"
)

// modObsScheme records module lifecycle notifications.
type modObsScheme struct {
	NullScheme
	mu      sync.Mutex
	loads   []prog.ModuleID
	unloads []prog.ModuleID
}

func (s *modObsScheme) OnModuleLoad(t *Thread, id prog.ModuleID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads = append(s.loads, id)
}

func (s *modObsScheme) OnModuleUnload(t *Thread, id prog.ModuleID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unloads = append(s.unloads, id)
}

// buildModuleProg returns a program whose main loads, calls into, and
// unloads a lazy module n times; double loads and unloads are no-ops.
func buildModuleProg(t *testing.T, cycles int) (*prog.Program, prog.ModuleID) {
	t.Helper()
	b := prog.NewBuilder()
	mod := b.Module("plugin.so", true)
	mainF := b.Func("main")
	inMod := b.FuncIn("plugfn", mod)
	gate := b.CallSite(mainF, inMod)
	b.Leaf(inMod, 1)
	b.Body(mainF, func(x prog.Exec) {
		for i := 0; i < cycles; i++ {
			x.LoadModule(mod)
			x.LoadModule(mod) // second load is a no-op
			x.Call(gate, prog.NoFunc)
			x.UnloadModule(mod)
			x.UnloadModule(mod) // second unload is a no-op
		}
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p, mod
}

func TestModuleLifecycleTransitions(t *testing.T) {
	p, mod := buildModuleProg(t, 3)
	obs := &modObsScheme{}
	m := New(p, obs, Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Only real state transitions count: 3 loads and 3 unloads despite
	// the doubled calls.
	if rs.C.ModuleLoads != 3 || rs.C.ModuleUnloads != 3 {
		t.Errorf("counters = %d loads, %d unloads, want 3/3", rs.C.ModuleLoads, rs.C.ModuleUnloads)
	}
	if len(obs.loads) != 3 || len(obs.unloads) != 3 {
		t.Errorf("observer saw %d loads, %d unloads, want 3/3", len(obs.loads), len(obs.unloads))
	}
	for _, id := range obs.loads {
		if id != mod {
			t.Errorf("load of module %d, want %d", id, mod)
		}
	}
	if m.ModuleLoaded(mod) {
		t.Error("module still loaded after final unload")
	}
}

func TestModuleLoadChargesCost(t *testing.T) {
	p, _ := buildModuleProg(t, 2)
	m := New(p, NullScheme{}, Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2*CostModuleLoad + 2*CostModuleUnload)
	// Base cost also includes call dispatch and work; just assert the
	// lifecycle share is present.
	if rs.C.BaseCost < want {
		t.Errorf("base cost %d does not cover %d cycles of module lifecycle", rs.C.BaseCost, want)
	}
}

func TestUnloadEagerModulePanics(t *testing.T) {
	b := prog.NewBuilder()
	mod := b.Module("libshared.so", false) // eager
	mainF := b.Func("main")
	b.FuncIn("shared", mod)
	b.Body(mainF, func(x prog.Exec) {
		defer func() {
			if recover() == nil {
				t.Error("UnloadModule of an eager module did not panic")
			}
		}()
		x.UnloadModule(mod)
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, NullScheme{}, Config{}).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnloadWithActiveFramePanics(t *testing.T) {
	b := prog.NewBuilder()
	mod := b.Module("plugin.so", true)
	mainF := b.Func("main")
	inMod := b.FuncIn("plugfn", mod)
	gate := b.CallSite(mainF, inMod)
	b.Body(inMod, func(x prog.Exec) {
		// Unloading the module that holds this very frame is the model's
		// analogue of dlclose-ing your own caller: a hard error.
		defer func() {
			if recover() == nil {
				t.Error("UnloadModule with an own frame inside did not panic")
			}
		}()
		x.UnloadModule(mod)
	})
	b.Body(mainF, func(x prog.Exec) {
		x.LoadModule(mod)
		x.Call(gate, prog.NoFunc)
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, NullScheme{}, Config{}).Run(); err != nil {
		t.Fatal(err)
	}
}

// TestThreadIdentsDeterministic checks that thread identities depend
// only on the spawn tree, not on numeric spawn order: two runs of the
// same concurrent program produce the same ident set, and distinct
// threads never share an ident.
func TestThreadIdentsDeterministic(t *testing.T) {
	build := func() *prog.Program {
		b := prog.NewBuilder()
		mainF := b.Func("main")
		child := b.Func("child")
		grand := b.Func("grand")
		b.ThreadRoot(child)
		b.ThreadRoot(grand)
		b.Body(mainF, func(x prog.Exec) {
			for i := 0; i < 8; i++ {
				x.Spawn(child)
			}
		})
		b.Body(child, func(x prog.Exec) {
			x.Work(1)
			x.Spawn(grand)
		})
		b.Leaf(grand, 1)
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	idents := func() map[uint64]bool {
		m := New(build(), NullScheme{}, Config{})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		set := make(map[uint64]bool)
		for _, th := range m.Threads() {
			if set[th.Ident()] {
				t.Fatalf("duplicate thread ident %#x", th.Ident())
			}
			set[th.Ident()] = true
		}
		return set
	}
	a, b := idents(), idents()
	if len(a) != 17 || len(b) != 17 { // main + 8 children + 8 grandchildren
		t.Fatalf("thread counts %d/%d, want 17", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Errorf("ident %#x present in run 1 but not run 2", id)
		}
	}
}

// TestNestedSpawnShadow checks that SpawnShadow carries the full
// transitive spawn chain, not just the immediate parent's frames.
func TestNestedSpawnShadow(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	mid := b.Func("mid")
	child := b.Func("child")
	grand := b.Func("grand")
	b.ThreadRoot(child)
	b.ThreadRoot(grand)
	gate := b.CallSite(mainF, mid)
	b.Body(mainF, func(x prog.Exec) { x.Call(gate, prog.NoFunc) })
	b.Body(mid, func(x prog.Exec) { x.Spawn(child) })
	b.Body(child, func(x prog.Exec) { x.Spawn(grand) })
	b.Leaf(grand, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, NullScheme{}, Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	grandID := p.Funcs[3].ID
	for _, th := range m.Threads() {
		if th.Entry() != grandID {
			continue
		}
		// grand's chain: main→mid (parent of child) then child's root
		// frame — three frames in total.
		if len(th.SpawnShadow) != 3 {
			t.Fatalf("grand's SpawnShadow has %d frames, want 3 (main, mid, child)", len(th.SpawnShadow))
		}
		return
	}
	t.Fatal("grand thread not found")
}
