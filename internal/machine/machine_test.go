package machine

import (
	"sync/atomic"
	"testing"
	"time"

	"dacce/internal/prog"
)

// buildLinear returns main→a→b with bodies that call straight through.
func buildLinear(t *testing.T) (*prog.Program, prog.SiteID, prog.SiteID) {
	t.Helper()
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	a := bld.Func("a")
	b := bld.Func("b")
	sa := bld.CallSite(mainF, a)
	sb := bld.CallSite(a, b)
	bld.Body(mainF, func(x prog.Exec) { x.Call(sa, prog.NoFunc) })
	bld.Body(a, func(x prog.Exec) { x.Call(sb, prog.NoFunc) })
	bld.Leaf(b, 7)
	p, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p, sa, sb
}

func TestNullRunCounts(t *testing.T) {
	p, _, _ := buildLinear(t)
	m := New(p, NullScheme{}, Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.Calls != 2 {
		t.Errorf("calls = %d, want 2", rs.C.Calls)
	}
	if rs.C.WorkUnits != 7 {
		t.Errorf("work = %d, want 7", rs.C.WorkUnits)
	}
	if want := int64(7 + 2*CostCallDispatch); rs.C.BaseCost != want {
		t.Errorf("base cost = %d, want %d", rs.C.BaseCost, want)
	}
	if rs.C.InstrCost != 0 {
		t.Errorf("null scheme charged %d instr cycles", rs.C.InstrCost)
	}
	if rs.Threads != 1 {
		t.Errorf("threads = %d, want 1", rs.Threads)
	}
}

func TestRunTwicePanics(t *testing.T) {
	p, _, _ := buildLinear(t)
	m := New(p, NullScheme{}, Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("second Run did not fail")
	}
}

// recordingStub logs prologue/epilogue order.
type recordingStub struct {
	log *[]string
	tag string
}

func (r *recordingStub) Prologue(t *Thread, s *prog.Site, target prog.FuncID) (Cookie, Stub) {
	*r.log = append(*r.log, "pro:"+r.tag)
	return Cookie{}, r
}

func (r *recordingStub) Epilogue(t *Thread, s *prog.Site, target prog.FuncID, c Cookie) {
	*r.log = append(*r.log, "epi:"+r.tag)
}

func TestPrologueEpilogueNesting(t *testing.T) {
	p, sa, sb := buildLinear(t)
	var log []string
	m := New(p, NullScheme{}, Config{})
	m.SetStub(sa, &recordingStub{log: &log, tag: "a"})
	m.SetStub(sb, &recordingStub{log: &log, tag: "b"})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"pro:a", "pro:b", "epi:b", "epi:a"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestTailCallSkipsEpilogue(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	c := bld.Func("c")
	d := bld.Func("d")
	sc := bld.CallSite(mainF, c)
	sd := bld.TailSite(c, d)
	bld.Body(mainF, func(x prog.Exec) { x.Call(sc, prog.NoFunc) })
	bld.Body(c, func(x prog.Exec) { x.TailCall(sd, prog.NoFunc) })
	bld.Leaf(d, 1)
	p := bld.MustBuild()

	var log []string
	m := New(p, NullScheme{}, Config{})
	m.SetStub(sc, &recordingStub{log: &log, tag: "c"})
	m.SetStub(sd, &recordingStub{log: &log, tag: "tail"})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The tail site's prologue runs; its epilogue must not (nothing
	// executes after a jmp).
	want := []string{"pro:c", "pro:tail", "epi:c"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestPhysicalStackHidesTailCallers(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	c := bld.Func("c")
	d := bld.Func("d")
	sc := bld.CallSite(mainF, c)
	sd := bld.TailSite(c, d)
	var phys, shadow []Frame
	bld.Body(mainF, func(x prog.Exec) { x.Call(sc, prog.NoFunc) })
	bld.Body(c, func(x prog.Exec) { x.TailCall(sd, prog.NoFunc) })
	bld.Body(d, func(x prog.Exec) {
		th := x.(*Thread)
		phys = th.PhysicalStack()
		shadow = th.ShadowCopy()
	})
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(shadow) != 3 {
		t.Fatalf("shadow depth = %d, want 3 (main,c,d)", len(shadow))
	}
	if len(phys) != 2 || phys[0].Fn != mainF || phys[1].Fn != d {
		t.Fatalf("physical stack = %v, want [main d]", phys)
	}
}

func TestFrameEpilogueRewrite(t *testing.T) {
	// Rewriting an active frame's epilogue stub redirects its return
	// path — the mechanism schemes use for tail fix-ups and
	// re-encoding.
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	a := bld.Func("a")
	sa := bld.CallSite(mainF, a)
	var log []string
	rewritten := &recordingStub{log: &log, tag: "new"}
	bld.Body(mainF, func(x prog.Exec) { x.Call(sa, prog.NoFunc) })
	bld.Body(a, func(x prog.Exec) {
		th := x.(*Thread)
		f := th.FrameAt(th.Depth() - 1)
		f.EpiStub = rewritten
		f.Cook = Cookie{A: 99}
	})
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{})
	m.SetStub(sa, &recordingStub{log: &log, tag: "old"})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"pro:old", "epi:new"}
	for i := range want {
		if i >= len(log) || log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestStubPatchingMidRun(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	a := bld.Func("a")
	sa := bld.CallSite(mainF, a)
	var log []string
	bld.Body(mainF, func(x prog.Exec) {
		x.Call(sa, prog.NoFunc)
		x.Call(sa, prog.NoFunc)
	})
	bld.Leaf(a, 1)
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{})
	first := &patchingStub{log: &log, m: m, site: sa}
	m.SetStub(sa, first)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// First invocation traps; the second runs under the patched stub.
	want := []string{"first", "pro:x", "epi:x"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

type patchingStub struct {
	log  *[]string
	m    *Machine
	site prog.SiteID
}

func (ps *patchingStub) Prologue(t *Thread, s *prog.Site, target prog.FuncID) (Cookie, Stub) {
	*ps.log = append(*ps.log, "first")
	ps.m.SetStub(ps.site, &recordingStub{log: ps.log, tag: "x"})
	// Delegate to a different epilogue partner to prove the handler
	// pattern works.
	return Cookie{}, ps
}

func (ps *patchingStub) Epilogue(t *Thread, s *prog.Site, target prog.FuncID, c Cookie) {}

func (ps *patchingStub) String() string { return "patchingStub" }

func TestSpawnAndStopTheWorld(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	worker := bld.Func("worker")
	bld.ThreadRoot(worker)
	spin := bld.Func("spin")
	ws := bld.CallSite(worker, spin)

	var stops atomic.Int64
	bld.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 3; i++ {
			x.Spawn(worker)
		}
		th := x.(*Thread)
		// Stop the world a few times while workers run.
		for i := 0; i < 5; i++ {
			th.Machine().StopTheWorld(th)
			stops.Add(1)
			th.Machine().ResumeTheWorld(th)
			x.Work(50000)
		}
	})
	bld.Body(worker, func(x prog.Exec) {
		for i := 0; i < 2000; i++ {
			x.Call(ws, prog.NoFunc)
		}
	})
	bld.Leaf(spin, 100)
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Threads != 4 {
		t.Errorf("threads = %d, want 4", rs.Threads)
	}
	if stops.Load() != 5 {
		t.Errorf("stop-the-world ran %d times, want 5", stops.Load())
	}
	if rs.C.Calls != 3*2000 {
		t.Errorf("calls = %d, want 6000", rs.C.Calls)
	}
}

// TestConcurrentStoppers has every thread repeatedly stop the world:
// threads waiting to become the stopper must count as parked, or the
// current stopper deadlocks waiting for them (regression test).
func TestConcurrentStoppers(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	worker := bld.Func("worker")
	bld.ThreadRoot(worker)
	body := func(x prog.Exec) {
		th := x.(*Thread)
		for i := 0; i < 200; i++ {
			th.Machine().StopTheWorld(th)
			th.Machine().ResumeTheWorld(th)
			x.Work(10)
		}
	}
	bld.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 3; i++ {
			x.Spawn(worker)
		}
		body(x)
	})
	bld.Body(worker, body)
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{})
	done := make(chan error, 1)
	go func() {
		_, err := m.Run()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent stoppers deadlocked")
	}
}

func TestSamplingCadence(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	a := bld.Func("a")
	sa := bld.CallSite(mainF, a)
	bld.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 100; i++ {
			x.Call(sa, prog.NoFunc)
		}
	})
	bld.Leaf(a, 1)
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{SampleEvery: 10})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.Samples != 10 {
		t.Errorf("samples = %d, want 10", rs.C.Samples)
	}
	if len(rs.Samples) != 10 {
		t.Errorf("retained %d samples, want 10", len(rs.Samples))
	}
	for _, s := range rs.Samples {
		if s.Fn != mainF {
			t.Errorf("sample fn = %d, want main", s.Fn)
		}
		if len(s.Shadow) != 1 {
			t.Errorf("sample shadow depth = %d, want 1", len(s.Shadow))
		}
	}
}

func TestSteadySnapshot(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	a := bld.Func("a")
	sa := bld.CallSite(mainF, a)
	bld.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 100; i++ {
			x.Call(sa, prog.NoFunc)
		}
	})
	bld.Leaf(a, 10)
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{SteadyAfterCalls: 50})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rs.C.Snapped {
		t.Fatal("steady snapshot never taken")
	}
	if rs.C.SteadyBase <= 0 || rs.C.SteadyBase >= rs.C.BaseCost {
		t.Errorf("steady base = %d of %d, want interior", rs.C.SteadyBase, rs.C.BaseCost)
	}
	if got := rs.SteadyOverhead(); got != 0 {
		t.Errorf("steady overhead = %v, want 0 under null scheme", got)
	}
}

func TestPLTResolution(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	lib := bld.Module("lib.so", true)
	f := bld.FuncIn("libfn", lib)
	sp := bld.PLTSite(mainF, f)
	var seen prog.FuncID = prog.NoFunc
	bld.Body(mainF, func(x prog.Exec) { x.Call(sp, prog.NoFunc) })
	bld.Body(f, func(x prog.Exec) { seen = x.SelfID() })
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{})
	if m.ModuleLoaded(lib) {
		t.Error("lazy module pre-loaded")
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != f {
		t.Errorf("PLT call reached %d, want %d", seen, f)
	}
	if !m.ModuleLoaded(lib) {
		t.Error("module not marked loaded after PLT call")
	}
}

func TestCallOnTailSitePanics(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	a := bld.Func("a")
	st := bld.TailSite(mainF, a)
	bld.Body(mainF, func(x prog.Exec) {
		defer func() {
			if recover() == nil {
				panic("Call on tail site did not panic")
			}
		}()
		x.Call(st, prog.NoFunc)
	})
	bld.Leaf(a, 1)
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Calls: 1, BaseCost: 10, InstrCost: 5, CCPush: 2, MaxCCDepth: 3, CCDepthSum: 4, CCDepthN: 2}
	b := Counters{Calls: 2, BaseCost: 20, InstrCost: 1, CCPush: 1, MaxCCDepth: 7, CCDepthSum: 6, CCDepthN: 1}
	a.add(&b)
	if a.Calls != 3 || a.BaseCost != 30 || a.InstrCost != 6 || a.CCPush != 3 {
		t.Errorf("sum wrong: %+v", a)
	}
	if a.MaxCCDepth != 7 {
		t.Errorf("MaxCCDepth = %d, want max 7", a.MaxCCDepth)
	}
	if got := a.AvgCCDepth(); got != 10.0/3.0 {
		t.Errorf("AvgCCDepth = %v", got)
	}
}

func TestDeterministicRng(t *testing.T) {
	run := func() int64 {
		bld := prog.NewBuilder()
		mainF := bld.Func("main")
		a := bld.Func("a")
		sa := bld.CallSite(mainF, a)
		bld.Body(mainF, func(x prog.Exec) {
			for i := 0; i < 100; i++ {
				if x.Rand().Float64() < 0.5 {
					x.Call(sa, prog.NoFunc)
				}
			}
		})
		bld.Leaf(a, 1)
		p := bld.MustBuild()
		m := New(p, NullScheme{}, Config{Seed: 99})
		rs, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs.C.Calls
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced %d and %d calls", a, b)
	}
}

func TestSampleRetentionCap(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	a := bld.Func("a")
	sa := bld.CallSite(mainF, a)
	bld.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 1000; i++ {
			x.Call(sa, prog.NoFunc)
		}
	})
	bld.Leaf(a, 1)
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{SampleEvery: 1, MaxSamplesPerThread: 25})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Samples) != 25 {
		t.Errorf("retained %d samples, want cap 25", len(rs.Samples))
	}
	if rs.C.Samples != 1000 {
		t.Errorf("sampled %d times, want 1000 (observer keeps firing past the cap)", rs.C.Samples)
	}
}

func TestWorkSafepointChunking(t *testing.T) {
	// A thread in a long Work must still park promptly for a stopper.
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	worker := bld.Func("worker")
	bld.ThreadRoot(worker)
	bld.Body(mainF, func(x prog.Exec) {
		x.Spawn(worker)
		th := x.(*Thread)
		th.Machine().StopTheWorld(th)
		th.Machine().ResumeTheWorld(th)
	})
	bld.Body(worker, func(x prog.Exec) {
		x.Work(100 << 20) // one huge call-free work block
	})
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{})
	done := make(chan error, 1)
	go func() { _, err := m.Run(); done <- err }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stopper starved by call-free Work loop")
	}
}

func TestCallerAccessor(t *testing.T) {
	bld := prog.NewBuilder()
	mainF := bld.Func("main")
	a := bld.Func("a")
	sa := bld.CallSite(mainF, a)
	var got prog.FuncID = prog.NoFunc
	var rootCaller prog.FuncID
	bld.Body(mainF, func(x prog.Exec) {
		rootCaller = x.Caller()
		x.Call(sa, prog.NoFunc)
	})
	bld.Body(a, func(x prog.Exec) { got = x.Caller() })
	p := bld.MustBuild()
	m := New(p, NullScheme{}, Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != mainF {
		t.Errorf("Caller() in a = %d, want main", got)
	}
	if rootCaller != prog.NoFunc {
		t.Errorf("Caller() at root = %d, want NoFunc", rootCaller)
	}
}
