package machine

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dacce/internal/prog"
)

// Frame is one entry of the ground-truth shadow stack: the call path
// from the thread's entry function to the current point, including
// functions that tail-called onward (whose hardware frames are gone but
// which are part of the calling context the encoders represent).
type Frame struct {
	// Site is the call site in the caller that created this frame;
	// prog.NoSite for a thread's root frame.
	Site prog.SiteID
	// Fn is the function executing in this frame.
	Fn prog.FuncID
	// Tail marks frames entered by a tail call: this frame replaced its
	// caller's hardware frame.
	Tail bool
	// EpiStub and Cook are the epilogue recorded at call time. Rewriting
	// them while the call is active models patching the return address
	// of an in-flight invocation (paper §4, §5.2). Nil EpiStub (root
	// frames, tail frames) means no epilogue runs.
	EpiStub Stub
	Cook    Cookie
}

// Counters aggregates per-thread event and cost counts. Schemes update
// the instrumentation fields directly from their stubs.
type Counters struct {
	Calls     int64
	TailCalls int64
	Spawns    int64
	WorkUnits int64

	BaseCost  int64 // application cycles: work + bare call dispatch
	InstrCost int64 // cycles charged by the scheme's instrumentation

	// ReencodeCost is the one-time cost of re-encoding passes (stop the
	// world, renumber, patch, translate). It is accounted separately
	// from InstrCost because it is a fixed adaptation cost the paper
	// reports in its own Table 1 column ("costs") and that amortizes to
	// nothing over minute-long runs; folding it into the per-call
	// overhead of a millisecond-scale model run would mis-weight it.
	ReencodeCost int64

	CCPush        int64 // ccStack pushes
	CCPop         int64 // ccStack pops
	CCPeek        int64 // compressed-recursion top adjustments
	TcSaves       int64 // TcStack saves/restores
	HandlerTraps  int64 // runtime-handler invocations
	HashProbes    int64 // indirect hash-table probes
	Compares      int64 // inline indirect-target comparisons
	Samples       int64
	ModuleLoads   int64 // dlopen-style module load transitions
	ModuleUnloads int64 // dlclose-style module unload transitions

	MaxShadowDepth int
	MaxCCDepth     int

	// CCDepthSum/CCDepthN accumulate the ccStack depth observed at each
	// sample so the average depth of Table 1 can be reported.
	CCDepthSum int64
	CCDepthN   int64

	// SteadyBase/SteadyInstr are the cost counters at the steady-state
	// snapshot (see Config.SteadyAfterCalls); zero if never snapped.
	SteadyBase  int64
	SteadyInstr int64
	Snapped     bool
}

// CCOps returns the total number of ccStack operations, the quantity
// Table 1 reports per second.
func (c *Counters) CCOps() int64 { return c.CCPush + c.CCPop + c.CCPeek }

// AvgCCDepth returns the mean ccStack depth over the run's samples.
func (c *Counters) AvgCCDepth() float64 {
	if c.CCDepthN == 0 {
		return 0
	}
	return float64(c.CCDepthSum) / float64(c.CCDepthN)
}

func (c *Counters) add(o *Counters) {
	c.Calls += o.Calls
	c.TailCalls += o.TailCalls
	c.Spawns += o.Spawns
	c.WorkUnits += o.WorkUnits
	c.BaseCost += o.BaseCost
	c.InstrCost += o.InstrCost
	c.ReencodeCost += o.ReencodeCost
	c.CCPush += o.CCPush
	c.CCPop += o.CCPop
	c.CCPeek += o.CCPeek
	c.TcSaves += o.TcSaves
	c.HandlerTraps += o.HandlerTraps
	c.HashProbes += o.HashProbes
	c.Compares += o.Compares
	c.Samples += o.Samples
	c.ModuleLoads += o.ModuleLoads
	c.ModuleUnloads += o.ModuleUnloads
	if o.MaxShadowDepth > c.MaxShadowDepth {
		c.MaxShadowDepth = o.MaxShadowDepth
	}
	if o.MaxCCDepth > c.MaxCCDepth {
		c.MaxCCDepth = o.MaxCCDepth
	}
	c.CCDepthSum += o.CCDepthSum
	c.CCDepthN += o.CCDepthN
	c.SteadyBase += o.SteadyBase
	c.SteadyInstr += o.SteadyInstr
	c.Snapped = c.Snapped || o.Snapped
}

// RunStats is the result of one Machine.Run.
type RunStats struct {
	Scheme  string
	Threads int
	Elapsed time.Duration
	// Patches is the number of stub patches (code rewrites) the scheme
	// performed over the run: initial trap installation plus every
	// discovery- or re-encoding-driven site rebuild.
	Patches int64
	C       Counters
	Samples []Sample
}

// Overhead returns InstrCost/BaseCost, the cost-model runtime overhead
// over the whole run, including discovery warmup.
func (r *RunStats) Overhead() float64 {
	if r.C.BaseCost == 0 {
		return 0
	}
	return float64(r.C.InstrCost) / float64(r.C.BaseCost)
}

// SteadyOverhead returns the overhead of the post-warmup part of the
// run (see Config.SteadyAfterCalls); it falls back to Overhead when no
// snapshot was taken.
func (r *RunStats) SteadyOverhead() float64 {
	base := r.C.BaseCost - r.C.SteadyBase
	if !r.C.Snapped || base <= 0 {
		return r.Overhead()
	}
	return float64(r.C.InstrCost-r.C.SteadyInstr) / float64(base)
}

// TotalOverhead includes the un-amortized re-encoding cost on top of
// the per-call instrumentation overhead.
func (r *RunStats) TotalOverhead() float64 {
	if r.C.BaseCost == 0 {
		return 0
	}
	return float64(r.C.InstrCost+r.C.ReencodeCost) / float64(r.C.BaseCost)
}

// CallsPerSecond scales call counts to the paper's calls/s units using
// the nominal clock of NominalHz model cycles per second.
func (r *RunStats) CallsPerSecond() float64 {
	total := r.C.BaseCost + r.C.InstrCost
	if total == 0 {
		return 0
	}
	return float64(r.C.Calls) / (float64(total) / NominalHz)
}

// CCOpsPerSecond scales ccStack operation counts to per-second units.
func (r *RunStats) CCOpsPerSecond() float64 {
	total := r.C.BaseCost + r.C.InstrCost
	if total == 0 {
		return 0
	}
	return float64(r.C.CCOps()) / (float64(total) / NominalHz)
}

// NominalHz is the model-cycle rate used to convert abstract cycles to
// seconds for the per-second columns of Table 1 (a 1.87 GHz Xeon in the
// paper).
const NominalHz = 1.87e9

// Thread is one executing thread. It implements prog.Exec; its fields
// model the thread-local storage the paper allocates for the context id
// and the ccStack (§5.3).
type Thread struct {
	m     *Machine
	id    int
	ident uint64
	entry prog.FuncID
	rng   *rand.Rand

	// spawnSeq counts this thread's own Spawn calls; combined with the
	// thread's ident it derives children's idents. Only the owning
	// thread touches it.
	spawnSeq uint64

	// State is the scheme's thread-local state (TLS). Set by the
	// scheme's ThreadStart.
	State any

	// SpawnShadow is the full spawn-chain prefix at spawn time — the
	// parent's own SpawnShadow followed by its shadow stack — the
	// ground truth for the complete sub-path that created this thread,
	// through arbitrarily nested spawns.
	SpawnShadow []Frame
	// SpawnCapture is the scheme's capture of the parent context at
	// spawn time.
	SpawnCapture any

	C Counters

	shadow             []Frame
	samples            []Sample
	sampleSeq          int64
	callsSinceSample   int64
	callsSinceMaintain int64
}

// RootIdent is the spawn-tree identity of the entry thread. It equals
// the rng stream the entry thread used before idents existed, so
// single-threaded runs draw the same random sequences as older traces.
const RootIdent uint64 = 0x9e3779b97f4a7c15

// childIdent derives a spawned thread's identity from its parent's
// identity, the parent's local spawn ordinal, and the entry function —
// a splitmix-style mix of values that are identical between a recording
// run and its replays, whatever order the OS actually starts threads in.
func childIdent(parent, seq uint64, entry prog.FuncID) uint64 {
	x := parent ^ mix64(seq+0x9e3779b97f4a7c15) ^ mix64(uint64(uint32(entry))+0xbf58476d1ce4e5b9)
	return mix64(x)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func newThread(m *Machine, id int, ident uint64, entry prog.FuncID) *Thread {
	return &Thread{
		m:     m,
		id:    id,
		ident: ident,
		entry: entry,
		// The target-picking rng is seeded from the spawn-tree ident, not
		// the numeric id: under concurrent spawning ids depend on OS
		// scheduling, and a replayed thread must draw the same stream it
		// drew while recording.
		rng: rand.New(rand.NewPCG(m.cfg.Seed, ident)),
	}
}

// ID returns the thread id (0 for the entry thread). Ids are assigned
// in global spawn order, which is scheduling-dependent under concurrent
// spawning — use Ident for anything that must survive replay.
func (t *Thread) ID() int { return t.id }

// Ident returns the thread's deterministic spawn-tree identity.
func (t *Thread) Ident() uint64 { return t.ident }

// Entry returns the function the thread started in.
func (t *Thread) Entry() prog.FuncID { return t.entry }

// Machine returns the executing machine.
func (t *Thread) Machine() *Machine { return t.m }

// Rand implements prog.Exec.
func (t *Thread) Rand() *rand.Rand { return t.rng }

// Depth implements prog.Exec: the current shadow-stack depth.
func (t *Thread) Depth() int { return len(t.shadow) }

// CallCount implements prog.Exec.
func (t *Thread) CallCount() int64 { return t.C.Calls }

// Caller implements prog.Exec.
func (t *Thread) Caller() prog.FuncID {
	if len(t.shadow) < 2 {
		return prog.NoFunc
	}
	return t.shadow[len(t.shadow)-2].Fn
}

// SelfID implements prog.Exec.
func (t *Thread) SelfID() prog.FuncID {
	if len(t.shadow) == 0 {
		return t.entry
	}
	return t.shadow[len(t.shadow)-1].Fn
}

// FrameAt returns a pointer to the i-th shadow frame (0 = root). The
// pointer is valid only until the thread makes another call; schemes use
// it during runtime-handler fix-ups and with the world stopped.
func (t *Thread) FrameAt(i int) *Frame { return &t.shadow[i] }

// FrameInModule reports whether any of the thread's shadow frames is
// executing a function of the given module. Used to validate unloads.
func (t *Thread) FrameInModule(id prog.ModuleID) bool {
	for i := range t.shadow {
		if t.m.p.Funcs[t.shadow[i].Fn].Module == id {
			return true
		}
	}
	return false
}

// ShadowCopy returns a copy of the current shadow stack.
func (t *Thread) ShadowCopy() []Frame {
	out := make([]Frame, len(t.shadow))
	copy(out, t.shadow)
	return out
}

// PhysicalStack returns what walking the hardware stack would see: the
// shadow stack with every tail-calling frame removed, since a tail call
// replaces its caller's frame (paper §5.2). The frames keep their Site
// linkage, so the result is exactly a stack walker's view.
func (t *Thread) PhysicalStack() []Frame {
	out := make([]Frame, 0, len(t.shadow))
	for i, f := range t.shadow {
		// A frame is invisible if its callee was entered by tail call:
		// that callee reused this frame's slot.
		if i+1 < len(t.shadow) && t.shadow[i+1].Tail {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Work implements prog.Exec: consume application cycles, checking the
// safepoint often enough that call-free loops cannot delay a
// stop-the-world.
func (t *Thread) Work(units int64) {
	if units <= 0 {
		return
	}
	t.C.WorkUnits += units
	t.C.BaseCost += units
	for units > workSafepointChunk {
		units -= workSafepointChunk
		if t.m.stopRequest.Load() {
			t.m.park()
		}
	}
}

// Spawn implements prog.Exec.
func (t *Thread) Spawn(entry prog.FuncID) {
	t.C.Spawns++
	t.m.spawn(entry, t)
}

// LoadModule implements prog.Exec: dlopen. Loading an already-loaded
// module is a no-op; a real transition notifies the scheme's
// ModuleObserver so instrumentation can meet the module's sites.
func (t *Thread) LoadModule(id prog.ModuleID) {
	if int(id) < 0 || int(id) >= len(t.m.p.Modules) {
		panic(fmt.Sprintf("machine: LoadModule of unknown module %d", id))
	}
	if t.m.stopRequest.Load() {
		t.m.park()
	}
	if !t.m.moduleLoaded[id].CompareAndSwap(false, true) {
		return
	}
	t.C.ModuleLoads++
	t.C.BaseCost += CostModuleLoad
	if t.m.moduleObs != nil {
		t.m.moduleObs.OnModuleLoad(t, id)
	}
}

// UnloadModule implements prog.Exec: dlclose. The module must be lazy
// (the executable and eagerly linked libraries cannot be unloaded) and
// the calling thread must not have a frame inside it — unloading code
// you are executing is a model error, as it would be a crash in a real
// process. Contexts captured while the module was loaded must stay
// decodable afterwards; schemes are notified via ModuleObserver so they
// can drop the module's instrumentation without touching the epoch
// history those captures point into.
func (t *Thread) UnloadModule(id prog.ModuleID) {
	if int(id) < 0 || int(id) >= len(t.m.p.Modules) {
		panic(fmt.Sprintf("machine: UnloadModule of unknown module %d", id))
	}
	if !t.m.p.Modules[id].Lazy {
		panic(fmt.Sprintf("machine: UnloadModule of eager module %q", t.m.p.Modules[id].Name))
	}
	if t.FrameInModule(id) {
		panic(fmt.Sprintf("machine: UnloadModule of %q with an own frame still active",
			t.m.p.Modules[id].Name))
	}
	if t.m.stopRequest.Load() {
		t.m.park()
	}
	if !t.m.moduleLoaded[id].CompareAndSwap(true, false) {
		return
	}
	t.C.ModuleUnloads++
	t.C.BaseCost += CostModuleUnload
	if t.m.moduleObs != nil {
		t.m.moduleObs.OnModuleUnload(t, id)
	}
}

// Call implements prog.Exec.
func (t *Thread) Call(sid prog.SiteID, target prog.FuncID) {
	s := t.m.p.Site(sid)
	if s.Kind.IsTail() {
		panic(fmt.Sprintf("machine: Call used on tail site %d; use TailCall", sid))
	}
	t.call(s, target, false)
}

// TailCall implements prog.Exec.
func (t *Thread) TailCall(sid prog.SiteID, target prog.FuncID) {
	s := t.m.p.Site(sid)
	if !s.Kind.IsTail() {
		panic(fmt.Sprintf("machine: TailCall used on non-tail site %d", sid))
	}
	t.call(s, target, true)
}

func (t *Thread) call(s *prog.Site, target prog.FuncID, tail bool) {
	if t.m.stopRequest.Load() {
		t.m.park()
	}
	switch s.Kind {
	case prog.Normal, prog.Tail:
		target = s.Target
	case prog.PLT:
		target = t.m.ResolvePLT(s.ID)
	default: // indirect kinds
		if int(target) < 0 || int(target) >= t.m.p.NumFuncs() {
			panic(fmt.Sprintf("machine: indirect site %d invoked with invalid target %d", s.ID, target))
		}
	}
	t.C.Calls++
	if tail {
		t.C.TailCalls++
	}
	t.C.BaseCost += CostCallDispatch
	if !t.C.Snapped && t.m.cfg.SteadyAfterCalls > 0 && t.C.Calls >= t.m.cfg.SteadyAfterCalls {
		t.C.Snapped = true
		t.C.SteadyBase = t.C.BaseCost
		t.C.SteadyInstr = t.C.InstrCost
	}
	t.maybeSample()
	if t.m.maintainer != nil {
		t.callsSinceMaintain++
		if t.callsSinceMaintain >= t.m.cfg.MaintainEvery {
			t.callsSinceMaintain = 0
			t.m.maintainer.Maintain(t)
		}
	}

	stub := *t.m.slots[s.ID].Load()
	cook, epi := stub.Prologue(t, s, target)

	t.shadow = append(t.shadow, Frame{Site: s.ID, Fn: target, Tail: tail, EpiStub: epi, Cook: cook})
	if d := len(t.shadow); d > t.C.MaxShadowDepth {
		t.C.MaxShadowDepth = d
	}
	t.m.p.Funcs[target].Body(t)
	f := t.shadow[len(t.shadow)-1]
	t.shadow = t.shadow[:len(t.shadow)-1]

	// Tail calls have no code after the jmp: the callee returned past
	// this site, so no epilogue runs here (the caller-of-the-caller's
	// epilogue restores, paper §5.2).
	if !tail && f.EpiStub != nil {
		// Re-read from the frame: a scheme may have rewritten the
		// epilogue or cookie while the call was active.
		f.EpiStub.Epilogue(t, s, target, f.Cook)
	}
}

// run executes the thread's entry function to completion.
func (t *Thread) run() {
	t.m.register()
	defer t.m.unregister()
	t.shadow = append(t.shadow, Frame{Site: prog.NoSite, Fn: t.entry})
	t.C.MaxShadowDepth = 1
	t.m.p.Funcs[t.entry].Body(t)
	t.shadow = t.shadow[:0]
	t.m.scheme.ThreadExit(t)
}

// maybeSample captures a sample every SampleEvery calls.
func (t *Thread) maybeSample() {
	every := t.m.cfg.SampleEvery
	if every <= 0 {
		return
	}
	t.callsSinceSample++
	if t.callsSinceSample < every {
		return
	}
	t.callsSinceSample = 0
	t.C.Samples++
	snap := t.m.scheme.Capture(t)
	if t.m.sampleObs != nil {
		t.m.sampleObs.OnSample(t, snap)
	}
	if !t.m.cfg.DropSamples && len(t.samples) < t.m.cfg.MaxSamplesPerThread {
		t.samples = append(t.samples, Sample{
			Thread:  t.id,
			Ident:   t.ident,
			Seq:     t.sampleSeq,
			Fn:      t.SelfID(),
			Capture: snap,
			Shadow:  t.ShadowCopy(),
		})
	} else if t.m.releaser != nil {
		// The capture is not retained and the observer is done with it:
		// hand it back so the scheme can recycle the allocation.
		t.m.releaser.ReleaseCapture(snap)
	}
	t.sampleSeq++
}
