// Package machine executes prog.Programs and stands in for the paper's
// dynamic-binary-instrumentation substrate (DESIGN.md §2). Every call
// site holds an atomically patchable Stub: swapping the stub is the
// analog of rewriting the call site's code. Encoding schemes (DACCE,
// PCCE, and the related-work baselines) implement the Scheme interface
// and observe exactly what binary instrumentation would observe — call,
// tail-call and return events plus the patch state — while the machine
// keeps the ground-truth shadow stack that a real process keeps in
// hardware.
//
// The machine provides:
//
//   - threads with thread-local scheme state (the TLS of paper §5.3),
//   - cooperative stop-the-world (the signal suspension of paper §4),
//   - lazy PLT binding and dlopen-style module loading (paper §5.1),
//   - tail-call control transfer that skips the caller (paper §5.2),
//   - a deterministic cost model (DESIGN.md §6), and
//   - a sampling module that captures encoder state together with the
//     shadow stack for cross-validation (the libpfm4 module of §6.1).
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dacce/internal/prog"
)

// Cookie is the per-invocation state a stub's prologue hands to its
// epilogue. In a real binary these are the constants baked into the
// instrumentation and the registers/TcStack slots it saved; carrying
// them in the frame lets a scheme rewrite them for in-flight calls, the
// analog of the paper's "the return address of all active functions on
// the stack should be modified" (§4).
type Cookie struct {
	// Tag selects the epilogue behaviour (scheme-defined).
	Tag uint8
	// A and B carry the saved values or baked constants.
	A, B uint64
}

// Stub is the patchable code at a call site. The machine runs
// Prologue(…) → callee body → Epilogue(…) for every invocation.
//
// Prologue returns the cookie for this invocation and the stub whose
// Epilogue must pair with it — normally the receiver itself. The
// runtime handler uses the second result to hand the rest of the
// invocation to the code it just generated ("the control will return to
// the newly generated code", paper §3.1). The epilogue stub and cookie
// are recorded in the callee's frame, where a scheme may rewrite them
// while the call is active.
//
// Tail-call sites never get an Epilogue call: the instruction after a
// jmp does not exist (paper §5.2).
type Stub interface {
	Prologue(t *Thread, s *prog.Site, target prog.FuncID) (Cookie, Stub)
	Epilogue(t *Thread, s *prog.Site, target prog.FuncID, c Cookie)
}

// Scheme is a calling-context encoding scheme under test.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Install is called once before execution starts; the scheme sets
	// the initial stub of every call site.
	Install(m *Machine)
	// ThreadStart initializes the scheme's thread-local state. parent is
	// nil for the initial thread; for spawned threads the scheme may
	// record the parent's context so the spawn path stays decodable
	// (paper §5.3).
	ThreadStart(t, parent *Thread)
	// ThreadExit is called when a thread finishes.
	ThreadExit(t *Thread)
	// Capture snapshots the thread's current context encoding. The
	// result is scheme-specific and must be immutable (deep-copied).
	Capture(t *Thread) any
}

// SampleObserver is implemented by schemes that want to see periodic
// samples (DACCE's adaptive controller consumes them to estimate hot
// paths, paper §4).
type SampleObserver interface {
	OnSample(t *Thread, capture any)
}

// CaptureReleaser is implemented by schemes that pool their Capture
// snapshots. The machine calls ReleaseCapture on every capture it
// decided not to retain, once the sampling observer is done with it —
// the scheme may then recycle the object. Captures retained as samples
// (or handed out by direct Capture calls) are never released by the
// machine.
type CaptureReleaser interface {
	ReleaseCapture(capture any)
}

// Maintainer is implemented by schemes that need periodic control even
// when nothing samples or traps — DACCE checks its re-encoding triggers
// here. Maintain runs at a clean point (no call in flight on t) every
// Config.MaintainEvery calls.
type Maintainer interface {
	Maintain(t *Thread)
}

// ModuleObserver is implemented by schemes that care about dlopen-style
// module lifecycle (paper §5.1). The machine invokes the hooks on the
// thread performing the load/unload, at a clean point (no call in
// flight), and only on actual state transitions — a LoadModule of an
// already-loaded module is silent.
type ModuleObserver interface {
	OnModuleLoad(t *Thread, id prog.ModuleID)
	OnModuleUnload(t *Thread, id prog.ModuleID)
}

// Sample pairs a scheme capture with the ground truth at the same
// instant.
type Sample struct {
	Thread int
	// Ident is the thread's spawn-tree identity (Thread.Ident): stable
	// across record/replay even when OS scheduling permutes thread ids,
	// so differential checks key on it.
	Ident   uint64
	Seq     int64 // per-thread sample sequence number
	Fn      prog.FuncID
	Capture any
	// Shadow is a copy of the shadow stack: the true call path from the
	// thread's entry function to Fn.
	Shadow []Frame
}

// Config configures a Machine.
type Config struct {
	// SampleEvery captures a sample every n calls per thread; 0 disables
	// sampling.
	SampleEvery int64
	// MaxSamplesPerThread bounds sample memory; once reached, sampling
	// keeps invoking the observer but stops retaining samples. 0 means
	// DefaultMaxSamples.
	MaxSamplesPerThread int
	// KeepSamples controls whether samples are retained for post-run
	// validation (default true when SampleEvery > 0).
	DropSamples bool
	// Seed seeds the per-thread PRNGs.
	Seed uint64
	// MaintainEvery runs the scheme's Maintainer hook every n calls per
	// thread; 0 means DefaultMaintainEvery when the scheme implements
	// Maintainer, and has no effect otherwise.
	MaintainEvery int64
	// SteadyAfterCalls, when > 0, snapshots each thread's cost counters
	// once its call count crosses this threshold. RunStats.SteadyOverhead
	// then reports instrumentation overhead for the steady-state part of
	// the run only, excluding the one-time discovery warmup — the regime
	// the paper's minutes-long benchmark runs measure (§6.4).
	SteadyAfterCalls int64
}

// DefaultMaxSamples bounds retained samples per thread.
const DefaultMaxSamples = 1 << 16

// DefaultMaintainEvery is the default maintenance period in calls.
const DefaultMaintainEvery = 2048

// Machine executes one program under one scheme. A Machine is used for a
// single Run.
type Machine struct {
	p      *prog.Program
	scheme Scheme
	cfg    Config

	slots   []atomic.Pointer[Stub] // per call site
	patches atomic.Int64           // stub patches performed (code rewrites)

	// Stop-the-world state (paper §4: suspend all threads by signal; we
	// use cooperative safepoints at call prologues and inside Work).
	mu          sync.Mutex
	cond        *sync.Cond
	stopRequest atomic.Bool
	running     int
	stopperBusy bool

	wg        sync.WaitGroup
	nextTID   atomic.Int32
	threadsMu sync.Mutex
	threads   []*Thread

	moduleLoaded []atomic.Bool // dlopen tracking, for stats

	sampleObs  SampleObserver
	maintainer Maintainer
	releaser   CaptureReleaser
	moduleObs  ModuleObserver

	started bool
	stats   RunStats
}

// New creates a machine for p under scheme.
func New(p *prog.Program, scheme Scheme, cfg Config) *Machine {
	m := &Machine{
		p:            p,
		scheme:       scheme,
		cfg:          cfg,
		slots:        make([]atomic.Pointer[Stub], p.NumSites()),
		moduleLoaded: make([]atomic.Bool, len(p.Modules)),
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.MaxSamplesPerThread == 0 {
		m.cfg.MaxSamplesPerThread = DefaultMaxSamples
	}
	if obs, ok := scheme.(SampleObserver); ok {
		m.sampleObs = obs
	}
	if rel, ok := scheme.(CaptureReleaser); ok {
		m.releaser = rel
	}
	if mt, ok := scheme.(Maintainer); ok {
		m.maintainer = mt
		if m.cfg.MaintainEvery == 0 {
			m.cfg.MaintainEvery = DefaultMaintainEvery
		}
	}
	if mo, ok := scheme.(ModuleObserver); ok {
		m.moduleObs = mo
	}
	for _, mod := range p.Modules {
		if !mod.Lazy {
			m.moduleLoaded[mod.ID].Store(true)
		}
	}
	return m
}

// Program returns the program being executed.
func (m *Machine) Program() *prog.Program { return m.p }

// Scheme returns the installed scheme.
func (m *Machine) Scheme() Scheme { return m.scheme }

// SetStub patches the stub of a call site ("rewriting the code"). Safe
// to call concurrently with execution; in-flight invocations finish
// under the stub they loaded, exactly like patched binaries. Every
// patch is counted: RunStats.Patches reports how much code rewriting a
// run performed, the cold-start analogue of the re-encoding cost
// columns.
func (m *Machine) SetStub(site prog.SiteID, s Stub) {
	m.slots[site].Store(&s)
	m.patches.Add(1)
}

// Patches returns the number of stub patches performed so far.
func (m *Machine) Patches() int64 { return m.patches.Load() }

// StubAt returns the current stub of a site.
func (m *Machine) StubAt(site prog.SiteID) Stub {
	sp := m.slots[site].Load()
	if sp == nil {
		return nil
	}
	return *sp
}

// ResolvePLT performs the dynamic linker's lazy binding for a PLT site
// and marks the target's module loaded.
func (m *Machine) ResolvePLT(site prog.SiteID) prog.FuncID {
	target := m.p.PLT[site]
	m.moduleLoaded[m.p.Funcs[target].Module].Store(true)
	return target
}

// ModuleLoaded reports whether a module has been loaded (eager modules
// always are; lazy ones after the first call into them).
func (m *Machine) ModuleLoaded(id prog.ModuleID) bool {
	return m.moduleLoaded[id].Load()
}

// Run installs the scheme, executes the entry function on thread 0,
// waits for every spawned thread, and returns the aggregated statistics.
func (m *Machine) Run() (*RunStats, error) {
	if m.started {
		return nil, fmt.Errorf("machine: Run called twice")
	}
	m.started = true
	for i := range m.slots {
		if m.slots[i].Load() == nil {
			// Default to uninstrumented dispatch so schemes only need to
			// patch the sites they care about.
			m.SetStub(prog.SiteID(i), plainStub{})
		}
	}
	m.scheme.Install(m)

	start := time.Now()
	m.spawn(m.p.Entry, nil)
	m.wg.Wait()
	m.stats.Elapsed = time.Since(start)
	m.stats.Scheme = m.scheme.Name()
	m.stats.Patches = m.patches.Load()

	m.threadsMu.Lock()
	defer m.threadsMu.Unlock()
	m.stats.Threads = len(m.threads)
	for _, t := range m.threads {
		m.stats.C.add(&t.C)
		if !m.cfg.DropSamples {
			m.stats.Samples = append(m.stats.Samples, t.samples...)
		}
	}
	return &m.stats, nil
}

// spawn starts a thread executing fn. parent is nil for the entry
// thread.
func (m *Machine) spawn(fn prog.FuncID, parent *Thread) *Thread {
	// The spawn-tree ident is derived from the parent's ident, the
	// parent's local spawn ordinal, and the entry function — all values
	// that replay identically regardless of how the OS interleaves
	// threads. The numeric thread id (spawn order across the whole
	// machine) is NOT deterministic under concurrent spawning, so
	// nothing that must match across record/replay may key on it.
	ident := RootIdent
	if parent != nil {
		parent.spawnSeq++
		ident = childIdent(parent.ident, parent.spawnSeq, fn)
	}
	t := newThread(m, int(m.nextTID.Add(1)-1), ident, fn)
	if parent != nil {
		// Full transitive chain: the parent's own spawn prefix plus its
		// live frames, so nested spawns (a spawned thread spawning
		// another) still carry complete ground truth. This mirrors the
		// capture chain the scheme builds through SpawnCapture links.
		pre := parent.SpawnShadow
		own := parent.ShadowCopy()
		t.SpawnShadow = append(append(make([]Frame, 0, len(pre)+len(own)), pre...), own...)
	}
	m.threadsMu.Lock()
	m.threads = append(m.threads, t)
	m.threadsMu.Unlock()
	m.scheme.ThreadStart(t, parent)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t.run()
	}()
	return t
}

// register blocks while the world is stopped, then counts the thread as
// running.
func (m *Machine) register() {
	m.mu.Lock()
	for m.stopRequest.Load() {
		m.cond.Wait()
	}
	m.running++
	m.mu.Unlock()
}

// unregister removes a finished thread from the running count.
func (m *Machine) unregister() {
	m.mu.Lock()
	m.running--
	m.cond.Broadcast()
	m.mu.Unlock()
}

// park suspends the calling thread until the world resumes. Called from
// safepoints when a stop is requested.
func (m *Machine) park() {
	m.mu.Lock()
	if !m.stopRequest.Load() {
		m.mu.Unlock()
		return
	}
	m.running--
	m.cond.Broadcast()
	for m.stopRequest.Load() {
		m.cond.Wait()
	}
	m.running++
	m.mu.Unlock()
}

// StopTheWorld suspends every thread except self at its next safepoint
// and returns once all are parked. The caller must pair it with
// ResumeTheWorld. Only one stopper runs at a time; a second caller
// blocks until the first resumes.
func (m *Machine) StopTheWorld(self *Thread) {
	m.mu.Lock()
	for m.stopperBusy {
		// A thread waiting to become the stopper must count as parked,
		// or the current stopper would wait for it forever (two threads
		// triggering re-encoding at once would deadlock otherwise).
		if self != nil {
			m.running--
			m.cond.Broadcast()
		}
		for m.stopperBusy || m.stopRequest.Load() {
			m.cond.Wait()
		}
		if self != nil {
			m.running++
		}
	}
	m.stopperBusy = true
	m.stopRequest.Store(true)
	if self != nil {
		m.running-- // the stopper itself is at a safepoint
	}
	for m.running > 0 {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// ResumeTheWorld releases the threads parked by StopTheWorld.
func (m *Machine) ResumeTheWorld(self *Thread) {
	m.mu.Lock()
	m.stopRequest.Store(false)
	if self != nil {
		m.running++
	}
	m.stopperBusy = false
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Threads returns all threads created so far. Stable only after Run
// returns or with the world stopped.
func (m *Machine) Threads() []*Thread {
	m.threadsMu.Lock()
	defer m.threadsMu.Unlock()
	out := make([]*Thread, len(m.threads))
	copy(out, m.threads)
	return out
}

// plainStub is the uninstrumented call: dispatch straight to the target.
type plainStub struct{}

func (p plainStub) Prologue(t *Thread, s *prog.Site, target prog.FuncID) (Cookie, Stub) {
	return Cookie{}, p
}

func (plainStub) Epilogue(t *Thread, s *prog.Site, target prog.FuncID, c Cookie) {}

// PlainStub returns the uninstrumented dispatch stub, for schemes that
// want to leave a site (e.g. one whose edge is encoded 0) free of any
// instrumentation.
func PlainStub() Stub { return plainStub{} }

// NullScheme leaves every site uninstrumented; it provides the baseline
// run the overhead of the encoders is measured against.
type NullScheme struct{}

// Name implements Scheme.
func (NullScheme) Name() string { return "null" }

// Install implements Scheme; all sites keep the plain stub.
func (NullScheme) Install(m *Machine) {}

// ThreadStart implements Scheme.
func (NullScheme) ThreadStart(t, parent *Thread) {}

// ThreadExit implements Scheme.
func (NullScheme) ThreadExit(t *Thread) {}

// Capture implements Scheme; the null scheme has no encoder state.
func (NullScheme) Capture(t *Thread) any { return nil }
