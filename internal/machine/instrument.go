package machine

import (
	"time"

	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

// Instrument wraps a scheme so that machine-level lifecycle events —
// thread starts and exits, periodic samples — flow into sink alongside
// whatever the scheme itself emits. It works for any Scheme, which is
// what puts the PCCE/CCT/PCC/stackwalk baselines on the same event
// stream as DACCE for apples-to-apples comparison. A nil sink returns
// the scheme unchanged.
func Instrument(s Scheme, sink telemetry.Sink) Scheme {
	if sink == nil {
		return s
	}
	return &instrumented{inner: s, sink: sink}
}

// instrumented forwards every Scheme call to the wrapped scheme and
// emits the machine-visible events. It always implements SampleObserver
// and Maintainer, forwarding to the inner scheme only when it does.
type instrumented struct {
	inner Scheme
	sink  telemetry.Sink
}

// Unwrap returns the wrapped scheme.
func (w *instrumented) Unwrap() Scheme { return w.inner }

// Name implements Scheme; the report name stays the inner scheme's.
func (w *instrumented) Name() string { return w.inner.Name() }

// Install implements Scheme.
func (w *instrumented) Install(m *Machine) { w.inner.Install(m) }

// ThreadStart implements Scheme.
func (w *instrumented) ThreadStart(t, parent *Thread) {
	w.inner.ThreadStart(t, parent)
	w.sink.Emit(telemetry.Event{
		Kind: telemetry.EvThreadStart, Thread: int32(t.ID()),
		Site: prog.NoSite, Fn: t.Entry(),
	})
}

// ThreadExit implements Scheme.
func (w *instrumented) ThreadExit(t *Thread) {
	w.inner.ThreadExit(t)
	w.sink.Emit(telemetry.Event{
		Kind: telemetry.EvThreadExit, Thread: int32(t.ID()),
		Site: prog.NoSite, Fn: t.SelfID(),
	})
}

// Capture implements Scheme.
func (w *instrumented) Capture(t *Thread) any { return w.inner.Capture(t) }

// OnSample implements SampleObserver, forwarding to the inner scheme
// when it observes samples itself (DACCE's adaptive controller does).
// The event carries the inner observer's wall latency, so the sampling
// controller's cost lands in the sink's latency histogram; emission
// therefore follows the forward.
func (w *instrumented) OnSample(t *Thread, capture any) {
	start := time.Now()
	if obs, ok := w.inner.(SampleObserver); ok {
		obs.OnSample(t, capture)
	}
	w.sink.Emit(telemetry.Event{
		Kind: telemetry.EvSample, Thread: int32(t.ID()),
		Site: prog.NoSite, Fn: t.SelfID(),
		Value:    uint64(t.C.Samples),
		DurNanos: time.Since(start).Nanoseconds(),
	})
}

// OnModuleLoad implements ModuleObserver, forwarding when the inner
// scheme tracks module lifecycle (DACCE re-instruments churned
// modules) and emitting the transition either way.
func (w *instrumented) OnModuleLoad(t *Thread, id prog.ModuleID) {
	if mo, ok := w.inner.(ModuleObserver); ok {
		mo.OnModuleLoad(t, id)
	}
	w.sink.Emit(telemetry.Event{
		Kind: telemetry.EvModuleLoad, Thread: int32(t.ID()),
		Site: prog.NoSite, Fn: prog.NoFunc, Value: uint64(id),
	})
}

// OnModuleUnload implements ModuleObserver.
func (w *instrumented) OnModuleUnload(t *Thread, id prog.ModuleID) {
	if mo, ok := w.inner.(ModuleObserver); ok {
		mo.OnModuleUnload(t, id)
	}
	w.sink.Emit(telemetry.Event{
		Kind: telemetry.EvModuleUnload, Thread: int32(t.ID()),
		Site: prog.NoSite, Fn: prog.NoFunc, Value: uint64(id),
	})
}

// Maintain implements Maintainer, forwarding when the inner scheme
// needs periodic control.
func (w *instrumented) Maintain(t *Thread) {
	if mt, ok := w.inner.(Maintainer); ok {
		mt.Maintain(t)
	}
}

// ReleaseCapture implements CaptureReleaser, forwarding when the inner
// scheme pools its captures.
func (w *instrumented) ReleaseCapture(capture any) {
	if rel, ok := w.inner.(CaptureReleaser); ok {
		rel.ReleaseCapture(capture)
	}
}
