package core

import (
	"dacce/internal/blenc"
	"dacce/internal/graph"
	"dacce/internal/prog"
)

// encSnap bundles the read-mostly encoding state into one immutable
// snapshot published through DACCE.snap (RCU style). Steady-state
// readers — patched stubs, the sampling controller, decode requests,
// and the public MaxID/Dict/Epoch/CompressCount accessors — load the
// pointer once and see a consistent (epoch, maxID, dictionaries,
// tail-set, compression-set) tuple without ever taking d.mu. Writers
// (edge discovery, re-encoding, tail fix-ups) build a fresh snapshot
// under d.mu and publish it with a single atomic store; readers that
// loaded the previous snapshot keep a valid, internally consistent view
// of the epoch they started in, which is exactly the semantics the
// per-epoch decode dictionaries of paper Fig. 6 require.
//
// Invariants:
//
//   - every field is immutable after publication; mutation is always
//     copy-on-write under d.mu;
//   - dicts and idx grow by one entry per epoch and share their prefix
//     with the previous snapshot (the slices are append-copied, the
//     *Assignment/*decodeIndex elements are shared and frozen);
//   - epoch == len(dicts)-1 and maxID == dicts[epoch].MaxID;
//   - tail and compress are never mutated in place: a new map replaces
//     the old one when an entry is added.
type encSnap struct {
	// epoch is the current gTimeStamp.
	epoch uint32
	// maxID is the current epoch's maximum context id; run-time ids in
	// (maxID, 2*maxID+1] mark saved context on the ccStack.
	maxID uint64
	// dicts holds one decode dictionary per epoch (Fig. 6).
	dicts []*blenc.Assignment
	// idx holds one immutable decode index per epoch, parallel to
	// dicts; it lets the decoder run without touching the live (still
	// growing) call graph.
	idx []*decodeIndex
	// tail is the set of functions known to contain tail calls; calls
	// into them must save/restore the encoding context (paper §5.2).
	tail map[prog.FuncID]bool
	// compress is the set of back edges with Fig. 5e repetition
	// compression enabled.
	compress map[graph.EdgeKey]bool
}

// cur returns the current published snapshot. Callers holding d.mu see
// the snapshot their own mutations (if any) have already published;
// lock-free callers see some recent consistent snapshot.
func (d *DACCE) cur() *encSnap { return d.snap.Load() }

// withTailLocked returns a copy of s whose tail set additionally
// contains fn. Caller holds d.mu and publishes the result.
func (s *encSnap) withTailLocked(fn prog.FuncID) *encSnap {
	tail := make(map[prog.FuncID]bool, len(s.tail)+1)
	for k, v := range s.tail {
		tail[k] = v
	}
	tail[fn] = true
	ns := *s
	ns.tail = tail
	return &ns
}

// decodeIndex is the per-epoch decode acceleration structure: for every
// function, the encoded in-edges of the epoch with their code ranges
// (Algorithm 1 lines 26–33), plus an edge lookup table for crediting
// sample-estimated frequencies. It is built once per re-encoding pass —
// with d.mu held and the world stopped — and immutable afterwards, so
// the decoder and the sampling controller can walk it lock-free while
// the live graph keeps growing on other threads.
//
// An epoch's encoded edge set is frozen by construction: edges
// discovered after the pass are unencoded (they live on the ccStack and
// decode through the program's static site table, not through the
// graph), so the index is complete for every capture of its epoch.
type decodeIndex struct {
	// in maps a function to its encoded in-edges at this epoch, in
	// in-edge insertion order (the same order Decoder.findEdge walks
	// Node.In), each carrying the caller's numCC for the range check.
	in map[prog.FuncID][]inEdge
	// edges maps every edge that existed when the index was built to
	// its graph edge, whose Freq field is updated atomically by the
	// sampling controller. Edges discovered later are absent; they are
	// counted directly by their unencoded stubs, so no credit is lost.
	edges map[graph.EdgeKey]*graph.Edge
}

// inEdge is one encoded in-edge of a function at one epoch.
type inEdge struct {
	site   prog.SiteID
	caller prog.FuncID
	code   uint64
	ncc    uint64
}

// newDecodeIndex builds the immutable decode index for one epoch's
// assignment. Caller holds d.mu (and, during re-encoding, the world is
// stopped), so the graph iteration is safe.
func newDecodeIndex(g *graph.Graph, asn *blenc.Assignment) *decodeIndex {
	ix := &decodeIndex{
		in:    make(map[prog.FuncID][]inEdge),
		edges: make(map[graph.EdgeKey]*graph.Edge, len(g.Edges)),
	}
	for _, e := range g.Edges {
		key := graph.EdgeKey{Site: e.Site, Target: e.Target}
		ix.edges[key] = e
		code, ok := asn.Codes[key]
		if !ok || !code.Encoded {
			continue
		}
		ix.in[e.Target] = append(ix.in[e.Target], inEdge{
			site:   e.Site,
			caller: e.Caller,
			code:   code.Value,
			ncc:    asn.NumCC[e.Caller],
		})
	}
	return ix
}

// deltaDecodeIndex derives the next epoch's decode index from the
// previous one after an incremental Refresh, rebuilding in-edge lists
// only for the functions the pass renumbered. It mirrors the
// encSnap/compress copy-on-write idiom: the map headers are copied (an
// O(nodes + edges) pointer copy, paid off-pause during the concurrent
// prepare), but the in-edge lists of unaffected functions are shared
// with the previous epoch and no code or numCC is recomputed for them.
//
// The dirty set is affected ∪ targets(changed): affected alone would
// already suffice — a function's in-edge ranges depend only on its own
// in-edge codes and its callers' numCC, both of which only change for
// renumbered nodes — but the union keeps the index sound even against
// a Refresh that reports a changed edge outside its affected closure.
//
// Returns the new index and how many in-edge entries were (re)built,
// for per-phase cost attribution.
func deltaDecodeIndex(g *graph.Graph, prev *decodeIndex, asn *blenc.Assignment, changed []graph.EdgeKey, affected map[prog.FuncID]bool) (*decodeIndex, int) {
	dirty := make(map[prog.FuncID]bool, len(affected)+len(changed))
	for fn := range affected {
		dirty[fn] = true
	}
	for _, k := range changed {
		dirty[k.Target] = true
	}

	ix := &decodeIndex{
		in:    make(map[prog.FuncID][]inEdge, len(prev.in)+len(dirty)),
		edges: make(map[graph.EdgeKey]*graph.Edge, len(prev.edges)+len(changed)),
	}
	for k, e := range prev.edges {
		ix.edges[k] = e
	}
	for _, k := range changed {
		if _, ok := ix.edges[k]; !ok {
			if e := g.Edge(k.Site, k.Target); e != nil {
				ix.edges[k] = e
			}
		}
	}
	for fn, list := range prev.in {
		if !dirty[fn] {
			ix.in[fn] = list
		}
	}
	rebuilt := 0
	for fn := range dirty {
		n := g.Node(fn)
		if n == nil {
			continue
		}
		// Node.In insertion order is the g.Edges registration order
		// filtered to this target, so the rebuilt list matches what
		// newDecodeIndex would produce entry for entry.
		var list []inEdge
		for _, e := range n.In {
			key := graph.EdgeKey{Site: e.Site, Target: e.Target}
			code, ok := asn.Codes[key]
			if !ok || !code.Encoded {
				continue
			}
			list = append(list, inEdge{
				site:   e.Site,
				caller: e.Caller,
				code:   code.Value,
				ncc:    asn.NumCC[e.Caller],
			})
			rebuilt++
		}
		if len(list) > 0 {
			ix.in[fn] = list
		}
	}
	return ix, rebuilt
}
