package core

import (
	"sync"
	"sync/atomic"

	"dacce/internal/blenc"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

// Triggers configures the adaptive controller (paper §4): re-encoding
// runs when the number of newly identified edges reaches a threshold,
// when frequently invoked call paths are not encoded, or when the
// ccStack is accessed too often. Zero values take the defaults.
type Triggers struct {
	// NewEdges re-encodes after this many newly discovered edges.
	NewEdges int
	// UnencodedCalls re-encodes after this many invocations of
	// unencoded edges since the last pass (hot paths not encoded).
	UnencodedCalls int64
	// CCOps re-encodes after this many ccStack operations since the
	// last pass.
	CCOps int64
	// HotMissSamples re-encodes after this many samples whose id was in
	// the marker range (context saved on the ccStack).
	HotMissSamples int64
}

// Default trigger thresholds.
const (
	DefaultNewEdges       = 24
	DefaultUnencodedCalls = 1 << 11
	DefaultCCOps          = 1 << 12
	DefaultHotMiss        = 32
)

func (tr *Triggers) fill() {
	if tr.NewEdges == 0 {
		tr.NewEdges = DefaultNewEdges
	}
	if tr.UnencodedCalls == 0 {
		tr.UnencodedCalls = DefaultUnencodedCalls
	}
	if tr.CCOps == 0 {
		tr.CCOps = DefaultCCOps
	}
	if tr.HotMissSamples == 0 {
		tr.HotMissSamples = DefaultHotMiss
	}
}

// Options configures a DACCE instance.
type Options struct {
	// Budget caps the maximum context id (default blenc.DefaultBudget).
	Budget uint64
	// InlineThreshold is the largest number of identified indirect
	// targets dispatched by an inline compare chain (Fig. 3d); above
	// it, the one-probe hash table of Fig. 4 is generated.
	InlineThreshold int
	// CompressMinPushes enables recursion compression on a back edge
	// once it has caused this many ccStack pushes (paper §4: "if they
	// are highly repetitive, adjust the encoding algorithm on recursive
	// calls").
	CompressMinPushes int64
	// Trig holds the adaptive-controller thresholds.
	Trig Triggers
	// NoHotFirst disables the hottest-edge-gets-code-0 ordering during
	// re-encoding (ablation of the §4 adaptive-ordering optimization).
	NoHotFirst bool
	// MaxReencodes caps the number of adaptive passes; after the cap,
	// newly discovered edges stay on the ccStack forever. 0 means
	// unlimited. (Ablation: "dynamic but not adaptive".)
	MaxReencodes int
	// Incremental renumbers only the subgraph affected by newly
	// discovered edges when the new-edges trigger fires, keeping every
	// unaffected code identical (extension beyond the paper: the
	// whole-graph re-encoding cost of Table 1's "costs" column shrinks
	// to the changed region). Passes fired by the hot-path or ccStack
	// triggers still re-encode fully, so frequency reordering keeps
	// happening.
	Incremental bool
	// TrackProgress records a Fig. 9-style progress point every
	// ProgressEvery samples.
	TrackProgress bool
	// ProgressEvery is the progress sampling stride (default 16).
	ProgressEvery int64
	// Sink receives the telemetry event stream (edge discovery,
	// re-encoding passes with their trigger reason, ccStack traffic,
	// indirect promotions, id overflows, tail fix-ups, decode
	// requests). Nil — the default — emits nothing; every emission
	// site guards on it with a single branch, so an unobserved run
	// constructs no events.
	Sink telemetry.Sink
}

// DefaultInlineThreshold matches the paper's "small number of indirect
// targets" regime.
const DefaultInlineThreshold = 4

// DefaultCompressMinPushes is the default repetitiveness threshold for
// enabling recursion compression.
const DefaultCompressMinPushes = 128

// DACCE is the dynamic and adaptive calling-context encoder. Create it
// with New, pass it to machine.New as the Scheme, and decode captures
// with Decode after (or during) the run.
type DACCE struct {
	opt Options

	m *machine.Machine
	p *prog.Program

	// epi is the shared epilogue stub; all frame epilogues dispatch on
	// their cookie's tag.
	epi *epiStub
	// trap is the shared initial stub (runtime-handler trap).
	trap *trapStub

	// mu guards the graph, dictionaries, stub rebuilding and the
	// discovery state below. Stubs on the fast path never take it.
	mu    sync.Mutex
	g     *graph.Graph
	dicts []*blenc.Assignment // decode dictionary per epoch (Fig. 6)
	epoch atomic.Uint32
	maxID uint64 // current epoch's maxID (baked into stubs)

	tailContaining map[prog.FuncID]bool
	compress       map[graph.EdgeKey]bool // back edges with compression on
	pendingNew     []*graph.Edge          // edges discovered since the last pass
	hashed         map[prog.SiteID]bool   // sites promoted to hash dispatch

	// sink receives telemetry events; nil disables emission (the fast
	// path — each emission site is one predictable branch).
	sink telemetry.Sink

	// Adaptive-trigger counters, reset at each re-encoding. backoff
	// scales the traffic-driven thresholds up after every pass, so
	// re-encoding is frequent during warm-up and rare at steady state
	// (the behaviour Fig. 9 shows).
	backoff     uint
	newEdges    int
	unencCalls  atomic.Int64
	ccOps       atomic.Int64
	hotMiss     atomic.Int64
	samplesSeen atomic.Int64

	stats Stats
}

// New returns a DACCE scheme for program p.
func New(p *prog.Program, opt Options) *DACCE {
	if opt.Budget == 0 {
		opt.Budget = blenc.DefaultBudget
	}
	if opt.InlineThreshold == 0 {
		opt.InlineThreshold = DefaultInlineThreshold
	}
	if opt.CompressMinPushes == 0 {
		opt.CompressMinPushes = DefaultCompressMinPushes
	}
	if opt.ProgressEvery == 0 {
		opt.ProgressEvery = 16
	}
	opt.Trig.fill()
	d := &DACCE{
		opt:            opt,
		p:              p,
		g:              graph.New(p),
		tailContaining: make(map[prog.FuncID]bool),
		compress:       make(map[graph.EdgeKey]bool),
		hashed:         make(map[prog.SiteID]bool),
		sink:           opt.Sink,
	}
	d.epi = &epiStub{d: d}
	d.trap = &trapStub{d: d}
	// Epoch 0: the graph contains only main; encode it so maxID and the
	// first decode dictionary exist before the first call (paper §3:
	// "starts with a call graph containing only function main").
	asn := blenc.Encode(d.g, blenc.Options{Budget: d.opt.Budget, NoHotOrder: d.opt.NoHotFirst})
	d.dicts = append(d.dicts, asn)
	d.maxID = asn.MaxID
	if d.sink != nil {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvEncoderInit, Thread: -1,
			Site: prog.NoSite, Fn: prog.NoFunc,
			Value: d.opt.Budget, Aux: asn.MaxID,
		})
	}
	return d
}

// Name implements machine.Scheme.
func (d *DACCE) Name() string { return "dacce" }

// Graph returns the dynamic call graph (stable after the run ends).
func (d *DACCE) Graph() *graph.Graph { return d.g }

// Epoch returns the current gTimeStamp.
func (d *DACCE) Epoch() uint32 { return d.epoch.Load() }

// MaxID returns the current epoch's maximum context id.
func (d *DACCE) MaxID() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maxID
}

// Dict returns the decode dictionary for an epoch, or nil.
func (d *DACCE) Dict(epoch uint32) *blenc.Assignment {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(epoch) >= len(d.dicts) {
		return nil
	}
	return d.dicts[epoch]
}

// Install implements machine.Scheme: every call site starts as a
// runtime-handler trap (paper §3: "all function calls ... are replaced
// with instrumentations to invoke a runtime handler").
func (d *DACCE) Install(m *machine.Machine) {
	d.m = m
	for i := 0; i < d.p.NumSites(); i++ {
		m.SetStub(prog.SiteID(i), d.trap)
	}
}

// ThreadStart implements machine.Scheme: allocate the TLS (paper §5.3)
// and record the spawning context so the new thread's full calling
// context stays decodable.
func (d *DACCE) ThreadStart(t, parent *machine.Thread) {
	t.State = &tls{}
	if parent != nil {
		t.SpawnCapture = d.Capture(parent)
		d.mu.Lock()
		d.g.AddRoot(t.Entry())
		d.mu.Unlock()
	}
}

// ThreadExit implements machine.Scheme.
func (d *DACCE) ThreadExit(t *machine.Thread) {}

// Capture implements machine.Scheme: snapshot (gTimeStamp, id, function,
// ccStack).
func (d *DACCE) Capture(t *machine.Thread) any {
	st := t.State.(*tls)
	c := &Capture{
		Epoch: d.epoch.Load(),
		ID:    st.id,
		Fn:    t.SelfID(),
		Root:  t.Entry(),
		CC:    append([]CCEntry(nil), st.cc...),
	}
	if sc, ok := t.SpawnCapture.(*Capture); ok {
		c.Spawn = sc
	}
	t.C.CCDepthSum += int64(len(st.cc))
	t.C.CCDepthN++
	return c
}

// CaptureTyped is Capture with a concrete result type, for direct API
// use.
func (d *DACCE) CaptureTyped(t *machine.Thread) *Capture {
	return d.Capture(t).(*Capture)
}

// OnSample implements machine.SampleObserver: the adaptive controller's
// input (paper §4 — collected contexts are decoded to find hot edges
// and to detect that hot paths are unencoded).
func (d *DACCE) OnSample(t *machine.Thread, capture any) {
	c, ok := capture.(*Capture)
	if !ok || c == nil {
		return
	}
	n := d.samplesSeen.Add(1)

	d.mu.Lock()
	over := c.ID > d.maxID
	// Estimate edge heat from the decoded sample so that even
	// instrumentation-free (code 0) edges get frequency credit.
	dec := Decoder{P: d.p, G: d.g, Dicts: d.dicts}
	if ctx, err := dec.decodeLocked(c, false); err == nil {
		for i := 1; i < len(ctx); i++ {
			if e := d.g.Edge(ctx[i].Site, ctx[i].Fn); e != nil {
				atomic.AddInt64(&e.Freq, 1)
			}
		}
		t.C.InstrCost += machine.CostSampleDecode
	}
	if d.opt.TrackProgress && n%d.opt.ProgressEvery == 0 {
		d.stats.Progress = append(d.stats.Progress, ProgressPoint{
			Sample: n,
			Nodes:  d.g.NumNodes(),
			Edges:  d.g.NumEdges(),
			MaxID:  d.maxID,
			Epoch:  d.epoch.Load(),
		})
	}
	d.mu.Unlock()

	if over && d.hotMiss.Add(1) >= d.opt.Trig.HotMissSamples {
		d.reencode(t)
		return
	}
	if d.shouldReencode() {
		d.reencode(t)
	}
}

// Maintain implements machine.Maintainer: the runtime checks the
// adaptive triggers periodically even when no handler traps and no
// sampling happen.
func (d *DACCE) Maintain(t *machine.Thread) {
	if d.shouldReencode() {
		d.reencode(t)
	}
}

// shouldReencode checks the cheap trigger counters. The new-edge
// threshold backs off as the graph grows — re-encoding a big graph is
// expensive, so it must amortize over proportionally more discoveries
// (the "principle of dynamic optimization" of paper §3).
func (d *DACCE) shouldReencode() bool {
	d.mu.Lock()
	fired := d.triggersFiredLocked()
	d.mu.Unlock()
	return fired
}

// newEdgeThresholdLocked scales the new-edges trigger with graph size.
func (d *DACCE) newEdgeThresholdLocked() int {
	th := d.opt.Trig.NewEdges
	if adaptive := d.g.NumEdges() / 24; adaptive > th {
		th = adaptive
	}
	return th
}

// Stats returns the DACCE-specific statistics (Table 1's gTS and costs
// columns, Fig. 9's progress series).
func (d *DACCE) Stats() *Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Nodes = d.g.NumNodes()
	s.Edges = d.g.NumEdges()
	s.MaxID = d.maxID
	if len(d.dicts) > 0 {
		s.Overflowed = d.dicts[len(d.dicts)-1].Overflowed
	}
	return &s
}

// CompressCount returns how many back edges currently have recursion
// compression enabled.
func (d *DACCE) CompressCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.compress)
}
