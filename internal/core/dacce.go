package core

import (
	"sync"
	"sync/atomic"

	"dacce/internal/blenc"
	"dacce/internal/ccdag"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

// Triggers configures the adaptive controller (paper §4): re-encoding
// runs when the number of newly identified edges reaches a threshold,
// when frequently invoked call paths are not encoded, or when the
// ccStack is accessed too often. Zero values take the defaults.
type Triggers struct {
	// NewEdges re-encodes after this many newly discovered edges.
	NewEdges int
	// UnencodedCalls re-encodes after this many invocations of
	// unencoded edges since the last pass (hot paths not encoded).
	UnencodedCalls int64
	// CCOps re-encodes after this many ccStack operations since the
	// last pass.
	CCOps int64
	// HotMissSamples re-encodes after this many samples whose id was in
	// the marker range (context saved on the ccStack).
	HotMissSamples int64
}

// Default trigger thresholds.
const (
	DefaultNewEdges       = 24
	DefaultUnencodedCalls = 1 << 11
	DefaultCCOps          = 1 << 12
	DefaultHotMiss        = 32
)

func (tr *Triggers) fill() {
	if tr.NewEdges == 0 {
		tr.NewEdges = DefaultNewEdges
	}
	if tr.UnencodedCalls == 0 {
		tr.UnencodedCalls = DefaultUnencodedCalls
	}
	if tr.CCOps == 0 {
		tr.CCOps = DefaultCCOps
	}
	if tr.HotMissSamples == 0 {
		tr.HotMissSamples = DefaultHotMiss
	}
}

// Options configures a DACCE instance.
type Options struct {
	// Budget caps the maximum context id (default blenc.DefaultBudget).
	Budget uint64
	// InlineThreshold is the largest number of identified indirect
	// targets dispatched by an inline compare chain (Fig. 3d); above
	// it, the one-probe hash table of Fig. 4 is generated.
	InlineThreshold int
	// CompressMinPushes enables recursion compression on a back edge
	// once it has caused this many ccStack pushes (paper §4: "if they
	// are highly repetitive, adjust the encoding algorithm on recursive
	// calls").
	CompressMinPushes int64
	// Trig holds the adaptive-controller thresholds.
	Trig Triggers
	// NoHotFirst disables the hottest-edge-gets-code-0 ordering during
	// re-encoding (ablation of the §4 adaptive-ordering optimization).
	NoHotFirst bool
	// MaxReencodes caps the number of adaptive passes; after the cap,
	// newly discovered edges stay on the ccStack forever. 0 means
	// unlimited. (Ablation: "dynamic but not adaptive".)
	MaxReencodes int
	// Incremental renumbers only the subgraph affected by newly
	// discovered edges when the new-edges trigger fires, keeping every
	// unaffected code identical (extension beyond the paper: the
	// whole-graph re-encoding cost of Table 1's "costs" column shrinks
	// to the changed region). Passes fired by the hot-path or ccStack
	// triggers still re-encode fully, so frequency reordering keeps
	// happening.
	Incremental bool
	// SerializedDiscovery routes every handler trap through the global
	// scheme mutex — the pre-sharding discipline, kept as the baseline
	// the warmup suite compares the sharded cold-start path against
	// (and as an A/B debugging aid). Off by default: discovery uses
	// per-shard locks and per-thread publication buffers, and
	// concurrent trigger firings coalesce into one re-encoding pass.
	SerializedDiscovery bool
	// TrackProgress records a Fig. 9-style progress point every
	// ProgressEvery samples.
	TrackProgress bool
	// ProgressEvery is the progress sampling stride (default 16).
	ProgressEvery int64
	// Sink receives the telemetry event stream (edge discovery,
	// re-encoding passes with their trigger reason, ccStack traffic,
	// indirect promotions, id overflows, tail fix-ups, decode
	// requests). Nil — the default — emits nothing; every emission
	// site guards on it with a single branch, so an unobserved run
	// constructs no events.
	Sink telemetry.Sink
	// ContextObserver receives every context the sampling controller
	// decodes, straight off the live OnSample path — the feed of the
	// always-on streaming profiler (ccprof.Streaming). Nil disables the
	// hook. See SetContextObserver for the contract.
	ContextObserver ContextObserver
}

// ContextObserver consumes decoded calling contexts from the live
// sampling path. Implementations must be safe for concurrent calls from
// multiple machine threads, must not retain ctx (it aliases the
// sampling thread's scratch buffer and is overwritten by the next
// sample), must not call back into the encoder, and must be cheap and
// allocation-free at steady state — the observer runs inside the
// sampling controller the 0-alloc gate covers.
type ContextObserver interface {
	ObserveContext(thread int, ctx Context)
}

// NodeObserver is the interned-context upgrade of ContextObserver: a
// context observer that also implements it receives each sampled
// context as its canonical hash-consed DAG node instead of the scratch
// slice — one word, valid forever, pointer-comparable — and the
// sampling controller interns the decoded frames into the encoder's
// DAG on the observer's behalf (allocation-free once the DAG holds the
// context). The same concurrency and no-callback rules as
// ContextObserver apply; retaining the node is allowed (that is the
// point).
type NodeObserver interface {
	ObserveContextNode(thread int, n *ccdag.Node)
}

// DefaultInlineThreshold matches the paper's "small number of indirect
// targets" regime.
const DefaultInlineThreshold = 4

// DefaultCompressMinPushes is the default repetitiveness threshold for
// enabling recursion compression.
const DefaultCompressMinPushes = 128

// DACCE is the dynamic and adaptive calling-context encoder. Create it
// with New, pass it to machine.New as the Scheme, and decode captures
// with Decode after (or during) the run.
//
// Concurrency: the steady state is lock-free. Patched stubs mutate only
// thread-local state and atomic counters; the read-mostly encoding
// state lives in an immutable snapshot (see encSnap) published through
// snap, so the sampling controller, periodic maintenance, decode
// requests and the public accessors never contend on mu. The mutex
// guards actual mutation only: graph edge insertion and stub patching
// in the runtime handler, and the stop-the-world rebuild of a
// re-encoding pass.
type DACCE struct {
	opt Options

	// m is the installed machine, published atomically so an external
	// ForceReencode can race Install safely (it simply sees no machine
	// and skips the stop-the-world).
	m atomic.Pointer[machine.Machine]
	p *prog.Program

	// epi is the shared epilogue stub; all frame epilogues dispatch on
	// their cookie's tag.
	epi *epiStub
	// trap is the shared initial stub (runtime-handler trap).
	trap *trapStub

	// snap is the published read-mostly encoding state. Loads are
	// lock-free; stores happen under mu.
	snap atomic.Pointer[encSnap]

	// mu guards the graph registry (NodeSeq/Edges/adjacency),
	// snapshot publication and the discovery state below. Stubs on the
	// fast path never take it, and since discovery went sharded the
	// runtime handler does not either: a trap touches only its site's
	// graph shard and rebuild shard, and publishes the new edge through
	// the thread's buffer, which is batch-registered under one mu
	// acquisition per discoveryBatch edges (or at the next pass/export,
	// whichever drains first).
	mu         sync.Mutex
	g          *graph.Graph
	pendingNew []*graph.Edge // edges registered since the last pass

	// discBufs lists every thread's edge publication buffer, appended
	// at ThreadStart. drainAllLocked iterates this registry — not the
	// machine's thread list — because a spawning thread's State field
	// is written with no synchronization a mid-run drainer could order
	// against. Exited threads leave their (empty) buffer behind; the
	// list is bounded by threads started over the encoder's life.
	discBufs []*discBuf

	// siteShards serialize concurrent stub rebuilds of the same call
	// site (two threads discovering different targets of one indirect
	// site) without any global lock; the shard also owns the
	// hash-promotion dedup set for its sites. Lock order: mu →
	// siteShard.mu → graph shard (never the reverse).
	siteShards [siteShardCount]siteShard

	// reencodeGate admits one thread at a time into the re-encoding
	// slow path: concurrent trigger firings — the cold-start norm, when
	// every thread's counters cross the threshold together — coalesce
	// into a single stop-the-world pass instead of a convoy of stoppers
	// each paying a world-stop to discover the winner already reset the
	// counters. Bypassed by ForceReencode and by SerializedDiscovery
	// (which models the old convoy faithfully).
	reencodeGate atomic.Bool

	// edgesDiscovered counts first invocations seen by the handler;
	// atomic because sharded traps bump it without mu.
	edgesDiscovered atomic.Int64

	// sink receives telemetry events; nil disables emission (the fast
	// path — each emission site is one predictable branch).
	sink telemetry.Sink

	// ctxObs is the streaming-profiler hook, published atomically so it
	// can be attached to an already-running encoder without a race with
	// in-flight samples. nodeObs holds the same observer's NodeObserver
	// upgrade when it has one (resolved once at attach time, so the
	// sample path pays a load, not a type assertion).
	ctxObs  atomic.Pointer[ContextObserver]
	nodeObs atomic.Pointer[NodeObserver]

	// dag is the encoder's hash-consed context DAG: the intern table
	// behind DecodeNode/DecodeSampleNode and the node-mode sampling
	// observer. Created with the encoder; a node stays canonical across
	// re-encoding epochs because it is keyed by decoded frames, not by
	// encoded ids. The table is bounded, not append-only: the DAG's
	// generation advances in lockstep with the epoch counter, and
	// maybeCollect sweeps nodes untouched since the low-water epoch
	// after each pass (see reclaim.go).
	dag *ccdag.DAG

	// capRefs counts outstanding (un-released) captures per epoch; the
	// oldest epoch with a nonzero counter is the low-water epoch below
	// which no capture can legally still be decoded. The slice is
	// copy-grown under mu before the snapshot introducing a new epoch is
	// published; entries are pointers because atomic.Int64 must not be
	// copied during growth.
	capRefs atomic.Pointer[[]*atomic.Int64]

	// collectFloor is the highest floor a DAG collection has run with;
	// maybeCollect CASes it forward so a pass that did not advance the
	// low-water mark costs one atomic load.
	collectFloor atomic.Uint64

	// nodeRel is the attached observer's NodeReleaser upgrade (resolved
	// at SetContextObserver time, like nodeObs), called before each
	// collection so shard maps holding *ccdag.Node keys drop their pins.
	nodeRel atomic.Pointer[NodeReleaser]

	// Always-on latency histograms over the runtime's own control
	// points. They exist regardless of any sink — the warmup suite
	// reads pause quantiles from every run and the SLO watchdog needs
	// live sources — and they are off the per-call fast path: a pass,
	// a trap and an external decode are each rare enough that one
	// lock-free Observe is noise.
	pauseHist  *telemetry.Histogram // STW re-encoding pause, wall ns
	prepHist   *telemetry.Histogram // concurrent-prepare (off-pause) duration, wall ns
	trapHist   *telemetry.Histogram // runtime-handler trap latency, wall ns
	decodeHist *telemetry.Histogram // external Decode latency, wall ns

	// Adaptive-trigger counters, reset at each re-encoding. All are
	// atomic so the trigger pre-check (Maintain, OnSample, the trap's
	// fast path) is a handful of loads with no lock. backoff scales the
	// traffic-driven thresholds up after every pass, so re-encoding is
	// frequent during warm-up and rare at steady state (the behaviour
	// Fig. 9 shows). edgeCount shadows g.NumEdges() for the lock-free
	// adaptive new-edge threshold.
	backoff     atomic.Uint32
	newEdges    atomic.Int64
	edgeCount   atomic.Int64
	unencCalls  atomic.Int64
	ccOps       atomic.Int64
	hotMiss     atomic.Int64
	samplesSeen atomic.Int64

	stats Stats

	// lastPlan is the plan the most recent pass committed, kept (under
	// mu) for the white-box delta-vs-full equivalence tests; production
	// code never reads it.
	lastPlan *passPlan
}

// capturePool recycles Capture snapshots (and their ccStack copy
// backing arrays) between samples. The machine returns unretained
// captures through ReleaseCapture after the sampling observer is done
// with them, so steady-state sampling allocates nothing.
var capturePool = sync.Pool{New: func() any { return new(Capture) }}

// New returns a DACCE scheme for program p.
func New(p *prog.Program, opt Options) *DACCE {
	if opt.Budget == 0 {
		opt.Budget = blenc.DefaultBudget
	}
	if opt.InlineThreshold == 0 {
		opt.InlineThreshold = DefaultInlineThreshold
	}
	if opt.CompressMinPushes == 0 {
		opt.CompressMinPushes = DefaultCompressMinPushes
	}
	if opt.ProgressEvery == 0 {
		opt.ProgressEvery = 16
	}
	opt.Trig.fill()
	d := &DACCE{
		opt:        opt,
		p:          p,
		g:          graph.New(p),
		dag:        ccdag.New(),
		sink:       opt.Sink,
		pauseHist:  telemetry.NewHistogram(telemetry.DurationBuckets()),
		prepHist:   telemetry.NewHistogram(telemetry.DurationBuckets()),
		trapHist:   telemetry.NewHistogram(telemetry.DurationBuckets()),
		decodeHist: telemetry.NewHistogram(telemetry.DurationBuckets()),
	}
	refs := []*atomic.Int64{new(atomic.Int64)}
	d.capRefs.Store(&refs)
	if opt.ContextObserver != nil {
		d.SetContextObserver(opt.ContextObserver)
	}
	for i := range d.siteShards {
		d.siteShards[i].hashed = make(map[prog.SiteID]bool)
	}
	d.epi = &epiStub{d: d}
	d.trap = &trapStub{d: d}
	// Epoch 0: the graph contains only main; encode it so maxID and the
	// first decode dictionary exist before the first call (paper §3:
	// "starts with a call graph containing only function main").
	asn := blenc.Encode(d.g, blenc.Options{Budget: d.opt.Budget, NoHotOrder: d.opt.NoHotFirst})
	d.snap.Store(&encSnap{
		epoch:    0,
		maxID:    asn.MaxID,
		dicts:    []*blenc.Assignment{asn},
		idx:      []*decodeIndex{newDecodeIndex(d.g, asn)},
		tail:     map[prog.FuncID]bool{},
		compress: map[graph.EdgeKey]bool{},
	})
	if d.sink != nil {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvEncoderInit, Thread: -1,
			Site: prog.NoSite, Fn: prog.NoFunc,
			Value: d.opt.Budget, Aux: asn.MaxID,
		})
	}
	return d
}

// Name implements machine.Scheme.
func (d *DACCE) Name() string { return "dacce" }

// Graph returns the dynamic call graph (stable after the run ends).
// Edges still sitting in per-thread publication buffers are registered
// first, so the registry view is complete as of the call.
func (d *DACCE) Graph() *graph.Graph {
	d.mu.Lock()
	d.drainAllLocked()
	d.mu.Unlock()
	return d.g
}

// Epoch returns the current gTimeStamp. Lock-free.
func (d *DACCE) Epoch() uint32 { return d.cur().epoch }

// MaxID returns the current epoch's maximum context id. Lock-free.
func (d *DACCE) MaxID() uint64 { return d.cur().maxID }

// Dict returns the decode dictionary for an epoch, or nil. Lock-free.
func (d *DACCE) Dict(epoch uint32) *blenc.Assignment {
	snap := d.cur()
	if int(epoch) >= len(snap.dicts) {
		return nil
	}
	return snap.dicts[epoch]
}

// Install implements machine.Scheme: every call site starts as a
// runtime-handler trap (paper §3: "all function calls ... are replaced
// with instrumentations to invoke a runtime handler"). Re-installing a
// warmed encoder on a fresh machine (the steady-state benchmark regime)
// re-patches every already-discovered site from the current graph and
// assignment instead of re-trapping it.
func (d *DACCE) Install(m *machine.Machine) {
	d.m.Store(m)
	for i := 0; i < d.p.NumSites(); i++ {
		m.SetStub(prog.SiteID(i), d.trap)
	}
	d.mu.Lock()
	if d.g.NumEdges() > 0 {
		d.rebuildAllLocked()
	}
	d.mu.Unlock()
}

// ThreadStart implements machine.Scheme: allocate the TLS (paper §5.3)
// and record the spawning context so the new thread's full calling
// context stays decodable.
func (d *DACCE) ThreadStart(t, parent *machine.Thread) {
	buf := &discBuf{}
	t.State = &tls{disc: buf}
	if parent != nil {
		t.SpawnCapture = d.Capture(parent)
	}
	d.mu.Lock()
	d.discBufs = append(d.discBufs, buf)
	if parent != nil {
		d.g.AddRoot(t.Entry())
	}
	d.mu.Unlock()
}

// ThreadExit implements machine.Scheme: register any edges still
// sitting in the exiting thread's publication buffer — nobody will
// flush it afterwards — and drop the exiting thread's spawn capture's
// epoch reference. The spawn capture object itself is not pooled:
// retained samples may still point at it through Capture.Spawn, and
// dropping only the refcount is safe because any later decode of such
// a sample holds the sample's own (newer) epoch reference and stamps
// the spawn chain's nodes with the then-current generation.
func (d *DACCE) ThreadExit(t *machine.Thread) {
	if sc, ok := t.SpawnCapture.(*Capture); ok && sc != nil {
		d.releaseEpoch(sc.Epoch)
	}
	st, ok := t.State.(*tls)
	if !ok || st == nil || st.disc == nil {
		return
	}
	st.disc.mu.Lock()
	batch := st.disc.edges
	st.disc.edges = nil
	st.disc.mu.Unlock()
	d.flushBatch(batch)
}

// Capture implements machine.Scheme: snapshot (gTimeStamp, id, function,
// ccStack). The snapshot object comes from a pool; callers that are
// done with a capture the machine did not retain hand it back through
// ReleaseCapture, making steady-state sampling allocation-free once the
// pool and the ccStack copy's backing array are warm.
func (d *DACCE) Capture(t *machine.Thread) any {
	st := t.State.(*tls)
	c := capturePool.Get().(*Capture)
	c.Epoch = d.cur().epoch
	c.ID = st.id
	c.Fn = t.SelfID()
	c.Root = t.Entry()
	c.CC = append(c.CC[:0], st.cc...)
	c.Spawn = nil
	if sc, ok := t.SpawnCapture.(*Capture); ok {
		c.Spawn = sc
	}
	d.retainEpoch(c.Epoch)
	t.C.CCDepthSum += int64(len(st.cc))
	t.C.CCDepthN++
	return c
}

// CaptureTyped is Capture with a concrete result type, for direct API
// use.
func (d *DACCE) CaptureTyped(t *machine.Thread) *Capture {
	return d.Capture(t).(*Capture)
}

// ReleaseCapture implements machine.CaptureReleaser: return a capture
// that is no longer referenced to the pool. The spawn-path capture a
// released snapshot points at is owned by its thread and stays alive;
// only the outer object and its ccStack copy are recycled. Releasing a
// capture that is still retained anywhere (machine samples, user code)
// is a use-after-free bug on the caller's side — the machine only
// releases captures it chose not to retain.
func (d *DACCE) ReleaseCapture(capture any) {
	c, ok := capture.(*Capture)
	if !ok || c == nil {
		return
	}
	d.releaseEpoch(c.Epoch)
	c.Spawn = nil
	capturePool.Put(c)
}

// OnSample implements machine.SampleObserver: the adaptive controller's
// input (paper §4 — collected contexts are decoded to find hot edges
// and to detect that hot paths are unencoded). The whole path is
// lock-free: the decode walks the capture epoch's immutable index on
// the thread's reusable scratch buffers, edge heat is credited with
// atomic adds, and the trigger check reads atomic counters. Only the
// optional TrackProgress bookkeeping (an experiment mode, off by
// default) takes the mutex, to read consistent graph counts.
func (d *DACCE) OnSample(t *machine.Thread, capture any) {
	c, ok := capture.(*Capture)
	if !ok || c == nil {
		return
	}
	n := d.samplesSeen.Add(1)
	snap := d.cur()

	// Estimate edge heat from the decoded sample so that even
	// instrumentation-free (code 0) edges get frequency credit. The
	// capture's epoch always has an index: the capture was taken before
	// this observer ran, and snapshots only grow.
	if st, ok := t.State.(*tls); ok && int(c.Epoch) < len(snap.idx) {
		dec := Decoder{P: d.p, Dicts: snap.dicts, idx: snap.idx}
		if ctx, err := dec.decodeOne(c, &st.scratch); err == nil {
			ix := snap.idx[c.Epoch]
			for i := 1; i < len(ctx); i++ {
				if e := ix.edges[graph.EdgeKey{Site: ctx[i].Site, Target: ctx[i].Fn}]; e != nil {
					atomic.AddInt64(&e.Freq, 1)
				}
			}
			t.C.InstrCost += machine.CostSampleDecode
			// The streaming profiler rides the decode the controller
			// already paid for: the observer consumes ctx before the
			// scratch is reused, keeping the whole path allocation-free.
			// A node observer instead gets the context interned into the
			// encoder's DAG — pure pointer hops once the DAG is warm, and
			// the node is retainable where the scratch slice is not.
			if nop := d.nodeObs.Load(); nop != nil {
				nd := st.lastNode
				if !d.dag.Fresh(nd) || !nodeMatches(nd, ctx) {
					nd = internContext(d.dag, ctx)
					st.lastNode = nd
				}
				(*nop).ObserveContextNode(t.ID(), nd)
			} else if op := d.ctxObs.Load(); op != nil {
				(*op).ObserveContext(t.ID(), ctx)
			}
		}
	}
	if d.opt.TrackProgress && n%d.opt.ProgressEvery == 0 {
		d.mu.Lock()
		d.drainAllLocked()
		d.stats.Progress = append(d.stats.Progress, ProgressPoint{
			Sample: n,
			Nodes:  d.g.NumNodes(),
			Edges:  d.g.NumEdges(),
			MaxID:  snap.maxID,
			Epoch:  snap.epoch,
		})
		d.mu.Unlock()
	}

	if c.ID > snap.maxID && d.hotMiss.Add(1) >= d.opt.Trig.HotMissSamples {
		d.maybeReencode(t)
		return
	}
	if d.triggersFired() {
		d.maybeReencode(t)
	}
}

// OnModuleLoad implements machine.ModuleObserver. Nothing to do: the
// module's sites are already trapped — either from Install or from the
// unload that preceded a reload — so its edges are (re)discovered on
// first invocation, exactly the paper's §5.1 lazy regime.
func (d *DACCE) OnModuleLoad(t *machine.Thread, id prog.ModuleID) {}

// OnModuleUnload implements machine.ModuleObserver: dlclose unmaps the
// module's code, taking the generated stubs in it along. Every call
// site owned by the module reverts to the runtime-handler trap, so a
// later reload re-enters discovery (a re-instrumentation storm, by
// design). The graph and the epoch dictionaries are untouched — they
// are append-only — so contexts captured while the module was loaded
// keep decoding against their epoch after it is gone.
func (d *DACCE) OnModuleUnload(t *machine.Thread, id prog.ModuleID) {
	m := d.m.Load()
	if m == nil {
		return
	}
	for i := 0; i < d.p.NumSites(); i++ {
		sid := prog.SiteID(i)
		if d.p.Funcs[d.p.Site(sid).Caller].Module == id {
			m.SetStub(sid, d.trap)
		}
	}
}

// Maintain implements machine.Maintainer: the runtime checks the
// adaptive triggers periodically even when no handler traps and no
// sampling happen. The pre-check is a few atomic loads; the mutex is
// touched only when a trigger has actually fired and a pass will run.
func (d *DACCE) Maintain(t *machine.Thread) {
	if d.triggersFired() {
		d.maybeReencode(t)
	}
}

// newEdgeThreshold scales the new-edges trigger with graph size:
// re-encoding a big graph is expensive, so it must amortize over
// proportionally more discoveries (the "principle of dynamic
// optimization" of paper §3). Lock-free: edgeCount shadows the graph's
// edge count.
func (d *DACCE) newEdgeThreshold() int64 {
	th := int64(d.opt.Trig.NewEdges)
	if adaptive := d.edgeCount.Load() / 24; adaptive > th {
		th = adaptive
	}
	return th
}

// Stats returns the DACCE-specific statistics (Table 1's gTS and costs
// columns, Fig. 9's progress series).
func (d *DACCE) Stats() *Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainAllLocked()
	snap := d.cur()
	s := d.stats
	s.EdgesDiscovered = int(d.edgesDiscovered.Load())
	s.Nodes = d.g.NumNodes()
	s.Edges = d.g.NumEdges()
	s.MaxID = snap.maxID
	s.Overflowed = snap.dicts[len(snap.dicts)-1].Overflowed
	return &s
}

// CompressCount returns how many back edges currently have recursion
// compression enabled. Lock-free.
func (d *DACCE) CompressCount() int { return len(d.cur().compress) }

// SetContextObserver attaches (or, with nil, detaches) the streaming
// context observer fed from the live sampling path. Safe to call while
// the machine runs; in-flight samples see either the old or the new
// observer. An observer that also implements NodeObserver is fed
// interned DAG nodes instead of scratch slices.
func (d *DACCE) SetContextObserver(o ContextObserver) {
	if o == nil {
		d.ctxObs.Store(nil)
		d.nodeObs.Store(nil)
		d.nodeRel.Store(nil)
		return
	}
	// An observer that retains nodes (NodeObserver) may also know how to
	// release them; resolve that upgrade once here so maybeCollect pays a
	// load, not a type assertion.
	if rel, ok := o.(NodeReleaser); ok {
		d.nodeRel.Store(&rel)
	} else {
		d.nodeRel.Store(nil)
	}
	if no, ok := o.(NodeObserver); ok {
		d.ctxObs.Store(nil)
		d.nodeObs.Store(&no)
		return
	}
	d.nodeObs.Store(nil)
	d.ctxObs.Store(&o)
}

// PauseHist returns the live stop-the-world pause histogram (wall
// nanoseconds per re-encoding pass). Always on; use Snapshot for
// quantiles or wire it into an SLO watchdog rule.
func (d *DACCE) PauseHist() *telemetry.Histogram { return d.pauseHist }

// PrepareHist returns the live concurrent-prepare duration histogram:
// the off-pause portion of each bounded-pause re-encoding (assignment +
// decode-index construction with the world still running). Classic
// all-in-pause passes do not observe into it.
func (d *DACCE) PrepareHist() *telemetry.Histogram { return d.prepHist }

// TrapHist returns the live runtime-handler latency histogram (wall
// nanoseconds per trap).
func (d *DACCE) TrapHist() *telemetry.Histogram { return d.trapHist }

// DecodeHist returns the live external-decode latency histogram (wall
// nanoseconds per Decode call).
func (d *DACCE) DecodeHist() *telemetry.Histogram { return d.decodeHist }

// TrapBacklog returns how many newly discovered edges await the next
// re-encoding pass — the watchdog's backlog source: a runaway value
// means discovery is outpacing the adaptive controller.
func (d *DACCE) TrapBacklog() int64 { return d.newEdges.Load() }

// Discovery names one synthetic edge observation for InjectDiscoveries.
type Discovery struct {
	Site prog.SiteID
	Fn   prog.FuncID
	// Freq is the observed invocation count credited to the edge
	// (minimum 1); it drives the hottest-first ordering exactly like
	// trap- and sample-credited frequency does.
	Freq int64
}

// InjectDiscoveries feeds a batch of edge observations through the same
// bookkeeping a runtime-handler trap performs — graph insertion and
// registration, frequency credit, trigger counters, pendingNew — but
// without executing any call. It exists for the experiment suites
// (notably the pause suite), which need to stage graphs of a precise
// size and delta and then measure a single re-encoding pass: going
// through the graph directly would bypass pendingNew and starve the
// incremental Refresh of the additions it renumbers. No pass is
// triggered; pair with ReencodeNow.
func (d *DACCE) InjectDiscoveries(batch []Discovery) {
	d.mu.Lock()
	defer d.mu.Unlock()
	installed := d.m.Load() != nil
	var fresh []*graph.Edge
	for _, disc := range batch {
		freq := disc.Freq
		if freq < 1 {
			freq = 1
		}
		e, isNew := d.g.DiscoverEdge(disc.Site, disc.Fn)
		atomic.AddInt64(&e.Freq, freq)
		if !isNew {
			continue
		}
		fresh = append(fresh, e)
		d.edgesDiscovered.Add(1)
		d.newEdges.Add(1)
		d.edgeCount.Add(1)
		if installed {
			d.rebuildSite(disc.Site)
		}
	}
	d.g.RegisterEdges(fresh)
	d.pendingNew = append(d.pendingNew, fresh...)
}
