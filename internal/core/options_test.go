package core

import (
	"testing"

	"dacce/internal/machine"
	"dacce/internal/prog"
)

// discoveringProgram keeps exposing new edges so adaptive triggers keep
// having material.
func discoveringProgram(tb testing.TB, nLeaves, rounds int) *prog.Program {
	tb.Helper()
	b := prog.NewBuilder()
	mainF := b.Func("main")
	var sites []prog.SiteID
	for i := 0; i < nLeaves; i++ {
		f := b.Func("leaf" + string(rune('A'+i%26)) + string(rune('a'+i/26)))
		sites = append(sites, b.CallSite(mainF, f))
		b.Leaf(f, 1)
	}
	b.Body(mainF, func(x prog.Exec) {
		for r := 0; r < rounds; r++ {
			for i, s := range sites {
				if i <= r*nLeaves/rounds {
					x.Call(s, prog.NoFunc)
				}
			}
		}
	})
	return b.MustBuild()
}

func TestMaxReencodesCapsAdaptivity(t *testing.T) {
	p := discoveringProgram(t, 40, 60)
	run := func(cap int) (*Stats, *machine.RunStats) {
		d := New(p, Options{Trig: Triggers{NewEdges: 4}, MaxReencodes: cap})
		m := machine.New(p, d, machine.Config{SampleEvery: 16, DropSamples: true})
		rs, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d.Stats(), rs
	}
	free, _ := run(0)
	capped, cappedRS := run(2)
	if free.GTS <= 2 {
		t.Fatalf("uncapped run re-encoded only %d times; test needs churn", free.GTS)
	}
	if capped.GTS != 2 {
		t.Errorf("capped run re-encoded %d times, want exactly 2", capped.GTS)
	}
	// Frozen encoding leaves later edges on the ccStack.
	if cappedRS.C.CCPush == 0 {
		t.Error("capped run never pushed despite frozen encoding")
	}
}

func TestMaintainTriggersWithoutSampling(t *testing.T) {
	p := discoveringProgram(t, 30, 40)
	d := New(p, Options{Trig: Triggers{NewEdges: 8}})
	// No sampling at all: only the Maintain hook can fire the triggers.
	m := machine.New(p, d, machine.Config{MaintainEvery: 64})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().GTS == 0 {
		t.Error("maintenance hook never re-encoded despite edge churn")
	}
}

func TestNoHotFirstStillDecodes(t *testing.T) {
	p := discoveringProgram(t, 20, 20)
	d := New(p, Options{NoHotFirst: true, Trig: Triggers{NewEdges: 6}})
	m := machine.New(p, d, machine.Config{SampleEvery: 5})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("sample %d: %v", s.Seq, err)
		}
		if want := ShadowContext(nil, s.Shadow); !ctx.Equal(want) {
			t.Errorf("sample %d: %v != %v", s.Seq, ctx, want)
		}
	}
}

// TestEncodingBudgetExclusion gives DACCE a tiny id budget: the encoder
// must keep ids within it by leaving cold edges on the ccStack, and
// decoding must keep working.
func TestEncodingBudgetExclusion(t *testing.T) {
	// Diamond chains multiply contexts beyond the tiny budget.
	b := prog.NewBuilder()
	prev := b.Func("main")
	type lay struct {
		sl, sr prog.SiteID
		j      prog.FuncID
	}
	var lays []lay
	for i := 0; i < 8; i++ {
		l := b.Func("l" + string(rune('a'+i)))
		r := b.Func("r" + string(rune('a'+i)))
		j := b.Func("j" + string(rune('a'+i)))
		sl := b.CallSite(prev, l)
		sr := b.CallSite(prev, r)
		slj := b.CallSite(l, j)
		srj := b.CallSite(r, j)
		b.Body(l, func(x prog.Exec) { x.Call(slj, prog.NoFunc) })
		b.Body(r, func(x prog.Exec) { x.Call(srj, prog.NoFunc) })
		lays = append(lays, lay{sl, sr, j})
		prev = j
	}
	// Chain the layers: j_i calls into layer i+1's sides.
	for i := 0; i+1 < len(lays); i++ {
		next := lays[i+1]
		b.Body(lays[i].j, func(x prog.Exec) {
			if x.Rand().Float64() < 0.5 {
				x.Call(next.sl, prog.NoFunc)
			} else {
				x.Call(next.sr, prog.NoFunc)
			}
		})
	}
	mainID := b.ID("main")
	b.Body(mainID, func(x prog.Exec) {
		for k := 0; k < 400; k++ {
			if x.Rand().Float64() < 0.5 {
				x.Call(lays[0].sl, prog.NoFunc)
			} else {
				x.Call(lays[0].sr, prog.NoFunc)
			}
		}
	})
	p := b.MustBuild()

	d := New(p, Options{Budget: 20, Trig: Triggers{NewEdges: 4}})
	m := machine.New(p, d, machine.Config{SampleEvery: 7, Seed: 11})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MaxID(); got > 20 {
		t.Errorf("maxID %d exceeds budget 20", got)
	}
	if !d.Stats().Overflowed {
		t.Error("budget pressure not reported as overflow")
	}
	for _, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("sample %d: %v", s.Seq, err)
		}
		if want := ShadowContext(nil, s.Shadow); !ctx.Equal(want) {
			t.Errorf("sample %d: %v != %v", s.Seq, ctx, want)
		}
	}
}

// TestIDRangeInvariantUnderBudget: even with exclusions, captured ids
// stay within 2*maxID+1 of their epoch.
func TestIDRangeInvariantUnderBudget(t *testing.T) {
	p := discoveringProgram(t, 25, 30)
	d := New(p, Options{Budget: 8, Trig: Triggers{NewEdges: 4}})
	m := machine.New(p, d, machine.Config{SampleEvery: 3})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rs.Samples {
		c := s.Capture.(*Capture)
		dict := d.Dict(c.Epoch)
		if c.ID > 2*dict.MaxID+1 {
			t.Fatalf("id %d out of range for epoch %d (maxID %d)", c.ID, c.Epoch, dict.MaxID)
		}
	}
}

// TestIncrementalEncoding runs the discovery-heavy workload with
// incremental re-encoding: decodes must stay exact, incremental passes
// must actually happen, and the accounted cost must shrink.
func TestIncrementalEncoding(t *testing.T) {
	p := discoveringProgram(t, 60, 80)
	run := func(inc bool) (*Stats, []machine.Sample, *DACCE) {
		d := New(p, Options{Trig: Triggers{NewEdges: 6}, Incremental: inc})
		m := machine.New(p, d, machine.Config{SampleEvery: 9})
		rs, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d.Stats(), rs.Samples, d
	}
	full, _, _ := run(false)
	incr, samples, d := run(true)
	if incr.IncrementalPasses == 0 {
		t.Fatal("incremental mode never used an incremental pass")
	}
	if incr.ReencodeCost >= full.ReencodeCost {
		t.Errorf("incremental cost %d not below full cost %d", incr.ReencodeCost, full.ReencodeCost)
	}
	for _, s := range samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("sample %d: %v", s.Seq, err)
		}
		if want := ShadowContext(nil, s.Shadow); !ctx.Equal(want) {
			t.Fatalf("sample %d: %v != %v", s.Seq, ctx, want)
		}
	}
}

// TestIncrementalOnWorkload cross-validates incremental mode on a full
// synthetic benchmark with recursion, indirects and tail calls.
func TestIncrementalOnWorkload(t *testing.T) {
	// Built via the public profile to avoid an import cycle with
	// workload: replicate a small profile inline instead.
	p := discoveringProgram(t, 45, 50)
	d := New(p, Options{Incremental: true, Trig: Triggers{NewEdges: 4}})
	m := machine.New(p, d, machine.Config{SampleEvery: 3})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if want := ShadowContext(nil, s.Shadow); !ctx.Equal(want) {
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d mis-decodes under incremental encoding", bad)
	}
}
