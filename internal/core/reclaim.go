// Epoch-scoped DAG reclamation: the encoder's side of the bounded-
// memory contract. Every capture holds a reference on its epoch from
// Capture to ReleaseCapture; the oldest epoch with outstanding
// references is the low-water epoch — no capture below it can still be
// decoded, so every DAG node last touched before its generation is
// garbage. Re-encoding passes advance the DAG's generation in lockstep
// with the epoch counter (commitPlanLocked), and after each pass the
// encoder collects up to the low-water mark, off the stop-the-world
// pause.
//
// Safety: a decode of capture c stamps every node it interns with the
// current generation g ≥ c.Epoch, and while c is un-released the
// low-water epoch — hence every collection floor — stays ≤ c.Epoch.
// So no in-flight decode can have its freshly walked chain swept out
// from under it. Sampling-path walks (OnSample) need no reference:
// they run between machine safepoints, so no epoch can commit — and no
// floor can advance — while one is in flight.

package core

import (
	"sync/atomic"
)

// NodeReleaser is the reclamation hook of a node observer: an observer
// that retains *ccdag.Node keys (the streaming profiler's shard maps)
// implements it to flush and drop those references so a DAG collection
// can actually free the nodes. The encoder calls it right before each
// collection; implementations must be safe to call concurrently with
// ObserveContextNode.
type NodeReleaser interface {
	ReleaseNodes()
}

// epochRefs returns the live per-epoch outstanding-capture counters.
func (d *DACCE) refs() []*atomic.Int64 { return *d.capRefs.Load() }

// retainEpoch counts one outstanding capture against epoch e.
func (d *DACCE) retainEpoch(e uint32) { d.refs()[e].Add(1) }

// releaseEpoch drops one outstanding capture of epoch e.
func (d *DACCE) releaseEpoch(e uint32) { d.refs()[e].Add(-1) }

// growRefsLocked extends the refcount vector to cover epoch e. Caller
// holds d.mu; must run before the snapshot that introduces e is
// published, so any reader that sees the epoch sees its counter.
func (d *DACCE) growRefsLocked(e uint32) {
	refs := d.refs()
	if int(e) < len(refs) {
		return
	}
	grown := make([]*atomic.Int64, e+1)
	copy(grown, refs)
	for i := len(refs); i < len(grown); i++ {
		grown[i] = new(atomic.Int64)
	}
	d.capRefs.Store(&grown)
}

// LowWaterEpoch returns the oldest epoch that still has outstanding
// captures — the epoch floor below which no capture can legally be
// decoded anymore — or the current epoch when nothing is outstanding.
// Captures the machine retained as samples (and captures user code
// holds without releasing) keep their epoch pinned, which makes
// collection exactly as conservative as the caller's retention.
func (d *DACCE) LowWaterEpoch() uint32 {
	cur := d.cur().epoch
	refs := d.refs()
	n := len(refs)
	if int(cur)+1 < n {
		n = int(cur) + 1
	}
	for e := 0; e < n; e++ {
		if refs[e].Load() > 0 {
			return uint32(e)
		}
	}
	return cur
}

// maybeCollect frees DAG nodes unreachable since before the low-water
// epoch. Called after each re-encoding pass, outside the pause; a pass
// that did not move the low-water mark (captures still outstanding, or
// no release traffic) skips the sweep entirely, so steady state with
// retained samples pays one atomic compare. The CAS also collapses
// concurrent callers into one sweep per floor.
func (d *DACCE) maybeCollect() {
	floor := uint64(d.LowWaterEpoch())
	for {
		last := d.collectFloor.Load()
		if floor <= last {
			return
		}
		if d.collectFloor.CompareAndSwap(last, floor) {
			break
		}
	}
	// Let a node-retaining observer flush its shard maps first, so the
	// sweep below sees those pins gone rather than carrying dead nodes
	// to the next pass.
	if rel := d.nodeRel.Load(); rel != nil {
		(*rel).ReleaseNodes()
	}
	st := d.dag.Collect(floor, nil)
	d.mu.Lock()
	d.stats.DAGCollections++
	d.stats.DAGCollected += st.Freed
	d.mu.Unlock()
}
