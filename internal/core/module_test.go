package core

import (
	"testing"

	"dacce/internal/machine"
	"dacce/internal/prog"
)

// TestUnloadedModuleEpochStillDecodes is the acceptance gate for the
// dlclose property (ISSUE 7): a context captured while a lazy module
// was loaded must decode exactly — full frames through the module's
// functions — after the module has been unloaded and even after later
// re-encoding passes rebuilt the numbering. Epoch dictionaries are
// append-only, so the capture's epoch survives the unload untouched.
func TestUnloadedModuleEpochStillDecodes(t *testing.T) {
	b := prog.NewBuilder()
	mod := b.Module("plugin.so", true)
	mainF := b.Func("main")
	inA := b.FuncIn("plugA", mod)
	inB := b.FuncIn("plugB", mod)
	gate := b.CallSite(mainF, inA)
	ab := b.CallSite(inA, inB)
	other := b.Func("other")
	after := b.CallSite(mainF, other)
	b.Leaf(other, 1)
	b.Body(inA, func(x prog.Exec) {
		x.Work(1)
		x.Call(ab, prog.NoFunc)
	})
	b.Leaf(inB, 1)

	var d *DACCE
	var inModule []any    // captures taken with plugin frames live
	var afterUnload []any // captures taken after dlclose + re-encoding
	b.Body(mainF, func(x prog.Exec) {
		x.LoadModule(mod)
		for i := 0; i < 6; i++ {
			x.Call(gate, prog.NoFunc)
		}
		x.UnloadModule(mod)
		// Re-encode after the unload so later captures come from a
		// newer epoch than the in-module ones.
		x.Call(after, prog.NoFunc)
		for i := 0; i < 4; i++ {
			x.Call(after, prog.NoFunc)
		}
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	d = New(p, Options{})
	sch := &captureTap{DACCE: d, inB: inB, mainF: mainF, inModule: &inModule, after: &afterUnload}
	m := machine.New(p, sch, machine.Config{SampleEvery: 1})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(inModule) == 0 {
		t.Fatal("no captures taken inside the module window")
	}
	var sawModuleFrame bool
	for i, s := range rs.Samples {
		c, ok := s.Capture.(*Capture)
		if !ok {
			continue
		}
		ctx, err := d.Decode(c)
		if err != nil {
			t.Fatalf("sample %d: decode after unload: %v", i, err)
		}
		want := ShadowContext(nil, s.Shadow)
		if msg := DiffContexts(ctx, want); msg != "" {
			t.Fatalf("sample %d: %s", i, msg)
		}
		for _, f := range ctx {
			if f.Fn == inA || f.Fn == inB {
				sawModuleFrame = true
			}
		}
	}
	if !sawModuleFrame {
		t.Fatal("no decoded context contained a frame of the unloaded module")
	}
}

// captureTap passes the DACCE surface through unchanged; it only sorts
// sampled captures into before/after buckets for the test.
type captureTap struct {
	*DACCE
	inB, mainF prog.FuncID
	inModule   *[]any
	after      *[]any
}

func (ct *captureTap) OnSample(t *machine.Thread, capture any) {
	ct.DACCE.OnSample(t, capture)
	if t.FrameInModule(1) {
		*ct.inModule = append(*ct.inModule, capture)
	} else {
		*ct.after = append(*ct.after, capture)
	}
}
