package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dacce/internal/machine"
	"dacce/internal/prog"
)

// fuzzEncoder builds a small program with several epochs, recursion and
// an indirect site, returning the encoder — the decode target for the
// fuzzers.
func fuzzEncoder(tb testing.TB) (*DACCE, *prog.Program) {
	tb.Helper()
	b := prog.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	g := b.Func("g")
	h := b.Func("h")
	mf := b.CallSite(mainF, f)
	fg := b.CallSite(f, g)
	gf := b.CallSite(g, f) // back edge
	ind := b.IndirectSite(f, g, h)
	var d *DACCE
	b.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 6; i++ {
			x.Call(mf, prog.NoFunc)
			if i == 2 || i == 4 {
				d.ForceReencode(x)
			}
		}
	})
	b.Body(f, func(x prog.Exec) {
		if x.Depth() < 8 {
			x.Call(fg, prog.NoFunc)
		}
		tgt := g
		if x.CallCount()%2 == 0 {
			tgt = h
		}
		x.Call(ind, tgt)
	})
	b.Body(g, func(x prog.Exec) {
		if x.Depth() < 8 {
			x.Call(gf, prog.NoFunc)
		}
	})
	b.Leaf(h, 1)
	p := b.MustBuild()
	d = New(p, Options{Trig: Triggers{NewEdges: 2}, CompressMinPushes: 1})
	m := machine.New(p, d, machine.Config{SampleEvery: 3, DropSamples: true})
	if _, err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	return d, p
}

// captureFromBytes deterministically maps fuzz input onto a capture.
func captureFromBytes(data []byte) *Capture {
	if len(data) < 12 {
		return nil
	}
	rd := bytes.NewReader(data)
	u64 := func() uint64 {
		var v uint64
		binary.Read(rd, binary.LittleEndian, &v)
		return v
	}
	u8 := func() uint8 {
		b, _ := rd.ReadByte()
		return b
	}
	c := &Capture{
		Epoch: uint32(u8()) % 8,
		ID:    u64(),
		Fn:    prog.FuncID(int32(u8()) - 2),
		Root:  prog.FuncID(int32(u8()) - 2),
	}
	n := int(u8()) % 12
	for i := 0; i < n; i++ {
		c.CC = append(c.CC, CCEntry{
			ID:     u64(),
			Site:   prog.SiteID(int32(u8()) - 2),
			Target: prog.FuncID(int32(u8()) - 2),
			Count:  uint32(u8()) % 64,
			Rec:    u8()%2 == 0,
		})
	}
	return c
}

// FuzzDecodeArbitraryCapture feeds arbitrary (mostly corrupt) captures
// to the decoder: it must return errors, never panic or loop.
func FuzzDecodeArbitraryCapture(f *testing.F) {
	d, _ := fuzzEncoder(f)
	f.Add([]byte("seed-capture-material-000000000000000000"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(bytes.Repeat([]byte{0x01, 0x80, 0x00}, 30))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := captureFromBytes(data)
		if c == nil {
			return
		}
		ctx, err := d.Decode(c)
		if err == nil && len(ctx) == 0 {
			t.Error("successful decode returned empty context")
		}
	})
}

// FuzzBundleRead feeds arbitrary bytes to the bundle reader.
func FuzzBundleRead(f *testing.F) {
	d, _ := fuzzEncoder(f)
	var buf bytes.Buffer
	if err := WriteBundle(&buf, d.ExportBundle()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"funcs":[],"sites":[],"entry":0}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBundle(bytes.NewReader(data))
		if err != nil {
			return
		}
		dec, err := NewDecoderFromBundle(b)
		if err != nil {
			return
		}
		// A reconstructed decoder must reject (not crash on) an
		// arbitrary capture.
		_, _ = dec.Decode(&Capture{Epoch: 0, ID: 1, Fn: 0, Root: 0})
	})
}

// TestDecodeRejectsCorruption pins specific corruption classes.
func TestDecodeRejectsCorruption(t *testing.T) {
	d, p := fuzzEncoder(t)
	nf := prog.FuncID(p.NumFuncs())
	ns := prog.SiteID(p.NumSites())
	bad := []*Capture{
		{Epoch: 99, ID: 0, Fn: 0, Root: 0},                                                // unknown epoch
		{Epoch: 0, ID: 0, Fn: nf, Root: 0},                                                // fn out of range
		{Epoch: 0, ID: 0, Fn: 0, Root: -2},                                                // root out of range
		{Epoch: 0, ID: 1 << 60, Fn: 0, Root: 0},                                           // id far out of range
		{Epoch: 0, ID: 0, Fn: 0, Root: 0, CC: []CCEntry{{Site: ns}}},                      // bad site
		{Epoch: 0, ID: 0, Fn: 0, Root: 0, CC: []CCEntry{{Target: -5}}},                    // bad target
		{Epoch: 1, ID: 3, Fn: 3, Root: 0, CC: []CCEntry{{ID: 9999, Count: 3, Rec: true}}}, // nonsense entry
	}
	for i, c := range bad {
		if _, err := d.Decode(c); err == nil {
			t.Errorf("corrupt capture %d decoded without error: %v", i, c)
		}
	}
}
