package core

import (
	"encoding/json"
	"fmt"
	"io"

	"dacce/internal/blenc"
	"dacce/internal/graph"
	"dacce/internal/prog"
)

// Bundle is a self-contained, serializable decode dictionary: everything
// needed to decode captures offline, long after the instrumented process
// exited — the deployment mode the paper's error-reporting use cases
// need (§1). It contains the site table, the discovered call graph and
// one encoding snapshot per epoch (Fig. 6).
type Bundle struct {
	// Funcs maps function ids to names.
	Funcs []BundleFunc `json:"funcs"`
	// Sites lists every call site's caller (and kind, for reporting).
	Sites []BundleSite `json:"sites"`
	// Entry is the program entry function.
	Entry prog.FuncID `json:"entry"`
	// Edges is the discovered call graph, in insertion order.
	Edges []BundleEdge `json:"edges"`
	// Epochs holds one decode dictionary per gTimeStamp.
	Epochs []BundleEpoch `json:"epochs"`
}

// BundleFunc is one function's identity.
type BundleFunc struct {
	ID   prog.FuncID `json:"id"`
	Name string      `json:"name"`
}

// BundleSite is one call site's static description.
type BundleSite struct {
	ID     prog.SiteID `json:"id"`
	Caller prog.FuncID `json:"caller"`
	Kind   uint8       `json:"kind"`
}

// BundleEdge is one discovered call edge.
type BundleEdge struct {
	Site   prog.SiteID `json:"site"`
	Target prog.FuncID `json:"target"`
}

// BundleEpoch is one epoch's encoding snapshot.
type BundleEpoch struct {
	MaxID uint64            `json:"maxId"`
	NumCC map[string]uint64 `json:"numCC"` // key: decimal FuncID
	Codes []BundleCode      `json:"codes"`
}

// BundleCode is one edge's code at one epoch; edges absent from the
// epoch's list did not exist yet.
type BundleCode struct {
	Site    prog.SiteID `json:"site"`
	Target  prog.FuncID `json:"target"`
	Encoded bool        `json:"encoded"`
	Value   uint64      `json:"value,omitempty"`
	Back    bool        `json:"back,omitempty"`
}

// ExportBundle snapshots the encoder's decode state. Call it after (or
// during) a run; the result is independent of the DACCE instance.
func (d *DACCE) ExportBundle() *Bundle {
	// The dictionaries come from the published snapshot (immutable); the
	// mutex still covers the graph-edge iteration, which may race with
	// the handler's registration flushes otherwise. Draining first pulls
	// in edges still sitting in per-thread publication buffers.
	snap := d.cur()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainAllLocked()
	b := &Bundle{Entry: d.p.Entry}
	for _, f := range d.p.Funcs {
		b.Funcs = append(b.Funcs, BundleFunc{ID: f.ID, Name: f.Name})
	}
	for _, s := range d.p.Sites {
		b.Sites = append(b.Sites, BundleSite{ID: s.ID, Caller: s.Caller, Kind: uint8(s.Kind)})
	}
	for _, e := range d.g.Edges {
		b.Edges = append(b.Edges, BundleEdge{Site: e.Site, Target: e.Target})
	}
	for _, asn := range snap.dicts {
		ep := BundleEpoch{MaxID: asn.MaxID, NumCC: make(map[string]uint64, len(asn.NumCC))}
		for fn, n := range asn.NumCC {
			ep.NumCC[fmt.Sprint(fn)] = n
		}
		for key, code := range asn.Codes {
			ep.Codes = append(ep.Codes, BundleCode{
				Site: key.Site, Target: key.Target,
				Encoded: code.Encoded, Value: code.Value, Back: code.Back,
			})
		}
		b.Epochs = append(b.Epochs, ep)
	}
	return b
}

// WriteBundle serializes a bundle as JSON.
func WriteBundle(w io.Writer, b *Bundle) error {
	enc := json.NewEncoder(w)
	return enc.Encode(b)
}

// ReadBundle deserializes a bundle.
func ReadBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: reading bundle: %w", err)
	}
	return &b, nil
}

// NewDecoderFromBundle reconstructs an offline Decoder. The returned
// decoder shares nothing with the process that produced the bundle.
func NewDecoderFromBundle(b *Bundle) (*Decoder, error) {
	// Rebuild a skeletal program: names, sites with callers. Bodies are
	// irrelevant for decoding.
	pb := &prog.Program{Entry: b.Entry, PLT: map[prog.SiteID]prog.FuncID{}}
	for i, f := range b.Funcs {
		if int(f.ID) != i {
			return nil, fmt.Errorf("core: bundle func %d out of order", f.ID)
		}
		pb.Funcs = append(pb.Funcs, &prog.Function{ID: f.ID, Name: f.Name, Body: func(prog.Exec) {}})
	}
	for i, s := range b.Sites {
		if int(s.ID) != i {
			return nil, fmt.Errorf("core: bundle site %d out of order", s.ID)
		}
		if int(s.Caller) < 0 || int(s.Caller) >= len(pb.Funcs) {
			return nil, fmt.Errorf("core: bundle site %d has caller f%d out of range", s.ID, s.Caller)
		}
		pb.Sites = append(pb.Sites, &prog.Site{ID: s.ID, Caller: s.Caller, Kind: prog.Kind(s.Kind)})
	}
	if int(b.Entry) < 0 || int(b.Entry) >= len(pb.Funcs) {
		return nil, fmt.Errorf("core: bundle entry f%d out of range (%d funcs)", b.Entry, len(pb.Funcs))
	}
	g := graph.New(pb)
	for _, e := range b.Edges {
		if int(e.Site) >= len(pb.Sites) || int(e.Target) >= len(pb.Funcs) {
			return nil, fmt.Errorf("core: bundle edge %v out of range", e)
		}
		g.AddEdge(e.Site, e.Target)
	}
	var dicts []*blenc.Assignment
	for _, ep := range b.Epochs {
		asn := &blenc.Assignment{
			MaxID: ep.MaxID,
			NumCC: make(map[prog.FuncID]uint64, len(ep.NumCC)),
			Codes: make(map[graph.EdgeKey]blenc.Code, len(ep.Codes)),
		}
		for k, v := range ep.NumCC {
			var fn prog.FuncID
			if _, err := fmt.Sscan(k, &fn); err != nil {
				return nil, fmt.Errorf("core: bundle numCC key %q: %w", k, err)
			}
			asn.NumCC[fn] = v
		}
		for _, c := range ep.Codes {
			asn.Codes[graph.EdgeKey{Site: c.Site, Target: c.Target}] = blenc.Code{
				Encoded: c.Encoded, Value: c.Value, Back: c.Back,
			}
		}
		dicts = append(dicts, asn)
	}
	return &Decoder{P: pb, G: g, Dicts: dicts}, nil
}
