package core

import (
	"testing"

	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/progtest"
)

// TestRecursionCompression checks that a hot self-recursive edge gets
// the Fig. 5e counter compression after a re-encoding, that deep
// recursion keeps the ccStack shallow, and that the compressed capture
// still decodes to the exact expanded path.
func TestRecursionCompression(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	mf := b.CallSite(mainF, f)
	ff := b.CallSite(f, f)

	var d *DACCE
	const deep = 60
	limit := 2
	var capDeep *Capture
	var shadowDeep []machine.Frame

	b.Body(mainF, func(x prog.Exec) {
		x.Call(mf, prog.NoFunc) // phase 1: discover main→f, f→f shallowly
		d.ForceReencode(x)
		limit = deep
		x.Call(mf, prog.NoFunc) // phase 2: deep recursion under compression
	})
	b.Body(f, func(x prog.Exec) {
		if x.Depth() < limit+1 {
			x.Call(ff, prog.NoFunc)
			return
		}
		th := x.(*machine.Thread)
		if limit == deep && capDeep == nil {
			capDeep = d.CaptureTyped(th)
			shadowDeep = th.ShadowCopy()
		}
	})
	p := b.MustBuild()
	d = New(p, Options{Trig: quietTriggers, CompressMinPushes: 1})
	m := machine.New(p, d, machine.Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	if capDeep == nil {
		t.Fatal("deep capture never taken")
	}
	if len(capDeep.CC) > 3 {
		t.Errorf("compressed ccStack has %d entries for depth-%d recursion, want ≤ 3", len(capDeep.CC), deep)
	}
	var compressed bool
	for _, e := range capDeep.CC {
		if e.Count > 0 {
			compressed = true
		}
	}
	if !compressed {
		t.Error("no ccStack entry carries a repetition count")
	}
	ctx, err := d.Decode(capDeep)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := ShadowContext(nil, shadowDeep)
	if !ctx.Equal(want) {
		t.Errorf("decoded %d frames, want %d; got %v", len(ctx), len(want), ctx)
	}
	if rs.C.MaxCCDepth > 3 {
		t.Errorf("MaxCCDepth = %d, want ≤ 3 with compression", rs.C.MaxCCDepth)
	}
}

// TestRecursionUncompressed checks the pre-adaptation behaviour: without
// compression every recursive call pushes, and decoding still works.
func TestRecursionUncompressed(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	mf := b.CallSite(mainF, f)
	ff := b.CallSite(f, f)

	var d *DACCE
	const deep = 20
	var capDeep *Capture
	var shadowDeep []machine.Frame
	b.Body(mainF, func(x prog.Exec) { x.Call(mf, prog.NoFunc) })
	b.Body(f, func(x prog.Exec) {
		if x.Depth() < deep {
			x.Call(ff, prog.NoFunc)
			return
		}
		th := x.(*machine.Thread)
		capDeep = d.CaptureTyped(th)
		shadowDeep = th.ShadowCopy()
	})
	p := b.MustBuild()
	d = New(p, Options{Trig: quietTriggers})
	m := machine.New(p, d, machine.Config{})
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := len(capDeep.CC); got != deep-1 {
		t.Errorf("uncompressed ccStack has %d entries, want %d", got, deep-1)
	}
	ctx, err := d.Decode(capDeep)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if want := ShadowContext(nil, shadowDeep); !ctx.Equal(want) {
		t.Errorf("decoded %v, want %v", ctx, want)
	}
}

// TestTailCallRestore reproduces the Fig. 7 scenario: after ACDF runs
// (CD is a tail call, so D returns past C), the encoding state in A
// must be restored so the next path ABDF is encoded correctly.
func TestTailCallRestore(t *testing.T) {
	fx, b := progtest.Fig7()
	var d *DACCE
	var caps []*Capture
	var shadows [][]machine.Frame
	capHook := func(x prog.Exec) {
		th := x.(*machine.Thread)
		caps = append(caps, d.CaptureTyped(th))
		shadows = append(shadows, th.ShadowCopy())
	}
	root := []progtest.Call{
		// Discovery: both paths once (first CD execution triggers the
		// mid-flight tail fix-up of A's active frame).
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"), progtest.By(fx.S("DF")))),
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DF")))),
		{Site: fx.S("AB"), Target: prog.NoFunc, Hook: func(x prog.Exec) { d.ForceReencode(x) },
			Sub: []progtest.Call{progtest.By(fx.S("BD"))}},
		// Exercise: ACDF then ABDF with captures in F.
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"),
			progtest.Call{Site: fx.S("DF"), Target: prog.NoFunc, Hook: capHook})),
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"),
			progtest.Call{Site: fx.S("DF"), Target: prog.NoFunc, Hook: capHook})),
	}
	runScriptDeferred(t, fx, b, root, Options{Trig: quietTriggers}, machine.Config{}, &d)

	if len(caps) != 2 {
		t.Fatalf("took %d captures, want 2", len(caps))
	}
	for i, c := range caps {
		ctx, err := d.Decode(c)
		if err != nil {
			t.Fatalf("capture %d: decode: %v", i, err)
		}
		want := ShadowContext(nil, shadows[i])
		if !ctx.Equal(want) {
			t.Errorf("capture %d: decoded %v, want %v", i, ctx, want)
		}
	}
	// The tail-called path must include C (the call path, not the
	// physical stack).
	want0 := ctxOf(fx, "A", "AC", "C", "CD", "D", "DF", "F")
	if ctx0, _ := d.Decode(caps[0]); !ctx0.Equal(want0) {
		t.Errorf("tail path decoded %v, want %v", ctx0, want0)
	}
}

// TestReencodeMidRecursion forces a re-encoding while frames are live
// deep inside a recursion; the translation must rewrite the ccStack and
// the active frames so both earlier and later captures decode.
func TestReencodeMidRecursion(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	g := b.Func("g")
	mf := b.CallSite(mainF, f)
	fg := b.CallSite(f, g)
	gf := b.CallSite(g, f) // cycle f→g→f

	var d *DACCE
	const deep = 30
	type probe struct {
		c      *Capture
		shadow []machine.Frame
	}
	var probes []probe
	take := func(th *machine.Thread) {
		probes = append(probes, probe{d.CaptureTyped(th), th.ShadowCopy()})
	}
	b.Body(mainF, func(x prog.Exec) { x.Call(mf, prog.NoFunc) })
	b.Body(f, func(x prog.Exec) {
		th := x.(*machine.Thread)
		switch {
		case x.Depth() == 20: // f sits at even depths in the f→g→f cycle
			take(th) // pre-re-encode capture at depth 20
			d.ForceReencode(x)
			take(th) // post-re-encode capture, same stack
			x.Call(fg, prog.NoFunc)
		case x.Depth() < deep:
			x.Call(fg, prog.NoFunc)
		default:
			take(th)
		}
	})
	b.Body(g, func(x prog.Exec) { x.Call(gf, prog.NoFunc) })
	p := b.MustBuild()
	d = New(p, Options{Trig: quietTriggers})
	m := machine.New(p, d, machine.Config{})
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}

	if len(probes) < 3 {
		t.Fatalf("took %d probes, want ≥ 3", len(probes))
	}
	if probes[0].c.Epoch == probes[1].c.Epoch {
		t.Error("re-encoding did not advance the epoch")
	}
	for i, pr := range probes {
		ctx, err := d.Decode(pr.c)
		if err != nil {
			t.Fatalf("probe %d (epoch %d): decode: %v", i, pr.c.Epoch, err)
		}
		want := ShadowContext(nil, pr.shadow)
		if !ctx.Equal(want) {
			t.Errorf("probe %d (epoch %d): decoded %v, want %v", i, pr.c.Epoch, ctx, want)
		}
	}
}

// TestMultiThreadSpawnContexts spawns workers and checks that every
// sampled context, including the spawn path, decodes to the combined
// ground truth (paper §5.3).
func TestMultiThreadSpawnContexts(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	launch := b.Func("launch")
	worker := b.Func("worker")
	g := b.Func("g")
	h := b.Func("h")
	ml := b.CallSite(mainF, launch)
	wg := b.CallSite(worker, g)
	wh := b.CallSite(worker, h)
	gh := b.CallSite(g, h)

	b.Body(mainF, func(x prog.Exec) { x.Call(ml, prog.NoFunc) })
	b.Body(launch, func(x prog.Exec) {
		for i := 0; i < 3; i++ {
			x.Spawn(worker)
		}
	})
	b.Body(worker, func(x prog.Exec) {
		for i := 0; i < 50; i++ {
			x.Call(wg, prog.NoFunc)
			x.Call(wh, prog.NoFunc)
		}
	})
	b.Body(g, func(x prog.Exec) { x.Call(gh, prog.NoFunc) })
	b.Leaf(h, 1)
	p := b.MustBuild()

	d := New(p, Options{})
	m := machine.New(p, d, machine.Config{SampleEvery: 3, Seed: 7})
	rs, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rs.Threads != 4 {
		t.Fatalf("ran %d threads, want 4", rs.Threads)
	}
	spawnShadow := map[int][]machine.Frame{}
	for _, th := range m.Threads() {
		spawnShadow[th.ID()] = th.SpawnShadow
	}
	if len(rs.Samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("thread %d sample %d: %v", s.Thread, s.Seq, err)
		}
		want := ShadowContext(spawnShadow[s.Thread], s.Shadow)
		if !ctx.Equal(want) {
			t.Errorf("thread %d sample %d: decoded %v, want %v", s.Thread, s.Seq, ctx, want)
		}
	}
}

// TestPLTAndLazyModule checks lazy PLT binding into a dlopen-style
// module: the edges are encodable only because DACCE is dynamic.
func TestPLTAndLazyModule(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	lib := b.Module("libplugin.so", true)
	pf := b.FuncIn("plugin_entry", lib)
	pg := b.FuncIn("plugin_helper", lib)
	mp := b.PLTSite(mainF, pf)
	pp := b.CallSite(pf, pg)

	var d *DACCE
	var c *Capture
	var shadow []machine.Frame
	b.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 5; i++ {
			x.Call(mp, prog.NoFunc)
		}
		d.ForceReencode(x)
		x.Call(mp, prog.NoFunc)
	})
	b.Body(pf, func(x prog.Exec) { x.Call(pp, prog.NoFunc) })
	b.Body(pg, func(x prog.Exec) {
		th := x.(*machine.Thread)
		c = d.CaptureTyped(th)
		shadow = th.ShadowCopy()
	})
	p := b.MustBuild()
	d = New(p, Options{Trig: quietTriggers})
	m := machine.New(p, d, machine.Config{})
	if m.ModuleLoaded(lib) {
		t.Fatal("lazy module loaded before any call")
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.ModuleLoaded(lib) {
		t.Error("lazy module not marked loaded")
	}
	ctx, err := d.Decode(c)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if want := ShadowContext(nil, shadow); !ctx.Equal(want) {
		t.Errorf("decoded %v, want %v", ctx, want)
	}
	// After the re-encoding the PLT edges are plainly encoded: the
	// final capture's id must be in the normal range.
	if maxID := d.Dict(c.Epoch).MaxID; c.ID > maxID {
		t.Errorf("post-re-encoding PLT path still in marker range (id %d, maxID %d)", c.ID, maxID)
	}
}

// TestIndirectHashTable drives one indirect site through more targets
// than the inline threshold and checks the hash-table dispatch still
// encodes and decodes correctly.
func TestIndirectHashTable(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	targets := make([]prog.FuncID, 12)
	for i := range targets {
		targets[i] = b.Func("t" + string(rune('A'+i)))
	}
	ind := b.IndirectSite(mainF, targets...)

	var d *DACCE
	round := 0
	var caps []*Capture
	var shadows [][]machine.Frame
	b.Body(mainF, func(x prog.Exec) {
		for _, tg := range targets {
			x.Call(ind, tg)
		}
		d.ForceReencode(x)
		round = 1
		for _, tg := range targets {
			x.Call(ind, tg)
		}
	})
	for _, tg := range targets {
		b.Body(tg, func(x prog.Exec) {
			if round == 1 {
				th := x.(*machine.Thread)
				caps = append(caps, d.CaptureTyped(th))
				shadows = append(shadows, th.ShadowCopy())
			}
		})
	}
	p := b.MustBuild()
	d = New(p, Options{Trig: quietTriggers, InlineThreshold: 4})
	m := machine.New(p, d, machine.Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rs.C.HashProbes == 0 {
		t.Error("hash table never probed despite 12 targets > threshold 4")
	}
	if len(caps) != len(targets) {
		t.Fatalf("took %d captures, want %d", len(caps), len(targets))
	}
	for i, c := range caps {
		ctx, err := d.Decode(c)
		if err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		if want := ShadowContext(nil, shadows[i]); !ctx.Equal(want) {
			t.Errorf("capture %d: decoded %v, want %v", i, ctx, want)
		}
	}
}

// TestAdaptiveReencodeTriggers lets the controller fire on its own: a
// program that keeps discovering edges must re-encode at least once,
// and every sample must stay decodable across epochs.
func TestAdaptiveReencodeTriggers(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	var fns []prog.FuncID
	var sites []prog.SiteID
	for i := 0; i < 40; i++ {
		f := b.Func("f" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		fns = append(fns, f)
		sites = append(sites, b.CallSite(mainF, f))
		b.Leaf(f, 1)
	}
	b.Body(mainF, func(x prog.Exec) {
		for round := 0; round < 50; round++ {
			for i, s := range sites {
				if i <= round { // edges appear gradually
					x.Call(s, prog.NoFunc)
				}
			}
		}
	})
	p := b.MustBuild()
	d := New(p, Options{Trig: Triggers{NewEdges: 8}})
	m := machine.New(p, d, machine.Config{SampleEvery: 5})
	rs, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	st := d.Stats()
	if st.GTS == 0 {
		t.Fatal("adaptive controller never re-encoded")
	}
	if st.GTS > 10 {
		t.Errorf("controller re-encoded %d times for 40 edges, suspiciously many", st.GTS)
	}
	for _, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("sample seq %d: %v", s.Seq, err)
		}
		if want := ShadowContext(nil, s.Shadow); !ctx.Equal(want) {
			t.Errorf("sample seq %d: decoded %v, want %v", s.Seq, ctx, want)
		}
	}
	if d.Epoch() != uint32(st.GTS) {
		t.Errorf("epoch %d != gTS %d", d.Epoch(), st.GTS)
	}
}

// TestTailIndirect exercises indirect tail calls (paper §5.2: "to
// handle tail calls via indirect branches ... treated as tail call"):
// the target varies per invocation, no epilogue runs, and the caller of
// the tail-containing function restores the encoding context.
func TestTailIndirect(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	disp := b.Func("dispatch")
	h1 := b.Func("handler1")
	h2 := b.Func("handler2")
	md := b.CallSite(mainF, disp)
	ti := b.TailIndirectSite(disp, h1, h2)

	var d *DACCE
	var caps []*Capture
	var shadows [][]machine.Frame
	b.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 30; i++ {
			x.Call(md, prog.NoFunc)
		}
		d.ForceReencode(x)
		for i := 0; i < 30; i++ {
			x.Call(md, prog.NoFunc)
		}
	})
	b.Body(disp, func(x prog.Exec) {
		tgt := h1
		if x.CallCount()%3 == 0 {
			tgt = h2
		}
		x.TailCall(ti, tgt)
	})
	grab := func(x prog.Exec) {
		th := x.(*machine.Thread)
		caps = append(caps, d.CaptureTyped(th))
		shadows = append(shadows, th.ShadowCopy())
	}
	b.Body(h1, grab)
	b.Body(h2, grab)
	p := b.MustBuild()
	d = New(p, Options{Trig: quietTriggers})
	m := machine.New(p, d, machine.Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.TailCalls != 60 {
		t.Fatalf("tail calls = %d, want 60", rs.C.TailCalls)
	}
	if len(caps) != 60 {
		t.Fatalf("captures = %d, want 60", len(caps))
	}
	for i, c := range caps {
		ctx, err := d.Decode(c)
		if err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		want := ShadowContext(nil, shadows[i])
		if !ctx.Equal(want) {
			t.Fatalf("capture %d: decoded %v, want %v", i, ctx, want)
		}
	}
}
