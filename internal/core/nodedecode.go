// Node-interning decode: the allocation-free streaming twin of the
// slice decode path. Instead of materializing a []ContextFrame per
// query, the reverse walk's frames are interned into a hash-consed
// context DAG (internal/ccdag), so the result is a single canonical
// *ccdag.Node — context equality is pointer comparison, repeated
// contexts cost no memory, and once the DAG holds a context its
// re-decode performs zero heap allocations.

package core

import (
	"fmt"
	"sync"
	"time"

	"dacce/internal/ccdag"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

// nodeScratchPool recycles decode scratch buffers for the external
// DecodeNode entry points (the sampling controller keeps per-thread
// scratch in its tls instead). Pointers in and out, so a warm
// Get/Put cycle allocates nothing.
var nodeScratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

// DAG returns the encoder's context DAG — the intern table every
// DecodeNode result lives in. Nodes stay canonical at least as long as
// their capture's epoch is at or above the encoder's low-water epoch;
// after that a reclamation pass may drop them from the table (the
// pointer stays valid memory, but a later decode of the same context
// interns a fresh node — see reclaim.go).
func (d *DACCE) DAG() *ccdag.DAG { return d.dag }

// DecodeNode decodes a capture into its canonical interned context
// node, spawn prefix included — the same frames Decode returns, but as
// one word: pointer-equal nodes are equal contexts, and materializing
// the node (NodeContext) reproduces the slice decode exactly. Lock-free
// like Decode, and allocation-free once the DAG already holds the
// context.
func (d *DACCE) DecodeNode(c *Capture) (*ccdag.Node, error) {
	start := time.Now()
	snap := d.cur()
	dec := &Decoder{P: d.p, G: d.g, Dicts: snap.dicts, idx: snap.idx}
	scratch := nodeScratchPool.Get().(*decodeScratch)
	n, err := dec.decodeNode(d.dag, c, scratch)
	nodeScratchPool.Put(scratch)
	dur := time.Since(start).Nanoseconds()
	d.decodeHist.Observe(dur)
	if d.sink != nil {
		var depth uint64
		if n != nil {
			depth = uint64(n.Depth())
		}
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvDecodeRequest, Thread: -1,
			Epoch: c.Epoch, Site: prog.NoSite, Fn: c.Fn,
			Err: err != nil, Value: depth, DurNanos: dur,
		})
	}
	return n, err
}

// DecodeSampleNode decodes the capture of a machine sample into its
// interned context node.
func (d *DACCE) DecodeSampleNode(s machine.Sample) (*ccdag.Node, error) {
	c, ok := s.Capture.(*Capture)
	if !ok {
		return nil, fmt.Errorf("core: sample does not hold a DACCE capture")
	}
	return d.DecodeNode(c)
}

// DecodeCaptureNode is DecodeNode over an untyped scheme capture — the
// node-path twin of DecodeCapture, used by the differential harness.
func (d *DACCE) DecodeCaptureNode(capture any) (*ccdag.Node, error) {
	c, ok := capture.(*Capture)
	if !ok {
		return nil, fmt.Errorf("core: capture is %T, not a DACCE capture", capture)
	}
	return d.DecodeNode(c)
}

// DecodeNode decodes a capture through an external Decoder (a
// rehydrated snapshot, say) into dag. Each decoder client owns its DAG;
// nodes from different DAGs are never comparable.
func (dec *Decoder) DecodeNode(dag *ccdag.DAG, c *Capture) (*ccdag.Node, error) {
	scratch := nodeScratchPool.Get().(*decodeScratch)
	n, err := dec.decodeNode(dag, c, scratch)
	nodeScratchPool.Put(scratch)
	return n, err
}

// decodeNode runs the reverse walk of decodeOneRev and interns the
// frames root-first directly off the scratch buffer — no slice is
// materialized, no frame is copied out. The spawn prefix is decoded
// (and interned) first, sequentially on the same scratch: its frames
// are already safe in the DAG before the body walk reuses the buffers,
// which is what keeps the whole path — spawn included — allocation-free
// once the DAG is warm.
func (dec *Decoder) decodeNode(dag *ccdag.DAG, c *Capture, scratch *decodeScratch) (*ccdag.Node, error) {
	var pred *ccdag.Node
	if c.Spawn != nil {
		p, err := dec.decodeNode(dag, c.Spawn, scratch)
		if err != nil {
			return nil, fmt.Errorf("decoding spawn path: %w", err)
		}
		pred = p
	}
	rev, err := dec.decodeOneRev(c, scratch)
	if err != nil {
		return nil, err
	}
	return internRev(dag, pred, rev), nil
}

// internRev interns a deepest-first frame slice on top of pred,
// returning the leaf node. The root frame of a spawned thread's body
// keeps its NoSite site — the node path mirrors the slice path's
// prefix-concatenation frame for frame.
func internRev(dag *ccdag.DAG, pred *ccdag.Node, rev []ContextFrame) *ccdag.Node {
	for i := len(rev) - 1; i >= 0; i-- {
		pred = dag.Intern(pred, rev[i].Site, rev[i].Fn)
	}
	return pred
}

// internContext interns a root-first context and returns the leaf.
func internContext(dag *ccdag.DAG, ctx Context) *ccdag.Node {
	var n *ccdag.Node
	for _, f := range ctx {
		n = dag.Intern(n, f.Site, f.Fn)
	}
	return n
}

// nodeMatches reports whether n is exactly the interned form of the
// root-first ctx — the memo check the sampling path runs before paying
// for an intern walk. Word compares along the pred chain only; no
// hashing, no atomics.
func nodeMatches(n *ccdag.Node, ctx Context) bool {
	if n == nil || n.Depth() != len(ctx) {
		return false
	}
	for i := len(ctx) - 1; i >= 0; i-- {
		if n.Site() != ctx[i].Site || n.Fn() != ctx[i].Fn {
			return false
		}
		n = n.Pred()
	}
	return true
}

// NodeContext materializes an interned node back into a root-first
// Context — the bridge from the one-word DAG representation to every
// slice-consuming API. NodeContext(DecodeNode(c)) == Decode(c) frame
// for frame.
func NodeContext(n *ccdag.Node) Context {
	if n == nil {
		return nil
	}
	out := make(Context, n.Depth())
	for i := n.Depth() - 1; n != nil; i, n = i-1, n.Pred() {
		out[i] = ContextFrame{Site: n.Site(), Fn: n.Fn()}
	}
	return out
}

// AppendNodeContext is NodeContext into a caller-owned buffer
// (overwritten, grown as needed) — the allocation-free materialization
// for hot consumers that reuse one buffer across nodes.
func AppendNodeContext(dst Context, n *ccdag.Node) Context {
	if n == nil {
		return dst[:0]
	}
	d := n.Depth()
	if cap(dst) < d {
		dst = make(Context, d)
	}
	dst = dst[:d]
	for i := d - 1; n != nil; i, n = i-1, n.Pred() {
		dst[i] = ContextFrame{Site: n.Site(), Fn: n.Fn()}
	}
	return dst
}
