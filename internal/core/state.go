package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"dacce/internal/blenc"
	"dacce/internal/graph"
	"dacce/internal/prog"
)

// EncoderState is the complete, serializable encoder state: everything
// DACCE accumulated during a run — the discovered call graph with its
// observed edge frequencies, one decode dictionary per epoch (the
// epoch-keyed archive that keeps ids captured under old gTimeStamps
// decodable, Fig. 6), the tail and recursion-compression sets, and the
// adaptive controller's backoff level. It is the unit of persistence:
// internal/persist turns it into a versioned binary snapshot, Restore
// turns it back into a warm encoder that re-installs with zero handler
// traps, and NewDecoder turns it into a standalone decode service that
// shares nothing with the process that produced it.
//
// All slices are in deterministic order (insertion order for graph
// structure, sorted order for set and map dumps), so marshalling the
// same state twice yields identical bytes and a content hash identifies
// an encoding.
type EncoderState struct {
	// Budget is the context-id budget the state was encoded under.
	Budget uint64
	// Epoch is the current gTimeStamp; always len(Epochs)-1.
	Epoch uint32
	// Backoff is the adaptive controller's trigger-backoff level, so a
	// warm-started encoder keeps re-encoding at steady-state cadence
	// instead of restarting the aggressive warm-up schedule.
	Backoff uint32
	// GTS is the number of re-encoding passes run so far.
	GTS int
	// EdgesDiscovered counts first invocations seen by the handler.
	EdgesDiscovered int

	// Entry is the program entry function.
	Entry prog.FuncID
	// Funcs holds every function's name, indexed by FuncID. Together
	// with Sites it lets NewDecoder rebuild a skeletal program, and
	// Restore verify the snapshot matches the live program.
	Funcs []string
	// Sites holds every call site's static description, indexed by
	// SiteID.
	Sites []StateSite

	// Roots lists the traversal roots (entry first, then thread entry
	// points) in registration order.
	Roots []prog.FuncID
	// Nodes lists the graph's functions in insertion order, preserving
	// the deterministic iteration order future re-encodings depend on.
	Nodes []prog.FuncID
	// Edges lists the discovered call edges in insertion order with
	// their observed frequencies (the hot-first ordering input).
	Edges []StateEdge

	// Tail is the sorted set of functions known to contain tail calls.
	Tail []prog.FuncID
	// Compress is the sorted set of back edges with Fig. 5e repetition
	// compression enabled.
	Compress []graph.EdgeKey

	// Epochs holds one decode dictionary per gTimeStamp, oldest first.
	Epochs []StateEpoch
}

// StateSite is one call site's static description.
type StateSite struct {
	Caller prog.FuncID
	Kind   uint8
}

// StateEdge is one discovered call edge in graph insertion order.
type StateEdge struct {
	Site   prog.SiteID
	Target prog.FuncID
	Freq   int64
}

// StateEpoch is one epoch's decode dictionary.
type StateEpoch struct {
	MaxID             uint64
	Overflowed        bool
	UnrestrictedMaxID uint64
	Excluded          int
	EncodedEdges      int
	// NumCC maps functions to their calling-context counts, sorted by
	// function id.
	NumCC []StateNumCC
	// Codes maps edges (by index into EncoderState.Edges) to their code
	// at this epoch, sorted by edge index. Edges absent from the list
	// did not exist when the epoch's pass ran.
	Codes []StateCode
}

// StateNumCC is one function's calling-context count at one epoch.
type StateNumCC struct {
	Fn    prog.FuncID
	NumCC uint64
}

// StateCode is one edge's code at one epoch.
type StateCode struct {
	// Edge indexes EncoderState.Edges.
	Edge    int
	Encoded bool
	Value   uint64
	Back    bool
}

// ExportState snapshots the full encoder state. Safe to call during or
// after a run; the dictionaries come from the published snapshot, the
// mutex covers the graph iteration.
func (d *DACCE) ExportState() *EncoderState {
	snap := d.cur()
	d.mu.Lock()
	defer d.mu.Unlock()

	// Register edges still sitting in per-thread publication buffers so
	// the exported graph is complete as of the export — mid-run exports
	// (snapshot archiving) rely on the per-buffer mutexes, not a world
	// stop.
	d.drainAllLocked()

	st := &EncoderState{
		Budget:          d.opt.Budget,
		Epoch:           snap.epoch,
		Backoff:         d.backoff.Load(),
		GTS:             d.stats.GTS,
		EdgesDiscovered: int(d.edgesDiscovered.Load()),
		Entry:           d.p.Entry,
	}
	for _, f := range d.p.Funcs {
		st.Funcs = append(st.Funcs, f.Name)
	}
	for _, s := range d.p.Sites {
		st.Sites = append(st.Sites, StateSite{Caller: s.Caller, Kind: uint8(s.Kind)})
	}
	st.Roots = append(st.Roots, d.g.Roots()...)
	for _, n := range d.g.NodeSeq {
		st.Nodes = append(st.Nodes, n.Fn)
	}
	edgeIdx := make(map[graph.EdgeKey]int, len(d.g.Edges))
	for i, e := range d.g.Edges {
		edgeIdx[edgeKeyOf(e)] = i
		// Freq is bumped atomically on the lock-free encoded path, so a
		// mid-run export must read it the same way.
		st.Edges = append(st.Edges, StateEdge{Site: e.Site, Target: e.Target, Freq: atomic.LoadInt64(&e.Freq)})
	}
	for fn := range snap.tail {
		st.Tail = append(st.Tail, fn)
	}
	sort.Slice(st.Tail, func(i, j int) bool { return st.Tail[i] < st.Tail[j] })
	for k := range snap.compress {
		st.Compress = append(st.Compress, k)
	}
	sort.Slice(st.Compress, func(i, j int) bool {
		if st.Compress[i].Site != st.Compress[j].Site {
			return st.Compress[i].Site < st.Compress[j].Site
		}
		return st.Compress[i].Target < st.Compress[j].Target
	})
	for _, asn := range snap.dicts {
		ep := StateEpoch{
			MaxID:             asn.MaxID,
			Overflowed:        asn.Overflowed,
			UnrestrictedMaxID: asn.UnrestrictedMaxID,
			Excluded:          asn.Excluded,
			EncodedEdges:      asn.EncodedEdges,
		}
		for fn, n := range asn.NumCC {
			ep.NumCC = append(ep.NumCC, StateNumCC{Fn: fn, NumCC: n})
		}
		sort.Slice(ep.NumCC, func(i, j int) bool { return ep.NumCC[i].Fn < ep.NumCC[j].Fn })
		for key, code := range asn.Codes {
			idx, ok := edgeIdx[key]
			if !ok {
				// Cannot happen on an append-only graph; skip rather than
				// persist a dangling reference.
				continue
			}
			ep.Codes = append(ep.Codes, StateCode{
				Edge: idx, Encoded: code.Encoded, Value: code.Value, Back: code.Back,
			})
		}
		sort.Slice(ep.Codes, func(i, j int) bool { return ep.Codes[i].Edge < ep.Codes[j].Edge })
		st.Epochs = append(st.Epochs, ep)
	}
	return st
}

// Validate checks the state's internal consistency: every id in range,
// the epoch chain well-formed. Deserialized snapshots go through this
// before any decode structure is built, so corrupt input yields errors,
// never panics.
func (st *EncoderState) Validate() error {
	nf, ns := len(st.Funcs), len(st.Sites)
	if nf == 0 {
		return fmt.Errorf("core: state has no functions")
	}
	if int(st.Entry) < 0 || int(st.Entry) >= nf {
		return fmt.Errorf("core: state entry f%d out of range (%d funcs)", st.Entry, nf)
	}
	for i, s := range st.Sites {
		if int(s.Caller) < 0 || int(s.Caller) >= nf {
			return fmt.Errorf("core: state site %d has caller f%d out of range", i, s.Caller)
		}
	}
	checkFn := func(what string, fn prog.FuncID) error {
		if int(fn) < 0 || int(fn) >= nf {
			return fmt.Errorf("core: state %s f%d out of range", what, fn)
		}
		return nil
	}
	for _, fn := range st.Roots {
		if err := checkFn("root", fn); err != nil {
			return err
		}
	}
	for _, fn := range st.Nodes {
		if err := checkFn("node", fn); err != nil {
			return err
		}
	}
	for i, e := range st.Edges {
		if int(e.Site) < 0 || int(e.Site) >= ns {
			return fmt.Errorf("core: state edge %d site s%d out of range", i, e.Site)
		}
		if err := checkFn("edge target", e.Target); err != nil {
			return err
		}
	}
	for _, fn := range st.Tail {
		if err := checkFn("tail entry", fn); err != nil {
			return err
		}
	}
	for i, k := range st.Compress {
		if int(k.Site) < 0 || int(k.Site) >= ns {
			return fmt.Errorf("core: state compress entry %d site s%d out of range", i, k.Site)
		}
		if err := checkFn("compress target", k.Target); err != nil {
			return err
		}
	}
	if len(st.Epochs) == 0 {
		return fmt.Errorf("core: state has no epochs")
	}
	if int(st.Epoch) != len(st.Epochs)-1 {
		return fmt.Errorf("core: state epoch %d does not match %d dictionaries", st.Epoch, len(st.Epochs))
	}
	for ei, ep := range st.Epochs {
		for _, nc := range ep.NumCC {
			if err := checkFn(fmt.Sprintf("epoch %d numCC key", ei), nc.Fn); err != nil {
				return err
			}
		}
		for _, c := range ep.Codes {
			if c.Edge < 0 || c.Edge >= len(st.Edges) {
				return fmt.Errorf("core: state epoch %d code references edge %d of %d", ei, c.Edge, len(st.Edges))
			}
		}
	}
	return nil
}

// matches verifies the state was exported from a program identical to
// p: same entry, same function names, same site callers and kinds. A
// snapshot from a different (or differently built) program must never
// silently decode against the wrong site table.
func (st *EncoderState) matches(p *prog.Program) error {
	if len(st.Funcs) != p.NumFuncs() {
		return fmt.Errorf("core: state has %d funcs, program has %d", len(st.Funcs), p.NumFuncs())
	}
	if len(st.Sites) != p.NumSites() {
		return fmt.Errorf("core: state has %d sites, program has %d", len(st.Sites), p.NumSites())
	}
	if st.Entry != p.Entry {
		return fmt.Errorf("core: state entry f%d, program entry f%d", st.Entry, p.Entry)
	}
	for i, name := range st.Funcs {
		if got := p.Funcs[i].Name; got != name {
			return fmt.Errorf("core: state func f%d is %q, program has %q", i, name, got)
		}
	}
	for i, s := range st.Sites {
		ps := p.Sites[i]
		if s.Caller != ps.Caller || prog.Kind(s.Kind) != ps.Kind {
			return fmt.Errorf("core: state site s%d (caller f%d kind %d) does not match program (caller f%d kind %s)",
				i, s.Caller, s.Kind, ps.Caller, ps.Kind)
		}
	}
	return nil
}

// assignments converts the per-epoch dictionaries back to blenc form.
func (st *EncoderState) assignments() []*blenc.Assignment {
	dicts := make([]*blenc.Assignment, 0, len(st.Epochs))
	for _, ep := range st.Epochs {
		asn := &blenc.Assignment{
			MaxID:             ep.MaxID,
			Overflowed:        ep.Overflowed,
			UnrestrictedMaxID: ep.UnrestrictedMaxID,
			Excluded:          ep.Excluded,
			EncodedEdges:      ep.EncodedEdges,
			NumCC:             make(map[prog.FuncID]uint64, len(ep.NumCC)),
			Codes:             make(map[graph.EdgeKey]blenc.Code, len(ep.Codes)),
		}
		for _, nc := range ep.NumCC {
			asn.NumCC[nc.Fn] = nc.NumCC
		}
		for _, c := range ep.Codes {
			e := st.Edges[c.Edge]
			asn.Codes[graph.EdgeKey{Site: e.Site, Target: e.Target}] = blenc.Code{
				Encoded: c.Encoded, Value: c.Value, Back: c.Back,
			}
		}
		dicts = append(dicts, asn)
	}
	return dicts
}

// rebuildGraph reconstructs the call graph on program p, preserving
// node and edge insertion order and observed frequencies.
func (st *EncoderState) rebuildGraph(p *prog.Program) *graph.Graph {
	g := graph.New(p)
	for _, fn := range st.Roots {
		g.AddRoot(fn)
	}
	for _, fn := range st.Nodes {
		g.AddNode(fn)
	}
	for _, se := range st.Edges {
		e, _ := g.AddEdge(se.Site, se.Target)
		e.Freq = se.Freq
	}
	// Refresh the back-edge classification so the next adaptive pass
	// sees the same Edge.Back view a continuously running encoder would.
	if g.NumEdges() > 0 {
		g.ClassifyBackEdges()
	}
	return g
}

// Restore builds a warm DACCE encoder for program p from a previously
// exported state: the call graph, every epoch's decode dictionary and
// index, the tail and compression sets, and the controller backoff are
// re-installed exactly as exported. Installing the result on a machine
// re-patches every already-discovered call site, so a restarted process
// replaying the same workload executes zero runtime-handler traps.
//
// The state must have been exported from a program identical to p
// (same functions, sites and entry); Restore fails otherwise.
func Restore(p *prog.Program, opt Options, st *EncoderState) (*DACCE, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if err := st.matches(p); err != nil {
		return nil, err
	}
	if opt.Budget == 0 {
		// Future re-encodings continue under the budget the snapshot's
		// encodings were computed with.
		opt.Budget = st.Budget
	}
	d := New(p, opt)
	g := st.rebuildGraph(p)
	dicts := st.assignments()
	idx := make([]*decodeIndex, 0, len(dicts))
	for _, asn := range dicts {
		// The final graph is a superset of every epoch's edge set; edges
		// discovered after an epoch's pass have no code in its dictionary
		// and are skipped, so each rebuilt index matches the one the live
		// pass built.
		idx = append(idx, newDecodeIndex(g, asn))
	}
	tail := make(map[prog.FuncID]bool, len(st.Tail))
	for _, fn := range st.Tail {
		tail[fn] = true
	}
	compress := make(map[graph.EdgeKey]bool, len(st.Compress))
	for _, k := range st.Compress {
		compress[k] = true
	}

	d.mu.Lock()
	d.g = g
	d.stats.GTS = st.GTS
	d.edgesDiscovered.Store(int64(st.EdgesDiscovered))
	d.edgeCount.Store(int64(g.NumEdges()))
	d.backoff.Store(st.Backoff)
	// The epoch counter jumps from 0 to the snapshot's epoch: size the
	// per-epoch capture refcounts to cover it and raise the DAG
	// generation in lockstep, exactly as commitPlanLocked does for the
	// incremental case — otherwise the first Capture would index past
	// the refcount vector, and post-restore decodes would stamp nodes
	// below any future collection floor.
	d.growRefsLocked(st.Epoch)
	d.snap.Store(&encSnap{
		epoch:    st.Epoch,
		maxID:    dicts[len(dicts)-1].MaxID,
		dicts:    dicts,
		idx:      idx,
		tail:     tail,
		compress: compress,
	})
	d.dag.RaiseGen(uint64(st.Epoch))
	d.mu.Unlock()
	return d, nil
}

// NewDecoder builds a standalone decoder from the state: a skeletal
// program (names, site callers and kinds), the rebuilt call graph and
// one immutable decode index per epoch. The decoder shares nothing with
// the process that exported the state and is safe for concurrent use —
// the decode-as-a-service path of cmd/dacced.
func (st *EncoderState) NewDecoder() (*Decoder, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	p := &prog.Program{Entry: st.Entry, PLT: map[prog.SiteID]prog.FuncID{}}
	for i, name := range st.Funcs {
		p.Funcs = append(p.Funcs, &prog.Function{ID: prog.FuncID(i), Name: name, Body: func(prog.Exec) {}})
	}
	for i, s := range st.Sites {
		p.Sites = append(p.Sites, &prog.Site{ID: prog.SiteID(i), Caller: s.Caller, Kind: prog.Kind(s.Kind)})
	}
	g := st.rebuildGraph(p)
	dicts := st.assignments()
	idx := make([]*decodeIndex, 0, len(dicts))
	for _, asn := range dicts {
		idx = append(idx, newDecodeIndex(g, asn))
	}
	return &Decoder{P: p, G: g, Dicts: dicts, idx: idx}, nil
}

// NumEdgesAtEpoch returns how many edges existed when the given epoch's
// pass ran, or the current edge count for the newest epoch.
func (st *EncoderState) NumEdgesAtEpoch(epoch uint32) int {
	if int(epoch) >= len(st.Epochs) {
		return 0
	}
	return len(st.Epochs[epoch].Codes)
}

// Equal reports whether two states are identical field for field — the
// round-trip check the snapshot codec's tests and fuzz targets rely on.
func (st *EncoderState) Equal(o *EncoderState) bool {
	if st.Budget != o.Budget || st.Epoch != o.Epoch || st.Backoff != o.Backoff ||
		st.GTS != o.GTS || st.EdgesDiscovered != o.EdgesDiscovered || st.Entry != o.Entry ||
		len(st.Funcs) != len(o.Funcs) || len(st.Sites) != len(o.Sites) ||
		len(st.Roots) != len(o.Roots) || len(st.Nodes) != len(o.Nodes) ||
		len(st.Edges) != len(o.Edges) || len(st.Tail) != len(o.Tail) ||
		len(st.Compress) != len(o.Compress) || len(st.Epochs) != len(o.Epochs) {
		return false
	}
	for i := range st.Funcs {
		if st.Funcs[i] != o.Funcs[i] {
			return false
		}
	}
	for i := range st.Sites {
		if st.Sites[i] != o.Sites[i] {
			return false
		}
	}
	for i := range st.Roots {
		if st.Roots[i] != o.Roots[i] {
			return false
		}
	}
	for i := range st.Nodes {
		if st.Nodes[i] != o.Nodes[i] {
			return false
		}
	}
	for i := range st.Edges {
		if st.Edges[i] != o.Edges[i] {
			return false
		}
	}
	for i := range st.Tail {
		if st.Tail[i] != o.Tail[i] {
			return false
		}
	}
	for i := range st.Compress {
		if st.Compress[i] != o.Compress[i] {
			return false
		}
	}
	for i := range st.Epochs {
		a, b := &st.Epochs[i], &o.Epochs[i]
		if a.MaxID != b.MaxID || a.Overflowed != b.Overflowed ||
			a.UnrestrictedMaxID != b.UnrestrictedMaxID || a.Excluded != b.Excluded ||
			a.EncodedEdges != b.EncodedEdges ||
			len(a.NumCC) != len(b.NumCC) || len(a.Codes) != len(b.Codes) {
			return false
		}
		for j := range a.NumCC {
			if a.NumCC[j] != b.NumCC[j] {
				return false
			}
		}
		for j := range a.Codes {
			if a.Codes[j] != b.Codes[j] {
				return false
			}
		}
	}
	return true
}
