package core

import (
	"strings"
	"testing"

	"dacce/internal/prog"
)

func TestContextRendering(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("frob")
	s := b.CallSite(mainF, f)
	p := b.MustBuild()

	ctx := Context{{Site: prog.NoSite, Fn: mainF}, {Site: s, Fn: f}}
	if got := ctx.String(); got != "f0→f1" {
		t.Errorf("String = %q", got)
	}
	if got := ctx.Pretty(p); got != "main → frob" {
		t.Errorf("Pretty = %q", got)
	}
	fns := ctx.Funcs()
	if len(fns) != 2 || fns[0] != mainF || fns[1] != f {
		t.Errorf("Funcs = %v", fns)
	}
}

func TestContextEqual(t *testing.T) {
	a := Context{{Site: prog.NoSite, Fn: 0}, {Site: 1, Fn: 2}}
	b := Context{{Site: prog.NoSite, Fn: 0}, {Site: 1, Fn: 2}}
	c := Context{{Site: prog.NoSite, Fn: 0}, {Site: 2, Fn: 2}}
	if !a.Equal(b) {
		t.Error("equal contexts not equal")
	}
	if a.Equal(c) || a.Equal(a[:1]) {
		t.Error("different contexts reported equal")
	}
}

func TestCCEntryString(t *testing.T) {
	plain := CCEntry{ID: 3, Site: 1, Target: 2}
	if got := plain.String(); got != "<3,s1,f2>" {
		t.Errorf("plain entry = %q", got)
	}
	rec := CCEntry{ID: 3, Site: 1, Target: 2, Count: 7, Rec: true}
	if got := rec.String(); !strings.Contains(got, "#7") {
		t.Errorf("recursive entry = %q, want count shown", got)
	}
}

func TestCaptureOnStack(t *testing.T) {
	c := &Capture{ID: 5}
	if c.OnStack(5) {
		t.Error("id == maxID reported on-stack")
	}
	if !c.OnStack(4) {
		t.Error("id > maxID not reported on-stack")
	}
}

func TestCaptureString(t *testing.T) {
	c := &Capture{Epoch: 2, ID: 9, Fn: 3, CC: []CCEntry{{ID: 1, Site: 0, Target: 3}}}
	s := c.String()
	for _, want := range []string{"ts=2", "id=9", "fn=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("capture string %q missing %q", s, want)
		}
	}
}

func TestDictBounds(t *testing.T) {
	b := prog.NewBuilder()
	b.Func("main")
	p := b.MustBuild()
	d := New(p, Options{})
	if d.Dict(0) == nil {
		t.Error("epoch 0 dictionary missing at construction")
	}
	if d.Dict(99) != nil {
		t.Error("future epoch returned a dictionary")
	}
	if d.Epoch() != 0 {
		t.Errorf("fresh epoch = %d", d.Epoch())
	}
}
