package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"dacce/internal/blenc"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

func edgeKeyOf(e *graph.Edge) graph.EdgeKey {
	return graph.EdgeKey{Site: e.Site, Target: e.Target}
}

// reencode performs one adaptive re-encoding pass (paper §4): stop the
// world, re-run the numbering with edges ordered hottest-first, bump
// gTimeStamp, snapshot the decode dictionary, regenerate every stub and
// translate all live thread state to the new encoding. self is the
// triggering thread (charged the re-encoding cost), or nil when invoked
// from outside any thread.
func (d *DACCE) reencode(self *machine.Thread) { d.reencodeIf(self, false) }

// reencodeSettleRounds bounds the trigger-hysteresis hold-off: how many
// scheduler yields the gate winner spends waiting for a concurrent
// discovery burst to quiet down before stopping the world, so the pass
// absorbs the whole burst instead of running again moments later.
const reencodeSettleRounds = 8

// maybeReencode is the trigger-firing entry point of the sharded path:
// one CAS admits a single organizer, every concurrent firing returns
// immediately (its trigger state persists, and the winner's pass will
// either absorb it or leave the counters for the next check). The
// winner then holds off briefly while new-edge discovery is still
// advancing — cold-start bursts make all threads cross the threshold
// together, and one slightly-later pass over the full burst costs far
// less than a convoy of stop-the-world passes over its slices.
func (d *DACCE) maybeReencode(self *machine.Thread) {
	if d.opt.SerializedDiscovery {
		d.reencode(self)
		return
	}
	if !d.reencodeGate.CompareAndSwap(false, true) {
		return
	}
	defer d.reencodeGate.Store(false)
	// Hold off while the burst is still advancing, but absorb at most
	// one extra threshold's worth of discoveries: a yield hands whole
	// scheduler quanta to the discovering threads, and an unbounded
	// wait would starve the encoding (and the epoch cadence the
	// adaptive controller is supposed to keep) of an entire cold start.
	start := d.newEdges.Load()
	last := start
	for i := 0; i < reencodeSettleRounds; i++ {
		runtime.Gosched()
		cur := d.newEdges.Load()
		if cur == last || cur-start >= d.newEdgeThreshold() {
			break
		}
		last = cur
	}
	d.reencode(self)
}

// ForceReencode triggers a re-encoding pass unconditionally. exec is
// the currently executing thread when called from inside a function
// body, or nil when the machine is idle (before or after a run).
func (d *DACCE) ForceReencode(exec prog.Exec) {
	t, _ := exec.(*machine.Thread)
	d.reencodeIf(t, true)
}

func (d *DACCE) reencodeIf(self *machine.Thread, force bool) {
	// The pause clock starts before the world stops: the time spent
	// waiting for every thread to reach a safepoint is part of the pause
	// the application experiences. Aborted passes (trigger re-check,
	// ablation cap) are not recorded — they are gate noise, not passes.
	start := time.Now()
	if m := d.m.Load(); m != nil {
		m.StopTheWorld(self)
		defer m.ResumeTheWorld(self)
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	// Register everything still sitting in per-thread publication
	// buffers: the pass must see (and encode) every edge discovered
	// before the world stopped, and pendingNew feeds the incremental
	// refresh below.
	d.drainAllLocked()

	// Another thread may have completed a pass while we waited to
	// become the stopper; its counter reset makes the triggers false.
	// The counters are atomic, so the same check that serves as the
	// lock-free pre-check is authoritative here under d.mu.
	if !force && !d.triggersFired() {
		return
	}
	if d.opt.MaxReencodes > 0 && d.stats.GTS >= d.opt.MaxReencodes && !force {
		// Ablation cap reached: keep running on the current encoding.
		d.newEdges.Store(0)
		d.unencCalls.Store(0)
		d.ccOps.Store(0)
		d.hotMiss.Store(0)
		return
	}

	snap := d.cur()
	reason := d.triggerReason(force)
	tid := int32(-1)
	if self != nil {
		tid = int32(self.ID())
	}
	if d.sink != nil {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvReencodeStart, Thread: tid, Reason: reason,
			Epoch: snap.epoch, Site: prog.NoSite, Fn: prog.NoFunc,
			Value: uint64(d.g.NumEdges()),
		})
	}

	// Incremental pass: when only edge discovery fired the trigger and
	// the option is on, renumber just the affected subgraph and pay for
	// the changed region only. Hot-path and ccStack triggers demand the
	// frequency reordering only a full pass provides.
	scale := int64(1) << d.backoff.Load()
	discoveryOnly := d.newEdges.Load() >= d.newEdgeThreshold() &&
		d.unencCalls.Load() < d.opt.Trig.UnencodedCalls*scale &&
		d.ccOps.Load() < d.opt.Trig.CCOps*scale &&
		d.hotMiss.Load() < d.opt.Trig.HotMissSamples*scale

	var asn *blenc.Assignment
	costEdges := d.g.NumEdges()
	if d.opt.Incremental && !force && discoveryOnly && len(snap.dicts) > 1 {
		var changed []graph.EdgeKey
		var full bool
		asn, changed, full = blenc.Refresh(d.g, snap.dicts[len(snap.dicts)-1], d.pendingNew,
			blenc.Options{Budget: d.opt.Budget, NoHotOrder: d.opt.NoHotFirst})
		if !full {
			costEdges = len(changed)
			d.stats.IncrementalPasses++
		}
	} else {
		asn = blenc.Encode(d.g, blenc.Options{Budget: d.opt.Budget, NoHotOrder: d.opt.NoHotFirst})
	}
	if d.sink != nil && asn.Overflowed && !snap.dicts[len(snap.dicts)-1].Overflowed {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvIDOverflow, Thread: tid,
			Epoch: snap.epoch, Site: prog.NoSite, Fn: prog.NoFunc,
			Value: asn.UnrestrictedMaxID, Aux: d.opt.Budget,
		})
	}
	d.pendingNew = d.pendingNew[:0]

	// Adjust the recursion handling: back edges that pushed a lot get
	// the compression of Fig. 5e from now on (copy-on-write — the
	// published set is immutable).
	compress := snap.compress
	for _, e := range d.g.Edges {
		if e.Back && atomic.LoadInt64(&e.Freq) >= d.opt.CompressMinPushes && !compress[edgeKeyOf(e)] {
			if len(compress) == len(snap.compress) { // first addition: copy
				compress = make(map[graph.EdgeKey]bool, len(snap.compress)+1)
				for k, v := range snap.compress {
					compress[k] = v
				}
			}
			compress[edgeKeyOf(e)] = true
		}
	}

	// Publish the new epoch's snapshot before regenerating stubs: the
	// rebuild below reads it (actionFor), and lock-free readers
	// flip to the new epoch in one atomic step. The world is stopped, so
	// no machine thread observes the window between publication and the
	// stub/TLS rewrite; external Decode callers see either epoch fully.
	// The full slice expressions force append to copy, keeping the old
	// snapshot's dicts/idx immutable for readers that still hold it.
	next := &encSnap{
		epoch:    snap.epoch + 1,
		maxID:    asn.MaxID,
		dicts:    append(snap.dicts[:len(snap.dicts):len(snap.dicts)], asn),
		idx:      append(snap.idx[:len(snap.idx):len(snap.idx)], newDecodeIndex(d.g, asn)),
		tail:     snap.tail,
		compress: compress,
	}
	d.snap.Store(next)

	// Regenerate instrumentation and rewrite the state of every live
	// thread — current id, ccStack entries and the cookies of active
	// frames ("the return address of all active functions on the stack
	// should be modified", §4).
	if m := d.m.Load(); m != nil {
		d.rebuildAllLocked()
		for _, t := range m.Threads() {
			d.translateThreadLocked(t)
		}
	}

	cost := int64(machine.CostReencodePerEdge) * int64(costEdges)
	if self != nil {
		self.C.ReencodeCost += cost
	}
	d.stats.GTS++
	d.stats.ReencodeCost += cost
	d.stats.History = append(d.stats.History, EpochRecord{
		Epoch:        next.epoch,
		AtSample:     d.samplesSeen.Load(),
		Nodes:        d.g.NumNodes(),
		Edges:        d.g.NumEdges(),
		EncodedEdges: asn.EncodedEdges,
		MaxID:        asn.MaxID,
		Overflowed:   asn.Overflowed,
		CostCycles:   cost,
	})

	d.newEdges.Store(0)
	d.unencCalls.Store(0)
	d.ccOps.Store(0)
	d.hotMiss.Store(0)
	if b := d.backoff.Load(); b < 4 {
		d.backoff.Store(b + 1)
	}

	pause := time.Since(start).Nanoseconds()
	d.pauseHist.Observe(pause)
	if d.sink != nil {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvReencodeEnd, Thread: tid, Reason: reason,
			Epoch: next.epoch, Site: prog.NoSite, Fn: prog.NoFunc,
			Value: uint64(cost), Aux: asn.MaxID, DurNanos: pause,
		})
	}
}

// triggerReason attributes the pass about to run to one of the paper's
// three triggers (checked in the order new edges → hot paths → ccStack
// traffic, so simultaneous firings report the cheaper-to-detect cause),
// or ReasonForced for explicit passes.
func (d *DACCE) triggerReason(force bool) telemetry.Reason {
	if force {
		return telemetry.ReasonForced
	}
	scale := int64(1) << d.backoff.Load()
	switch {
	case d.newEdges.Load() >= d.newEdgeThreshold():
		return telemetry.ReasonNewEdges
	case d.unencCalls.Load() >= d.opt.Trig.UnencodedCalls*scale,
		d.hotMiss.Load() >= d.opt.Trig.HotMissSamples*scale:
		return telemetry.ReasonHotPath
	case d.ccOps.Load() >= d.opt.Trig.CCOps*scale:
		return telemetry.ReasonCCOps
	}
	return telemetry.ReasonForced
}

// triggersFired checks the adaptive triggers: a handful of atomic loads,
// no lock. The traffic-driven thresholds back off exponentially (capped)
// with every pass already run: early passes are cheap and productive,
// late ones rarely change anything. Callers use it both as the lock-free
// pre-check on the hot paths (Maintain, OnSample, the handler trap) and
// as the authoritative re-check under d.mu inside reencodeIf.
func (d *DACCE) triggersFired() bool {
	scale := int64(1) << d.backoff.Load()
	return d.newEdges.Load() >= d.newEdgeThreshold() ||
		d.unencCalls.Load() >= d.opt.Trig.UnencodedCalls*scale ||
		d.ccOps.Load() >= d.opt.Trig.CCOps*scale ||
		d.hotMiss.Load() >= d.opt.Trig.HotMissSamples*scale
}

// translateThreadLocked replays a thread's shadow stack under the
// current assignment, rebuilding its TLS (id and ccStack) and rewriting
// the epilogue cookie of every active frame. Runs either with the world
// stopped and d.mu held (re-encoding passes, tail fix-ups), or under
// d.mu by a thread translating itself mid-call (the tail-frame
// self-heal): the replay reads only the published snapshot and the
// lock-free graph shards, and writes only the thread's own TLS and
// frames, which nothing else can touch while their owner is
// off-safepoint. The replay applies exactly the semantics the
// regenerated stubs will apply, so subsequent epilogues unwind the new
// state consistently.
func (d *DACCE) translateThreadLocked(t *machine.Thread) {
	st, ok := t.State.(*tls)
	if !ok || st == nil {
		return
	}
	st.id = 0
	st.cc = st.cc[:0]
	markID := d.cur().maxID + 1
	for i := 1; i < t.Depth(); i++ {
		f := t.FrameAt(i)
		act := d.actionFor(edgeRef{f.Site, f.Fn})
		ck := d.applyAction(nil, st, f.Site, f.Fn, act, markID)
		if !f.Tail {
			f.Cook = ck
			f.EpiStub = d.epi
		}
	}
}

// healTailFrame re-translates the calling thread's own active frames
// when a tail call is about to execute under an enclosing frame that
// predates its caller's tail-set membership. Tail discovery publishes
// the tail bit and patches the tail site from the discovering trap, but
// the in-edge save-wraps and the frame rewrites happen in a
// stop-the-world fix-up that other threads can outrun: returns are not
// safepoints, so a thread already past a stale (non-save) in-edge stub
// would push the tail entry and unwind through an epilogue that cannot
// retract it, leaking the entry into its root state for good. Replaying
// the thread's own shadow stack rewrites the nearest non-tail enclosing
// frame to a TcStack save before the push can escape. Steady state pays
// one frame peek per tail call: once the in-edge stubs are rebuilt,
// every new enclosing frame already carries the save cookie.
func (d *DACCE) healTailFrame(t *machine.Thread) {
	if !d.tailFrameStale(t) {
		return
	}
	d.mu.Lock()
	d.translateThreadLocked(t)
	d.stats.TailHeals++
	d.mu.Unlock()
}

// healTailFrameLocked is healTailFrame for callers already holding d.mu
// (the serialized trap path).
func (d *DACCE) healTailFrameLocked(t *machine.Thread) {
	if !d.tailFrameStale(t) {
		return
	}
	d.translateThreadLocked(t)
	d.stats.TailHeals++
}

// tailFrameStale reports whether the thread's nearest non-tail active
// frame lacks the TcStack save cookie a tail call below it relies on
// for cleanup. The root frame (index 0) has no cookie and never
// returns mid-run, so a tail call directly under the root needs no
// save.
func (d *DACCE) tailFrameStale(t *machine.Thread) bool {
	if t == nil {
		return false
	}
	i := t.Depth() - 1
	for i > 0 && t.FrameAt(i).Tail {
		i--
	}
	return i > 0 && t.FrameAt(i).Cook.Tag != tagSave
}

// tailFixup runs when fn is first discovered to contain a tail call
// (paper §5.2): every site calling fn must save and restore the
// encoding context around the call. Already-active invocations get
// their frames rewritten by the same replay used for re-encoding.
func (d *DACCE) tailFixup(self *machine.Thread, fn prog.FuncID) {
	m := d.m.Load() // non-nil: only reachable from an installed trap
	m.StopTheWorld(self)
	defer m.ResumeTheWorld(self)
	d.mu.Lock()
	defer d.mu.Unlock()

	// A pending in-edge of fn would otherwise be invisible to the
	// In-list walk below and miss its save-wrap rebuild.
	d.drainAllLocked()
	if n := d.g.Node(fn); n != nil {
		for _, e := range n.In {
			d.rebuildSite(e.Site)
		}
	}
	for _, t := range m.Threads() {
		d.translateThreadLocked(t)
	}
	d.stats.TailFixups++
	if d.sink != nil {
		tid := int32(-1)
		if self != nil {
			tid = int32(self.ID())
		}
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvTailFixup, Thread: tid,
			Epoch: d.cur().epoch, Site: prog.NoSite, Fn: fn,
		})
	}
}
