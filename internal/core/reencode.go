package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"dacce/internal/blenc"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

func edgeKeyOf(e *graph.Edge) graph.EdgeKey {
	return graph.EdgeKey{Site: e.Site, Target: e.Target}
}

// passMode selects how a re-encoding pass is admitted and how it
// renumbers.
type passMode uint8

const (
	// passAuto: trigger-gated; incremental renumbering when only edge
	// discovery fired (the adaptive regime of paper §4).
	passAuto passMode = iota
	// passForceFull: unconditional full renumbering (ForceReencode).
	passForceFull
	// passForceIncremental: unconditional, incremental renumbering
	// preferred — the experiment suites' entry point for driving
	// bounded-pause passes without racing the adaptive thresholds.
	passForceIncremental
)

// trigSnap is one coherent reading of the adaptive-trigger counters and
// their backoff-scaled thresholds. The counters are independent atomics
// bumped by concurrently running threads; reading them once and passing
// the snapshot around keeps the admission check, the discovery-only
// classification and the reported trigger reason of a single pass
// consistent with each other, where separate re-loads mid-burst could
// disagree (e.g. admit on new-edges, then attribute to hot-path because
// unencoded calls crossed their threshold a microsecond later).
type trigSnap struct {
	newEdges, unencCalls, ccOps, hotMiss int64
	newEdgeTh, unencTh, ccTh, hotTh      int64
}

// trigSnapshot reads the trigger counters and thresholds once: a
// handful of atomic loads, no lock.
func (d *DACCE) trigSnapshot() trigSnap {
	scale := int64(1) << d.backoff.Load()
	return trigSnap{
		newEdges:   d.newEdges.Load(),
		unencCalls: d.unencCalls.Load(),
		ccOps:      d.ccOps.Load(),
		hotMiss:    d.hotMiss.Load(),
		newEdgeTh:  d.newEdgeThreshold(),
		unencTh:    d.opt.Trig.UnencodedCalls * scale,
		ccTh:       d.opt.Trig.CCOps * scale,
		hotTh:      d.opt.Trig.HotMissSamples * scale,
	}
}

// fired reports whether any adaptive trigger crossed its threshold.
func (ts trigSnap) fired() bool {
	return ts.newEdges >= ts.newEdgeTh ||
		ts.unencCalls >= ts.unencTh ||
		ts.ccOps >= ts.ccTh ||
		ts.hotMiss >= ts.hotTh
}

// discoveryOnly reports that edge discovery alone fired: the regime
// where incremental renumbering applies. Hot-path and ccStack triggers
// demand the frequency reordering only a full pass provides.
func (ts trigSnap) discoveryOnly() bool {
	return ts.newEdges >= ts.newEdgeTh &&
		ts.unencCalls < ts.unencTh &&
		ts.ccOps < ts.ccTh &&
		ts.hotMiss < ts.hotTh
}

// reason attributes a pass to one of the paper's three triggers
// (checked in the order new edges → hot paths → ccStack traffic, so
// simultaneous firings report the cheaper-to-detect cause), or
// ReasonForced for explicit passes.
func (ts trigSnap) reason(force bool) telemetry.Reason {
	if force {
		return telemetry.ReasonForced
	}
	switch {
	case ts.newEdges >= ts.newEdgeTh:
		return telemetry.ReasonNewEdges
	case ts.unencCalls >= ts.unencTh, ts.hotMiss >= ts.hotTh:
		return telemetry.ReasonHotPath
	case ts.ccOps >= ts.ccTh:
		return telemetry.ReasonCCOps
	}
	return telemetry.ReasonForced
}

// triggersFired checks the adaptive triggers: a handful of atomic loads,
// no lock. The traffic-driven thresholds back off exponentially (capped)
// with every pass already run: early passes are cheap and productive,
// late ones rarely change anything. Callers use it both as the lock-free
// pre-check on the hot paths (Maintain, OnSample, the handler trap) and
// as the authoritative re-check under d.mu inside the pass entry points.
func (d *DACCE) triggersFired() bool { return d.trigSnapshot().fired() }

// passPlan is everything one re-encoding pass decided, computed by
// preparePlanLocked and applied by commitPlanLocked. On the organizer's
// concurrent path the plan is prepared with the world still running and
// committed inside a short stop-the-world window; on the classic path
// (SerializedDiscovery, ForceReencode) both halves run inside the
// pause.
type passPlan struct {
	// prevEpoch/prevMaxID identify the snapshot the plan was computed
	// against; a commit against any other epoch must re-prepare.
	prevEpoch uint32
	prevMaxID uint64
	reason    telemetry.Reason
	mode      passMode

	// added is the pendingNew batch the plan consumed; restored to
	// pendingNew if the plan is discarded so a later incremental pass
	// still sees the additions.
	added []*graph.Edge

	asn *blenc.Assignment
	idx *decodeIndex
	// compress is the next epoch's recursion-compression set;
	// compressAdds lists the keys this pass added to it.
	compress     map[graph.EdgeKey]bool
	compressAdds []graph.EdgeKey

	// incremental: the renumbering was served by blenc.Refresh without
	// fallback, so changed/affected bound the delta rebuilds below.
	// Otherwise every site is rebuilt and every thread translated.
	incremental bool
	changed     []graph.EdgeKey
	affected    map[prog.FuncID]bool
	// dirtyEdges is changed ∪ compressAdds: the edges whose actionFor
	// result can differ from the previous epoch. dirtySites are their
	// call sites — the delta stub-rebuild set.
	dirtyEdges map[graph.EdgeKey]bool
	dirtySites map[prog.SiteID]bool

	// Per-phase attribution (renumber and index fill during prepare;
	// stub and translate during commit).
	renumberedEdges int
	indexEntries    int
	renumberNanos   int64
	indexNanos      int64
}

// preparePlanLocked computes one pass's assignment, decode index,
// compression additions and delta rebuild sets. Caller holds d.mu with
// publication buffers drained; the world may still be running (the
// concurrent-prepare path), so everything here reads the registered
// graph under d.mu and touches no stub or thread state.
func (d *DACCE) preparePlanLocked(mode passMode, trig trigSnap) *passPlan {
	snap := d.cur()
	plan := &passPlan{
		prevEpoch: snap.epoch,
		prevMaxID: snap.maxID,
		reason:    trig.reason(mode != passAuto),
		mode:      mode,
		added:     d.pendingNew,
	}
	d.pendingNew = nil

	t0 := time.Now()
	prev := snap.dicts[len(snap.dicts)-1]
	wantIncremental := d.opt.Incremental && len(snap.dicts) > 1 &&
		(mode == passForceIncremental || (mode == passAuto && trig.discoveryOnly()))
	if wantIncremental {
		asn, changed, affected, full := blenc.Refresh(d.g, prev, plan.added,
			blenc.Options{Budget: d.opt.Budget, NoHotOrder: d.opt.NoHotFirst})
		plan.asn = asn
		if !full {
			plan.incremental = true
			plan.changed = changed
			plan.affected = affected
		}
	} else {
		plan.asn = blenc.Encode(d.g, blenc.Options{Budget: d.opt.Budget, NoHotOrder: d.opt.NoHotFirst})
	}
	if plan.incremental {
		plan.renumberedEdges = len(plan.changed)
	} else {
		plan.renumberedEdges = d.g.NumEdges()
	}
	plan.renumberNanos = time.Since(t0).Nanoseconds()

	t1 := time.Now()
	if plan.incremental {
		plan.idx, plan.indexEntries = deltaDecodeIndex(d.g, snap.idx[len(snap.idx)-1],
			plan.asn, plan.changed, plan.affected)
	} else {
		plan.idx = newDecodeIndex(d.g, plan.asn)
		plan.indexEntries = plan.asn.EncodedEdges
	}
	plan.indexNanos = time.Since(t1).Nanoseconds()

	// Adjust the recursion handling: back edges that pushed a lot get
	// the compression of Fig. 5e from now on (copy-on-write — the
	// published set is immutable, and compression flips a site's action,
	// so additions join the dirty-edge set).
	plan.compress = snap.compress
	for _, e := range d.g.Edges {
		if e.Back && atomic.LoadInt64(&e.Freq) >= d.opt.CompressMinPushes && !plan.compress[edgeKeyOf(e)] {
			if len(plan.compress) == len(snap.compress) { // first addition: copy
				compress := make(map[graph.EdgeKey]bool, len(snap.compress)+1)
				for k, v := range snap.compress {
					compress[k] = v
				}
				plan.compress = compress
			}
			plan.compress[edgeKeyOf(e)] = true
			plan.compressAdds = append(plan.compressAdds, edgeKeyOf(e))
		}
	}

	if plan.incremental {
		plan.dirtyEdges = make(map[graph.EdgeKey]bool, len(plan.changed)+len(plan.compressAdds))
		for _, k := range plan.changed {
			plan.dirtyEdges[k] = true
		}
		for _, k := range plan.compressAdds {
			plan.dirtyEdges[k] = true
		}
		plan.dirtySites = make(map[prog.SiteID]bool, len(plan.dirtyEdges))
		for k := range plan.dirtyEdges {
			plan.dirtySites[k.Site] = true
		}
	}
	return plan
}

// discardPlanLocked returns a prepared-but-unusable plan's consumed
// additions to pendingNew so a later incremental pass still sees them.
func (d *DACCE) discardPlanLocked(plan *passPlan) {
	if len(plan.added) > 0 {
		d.pendingNew = append(plan.added, d.pendingNew...)
	}
}

// extendPlanLocked folds straggler edges — discovered between the
// prepare and the world actually stopping, drained inside the pause —
// into a prepared plan with a delta Refresh on top of the prepared
// assignment. Falls back to re-preparing fully (still inside the pause)
// when the straggler refresh cannot stay incremental. Caller holds d.mu
// with the world stopped.
func (d *DACCE) extendPlanLocked(plan *passPlan, trig trigSnap) *passPlan {
	stragglers := d.pendingNew
	d.pendingNew = nil
	plan.added = append(plan.added, stragglers...)

	t0 := time.Now()
	asn, changed, affected, full := blenc.Refresh(d.g, plan.asn, stragglers,
		blenc.Options{Budget: d.opt.Budget, NoHotOrder: d.opt.NoHotFirst})
	if full || !plan.incremental {
		// Either the straggler refresh lost the incremental structure or
		// the plan was a full one anyway: redo the whole preparation
		// in-pause against the (unchanged) epoch.
		d.discardPlanLocked(plan)
		return d.preparePlanLocked(plan.mode, trig)
	}
	plan.asn = asn
	t1 := time.Now()
	var entries int
	plan.idx, entries = deltaDecodeIndex(d.g, plan.idx, asn, changed, affected)
	plan.indexEntries += entries
	plan.indexNanos += time.Since(t1).Nanoseconds()
	plan.renumberedEdges += len(changed)
	plan.renumberNanos += time.Since(t0).Nanoseconds() - time.Since(t1).Nanoseconds()
	plan.changed = append(plan.changed, changed...)
	for fn := range affected {
		plan.affected[fn] = true
	}
	for _, k := range changed {
		plan.dirtyEdges[k] = true
		plan.dirtySites[k.Site] = true
	}
	return plan
}

// threadDirty reports whether a live thread's state references anything
// this pass changed, and therefore must be re-translated. A thread can
// keep its TLS and frame cookies across an epoch flip iff (a) none of
// its active frames' edges had their action changed, and (b) no marker
// id is embedded anywhere in its state, or the marker base (maxID)
// did not move. Marker values — ids in (maxID, 2*maxID+1] standing for
// saved context — live in the running id, in ccStack entry ids and in
// TcStack save cookies; all three are scanned.
func (plan *passPlan) threadDirty(t *machine.Thread) bool {
	st, ok := t.State.(*tls)
	if !ok || st == nil {
		return false // translation would be a no-op anyway
	}
	markersMoved := plan.asn.MaxID != plan.prevMaxID
	if markersMoved {
		if st.id > plan.prevMaxID {
			return true
		}
		for i := range st.cc {
			if st.cc[i].ID > plan.prevMaxID {
				return true
			}
		}
	}
	for i := 1; i < t.Depth(); i++ {
		f := t.FrameAt(i)
		if plan.dirtyEdges[graph.EdgeKey{Site: f.Site, Target: f.Fn}] {
			return true
		}
		if markersMoved && !f.Tail && f.Cook.Tag == tagSave && f.Cook.A > plan.prevMaxID {
			return true
		}
	}
	return false
}

// commitPlanLocked publishes a prepared plan as the next epoch and
// repairs the mutable world around it: stub rebuild (all sites, or just
// the dirty ones), thread translation (all threads, or just the dirty
// ones), cost/stats accounting, trigger reset and telemetry. Caller
// holds d.mu with the world stopped, and must have verified
// d.cur().epoch == plan.prevEpoch. start is the pass's wall start
// (prepare begin), pauseStart the instant the world-stop began.
func (d *DACCE) commitPlanLocked(self *machine.Thread, plan *passPlan, start, pauseStart time.Time) {
	snap := d.cur()
	tid := int32(-1)
	if self != nil {
		tid = int32(self.ID())
	}
	if d.sink != nil && plan.asn.Overflowed && !snap.dicts[len(snap.dicts)-1].Overflowed {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvIDOverflow, Thread: tid,
			Epoch: snap.epoch, Site: prog.NoSite, Fn: prog.NoFunc,
			Value: plan.asn.UnrestrictedMaxID, Aux: d.opt.Budget,
		})
	}

	// Publish the new epoch's snapshot before regenerating stubs: the
	// rebuild below reads it (actionFor), and lock-free readers flip to
	// the new epoch in one atomic step. The world is stopped, so no
	// machine thread observes the window between publication and the
	// stub/TLS rewrite; external Decode callers see either epoch fully.
	// The full slice expressions force append to copy, keeping the old
	// snapshot's dicts/idx immutable for readers that still hold it.
	// tail comes from the commit-time snapshot: a tail fix-up may have
	// published additions after the plan was prepared.
	next := &encSnap{
		epoch:    snap.epoch + 1,
		maxID:    plan.asn.MaxID,
		dicts:    append(snap.dicts[:len(snap.dicts):len(snap.dicts)], plan.asn),
		idx:      append(snap.idx[:len(snap.idx):len(snap.idx)], plan.idx),
		tail:     snap.tail,
		compress: plan.compress,
	}
	// The new epoch's capture refcounter must exist before any reader can
	// see the epoch, and the DAG's generation advances in lockstep with
	// the epoch counter so gen == epoch holds for the reclamation floor
	// arithmetic (reclaim.go).
	d.growRefsLocked(next.epoch)
	d.snap.Store(next)
	d.dag.AdvanceGen()

	// Regenerate instrumentation and rewrite live thread state — current
	// id, ccStack entries and the cookies of active frames ("the return
	// address of all active functions on the stack should be modified",
	// §4). An incremental plan bounds both to the changed region: only
	// sites whose action changed are rebuilt (stubs read markID from the
	// live snapshot, so an unchanged site's stub stays valid across the
	// epoch flip), and only threads referencing changed edges or stale
	// markers are replayed.
	var sitesRebuilt, threadsTranslated, threadsSkipped, framesReplayed int
	var stubNanos, translateNanos int64
	if m := d.m.Load(); m != nil {
		t0 := time.Now()
		if plan.incremental {
			for sid := range plan.dirtySites {
				d.rebuildSite(sid)
				sitesRebuilt++
			}
		} else {
			sitesRebuilt = d.rebuildAllLocked()
		}
		stubNanos = time.Since(t0).Nanoseconds()

		t1 := time.Now()
		for _, t := range m.Threads() {
			if plan.incremental && !plan.threadDirty(t) {
				threadsSkipped++
				continue
			}
			if depth := t.Depth(); depth > 1 {
				framesReplayed += depth - 1
			}
			d.translateThreadLocked(t)
			threadsTranslated++
		}
		translateNanos = time.Since(t1).Nanoseconds()
	}

	renumberCost := int64(machine.CostReencodePerEdge) * int64(plan.renumberedEdges)
	indexCost := int64(machine.CostIndexPerEdge) * int64(plan.indexEntries)
	stubCost := int64(machine.CostStubRebuild) * int64(sitesRebuilt)
	translateCost := int64(machine.CostTranslatePerFrame) * int64(framesReplayed)
	cost := renumberCost + indexCost + stubCost + translateCost
	if self != nil {
		self.C.ReencodeCost += cost
	}
	concurrent := !pauseStart.Equal(start)
	if plan.incremental {
		d.stats.IncrementalPasses++
	}
	d.stats.GTS++
	d.stats.ReencodeCost += cost
	d.stats.History = append(d.stats.History, EpochRecord{
		Epoch:             next.epoch,
		AtSample:          d.samplesSeen.Load(),
		Nodes:             d.g.NumNodes(),
		Edges:             d.g.NumEdges(),
		EncodedEdges:      plan.asn.EncodedEdges,
		MaxID:             plan.asn.MaxID,
		Overflowed:        plan.asn.Overflowed,
		CostCycles:        cost,
		Incremental:       plan.incremental,
		Concurrent:        concurrent,
		ChangedEdges:      len(plan.changed),
		IndexEntries:      plan.indexEntries,
		SitesRebuilt:      sitesRebuilt,
		ThreadsTranslated: threadsTranslated,
		ThreadsSkipped:    threadsSkipped,
		FramesReplayed:    framesReplayed,
		RenumberCost:      renumberCost,
		IndexCost:         indexCost,
		StubCost:          stubCost,
		TranslateCost:     translateCost,
		RenumberNanos:     plan.renumberNanos,
		IndexNanos:        plan.indexNanos,
		StubNanos:         stubNanos,
		TranslateNanos:    translateNanos,
		PrepareNanos:      prepNanosOf(start, pauseStart),
	})
	d.lastPlan = plan

	d.newEdges.Store(0)
	d.unencCalls.Store(0)
	d.ccOps.Store(0)
	d.hotMiss.Store(0)
	if b := d.backoff.Load(); b < 4 {
		d.backoff.Store(b + 1)
	}

	pause := time.Since(pauseStart).Nanoseconds()
	d.stats.History[len(d.stats.History)-1].PauseNanos = pause
	d.pauseHist.Observe(pause)
	if concurrent {
		d.prepHist.Observe(prepNanosOf(start, pauseStart))
	}
	if d.sink != nil {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvReencodeEnd, Thread: tid, Reason: plan.reason,
			Epoch: next.epoch, Site: prog.NoSite, Fn: prog.NoFunc,
			Value: uint64(cost), Aux: plan.asn.MaxID, DurNanos: pause,
		})
	}
}

// prepNanosOf is the off-pause prepare duration of a concurrent pass;
// zero for classic all-in-pause passes (pauseStart == start).
func prepNanosOf(start, pauseStart time.Time) int64 {
	if pauseStart.Equal(start) {
		return 0
	}
	return pauseStart.Sub(start).Nanoseconds()
}

// reencode performs one adaptive re-encoding pass (paper §4) on the
// classic serialized path: stop the world, then compute the new
// numbering, snapshot the decode dictionary, regenerate stubs and
// translate live threads — all inside the pause. Kept as the
// SerializedDiscovery baseline and the ForceReencode fallback; the
// organizer path (maybeReencode) prepares concurrently instead. self is
// the triggering thread (charged the re-encoding cost), or nil when
// invoked from outside any thread.
func (d *DACCE) reencode(self *machine.Thread) { d.reencodeIf(self, passAuto) }

// reencodeSettleRounds bounds the trigger-hysteresis hold-off: how many
// scheduler yields the gate winner spends waiting for a concurrent
// discovery burst to quiet down before stopping the world, so the pass
// absorbs the whole burst instead of running again moments later.
const reencodeSettleRounds = 8

// maybeReencode is the trigger-firing entry point of the sharded path:
// one CAS admits a single organizer, every concurrent firing returns
// immediately (its trigger state persists, and the winner's pass will
// either absorb it or leave the counters for the next check). The
// winner then holds off briefly while new-edge discovery is still
// advancing — cold-start bursts make all threads cross the threshold
// together, and one slightly-later pass over the full burst costs far
// less than a convoy of stop-the-world passes over its slices — and
// runs the pass with concurrent prepare: the assignment and the decode
// index are computed with the world still running, and only the
// straggler drain, the publication and the delta stub/thread repair
// pay a stop-the-world pause.
func (d *DACCE) maybeReencode(self *machine.Thread) {
	if d.opt.SerializedDiscovery {
		d.reencode(self)
		d.maybeCollect()
		return
	}
	if !d.reencodeGate.CompareAndSwap(false, true) {
		return
	}
	defer d.reencodeGate.Store(false)
	defer d.maybeCollect()
	// Hold off while the burst is still advancing, but absorb at most
	// one extra threshold's worth of discoveries: a yield hands whole
	// scheduler quanta to the discovering threads, and an unbounded
	// wait would starve the encoding (and the epoch cadence the
	// adaptive controller is supposed to keep) of an entire cold start.
	start := d.newEdges.Load()
	last := start
	for i := 0; i < reencodeSettleRounds; i++ {
		runtime.Gosched()
		cur := d.newEdges.Load()
		if cur == last || cur-start >= d.newEdgeThreshold() {
			break
		}
		last = cur
	}
	d.reencodeConcurrent(self, passAuto)
}

// ForceReencode triggers a re-encoding pass unconditionally. exec is
// the currently executing thread when called from inside a function
// body, or nil when the machine is idle (before or after a run).
func (d *DACCE) ForceReencode(exec prog.Exec) {
	t, _ := exec.(*machine.Thread)
	d.reencodeIf(t, passForceFull)
	d.maybeCollect()
}

// ReencodeNow runs one re-encoding pass immediately, regardless of
// trigger state, on the organizer's concurrent-prepare path. With
// incremental set (and Options.Incremental on) the pass renumbers only
// the subgraph affected by edges added since the last pass; otherwise
// it renumbers fully, still preparing off-pause. Bypasses the
// reencode gate like ForceReencode does — the experiment suites that
// drive it are single-threaded organizers by construction. exec is the
// currently executing thread, or nil when the machine is idle.
func (d *DACCE) ReencodeNow(exec prog.Exec, incremental bool) {
	t, _ := exec.(*machine.Thread)
	mode := passForceFull
	if incremental {
		mode = passForceIncremental
	}
	d.reencodeConcurrent(t, mode)
	d.maybeCollect()
}

// reencodeConcurrent is the bounded-pause pass: admission check and
// plan preparation run under d.mu with the world still running, then a
// short stop-the-world window drains stragglers, patches them into the
// plan with a delta Refresh, publishes the epoch and repairs only the
// changed region. d.mu is never held across StopTheWorld — a thread
// blocked on d.mu inside the handler's batch flush is not at a
// safepoint, and the stop would wait for it forever.
func (d *DACCE) reencodeConcurrent(self *machine.Thread, mode passMode) {
	start := time.Now()
	d.mu.Lock()
	d.drainAllLocked()
	trig := d.trigSnapshot()
	if mode == passAuto {
		// Another thread may have completed a pass while we raced to the
		// gate; its counter reset makes the triggers false.
		if !trig.fired() {
			d.mu.Unlock()
			return
		}
		if d.opt.MaxReencodes > 0 && d.stats.GTS >= d.opt.MaxReencodes {
			// Ablation cap reached: keep running on the current encoding.
			d.newEdges.Store(0)
			d.unencCalls.Store(0)
			d.ccOps.Store(0)
			d.hotMiss.Store(0)
			d.mu.Unlock()
			return
		}
	}
	tid := int32(-1)
	if self != nil {
		tid = int32(self.ID())
	}
	if d.sink != nil {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvReencodeStart, Thread: tid, Reason: trig.reason(mode != passAuto),
			Epoch: d.cur().epoch, Site: prog.NoSite, Fn: prog.NoFunc,
			Value: uint64(d.g.NumEdges()),
		})
	}
	plan := d.preparePlanLocked(mode, trig)
	d.mu.Unlock()

	if d.sink != nil {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvReencodePrepared, Thread: tid, Reason: plan.reason,
			Epoch: plan.prevEpoch, Site: prog.NoSite, Fn: prog.NoFunc,
			Value: uint64(len(plan.changed)), Aux: uint64(plan.renumberedEdges),
			DurNanos: time.Since(start).Nanoseconds(),
		})
	}

	// The pause clock starts before the world stops: the time spent
	// waiting for every thread to reach a safepoint is part of the pause
	// the application experiences.
	pauseStart := time.Now()
	if m := d.m.Load(); m != nil {
		m.StopTheWorld(self)
		defer m.ResumeTheWorld(self)
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	if d.cur().epoch != plan.prevEpoch {
		// A forced pass (which bypasses the gate) published an epoch
		// between our prepare and the stop. The plan is stale; its
		// consumed additions go back to pendingNew, and — for an auto
		// pass — the intervening pass reset the counters, so re-check
		// before paying for a re-preparation inside the pause.
		d.discardPlanLocked(plan)
		d.drainAllLocked()
		trig = d.trigSnapshot()
		if mode == passAuto && !trig.fired() {
			return
		}
		plan = d.preparePlanLocked(mode, trig)
	} else {
		// Stragglers: edges discovered while the plan was being prepared
		// or while threads drained to their safepoints. The pass must
		// see (and encode) every edge discovered before the world
		// stopped.
		d.drainAllLocked()
		if len(d.pendingNew) > 0 {
			plan = d.extendPlanLocked(plan, trig)
		}
	}
	d.commitPlanLocked(self, plan, start, pauseStart)
}

// reencodeIf is the classic all-in-pause pass: stop the world first,
// then prepare and commit inside the pause. SerializedDiscovery routes
// every adaptive pass through it (the pre-sharding baseline the warmup
// suite measures against), and ForceReencode uses it so an external
// caller observes the pass fully completed on return even when racing
// the organizer.
func (d *DACCE) reencodeIf(self *machine.Thread, mode passMode) {
	// The pause clock starts before the world stops (see above).
	// Aborted passes (trigger re-check, ablation cap) are not recorded —
	// they are gate noise, not passes.
	start := time.Now()
	if m := d.m.Load(); m != nil {
		m.StopTheWorld(self)
		defer m.ResumeTheWorld(self)
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	// Register everything still sitting in per-thread publication
	// buffers: the pass must see (and encode) every edge discovered
	// before the world stopped, and pendingNew feeds the incremental
	// refresh.
	d.drainAllLocked()

	trig := d.trigSnapshot()
	if mode == passAuto {
		// Another thread may have completed a pass while we waited to
		// become the stopper; its counter reset makes the triggers
		// false. The counters are atomic, so the same check that serves
		// as the lock-free pre-check is authoritative here under d.mu.
		if !trig.fired() {
			return
		}
		if d.opt.MaxReencodes > 0 && d.stats.GTS >= d.opt.MaxReencodes {
			// Ablation cap reached: keep running on the current encoding.
			d.newEdges.Store(0)
			d.unencCalls.Store(0)
			d.ccOps.Store(0)
			d.hotMiss.Store(0)
			return
		}
	}

	if d.sink != nil {
		tid := int32(-1)
		if self != nil {
			tid = int32(self.ID())
		}
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvReencodeStart, Thread: tid, Reason: trig.reason(mode != passAuto),
			Epoch: d.cur().epoch, Site: prog.NoSite, Fn: prog.NoFunc,
			Value: uint64(d.g.NumEdges()),
		})
	}
	plan := d.preparePlanLocked(mode, trig)
	d.commitPlanLocked(self, plan, start, start)
}

// translateThreadLocked replays a thread's shadow stack under the
// current assignment, rebuilding its TLS (id and ccStack) and rewriting
// the epilogue cookie of every active frame. Runs either with the world
// stopped and d.mu held (re-encoding passes, tail fix-ups), or under
// d.mu by a thread translating itself mid-call (the tail-frame
// self-heal): the replay reads only the published snapshot and the
// lock-free graph shards, and writes only the thread's own TLS and
// frames, which nothing else can touch while their owner is
// off-safepoint. The replay applies exactly the semantics the
// regenerated stubs will apply, so subsequent epilogues unwind the new
// state consistently.
func (d *DACCE) translateThreadLocked(t *machine.Thread) {
	st, ok := t.State.(*tls)
	if !ok || st == nil {
		return
	}
	st.id = 0
	st.cc = st.cc[:0]
	for i := 1; i < t.Depth(); i++ {
		f := t.FrameAt(i)
		act := d.actionFor(edgeRef{f.Site, f.Fn})
		ck := d.applyAction(nil, st, f.Site, f.Fn, act)
		if !f.Tail {
			f.Cook = ck
			f.EpiStub = d.epi
		}
	}
}

// healTailFrame re-translates the calling thread's own active frames
// when a tail call is about to execute under an enclosing frame that
// predates its caller's tail-set membership. Tail discovery publishes
// the tail bit and patches the tail site from the discovering trap, but
// the in-edge save-wraps and the frame rewrites happen in a
// stop-the-world fix-up that other threads can outrun: returns are not
// safepoints, so a thread already past a stale (non-save) in-edge stub
// would push the tail entry and unwind through an epilogue that cannot
// retract it, leaking the entry into its root state for good. Replaying
// the thread's own shadow stack rewrites the nearest non-tail enclosing
// frame to a TcStack save before the push can escape. Steady state pays
// one frame peek per tail call: once the in-edge stubs are rebuilt,
// every new enclosing frame already carries the save cookie.
func (d *DACCE) healTailFrame(t *machine.Thread) {
	if !d.tailFrameStale(t) {
		return
	}
	d.mu.Lock()
	d.translateThreadLocked(t)
	d.stats.TailHeals++
	d.mu.Unlock()
}

// healTailFrameLocked is healTailFrame for callers already holding d.mu
// (the serialized trap path).
func (d *DACCE) healTailFrameLocked(t *machine.Thread) {
	if !d.tailFrameStale(t) {
		return
	}
	d.translateThreadLocked(t)
	d.stats.TailHeals++
}

// tailFrameStale reports whether the thread's nearest non-tail active
// frame lacks the TcStack save cookie a tail call below it relies on
// for cleanup. The root frame (index 0) has no cookie and never
// returns mid-run, so a tail call directly under the root needs no
// save.
func (d *DACCE) tailFrameStale(t *machine.Thread) bool {
	if t == nil {
		return false
	}
	i := t.Depth() - 1
	for i > 0 && t.FrameAt(i).Tail {
		i--
	}
	return i > 0 && t.FrameAt(i).Cook.Tag != tagSave
}

// tailFixup runs when fn is first discovered to contain a tail call
// (paper §5.2): every site calling fn must save and restore the
// encoding context around the call. Already-active invocations get
// their frames rewritten by the same replay used for re-encoding.
func (d *DACCE) tailFixup(self *machine.Thread, fn prog.FuncID) {
	m := d.m.Load() // non-nil: only reachable from an installed trap
	m.StopTheWorld(self)
	defer m.ResumeTheWorld(self)
	d.mu.Lock()
	defer d.mu.Unlock()

	// A pending in-edge of fn would otherwise be invisible to the
	// In-list walk below and miss its save-wrap rebuild.
	d.drainAllLocked()
	if n := d.g.Node(fn); n != nil {
		for _, e := range n.In {
			d.rebuildSite(e.Site)
		}
	}
	for _, t := range m.Threads() {
		d.translateThreadLocked(t)
	}
	d.stats.TailFixups++
	if d.sink != nil {
		tid := int32(-1)
		if self != nil {
			tid = int32(self.ID())
		}
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvTailFixup, Thread: tid,
			Epoch: d.cur().epoch, Site: prog.NoSite, Fn: fn,
		})
	}
}
