package core

import (
	"reflect"
	"testing"

	"dacce/internal/machine"
	"dacce/internal/prog"
)

// twoLevelProgram builds main → callers → leaves with every edge
// expressed as a static call site, plus `reserved` extra sites on
// caller 0 targeting otherwise-unreached leaves. No bodies run it; the
// bounded-pause tests drive discovery through InjectDiscoveries and
// passes through ReencodeNow, so the graph shape is fully controlled.
func twoLevelProgram(tb testing.TB, callers, leavesPerCaller, reserved int) (*prog.Program, []Discovery, []Discovery) {
	tb.Helper()
	b := prog.NewBuilder()
	mainF := b.Func("main")
	var base, extra []Discovery
	var callerFns []prog.FuncID
	for c := 0; c < callers; c++ {
		cf := b.Func("c" + string(rune('A'+c)))
		callerFns = append(callerFns, cf)
		base = append(base, Discovery{Site: b.CallSite(mainF, cf), Fn: cf, Freq: 10})
		for l := 0; l < leavesPerCaller; l++ {
			lf := b.Func("l" + string(rune('A'+c)) + string(rune('a'+l)))
			b.Leaf(lf, 1)
			base = append(base, Discovery{Site: b.CallSite(cf, lf), Fn: lf, Freq: 5})
		}
	}
	for r := 0; r < reserved; r++ {
		lf := b.Func("x" + string(rune('a'+r)))
		b.Leaf(lf, 1)
		extra = append(extra, Discovery{Site: b.CallSite(callerFns[0], lf), Fn: lf, Freq: 1})
	}
	b.Body(mainF, func(x prog.Exec) {})
	return b.MustBuild(), base, extra
}

// diffIndexes compares the per-function in-edge lists of two decode
// indexes entry for entry.
func diffIndexes(tb testing.TB, epoch uint32, got, want *decodeIndex) {
	tb.Helper()
	if len(got.in) != len(want.in) {
		tb.Errorf("epoch %d: delta index has %d functions with in-edges, full rebuild has %d", epoch, len(got.in), len(want.in))
	}
	for fn, wlist := range want.in {
		glist, ok := got.in[fn]
		if !ok {
			tb.Errorf("epoch %d: fn %d missing from delta index (want %d in-edges)", epoch, fn, len(wlist))
			continue
		}
		if !reflect.DeepEqual(glist, wlist) {
			tb.Errorf("epoch %d: fn %d in-edges differ:\n delta %+v\n full  %+v", epoch, fn, glist, wlist)
		}
	}
}

// TestDeltaIndexAndStubSetAgainstFullRebuild is the controlled
// delta-vs-full equivalence check: one incremental pass over a known
// delta must produce (a) a decode index identical to a from-scratch
// newDecodeIndex of the same assignment, and (b) a dirty-site set that
// covers every site whose stub action changed — and only a small
// fraction of the program, since the delta touched one caller.
func TestDeltaIndexAndStubSetAgainstFullRebuild(t *testing.T) {
	p, base, extra := twoLevelProgram(t, 8, 4, 6)
	d := New(p, Options{Incremental: true})
	d.InjectDiscoveries(base)
	m := machine.New(p, d, machine.Config{})
	d.Install(m)
	d.ForceReencode(nil) // epoch 1: the full baseline the delta builds on

	d.InjectDiscoveries(extra)
	prev := d.cur()
	d.ReencodeNow(nil, true)
	next := d.cur()

	plan := d.lastPlan
	if plan == nil {
		t.Fatal("no pass ran")
	}
	if !plan.incremental {
		t.Fatal("forced-incremental pass fell back to a full renumbering")
	}
	if next.epoch != prev.epoch+1 {
		t.Fatalf("epoch %d after pass, want %d", next.epoch, prev.epoch+1)
	}

	// (a) The published delta-derived index equals a full rebuild.
	full := newDecodeIndex(d.g, next.dicts[len(next.dicts)-1])
	got := next.idx[len(next.idx)-1]
	diffIndexes(t, next.epoch, got, full)
	if len(got.edges) != len(full.edges) {
		t.Errorf("delta index tracks %d edges, full rebuild %d", len(got.edges), len(full.edges))
	}

	// (b) Every edge whose action changed sits at a dirty site.
	totalSites := 0
	for _, e := range d.g.Edges {
		totalSites++
		ref := edgeRef{site: e.Site, target: e.Target}
		before := d.actionForIn(prev, ref)
		after := d.actionForIn(next, ref)
		if before != after && !plan.dirtySites[e.Site] {
			t.Errorf("site %d (target %d): action changed %+v -> %+v but site not in dirty set", e.Site, e.Target, before, after)
		}
	}
	// The delta touched caller 0 only; the rebuild must not approach a
	// full sweep of the program's sites.
	if len(plan.dirtySites) >= totalSites/2 {
		t.Errorf("dirty set has %d of %d sites — delta rebuild degenerated to a full one", len(plan.dirtySites), totalSites)
	}

	// Re-injecting known edges must not re-register or re-count them.
	edgesBefore := d.Stats().Edges
	d.InjectDiscoveries(extra)
	if got := d.Stats().Edges; got != edgesBefore {
		t.Errorf("re-injecting known edges grew the graph from %d to %d edges", edgesBefore, got)
	}
}

// TestDeltaIndexChainMatchesFullOnWorkload cross-validates every epoch
// of a discovery-heavy incremental run: each published per-epoch decode
// index — most of them delta-derived from the previous epoch — must
// match a from-scratch rebuild of that epoch's assignment.
func TestDeltaIndexChainMatchesFullOnWorkload(t *testing.T) {
	p := discoveringProgram(t, 60, 80)
	d := New(p, Options{Trig: Triggers{NewEdges: 6}, Incremental: true})
	m := machine.New(p, d, machine.Config{SampleEvery: 9})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().IncrementalPasses == 0 {
		t.Fatal("run performed no incremental passes; chain check is vacuous")
	}
	snap := d.cur()
	for e := range snap.idx {
		// Edges discovered after epoch e have no code in dicts[e], so a
		// from-scratch rebuild over today's graph reconstructs exactly
		// the in-edge lists the epoch froze.
		diffIndexes(t, uint32(e), snap.idx[e], newDecodeIndex(d.g, snap.dicts[e]))
	}
}

// TestEpochRecordPhaseAttribution checks the satellite cost-model fix:
// every pass's CostCycles decomposes into the four phase costs, each
// phase is priced by its recorded work volume, and stub rebuild and
// thread translation are no longer free.
func TestEpochRecordPhaseAttribution(t *testing.T) {
	p := discoveringProgram(t, 60, 80)
	d := New(p, Options{Trig: Triggers{NewEdges: 6}, Incremental: true})
	m := machine.New(p, d, machine.Config{SampleEvery: 9})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if len(st.History) == 0 {
		t.Fatal("no passes recorded")
	}
	sawIncremental, sawStubCost, sawTranslate := false, false, false
	for i, r := range st.History {
		if sum := r.RenumberCost + r.IndexCost + r.StubCost + r.TranslateCost; r.CostCycles != sum {
			t.Errorf("pass %d: CostCycles %d != phase sum %d", i, r.CostCycles, sum)
		}
		if want := int64(machine.CostIndexPerEdge) * int64(r.IndexEntries); r.IndexCost != want {
			t.Errorf("pass %d: IndexCost %d, want %d for %d entries", i, r.IndexCost, want, r.IndexEntries)
		}
		if want := int64(machine.CostStubRebuild) * int64(r.SitesRebuilt); r.StubCost != want {
			t.Errorf("pass %d: StubCost %d, want %d for %d sites", i, r.StubCost, want, r.SitesRebuilt)
		}
		if want := int64(machine.CostTranslatePerFrame) * int64(r.FramesReplayed); r.TranslateCost != want {
			t.Errorf("pass %d: TranslateCost %d, want %d for %d frames", i, r.TranslateCost, want, r.FramesReplayed)
		}
		sawIncremental = sawIncremental || r.Incremental
		sawStubCost = sawStubCost || r.StubCost > 0
		sawTranslate = sawTranslate || r.ThreadsTranslated > 0 || r.ThreadsSkipped > 0
	}
	if !sawIncremental {
		t.Error("no incremental pass in history")
	}
	if !sawStubCost {
		t.Error("stub rebuilds were never priced")
	}
	if !sawTranslate {
		t.Error("no pass saw a live thread; translation accounting untested")
	}
}

// TestSelectiveTranslationSkipsCleanThreads: an incremental pass whose
// delta does not intersect a thread's active frames (and does not move
// maxID past a marker the thread holds) must leave that thread
// untranslated. The controlled pass below runs with no live threads at
// all, so both counters must be zero and the pass must still record a
// consistent epoch; the workload-driven skip case is asserted through
// History in TestEpochRecordPhaseAttribution.
func TestSelectiveTranslationCounters(t *testing.T) {
	p, base, extra := twoLevelProgram(t, 4, 4, 2)
	d := New(p, Options{Incremental: true})
	d.InjectDiscoveries(base)
	m := machine.New(p, d, machine.Config{})
	d.Install(m)
	d.ForceReencode(nil)
	d.InjectDiscoveries(extra)
	d.ReencodeNow(nil, true)

	st := d.Stats()
	last := st.History[len(st.History)-1]
	if !last.Incremental || !last.Concurrent {
		t.Fatalf("expected an incremental concurrent pass, got %+v", last)
	}
	if last.ThreadsTranslated != 0 || last.ThreadsSkipped != 0 || last.FramesReplayed != 0 {
		t.Errorf("threadless pass recorded translation work: %+v", last)
	}
	if last.SitesRebuilt == 0 {
		t.Error("delta pass rebuilt no stubs despite changed edges")
	}
	if last.PauseNanos < 0 || last.PrepareNanos <= 0 {
		t.Errorf("concurrent pass timing not recorded: pause %d prep %d", last.PauseNanos, last.PrepareNanos)
	}
}
