package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"dacce/internal/ccdag"
	"dacce/internal/machine"
	"dacce/internal/workload"
)

// soakProfile is the reclamation tests' workload: enough functions,
// indirect fan-out and recursion to keep contexts churning, small
// enough per round to run a hundred rounds.
func soakProfile(totalCalls int64) workload.Profile {
	return workload.Profile{
		Name:          "reclaim",
		Seed:          0xEC1A1,
		ExecFuncs:     48,
		ExecEdges:     110,
		Layers:        7,
		IndirectSites: 3,
		ActualTargets: 3,
		RecSites:      2,
		RecProb:       0.3,
		RecStartProb:  0.05,
		Threads:       2,
		TotalCalls:    totalCalls,
		Phases:        1,
	}
}

// retainingObserver is a node observer that pins every node it sees —
// the worst case for reclamation — and implements NodeReleaser so the
// encoder can flush the pins before collecting, the way the streaming
// profiler does.
type retainingObserver struct {
	mu       sync.Mutex
	nodes    map[*ccdag.Node]int64
	released atomic.Int64
}

func (o *retainingObserver) ObserveContext(thread int, ctx Context) {}

func (o *retainingObserver) ObserveContextNode(thread int, n *ccdag.Node) {
	o.mu.Lock()
	if o.nodes == nil {
		o.nodes = map[*ccdag.Node]int64{}
	}
	o.nodes[n]++
	o.mu.Unlock()
}

func (o *retainingObserver) ReleaseNodes() {
	o.mu.Lock()
	clear(o.nodes)
	o.mu.Unlock()
	o.released.Add(1)
}

// TestLowWaterEpoch exercises the capture refcount plumbing end to end:
// retained samples pin their epochs (so no collection can run), and
// releasing them raises the low-water mark so the next pass actually
// reclaims.
func TestLowWaterEpoch(t *testing.T) {
	w, err := workload.Build(soakProfile(60_000))
	if err != nil {
		t.Fatal(err)
	}
	d := New(w.P, Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: 7})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Samples) == 0 {
		t.Fatal("no samples retained")
	}
	minEpoch := rs.Samples[0].Capture.(*Capture).Epoch
	for _, s := range rs.Samples {
		if e := s.Capture.(*Capture).Epoch; e < minEpoch {
			minEpoch = e
		}
	}
	if lw := d.LowWaterEpoch(); lw > minEpoch {
		t.Fatalf("low-water epoch %d above oldest retained capture's epoch %d", lw, minEpoch)
	}
	// Retained samples pin the floor: a forced pass must not free
	// anything below them.
	nodes := d.DAG().Len()
	d.ForceReencode(nil)
	if got := d.Stats().DAGCollected; got != 0 && nodes > 0 && minEpoch == 0 {
		t.Fatalf("collected %d nodes while epoch 0 still pinned", got)
	}
	// Release everything; the low-water mark rises to the current epoch
	// and the next pass reclaims.
	for _, s := range rs.Samples {
		d.ReleaseCapture(s.Capture)
	}
	if lw, cur := d.LowWaterEpoch(), d.Epoch(); lw != cur {
		t.Fatalf("low-water epoch %d after releasing all captures, want current %d", lw, cur)
	}
	d.ForceReencode(nil)
	st := d.Stats()
	if st.DAGCollections == 0 {
		t.Fatal("no collection ran after all captures were released")
	}
}

// TestDecodeIdentityUnderCollection hammers DecodeCaptureNode against
// concurrent re-encoding passes (each of which advances the DAG
// generation and may collect): as long as a capture is un-released its
// epoch pins the floor, so two back-to-back decodes of it must return
// the same canonical node. Run with -race.
func TestDecodeIdentityUnderCollection(t *testing.T) {
	w, err := workload.Build(soakProfile(120_000))
	if err != nil {
		t.Fatal(err)
	}
	d := New(w.P, Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: 5})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Samples) < 64 {
		t.Fatalf("only %d samples retained", len(rs.Samples))
	}

	const workers = 8
	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	// Collector: advance epochs (and with them the collection floor, as
	// workers release their captures) as fast as possible.
	var collectorDone sync.WaitGroup
	collectorDone.Add(1)
	go func() {
		defer collectorDone.Done()
		for !stop.Load() {
			d.ForceReencode(nil)
		}
	}()
	var firstErr atomic.Pointer[string]
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := wk; i < len(rs.Samples); i += workers {
				c := rs.Samples[i].Capture
				a, err := d.DecodeCaptureNode(c)
				if err != nil {
					msg := err.Error()
					firstErr.CompareAndSwap(nil, &msg)
					return
				}
				b, err := d.DecodeCaptureNode(c)
				if err != nil {
					msg := err.Error()
					firstErr.CompareAndSwap(nil, &msg)
					return
				}
				if a != b {
					msg := "same un-released capture decoded to two different nodes"
					firstErr.CompareAndSwap(nil, &msg)
					return
				}
				// Releasing lets the floor advance past this capture's
				// epoch — its nodes may now be swept, and that's fine.
				d.ReleaseCapture(c)
			}
		}(wk)
	}
	wg.Wait()
	stop.Store(true)
	collectorDone.Wait()
	if msg := firstErr.Load(); msg != nil {
		t.Fatal(*msg)
	}
}

// TestSoakBoundedFootprint is the tentpole's acceptance soak: many
// rounds of fresh context churn, each followed by an epoch retirement,
// with a node-pinning observer attached. The DAG, the observer's pins
// and the heap must stay bounded by the live set instead of growing
// with history. Skipped with -short.
func TestSoakBoundedFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	w, err := workload.Build(soakProfile(20_000))
	if err != nil {
		t.Fatal(err)
	}
	d := New(w.P, Options{})
	obs := &retainingObserver{}
	d.SetContextObserver(obs)

	const rounds = 120
	var peakEarly, peakLate int64
	var heapEarly uint64
	for r := 0; r < rounds; r++ {
		// A different machine seed each round shifts the sampled call
		// paths, so every round interns chains the previous rounds never
		// touched. DropSamples releases every capture at sample time, so
		// the low-water mark tracks the current epoch and each forced
		// pass below can actually collect.
		m := w.NewMachine(d, machine.Config{SampleEvery: 5, Seed: uint64(r + 1), DropSamples: true})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		d.ForceReencode(nil)
		n := d.DAG().Len()
		switch {
		case r == rounds/4:
			peakEarly = n
			var ms runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms)
			heapEarly = ms.HeapAlloc
		case r > rounds/4 && n > peakLate:
			peakLate = n
		}
	}
	st := d.Stats()
	if st.DAGCollections < rounds/2 {
		t.Fatalf("only %d collections over %d rounds", st.DAGCollections, rounds)
	}
	if st.DAGCollected == 0 {
		t.Fatal("collections freed nothing despite churning contexts")
	}
	if obs.released.Load() == 0 {
		t.Fatal("observer pins were never flushed")
	}
	// Bounded DAG: the post-collection footprint late in the soak stays
	// within a small factor of the early steady state — it must not grow
	// with round count.
	if peakEarly == 0 {
		peakEarly = 1
	}
	if peakLate > 4*peakEarly+1024 {
		t.Fatalf("DAG footprint grew with history: %d nodes late vs %d early", peakLate, peakEarly)
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	if heapEarly > 0 && ms.HeapAlloc > 2*heapEarly+64<<20 {
		t.Fatalf("heap grew with history: %d B late vs %d B early", ms.HeapAlloc, heapEarly)
	}
}
