package core

import (
	"sync"
	"testing"

	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/progtest"
	"dacce/internal/telemetry"
)

// collectSink records every event, for assertions on ordering/payloads.
type collectSink struct {
	mu  sync.Mutex
	evs []telemetry.Event
}

func (c *collectSink) Emit(ev telemetry.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *collectSink) byKind(k telemetry.Kind) []telemetry.Event {
	var out []telemetry.Event
	for _, ev := range c.evs {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// TestTelemetryMatchesStats runs a discovery-heavy program with a
// recording sink and cross-checks the event stream against the
// encoder's own statistics — the two are independent accounting paths
// for the same run.
func TestTelemetryMatchesStats(t *testing.T) {
	p := discoveringProgram(t, 40, 60)
	sink := &collectSink{}
	d := New(p, Options{Trig: Triggers{NewEdges: 4}, Sink: sink})
	m := machine.New(p, d, machine.Config{SampleEvery: 16})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()

	if n := len(sink.byKind(telemetry.EvEncoderInit)); n != 1 {
		t.Errorf("EvEncoderInit emitted %d times, want 1", n)
	}
	if n := len(sink.byKind(telemetry.EvEdgeDiscovered)); n != st.EdgesDiscovered {
		t.Errorf("EvEdgeDiscovered count = %d, Stats.EdgesDiscovered = %d", n, st.EdgesDiscovered)
	}
	starts := sink.byKind(telemetry.EvReencodeStart)
	ends := sink.byKind(telemetry.EvReencodeEnd)
	if len(starts) != st.GTS || len(ends) != st.GTS {
		t.Errorf("re-encode events = %d start / %d end, Stats.GTS = %d", len(starts), len(ends), st.GTS)
	}
	for i, ev := range ends {
		if ev.Reason == telemetry.ReasonNone {
			t.Errorf("EvReencodeEnd[%d] has no trigger reason", i)
		}
		if i < len(st.History) && ev.Value != uint64(st.History[i].CostCycles) {
			t.Errorf("EvReencodeEnd[%d].Value = %d, History cost = %d", i, ev.Value, st.History[i].CostCycles)
		}
		if i < len(st.History) && ev.Epoch != st.History[i].Epoch {
			t.Errorf("EvReencodeEnd[%d].Epoch = %d, History epoch = %d", i, ev.Epoch, st.History[i].Epoch)
		}
	}
	if n := len(sink.byKind(telemetry.EvHandlerTrap)); int64(n) != rs.C.HandlerTraps {
		t.Errorf("EvHandlerTrap count = %d, machine counter = %d", n, rs.C.HandlerTraps)
	}

	// Decode every sample: each must emit exactly one EvDecodeRequest
	// with the decoded depth, and none may fail.
	for _, s := range rs.Samples {
		if _, err := d.DecodeSample(s); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	decs := sink.byKind(telemetry.EvDecodeRequest)
	if len(decs) != len(rs.Samples) {
		t.Errorf("EvDecodeRequest count = %d, want %d", len(decs), len(rs.Samples))
	}
	for i, ev := range decs {
		if ev.Err {
			t.Errorf("EvDecodeRequest[%d] flagged an error on a valid capture", i)
		}
		if ev.Value == 0 {
			t.Errorf("EvDecodeRequest[%d] reports empty context", i)
		}
	}
}

// TestTelemetryPushPopEvents checks ccStack events against the machine
// counters on a recursion-heavy script that actually exercises the
// ccStack, and that pop events carry a depth one below their push.
func TestTelemetryPushPopEvents(t *testing.T) {
	fx, b := progtest.Fig2()
	sink := &collectSink{}
	var d *DACCE
	root := []progtest.Call{
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"))),
		{Site: fx.S("AC"), Target: prog.NoFunc, Hook: func(x prog.Exec) { d.ForceReencode(x) }},
		// New edge AD: pushes <id, AD, D> while unencoded.
		progtest.By(fx.S("AD")),
		progtest.By(fx.S("AD")),
	}
	_, rs := runScriptDeferred(t, fx, b, root, Options{Trig: quietTriggers, Sink: sink}, machine.Config{}, &d)

	pushes := sink.byKind(telemetry.EvCCStackPush)
	pops := sink.byKind(telemetry.EvCCStackPop)
	if int64(len(pushes)) != rs.C.CCPush {
		t.Errorf("EvCCStackPush count = %d, machine counter = %d", len(pushes), rs.C.CCPush)
	}
	if int64(len(pops)) != rs.C.CCPop {
		t.Errorf("EvCCStackPop count = %d, machine counter = %d", len(pops), rs.C.CCPop)
	}
	for i, ev := range pushes {
		if ev.Value == 0 {
			t.Errorf("push[%d] depth = 0, want >= 1 (depth after push)", i)
		}
		if ev.Site == prog.NoSite || ev.Fn == prog.NoFunc {
			t.Errorf("push[%d] missing site/target: %v", i, ev)
		}
	}
}

// TestTelemetryNilSinkIdentical verifies the nil-sink fast path is
// behaviour-preserving: the same seeded program produces identical
// statistics with and without a sink attached.
func TestTelemetryNilSinkIdentical(t *testing.T) {
	p := discoveringProgram(t, 40, 60)
	run := func(sink telemetry.Sink) (*Stats, machine.Counters) {
		d := New(p, Options{Trig: Triggers{NewEdges: 4}, Sink: sink})
		m := machine.New(p, d, machine.Config{SampleEvery: 16, DropSamples: true, Seed: 7})
		rs, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d.Stats(), rs.C
	}
	plain, pc := run(nil)
	counted, cc := run(&telemetry.CountingSink{})
	if plain.GTS != counted.GTS || plain.Edges != counted.Edges ||
		plain.MaxID != counted.MaxID || plain.EdgesDiscovered != counted.EdgesDiscovered {
		t.Errorf("stats diverge with sink: %+v vs %+v", plain, counted)
	}
	if pc.InstrCost != cc.InstrCost {
		t.Errorf("model instrumentation cost diverges with sink: %d vs %d", pc.InstrCost, cc.InstrCost)
	}
}
