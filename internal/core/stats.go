package core

import "dacce/internal/machine"

// EpochRecord summarizes one re-encoding pass: what it produced, how it
// ran (incremental / concurrent-prepare), how much work each phase did,
// and what each phase cost — both in model cycles (CostCycles is the
// sum of the four phase costs, so Table 1's "costs" column still adds
// up) and in measured wall time. Renumbering and index construction run
// off-pause on the concurrent path; stub rebuild and thread translation
// always run inside the stop-the-world window.
type EpochRecord struct {
	Epoch        uint32
	AtSample     int64 // samplesSeen when the pass ran (Fig. 9 x-axis)
	Nodes        int
	Edges        int
	EncodedEdges int
	MaxID        uint64
	Overflowed   bool
	CostCycles   int64

	// Incremental: the pass renumbered only the affected subgraph
	// (blenc.Refresh without fallback). Concurrent: assignment and
	// decode index were prepared with the world still running.
	Incremental bool
	Concurrent  bool

	// Per-phase work volume.
	ChangedEdges      int // edges whose code differs from the previous epoch
	IndexEntries      int // decode-index in-edge entries (re)built
	SitesRebuilt      int // call-site stubs regenerated
	ThreadsTranslated int // threads whose TLS/frames were replayed
	ThreadsSkipped    int // live threads left untouched (selective translation)
	FramesReplayed    int // active frames rewritten across translated threads

	// Per-phase model cost; CostCycles is their sum.
	RenumberCost  int64
	IndexCost     int64
	StubCost      int64
	TranslateCost int64

	// Per-phase wall time. PrepareNanos is the off-pause portion
	// (renumber + index on the concurrent path; 0 for classic passes);
	// PauseNanos is the stop-the-world window.
	RenumberNanos  int64
	IndexNanos     int64
	StubNanos      int64
	TranslateNanos int64
	PrepareNanos   int64
	PauseNanos     int64
}

// ProgressPoint is one point of the Fig. 9 progress series: how many
// nodes/edges are encoded and the maximum context id, per sample tick.
type ProgressPoint struct {
	Sample int64
	Nodes  int
	Edges  int
	MaxID  uint64
	Epoch  uint32
}

// Stats are the DACCE-side run statistics backing Table 1's DACCE
// columns and Fig. 9.
type Stats struct {
	// GTS is the number of re-encoding passes (Table 1 "gTS").
	GTS int
	// ReencodeCost is the total model cost of all passes (Table 1
	// "costs", reported in µs via ReencodeCostMicros).
	ReencodeCost int64
	// EdgesDiscovered counts first invocations seen by the handler.
	EdgesDiscovered int
	// TailFixups counts functions discovered to contain tail calls.
	TailFixups int
	// TailHeals counts threads that re-translated their own frames on
	// executing a tail call under a stale (pre-tail-discovery)
	// enclosing frame.
	TailHeals int
	// IncrementalPasses counts re-encodings served by the incremental
	// renumbering (Options.Incremental).
	IncrementalPasses int
	// DAGCollections/DAGCollected count DAG reclamation passes run by
	// maybeCollect and the total context nodes they freed.
	DAGCollections int
	DAGCollected   int64
	// Nodes/Edges/MaxID describe the final dynamic call graph.
	Nodes      int
	Edges      int
	MaxID      uint64
	Overflowed bool
	// History holds one record per re-encoding pass.
	History []EpochRecord
	// Progress is the sampled Fig. 9 series (when TrackProgress is on).
	Progress []ProgressPoint
}

// ReencodeCostMicros converts the total re-encoding cost to
// microseconds at the machine's nominal clock, matching Table 1's
// "costs(us)" units.
func (s *Stats) ReencodeCostMicros() float64 {
	return float64(s.ReencodeCost) / machine.NominalHz * 1e6
}
