package core

import (
	"testing"

	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/progtest"
)

// quietTriggers disables automatic re-encoding so tests control epochs
// explicitly via ForceReencode.
var quietTriggers = Triggers{
	NewEdges:       1 << 30,
	UnencodedCalls: 1 << 60,
	CCOps:          1 << 60,
	HotMissSamples: 1 << 60,
}

// ctxOf builds the expected context from function/site names.
func ctxOf(fx *progtest.Fixture, names ...string) Context {
	// names alternate: fn, siteIntoNext, fn, siteIntoNext... simpler:
	// first name is root fn; then pairs (site, fn).
	out := Context{{Site: prog.NoSite, Fn: fx.F(names[0])}}
	for i := 1; i < len(names); i += 2 {
		out = append(out, ContextFrame{Site: fx.S(names[i]), Fn: fx.F(names[i+1])})
	}
	return out
}

// TestSection31WorkedExample reproduces the §3.1 example: with A→C→D
// encoded (maxID = 0) and edge AD newly discovered, the context AD is
// encoded as id = 1 with <0, A, D> on the ccStack, and decodes to AD.
func TestSection31WorkedExample(t *testing.T) {
	fx, b := progtest.Fig2()
	var d *DACCE
	var capAD *Capture

	root := []progtest.Call{
		// Phase 1: discover A→C→D.
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"))),
		// Re-encode from inside a later visit of C (the whole phase-1
		// path has returned by then), so AC and CD become encoded.
		{Site: fx.S("AC"), Target: prog.NoFunc, Hook: func(x prog.Exec) {
			d.ForceReencode(x)
		}},
		// Take edge AD for the first time and capture inside D.
		{Site: fx.S("AD"), Target: prog.NoFunc, Hook: func(x prog.Exec) {
			capAD = d.CaptureTyped(x.(*machine.Thread))
		}},
	}
	runScriptDeferred(t, fx, b, root, Options{Trig: quietTriggers}, machine.Config{}, &d)

	if capAD == nil {
		t.Fatal("capture in D never taken")
	}
	if capAD.Epoch != 1 {
		t.Fatalf("capture epoch = %d, want 1", capAD.Epoch)
	}
	dict := d.Dict(1)
	if dict.MaxID != 0 {
		t.Fatalf("maxID after encoding ACD = %d, want 0", dict.MaxID)
	}
	if capAD.ID != 1 {
		t.Errorf("id in D = %d, want maxID+1 = 1", capAD.ID)
	}
	if len(capAD.CC) != 1 {
		t.Fatalf("ccStack has %d entries, want 1", len(capAD.CC))
	}
	e := capAD.CC[0]
	if e.ID != 0 || e.Site != fx.S("AD") || e.Target != fx.F("D") {
		t.Errorf("ccStack entry = %v, want <0, AD, D>", e)
	}
	ctx, err := d.Decode(capAD)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := ctxOf(fx, "A", "AD", "D")
	if !ctx.Equal(want) {
		t.Errorf("decoded %v, want %v", ctx, want)
	}
}

// runScriptDeferred is runScript for tests whose hooks close over the
// DACCE instance before it exists.
func runScriptDeferred(t *testing.T, fx *progtest.Fixture, b *prog.Builder, root []progtest.Call, opt Options, cfg machine.Config, dp **DACCE) (*DACCE, *machine.RunStats) {
	t.Helper()
	p := b.MustBuild()
	fx.P = p
	sc := progtest.NewScript(p)
	sc.Root = root
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	d := New(p, opt)
	*dp = d
	m := machine.New(p, d, cfg)
	rs, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return d, rs
}

// TestFig3IndirectExample reproduces §3.2: context ACEI through an
// indirect call decodes correctly, with the encoding context saved
// before the indirect invocation.
func TestFig3IndirectExample(t *testing.T) {
	fx, b := progtest.Fig3()
	var d *DACCE
	var capI *Capture

	root := []progtest.Call{
		// Discover the direct skeleton: A→B→D, A→C→D, D→F.
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DF")))),
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"), progtest.By(fx.S("DF")))),
		// Re-encode, then take the indirect call C→E (first time) and
		// E→I (first time), capturing in I.
		{Site: fx.S("AC"), Target: prog.NoFunc, Hook: func(x prog.Exec) { d.ForceReencode(x) },
			Sub: []progtest.Call{
				progtest.ByT(fx.S("Cind"), fx.F("E"),
					progtest.Call{Site: fx.S("EI"), Target: prog.NoFunc, Hook: func(x prog.Exec) {
						capI = d.CaptureTyped(x.(*machine.Thread))
					}}),
			}},
	}
	runScriptDeferred(t, fx, b, root, Options{Trig: quietTriggers}, machine.Config{}, &d)

	if capI == nil {
		t.Fatal("capture in I never taken")
	}
	maxID := d.Dict(capI.Epoch).MaxID
	if capI.ID <= maxID {
		t.Errorf("id in I = %d not in marker range (maxID %d)", capI.ID, maxID)
	}
	if len(capI.CC) != 2 {
		t.Fatalf("ccStack %v, want the AC sub-path entry and the C→E entry", capI.CC)
	}
	ctx, err := d.Decode(capI)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := ctxOf(fx, "A", "AC", "C", "Cind", "E", "EI", "I")
	if !ctx.Equal(want) {
		t.Errorf("decoded %v, want %v", ctx, want)
	}
}

// TestFig5RecursionExample reproduces §3.3's worked example: the
// context ADACDAD is encoded as id = 1 with the four entries
// <0,A,D>, <1,D,A>, <1,D,A>, <1,A,D> on the ccStack when AD and DA are
// unencoded, and decodes back to ADACDAD.
func TestFig5RecursionExample(t *testing.T) {
	fx, b := progtest.Fig5()
	var d *DACCE
	var capD *Capture

	// Phase 1 discovers AC and CD; after the re-encode they are encoded
	// (both code 0, maxID 0). Then the exact path A-AD→D-DA→A-AC→C-CD→
	// D-DA→A-AD→D is driven with a capture in the final D.
	root := []progtest.Call{
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"))),
		{Site: fx.S("AC"), Target: prog.NoFunc, Hook: func(x prog.Exec) { d.ForceReencode(x) }},
		progtest.By(fx.S("AD"), // A→D
			progtest.By(fx.S("DA"), // D→A
				progtest.By(fx.S("AC"), // A→C
					progtest.By(fx.S("CD"), // C→D
						progtest.By(fx.S("DA"), // D→A
							progtest.Call{Site: fx.S("AD"), Target: prog.NoFunc, // A→D
								Hook: func(x prog.Exec) {
									capD = d.CaptureTyped(x.(*machine.Thread))
								}}))))),
	}
	runScriptDeferred(t, fx, b, root, Options{Trig: quietTriggers}, machine.Config{}, &d)

	if capD == nil {
		t.Fatal("capture never taken")
	}
	if capD.ID != 1 {
		t.Errorf("id = %d, want 1", capD.ID)
	}
	wantCC := []CCEntry{
		{ID: 0, Site: fx.S("AD"), Target: fx.F("D")},
		{ID: 1, Site: fx.S("DA"), Target: fx.F("A")},
		{ID: 1, Site: fx.S("DA"), Target: fx.F("A")},
		{ID: 1, Site: fx.S("AD"), Target: fx.F("D")},
	}
	if len(capD.CC) != len(wantCC) {
		t.Fatalf("ccStack %v, want 4 entries", capD.CC)
	}
	for i, want := range wantCC {
		got := capD.CC[i]
		if got.ID != want.ID || got.Site != want.Site || got.Target != want.Target || got.Count != 0 {
			t.Errorf("ccStack[%d] = %v, want %v", i, got, want)
		}
	}
	ctx, err := d.Decode(capD)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := ctxOf(fx, "A", "AD", "D", "DA", "A", "AC", "C", "CD", "D", "DA", "A", "AD", "D")
	if !ctx.Equal(want) {
		t.Errorf("decoded %v, want %v", ctx, want)
	}
}

// TestEveryCallSampledDecodes runs the Fig. 3 program through several
// mixed paths with a sample at every call and cross-validates every
// decode against the shadow stack (the paper's §6.1 validation).
func TestEveryCallSampledDecodes(t *testing.T) {
	fx, b := progtest.Fig3()
	var d *DACCE
	paths := []progtest.Call{
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DF")))),
		progtest.By(fx.S("AC"),
			progtest.By(fx.S("CD"), progtest.By(fx.S("DF"))),
			progtest.ByT(fx.S("Cind"), fx.F("E"), progtest.By(fx.S("EI"))),
			progtest.ByT(fx.S("Cind"), fx.F("I"))),
		{Site: fx.S("AB"), Target: prog.NoFunc, Hook: func(x prog.Exec) { d.ForceReencode(x) },
			Sub: []progtest.Call{progtest.By(fx.S("BD"), progtest.By(fx.S("DF")))}},
		progtest.By(fx.S("AC"),
			progtest.ByT(fx.S("Cind"), fx.F("E"), progtest.By(fx.S("EI"))),
			progtest.By(fx.S("CD"))),
	}
	_, rs := runScriptDeferred(t, fx, b, paths, Options{Trig: quietTriggers}, machine.Config{SampleEvery: 1}, &d)

	if len(rs.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	for _, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("sample %d: decode: %v", s.Seq, err)
		}
		want := ShadowContext(nil, s.Shadow)
		if !ctx.Equal(want) {
			t.Errorf("sample %d: decoded %v, want %v (capture %v)", s.Seq, ctx, want, s.Capture)
		}
	}
}
