package core

import (
	"math"
	"testing"

	"dacce/internal/machine"
)

func TestReencodeCostMicros(t *testing.T) {
	cases := []struct {
		cycles int64
		want   float64
	}{
		{0, 0},
		{int64(machine.NominalHz), 1e6}, // one second of cycles
		{int64(machine.NominalHz / 1e6), 1},
		{3600, 3600 / machine.NominalHz * 1e6},
	}
	for _, c := range cases {
		s := &Stats{ReencodeCost: c.cycles}
		got := s.ReencodeCostMicros()
		if math.Abs(got-c.want) > c.want*1e-9+1e-12 {
			t.Errorf("ReencodeCostMicros(%d cycles) = %g, want %g", c.cycles, got, c.want)
		}
	}
}

// TestReencodeCostMatchesHistory cross-checks the aggregate against the
// per-epoch records: the total cost must be the sum of the history's
// CostCycles, converted consistently.
func TestReencodeCostMatchesHistory(t *testing.T) {
	p := discoveringProgram(t, 40, 60)
	d := New(p, Options{Trig: Triggers{NewEdges: 4}})
	m := machine.New(p, d, machine.Config{SampleEvery: 16, DropSamples: true})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.GTS < 2 {
		t.Fatalf("expected multiple re-encodings, got gTS = %d", st.GTS)
	}
	var sum int64
	for _, r := range st.History {
		sum += r.CostCycles
	}
	if sum != st.ReencodeCost {
		t.Errorf("sum of History.CostCycles = %d, Stats.ReencodeCost = %d", sum, st.ReencodeCost)
	}
	wantUs := float64(sum) / machine.NominalHz * 1e6
	if got := st.ReencodeCostMicros(); math.Abs(got-wantUs) > 1e-9 {
		t.Errorf("ReencodeCostMicros = %g, want %g", got, wantUs)
	}
}

// TestEpochHistoryOrdering checks the invariants of the per-epoch
// history: one record per pass, epochs strictly increasing from 1 (the
// initial empty encoding is epoch 0 and has no record), sample
// positions non-decreasing, and the graph never shrinking.
func TestEpochHistoryOrdering(t *testing.T) {
	p := discoveringProgram(t, 40, 60)
	d := New(p, Options{Trig: Triggers{NewEdges: 4}})
	m := machine.New(p, d, machine.Config{SampleEvery: 16, DropSamples: true})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if len(st.History) != st.GTS {
		t.Fatalf("len(History) = %d, want gTS = %d", len(st.History), st.GTS)
	}
	for i, r := range st.History {
		if want := uint32(i + 1); r.Epoch != want {
			t.Errorf("History[%d].Epoch = %d, want %d", i, r.Epoch, want)
		}
		if r.CostCycles <= 0 {
			t.Errorf("History[%d].CostCycles = %d, want > 0", i, r.CostCycles)
		}
		if r.EncodedEdges > r.Edges {
			t.Errorf("History[%d]: EncodedEdges %d > Edges %d", i, r.EncodedEdges, r.Edges)
		}
		if i == 0 {
			continue
		}
		prev := st.History[i-1]
		if r.AtSample < prev.AtSample {
			t.Errorf("History[%d].AtSample = %d decreased from %d", i, r.AtSample, prev.AtSample)
		}
		if r.Nodes < prev.Nodes || r.Edges < prev.Edges {
			t.Errorf("History[%d]: graph shrank (%d/%d nodes, %d/%d edges)",
				i, prev.Nodes, r.Nodes, prev.Edges, r.Edges)
		}
	}
	last := st.History[len(st.History)-1]
	if last.Nodes != st.Nodes || last.Edges != st.Edges || last.MaxID != st.MaxID {
		t.Errorf("final record %+v disagrees with Stats (%d nodes, %d edges, maxID %d)",
			last, st.Nodes, st.Edges, st.MaxID)
	}
}
