package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

// actKind classifies the instrumentation an edge gets at the current
// epoch.
type actKind uint8

const (
	// actEncoded: id += code before the call, id -= code after
	// (Fig. 1); code 0 means no instrumentation at all.
	actEncoded actKind = iota
	// actUnencoded: push <id, callsite, target> on the ccStack and set
	// id = maxID+1 (Fig. 2b). Used for edges discovered since the last
	// re-encoding and for edges excluded to fit the id budget.
	actUnencoded
	// actRecursive: a back edge — never encoded (§3.3); like
	// actUnencoded but with the repetition compression of Fig. 5e when
	// enabled.
	actRecursive
)

// edgeAction is the decoded instrumentation decision for one edge.
type edgeAction struct {
	target   prog.FuncID
	kind     actKind
	code     uint64
	compress bool
	// save wraps the call in a TcStack save/restore of the encoding
	// context because the callee contains tail calls (Fig. 7b).
	save bool
}

// Cookie tags: how the epilogue undoes the prologue.
const (
	tagNone     uint8 = iota // nothing to undo
	tagEnc                   // id -= A
	tagPop                   // id = ccStack.pop().ID
	tagRecCount              // id = ccStack.top().ID; top.Count--
	tagSave                  // id = A; ccStack truncated to B
)

// applyAction performs the prologue side of an action on TLS st and
// returns the cookie its epilogue needs. t carries cost accounting and
// is nil during re-encoding replay (translation charges separately).
//
// The ccStack marker id (maxID+1) is read from the published snapshot
// inside the branches that need it, not baked into the generated stubs:
// a prologue runs off-safepoint, so the epoch — and with it maxID — is
// stable for the duration of the call, and reading it here means a
// re-encoding pass only has to regenerate stubs whose action changed,
// not every unencoded/recursive stub in the program whenever maxID
// moves. The encoded fast path never pays the extra snapshot load.
func (d *DACCE) applyAction(t *machine.Thread, st *tls, sid prog.SiteID, target prog.FuncID, act edgeAction) machine.Cookie {
	switch act.kind {
	case actEncoded:
		if act.save {
			ck := machine.Cookie{Tag: tagSave, A: st.id, B: uint64(len(st.cc))}
			st.id += act.code
			if t != nil {
				t.C.TcSaves++
				t.C.InstrCost += machine.CostTcSave
				if act.code > 0 {
					t.C.InstrCost += machine.CostIDAdd
				}
			}
			return ck
		}
		if act.code == 0 {
			return machine.Cookie{Tag: tagNone}
		}
		st.id += act.code
		if t != nil {
			t.C.InstrCost += machine.CostIDAdd
		}
		return machine.Cookie{Tag: tagEnc, A: act.code}

	case actUnencoded:
		markID := d.cur().maxID + 1
		if act.save {
			ck := machine.Cookie{Tag: tagSave, A: st.id, B: uint64(len(st.cc))}
			d.pushCC(t, st, CCEntry{ID: st.id, Site: sid, Target: target})
			st.id = markID
			if t != nil {
				t.C.TcSaves++
				t.C.InstrCost += machine.CostTcSave
				d.unencCalls.Add(1)
				d.ccOps.Add(1)
			}
			return ck
		}
		d.pushCC(t, st, CCEntry{ID: st.id, Site: sid, Target: target})
		st.id = markID
		if t != nil {
			d.unencCalls.Add(1)
			d.ccOps.Add(1)
		}
		return machine.Cookie{Tag: tagPop}

	case actRecursive:
		markID := d.cur().maxID + 1
		if act.save {
			// Rare combination (recursive edge into a tail-containing
			// function): use the uncompressed push with a full restore.
			ck := machine.Cookie{Tag: tagSave, A: st.id, B: uint64(len(st.cc))}
			d.pushCC(t, st, CCEntry{ID: st.id, Site: sid, Target: target, Rec: true})
			st.id = markID
			if t != nil {
				t.C.TcSaves++
				t.C.InstrCost += machine.CostTcSave
			}
			return ck
		}
		if act.compress {
			if t != nil {
				t.C.Compares += 2
				t.C.InstrCost += 2 * machine.CostCompare
			}
			if n := len(st.cc); n > 0 {
				top := &st.cc[n-1]
				if top.Rec && top.ID == st.id && top.Site == sid && top.Target == target {
					top.Count++
					st.id = markID
					if t != nil {
						t.C.CCPeek++
						t.C.InstrCost += machine.CostCCPeek
					}
					return machine.Cookie{Tag: tagRecCount}
				}
			}
		}
		d.pushCC(t, st, CCEntry{ID: st.id, Site: sid, Target: target, Rec: true})
		st.id = markID
		return machine.Cookie{Tag: tagPop}
	}
	panic(fmt.Sprintf("core: unknown action kind %d", act.kind))
}

// pushCC pushes an entry on the thread's ccStack, charging the model
// cost when t is non-nil. Re-encoding replay (t == nil) re-creates
// entries rather than performing new pushes, so it neither charges nor
// emits telemetry.
func (d *DACCE) pushCC(t *machine.Thread, st *tls, e CCEntry) {
	st.cc = append(st.cc, e)
	if t != nil {
		t.C.CCPush++
		t.C.InstrCost += machine.CostCCPush
		if len(st.cc) > t.C.MaxCCDepth {
			t.C.MaxCCDepth = len(st.cc)
		}
		if d.sink != nil {
			d.sink.Emit(telemetry.Event{
				Kind: telemetry.EvCCStackPush, Thread: int32(t.ID()),
				Epoch: d.cur().epoch, Site: e.Site, Fn: e.Target,
				Value: uint64(len(st.cc)),
			})
		}
	}
}

// epiStub is the shared epilogue: it dispatches on the cookie tag, so
// rewriting a frame's cookie rewrites its return behaviour.
type epiStub struct{ d *DACCE }

func (e *epiStub) Prologue(t *machine.Thread, s *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	panic("core: epilogue stub used as prologue")
}

func (e *epiStub) Epilogue(t *machine.Thread, s *prog.Site, target prog.FuncID, c machine.Cookie) {
	st := t.State.(*tls)
	switch c.Tag {
	case tagNone:
	case tagEnc:
		st.id -= c.A
		t.C.InstrCost += machine.CostIDAdd
	case tagPop:
		n := len(st.cc)
		if n == 0 {
			panic("core: ccStack underflow on return")
		}
		st.id = st.cc[n-1].ID
		st.cc = st.cc[:n-1]
		t.C.CCPop++
		t.C.InstrCost += machine.CostCCPop
		if d := e.d; d.sink != nil {
			d.sink.Emit(telemetry.Event{
				Kind: telemetry.EvCCStackPop, Thread: int32(t.ID()),
				Epoch: d.cur().epoch, Site: s.ID, Fn: target,
				Value: uint64(n - 1),
			})
		}
	case tagRecCount:
		n := len(st.cc)
		if n == 0 {
			panic("core: ccStack underflow on compressed return")
		}
		top := &st.cc[n-1]
		st.id = top.ID
		top.Count--
		t.C.CCPeek++
		t.C.InstrCost += machine.CostCCPeek
	case tagSave:
		st.id = c.A
		if int(c.B) > len(st.cc) {
			panic("core: TcStack restore past ccStack top")
		}
		st.cc = st.cc[:c.B]
		t.C.TcSaves++
		t.C.InstrCost += machine.CostTcSave
	default:
		panic(fmt.Sprintf("core: unknown cookie tag %d", c.Tag))
	}
}

// trapStub is the initial instrumentation of every call site: invoke
// the runtime handler (paper §3).
type trapStub struct{ d *DACCE }

func (ts *trapStub) Prologue(t *machine.Thread, s *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	return ts.d.trapApply(t, s, target)
}

func (ts *trapStub) Epilogue(t *machine.Thread, s *prog.Site, target prog.FuncID, c machine.Cookie) {
	ts.d.epi.Epilogue(t, s, target, c)
}

// discoveryBatch is how many discovered edges a thread's publication
// buffer accumulates before the owner registers the whole batch under
// one d.mu acquisition. Small enough that pendingNew never lags far
// behind discovery, large enough that a cold-start burst amortizes the
// global lock ~discoveryBatch-fold.
const discoveryBatch = 32

// trapApply is the runtime handler: add the invoked edge to the call
// graph, patch the site, possibly fix up tail-containing callers and
// trigger a re-encoding, then execute this invocation as an unencoded
// call (Figs. 2b, 3b: push, id = maxID+1).
//
// The sharded path never takes d.mu on its own behalf: edge existence
// lives in the site's graph shard, the stub rebuild serializes per
// site-shard, and the new edge is published through the thread's buffer
// (batch-registered under one d.mu acquisition per discoveryBatch
// edges). The unencoded-call application is entirely lock-free — safe
// because a thread inside the handler is not at a safepoint, so no
// stop-the-world pass (and therefore no snapshot unpublication or state
// translation) can complete while the trap is in flight; every d.cur()
// read below sees one stable epoch unless this trap runs a pass itself,
// in which case it re-reads afterwards.
func (d *DACCE) trapApply(t *machine.Thread, s *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	if d.opt.SerializedDiscovery {
		return d.trapApplySerialized(t, s, target)
	}
	start := time.Now()
	t.C.HandlerTraps++
	t.C.InstrCost += machine.CostHandlerTrap

	epoch := d.cur().epoch
	tailFix := prog.NoFunc
	e, isNew := d.g.DiscoverEdge(s.ID, target)
	atomic.AddInt64(&e.Freq, 1)
	edgesDiscovered := d.edgesDiscovered.Load()
	if s.Kind.IsTail() && !d.cur().tail[s.Caller] {
		// Tail-set publication is a snapshot swap, so it stays under
		// d.mu (rare: once per tail-containing caller). Checked outside
		// isNew: a thread racing the discoverer can observe the edge
		// before the discoverer publishes the tail bit, and must not
		// proceed to the push below while the bit is still unset — the
		// tail-frame self-heal relies on the bit to save-wrap the
		// enclosing frame.
		d.mu.Lock()
		if snap := d.cur(); !snap.tail[s.Caller] {
			d.snap.Store(snap.withTailLocked(s.Caller))
			tailFix = s.Caller
		}
		d.mu.Unlock()
	}
	if isNew {
		edgesDiscovered = d.edgesDiscovered.Add(1)
		d.newEdges.Add(1)
		d.edgeCount.Add(1)
		d.rebuildSite(s.ID)
		d.publishDiscovery(t, e)
	}
	d.emitTrap(t, s, target, isNew, edgesDiscovered, epoch, start)

	if tailFix != prog.NoFunc {
		d.tailFixup(t, tailFix)
	}
	if d.triggersFired() {
		d.maybeReencode(t)
	}

	// Execute this invocation as an unencoded call against the newest
	// published state (re-read after any pass above; the translation
	// replays only the shadow stack, which does not yet include this
	// in-flight frame).
	if s.Kind.IsTail() {
		d.healTailFrame(t)
	}
	snap := d.cur()
	st := t.State.(*tls)
	save := snap.tail[target] && !s.Kind.IsTail()
	ck := d.applyAction(t, st, s.ID, target,
		edgeAction{target: target, kind: actUnencoded, save: save})
	d.trapHist.Observe(time.Since(start).Nanoseconds())
	return ck, d.epi
}

// trapApplySerialized is the pre-sharding handler, kept verbatim as the
// Options.SerializedDiscovery baseline: every trap funnels through
// d.mu, and every trigger firing marches into the stop-the-world pass
// itself (the convoy the sharded path's gate coalesces).
func (d *DACCE) trapApplySerialized(t *machine.Thread, s *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	start := time.Now()
	t.C.HandlerTraps++
	t.C.InstrCost += machine.CostHandlerTrap

	tailFix := prog.NoFunc
	d.mu.Lock()
	epoch := d.cur().epoch
	e, isNew := d.g.AddEdge(s.ID, target)
	atomic.AddInt64(&e.Freq, 1)
	edgesDiscovered := d.edgesDiscovered.Load()
	if snap := d.cur(); s.Kind.IsTail() && !snap.tail[s.Caller] {
		d.snap.Store(snap.withTailLocked(s.Caller))
		tailFix = s.Caller
	}
	if isNew {
		d.newEdges.Add(1)
		d.edgeCount.Add(1)
		d.pendingNew = append(d.pendingNew, e)
		edgesDiscovered = d.edgesDiscovered.Add(1)
		d.rebuildSite(s.ID)
	}

	if tailFix == prog.NoFunc && !d.triggersFired() {
		// Steady state: apply the unencoded call under the same
		// acquisition; the next invocation goes through the patched stub.
		if s.Kind.IsTail() {
			d.healTailFrameLocked(t)
		}
		snap := d.cur()
		st := t.State.(*tls)
		save := snap.tail[target] && !s.Kind.IsTail()
		ck := d.applyAction(t, st, s.ID, target,
			edgeAction{target: target, kind: actUnencoded, save: save})
		d.mu.Unlock()
		d.trapHist.Observe(time.Since(start).Nanoseconds())
		d.emitTrap(t, s, target, isNew, edgesDiscovered, epoch, start)
		return ck, d.epi
	}
	d.mu.Unlock()
	d.emitTrap(t, s, target, isNew, edgesDiscovered, epoch, start)

	if tailFix != prog.NoFunc {
		d.tailFixup(t, tailFix)
	}
	if d.triggersFired() {
		d.reencode(t)
	}

	// Execute this invocation as an unencoded call against the state the
	// pass above published.
	d.mu.Lock()
	if s.Kind.IsTail() {
		d.healTailFrameLocked(t)
	}
	snap := d.cur()
	st := t.State.(*tls)
	save := snap.tail[target] && !s.Kind.IsTail()
	ck := d.applyAction(t, st, s.ID, target,
		edgeAction{target: target, kind: actUnencoded, save: save})
	d.mu.Unlock()
	d.trapHist.Observe(time.Since(start).Nanoseconds())
	return ck, d.epi
}

// publishDiscovery appends a newly discovered edge to the thread's
// publication buffer and, when the buffer reaches discoveryBatch,
// registers the whole batch with the graph registry under one d.mu
// acquisition. The buffer mutex is never held across the flush, so the
// locking order stays acyclic with drainAllLocked (d.mu → discMu).
func (d *DACCE) publishDiscovery(t *machine.Thread, e *graph.Edge) {
	buf := t.State.(*tls).disc
	buf.mu.Lock()
	buf.edges = append(buf.edges, e)
	var batch []*graph.Edge
	if len(buf.edges) >= discoveryBatch {
		batch = buf.edges
		buf.edges = nil
	}
	buf.mu.Unlock()
	d.flushBatch(batch)
}

// flushBatch registers a drained publication batch under d.mu. No-op
// for empty batches.
func (d *DACCE) flushBatch(batch []*graph.Edge) {
	if len(batch) == 0 {
		return
	}
	d.mu.Lock()
	d.g.RegisterEdges(batch)
	d.pendingNew = append(d.pendingNew, batch...)
	d.mu.Unlock()
}

// drainAllLocked empties every thread's publication buffer into the
// graph registry and pendingNew. Caller holds d.mu, which also guards
// the d.discBufs registry the iteration walks. Every pass, export and
// registry-reading accessor drains first, so the registered view is
// complete whenever anything deterministic is derived from it;
// per-buffer mutexes (not a world stop) make this safe mid-run, which
// the differential harness's mid-trace snapshot archiving relies on.
func (d *DACCE) drainAllLocked() {
	for _, buf := range d.discBufs {
		buf.mu.Lock()
		batch := buf.edges
		buf.edges = nil
		buf.mu.Unlock()
		if len(batch) > 0 {
			d.g.RegisterEdges(batch)
			d.pendingNew = append(d.pendingNew, batch...)
		}
	}
}

// emitTrap emits the handler-trap (and, for new edges, edge-discovered)
// telemetry. epoch is the gTimeStamp observed at trap entry — captured
// before any lock release or pass, so a re-encoding racing the emission
// cannot misattribute the trap to the epoch it did not run under. The
// event's duration is the handler latency up to emission — it excludes
// any re-encoding pass this trap goes on to trigger, which is measured
// separately as that pass's pause (the always-on trapHist records the
// full wall time, pass included).
func (d *DACCE) emitTrap(t *machine.Thread, s *prog.Site, target prog.FuncID, isNew bool, edgesDiscovered int64, epoch uint32, start time.Time) {
	if d.sink == nil {
		return
	}
	d.sink.Emit(telemetry.Event{
		Kind: telemetry.EvHandlerTrap, Thread: int32(t.ID()),
		Epoch: epoch, Site: s.ID, Fn: target,
		DurNanos: time.Since(start).Nanoseconds(),
	})
	if isNew {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvEdgeDiscovered, Thread: int32(t.ID()),
			Epoch: epoch, Site: s.ID, Fn: target,
			Value: uint64(edgesDiscovered),
		})
	}
}

// siteStub is the generated instrumentation of one call site after its
// first invocation. Exactly one of direct, inline and hash is set.
type siteStub struct {
	d      *DACCE
	site   prog.SiteID
	tail   bool         // the site itself is a tail call
	direct *edgeAction  // direct call: one known edge
	inline []edgeAction // indirect, few targets: compare chain (Fig. 3d)
	hash   *hashTable   // indirect, many targets: one-probe hash (Fig. 4)
}

func (ss *siteStub) Prologue(t *machine.Thread, s *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	if ss.tail {
		ss.d.healTailFrame(t)
	}
	st := t.State.(*tls)
	switch {
	case ss.direct != nil:
		return ss.d.applyAction(t, st, ss.site, target, *ss.direct), ss.d.epi
	case ss.hash != nil:
		t.C.HashProbes++
		t.C.InstrCost += machine.CostHashProbe
		if code, ok := ss.hash.lookup(target); ok {
			act := edgeAction{target: target, kind: actEncoded, code: code}
			return ss.d.applyAction(t, st, ss.site, target, act), ss.d.epi
		}
		// Targets the hash cannot hold (save-wrapped, recursive,
		// unencoded) sit on a short compare chain behind it; only
		// genuinely unknown targets trap.
		for i := range ss.inline {
			t.C.Compares++
			t.C.InstrCost += machine.CostCompare
			if ss.inline[i].target == target {
				return ss.d.applyAction(t, st, ss.site, target, ss.inline[i]), ss.d.epi
			}
		}
		return ss.d.trapApply(t, s, target)
	default:
		for i := range ss.inline {
			t.C.Compares++
			t.C.InstrCost += machine.CostCompare
			if ss.inline[i].target == target {
				return ss.d.applyAction(t, st, ss.site, target, ss.inline[i]), ss.d.epi
			}
		}
		return ss.d.trapApply(t, s, target)
	}
}

func (ss *siteStub) Epilogue(t *machine.Thread, s *prog.Site, target prog.FuncID, c machine.Cookie) {
	ss.d.epi.Epilogue(t, s, target, c)
}

// hashTable is the indirect-target dispatch table of Fig. 4: a single
// probe per invocation; conflicts and unknown targets fall back to the
// runtime handler. Only plainly encoded targets are installed.
type hashTable struct {
	mask  uint32
	slots []hashSlot
}

type hashSlot struct {
	used   bool
	target prog.FuncID
	code   uint64
}

func hashTarget(f prog.FuncID) uint32 { return uint32(f) * 2654435761 }

// buildHash installs plainly encoded targets into the one-probe table
// and returns everything it could not place (save-wrapped, recursive,
// unencoded, or conflicting targets) for the fallback compare chain.
func buildHash(actions []edgeAction) (*hashTable, []edgeAction) {
	size := 4
	for size < 2*len(actions) {
		size *= 2
	}
	h := &hashTable{mask: uint32(size - 1), slots: make([]hashSlot, size)}
	var rest []edgeAction
	for _, a := range actions {
		if a.kind != actEncoded || a.save {
			rest = append(rest, a)
			continue
		}
		i := hashTarget(a.target) & h.mask
		if h.slots[i].used {
			rest = append(rest, a) // conflict (Fig. 4): dispatch behind the table
			continue
		}
		h.slots[i] = hashSlot{used: true, target: a.target, code: a.code}
	}
	return h, rest
}

func (h *hashTable) lookup(target prog.FuncID) (uint64, bool) {
	s := h.slots[hashTarget(target)&h.mask]
	if s.used && s.target == target {
		return s.code, true
	}
	return 0, false
}

// actionFor computes the instrumentation decision for one edge under
// the newest assignment. Reads only the published snapshot and the
// sharded edge-existence maps, so the trap path calls it without d.mu;
// a re-encoding publishes the new epoch's snapshot before rebuilding,
// so the published snapshot is always the newest state, and no pass can
// complete mid-call (the caller is either off-safepoint in the handler
// or holds d.mu with the world stopped).
func (d *DACCE) actionFor(e edgeRef) edgeAction {
	return d.actionForIn(d.cur(), e)
}

// actionForIn is actionFor against an explicit snapshot; the
// delta-rebuild equivalence tests use it to compare the action an edge
// had under the previous epoch against the current one.
func (d *DACCE) actionForIn(snap *encSnap, e edgeRef) edgeAction {
	asn := snap.dicts[len(snap.dicts)-1]
	ge := d.g.Edge(e.site, e.target)
	act := edgeAction{target: e.target}
	if !s_isTail(d.p, e.site) {
		act.save = snap.tail[e.target]
	}
	if ge == nil {
		act.kind = actUnencoded
		return act
	}
	code, ok := asn.CodeOf(ge)
	switch {
	case ok && code.Encoded:
		act.kind = actEncoded
		act.code = code.Value
	case ok && code.Back:
		act.kind = actRecursive
		// Compression mutates the matched entry in place (Count++), and
		// the matching decrement runs in this call's own epilogue. A
		// tail call has no epilogue: its effects are undone wholesale by
		// the enclosing TcStack restore, which truncates the ccStack but
		// cannot reverse an in-place increment of an entry below the
		// save watermark. Tail back edges therefore always push.
		act.compress = snap.compress[edgeKeyOf(ge)] && !act.save && !s_isTail(d.p, e.site)
	default:
		act.kind = actUnencoded
	}
	return act
}

// edgeRef names an edge by site and target.
type edgeRef struct {
	site   prog.SiteID
	target prog.FuncID
}

func s_isTail(p *prog.Program, sid prog.SiteID) bool { return p.Site(sid).Kind.IsTail() }

// siteShardCount is the number of stub-rebuild shards; power of two so
// the shard index is a mask.
const siteShardCount = 64

// siteShard serializes stub rebuilds for the sites hashing to it and
// owns their hash-promotion dedup set. Without it, two threads
// concurrently discovering different targets of one indirect site could
// install stubs out of order and lose the later target until the next
// full pass; with it, the last rebuild to run has seen every inserted
// edge.
type siteShard struct {
	mu     sync.Mutex
	hashed map[prog.SiteID]bool // sites promoted to hash dispatch
}

func (d *DACCE) siteShard(sid prog.SiteID) *siteShard {
	return &d.siteShards[uint32(sid)&(siteShardCount-1)]
}

// rebuildSite regenerates the stub of one call site from the current
// graph and assignment, serialized per site-shard. Safe both from the
// sharded trap path (no d.mu) and under d.mu with the world stopped
// (lock order d.mu → siteShard.mu is respected everywhere).
func (d *DACCE) rebuildSite(sid prog.SiteID) {
	sh := d.siteShard(sid)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	m := d.m.Load() // non-nil: rebuilds only run on an installed encoder
	edges := d.g.EdgesAt(sid)
	if len(edges) == 0 {
		m.SetStub(sid, d.trap)
		return
	}
	s := d.p.Site(sid)
	if !s.Kind.IsIndirect() {
		act := d.actionFor(edgeRef{sid, edges[0].Target})
		if act.kind == actEncoded && act.code == 0 && !act.save {
			// The hottest edge into each node is encoded 0 and needs no
			// instrumentation at all (paper §4).
			m.SetStub(sid, machine.PlainStub())
			return
		}
		a := act
		m.SetStub(sid, &siteStub{d: d, site: sid, tail: s.Kind.IsTail(), direct: &a})
		return
	}
	actions := make([]edgeAction, 0, len(edges))
	for _, e := range edges {
		actions = append(actions, d.actionFor(edgeRef{sid, e.Target}))
	}
	if len(actions) <= d.opt.InlineThreshold {
		m.SetStub(sid, &siteStub{d: d, site: sid, tail: s.Kind.IsTail(), inline: actions})
		return
	}
	// Plainly encoded targets dispatch through the one-probe hash
	// (Fig. 4); the rest — and hash conflicts — stay on a compare chain
	// behind it.
	h, rest := buildHash(actions)
	m.SetStub(sid, &siteStub{d: d, site: sid, tail: s.Kind.IsTail(), hash: h, inline: rest})
	if !sh.hashed[sid] {
		sh.hashed[sid] = true
		if d.sink != nil {
			d.sink.Emit(telemetry.Event{
				Kind: telemetry.EvIndirectPromoted, Thread: -1,
				Epoch: d.cur().epoch, Site: sid, Fn: prog.NoFunc,
				Value: uint64(len(actions)),
			})
		}
	}
}

// rebuildAllLocked regenerates every patched site and reports how many
// it rebuilt. Caller holds d.mu with the world stopped (or before any
// thread runs), with publication buffers drained, so every discovered
// edge is registered and visible.
func (d *DACCE) rebuildAllLocked() int {
	rebuilt := 0
	for sid := 0; sid < d.p.NumSites(); sid++ {
		if len(d.g.EdgesAt(prog.SiteID(sid))) > 0 {
			d.rebuildSite(prog.SiteID(sid))
			rebuilt++
		}
	}
	return rebuilt
}
