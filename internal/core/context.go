// Package core implements DACCE, the paper's contribution: dynamic and
// adaptive calling-context encoding (§3–§5). It is a machine.Scheme:
// every call site starts as a runtime-handler trap; invoked edges are
// added to the call graph and patched with instrumentation; an adaptive
// controller re-encodes the growing graph when its triggers fire,
// translating all live thread state to the new encoding and keeping one
// decode dictionary per epoch so every capture ever taken stays
// decodable (Fig. 6).
package core

import (
	"fmt"
	"sync"

	"dacce/internal/ccdag"
	"dacce/internal/graph"
	"dacce/internal/prog"
)

// CCEntry is one ccStack entry: the encoding context saved before
// invoking an unencoded call edge (paper §3, Fig. 2b). Recursive (back
// edge) entries additionally carry the repetition count used by the
// compression of Fig. 5e.
type CCEntry struct {
	// ID is the context id saved before the call.
	ID uint64
	// Site is the call site of the unencoded edge.
	Site prog.SiteID
	// Target is the invoked function: the head of the sub-path that the
	// unencoded edge starts.
	Target prog.FuncID
	// Count is the number of compressed repetitions beyond the first
	// (Fig. 5e); always 0 for non-recursive entries.
	Count uint32
	// Rec marks entries pushed by a back-edge stub.
	Rec bool
}

func (e CCEntry) String() string {
	if e.Rec {
		return fmt.Sprintf("<%d,s%d,f%d,#%d>", e.ID, e.Site, e.Target, e.Count)
	}
	return fmt.Sprintf("<%d,s%d,f%d>", e.ID, e.Site, e.Target)
}

// tls is the per-thread encoder state the paper keeps in thread-local
// storage (§5.3): the context identifier and the ccStack, plus the
// thread's reusable decode scratch for the sampling controller's
// lock-free heat-estimation decode, and the thread's edge publication
// buffer.
type tls struct {
	id      uint64
	cc      []CCEntry
	scratch decodeScratch

	// lastNode memoizes the interned node of the thread's previous
	// sample: consecutive samples usually land in the same context, so
	// the node-observer path verifies the memo with plain word compares
	// plus one generation probe (dag.Fresh) and re-interns only on a
	// change. The Fresh check guards against DAG reclamation: a node
	// untouched since before the low-water epoch may have been dropped
	// from the intern table, and reusing it as a canonical key would
	// fork identity — the memo is revalidated (re-interned) instead.
	// The pointer itself can never dangle; dropped nodes remain valid
	// memory, they just lose canonicality.
	lastNode *ccdag.Node

	// disc is this thread's edge publication buffer. The owner appends
	// under its mutex and flushes a full batch itself; drainAllLocked
	// empties every buffer before any pass, export or registry read.
	disc *discBuf
}

// discBuf is one thread's edge publication buffer. DACCE registers
// every buffer it hands out in its own d.mu-guarded list, so mid-run
// drains iterate that list and never read another thread's State field
// (which the spawning goroutine writes with no synchronization the
// drainer could order against). The buffer's own mutex — never held
// together with anything but d.mu on the draining side — keeps mid-run
// exports safe without stopping the world.
type discBuf struct {
	mu    sync.Mutex
	edges []*graph.Edge
}

// Capture is an immutable snapshot of a thread's context encoding,
// tagged with the epoch whose decode dictionary interprets it (paper
// §4.1).
type Capture struct {
	// Epoch is the gTimeStamp at capture time.
	Epoch uint32
	// ID is the context identifier.
	ID uint64
	// Fn is the function the thread was in.
	Fn prog.FuncID
	// Root is the thread's entry function, where decoding stops.
	Root prog.FuncID
	// CC is a copy of the ccStack.
	CC []CCEntry
	// Spawn is the parent thread's context at spawn time, or nil for
	// the initial thread; a full decode prepends its decode (paper
	// §5.3: "the sub-path to create the current thread is also
	// decoded").
	Spawn *Capture
}

// Fingerprint returns a stable 64-bit hash of the capture — epoch, id,
// function, every ccStack entry and the spawn chain — suitable for
// deduplicating contexts (event logging, race reports) without decoding
// them.
func (c *Capture) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(c.Epoch))
	mix(c.ID)
	mix(uint64(uint32(c.Fn)))
	mix(uint64(uint32(c.Root)))
	for _, e := range c.CC {
		mix(e.ID)
		mix(uint64(uint32(e.Site)))
		mix(uint64(uint32(e.Target)))
		v := uint64(e.Count)
		if e.Rec {
			v |= 1 << 63
		}
		mix(v)
	}
	if c.Spawn != nil {
		mix(c.Spawn.Fingerprint())
	}
	return h
}

// OnStack reports whether the capture's id lies in the marker range
// (maxID, 2*maxID+1] that indicates saved context on the ccStack.
func (c *Capture) OnStack(maxID uint64) bool { return c.ID > maxID }

func (c *Capture) String() string {
	return fmt.Sprintf("capture{ts=%d id=%d fn=%d cc=%v}", c.Epoch, c.ID, c.Fn, c.CC)
}

// ContextFrame is one step of a decoded calling context: function Fn
// entered through call site Site of its caller (prog.NoSite for the
// root).
type ContextFrame struct {
	Site prog.SiteID
	Fn   prog.FuncID
}

// Context is a decoded calling context, root first. It matches the
// machine's shadow-stack representation frame for frame.
type Context []ContextFrame

// Funcs returns just the function ids of the context.
func (c Context) Funcs() []prog.FuncID {
	out := make([]prog.FuncID, len(c))
	for i, f := range c {
		out[i] = f.Fn
	}
	return out
}

// String renders the context as "main→f1→f7".
func (c Context) String() string {
	s := ""
	for i, f := range c {
		if i > 0 {
			s += "→"
		}
		s += fmt.Sprintf("f%d", f.Fn)
	}
	return s
}

// Pretty renders the context with function names resolved from p.
func (c Context) Pretty(p *prog.Program) string {
	s := ""
	for i, f := range c {
		if i > 0 {
			s += " → "
		}
		s += p.Funcs[f.Fn].Name
	}
	return s
}

// Run is a maximal run of identical consecutive frames in a context —
// the normal form deep self-recursion compresses to. Count is the
// total number of occurrences (≥ 1).
type Run struct {
	Frame ContextFrame
	Count int
}

// Runs returns the context in run-length form: every maximal streak of
// identical (site, fn) frames collapsed to one Run. Two contexts are
// Equal iff their Runs are identical, but Runs survive rendering deep
// recursion without producing thousand-frame strings, which is what
// the differential harness diffs and reports.
func (c Context) Runs() []Run {
	var out []Run
	for _, f := range c {
		if n := len(out); n > 0 && out[n-1].Frame == f {
			out[n-1].Count++
			continue
		}
		out = append(out, Run{Frame: f, Count: 1})
	}
	return out
}

// Compact renders the context run-length compressed: "f0→(f7)x12→f9".
func (c Context) Compact() string {
	s := ""
	for i, r := range c.Runs() {
		if i > 0 {
			s += "→"
		}
		if r.Count > 1 {
			s += fmt.Sprintf("(f%d)x%d", r.Frame.Fn, r.Count)
		} else {
			s += fmt.Sprintf("f%d", r.Frame.Fn)
		}
	}
	return s
}

// DiffContexts returns "" when got and want are identical frame for
// frame, and otherwise a one-line description of the first divergence:
// the differing index, both frames at it, and both contexts in compact
// form. Every cross-encoder comparison in the repository reports
// through this helper so mismatches read the same regardless of which
// baseline produced them.
func DiffContexts(got, want Context) string {
	if got.Equal(want) {
		return ""
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	at := n
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			at = i
			break
		}
	}
	frame := func(c Context, i int) string {
		if i >= len(c) {
			return "<end>"
		}
		return fmt.Sprintf("(s%d,f%d)", c[i].Site, c[i].Fn)
	}
	return fmt.Sprintf("first diff at frame %d: got %s want %s; got=%s (%d frames) want=%s (%d frames)",
		at, frame(got, at), frame(want, at), got.Compact(), len(got), want.Compact(), len(want))
}
