package core
