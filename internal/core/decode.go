package core

import (
	"fmt"
	"time"

	"dacce/internal/blenc"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

// maxDecodeSteps bounds the decoder against corrupted input.
const maxDecodeSteps = 1 << 22

// Decode decodes a capture into the full calling context, root first
// (Algorithm 1 plus the expansion of compressed recursion counts). For
// captures taken on spawned threads the spawning path is prepended
// (paper §5.3). Safe to call during or after the run; lock-free — the
// decode walks the capture epoch's immutable snapshot index, never the
// live graph.
func (d *DACCE) Decode(c *Capture) (Context, error) {
	start := time.Now()
	snap := d.cur()
	dec := &Decoder{P: d.p, G: d.g, Dicts: snap.dicts, idx: snap.idx}
	ctx, err := dec.decode(c, true)
	dur := time.Since(start).Nanoseconds()
	d.decodeHist.Observe(dur)
	if d.sink != nil {
		d.sink.Emit(telemetry.Event{
			Kind: telemetry.EvDecodeRequest, Thread: -1,
			Epoch: c.Epoch, Site: prog.NoSite, Fn: c.Fn,
			Err: err != nil, Value: uint64(len(ctx)), DurNanos: dur,
		})
	}
	return ctx, err
}

// Decoder turns captures back into calling contexts given a program, a
// call graph and the per-epoch decode dictionaries. DACCE wraps one
// internally; the PCCE baseline reuses it with a single static epoch.
type Decoder struct {
	P     *prog.Program
	G     *graph.Graph
	Dicts []*blenc.Assignment

	// idx optionally holds one immutable per-epoch decode index,
	// parallel to Dicts. When an epoch has one, decoding walks it
	// instead of G, so the decoder is safe against concurrent graph
	// growth; when absent (external constructions like the PCCE
	// baseline) the decoder falls back to walking G's in-edge lists,
	// which the caller must keep quiescent.
	idx []*decodeIndex
}

// decodeScratch holds a thread's reusable decode buffers so the
// sampling controller's per-sample heat-estimation decode allocates
// nothing at steady state. Owned by one thread (it lives in tls),
// reused across samples.
type decodeScratch struct {
	cc  []CCEntry
	rev []ContextFrame
}

// Decode decodes a capture, including the spawn-path prefix. The caller
// must ensure the graph is not mutated concurrently (not a concern when
// the decoder carries per-epoch indexes).
func (dec *Decoder) Decode(c *Capture) (Context, error) {
	return dec.decode(c, true)
}

// DecodeSample decodes the capture of a machine sample.
func (d *DACCE) DecodeSample(s machine.Sample) (Context, error) {
	c, ok := s.Capture.(*Capture)
	if !ok {
		return nil, fmt.Errorf("core: sample does not hold a DACCE capture")
	}
	return d.Decode(c)
}

// DecodeCapture decodes an untyped scheme capture — the uniform decode
// shape every context tracker in the repository exposes, so the
// differential harness compares them without per-package conversions.
func (d *DACCE) DecodeCapture(capture any) (Context, error) {
	c, ok := capture.(*Capture)
	if !ok {
		return nil, fmt.Errorf("core: capture is %T, not a DACCE capture", capture)
	}
	return d.Decode(c)
}

func (dec *Decoder) decode(c *Capture, withSpawn bool) (Context, error) {
	var prefix Context
	if withSpawn && c.Spawn != nil {
		p, err := dec.decode(c.Spawn, true)
		if err != nil {
			return nil, fmt.Errorf("decoding spawn path: %w", err)
		}
		prefix = p
	}
	body, err := dec.decodeOne(c, nil)
	if err != nil {
		return nil, err
	}
	return append(prefix, body...), nil
}

// step is one decodable in-edge at a given epoch.
type step struct {
	site   prog.SiteID
	caller prog.FuncID
	code   uint64
}

// findEdge returns the unique encoded in-edge of fn whose code range
// contains id at the dictionary's epoch (Algorithm 1 lines 26–33:
// En(e) ≤ id < En(e)+numCC(p)), or ok=false. With a per-epoch index the
// lookup walks only fn's frozen encoded in-edges; the graph fallback
// walks the live in-edge list and filters by the dictionary.
func (dec *Decoder) findEdge(dict *blenc.Assignment, ix *decodeIndex, fn prog.FuncID, id uint64) (step, bool) {
	if ix != nil {
		for _, e := range ix.in[fn] {
			if e.code <= id && id < e.code+e.ncc {
				return step{site: e.site, caller: e.caller, code: e.code}, true
			}
		}
		return step{}, false
	}
	n := dec.G.Node(fn)
	if n == nil {
		return step{}, false
	}
	for _, e := range n.In {
		code, ok := dict.Codes[graph.EdgeKey{Site: e.Site, Target: e.Target}]
		if !ok || !code.Encoded {
			continue // edge absent at that epoch, or unencoded
		}
		ncc := dict.NumCC[e.Caller]
		if code.Value <= id && id < code.Value+ncc {
			return step{site: e.Site, caller: e.Caller, code: code.Value}, true
		}
	}
	return step{}, false
}

// epochIndex returns the decode index for an epoch, or nil when the
// decoder has none (external Decoder constructions).
func (dec *Decoder) epochIndex(epoch uint32) *decodeIndex {
	if int(epoch) < len(dec.idx) {
		return dec.idx[epoch]
	}
	return nil
}

// decodeOne decodes the thread-local part of a capture (no spawn
// prefix). The result is built deepest-frame-first and reversed at the
// end. A non-nil scratch supplies (and, grown, receives back) the two
// working buffers, making repeated decodes on one thread
// allocation-free; the returned Context then aliases scratch.rev and is
// only valid until the next decode with the same scratch.
func (dec *Decoder) decodeOne(c *Capture, scratch *decodeScratch) (Context, error) {
	rev, err := dec.decodeOneRev(c, scratch)
	if err != nil {
		return nil, err
	}
	// Reverse to root-first order (in place: scratch.rev, when present,
	// aliases rev and stays reversed with it).
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// decodeOneRev is decodeOne without the final reversal: the frames come
// back deepest-first, exactly as the reverse walk of Algorithm 1
// produced them. The node-interning decode path consumes this order
// directly — it walks the slice backwards to intern root-first — so the
// reversal (and with it any touching of the frames after the walk) is
// confined to the slice-materializing path.
func (dec *Decoder) decodeOneRev(c *Capture, scratch *decodeScratch) ([]ContextFrame, error) {
	if int(c.Epoch) >= len(dec.Dicts) {
		return nil, fmt.Errorf("core: capture epoch %d has no dictionary", c.Epoch)
	}
	if err := dec.validate(c); err != nil {
		return nil, err
	}
	dict := dec.Dicts[c.Epoch]
	ix := dec.epochIndex(c.Epoch)
	maxID := dict.MaxID

	ifun := c.Fn
	id := c.ID
	var cc []CCEntry
	var rev []ContextFrame
	if scratch != nil {
		cc = append(scratch.cc[:0], c.CC...)
		rev = scratch.rev[:0]
	} else {
		cc = append([]CCEntry(nil), c.CC...)
	}
	onstack := false
	adjust := func() {
		if id > maxID {
			id -= maxID + 1
			onstack = true
		}
	}
	adjust()

	// rev[i].Site is the call site through which rev[i].Fn was entered;
	// filled in when the incoming edge is discovered.
	rev = append(rev, ContextFrame{Site: prog.NoSite, Fn: ifun})
	steps := 0
	for {
		if steps++; steps > maxDecodeSteps {
			return nil, fmt.Errorf("core: decode exceeded %d steps (corrupt capture?)", maxDecodeSteps)
		}

		// Pop phase (Algorithm 1 lines 9–25): at the head of a sub-path
		// whose context was saved, restore the saved encoding.
		for id == 0 && onstack {
			if len(cc) == 0 {
				return nil, fmt.Errorf("core: id marker set at f%d but ccStack is empty", ifun)
			}
			top := cc[len(cc)-1]
			if top.Target != ifun {
				break
			}
			cc = cc[:len(cc)-1]
			onstack = false
			rev[len(rev)-1].Site = top.Site
			caller := dec.P.Site(top.Site).Caller

			// Expand compressed repetitions (Fig. 5e): each count is
			// one more traversal of the back edge, separated by the
			// sub-path whose encoding is the entry's saved id.
			for k := uint32(0); k < top.Count; k++ {
				var err error
				rev, err = dec.segment(rev, dict, ix, top.ID, caller, ifun, top.Site)
				if err != nil {
					return nil, fmt.Errorf("expanding repetition %d of %v: %w", k, top, err)
				}
			}

			ifun = caller
			id = top.ID
			adjust()
			rev = append(rev, ContextFrame{Site: prog.NoSite, Fn: ifun})
		}

		if id == 0 && !onstack && len(cc) == 0 && ifun == c.Root {
			break
		}

		// Acyclic sub-path phase (lines 26–33): follow the unique
		// encoded in-edge whose range contains id.
		st, ok := dec.findEdge(dict, ix, ifun, id)
		if !ok {
			return nil, fmt.Errorf("core: stuck decoding at f%d id=%d onstack=%v |cc|=%d (epoch %d)", ifun, id, onstack, len(cc), c.Epoch)
		}
		rev[len(rev)-1].Site = st.site
		ifun = st.caller
		id -= st.code
		rev = append(rev, ContextFrame{Site: prog.NoSite, Fn: ifun})
	}

	if scratch != nil {
		scratch.cc = cc[:0]
		scratch.rev = rev
	}
	return rev, nil
}

// validate bounds-checks a capture before decoding: captures may come
// from serialized external input (daccedecode), so corruption must
// yield errors, never panics.
func (dec *Decoder) validate(c *Capture) error {
	nf, ns := len(dec.P.Funcs), len(dec.P.Sites)
	if int(c.Fn) < 0 || int(c.Fn) >= nf {
		return fmt.Errorf("core: capture function f%d out of range", c.Fn)
	}
	if int(c.Root) < 0 || int(c.Root) >= nf {
		return fmt.Errorf("core: capture root f%d out of range", c.Root)
	}
	for i, e := range c.CC {
		if int(e.Site) < 0 || int(e.Site) >= ns {
			return fmt.Errorf("core: ccStack[%d] site %d out of range", i, e.Site)
		}
		if int(e.Target) < 0 || int(e.Target) >= nf {
			return fmt.Errorf("core: ccStack[%d] target f%d out of range", i, e.Target)
		}
	}
	return nil
}

// segment decodes one repetition body of a compressed recursive entry:
// the acyclic sub-path from head (the back edge's target) to from (the
// back edge's caller), whose encoding is eid. It appends the frames to
// rev in deepest-first order — from, intermediate nodes, then head
// entered via recSite — and returns the grown slice.
func (dec *Decoder) segment(rev []ContextFrame, dict *blenc.Assignment, ix *decodeIndex, eid uint64, from, head prog.FuncID, recSite prog.SiteID) ([]ContextFrame, error) {
	maxID := dict.MaxID
	if eid <= maxID {
		return nil, fmt.Errorf("core: compressed entry id %d not in marker range (maxID %d)", eid, maxID)
	}
	id := eid - (maxID + 1)
	cur := from
	steps := 0
	for !(cur == head && id == 0) {
		if steps++; steps > maxDecodeSteps {
			return nil, fmt.Errorf("core: repetition segment exceeded %d steps", maxDecodeSteps)
		}
		st, ok := dec.findEdge(dict, ix, cur, id)
		if !ok {
			return nil, fmt.Errorf("core: stuck in segment at f%d id=%d", cur, id)
		}
		rev = append(rev, ContextFrame{Site: st.site, Fn: cur})
		id -= st.code
		cur = st.caller
	}
	rev = append(rev, ContextFrame{Site: recSite, Fn: head})
	return rev, nil
}

// ShadowContext converts a machine shadow stack (optionally preceded by
// the thread's spawn shadow) to a Context, the ground truth a decode is
// validated against.
func ShadowContext(spawn, shadow []machine.Frame) Context {
	out := make(Context, 0, len(spawn)+len(shadow))
	for _, f := range spawn {
		out = append(out, ContextFrame{Site: f.Site, Fn: f.Fn})
	}
	for _, f := range shadow {
		out = append(out, ContextFrame{Site: f.Site, Fn: f.Fn})
	}
	return out
}

// Equal reports whether two contexts are identical frame for frame.
func (c Context) Equal(o Context) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}
