// Package stackwalk implements the straightforward baseline the paper's
// introduction argues against (§1, §7): no per-call instrumentation at
// all, and every context request walks the stack at a per-frame cost —
// cheap to arm, expensive to fire. Valgrind and HPCToolkit use this
// strategy; the cross-validation module of §6.1 uses it as ground
// truth, and so do this repository's tests.
package stackwalk

import (
	"errors"

	"dacce/internal/core"
	"dacce/internal/machine"
)

// Scheme is the stack-walking baseline.
type Scheme struct{}

// New returns a stack-walking scheme.
func New() *Scheme { return &Scheme{} }

// Name implements machine.Scheme.
func (*Scheme) Name() string { return "stackwalk" }

// Install implements machine.Scheme: no instrumentation.
func (*Scheme) Install(m *machine.Machine) {}

// ThreadStart implements machine.Scheme.
func (s *Scheme) ThreadStart(t, parent *machine.Thread) {
	if parent != nil {
		t.SpawnCapture = s.Capture(parent)
	}
}

// ThreadExit implements machine.Scheme.
func (*Scheme) ThreadExit(t *machine.Thread) {}

// Capture implements machine.Scheme: walk the hardware stack, paying
// per frame. The walker sees the physical stack, so functions that
// tail-called onward are absent — an inherent limitation of walking
// (paper §5.2 is why encoding-based schemes must treat tails
// specially).
func (s *Scheme) Capture(t *machine.Thread) any {
	frames := t.PhysicalStack()
	t.C.InstrCost += int64(len(frames)) * machine.CostStackWalkFrame
	ctx := make(core.Context, len(frames))
	for i, f := range frames {
		ctx[i] = core.ContextFrame{Site: f.Site, Fn: f.Fn}
	}
	if sc, ok := t.SpawnCapture.(core.Context); ok {
		full := make(core.Context, 0, len(sc)+len(ctx))
		full = append(full, sc...)
		full = append(full, ctx...)
		return full
	}
	return ctx
}

// Decode returns the walked context as-is: stack walking needs no
// decoding, which is exactly why it is so expensive to *collect*.
func (*Scheme) Decode(capture any) (core.Context, error) {
	ctx, ok := capture.(core.Context)
	if !ok {
		return nil, errors.New("stackwalk: capture is not a walked context")
	}
	return ctx, nil
}

// DecodeCapture is Decode under the uniform decode shape shared with
// the other context trackers.
func (s *Scheme) DecodeCapture(capture any) (core.Context, error) {
	return s.Decode(capture)
}
