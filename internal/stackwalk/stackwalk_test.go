package stackwalk

import (
	"testing"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/progtest"
)

func TestWalkMatchesShadow(t *testing.T) {
	fx, b := progtest.Fig1()
	p := b.MustBuild()
	fx.P = p
	sc := progtest.NewScript(p)
	sc.Root = []progtest.Call{
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DE")))),
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"), progtest.By(fx.S("DF")))),
	}
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	s := New()
	m := machine.New(p, s, machine.Config{SampleEvery: 1})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.InstrCost == 0 {
		t.Error("walking charged nothing")
	}
	for _, sm := range rs.Samples {
		ctx, err := s.Decode(sm.Capture)
		if err != nil {
			t.Fatal(err)
		}
		if want := core.ShadowContext(nil, sm.Shadow); !ctx.Equal(want) {
			t.Errorf("walk %v != shadow %v", ctx, want)
		}
	}
}

func TestWalkMissesTailCallers(t *testing.T) {
	fx, b := progtest.Fig7()
	p := b.MustBuild()
	fx.P = p
	var walked core.Context
	s := New()
	sc := progtest.NewScript(p)
	sc.Root = []progtest.Call{
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"),
			progtest.Call{Site: fx.S("DF"), Target: prog.NoFunc, Hook: func(x prog.Exec) {
				c, err := s.Decode(s.Capture(x.(*machine.Thread)))
				if err != nil {
					t.Error(err)
				}
				walked = c
			}})),
	}
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	m := machine.New(p, s, machine.Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The true call path is A→C→D→F, but C's frame was replaced by the
	// tail call: the walker sees A→D→F. This inherent blind spot is why
	// encoding schemes must instrument tails instead (paper §5.2).
	if len(walked) != 3 || walked[0].Fn != fx.F("A") || walked[1].Fn != fx.F("D") || walked[2].Fn != fx.F("F") {
		t.Errorf("walked %v, want A→D→F", walked)
	}
}

func TestWalkCostScalesWithDepth(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	mf := b.CallSite(mainF, f)
	ff := b.CallSite(f, f)
	s := New()
	var shallow, deep int64
	b.Body(mainF, func(x prog.Exec) {
		th := x.(*machine.Thread)
		before := th.C.InstrCost
		s.Capture(th)
		shallow = th.C.InstrCost - before
		x.Call(mf, prog.NoFunc)
	})
	b.Body(f, func(x prog.Exec) {
		if x.Depth() < 30 {
			x.Call(ff, prog.NoFunc)
			return
		}
		th := x.(*machine.Thread)
		before := th.C.InstrCost
		s.Capture(th)
		deep = th.C.InstrCost - before
	})
	p := b.MustBuild()
	m := machine.New(p, s, machine.Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if deep <= shallow*10 {
		t.Errorf("deep walk cost %d not much larger than shallow %d", deep, shallow)
	}
}
