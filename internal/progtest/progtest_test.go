package progtest

import (
	"testing"

	"dacce/internal/machine"
	"dacce/internal/prog"
)

// TestScriptDrivesExactSequence confirms the fixture driver executes
// the scripted call tree in order — everything the paper-example tests
// rely on.
func TestScriptDrivesExactSequence(t *testing.T) {
	fx, b := Fig1()
	p := b.MustBuild()
	fx.P = p
	sc := NewScript(p)
	var order []prog.FuncID
	hook := func(x prog.Exec) { order = append(order, x.SelfID()) }
	sc.RootHook = hook
	sc.Root = []Call{
		{Site: fx.S("AB"), Target: prog.NoFunc, Hook: hook,
			Sub: []Call{{Site: fx.S("BD"), Target: prog.NoFunc, Hook: hook}}},
		{Site: fx.S("AC"), Target: prog.NoFunc, Hook: hook},
	}
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	m := machine.New(p, machine.NullScheme{}, machine.Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []prog.FuncID{fx.F("A"), fx.F("B"), fx.F("D"), fx.F("C")}
	if len(order) != len(want) {
		t.Fatalf("visit order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("visit order %v, want %v", order, want)
		}
	}
	if rs.C.Calls != 3 {
		t.Errorf("calls = %d, want 3", rs.C.Calls)
	}
}

// TestFixtureLookupsPanicOnTypos keeps test fixtures loud.
func TestFixtureLookupsPanicOnTypos(t *testing.T) {
	fx, _ := Fig2()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown site name did not panic")
		}
	}()
	fx.S("NOPE")
}

// TestAllFiguresBuild sanity-checks every paper-figure fixture.
func TestAllFiguresBuild(t *testing.T) {
	builders := []struct {
		name string
		mk   func() (*Fixture, *prog.Builder)
	}{
		{"Fig1", Fig1}, {"Fig2", Fig2}, {"Fig3", Fig3}, {"Fig5", Fig5}, {"Fig7", Fig7},
	}
	for _, tc := range builders {
		fx, b := tc.mk()
		p, err := b.Build()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if fx.Fn["A"] != p.Entry {
			t.Errorf("%s: entry is not A", tc.name)
		}
	}
}
