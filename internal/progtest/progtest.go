// Package progtest provides test fixtures shared by the encoder tests:
// the call-graph examples worked through in the paper's figures, and a
// Script driver that executes an exact, hand-written call tree so tests
// can reproduce the paper's example contexts (ACDF, ACEI, ADACDAD, …)
// invocation for invocation. Single-threaded only.
package progtest

import (
	"fmt"

	"dacce/internal/prog"
)

// Call is one scripted invocation: the site to invoke, the run-time
// target for indirect sites, and the calls the callee makes in turn.
type Call struct {
	Site   prog.SiteID
	Target prog.FuncID
	Sub    []Call
	// Hook, if set, runs inside the callee before its sub-calls (used
	// to force re-encodings or take captures at exact points).
	Hook func(x prog.Exec)
}

// By builds a Call with sub-calls.
func By(site prog.SiteID, sub ...Call) Call {
	return Call{Site: site, Target: prog.NoFunc, Sub: sub}
}

// ByT builds an indirect Call with an explicit target.
func ByT(site prog.SiteID, target prog.FuncID, sub ...Call) Call {
	return Call{Site: site, Target: target, Sub: sub}
}

// Script drives every function body from a nested call tree. Install
// the script's Body on every function, then set Root before running.
type Script struct {
	p *prog.Program
	// Root is the call tree executed by the entry function.
	Root []Call
	// RootHook runs inside the entry function before its calls.
	RootHook func(x prog.Exec)

	pending []scriptFrame
}

type scriptFrame struct {
	calls []Call
	hook  func(x prog.Exec)
}

// NewScript returns a script for program p.
func NewScript(p *prog.Program) *Script { return &Script{p: p} }

// Body returns the body shared by all scripted functions.
func (s *Script) Body() prog.Body {
	return func(x prog.Exec) {
		var f scriptFrame
		if n := len(s.pending); n > 0 {
			f = s.pending[n-1]
			s.pending = s.pending[:n-1]
		} else {
			f = scriptFrame{calls: s.Root, hook: s.RootHook}
		}
		if f.hook != nil {
			f.hook(x)
		}
		for _, c := range f.calls {
			s.pending = append(s.pending, scriptFrame{calls: c.Sub, hook: c.Hook})
			site := s.p.Site(c.Site)
			if site.Kind.IsTail() {
				x.TailCall(c.Site, c.Target)
			} else {
				x.Call(c.Site, c.Target)
			}
		}
	}
}

// InstallAll installs the script body on every declared function.
func (s *Script) InstallAll(b *prog.Builder, funcs ...prog.FuncID) {
	for _, f := range funcs {
		b.Body(f, s.Body())
	}
}

// Fixture bundles a built program with name lookups for tests.
type Fixture struct {
	P     *prog.Program
	Fn    map[string]prog.FuncID
	Sites map[string]prog.SiteID
}

// F returns a function id by name, failing loudly on typos.
func (fx *Fixture) F(name string) prog.FuncID {
	id, ok := fx.Fn[name]
	if !ok {
		panic(fmt.Sprintf("progtest: unknown function %q", name))
	}
	return id
}

// S returns a site id by name.
func (fx *Fixture) S(name string) prog.SiteID {
	id, ok := fx.Sites[name]
	if !ok {
		panic(fmt.Sprintf("progtest: unknown site %q", name))
	}
	return id
}

// build assembles a fixture from function names and site specs of the
// form caller→callee. The entry is always "A" unless a function named
// "main" exists.
type siteSpec struct {
	name   string
	caller string
	target string // "" for indirect
	kind   prog.Kind
}

func assemble(funcs []string, sites []siteSpec, declared map[string][]string) (*Fixture, *prog.Builder) {
	b := prog.NewBuilder()
	fx := &Fixture{Fn: map[string]prog.FuncID{}, Sites: map[string]prog.SiteID{}}
	for _, f := range funcs {
		fx.Fn[f] = b.Func(f)
	}
	for _, s := range sites {
		var id prog.SiteID
		switch s.kind {
		case prog.Normal:
			id = b.CallSite(fx.Fn[s.caller], fx.Fn[s.target])
		case prog.Tail:
			id = b.TailSite(fx.Fn[s.caller], fx.Fn[s.target])
		case prog.Indirect:
			var decl []prog.FuncID
			for _, d := range declared[s.name] {
				decl = append(decl, fx.Fn[d])
			}
			id = b.IndirectSite(fx.Fn[s.caller], decl...)
		case prog.PLT:
			id = b.PLTSite(fx.Fn[s.caller], fx.Fn[s.target])
		}
		fx.Sites[s.name] = id
	}
	b.Entry(fx.Fn[funcs[0]])
	return fx, b
}

// Fig1 builds the diamond of the paper's Fig. 1: A→{B,C}, {B,C}→D,
// D→{E,F}. Only edge CD needs instrumentation once encoded.
func Fig1() (*Fixture, *prog.Builder) {
	return assemble(
		[]string{"A", "B", "C", "D", "E", "F"},
		[]siteSpec{
			{"AB", "A", "B", prog.Normal},
			{"AC", "A", "C", prog.Normal},
			{"BD", "B", "D", prog.Normal},
			{"CD", "C", "D", prog.Normal},
			{"DE", "D", "E", prog.Normal},
			{"DF", "D", "F", prog.Normal},
		}, nil)
}

// Fig2 builds the graph of Fig. 2: A→C→D plus the (initially
// unencoded) edge A→D.
func Fig2() (*Fixture, *prog.Builder) {
	return assemble(
		[]string{"A", "C", "D"},
		[]siteSpec{
			{"AC", "A", "C", prog.Normal},
			{"CD", "C", "D", prog.Normal},
			{"AD", "A", "D", prog.Normal},
		}, nil)
}

// Fig3 builds the indirect-call example of Fig. 3: A→{B,C}, B→D, C→D,
// D→F, plus C's indirect call (targets E at run time) and E→I.
func Fig3() (*Fixture, *prog.Builder) {
	return assemble(
		[]string{"A", "B", "C", "D", "E", "F", "I"},
		[]siteSpec{
			{"AB", "A", "B", prog.Normal},
			{"AC", "A", "C", prog.Normal},
			{"BD", "B", "D", prog.Normal},
			{"CD", "C", "D", prog.Normal},
			{"DF", "D", "F", prog.Normal},
			{"Cind", "C", "", prog.Indirect},
			{"EI", "E", "I", prog.Normal},
		},
		map[string][]string{"Cind": {"E", "I"}})
}

// Fig5 builds the recursion example of Fig. 5: A→C, C→D, A→D and the
// back edge D→A.
func Fig5() (*Fixture, *prog.Builder) {
	return assemble(
		[]string{"A", "C", "D"},
		[]siteSpec{
			{"AC", "A", "C", prog.Normal},
			{"CD", "C", "D", prog.Normal},
			{"AD", "A", "D", prog.Normal},
			{"DA", "D", "A", prog.Normal},
		}, nil)
}

// Fig7 builds the tail-call example of Fig. 7: A→{B,C}, B→D, C→D as a
// tail call, D→{E,F}.
func Fig7() (*Fixture, *prog.Builder) {
	return assemble(
		[]string{"A", "B", "C", "D", "E", "F"},
		[]siteSpec{
			{"AB", "A", "B", prog.Normal},
			{"AC", "A", "C", prog.Normal},
			{"BD", "B", "D", prog.Normal},
			{"CD", "C", "D", prog.Tail},
			{"DE", "D", "E", prog.Normal},
			{"DF", "D", "F", prog.Normal},
		}, nil)
}
