package cliutil

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"dacce/internal/ccprof"
	"dacce/internal/core"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

// Profiler is the shared observability-plane flag set: the always-on
// streaming context profiler (-ccprof-out, -debug-listen) and the SLO
// watchdog thresholds (-slo-*). It is wired in three steps: Observer
// hands the profiler to core.Options.ContextObserver, Start arms the
// watchdog and debug endpoints once the encoder exists, Finish writes
// -ccprof-out and tears the background pieces down.
type Profiler struct {
	CcprofOut   string
	DebugListen string
	PauseP99    time.Duration
	DecodeP99   time.Duration
	TrapBacklog int64
	CheckEvery  time.Duration

	prof     *ccprof.Streaming
	watchdog *telemetry.Watchdog
	stopFns  []func()
}

// AddProfiler registers the profiler and SLO flags on fs.
func AddProfiler(fs *flag.FlagSet) *Profiler {
	p := &Profiler{}
	fs.StringVar(&p.CcprofOut, "ccprof-out", "", "write the aggregated context profile to this file at exit (pprof protobuf; folded text when the name ends in .folded)")
	fs.StringVar(&p.DebugListen, "debug-listen", "", "serve /debug/ccprof and /debug/vars on this address (e.g. localhost:6060) for the duration of the run")
	fs.DurationVar(&p.PauseP99, "slo-pause-p99", 0, "SLO: breach when the re-encode pause p99 exceeds this duration (0 disables)")
	fs.DurationVar(&p.DecodeP99, "slo-decode-p99", 0, "SLO: breach when the decode latency p99 exceeds this duration (0 disables)")
	fs.Int64Var(&p.TrapBacklog, "slo-trap-backlog", 0, "SLO: breach when the pending-trap backlog exceeds this count (0 disables)")
	fs.DurationVar(&p.CheckEvery, "slo-check-every", time.Second, "how often the SLO watchdog samples its rules")
	return p
}

// SLOActive reports whether any SLO threshold is armed.
func (p *Profiler) SLOActive() bool {
	return p.PauseP99 > 0 || p.DecodeP99 > 0 || p.TrapBacklog > 0
}

// EnsureFlight turns on t's flight recorder when SLO rules are armed
// but -flight-recorder was not given, so a breach always has a ring of
// recent events to dump. Call before the first t.Sink().
func (p *Profiler) EnsureFlight(t *Telemetry) {
	if p.SLOActive() && t.FlightN == 0 {
		t.FlightN = telemetry.DefaultFlightCapacity
	}
}

// Observer returns the streaming profiler over prg, creating it on
// first call — place it in core.Options.ContextObserver.
func (p *Profiler) Observer(prg *prog.Program) *ccprof.Streaming {
	if p.prof == nil {
		p.prof = ccprof.NewStreaming(prg)
	}
	return p.prof
}

// Watchdog returns the armed watchdog, or nil before Start (or when no
// SLO threshold was given).
func (p *Profiler) Watchdog() *telemetry.Watchdog { return p.watchdog }

// Start arms the observability plane around a live encoder: SLO rules
// over the encoder's always-on pause/decode histograms and trap
// backlog checked every -slo-check-every into sink, and the debug HTTP
// listener when -debug-listen is set. mts may be nil (no /debug/vars
// content beyond a pointer to -metrics). Returns p for chaining.
func (p *Profiler) Start(d *core.DACCE, sink telemetry.Sink, mts *telemetry.Metrics) (*Profiler, error) {
	if p.SLOActive() {
		w := telemetry.NewWatchdog(sink)
		w.Add(telemetry.SLORule{
			Name:   "pause_p99_ns",
			Source: telemetry.QuantileSource(d.PauseHist(), 0.99),
			Max:    p.PauseP99.Nanoseconds(),
		})
		w.Add(telemetry.SLORule{
			Name:   "decode_p99_ns",
			Source: telemetry.QuantileSource(d.DecodeHist(), 0.99),
			Max:    p.DecodeP99.Nanoseconds(),
		})
		w.Add(telemetry.SLORule{Name: "trap_backlog", Source: d.TrapBacklog, Max: p.TrapBacklog})
		p.watchdog = w
		p.stopFns = append(p.stopFns, w.Watch(p.CheckEvery))
	}
	if p.DebugListen != "" {
		mux := http.NewServeMux()
		if p.prof != nil {
			mux.Handle("/debug/ccprof", p.prof.Handler())
		}
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
			if mts == nil {
				http.Error(w, "metrics sink not enabled; run with -metrics", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = mts.WriteJSON(w)
		})
		ln, err := net.Listen("tcp", p.DebugListen)
		if err != nil {
			return nil, fmt.Errorf("debug listener: %w", err)
		}
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "debug: serving /debug/ccprof and /debug/vars on http://%s\n", ln.Addr())
		p.stopFns = append(p.stopFns, func() { _ = srv.Close() })
	}
	return p, nil
}

// Finish stops the watchdog and debug listener and writes -ccprof-out.
func (p *Profiler) Finish() error {
	for _, stop := range p.stopFns {
		stop()
	}
	p.stopFns = nil
	if p.CcprofOut == "" || p.prof == nil {
		return nil
	}
	f, err := os.Create(p.CcprofOut)
	if err != nil {
		return fmt.Errorf("writing context profile: %w", err)
	}
	if strings.HasSuffix(p.CcprofOut, ".folded") {
		err = p.prof.WriteFolded(f)
	} else {
		err = p.prof.WritePprof(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing context profile: %w", err)
	}
	fmt.Fprintf(os.Stderr, "ccprof: %d contexts written to %s\n", p.prof.Total(), p.CcprofOut)
	return nil
}
