// Package cliutil holds the flag plumbing the CLIs share, so flags with
// identical semantics — the telemetry set (-metrics, -metrics-format,
// -trace-out, -flight-recorder), the persistence pair (-save-state,
// -load-state) and -version — are registered and interpreted in exactly
// one place instead of drifting per command.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dacce/internal/buildinfo"
	"dacce/internal/core"
	"dacce/internal/persist"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

// Telemetry is the shared observability flag set.
type Telemetry struct {
	PrintMetrics  bool
	MetricsFormat string
	TraceOut      string
	FlightN       int

	built bool
	sink  telemetry.Sink
	mts   *telemetry.Metrics
	ctr   *telemetry.ChromeTrace
	fr    *telemetry.FlightRecorder
}

// AddTelemetry registers the telemetry flags on fs.
func AddTelemetry(fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{}
	fs.BoolVar(&t.PrintMetrics, "metrics", false, "print a telemetry metrics snapshot after the run")
	fs.StringVar(&t.MetricsFormat, "metrics-format", "prom", "metrics snapshot format: prom|json")
	fs.StringVar(&t.TraceOut, "trace-out", "", "write a Chrome trace-event JSON file (chrome://tracing)")
	fs.IntVar(&t.FlightN, "flight-recorder", 0, "keep a flight-recorder ring of the last N events, dumped to stderr on overflow or decode failure")
	return t
}

// Sink assembles the sink pipeline the flags ask for (once; later calls
// return the same pipeline). All enabled sinks see the same stream.
func (t *Telemetry) Sink() telemetry.Sink {
	if t.built {
		return t.sink
	}
	t.built = true
	var sinks []telemetry.Sink
	if t.PrintMetrics {
		t.mts = telemetry.NewMetrics()
		sinks = append(sinks, t.mts)
	}
	if t.TraceOut != "" {
		t.ctr = telemetry.NewChromeTrace()
		sinks = append(sinks, t.ctr)
	}
	if t.FlightN > 0 {
		t.fr = telemetry.NewFlightRecorder(t.FlightN, os.Stderr)
		sinks = append(sinks, t.fr)
	}
	t.sink = telemetry.Multi(sinks...)
	return t.sink
}

// Flight returns the flight recorder, or nil when -flight-recorder is
// off (call after Sink).
func (t *Telemetry) Flight() *telemetry.FlightRecorder { return t.fr }

// Metrics returns the metrics sink, or nil when -metrics is off (call
// after Sink).
func (t *Telemetry) Metrics() *telemetry.Metrics { return t.mts }

// Finish flushes the file-producing sinks: the Chrome trace goes to
// -trace-out (with a notice on stderr), the metrics snapshot to
// metricsOut in the chosen format.
func (t *Telemetry) Finish(metricsOut io.Writer) error {
	if t.ctr != nil {
		f, err := os.Create(t.TraceOut)
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := t.ctr.Export(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s (open in chrome://tracing)\n", t.ctr.Len(), t.TraceOut)
	}
	if t.mts != nil {
		switch t.MetricsFormat {
		case "prom":
			if err := t.mts.WritePrometheus(metricsOut); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		case "json":
			if err := t.mts.WriteJSON(metricsOut); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		default:
			return fmt.Errorf("unknown -metrics-format %q (want prom or json)", t.MetricsFormat)
		}
	}
	return nil
}

// State is the shared persistence flag pair.
type State struct {
	// Save is the path -save-state writes the encoder snapshot to after
	// the run; empty means don't save.
	Save string
	// Load is the snapshot path -load-state warm-starts from; empty
	// means a cold start.
	Load string
}

// AddState registers -save-state and -load-state on fs.
func AddState(fs *flag.FlagSet) *State {
	s := &State{}
	fs.StringVar(&s.Save, "save-state", "", "write the warmed encoder state to this snapshot file after the run")
	fs.StringVar(&s.Load, "load-state", "", "warm-start the encoder from this snapshot file (zero handler traps on replay)")
	return s
}

// Active reports whether either persistence flag was used.
func (s *State) Active() bool { return s.Save != "" || s.Load != "" }

// NewEncoder builds the run's DACCE encoder: warm-started from
// -load-state when given, cold otherwise.
func (s *State) NewEncoder(p *prog.Program, opt core.Options) (*core.DACCE, error) {
	if s.Load == "" {
		return core.New(p, opt), nil
	}
	d, err := persist.WarmStart(s.Load, p, opt)
	if err != nil {
		return nil, fmt.Errorf("warm start from %s: %w", s.Load, err)
	}
	return d, nil
}

// SaveIfSet writes the encoder's snapshot to -save-state when given.
func (s *State) SaveIfSet(d *core.DACCE) error {
	if s.Save == "" {
		return nil
	}
	if err := persist.SaveEncoder(s.Save, d); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "state: encoder snapshot written to %s\n", s.Save)
	return nil
}

// AddVersion registers -version on fs; when the returned flag is set,
// callers print VersionString and exit.
func AddVersion(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print version and build info, then exit")
}

// PrintVersion writes the standard -version line for a tool.
func PrintVersion(tool string) { buildinfo.Print(os.Stdout, tool) }
