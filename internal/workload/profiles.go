package workload

// The benchmark profiles are calibrated from the paper's Table 1: the
// static graph size comes from the PCCE Nodes/Edges columns, the
// executed core from the DACCE columns, the per-call application work
// from the calls/s column, the recursion intensity from ccStack/s and
// the average ccStack depth, and the phase count from the number of
// re-encodings (gTS). Indirect-call shape follows the paper's prose:
// 400.perlbench, 445.gobmk and x264 have indirect calls with many
// targets (§3.2, §6.4); the OO benchmarks (xalancbmk, omnetpp, dealII,
// povray) are indirect-heavy; perlbench and several Parsec apps load
// plugins dynamically.

// row is one Table 1 line, transcribed.
type row struct {
	name           string
	suite          Suite
	sNodes, sEdges int     // PCCE static graph
	dNodes, dEdges int     // DACCE dynamic graph
	pcceCC         float64 // PCCE ccStack/s
	ccPerSec       float64 // DACCE ccStack/s
	depth          float64 // DACCE avg ccStack depth
	callsPerSec    float64
	gts            int // re-encodings
	bigTargets     bool
	indirectHeavy  bool
	lazy           int
	threads        int
}

var table1 = []row{
	{"400.perlbench", SPECint, 1468, 21065, 684, 3911, 4969345, 3095100, 0.20, 29205101, 23, true, true, 2, 1},
	{"401.bzip2", SPECint, 122, 321, 50, 109, 0, 38753, 0.05, 7687097, 5, false, false, 0, 1},
	{"403.gcc", SPECint, 3944, 50690, 1931, 11518, 0, 315406, 0.00, 14710894, 110, false, true, 0, 1},
	{"429.mcf", SPECint, 69, 126, 11, 12, 0, 2069, 0.01, 295581, 2, false, false, 0, 1},
	{"445.gobmk", SPECint, 2273, 13687, 1378, 4808, 246782, 250321, 2.47, 13355556, 76, true, false, 0, 1},
	{"456.hmmer", SPECint, 249, 1618, 70, 174, 3082, 481, 0.02, 1872530, 2, false, false, 0, 1},
	{"458.sjeng", SPECint, 139, 678, 54, 232, 0, 233, 0.00, 18248384, 23, false, false, 0, 1},
	{"462.libquantum", SPECint, 118, 846, 29, 49, 0, 1, 0.01, 44, 9, false, false, 0, 1},
	{"464.h264ref", SPECint, 398, 2698, 201, 1048, 424979, 5310, 0.00, 7080183, 10, false, false, 0, 1},
	{"471.omnetpp", SPECint, 1706, 11981, 506, 4135, 302097, 149146, 0.04, 11656043, 11, false, true, 0, 1},
	{"473.astar", SPECint, 139, 469, 60, 140, 0, 10606, 0.03, 129559, 10, false, false, 0, 1},
	{"483.xalancbmk", SPECint, 12535, 40392, 2170, 7321, 4375862, 596197, 6.01, 25341805, 27, false, true, 0, 1},
	{"410.bwaves", SPECfp, 369, 2189, 82, 164, 0, 2639, 0.01, 263845, 6, false, false, 0, 1},
	{"416.gamess", SPECfp, 2442, 50080, 362, 2017, 0, 21925, 0.03, 3390329, 19, false, false, 0, 1},
	{"433.milc", SPECfp, 177, 667, 57, 185, 0, 46156, 0.09, 380448, 38, false, false, 0, 1},
	{"434.zeusmp", SPECfp, 416, 3598, 118, 528, 0, 485, 0.05, 1601, 81, false, false, 0, 1},
	{"435.gromacs", SPECfp, 619, 2919, 154, 402, 0, 5132, 0.01, 919287, 8, false, false, 0, 1},
	{"436.cactusADM", SPECfp, 876, 6394, 271, 1533, 0, 3003, 0.01, 4662, 3, false, false, 0, 1},
	{"437.leslie3d", SPECfp, 434, 3247, 106, 597, 0, 475, 0.00, 85206, 2, false, false, 0, 1},
	{"444.namd", SPECfp, 176, 482, 61, 101, 0, 19426, 0.02, 737925, 20, false, false, 0, 1},
	{"447.dealII", SPECfp, 9935, 30204, 792, 3369, 280, 16331, 0.06, 19533456, 47, false, true, 0, 1},
	{"450.soplex", SPECfp, 784, 1954, 225, 453, 2590, 32681, 0.07, 312430, 7, false, false, 0, 1},
	{"453.povray", SPECfp, 1644, 12056, 548, 2201, 270387, 69109, 0.76, 34335309, 6, false, true, 0, 1},
	{"454.calculix", SPECfp, 1009, 8307, 416, 1660, 0, 62812, 0.06, 3662033, 11, false, false, 0, 1},
	{"459.GemsFDTD", SPECfp, 517, 5076, 175, 2067, 0, 32749, 0.01, 1579372, 7, false, false, 0, 1},
	{"465.tonto", SPECfp, 2144, 34717, 657, 4548, 0, 26186, 0.03, 9545304, 101, false, false, 0, 1},
	{"470.lbm", SPECfp, 75, 135, 13, 16, 0, 0, 0.00, 2964, 3, false, false, 0, 1},
	{"481.wrf", SPECfp, 1367, 17330, 660, 5483, 0, 20138, 0.03, 2358117, 4, false, false, 0, 1},
	{"482.sphinx3", SPECfp, 273, 1570, 134, 404, 0, 4187, 0.00, 1875791, 6, false, false, 0, 1},

	{"blackscholes", Parsec, 12, 26, 3, 5, 0, 68, 0.00, 14646244, 11, false, false, 0, 4},
	{"bodytrack", Parsec, 1310, 11047, 218, 894, 0, 68268, 0.01, 6928160, 5, false, false, 1, 4},
	{"facesim", Parsec, 6213, 24377, 264, 1102, 0, 24132, 0.00, 8891290, 5, false, false, 0, 4},
	{"ferret", Parsec, 1987, 25270, 354, 1612, 0, 44682, 0.00, 4439120, 4, false, false, 1, 4},
	{"raytrace", Parsec, 7911, 24577, 177, 632, 0, 370, 0.06, 3516574, 5, false, false, 1, 4},
	{"swaptions", Parsec, 2173, 6372, 15, 136, 0, 3, 0.03, 21753118, 12, false, false, 0, 4},
	{"fluidanimate", Parsec, 2168, 6420, 73, 144, 0, 49, 0.00, 76287, 8, false, false, 0, 4},
	{"vips", Parsec, 5395, 25302, 482, 1555, 0, 3865, 0.00, 855060, 5, false, false, 1, 4},
	{"x264", Parsec, 820, 3299, 221, 1052, 0, 15729, 0.00, 23984355, 4, true, true, 1, 4},
	{"canneal", Parsec, 2191, 6733, 107, 225, 0, 380, 0.00, 2276649, 6, false, false, 0, 4},
	{"dedup", Parsec, 121, 256, 21, 30, 0, 30239, 0.00, 1305985, 4, false, false, 0, 4},
	{"streamcluster", Parsec, 2182, 6336, 11, 29, 0, 14, 0.00, 111153, 6, false, false, 0, 4},
}

// derive turns a Table 1 row into generator parameters.
func derive(r row) Profile {
	ccFrac := 0.0
	if r.callsPerSec > 0 {
		ccFrac = r.ccPerSec / r.callsPerSec
	}
	// Real recursion exists only where the paper's PCCE pushed on the
	// ccStack (PCCE has no discovery warmup, so its ccStack traffic is
	// recursion and unencodable indirects); DACCE-only ccStack traffic
	// emerges from edge discovery and re-encoding on its own.
	hasRec := r.pcceCC > 0 || r.depth >= 0.1
	recProb, recStart, recSites, maxDepth, selfRec := 0.0, 0.0, 0, 48, 0.0
	if hasRec {
		// Chain starts are rare (scaled from the ccStack traffic
		// fraction); continuation is geometric, calibrated so the mean
		// chain length matches Table 1's average ccStack depth (gobmk
		// 2.47, xalancbmk 6.01).
		recStart = ccFrac * 4
		if recStart > 0.25 {
			recStart = 0.25
		}
		if recStart < 0.002 {
			recStart = 0.002
		}
		recProb = 0.4
		recSites = r.dEdges/80 + 1
		selfRec = 0.3
		if r.depth > 0.5 {
			p := r.depth / (r.depth + 0.6)
			if p > 0.93 {
				p = 0.93
			}
			recProb = p
			selfRec = 0.85
			if recStart < 0.2 {
				recStart = 0.2
			}
			maxDepth = 48 + int(r.depth*40)
		}
	}
	indSites, actual, declared := 0, 2, 6
	switch {
	case r.bigTargets:
		indSites, actual, declared = maxInt(6, r.dNodes/40), 10, 24
	case r.indirectHeavy:
		indSites, actual, declared = maxInt(3, r.dNodes/40), 3, 10
	case r.dNodes >= 60:
		indSites = maxInt(1, r.dNodes/80)
	}
	phases := r.gts / 6
	if phases < 2 {
		phases = 2
	}
	if phases > 12 {
		phases = 12
	}
	lazyFuncs := 0
	if r.lazy > 0 {
		lazyFuncs = maxInt(4, r.dNodes/30)
	}
	return Profile{
		Name:            r.name,
		Suite:           r.suite,
		Seed:            seedOf(r.name),
		StaticFuncs:     r.sNodes,
		StaticEdges:     r.sEdges,
		ExecFuncs:       r.dNodes,
		ExecEdges:       r.dEdges,
		Layers:          layersFor(r.dNodes),
		IndirectSites:   indSites,
		ActualTargets:   actual,
		DeclaredTargets: declared,
		RecSites:        recSites,
		RecProb:         recProb,
		RecStartProb:    recStart,
		MaxDepth:        maxDepth,
		SelfRecFrac:     selfRec,
		HotIndirect:     r.bigTargets,
		ColdCycles:      r.pcceCC > 0,
		TailSites:       maxInt(1, r.dEdges/200),
		LazyModules:     r.lazy,
		LazyFuncs:       lazyFuncs,
		Threads:         r.threads,
		CallsPerSec:     r.callsPerSec,
		Phases:          phases,
	}
}

func layersFor(dNodes int) int {
	switch {
	case dNodes < 16:
		return 4
	case dNodes < 80:
		return 6
	case dNodes < 400:
		return 8
	default:
		return 10
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func seedOf(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Profiles returns all 41 benchmark profiles in the paper's Table 1
// order.
func Profiles() []Profile {
	out := make([]Profile, len(table1))
	for i, r := range table1 {
		out[i] = derive(r)
	}
	return out
}

// ByName returns the profile with the given benchmark name, or false.
func ByName(name string) (Profile, bool) {
	for _, r := range table1 {
		if r.name == name {
			return derive(r), true
		}
	}
	return Profile{}, false
}

// Names returns the benchmark names in order.
func Names() []string {
	out := make([]string, len(table1))
	for i, r := range table1 {
		out[i] = r.name
	}
	return out
}

// PaperRow returns the paper's measured values for a benchmark, for
// side-by-side reporting in EXPERIMENTS.md.
type PaperRow struct {
	Name                         string
	Suite                        Suite
	PCCENodes, PCCEEdges         int
	DACCENodes, DACCEEdges       int
	CCPerSec, Depth, CallsPerSec float64
	GTS                          int
}

// PaperRows returns the transcription of Table 1.
func PaperRows() []PaperRow {
	out := make([]PaperRow, len(table1))
	for i, r := range table1 {
		out[i] = PaperRow{
			Name: r.name, Suite: r.suite,
			PCCENodes: r.sNodes, PCCEEdges: r.sEdges,
			DACCENodes: r.dNodes, DACCEEdges: r.dEdges,
			CCPerSec: r.ccPerSec, Depth: r.depth, CallsPerSec: r.callsPerSec,
			GTS: r.gts,
		}
	}
	return out
}
