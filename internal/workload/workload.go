// Package workload synthesizes the benchmark programs the evaluation
// runs (DESIGN.md §2): one calibrated profile per SPEC CPU2006 and
// Parsec 2.1 benchmark from the paper's Table 1. A generated program
// has a layered executed core (the dynamic call graph DACCE discovers)
// wrapped in a larger static structure (cold functions, cold edges,
// points-to false positives, dlopen modules) that only static encoders
// like PCCE must cope with.
//
// Generation is fully deterministic per profile: structure comes from a
// seeded PCG stream, and run-time choices come from the per-thread PRNG
// plus a phase index derived from the thread's call count, so the same
// profile produces the same call trace under every encoding scheme.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// Suite labels the benchmark family.
type Suite string

// Benchmark suites.
const (
	SPECint Suite = "SPECint"
	SPECfp  Suite = "SPECfp"
	Parsec  Suite = "Parsec"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name  string
	Suite Suite
	Seed  uint64

	// Static structure: the graph a points-to analysis would see.
	StaticFuncs int // total functions (PCCE's Nodes column)
	StaticEdges int // total static edges (PCCE's Edges column)

	// Executed core: what actually runs (DACCE's Nodes/Edges columns).
	ExecFuncs int
	ExecEdges int

	// Layers is the depth of the layered executed DAG; the typical call
	// stack depth without recursion.
	Layers int

	// IndirectSites is the number of executed indirect call sites;
	// each invokes ActualTargets distinct functions at run time while a
	// static analysis declares DeclaredTargets for it (the extra ones
	// are the false positives of paper §2.2).
	IndirectSites   int
	ActualTargets   int
	DeclaredTargets int

	// RecSites is the number of executed back edges; RecProb is the
	// per-visit probability of recursing through one; MaxDepth bounds
	// the stack. SelfRecFrac is the fraction of recursive sites that
	// target their own function — immediately repetitive recursion, the
	// kind Fig. 5e's counter compression collapses.
	// RecStartProb is the per-visit probability of *starting* a
	// recursive chain; RecProb is the probability of continuing one
	// (geometric chain length 1/(1-RecProb), calibrating Table 1's
	// average ccStack depth).
	RecSites     int
	RecProb      float64
	RecStartProb float64
	MaxDepth     int
	SelfRecFrac  float64

	// TailSites is the number of executed tail-call sites.
	TailSites int

	// LazyModules is the number of dlopen-style modules; LazyFuncs of
	// the executed functions live there and are reached through PLT
	// calls (invisible to static encoding).
	LazyModules int
	LazyFuncs   int

	// Threads is the number of threads (Parsec runs 4; SPEC runs 1).
	Threads int

	// TotalCalls is the call budget across all threads.
	TotalCalls int64

	// CallsPerSec is the paper's measured invocation rate (Table 1);
	// it calibrates the per-call application work so that model-time
	// rates land in the paper's regime.
	CallsPerSec float64

	// Branch is the mean fan-out per function body; controls trace
	// shape (calls per root iteration ≈ Branch^Layers).
	Branch float64

	// HotSkew skews per-site invocation weights: higher values
	// concentrate traffic on fewer edges.
	HotSkew float64

	// HotIndirect floors the invocation probability of indirect sites
	// at 0.3, modelling programs whose hot loops dispatch through
	// function pointers (perlbench, gobmk, x264 in §6.4).
	HotIndirect bool

	// ColdCycles enables static-only backward edges: cold structure
	// that closes cycles through the hot core, making a static encoder
	// classify executed edges as back edges (the paper's explanation
	// for PCCE's perlbench/xalancbmk ccStack traffic, §6.4). Only set
	// for benchmarks whose paper row shows PCCE ccStack activity.
	ColdCycles bool

	// Phases is how many times the hot paths rotate during a run; each
	// rotation re-draws the site weights (drives adaptive re-encoding).
	Phases int

	// Adversarial families (one knob enables each; all default off).
	// They exercise the encoder where the paper's design is most
	// exposed: dictionary immutability across dlclose, inline-chain vs
	// hash dispatch at extreme polymorphism, ccStack compression under
	// deep mixed recursion, and spawn-context capture under thread
	// churn.

	// ChurnModules adds dlopen-churn modules: lazy modules the main
	// thread loads, calls a ChurnFuncs-long chain inside, and unloads
	// again, rotating to the next module every ChurnEvery calls.
	// Contexts captured while a module was loaded must stay decodable
	// after it is gone.
	ChurnModules int
	ChurnFuncs   int
	ChurnEvery   int64

	// MegaSites adds mega-indirect dispatch sites on the root
	// functions, each fanning out to a shared pool of MegaTargets leaf
	// functions — polymorphic enough to push the site past any inline
	// compare chain into hash dispatch (paper Fig. 4).
	MegaSites   int
	MegaTargets int

	// TortureDepth enables the recursion-torture cluster: a dedicated
	// self-recursive function feeding a mutually recursive pair, driven
	// to this absolute stack depth with mixed back-edge patterns
	// (Fig. 5e's compression worst cases). 0 disables the cluster.
	TortureDepth int

	// SpawnChurn caps how many short-lived ephemeral threads each root
	// thread spawns over its run; SpawnRate is the per-iteration spawn
	// probability. Every ephemeral thread carries a spawn-edge context
	// that must decode through its parent chain.
	SpawnChurn int
	SpawnRate  float64
}

// fill applies defaults for zero fields.
func (p *Profile) fill() {
	if p.Layers == 0 {
		p.Layers = 8
	}
	if p.Threads == 0 {
		p.Threads = 1
	}
	if p.TotalCalls == 0 {
		p.TotalCalls = 400_000
	}
	if p.Branch == 0 {
		p.Branch = 1.6
	}
	if p.HotSkew == 0 {
		p.HotSkew = 3
	}
	if p.Phases == 0 {
		p.Phases = 4
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 64
	}
	if p.ActualTargets == 0 {
		p.ActualTargets = 2
	}
	if p.DeclaredTargets < p.ActualTargets {
		p.DeclaredTargets = p.ActualTargets * 3
	}
	if p.CallsPerSec == 0 {
		p.CallsPerSec = 5e6
	}
	if p.ExecFuncs < p.Layers+p.Threads {
		p.ExecFuncs = p.Layers + p.Threads
	}
	if p.StaticFuncs < p.ExecFuncs {
		p.StaticFuncs = p.ExecFuncs
	}
	if p.ExecEdges < p.ExecFuncs {
		p.ExecEdges = p.ExecFuncs
	}
	if p.StaticEdges < p.ExecEdges {
		p.StaticEdges = p.ExecEdges
	}
	if p.ChurnModules > 0 {
		if p.ChurnFuncs == 0 {
			p.ChurnFuncs = 4
		}
		if p.ChurnEvery == 0 {
			p.ChurnEvery = 2000
		}
	}
	if p.MegaSites > 0 && p.MegaTargets == 0 {
		p.MegaTargets = 64
	}
	if p.SpawnChurn > 0 && p.SpawnRate == 0 {
		p.SpawnRate = 0.02
	}
}

// siteClass classifies a generated site for the body driver.
type siteClass uint8

const (
	clDirect siteClass = iota
	clIndirect
	clRec
	clTail
	clCold // static-only: the body never invokes it
)

// siteInfo is the runtime driver data of one site.
type siteInfo struct {
	id    prog.SiteID
	class siteClass
	// selfRec marks recursive sites whose target is their own caller.
	selfRec bool
	// repeat invokes the site this many times per firing (inner-loop
	// dispatch; 0 means once).
	repeat int
	// declared is the static out-degree an indirect site contributes to
	// the static edge budget (DeclaredTargets for ordinary sites, the
	// full pool size for mega-indirect sites).
	declared int
	// pPhase is the invocation probability per phase.
	pPhase []float64
	// targets and tPhase drive indirect target choice: per phase, a
	// cumulative weight table over targets.
	targets []prog.FuncID
	tCum    [][]float64
}

// fnInfo is the runtime driver data of one function.
type fnInfo struct {
	id     prog.FuncID
	layer  int
	sites  []*siteInfo
	work   int64
	isRoot bool // main or a worker entry: loops until the budget is spent
}

// Workload is a generated benchmark program plus its driver tables.
type Workload struct {
	Prof Profile
	P    *prog.Program

	fns           []*fnInfo // indexed by FuncID
	workers       []prog.FuncID
	budgetPerThrd int64
	workPerCall   int64
	phaseLen      int64

	// Adversarial driver tables (zero-valued when the family is off).
	churnMods  []prog.ModuleID // dlopen-churn modules, rotation order
	churnGates []prog.SiteID   // main → chain head of churnMods[i]
	tortGate   prog.SiteID     // main → tortureA descent gateway
	tortStride int64           // calls between torture descents
	hasTorture bool
	ephemeral  prog.FuncID // spawn-churn thread entry
	hasSpawner bool
}

// Build generates the workload for a profile.
func Build(pr Profile) (*Workload, error) {
	pr.fill()
	g := &generator{
		prof: pr,
		rng:  rand.New(rand.NewPCG(pr.Seed, 0xDACCE)),
		b:    prog.NewBuilder(),
	}
	w, err := g.generate()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", pr.Name, err)
	}
	return w, nil
}

// MustBuild is Build for known-good profiles.
func MustBuild(pr Profile) *Workload {
	w, err := Build(pr)
	if err != nil {
		panic(err)
	}
	return w
}

// NewMachine creates a machine running this workload under scheme.
func (w *Workload) NewMachine(scheme machine.Scheme, cfg machine.Config) *machine.Machine {
	if cfg.Seed == 0 {
		cfg.Seed = w.Prof.Seed + 1
	}
	return machine.New(w.P, scheme, cfg)
}

// CollectProfile runs the workload once under a pure edge-counting
// scheme and returns per-edge invocation counts — the "profiling run
// with the same input" the paper grants PCCE (§6.1).
func (w *Workload) CollectProfile() (map[graph.EdgeKey]int64, error) {
	pc := newProfiler()
	m := w.NewMachine(pc, machine.Config{DropSamples: true})
	if _, err := m.Run(); err != nil {
		return nil, err
	}
	return pc.counts(), nil
}

// phaseOf derives the current phase from a thread's call count.
func (w *Workload) phaseOf(calls int64) int {
	if w.phaseLen <= 0 {
		return 0
	}
	ph := int(calls / w.phaseLen)
	if ph >= w.Prof.Phases {
		ph = w.Prof.Phases - 1
	}
	return ph
}

// WorkPerCall returns the calibrated application work per call.
func (w *Workload) WorkPerCall() int64 { return w.workPerCall }

// u01 is a deterministic hash-to-uniform for (seed, a, b, c), used for
// structure-independent per-phase weights.
func u01(seed uint64, a, b, c uint64) float64 {
	x := seed ^ a*0x9e3779b97f4a7c15 ^ b*0xc2b2ae3d27d4eb4f ^ c*0x165667b19e3779f9
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// zipfWeight turns a uniform draw into a heavy-tailed weight.
func zipfWeight(u, skew float64) float64 {
	if u <= 0 {
		u = 1e-12
	}
	return math.Pow(u, skew)
}
