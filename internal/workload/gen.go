package workload

import (
	"fmt"
	"math/rand/v2"

	"dacce/internal/machine"
	"dacce/internal/prog"
)

// generator builds one workload. All structural randomness comes from
// its single seeded stream, so generation is deterministic.
type generator struct {
	prof Profile
	rng  *rand.Rand
	b    *prog.Builder

	w       *Workload
	exec    []*fnInfo // executed core functions (excludes main/workers)
	byLayer [][]*fnInfo
	cold    []prog.FuncID
	main    *fnInfo
	wrk     []*fnInfo
}

func (g *generator) generate() (*Workload, error) {
	pr := g.prof
	g.w = &Workload{Prof: pr}

	g.makeModulesAndFuncs()
	g.makeExecutedSites()
	g.makeAdversarial()
	g.makeColdSites()
	g.assignWeights()
	g.installBodies()

	p, err := g.b.Build()
	if err != nil {
		return nil, err
	}
	g.w.P = p
	g.w.budgetPerThrd = pr.TotalCalls / int64(pr.Threads)
	g.w.workPerCall = int64(machine.NominalHz/pr.CallsPerSec) - machine.CostCallDispatch
	if g.w.workPerCall < 1 {
		g.w.workPerCall = 1
	}
	g.w.phaseLen = g.w.budgetPerThrd / int64(pr.Phases)
	for _, f := range g.w.fns {
		if f != nil {
			f.work = g.w.workPerCall
		}
	}
	return g.w, nil
}

// makeModulesAndFuncs creates modules and declares every function:
// main, worker entries, the executed core (layered), and the cold
// remainder.
func (g *generator) makeModulesAndFuncs() {
	pr := g.prof
	libEager := g.b.Module("libshared.so", false)
	var lazyMods []prog.ModuleID
	for i := 0; i < pr.LazyModules; i++ {
		lazyMods = append(lazyMods, g.b.Module(fmt.Sprintf("plugin%d.so", i), true))
	}

	g.w.fns = make([]*fnInfo, 0, pr.StaticFuncs+pr.Threads)
	addFn := func(id prog.FuncID, layer int) *fnInfo {
		for int(id) >= len(g.w.fns) {
			g.w.fns = append(g.w.fns, nil)
		}
		fi := &fnInfo{id: id, layer: layer}
		g.w.fns[id] = fi
		return fi
	}

	g.main = addFn(g.b.Func("main"), 0)
	g.main.isRoot = true
	for i := 1; i < pr.Threads; i++ {
		fi := addFn(g.b.Func(fmt.Sprintf("worker%d", i)), 0)
		g.b.ThreadRoot(fi.id)
		fi.isRoot = true
		g.wrk = append(g.wrk, fi)
		g.w.workers = append(g.w.workers, fi.id)
	}

	nCore := pr.ExecFuncs - 1 - (pr.Threads - 1)
	if nCore < pr.Layers {
		nCore = pr.Layers
	}
	nLazy := pr.LazyFuncs
	g.byLayer = make([][]*fnInfo, pr.Layers+1)
	for i := 0; i < nCore; i++ {
		layer := 1 + i%pr.Layers // every layer populated
		if i >= pr.Layers {
			layer = 1 + g.rng.IntN(pr.Layers)
		}
		mod := prog.ModuleID(0)
		switch {
		case nLazy > 0 && layer >= pr.Layers/2 && len(lazyMods) > 0:
			mod = lazyMods[g.rng.IntN(len(lazyMods))]
			nLazy--
		case g.rng.Float64() < 0.15:
			mod = libEager
		}
		id := g.b.FuncIn(fmt.Sprintf("f%d_l%d", i, layer), mod)
		fi := addFn(id, layer)
		g.exec = append(g.exec, fi)
		g.byLayer[layer] = append(g.byLayer[layer], fi)
	}

	nCold := pr.StaticFuncs - pr.ExecFuncs
	for i := 0; i < nCold; i++ {
		mod := prog.ModuleID(0)
		if g.rng.Float64() < 0.2 {
			mod = libEager
		}
		id := g.b.FuncIn(fmt.Sprintf("cold%d", i), mod)
		g.cold = append(g.cold, id)
		g.b.Leaf(id, 1)
	}
}

// pickLower returns a random executed function at a layer in [1, below).
func (g *generator) pickLower(below int) *fnInfo {
	if below < 2 {
		below = 2
	}
	if below > g.prof.Layers+1 {
		below = g.prof.Layers + 1
	}
	for tries := 0; tries < 64; tries++ {
		l := 1 + g.rng.IntN(below-1)
		if cands := g.byLayer[l]; len(cands) > 0 {
			return cands[g.rng.IntN(len(cands))]
		}
	}
	return g.byLayer[1][0]
}

// pickAtLeast returns a random executed function at layer ≥ from.
func (g *generator) pickAtLeast(from int) *fnInfo {
	for tries := 0; tries < 64; tries++ {
		l := from + g.rng.IntN(g.prof.Layers-from+1)
		if l > g.prof.Layers {
			l = g.prof.Layers
		}
		if cands := g.byLayer[l]; len(cands) > 0 {
			return cands[g.rng.IntN(len(cands))]
		}
	}
	return g.byLayer[g.prof.Layers][0]
}

// site helpers attach driver info.
func (g *generator) addSite(f *fnInfo, id prog.SiteID, class siteClass) *siteInfo {
	si := &siteInfo{id: id, class: class}
	f.sites = append(f.sites, si)
	return si
}

// makeExecutedSites builds the call sites the run actually exercises.
func (g *generator) makeExecutedSites() {
	pr := g.prof

	// Roots: main and each worker call into every layer-1 function, so
	// the whole executed core is reachable.
	for _, root := range append([]*fnInfo{g.main}, g.wrk...) {
		for _, tgt := range g.byLayer[1] {
			g.addSite(root, g.b.CallSite(root.id, tgt.id), clDirect)
		}
	}

	// Connectivity: every core function gets one in-edge from a lower
	// layer (layer-1 functions are reached from the roots above).
	for _, fi := range g.exec {
		if fi.layer <= 1 {
			continue
		}
		caller := g.pickLower(fi.layer)
		g.addSite(caller, g.b.CallSite(caller.id, fi.id), clDirect)
	}

	// Remaining direct edges up to the executed budget.
	directBudget := pr.ExecEdges - pr.IndirectSites*pr.ActualTargets - pr.RecSites - pr.TailSites
	have := 0
	for _, f := range g.w.fns {
		if f != nil {
			have += len(f.sites)
		}
	}
	for have < directBudget {
		caller := g.pickLower(pr.Layers) // layer 1..Layers-1
		if caller.layer >= pr.Layers {
			continue
		}
		tgt := g.pickAtLeast(caller.layer + 1)
		g.addSite(caller, g.b.CallSite(caller.id, tgt.id), clDirect)
		have++
	}

	// Tail calls: strictly forward so the body can emit them last.
	for i := 0; i < pr.TailSites; i++ {
		caller := g.pickLower(pr.Layers)
		if caller.layer >= pr.Layers {
			continue
		}
		tgt := g.pickAtLeast(caller.layer + 1)
		g.addSite(caller, g.b.TailSite(caller.id, tgt.id), clTail)
	}

	// Recursion: back edges to the same or a lower layer. A fraction is
	// direct self-recursion, which produces the immediately repetitive
	// ccStack patterns that compression targets (Fig. 5e).
	for i := 0; i < pr.RecSites; i++ {
		caller := g.pickAtLeast(2)
		tgt := caller
		if g.rng.Float64() >= pr.SelfRecFrac {
			tgt = g.pickLower(caller.layer + 1)
		}
		si := g.addSite(caller, g.b.CallSite(caller.id, tgt.id), clRec)
		si.selfRec = tgt == caller
	}

	// Indirect sites with actual + declared-only targets. Hot-indirect
	// programs (perlbench's opcode dispatch, x264's codec function
	// pointers) make these calls from their inner loops, i.e. from
	// frequently visited low-layer functions.
	for i := 0; i < pr.IndirectSites; i++ {
		var caller *fnInfo
		if pr.HotIndirect {
			// Deep layers carry most of the call volume in a branching
			// tree; inner-loop dispatch lives there.
			caller = g.pickAtLeast(pr.Layers - 2)
			for tries := 0; caller.layer >= pr.Layers && tries < 16; tries++ {
				caller = g.pickAtLeast(pr.Layers - 2)
			}
		} else {
			caller = g.pickLower(pr.Layers)
		}
		if caller.layer >= pr.Layers {
			continue
		}
		seen := map[prog.FuncID]bool{}
		var actual []prog.FuncID
		// Bounded draws: the layers above the caller may hold fewer
		// distinct functions than ActualTargets requests.
		for tries := 0; len(actual) < pr.ActualTargets && tries < 32*pr.ActualTargets; tries++ {
			tgt := g.pickAtLeast(caller.layer + 1)
			if seen[tgt.id] {
				continue
			}
			seen[tgt.id] = true
			actual = append(actual, tgt.id)
		}
		declared := append([]prog.FuncID(nil), actual...)
		for len(declared) < pr.DeclaredTargets && len(g.cold) > 0 {
			declared = append(declared, g.cold[g.rng.IntN(len(g.cold))])
		}
		si := g.addSite(caller, g.b.IndirectSite(caller.id, declared...), clIndirect)
		si.targets = actual
		si.declared = len(declared)
		if pr.HotIndirect {
			// Inner-loop dispatch: each visit performs a burst of
			// indirect calls, as codec/interpreter loops do.
			si.repeat = 12
		}
	}
}

// makeAdversarial builds the opt-in adversarial families (ISSUE 7):
// dlopen-churn modules, mega-indirect dispatch, the recursion-torture
// cluster, and the ephemeral spawn-churn entry. Their functions carry
// dedicated bodies registered here, outside the generic driver tables;
// the root-body drivers in bodyFor fire them on schedule.
func (g *generator) makeAdversarial() {
	pr := g.prof
	w := g.w

	// Module churn: each churn module holds a private call chain
	// f0 → f1 → … reached through a gateway site on main. The driver
	// loads the module, runs the chain a few times, and unloads it —
	// contexts captured inside the window must outlive the dlclose.
	for i := 0; i < pr.ChurnModules; i++ {
		mod := g.b.Module(fmt.Sprintf("churn%d.so", i), true)
		chain := make([]prog.FuncID, pr.ChurnFuncs)
		for j := range chain {
			chain[j] = g.b.FuncIn(fmt.Sprintf("churn%d_f%d", i, j), mod)
		}
		for j := 0; j+1 < len(chain); j++ {
			s := g.b.CallSite(chain[j], chain[j+1])
			g.b.Body(chain[j], func(x prog.Exec) {
				x.Work(1)
				x.Call(s, prog.NoFunc)
			})
		}
		g.b.Leaf(chain[len(chain)-1], 1)
		w.churnMods = append(w.churnMods, mod)
		w.churnGates = append(w.churnGates, g.b.CallSite(g.main.id, chain[0]))
	}

	// Mega-indirect: a shared pool of leaf targets, and root-hosted
	// indirect sites declaring (and actually calling) the whole pool.
	// The sites join the generic driver tables, so assignWeights gives
	// them per-phase target distributions; the discovery burst sweeps
	// the pool uniformly, promoting each site far past any inline
	// compare chain.
	if pr.MegaSites > 0 {
		pool := make([]prog.FuncID, pr.MegaTargets)
		for i := range pool {
			pool[i] = g.b.Func(fmt.Sprintf("mega%d", i))
			g.b.Leaf(pool[i], 1)
		}
		roots := append([]*fnInfo{g.main}, g.wrk...)
		for i := 0; i < pr.MegaSites; i++ {
			root := roots[i%len(roots)]
			si := g.addSite(root, g.b.IndirectSite(root.id, pool...), clIndirect)
			si.targets = pool
			si.declared = len(pool)
			si.repeat = 4
		}
	}

	// Recursion torture: tortureA self-recurses in long streaks (the
	// immediately repetitive pattern Fig. 5e collapses), occasionally
	// handing off to the mutually recursive pair tortureB ⇄ tortureC
	// (the period-2 pattern it cannot), until the stack reaches
	// TortureDepth. The main root paces descents via tortGate.
	if pr.TortureDepth > 0 {
		depth := pr.TortureDepth
		tortA := g.b.Func("tortureA")
		tortB := g.b.Func("tortureB")
		tortC := g.b.Func("tortureC")
		w.tortGate = g.b.CallSite(g.main.id, tortA)
		siteAA := g.b.CallSite(tortA, tortA)
		siteAB := g.b.CallSite(tortA, tortB)
		siteBC := g.b.CallSite(tortB, tortC)
		siteCB := g.b.CallSite(tortC, tortB)
		g.b.Body(tortA, func(x prog.Exec) {
			x.Work(1)
			if x.Depth() >= depth {
				return
			}
			if x.Rand().Float64() < 0.9 {
				x.Call(siteAA, prog.NoFunc)
			} else {
				x.Call(siteAB, prog.NoFunc)
			}
		})
		g.b.Body(tortB, func(x prog.Exec) {
			x.Work(1)
			if x.Depth() < depth {
				x.Call(siteBC, prog.NoFunc)
			}
		})
		g.b.Body(tortC, func(x prog.Exec) {
			x.Work(1)
			if x.Depth() < depth {
				x.Call(siteCB, prog.NoFunc)
			}
		})
		w.hasTorture = true
		w.tortStride = 3 * int64(depth)
	}

	// Spawn churn: a registered thread root making a short burst of
	// calls into layer 1 and exiting. Root threads spawn it on a coin
	// flip each loop iteration, so thread creation and teardown overlap
	// the whole run. The body is shared by every ephemeral thread and
	// must stay stateless — per-thread variation comes from x.Rand().
	if pr.SpawnChurn > 0 {
		eph := g.b.Func("ephemeral")
		g.b.ThreadRoot(eph)
		var ephSites []prog.SiteID
		for k, tgt := range g.byLayer[1] {
			if k >= 3 {
				break
			}
			ephSites = append(ephSites, g.b.CallSite(eph, tgt.id))
		}
		g.b.Body(eph, func(x prog.Exec) {
			x.Work(1)
			for _, s := range ephSites {
				x.Call(s, prog.NoFunc)
			}
		})
		w.ephemeral = eph
		w.hasSpawner = true
	}
}

// makeColdSites adds the static-only structure: cold out-edges from
// executed functions, edges among cold functions, and backward cold
// edges that close static-only cycles (the false back edges that hurt
// PCCE, paper §6.4).
func (g *generator) makeColdSites() {
	pr := g.prof
	staticNow := 0
	// Count static edges so far: direct/tail/rec sites are one edge
	// each; indirect sites contribute their declared count.
	for _, f := range g.w.fns {
		if f == nil {
			continue
		}
		for _, si := range f.sites {
			if si.class == clIndirect {
				staticNow += si.declared
			} else {
				staticNow++
			}
		}
	}
	coldBudget := pr.StaticEdges - staticNow
	if len(g.cold) == 0 || coldBudget <= 0 {
		return
	}
	// The cold world is layered like real call graphs: edges flow down
	// the layers, so static path counts grow polynomially with depth
	// (in-degree^layers) rather than exploding the way a random DAG
	// would. Cold functions never call back into the hot executed core
	// except through the explicit cycle-closing edges below.
	coldLayers := pr.Layers
	coldLayer := make(map[prog.FuncID]int, len(g.cold))
	byColdLayer := make([][]prog.FuncID, coldLayers+1)
	for i, id := range g.cold {
		l := 1 + i%coldLayers
		coldLayer[id] = l
		byColdLayer[l] = append(byColdLayer[l], id)
	}
	pickColdBelow := func(above int) (prog.FuncID, bool) {
		for tries := 0; tries < 16; tries++ {
			l := above + 1 + g.rng.IntN(coldLayers-above)
			if cands := byColdLayer[l]; len(cands) > 0 {
				return cands[g.rng.IntN(len(cands))], true
			}
		}
		return 0, false
	}
	retries := 0
	for i := 0; i < coldBudget; i++ {
		switch r := g.rng.Float64(); {
		case r < 0.30:
			// Cold out-edge from an executed function; the body skips it.
			caller := g.exec[g.rng.IntN(len(g.exec))]
			if tgt, ok := pickColdBelow(0); ok {
				g.addSite(caller, g.b.CallSite(caller.id, tgt), clCold)
			}
		case r < 0.38 && pr.ColdCycles:
			// Backward cold edge: closes a cycle only the static graph
			// sees. From a cold function into a low executed layer.
			caller := g.cold[g.rng.IntN(len(g.cold))]
			tgt := g.pickLower(2)
			g.b.CallSite(caller, tgt.id)
		default:
			// Cold-to-cold structure, strictly layer-increasing.
			caller := g.cold[g.rng.IntN(len(g.cold))]
			l := coldLayer[caller]
			if l >= coldLayers {
				if retries++; retries < 4*coldBudget {
					i--
				}
				continue
			}
			if tgt, ok := pickColdBelow(l); ok {
				g.b.CallSite(caller, tgt)
			}
		}
	}
}

// assignWeights computes per-phase invocation probabilities and
// indirect-target distributions.
func (g *generator) assignWeights() {
	pr := g.prof
	for _, f := range g.w.fns {
		if f == nil {
			continue
		}
		for ph := 0; ph < pr.Phases; ph++ {
			var sum float64
			ws := make([]float64, len(f.sites))
			for i, si := range f.sites {
				if si.class == clCold {
					continue
				}
				if si.class == clRec {
					continue // recursion probability is flat
				}
				ws[i] = zipfWeight(u01(pr.Seed, uint64(si.id), uint64(ph), 1), pr.HotSkew)
				sum += ws[i]
			}
			for i, si := range f.sites {
				switch si.class {
				case clCold:
					continue
				case clRec:
					if ph == 0 {
						si.pPhase = make([]float64, pr.Phases)
					}
					si.pPhase[ph] = pr.RecStartProb
				default:
					if ph == 0 {
						si.pPhase = make([]float64, pr.Phases)
					}
					p := 0.0
					if sum > 0 {
						p = pr.Branch * ws[i] / sum
					}
					if pr.HotIndirect && si.class == clIndirect && p < 0.55 {
						p = 0.55
					}
					// Every live site keeps a small floor probability:
					// real cold paths still execute occasionally, so the
					// call graph is discovered early rather than one
					// phase at a time.
					if p < 0.004 {
						p = 0.004
					}
					if p > 0.97 {
						p = 0.97
					}
					si.pPhase[ph] = p
				}
			}
		}
	}
	// Indirect target choice: cumulative per-phase weights.
	for _, f := range g.w.fns {
		if f == nil {
			continue
		}
		for _, si := range f.sites {
			if si.class != clIndirect || len(si.targets) == 0 {
				continue
			}
			// Hot-indirect programs spread dispatch across many live
			// targets (the paper's x264 observation); others concentrate.
			tskew := pr.HotSkew
			if pr.HotIndirect {
				tskew = 0.8
			}
			si.tCum = make([][]float64, pr.Phases)
			for ph := 0; ph < pr.Phases; ph++ {
				cum := make([]float64, len(si.targets))
				acc := 0.0
				for i, tgt := range si.targets {
					acc += zipfWeight(u01(pr.Seed, uint64(si.id), uint64(ph), uint64(tgt)+2), tskew)
					cum[i] = acc
				}
				si.tCum[ph] = cum
			}
		}
	}
}

// installBodies wires the driver bodies.
func (g *generator) installBodies() {
	for _, f := range g.w.fns {
		if f == nil {
			continue
		}
		g.b.Body(f.id, g.w.bodyFor(f))
	}
}

// bodyFor returns the runtime driver of one function.
func (w *Workload) bodyFor(f *fnInfo) prog.Body {
	if f.isRoot {
		return func(x prog.Exec) {
			// Adversarial driver state lives inside the invocation: the
			// same Workload is re-run under every scheme, and a root
			// body executes exactly once per thread, so these reset per
			// run and never race.
			isMain := f.id == w.P.Entry
			churnIdx := 0
			churnNext := w.Prof.ChurnEvery
			tortNext := w.tortStride / 4
			spawned := 0
			if isMain {
				for _, wk := range w.workers {
					x.Spawn(wk)
				}
			}
			for x.CallCount() < w.budgetPerThrd {
				before := x.CallCount()
				w.runSites(f, x)
				if w.hasSpawner && spawned < w.Prof.SpawnChurn &&
					x.Rand().Float64() < w.Prof.SpawnRate {
					spawned++
					x.Spawn(w.ephemeral)
				}
				if isMain && len(w.churnMods) > 0 && x.CallCount() >= churnNext {
					churnNext += w.Prof.ChurnEvery
					k := churnIdx % len(w.churnMods)
					churnIdx++
					x.LoadModule(w.churnMods[k])
					for n := 0; n < 3; n++ {
						x.Call(w.churnGates[k], prog.NoFunc)
					}
					x.UnloadModule(w.churnMods[k])
				}
				if isMain && w.hasTorture && x.CallCount() >= tortNext {
					tortNext += w.tortStride
					x.Call(w.tortGate, prog.NoFunc)
				}
				if x.CallCount() == before {
					// Nothing fired this round (improbable weights);
					// force progress through the first site.
					if len(f.sites) > 0 {
						w.invoke(f.sites[0], x)
					} else {
						return
					}
				}
			}
		}
	}
	return func(x prog.Exec) {
		x.Work(f.work)
		if x.CallCount() >= w.budgetPerThrd {
			return
		}
		w.runSites(f, x)
	}
}

// runSites walks a function's sites, invoking each according to its
// phase weight; a tail site fires last, as real tail calls do. During
// the first few percent of the budget every site gets a probability
// boost: real programs touch most of their code paths during
// initialization and the first iterations of their main loop, so call
// graph discovery concentrates in the warm-up.
func (w *Workload) runSites(f *fnInfo, x prog.Exec) {
	ph := w.phaseOf(x.CallCount())
	discovery := x.CallCount() < w.budgetPerThrd/20
	rng := x.Rand()
	var tail *siteInfo
	recFired := false
	for _, si := range f.sites {
		switch si.class {
		case clCold:
			continue
		case clTail:
			if tail == nil && rng.Float64() < si.pPhase[ph] {
				tail = si
			}
		case clRec:
			// Chains start rarely and continue geometrically: a visit
			// that was itself entered recursively keeps recursing with
			// RecProb, so chain lengths follow Table 1's depth column.
			// At most one recursive call per visit keeps the chain a
			// chain instead of an exponential tree.
			if recFired {
				continue
			}
			p := si.pPhase[ph]
			if si.selfRec && x.Caller() == x.SelfID() {
				p = w.Prof.RecProb
			}
			if x.Depth() < w.Prof.MaxDepth && rng.Float64() < p {
				recFired = true
				x.Call(si.id, prog.NoFunc)
			}
		case clIndirect:
			if len(si.targets) > 0 && rng.Float64() < boost(si.pPhase[ph], discovery) {
				n := si.repeat
				if n == 0 {
					n = 1
				}
				for k := 0; k < n; k++ {
					tgt := w.pickTarget(si, ph, rng)
					if discovery {
						tgt = si.targets[rng.IntN(len(si.targets))]
					}
					x.Call(si.id, tgt)
				}
			}
		default:
			if rng.Float64() < boost(si.pPhase[ph], discovery) {
				x.Call(si.id, prog.NoFunc)
			}
		}
	}
	if tail != nil && x.Depth() < w.Prof.MaxDepth+w.Prof.Layers {
		x.TailCall(tail.id, prog.NoFunc)
	}
}

// boost floors a site probability during the discovery burst.
func boost(p float64, discovery bool) float64 {
	if discovery && p < 0.3 {
		return 0.3
	}
	return p
}

// invoke fires one site unconditionally (root progress guarantee).
func (w *Workload) invoke(si *siteInfo, x prog.Exec) {
	switch si.class {
	case clCold:
		return
	case clTail:
		x.TailCall(si.id, prog.NoFunc)
	case clIndirect:
		if len(si.targets) == 0 {
			return
		}
		x.Call(si.id, si.targets[0])
	default:
		x.Call(si.id, prog.NoFunc)
	}
}

// pickTarget samples an indirect target from the phase distribution.
func (w *Workload) pickTarget(si *siteInfo, ph int, rng *rand.Rand) prog.FuncID {
	cum := si.tCum[ph]
	r := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if r <= c {
			return si.targets[i]
		}
	}
	return si.targets[len(si.targets)-1]
}
