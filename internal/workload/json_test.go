package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfilesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, Profiles()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Profiles()
	if len(got) != len(want) {
		t.Fatalf("roundtrip: %d profiles, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("profile %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestLoadProfilesRejects(t *testing.T) {
	cases := []string{
		``,
		`[]`,
		`[{"Name":""}]`,
		`[{"Name":"x","Layers":99}]`,
		`[{"Name":"x","Threads":-1}]`,
		`[{"Name":"x","RecProb":1.5}]`,
		`[{"Name":"x","TotalCalls":-5}]`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := LoadProfiles(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestLoadedProfileBuilds(t *testing.T) {
	in := `[{"Name":"custom","Suite":"SPECint","Seed":7,"StaticFuncs":80,"StaticEdges":300,
	        "ExecFuncs":40,"ExecEdges":90,"RecSites":3,"RecProb":0.4,"RecStartProb":0.05,
	        "TotalCalls":5000,"CallsPerSec":1e6}]`
	ps, err := LoadProfiles(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	w, err := Build(ps[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := w.P.Validate(); err != nil {
		t.Fatal(err)
	}
}
