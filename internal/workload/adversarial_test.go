package workload

import (
	"bytes"
	"strings"
	"testing"

	"dacce/internal/machine"
)

// base returns a minimal valid profile for validation tests.
func validBase() Profile {
	return Profile{Name: "v", Suite: SPECint, Seed: 1}
}

func TestValidateRejectsAdversarialKnobs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
		want string
	}{
		{"negative-torture-depth", func(p *Profile) { p.TortureDepth = -1 }, "negative recursion depth"},
		{"huge-torture-depth", func(p *Profile) { p.TortureDepth = 1<<20 + 1 }, "out of range"},
		{"mega-zero-targets", func(p *Profile) { p.MegaSites = 2; p.MegaTargets = 0 }, "zero targets"},
		{"mega-negative-targets", func(p *Profile) { p.MegaSites = 2; p.MegaTargets = -4 }, "zero targets"},
		{"mega-too-many-sites", func(p *Profile) { p.MegaSites = 129; p.MegaTargets = 8 }, "out of range"},
		{"mega-too-many-targets", func(p *Profile) { p.MegaSites = 1; p.MegaTargets = 8193 }, "out of range"},
		{"negative-churn-modules", func(p *Profile) { p.ChurnModules = -1 }, "out of range"},
		{"too-many-churn-modules", func(p *Profile) { p.ChurnModules = 65 }, "out of range"},
		{"negative-churn-funcs", func(p *Profile) { p.ChurnFuncs = -2 }, "out of range"},
		{"negative-churn-interval", func(p *Profile) { p.ChurnEvery = -5 }, "negative churn interval"},
		{"negative-spawn-churn", func(p *Profile) { p.SpawnChurn = -1 }, "out of range"},
		{"too-much-spawn-churn", func(p *Profile) { p.SpawnChurn = 1025 }, "out of range"},
		{"spawn-rate-negative", func(p *Profile) { p.SpawnChurn = 4; p.SpawnRate = -0.1 }, "out of range"},
		{"spawn-rate-above-one", func(p *Profile) { p.SpawnChurn = 4; p.SpawnRate = 1.5 }, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validBase()
			tc.mut(&p)
			var buf bytes.Buffer
			if err := WriteProfiles(&buf, []Profile{p}); err != nil {
				t.Fatal(err)
			}
			_, err := LoadProfiles(&buf)
			if err == nil {
				t.Fatalf("invalid profile accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsAdversarialKnobs(t *testing.T) {
	p := validBase()
	p.ChurnModules = 2
	p.ChurnFuncs = 3
	p.ChurnEvery = 500
	p.MegaSites = 2
	p.MegaTargets = 128
	p.TortureDepth = 4096
	p.SpawnChurn = 32
	p.SpawnRate = 0.1
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, []Profile{p}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfiles(&buf); err != nil {
		t.Fatalf("valid adversarial profile rejected: %v", err)
	}
}

// TestProfilesUniqueNames guards the built-in profile table against
// duplicate names, which would make ByName ambiguous and silently break
// the bench CLIs' name-based selection.
func TestProfilesUniqueNames(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range Profiles() {
		if p.Name == "" {
			t.Error("built-in profile with empty name")
		}
		if seen[p.Name] {
			t.Errorf("duplicate built-in profile name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

// runFamily builds and runs a small profile under a counting scheme,
// returning the machine for counter checks.
func runFamily(t *testing.T, pr Profile) (*machine.Machine, *machine.RunStats) {
	t.Helper()
	w := MustBuild(pr)
	m := w.NewMachine(machine.NullScheme{}, machine.Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, rs
}

func TestModuleChurnFamily(t *testing.T) {
	pr := Profile{
		Name: "churn-smoke", Suite: SPECint, Seed: 9,
		ExecFuncs: 12, TotalCalls: 10_000, CallsPerSec: 1e6,
		ChurnModules: 2, ChurnFuncs: 3, ChurnEvery: 800,
	}
	_, rs := runFamily(t, pr)
	if rs.C.ModuleLoads == 0 || rs.C.ModuleUnloads == 0 {
		t.Errorf("churn run performed %d loads, %d unloads, want > 0",
			rs.C.ModuleLoads, rs.C.ModuleUnloads)
	}
	if rs.C.ModuleLoads != rs.C.ModuleUnloads {
		t.Errorf("unbalanced lifecycle: %d loads vs %d unloads", rs.C.ModuleLoads, rs.C.ModuleUnloads)
	}
}

func TestTortureFamilyReachesDepth(t *testing.T) {
	pr := Profile{
		Name: "torture-smoke", Suite: SPECint, Seed: 9,
		ExecFuncs: 12, TotalCalls: 30_000, CallsPerSec: 1e6,
		TortureDepth: 700, MaxDepth: 32,
	}
	w := MustBuild(pr)
	m := w.NewMachine(machine.NullScheme{}, machine.Config{SampleEvery: 1})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, s := range rs.Samples {
		if len(s.Shadow) > max {
			max = len(s.Shadow)
		}
	}
	// Samples land at call prologues, one frame shy of the bottom.
	if max < 699 {
		t.Errorf("max sampled stack depth %d never reached the torture depth 700", max)
	}
}

func TestSpawnChurnFamilySpawns(t *testing.T) {
	pr := Profile{
		Name: "spawn-smoke", Suite: Parsec, Seed: 9,
		ExecFuncs: 12, Threads: 2, TotalCalls: 20_000, CallsPerSec: 1e6,
		SpawnChurn: 10, SpawnRate: 0.2,
	}
	m, rs := runFamily(t, pr)
	// 2 base threads plus at least one ephemeral spawn per root.
	if rs.Threads <= 2 {
		t.Errorf("spawn churn created %d threads, want > 2", rs.Threads)
	}
	idents := make(map[uint64]bool)
	for _, th := range m.Threads() {
		if idents[th.Ident()] {
			t.Fatalf("duplicate ident %#x under spawn churn", th.Ident())
		}
		idents[th.Ident()] = true
	}
}

func TestMegaIndirectFamilyCoversPool(t *testing.T) {
	pr := Profile{
		Name: "mega-smoke", Suite: SPECint, Seed: 9,
		ExecFuncs: 12, TotalCalls: 40_000, CallsPerSec: 1e6,
		MegaSites: 2, MegaTargets: 64,
	}
	w := MustBuild(pr)
	counts, err := w.CollectProfile()
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct executed mega targets: functions named mega%d.
	hit := make(map[string]bool)
	for k, n := range counts {
		if n <= 0 {
			continue
		}
		name := w.P.Funcs[k.Target].Name
		if strings.HasPrefix(name, "mega") {
			hit[name] = true
		}
	}
	// The discovery burst sweeps the pool uniformly; expect the large
	// majority of the 64 targets executed.
	if len(hit) < 48 {
		t.Errorf("only %d of 64 mega targets executed", len(hit))
	}
}
