package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteProfiles serializes profiles as JSON, the format LoadProfiles
// reads. Users can dump the built-in Table 1 profiles, tweak the knobs,
// and run the experiment harness on their own workload definitions.
func WriteProfiles(w io.Writer, profiles []Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(profiles)
}

// LoadProfiles reads a JSON profile list and validates each entry.
func LoadProfiles(r io.Reader) ([]Profile, error) {
	var out []Profile
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("workload: parsing profiles: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: no profiles in input")
	}
	for i := range out {
		if err := validateProfile(&out[i]); err != nil {
			return nil, fmt.Errorf("workload: profile %d (%q): %w", i, out[i].Name, err)
		}
	}
	return out, nil
}

// LoadProfilesFile reads profiles from a file path.
func LoadProfilesFile(path string) ([]Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadProfiles(f)
}

// validateProfile rejects values the generator cannot honour before
// fill() papers over them.
func validateProfile(p *Profile) error {
	if p.Name == "" {
		return fmt.Errorf("missing name")
	}
	if p.StaticFuncs < 0 || p.ExecFuncs < 0 || p.StaticEdges < 0 || p.ExecEdges < 0 {
		return fmt.Errorf("negative graph sizes")
	}
	if p.Layers < 0 || p.Layers > 64 {
		return fmt.Errorf("layers %d out of range [0, 64]", p.Layers)
	}
	if p.Threads < 0 || p.Threads > 256 {
		return fmt.Errorf("threads %d out of range [0, 256]", p.Threads)
	}
	if p.RecProb < 0 || p.RecProb > 1 || p.RecStartProb < 0 || p.RecStartProb > 1 ||
		p.SelfRecFrac < 0 || p.SelfRecFrac > 1 {
		return fmt.Errorf("probabilities must be in [0, 1]")
	}
	if p.TotalCalls < 0 {
		return fmt.Errorf("negative call budget")
	}
	if p.CallsPerSec < 0 {
		return fmt.Errorf("negative call rate")
	}
	if p.DeclaredTargets < 0 || p.ActualTargets < 0 || p.IndirectSites < 0 ||
		p.RecSites < 0 || p.TailSites < 0 || p.LazyModules < 0 || p.LazyFuncs < 0 {
		return fmt.Errorf("negative site counts")
	}
	if p.TortureDepth < 0 {
		return fmt.Errorf("negative recursion depth %d", p.TortureDepth)
	}
	if p.TortureDepth > 1<<20 {
		return fmt.Errorf("torture depth %d out of range [0, %d]", p.TortureDepth, 1<<20)
	}
	if p.MegaSites < 0 || p.MegaSites > 128 {
		return fmt.Errorf("mega sites %d out of range [0, 128]", p.MegaSites)
	}
	if p.MegaSites > 0 && p.MegaTargets <= 0 {
		return fmt.Errorf("mega-indirect with zero targets")
	}
	if p.MegaTargets < 0 || p.MegaTargets > 8192 {
		return fmt.Errorf("mega targets %d out of range [0, 8192]", p.MegaTargets)
	}
	if p.ChurnModules < 0 || p.ChurnModules > 64 {
		return fmt.Errorf("churn modules %d out of range [0, 64]", p.ChurnModules)
	}
	if p.ChurnFuncs < 0 || p.ChurnFuncs > 256 {
		return fmt.Errorf("churn funcs %d out of range [0, 256]", p.ChurnFuncs)
	}
	if p.ChurnEvery < 0 {
		return fmt.Errorf("negative churn interval")
	}
	if p.SpawnChurn < 0 || p.SpawnChurn > 1024 {
		return fmt.Errorf("spawn churn %d out of range [0, 1024]", p.SpawnChurn)
	}
	if p.SpawnRate < 0 || p.SpawnRate > 1 {
		return fmt.Errorf("spawn rate %v out of range [0, 1]", p.SpawnRate)
	}
	return nil
}
