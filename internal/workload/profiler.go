package workload

import (
	"sync"

	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// profiler is the offline profiling pass granted to PCCE (paper §6.1:
// "We first use Pin to profile the targets of indirect calls and the
// invocation frequency of all edges with the same input as in real
// runs"). It counts every (site, target) invocation and charges no
// model cost — profiling happens before the measured run.
type profiler struct {
	mu  sync.Mutex
	all map[graph.EdgeKey]int64
}

type profTLS struct {
	counts map[graph.EdgeKey]int64
}

func newProfiler() *profiler {
	return &profiler{all: make(map[graph.EdgeKey]int64)}
}

// Name implements machine.Scheme.
func (*profiler) Name() string { return "profiler" }

// Install implements machine.Scheme.
func (p *profiler) Install(m *machine.Machine) {
	st := &profStub{p: p}
	for i := 0; i < m.Program().NumSites(); i++ {
		m.SetStub(prog.SiteID(i), st)
	}
}

// ThreadStart implements machine.Scheme.
func (p *profiler) ThreadStart(t, parent *machine.Thread) {
	t.State = &profTLS{counts: make(map[graph.EdgeKey]int64)}
}

// ThreadExit implements machine.Scheme: merge the thread's counts.
func (p *profiler) ThreadExit(t *machine.Thread) {
	st := t.State.(*profTLS)
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, v := range st.counts {
		p.all[k] += v
	}
}

// Capture implements machine.Scheme.
func (*profiler) Capture(t *machine.Thread) any { return nil }

func (p *profiler) counts() map[graph.EdgeKey]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[graph.EdgeKey]int64, len(p.all))
	for k, v := range p.all {
		out[k] = v
	}
	return out
}

type profStub struct{ p *profiler }

func (s *profStub) Prologue(t *machine.Thread, site *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	st := t.State.(*profTLS)
	st.counts[graph.EdgeKey{Site: site.ID, Target: target}]++
	return machine.Cookie{}, s
}

func (*profStub) Epilogue(t *machine.Thread, site *prog.Site, target prog.FuncID, c machine.Cookie) {
}
