package workload

import (
	"testing"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/pcce"
)

// small returns a fast variant of a named profile for testing.
func small(t *testing.T, name string, calls int64) Profile {
	t.Helper()
	pr, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown profile %q", name)
	}
	pr.TotalCalls = calls
	return pr
}

func TestDeterministicGeneration(t *testing.T) {
	a := MustBuild(small(t, "429.mcf", 20_000))
	b := MustBuild(small(t, "429.mcf", 20_000))
	if a.P.NumFuncs() != b.P.NumFuncs() || a.P.NumSites() != b.P.NumSites() {
		t.Fatalf("generation not deterministic: %d/%d funcs, %d/%d sites",
			a.P.NumFuncs(), b.P.NumFuncs(), a.P.NumSites(), b.P.NumSites())
	}
	run := func(w *Workload) machine.Counters {
		m := w.NewMachine(machine.NullScheme{}, machine.Config{DropSamples: true})
		rs, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return rs.C
	}
	ca, cb := run(a), run(b)
	if ca.Calls != cb.Calls || ca.BaseCost != cb.BaseCost {
		t.Fatalf("runs not deterministic: %d/%d calls, %d/%d cost", ca.Calls, cb.Calls, ca.BaseCost, cb.BaseCost)
	}
	if ca.Calls < 18_000 {
		t.Errorf("run made %d calls, want ≈ 20000", ca.Calls)
	}
}

func TestProgramValidates(t *testing.T) {
	for _, name := range []string{"429.mcf", "401.bzip2", "445.gobmk", "x264", "blackscholes"} {
		w := MustBuild(small(t, name, 1000))
		if err := w.P.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestStructureApproximatesProfile(t *testing.T) {
	pr := small(t, "456.hmmer", 60_000)
	w := MustBuild(pr)
	d := core.New(w.P, core.Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: 64, DropSamples: true})
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	st := d.Stats()
	// The discovered dynamic graph should be in the ballpark of the
	// profile targets (generation is stochastic; runs may not reach
	// every generated edge).
	if st.Nodes < pr.ExecFuncs/2 || st.Nodes > pr.ExecFuncs*2 {
		t.Errorf("discovered %d nodes, profile targets %d", st.Nodes, pr.ExecFuncs)
	}
	if st.Edges < pr.ExecEdges/3 || st.Edges > pr.ExecEdges*2 {
		t.Errorf("discovered %d edges, profile targets %d", st.Edges, pr.ExecEdges)
	}
	// Static structure for PCCE must be much bigger than the dynamic.
	prof, err := w.CollectProfile()
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	ps := pcce.New(w.P, pcce.Profile(prof), pcce.Options{})
	if ps.Graph().NumNodes() <= st.Nodes {
		t.Errorf("static nodes %d not larger than dynamic %d", ps.Graph().NumNodes(), st.Nodes)
	}
	if ps.Graph().NumEdges() <= st.Edges {
		t.Errorf("static edges %d not larger than dynamic %d", ps.Graph().NumEdges(), st.Edges)
	}
}

// TestAllSamplesDecodeAcrossProfiles is the paper's cross-validation
// (§6.1) over a representative set of synthetic benchmarks: every
// DACCE sample must decode to the shadow stack, across re-encodings,
// recursion, indirect calls, tail calls, PLT and threads.
func TestAllSamplesDecodeAcrossProfiles(t *testing.T) {
	names := []string{
		"429.mcf",       // tiny
		"401.bzip2",     // small, some recursion
		"456.hmmer",     // mid
		"445.gobmk",     // recursion-heavy, many indirect targets
		"483.xalancbmk", // deep recursion, OO indirect
		"400.perlbench", // ccStack-heavy + lazy modules
		"x264",          // threads + many indirect targets + dlopen
		"dedup",         // threads, small
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			pr := small(t, name, 60_000)
			w := MustBuild(pr)
			d := core.New(w.P, core.Options{})
			m := w.NewMachine(d, machine.Config{SampleEvery: 37})
			rs, err := m.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(rs.Samples) == 0 {
				t.Fatal("no samples")
			}
			spawnShadow := map[int][]machine.Frame{}
			for _, th := range m.Threads() {
				spawnShadow[th.ID()] = th.SpawnShadow
			}
			bad := 0
			for _, s := range rs.Samples {
				ctx, err := d.DecodeSample(s)
				if err != nil {
					t.Fatalf("thread %d sample %d: %v", s.Thread, s.Seq, err)
				}
				want := core.ShadowContext(spawnShadow[s.Thread], s.Shadow)
				if !ctx.Equal(want) {
					bad++
					if bad <= 3 {
						t.Errorf("thread %d sample %d: decoded %v want %v", s.Thread, s.Seq, ctx, want)
					}
				}
			}
			if bad > 0 {
				t.Fatalf("%d of %d samples mis-decoded", bad, len(rs.Samples))
			}
		})
	}
}

// TestPCCESamplesDecode cross-validates the PCCE baseline the same way
// on single-threaded profiles.
func TestPCCESamplesDecode(t *testing.T) {
	for _, name := range []string{"429.mcf", "456.hmmer", "445.gobmk"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w := MustBuild(small(t, name, 40_000))
			prof, err := w.CollectProfile()
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			ps := pcce.New(w.P, pcce.Profile(prof), pcce.Options{})
			m := w.NewMachine(ps, machine.Config{SampleEvery: 53})
			rs, err := m.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, s := range rs.Samples {
				ctx, err := ps.DecodeSample(s)
				if err != nil {
					t.Fatalf("sample %d: %v", s.Seq, err)
				}
				if want := core.ShadowContext(nil, s.Shadow); !ctx.Equal(want) {
					t.Fatalf("sample %d: decoded %v want %v", s.Seq, ctx, want)
				}
			}
		})
	}
}

// TestIncrementalDecodesOnBenchmarks runs DACCE with incremental
// re-encoding over mixed-feature benchmarks and cross-validates every
// sample — recursion, compression, indirect hashes, tail calls, threads
// all interacting with partially-renumbered dictionaries.
func TestIncrementalDecodesOnBenchmarks(t *testing.T) {
	for _, name := range []string{"445.gobmk", "483.xalancbmk", "x264"} {
		name := name
		t.Run(name, func(t *testing.T) {
			pr := small(t, name, 60_000)
			w := MustBuild(pr)
			d := core.New(w.P, core.Options{Incremental: true})
			m := w.NewMachine(d, machine.Config{SampleEvery: 41})
			rs, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			spawnShadow := map[int][]machine.Frame{}
			for _, th := range m.Threads() {
				spawnShadow[th.ID()] = th.SpawnShadow
			}
			for _, s := range rs.Samples {
				ctx, err := d.DecodeSample(s)
				if err != nil {
					t.Fatalf("thread %d sample %d: %v", s.Thread, s.Seq, err)
				}
				want := core.ShadowContext(spawnShadow[s.Thread], s.Shadow)
				if !ctx.Equal(want) {
					t.Fatalf("thread %d sample %d: %v != %v", s.Thread, s.Seq, ctx, want)
				}
			}
			if d.Stats().IncrementalPasses == 0 {
				t.Log("no incremental passes used (all passes were full)")
			}
		})
	}
}

// TestAllProfilesBuildAndRun is the table-driven smoke over every one
// of the 41 Table 1 profiles: generation succeeds, the program
// validates, a short run completes under DACCE, and the static/dynamic
// graph ordering holds.
func TestAllProfilesBuildAndRun(t *testing.T) {
	for _, pr := range Profiles() {
		pr := pr
		t.Run(pr.Name, func(t *testing.T) {
			t.Parallel()
			pr.TotalCalls = 6_000
			w, err := Build(pr)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := w.P.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			d := core.New(w.P, core.Options{})
			m := w.NewMachine(d, machine.Config{SampleEvery: 64, DropSamples: true})
			rs, err := m.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if rs.C.Calls < 5_000 {
				t.Errorf("only %d calls executed", rs.C.Calls)
			}
			if rs.Threads != pr.Threads {
				t.Errorf("threads = %d, want %d", rs.Threads, pr.Threads)
			}
			st := d.Stats()
			if st.Nodes < 2 || st.Edges < 2 {
				t.Errorf("dynamic graph degenerate: %d nodes %d edges", st.Nodes, st.Edges)
			}
			if st.Nodes > pr.StaticFuncs {
				t.Errorf("discovered %d nodes exceeds static %d", st.Nodes, pr.StaticFuncs)
			}
		})
	}
}
