package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/workload"
)

// gateProfile is the deterministic workload the persistence tests warm
// an encoder on: layered core, indirect and recursive sites so the
// tail/compress sets and multi-target edges all appear in the state.
func gateProfile(threads int, calls int64) workload.Profile {
	return workload.Profile{
		Name:          "persist-gate",
		Seed:          0xD1CE,
		ExecFuncs:     48,
		ExecEdges:     110,
		Layers:        7,
		IndirectSites: 3,
		ActualTargets: 3,
		RecSites:      2,
		RecProb:       0.3,
		RecStartProb:  0.05,
		Threads:       threads,
		TotalCalls:    calls,
		Phases:        1,
	}
}

// warmEncoder runs the profile's workload to completion on a fresh
// encoder and returns the warmed encoder plus the retained samples.
func warmEncoder(t *testing.T, pr workload.Profile) (*core.DACCE, *workload.Workload, []machine.Sample) {
	t.Helper()
	w, err := workload.Build(pr)
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(w.P, core.Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: 17})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Sharded cold start coalesces concurrent discovery bursts into few
	// passes, so a multi-threaded warmup can legitimately converge in a
	// single epoch; the tests need a multi-epoch archive, so force one
	// more pass in that case (what a checkpointing process calling
	// ForceReencode before -save-state would produce).
	if d.Epoch() < 2 {
		d.ForceReencode(nil)
	}
	if d.Epoch() < 2 {
		t.Fatalf("warmup reached only epoch %d; the tests need a multi-epoch archive", d.Epoch())
	}
	return d, w, rs.Samples
}

func TestStateRoundTrip(t *testing.T) {
	d, _, _ := warmEncoder(t, gateProfile(2, 40_000))
	st := d.ExportState()
	data, err := Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(st) {
		t.Fatal("state does not survive a marshal/unmarshal round trip")
	}
	if len(st.Tail) == 0 && len(st.Compress) == 0 && len(st.Roots) < 2 {
		t.Log("note: state exercised no tail/compress/extra-root sections")
	}
}

func TestMarshalDeterministicAndHash(t *testing.T) {
	d, _, _ := warmEncoder(t, gateProfile(1, 30_000))
	st := d.ExportState()
	a, err := Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(d.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two exports of the same quiescent encoder marshal differently")
	}
	if Hash(a) != Hash(b) {
		t.Fatal("equal snapshots hash differently")
	}
	st.Edges[0].Freq++
	c, err := Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if Hash(a) == Hash(c) {
		t.Fatal("distinct snapshots share a hash")
	}
}

func TestSaveLoad(t *testing.T) {
	d, _, _ := warmEncoder(t, gateProfile(1, 30_000))
	st := d.ExportState()
	path := filepath.Join(t.TempDir(), "enc.snap")
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(Magic)) {
		t.Fatalf("snapshot file does not start with magic %q", Magic)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(st) {
		t.Fatal("state does not survive a Save/Load round trip")
	}
	// Save must not leave temp files behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot directory holds %d entries, want just the snapshot", len(entries))
	}
}

// TestSaveSyncsDirectory asserts the durability path: Save must fsync
// the snapshot's parent directory after the rename (the rename is what
// makes the snapshot visible, and only a directory sync makes the
// rename itself survive a crash), and a directory-sync failure must
// surface as a Save error, not a silent "success" that might not be on
// disk.
func TestSaveSyncsDirectory(t *testing.T) {
	d, _, _ := warmEncoder(t, gateProfile(1, 30_000))
	st := d.ExportState()
	dir := t.TempDir()
	path := filepath.Join(dir, "enc.snap")

	orig := syncDir
	defer func() { syncDir = orig }()

	var synced []string
	syncDir = func(d string) error {
		synced = append(synced, d)
		return orig(d)
	}
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("Save synced %v, want exactly [%s]", synced, dir)
	}

	syncDir = func(string) error { return errors.New("disk gone") }
	if err := Save(filepath.Join(dir, "enc2.snap"), st); err == nil {
		t.Fatal("Save reported success although the directory sync failed")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	d, _, _ := warmEncoder(t, gateProfile(1, 30_000))
	data, err := Marshal(d.ExportState())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(data); n += 1 + n/16 {
			if _, err := Unmarshal(data[:n]); err == nil {
				t.Fatalf("truncation to %d of %d bytes was accepted", n, len(data))
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for pos := 0; pos < len(data); pos += 1 + pos/16 {
			mut := bytes.Clone(data)
			mut[pos] ^= 0x40
			if _, err := Unmarshal(mut); err == nil {
				t.Fatalf("bit flip at byte %d was accepted", pos)
			} else if !errors.Is(err, ErrCorrupt) && pos >= len(Magic)+4 {
				// Payload and trailer corruption must always read as
				// ErrCorrupt; a flipped version byte reports the version.
				t.Fatalf("bit flip at byte %d: error %v does not wrap ErrCorrupt", pos, err)
			}
		}
	})
	t.Run("badmagic", func(t *testing.T) {
		mut := bytes.Clone(data)
		mut[0] = 'X'
		if _, err := Unmarshal(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad magic: got %v", err)
		}
	})
	t.Run("futureversion", func(t *testing.T) {
		mut := bytes.Clone(data)
		mut[len(Magic)] = byte(Version + 1)
		if _, err := Unmarshal(mut); err == nil {
			t.Fatal("future format version was accepted")
		}
	})
	t.Run("trailinggarbage", func(t *testing.T) {
		if _, err := Unmarshal(append(bytes.Clone(data), 0xEE)); err == nil {
			t.Fatal("trailing garbage was accepted")
		}
	})
}

// TestWarmStartZeroTraps is the acceptance gate: a fresh process that
// warm-starts from a snapshot of a warmed run replays the identical
// workload with zero runtime-handler traps — every call site was
// re-patched from persisted state before the first call.
func TestWarmStartZeroTraps(t *testing.T) {
	pr := gateProfile(1, 60_000)
	d, _, _ := warmEncoder(t, pr)
	path := filepath.Join(t.TempDir(), "warm.snap")
	if err := SaveEncoder(path, d); err != nil {
		t.Fatal(err)
	}

	// Simulate the restart: rebuild the program from the profile (a new
	// process would) and warm-start from disk.
	w2, err := workload.Build(pr)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := WarmStart(path, w2.P, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := w2.NewMachine(d2, machine.Config{SampleEvery: 17, DropSamples: true})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.HandlerTraps != 0 {
		t.Fatalf("warm-started run executed %d handler traps, want 0", rs.C.HandlerTraps)
	}
	if rs.C.Calls == 0 {
		t.Fatal("warm-started run made no calls")
	}
}

// TestWarmStartMultiThread repeats the warm boot on a multi-threaded
// workload: spawned-thread roots and spawn paths come from the
// snapshot, and every sample decoded by the restarted encoder matches
// the machine's shadow stack.
func TestWarmStartMultiThread(t *testing.T) {
	pr := gateProfile(4, 60_000)
	d, _, _ := warmEncoder(t, pr)
	path := filepath.Join(t.TempDir(), "warm.snap")
	if err := SaveEncoder(path, d); err != nil {
		t.Fatal(err)
	}
	w2, err := workload.Build(pr)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := WarmStart(path, w2.P, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := w2.NewMachine(d2, machine.Config{SampleEvery: 23})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.HandlerTraps != 0 {
		t.Fatalf("warm-started multi-thread run executed %d handler traps, want 0", rs.C.HandlerTraps)
	}
	if len(rs.Samples) == 0 {
		t.Fatal("no samples retained")
	}
	for i, s := range rs.Samples {
		ctx, err := d2.DecodeSample(s)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		c := s.Capture.(*core.Capture)
		// Sample.Shadow is the thread-local stack (spawn prefixes are the
		// decoder's job), so check the thread-local suffix of the decode
		// against it frame for frame.
		if len(ctx) < len(s.Shadow) {
			t.Fatalf("sample %d (epoch %d): decode has %d frames, shadow %d", i, c.Epoch, len(ctx), len(s.Shadow))
		}
		local := ctx[len(ctx)-len(s.Shadow):]
		for j, f := range s.Shadow {
			if local[j].Fn != f.Fn {
				t.Fatalf("sample %d (epoch %d) frame %d: decoded f%d, shadow f%d", i, c.Epoch, j, local[j].Fn, f.Fn)
			}
		}
	}
}

// TestOldEpochArchive verifies the epoch-keyed dictionary archive: a
// standalone decoder built from the snapshot decodes captures taken
// under every earlier epoch to the same contexts the live encoder
// produces.
func TestOldEpochArchive(t *testing.T) {
	d, _, samples := warmEncoder(t, gateProfile(2, 60_000))
	data, err := Marshal(d.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	st, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := st.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	epochs := map[uint32]int{}
	for i, s := range samples {
		c, ok := s.Capture.(*core.Capture)
		if !ok {
			t.Fatalf("sample %d capture is %T", i, s.Capture)
		}
		epochs[c.Epoch]++
		want, err := d.Decode(c)
		if err != nil {
			t.Fatalf("sample %d: live decode: %v", i, err)
		}
		got, err := dec.Decode(c)
		if err != nil {
			t.Fatalf("sample %d (epoch %d): snapshot decode: %v", i, c.Epoch, err)
		}
		if !got.Equal(want) {
			t.Fatalf("sample %d (epoch %d): snapshot decode diverges from live decode\nlive:     %v\nsnapshot: %v",
				i, c.Epoch, want, got)
		}
	}
	if len(epochs) < 2 {
		t.Fatalf("samples span %d epoch(s), want ≥ 2 to exercise the archive", len(epochs))
	}
}

func TestRestoreRejectsForeignProgram(t *testing.T) {
	d, _, _ := warmEncoder(t, gateProfile(1, 30_000))
	st := d.ExportState()
	other := gateProfile(1, 30_000)
	other.ExecFuncs = 52
	other.Name = "persist-other"
	w, err := workload.Build(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Restore(w.P, core.Options{}, st); err == nil {
		t.Fatal("Restore accepted a snapshot from a different program")
	}
}
