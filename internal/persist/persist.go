// Package persist is the durability layer for encoder state: a
// versioned binary snapshot codec plus atomic Save/Load/WarmStart
// helpers. A snapshot captures everything a DACCE encoder accumulated —
// the discovered call graph with edge frequencies, one decode
// dictionary per epoch (the archive that keeps ids captured under old
// gTimeStamps decodable), the tail and recursion-compression sets, and
// the adaptive controller's backoff — so a restarted process re-installs
// with zero handler traps and a decode service can resolve contexts for
// programs it never ran.
//
// Wire format:
//
//	offset  size  field
//	0       8     magic "DACCESNP"
//	8       4     format version, little-endian uint32
//	12      n     payload (varint-coded sections, see marshalPayload)
//	12+n    4     CRC32 (IEEE) of bytes [0, 12+n), little-endian
//
// The payload is a flat sequence of uvarint/zigzag-varint scalars,
// length-prefixed strings and length-prefixed sections in a fixed
// order. Every length read is bounds-checked against the remaining
// input before allocation, so truncated or bit-flipped snapshots fail
// with an error — never a panic and never an absurd allocation. Marshal
// is deterministic (EncoderState's slices are already in canonical
// order), so Hash identifies an encoding by content.
package persist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"runtime"

	"dacce/internal/core"
	"dacce/internal/graph"
	"dacce/internal/prog"
)

// Magic opens every snapshot file.
const Magic = "DACCESNP"

// Version is the current snapshot format version. Load rejects
// snapshots written by a newer format rather than misparse them.
const Version uint32 = 1

const headerSize = len(Magic) + 4 // magic + version
const trailerSize = 4             // crc32

// ErrCorrupt wraps every integrity failure (bad magic, CRC mismatch,
// truncation, malformed payload) so callers can distinguish corruption
// from I/O errors with errors.Is.
var ErrCorrupt = errors.New("persist: corrupt snapshot")

// Marshal serializes an encoder state into the versioned binary
// snapshot format. The output is deterministic for a given state.
func Marshal(st *core.EncoderState) ([]byte, error) {
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("persist: refusing to marshal invalid state: %w", err)
	}
	b := make([]byte, 0, 1024)
	b = append(b, Magic...)
	b = binary.LittleEndian.AppendUint32(b, Version)
	b = marshalPayload(b, st)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b, nil
}

// Unmarshal parses a binary snapshot, verifying magic, version, CRC and
// the structural validity of the decoded state. Corrupt input yields an
// error wrapping ErrCorrupt.
func Unmarshal(data []byte) (*core.EncoderState, error) {
	if len(data) < headerSize+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than header+trailer", ErrCorrupt, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(Magic)])
	}
	ver := binary.LittleEndian.Uint32(data[len(Magic):headerSize])
	if ver != Version {
		return nil, fmt.Errorf("persist: snapshot format version %d, this build reads version %d", ver, Version)
	}
	body, tail := data[:len(data)-trailerSize], data[len(data)-trailerSize:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (computed %08x, stored %08x)", ErrCorrupt, got, want)
	}
	r := &reader{b: body[headerSize:]}
	st := unmarshalPayload(r)
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.b))
	}
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return st, nil
}

// Hash returns the content hash of a marshalled snapshot: hex SHA-256,
// truncated to 16 bytes (32 hex digits). Two snapshots hash equal iff
// their states are identical, so the hash identifies an encoding in the
// dacced tenant registry.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// syncDir fsyncs a directory so a rename into it is durable — without
// it a crash right after a "successful" Save can roll the directory
// entry back and lose the snapshot entirely. Swappable so tests can
// assert the sync actually runs, and a no-op on platforms that cannot
// open directories for syncing (windows).
var syncDir = func(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Save marshals the state and writes it to path atomically and durably:
// the bytes go to a temporary file in the same directory, are synced,
// the file is renamed into place, and the parent directory is synced so
// the rename itself survives a crash. A crash mid-write never leaves a
// half-written snapshot where a loader can find it.
func Save(path string, st *core.EncoderState) error {
	data, err := Marshal(st)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: creating temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("persist: setting snapshot mode: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: installing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("persist: syncing snapshot directory: %w", err)
	}
	return nil
}

// SaveEncoder exports the encoder's state and saves it to path.
func SaveEncoder(path string, d *core.DACCE) error {
	return Save(path, d.ExportState())
}

// Load reads and unmarshals a snapshot file.
func Load(path string) (*core.EncoderState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	return Unmarshal(data)
}

// WarmStart loads a snapshot and restores a warm encoder for program p:
// the returned DACCE carries the snapshot's graph, every epoch's
// dictionary and decode index, and its controller state. Installing it
// on a machine re-patches all discovered call sites up front, so
// replaying the captured workload executes zero runtime-handler traps.
func WarmStart(path string, p *prog.Program, opt core.Options) (*core.DACCE, error) {
	st, err := Load(path)
	if err != nil {
		return nil, err
	}
	return core.Restore(p, opt, st)
}

// --- payload codec ---

// Section order of the payload. Kept in one place so marshal and
// unmarshal cannot drift.

func marshalPayload(b []byte, st *core.EncoderState) []byte {
	w := writer{b: b}
	w.u64(st.Budget)
	w.u64(uint64(st.Epoch))
	w.u64(uint64(st.Backoff))
	w.i64(int64(st.GTS))
	w.i64(int64(st.EdgesDiscovered))
	w.u64(uint64(uint32(st.Entry)))

	w.count(len(st.Funcs))
	for _, name := range st.Funcs {
		w.str(name)
	}
	w.count(len(st.Sites))
	for _, s := range st.Sites {
		w.u64(uint64(uint32(s.Caller)))
		w.b = append(w.b, s.Kind)
	}
	w.count(len(st.Roots))
	for _, fn := range st.Roots {
		w.u64(uint64(uint32(fn)))
	}
	w.count(len(st.Nodes))
	for _, fn := range st.Nodes {
		w.u64(uint64(uint32(fn)))
	}
	w.count(len(st.Edges))
	for _, e := range st.Edges {
		w.u64(uint64(uint32(e.Site)))
		w.u64(uint64(uint32(e.Target)))
		w.i64(e.Freq)
	}
	w.count(len(st.Tail))
	for _, fn := range st.Tail {
		w.u64(uint64(uint32(fn)))
	}
	w.count(len(st.Compress))
	for _, k := range st.Compress {
		w.u64(uint64(uint32(k.Site)))
		w.u64(uint64(uint32(k.Target)))
	}
	w.count(len(st.Epochs))
	for _, ep := range st.Epochs {
		w.u64(ep.MaxID)
		w.bool(ep.Overflowed)
		w.u64(ep.UnrestrictedMaxID)
		w.i64(int64(ep.Excluded))
		w.i64(int64(ep.EncodedEdges))
		w.count(len(ep.NumCC))
		for _, nc := range ep.NumCC {
			w.u64(uint64(uint32(nc.Fn)))
			w.u64(nc.NumCC)
		}
		w.count(len(ep.Codes))
		for _, c := range ep.Codes {
			w.i64(int64(c.Edge))
			w.bool(c.Encoded)
			w.u64(c.Value)
			w.bool(c.Back)
		}
	}
	return w.b
}

func unmarshalPayload(r *reader) *core.EncoderState {
	st := &core.EncoderState{}
	st.Budget = r.u64()
	st.Epoch = r.u32()
	st.Backoff = r.u32()
	st.GTS = r.intVal("gts")
	st.EdgesDiscovered = r.intVal("edgesDiscovered")
	st.Entry = prog.FuncID(r.id("entry"))

	// minBytesPer guards each count against allocation attacks: a section
	// claiming more elements than the remaining bytes could possibly hold
	// is corrupt.
	nf := r.count("funcs", 1)
	st.Funcs = make([]string, 0, nf)
	for i := 0; i < nf && r.err == nil; i++ {
		st.Funcs = append(st.Funcs, r.str())
	}
	ns := r.count("sites", 2)
	st.Sites = make([]core.StateSite, 0, ns)
	for i := 0; i < ns && r.err == nil; i++ {
		caller := prog.FuncID(r.id("site caller"))
		kind := r.u8()
		st.Sites = append(st.Sites, core.StateSite{Caller: caller, Kind: kind})
	}
	nr := r.count("roots", 1)
	st.Roots = make([]prog.FuncID, 0, nr)
	for i := 0; i < nr && r.err == nil; i++ {
		st.Roots = append(st.Roots, prog.FuncID(r.id("root")))
	}
	nn := r.count("nodes", 1)
	st.Nodes = make([]prog.FuncID, 0, nn)
	for i := 0; i < nn && r.err == nil; i++ {
		st.Nodes = append(st.Nodes, prog.FuncID(r.id("node")))
	}
	ne := r.count("edges", 3)
	st.Edges = make([]core.StateEdge, 0, ne)
	for i := 0; i < ne && r.err == nil; i++ {
		site := prog.SiteID(r.id("edge site"))
		target := prog.FuncID(r.id("edge target"))
		freq := r.i64()
		st.Edges = append(st.Edges, core.StateEdge{Site: site, Target: target, Freq: freq})
	}
	nt := r.count("tail", 1)
	st.Tail = make([]prog.FuncID, 0, nt)
	for i := 0; i < nt && r.err == nil; i++ {
		st.Tail = append(st.Tail, prog.FuncID(r.id("tail entry")))
	}
	nc := r.count("compress", 2)
	st.Compress = make([]graph.EdgeKey, 0, nc)
	for i := 0; i < nc && r.err == nil; i++ {
		site := prog.SiteID(r.id("compress site"))
		target := prog.FuncID(r.id("compress target"))
		st.Compress = append(st.Compress, graph.EdgeKey{Site: site, Target: target})
	}
	nep := r.count("epochs", 5)
	st.Epochs = make([]core.StateEpoch, 0, nep)
	for i := 0; i < nep && r.err == nil; i++ {
		ep := core.StateEpoch{}
		ep.MaxID = r.u64()
		ep.Overflowed = r.bool()
		ep.UnrestrictedMaxID = r.u64()
		ep.Excluded = r.intVal("excluded")
		ep.EncodedEdges = r.intVal("encodedEdges")
		ncc := r.count("numCC", 2)
		ep.NumCC = make([]core.StateNumCC, 0, ncc)
		for j := 0; j < ncc && r.err == nil; j++ {
			fn := prog.FuncID(r.id("numCC fn"))
			n := r.u64()
			ep.NumCC = append(ep.NumCC, core.StateNumCC{Fn: fn, NumCC: n})
		}
		ncd := r.count("codes", 3)
		ep.Codes = make([]core.StateCode, 0, ncd)
		for j := 0; j < ncd && r.err == nil; j++ {
			edge := r.intVal("code edge")
			enc := r.bool()
			val := r.u64()
			back := r.bool()
			ep.Codes = append(ep.Codes, core.StateCode{Edge: edge, Encoded: enc, Value: val, Back: back})
		}
		st.Epochs = append(st.Epochs, ep)
	}
	return st
}

// writer appends varint-coded scalars to a buffer.
type writer struct{ b []byte }

func (w *writer) u64(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *writer) i64(v int64)  { w.b = binary.AppendVarint(w.b, v) }
func (w *writer) count(n int)  { w.u64(uint64(n)) }
func (w *writer) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}
func (w *writer) str(s string) {
	w.count(len(s))
	w.b = append(w.b, s...)
}

// reader consumes varint-coded scalars, latching the first error; all
// reads after an error return zero values, so decode loops need no
// per-field error plumbing.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail("truncated byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	v := r.u64()
	if v > math.MaxUint32 {
		r.fail("value %d overflows uint32", v)
		return 0
	}
	return uint32(v)
}

func (r *reader) bool() bool {
	switch v := r.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bool byte %d", v)
		return false
	}
}

// id reads a non-negative id that must fit an int32.
func (r *reader) id(what string) int32 {
	v := r.u64()
	if v > math.MaxInt32 {
		r.fail("%s id %d overflows int32", what, v)
		return 0
	}
	return int32(v)
}

// intVal reads a zigzag varint that must fit an int.
func (r *reader) intVal(what string) int {
	v := r.i64()
	if v > math.MaxInt32 || v < math.MinInt32 {
		r.fail("%s %d out of range", what, v)
		return 0
	}
	return int(v)
}

// count reads an element count, rejecting counts that could not
// possibly fit in the remaining bytes (each element needs at least
// minBytesPer bytes), so corrupt input cannot trigger huge allocations.
func (r *reader) count(what string, minBytesPer int) int {
	v := r.u64()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)/minBytesPer) {
		r.fail("%s count %d exceeds remaining %d bytes", what, v, len(r.b))
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.count("string length", 1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}
