package persist

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dacce/internal/core"
	"dacce/internal/graph"
	"dacce/internal/prog"
)

// gen derives structured values from a fuzz input, so the fuzzer's byte
// mutations explore the space of valid encoder states deterministically.
type gen struct {
	b []byte
	i int
}

func (g *gen) byte() byte {
	if g.i >= len(g.b) {
		return 0
	}
	v := g.b[g.i]
	g.i++
	return v
}

func (g *gen) u64() uint64 {
	var buf [8]byte
	for i := range buf {
		buf[i] = g.byte()
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// n returns a value in [0, max); max must be > 0.
func (g *gen) n(max int) int { return int(g.u64() % uint64(max)) }

func (g *gen) str() string {
	n := g.n(12)
	s := make([]byte, n)
	for i := range s {
		s[i] = g.byte()
	}
	return string(s)
}

// stateFromBytes builds an arbitrary but structurally valid encoder
// state from fuzz input: all ids in range, epoch chain well formed.
// Everything else — names, frequencies, dictionary contents, set
// membership and ordering — is fuzzer-controlled.
func stateFromBytes(data []byte) *core.EncoderState {
	g := &gen{b: data}
	nf := 1 + g.n(16)
	st := &core.EncoderState{
		Budget:          g.u64(),
		Backoff:         uint32(g.n(8)),
		GTS:             g.n(64),
		EdgesDiscovered: g.n(1 << 16),
		Entry:           prog.FuncID(g.n(nf)),
	}
	for i := 0; i < nf; i++ {
		st.Funcs = append(st.Funcs, g.str())
	}
	ns := g.n(24)
	for i := 0; i < ns; i++ {
		st.Sites = append(st.Sites, core.StateSite{
			Caller: prog.FuncID(g.n(nf)), Kind: g.byte() % 4,
		})
	}
	st.Roots = append(st.Roots, st.Entry)
	for i, n := 0, g.n(4); i < n; i++ {
		st.Roots = append(st.Roots, prog.FuncID(g.n(nf)))
	}
	st.Nodes = append(st.Nodes, st.Entry)
	for i, n := 0, g.n(nf+1); i < n; i++ {
		st.Nodes = append(st.Nodes, prog.FuncID(g.n(nf)))
	}
	if ns > 0 {
		for i, n := 0, g.n(32); i < n; i++ {
			st.Edges = append(st.Edges, core.StateEdge{
				Site:   prog.SiteID(g.n(ns)),
				Target: prog.FuncID(g.n(nf)),
				Freq:   int64(g.u64() >> 1),
			})
		}
		for i, n := 0, g.n(6); i < n; i++ {
			st.Compress = append(st.Compress, graph.EdgeKey{
				Site: prog.SiteID(g.n(ns)), Target: prog.FuncID(g.n(nf)),
			})
		}
	}
	for i, n := 0, g.n(5); i < n; i++ {
		st.Tail = append(st.Tail, prog.FuncID(g.n(nf)))
	}
	nep := 1 + g.n(4)
	st.Epoch = uint32(nep - 1)
	for i := 0; i < nep; i++ {
		ep := core.StateEpoch{
			MaxID:             g.u64(),
			Overflowed:        g.byte()&1 == 1,
			UnrestrictedMaxID: g.u64(),
			Excluded:          g.n(1 << 12),
			EncodedEdges:      g.n(1 << 12),
		}
		for j, n := 0, g.n(nf+1); j < n; j++ {
			ep.NumCC = append(ep.NumCC, core.StateNumCC{
				Fn: prog.FuncID(g.n(nf)), NumCC: g.u64(),
			})
		}
		if len(st.Edges) > 0 {
			for j, n := 0, g.n(len(st.Edges)+1); j < n; j++ {
				ep.Codes = append(ep.Codes, core.StateCode{
					Edge:    g.n(len(st.Edges)),
					Encoded: g.byte()&1 == 1,
					Value:   g.u64(),
					Back:    g.byte()&1 == 1,
				})
			}
		}
		st.Epochs = append(st.Epochs, ep)
	}
	return st
}

// FuzzSnapshotRoundTrip drives arbitrary encoder states through the
// codec: every state the generator can express must marshal, unmarshal
// to an equal state, and hash deterministically.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("persist"))
	f.Add(bytes.Repeat([]byte{0xA5, 0x00, 0xFF, 0x13}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		st := stateFromBytes(data)
		if err := st.Validate(); err != nil {
			t.Fatalf("generator produced an invalid state: %v", err)
		}
		blob, err := Marshal(st)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		blob2, err := Marshal(st)
		if err != nil || !bytes.Equal(blob, blob2) {
			t.Fatalf("marshal is not deterministic (err %v)", err)
		}
		got, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("unmarshal of own output: %v", err)
		}
		if !got.Equal(st) {
			t.Fatal("round trip changed the state")
		}
		if Hash(blob) != Hash(blob2) {
			t.Fatal("hash is not deterministic")
		}
	})
}

// FuzzSnapshotLoad throws arbitrary bytes — including truncated and
// bit-flipped valid snapshots — at Unmarshal: it must either return an
// error or a state that survives a clean round trip. It must never
// panic and never accept structurally invalid state.
func FuzzSnapshotLoad(f *testing.F) {
	// Seed with a valid snapshot and targeted corruptions of it, so the
	// fuzzer starts at the format boundary instead of random noise.
	valid, err := Marshal(stateFromBytes([]byte("seed state")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	trunc := bytes.Clone(valid)
	trunc[len(Magic)+6] ^= 0x80
	f.Add(trunc)
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Unmarshal(data)
		if err != nil {
			return
		}
		if verr := st.Validate(); verr != nil {
			t.Fatalf("Unmarshal accepted an invalid state: %v", verr)
		}
		blob, err := Marshal(st)
		if err != nil {
			t.Fatalf("re-marshal of accepted state: %v", err)
		}
		got, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if !got.Equal(st) {
			t.Fatal("accepted state does not round-trip")
		}
	})
}
