package pcce

import (
	"testing"

	"dacce/internal/core"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/progtest"
)

// runAll executes a scripted program under PCCE with per-call sampling
// and validates every sample against the shadow stack.
func runAll(t *testing.T, p *prog.Program, prof Profile, root []progtest.Call) (*Scheme, *machine.RunStats) {
	t.Helper()
	sc := progtest.NewScript(p)
	sc.Root = root
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	s := New(p, prof, Options{})
	m := machine.New(p, s, machine.Config{SampleEvery: 1})
	rs, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, sm := range rs.Samples {
		ctx, err := s.DecodeSample(sm)
		if err != nil {
			t.Fatalf("sample %d: %v", sm.Seq, err)
		}
		if want := core.ShadowContext(nil, sm.Shadow); !ctx.Equal(want) {
			t.Errorf("sample %d: decoded %v, want %v", sm.Seq, ctx, want)
		}
	}
	return s, rs
}

func TestStaticGraphIncludesFalsePositives(t *testing.T) {
	fx, b := progtest.Fig3()
	p := b.MustBuild()
	fx.P = p
	s := New(p, Profile{}, Options{})
	// The indirect site declares E and I even though a run may never
	// take them: both edges must be in the static graph.
	if s.g.Edge(fx.S("Cind"), fx.F("E")) == nil || s.g.Edge(fx.S("Cind"), fx.F("I")) == nil {
		t.Fatal("declared indirect targets missing from static graph")
	}
	// numCC(I) counts contexts through both the declared indirect edge
	// and E→I; a dynamic encoder that never sees C→I would need less.
	if s.asn.NumCC[fx.F("I")] < 2 {
		t.Errorf("numCC(I) = %d, want ≥ 2 with the false-positive edge", s.asn.NumCC[fx.F("I")])
	}
}

func TestMixedPathsDecode(t *testing.T) {
	fx, b := progtest.Fig3()
	p := b.MustBuild()
	fx.P = p
	prof := Profile{
		{Site: fx.S("AB"), Target: fx.F("B")}:   10,
		{Site: fx.S("BD"), Target: fx.F("D")}:   10,
		{Site: fx.S("AC"), Target: fx.F("C")}:   5,
		{Site: fx.S("CD"), Target: fx.F("D")}:   3,
		{Site: fx.S("DF"), Target: fx.F("F")}:   13,
		{Site: fx.S("Cind"), Target: fx.F("E")}: 2,
		{Site: fx.S("EI"), Target: fx.F("I")}:   2,
	}
	root := []progtest.Call{
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DF")))),
		progtest.By(fx.S("AC"),
			progtest.By(fx.S("CD"), progtest.By(fx.S("DF"))),
			progtest.ByT(fx.S("Cind"), fx.F("E"), progtest.By(fx.S("EI"))),
			progtest.ByT(fx.S("Cind"), fx.F("I"))),
	}
	s, rs := runAll(t, p, prof, root)
	if rs.C.Compares == 0 {
		t.Error("indirect compare chain never executed")
	}
	if got := s.UnknownTargets(); got != 0 {
		t.Errorf("UnknownTargets = %d, want 0 (all targets declared)", got)
	}
	// The hottest in-edges carry code 0: B→D is hotter than C→D.
	c, _ := s.asn.CodeOf(s.g.Edge(fx.S("BD"), fx.F("D")))
	if c.Value != 0 {
		t.Errorf("profile-hot edge BD got code %d, want 0", c.Value)
	}
}

func TestUndeclaredIndirectTarget(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	e := b.Func("onlyDeclared")
	x := b.Func("surprise") // invoked but not in the points-to set
	ind := b.IndirectSite(mainF, e)
	b.Leaf(e, 1)
	b.Leaf(x, 1)
	p := b.MustBuild()

	root := []progtest.Call{
		progtest.ByT(ind, e),
		progtest.ByT(ind, x),
		progtest.ByT(ind, x),
	}
	s, _ := runAll(t, p, Profile{}, root)
	if got := s.UnknownTargets(); got != 2 {
		t.Errorf("UnknownTargets = %d, want 2", got)
	}
}

func TestRecursionViaStack(t *testing.T) {
	fx, b := progtest.Fig5()
	p := b.MustBuild()
	fx.P = p
	// Static classification sees the cycle A→C→D→A (or A→D→A): the
	// back edge is excluded and handled on the ccStack.
	root := []progtest.Call{
		progtest.By(fx.S("AD"),
			progtest.By(fx.S("DA"),
				progtest.By(fx.S("AC"),
					progtest.By(fx.S("CD"),
						progtest.By(fx.S("DA"),
							progtest.By(fx.S("AD"))))))),
	}
	_, rs := runAll(t, p, Profile{}, root)
	if rs.C.CCPush == 0 {
		t.Error("recursive run never touched the ccStack")
	}
}

func TestTailRestoreStatic(t *testing.T) {
	fx, b := progtest.Fig7()
	p := b.MustBuild()
	fx.P = p
	// PCCE knows statically that C contains a tail call, so A's call to
	// C saves/restores; path ACDF then ABDF must both decode (the
	// Fig. 7a bug would corrupt the second).
	root := []progtest.Call{
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"), progtest.By(fx.S("DF")))),
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DF")))),
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"), progtest.By(fx.S("DE")))),
	}
	_, rs := runAll(t, p, Profile{}, root)
	if rs.C.TcSaves == 0 {
		t.Error("tail-containing callee never triggered a TcStack save")
	}
}

func TestLazyModuleAlwaysSaves(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	lib := b.Module("plugin.so", true)
	pf := b.FuncIn("plugin_entry", lib)
	pg := b.FuncIn("plugin_helper", lib)
	mp := b.PLTSite(mainF, pf)
	pp := b.CallSite(pf, pg)
	p := b.MustBuild()

	root := []progtest.Call{
		progtest.By(mp, progtest.By(pp)),
		progtest.By(mp, progtest.By(pp)),
	}
	s, rs := runAll(t, p, Profile{}, root)
	if rs.C.CCPush == 0 {
		t.Error("calls through the lazy module never pushed: static PCCE should be unable to encode them")
	}
	// The lazy functions must not appear in the static graph.
	if s.g.Node(pf) != nil || s.g.Node(pg) != nil {
		t.Error("lazily loaded functions leaked into the static graph")
	}
}

func TestOverflowFromColdEdges(t *testing.T) {
	// 70 stacked diamonds (2^70 static paths) where the profile says
	// only one side of each diamond ever runs: the unrestricted
	// encoding overflows and never-invoked edges are deleted.
	b := prog.NewBuilder()
	prev := b.Func("main")
	prof := Profile{}
	type lay struct{ hot prog.SiteID }
	var hotPath []lay
	for i := 0; i < 70; i++ {
		l := b.Func(fmtN("l", i))
		r := b.Func(fmtN("r", i))
		next := b.Func(fmtN("j", i))
		sl := b.CallSite(prev, l)
		sr := b.CallSite(prev, r)
		sln := b.CallSite(l, next)
		srn := b.CallSite(r, next)
		prof[graph.EdgeKey{Site: sl, Target: l}] = 100
		prof[graph.EdgeKey{Site: sln, Target: next}] = 100
		prof[graph.EdgeKey{Site: sr, Target: r}] = 0
		prof[graph.EdgeKey{Site: srn, Target: next}] = 0
		hotPath = append(hotPath, lay{hot: sl})
		prev = next
	}
	p := b.MustBuild()
	s := New(p, prof, Options{})
	if !s.Overflowed() {
		t.Fatal("2^70-path static graph did not overflow")
	}
	if s.MaxID() > s.opt.Budget {
		t.Errorf("budgeted MaxID %d above budget", s.MaxID())
	}
	_ = hotPath
}

func fmtN(p string, i int) string {
	return p + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestPCCEVsDACCEEncodingSpace demonstrates Table 1's headline: for the
// same program and run, DACCE's dynamic graph and maxID are no larger
// than PCCE's static ones, because only invoked edges are encoded.
func TestPCCEVsDACCEEncodingSpace(t *testing.T) {
	fx, b := progtest.Fig3()
	p := b.MustBuild()
	fx.P = p
	root := []progtest.Call{
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DF")))),
	}

	run := func(s machine.Scheme) {
		sc := progtest.NewScript(p)
		sc.Root = root
		for _, f := range p.Funcs {
			f.Body = sc.Body()
		}
		m := machine.New(p, s, machine.Config{})
		if _, err := m.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
	}

	ps := New(p, Profile{}, Options{})
	run(ps)
	d := core.New(p, core.Options{})
	run(d)
	d.ForceReencode(nil)

	if d.Graph().NumEdges() >= ps.Graph().NumEdges() {
		t.Errorf("dynamic edges %d not smaller than static %d", d.Graph().NumEdges(), ps.Graph().NumEdges())
	}
	if d.MaxID() > ps.MaxID() {
		t.Errorf("DACCE maxID %d exceeds PCCE maxID %d", d.MaxID(), ps.MaxID())
	}
}

// TestThreadedSpawnDecode checks PCCE's spawn-context chaining: samples
// from worker threads decode with the spawn-path prefix (paper §5.3).
func TestThreadedSpawnDecode(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	worker := b.Func("worker")
	b.ThreadRoot(worker)
	job := b.Func("job")
	wj := b.CallSite(worker, job)
	b.Body(mainF, func(x prog.Exec) {
		x.Spawn(worker)
		x.Spawn(worker)
	})
	b.Body(worker, func(x prog.Exec) {
		for i := 0; i < 40; i++ {
			x.Call(wj, prog.NoFunc)
		}
	})
	b.Leaf(job, 1)
	p := b.MustBuild()
	s := New(p, Profile{}, Options{})
	m := machine.New(p, s, machine.Config{SampleEvery: 7})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	spawnShadow := map[int][]machine.Frame{}
	for _, th := range m.Threads() {
		spawnShadow[th.ID()] = th.SpawnShadow
	}
	checked := 0
	for _, sm := range rs.Samples {
		if sm.Thread == 0 {
			continue
		}
		ctx, err := s.DecodeSample(sm)
		if err != nil {
			t.Fatalf("thread %d: %v", sm.Thread, err)
		}
		want := core.ShadowContext(spawnShadow[sm.Thread], sm.Shadow)
		if !ctx.Equal(want) {
			t.Fatalf("thread %d: %v != %v", sm.Thread, ctx, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no worker samples validated")
	}
}
