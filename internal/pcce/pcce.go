// Package pcce implements the paper's baseline: Precise Calling Context
// Encoding (Sumner et al., ICSE '10), simulated the way the paper's
// evaluation does (§6.1) — a purely static encoder fed a full-potential
// profile gathered with the same input as the real run.
//
// Differences from DACCE that this implementation reproduces:
//
//   - The call graph is built statically before the run: every direct
//     and tail edge, every PLT edge into an eagerly loaded module, and
//     one edge per points-to-declared target of every indirect site —
//     including targets that never execute (the false positives of
//     paper §2.2 Issue 1). Nothing is ever added at run time.
//
//   - Cold declared edges can close cycles that classify hot edges as
//     back edges, inflating ccStack traffic (the paper's explanation for
//     PCCE's perlbench/xalancbmk overhead, §6.4).
//
//   - numCC over the full static graph can overflow a 64-bit id
//     (perlbench, gcc in Table 1); edges never invoked according to the
//     profile are then deleted until the encoding fits.
//
//   - Indirect calls dispatch through an inline compare chain over the
//     declared targets ordered hottest-first by the profile; there is no
//     hash table (that is DACCE's addition, §3.2), so many-target sites
//     pay a comparison per miss (the x264 story of §6.4).
//
//   - Functions in lazily loaded modules are invisible to the static
//     encoder: calls into and inside them always save/restore on the
//     ccStack (paper §2.2 Issue 2).
//
// Like the paper's simulation, this PCCE borrows DACCE's run-time
// representation for the unencodable cases (save <id, callsite, target>
// and set id = maxID+1) instead of the original's dummy-edge scheme;
// the operation count — and therefore the cost model — is identical,
// and it lets both encoders share one decoder.
package pcce

import (
	"fmt"
	"sort"
	"sync"

	"dacce/internal/blenc"
	"dacce/internal/core"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// Profile is the offline profiling input: invocation counts per edge,
// as gathered by a prior run with the same input (the paper profiles
// with Pin, §6.1).
type Profile map[graph.EdgeKey]int64

// Options configures the static encoder.
type Options struct {
	// Budget caps the maximum context id (default blenc.DefaultBudget,
	// the 64-bit regime of the paper).
	Budget uint64
}

// Scheme is the PCCE baseline, a machine.Scheme.
type Scheme struct {
	opt Options
	p   *prog.Program
	g   *graph.Graph
	asn *blenc.Assignment
	dec *core.Decoder

	tailContaining map[prog.FuncID]bool
	lazyFn         map[prog.FuncID]bool

	stubs []machine.Stub // per site, built once
	epi   *epiStub

	mu             sync.Mutex
	unknownTargets int64
}

// tls is PCCE's thread-local state: id and ccStack, as in core.
type tls struct {
	id uint64
	cc []core.CCEntry
}

// New builds the static encoding for p under the given profile.
func New(p *prog.Program, prof Profile, opt Options) *Scheme {
	if opt.Budget == 0 {
		opt.Budget = blenc.DefaultBudget
	}
	s := &Scheme{
		opt:            opt,
		p:              p,
		g:              graph.New(p),
		tailContaining: make(map[prog.FuncID]bool),
		lazyFn:         make(map[prog.FuncID]bool),
	}
	s.epi = &epiStub{s: s}

	for _, f := range p.Funcs {
		if p.Modules[f.Module].Lazy {
			s.lazyFn[f.ID] = true
		}
	}

	// Thread start routines are additional static roots (§5.3).
	for _, r := range p.ThreadRoots {
		if !s.lazyFn[r] {
			s.g.AddRoot(r)
		}
	}

	// Build the complete static call graph.
	for _, site := range p.Sites {
		if s.lazyFn[site.Caller] {
			continue // invisible to the static tool
		}
		switch site.Kind {
		case prog.Normal, prog.Tail:
			if !s.lazyFn[site.Target] {
				s.g.AddEdge(site.ID, site.Target)
			}
		case prog.PLT:
			if t := p.PLT[site.ID]; !s.lazyFn[t] {
				s.g.AddEdge(site.ID, t)
			}
		case prog.Indirect, prog.TailIndirect:
			for _, t := range site.Declared {
				if !s.lazyFn[t] {
					s.g.AddEdge(site.ID, t)
				}
			}
		}
		if site.Kind.IsTail() {
			s.tailContaining[site.Caller] = true
		}
	}

	// Seed frequencies from the profile so hot edges get code 0 and
	// overflow handling deletes never-invoked edges first.
	for _, e := range s.g.Edges {
		e.Freq = prof[graph.EdgeKey{Site: e.Site, Target: e.Target}]
	}

	s.asn = blenc.Encode(s.g, blenc.Options{Budget: opt.Budget})
	s.dec = &core.Decoder{P: p, G: s.g, Dicts: []*blenc.Assignment{s.asn}}
	s.buildStubs(prof)
	return s
}

// Name implements machine.Scheme.
func (s *Scheme) Name() string { return "pcce" }

// Graph returns the static call graph.
func (s *Scheme) Graph() *graph.Graph { return s.g }

// Assignment returns the static encoding.
func (s *Scheme) Assignment() *blenc.Assignment { return s.asn }

// MaxID returns the static encoding's maximum id.
func (s *Scheme) MaxID() uint64 { return s.asn.MaxID }

// Overflowed reports whether the unrestricted static encoding exceeded
// the id budget (Table 1's "overflow").
func (s *Scheme) Overflowed() bool { return s.asn.Overflowed }

// UnknownTargets returns how many indirect invocations missed the
// declared-target set at run time.
func (s *Scheme) UnknownTargets() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unknownTargets
}

// Install implements machine.Scheme: the program is instrumented once,
// before execution.
func (s *Scheme) Install(m *machine.Machine) {
	for i, st := range s.stubs {
		m.SetStub(prog.SiteID(i), st)
	}
}

// ThreadStart implements machine.Scheme.
func (s *Scheme) ThreadStart(t, parent *machine.Thread) {
	t.State = &tls{}
	if parent != nil {
		t.SpawnCapture = s.Capture(parent)
	}
}

// ThreadExit implements machine.Scheme.
func (s *Scheme) ThreadExit(t *machine.Thread) {}

// Capture implements machine.Scheme. PCCE captures always carry epoch 0
// — there is only one, static, encoding.
func (s *Scheme) Capture(t *machine.Thread) any {
	st := t.State.(*tls)
	c := &core.Capture{
		ID:   st.id,
		Fn:   t.SelfID(),
		Root: t.Entry(),
		CC:   append([]core.CCEntry(nil), st.cc...),
	}
	if sc, ok := t.SpawnCapture.(*core.Capture); ok {
		c.Spawn = sc
	}
	t.C.CCDepthSum += int64(len(st.cc))
	t.C.CCDepthN++
	return c
}

// Decode decodes a PCCE capture.
func (s *Scheme) Decode(c *core.Capture) (core.Context, error) {
	return s.dec.Decode(c)
}

// DecodeSample decodes the capture of a machine sample.
func (s *Scheme) DecodeSample(sm machine.Sample) (core.Context, error) {
	c, ok := sm.Capture.(*core.Capture)
	if !ok {
		return nil, fmt.Errorf("pcce: sample does not hold a capture")
	}
	return s.dec.Decode(c)
}

// DecodeCapture decodes an untyped scheme capture — the uniform decode
// shape shared with the other context trackers.
func (s *Scheme) DecodeCapture(capture any) (core.Context, error) {
	c, ok := capture.(*core.Capture)
	if !ok {
		return nil, fmt.Errorf("pcce: capture is %T, not a capture", capture)
	}
	return s.dec.Decode(c)
}

// action mirrors core's per-edge decision, computed statically.
type action struct {
	target prog.FuncID
	kind   uint8 // 0 encoded, 1 unencoded/recursive push
	code   uint64
	save   bool
}

const (
	actEncoded = 0
	actPush    = 1
)

// buildStubs derives one static stub per call site.
func (s *Scheme) buildStubs(prof Profile) {
	s.stubs = make([]machine.Stub, s.p.NumSites())
	markID := s.asn.MaxID + 1
	for i := range s.stubs {
		site := s.p.Site(prog.SiteID(i))
		if s.lazyFn[site.Caller] {
			// Uninstrumentable statically: every call saves and, unless
			// it is itself a tail call (no instruction after the jmp),
			// restores the full encoding context.
			s.stubs[i] = &pushStub{s: s, site: site.ID, markID: markID, save: !site.Kind.IsTail()}
			continue
		}
		switch site.Kind {
		case prog.Normal, prog.Tail, prog.PLT:
			s.stubs[i] = s.directStub(site, markID)
		default:
			s.stubs[i] = s.indirectStub(site, prof, markID)
		}
	}
}

func (s *Scheme) actionFor(site *prog.Site, target prog.FuncID) action {
	a := action{target: target}
	if !site.Kind.IsTail() {
		// Save/restore around callees that contain tail calls (Fig. 7b)
		// and, conservatively, around anything in a lazily loaded
		// module, whose tail behaviour the static tool cannot see.
		a.save = s.tailContaining[target] || s.lazyFn[target]
	}
	e := s.g.Edge(site.ID, target)
	if e == nil {
		a.kind = actPush
		return a
	}
	code, ok := s.asn.CodeOf(e)
	if ok && code.Encoded {
		a.kind = actEncoded
		a.code = code.Value
	} else {
		a.kind = actPush
	}
	return a
}

func (s *Scheme) directStub(site *prog.Site, markID uint64) machine.Stub {
	target := site.Target
	if site.Kind == prog.PLT {
		target = s.p.PLT[site.ID]
	}
	a := s.actionFor(site, target)
	if a.kind == actEncoded && a.code == 0 && !a.save {
		return machine.PlainStub()
	}
	return &directStub{s: s, site: site.ID, markID: markID, act: a}
}

func (s *Scheme) indirectStub(site *prog.Site, prof Profile, markID uint64) machine.Stub {
	// Inline compare chain over declared targets, hottest first — the
	// profile-guided ordering the paper grants PCCE.
	targets := append([]prog.FuncID(nil), site.Declared...)
	sort.SliceStable(targets, func(i, j int) bool {
		fi := prof[graph.EdgeKey{Site: site.ID, Target: targets[i]}]
		fj := prof[graph.EdgeKey{Site: site.ID, Target: targets[j]}]
		return fi > fj
	})
	acts := make([]action, 0, len(targets))
	for _, tg := range targets {
		if s.lazyFn[tg] {
			continue
		}
		acts = append(acts, s.actionFor(site, tg))
	}
	return &inlineStub{s: s, site: site.ID, markID: markID, acts: acts}
}
