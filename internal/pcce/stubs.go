package pcce

import (
	"fmt"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// Cookie tags shared by all PCCE stubs.
const (
	tagNone uint8 = iota
	tagEnc        // id -= A
	tagPop        // id = ccStack.pop().ID
	tagSave       // id = A; ccStack truncated to B
)

// apply performs one action's prologue on the thread, returning the
// epilogue cookie. PCCE never patches, so there is no replay variant.
func (s *Scheme) apply(t *machine.Thread, st *tls, sid prog.SiteID, target prog.FuncID, a action, markID uint64) machine.Cookie {
	if a.kind == actEncoded {
		if a.save {
			ck := machine.Cookie{Tag: tagSave, A: st.id, B: uint64(len(st.cc))}
			st.id += a.code
			t.C.TcSaves++
			t.C.InstrCost += machine.CostTcSave
			if a.code > 0 {
				t.C.InstrCost += machine.CostIDAdd
			}
			return ck
		}
		if a.code == 0 {
			return machine.Cookie{Tag: tagNone}
		}
		st.id += a.code
		t.C.InstrCost += machine.CostIDAdd
		return machine.Cookie{Tag: tagEnc, A: a.code}
	}
	// Push path (recursive, unencodable, unknown or excluded edge).
	if a.save {
		ck := machine.Cookie{Tag: tagSave, A: st.id, B: uint64(len(st.cc))}
		s.push(t, st, sid, target)
		st.id = markID
		t.C.TcSaves++
		t.C.InstrCost += machine.CostTcSave
		return ck
	}
	s.push(t, st, sid, target)
	st.id = markID
	return machine.Cookie{Tag: tagPop}
}

func (s *Scheme) push(t *machine.Thread, st *tls, sid prog.SiteID, target prog.FuncID) {
	st.cc = append(st.cc, core.CCEntry{ID: st.id, Site: sid, Target: target})
	t.C.CCPush++
	t.C.InstrCost += machine.CostCCPush
	if len(st.cc) > t.C.MaxCCDepth {
		t.C.MaxCCDepth = len(st.cc)
	}
}

// epiStub is the shared epilogue, dispatching on the cookie tag.
type epiStub struct{ s *Scheme }

func (e *epiStub) Prologue(t *machine.Thread, site *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	panic("pcce: epilogue stub used as prologue")
}

func (e *epiStub) Epilogue(t *machine.Thread, site *prog.Site, target prog.FuncID, c machine.Cookie) {
	st := t.State.(*tls)
	switch c.Tag {
	case tagNone:
	case tagEnc:
		st.id -= c.A
		t.C.InstrCost += machine.CostIDAdd
	case tagPop:
		n := len(st.cc)
		if n == 0 {
			panic("pcce: ccStack underflow on return")
		}
		st.id = st.cc[n-1].ID
		st.cc = st.cc[:n-1]
		t.C.CCPop++
		t.C.InstrCost += machine.CostCCPop
	case tagSave:
		st.id = c.A
		if int(c.B) > len(st.cc) {
			panic("pcce: TcStack restore past ccStack top")
		}
		st.cc = st.cc[:c.B]
		t.C.TcSaves++
		t.C.InstrCost += machine.CostTcSave
	default:
		panic(fmt.Sprintf("pcce: unknown cookie tag %d", c.Tag))
	}
}

// directStub instruments a direct, tail or PLT site.
type directStub struct {
	s      *Scheme
	site   prog.SiteID
	markID uint64
	act    action
}

func (d *directStub) Prologue(t *machine.Thread, site *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	st := t.State.(*tls)
	return d.s.apply(t, st, d.site, target, d.act, d.markID), d.s.epi
}

func (d *directStub) Epilogue(t *machine.Thread, site *prog.Site, target prog.FuncID, c machine.Cookie) {
	d.s.epi.Epilogue(t, site, target, c)
}

// pushStub always saves/restores: sites inside lazily loaded modules,
// which the static encoder never saw.
type pushStub struct {
	s      *Scheme
	site   prog.SiteID
	markID uint64
	save   bool
}

func (p *pushStub) Prologue(t *machine.Thread, site *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	st := t.State.(*tls)
	a := action{target: target, kind: actPush, save: p.save}
	return p.s.apply(t, st, p.site, target, a, p.markID), p.s.epi
}

func (p *pushStub) Epilogue(t *machine.Thread, site *prog.Site, target prog.FuncID, c machine.Cookie) {
	p.s.epi.Epilogue(t, site, target, c)
}

// inlineStub dispatches an indirect site through the compare chain over
// its declared targets. Unknown targets (points-to misses, dlopened
// callbacks) fall through to a ccStack save — and are counted, because
// they are exactly what static encoding cannot handle.
type inlineStub struct {
	s      *Scheme
	site   prog.SiteID
	markID uint64
	acts   []action
}

func (is *inlineStub) Prologue(t *machine.Thread, site *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	st := t.State.(*tls)
	for i := range is.acts {
		t.C.Compares++
		t.C.InstrCost += machine.CostCompare
		if is.acts[i].target == target {
			return is.s.apply(t, st, is.site, target, is.acts[i], is.markID), is.s.epi
		}
	}
	is.s.mu.Lock()
	is.s.unknownTargets++
	is.s.mu.Unlock()
	save := (is.s.tailContaining[target] || is.s.lazyFn[target]) && !site.Kind.IsTail()
	a := action{target: target, kind: actPush, save: save}
	return is.s.apply(t, st, is.site, target, a, is.markID), is.s.epi
}

func (is *inlineStub) Epilogue(t *machine.Thread, site *prog.Site, target prog.FuncID, c machine.Cookie) {
	is.s.epi.Epilogue(t, site, target, c)
}
