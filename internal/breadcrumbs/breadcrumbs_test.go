package breadcrumbs

import (
	"testing"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/progtest"
	"dacce/internal/workload"
)

func TestReconstructSimplePath(t *testing.T) {
	fx, b := progtest.Fig1()
	p := b.MustBuild()
	fx.P = p
	s := New(p)
	sc := progtest.NewScript(p)
	sc.Root = []progtest.Call{
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DE")))),
	}
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	m := machine.New(p, s, machine.Config{SampleEvery: 1})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range rs.Samples {
		c := sm.Capture.(Capture)
		res := s.Reconstruct(c, p.Entry, 0)
		if len(res.Contexts) != 1 {
			t.Fatalf("sample %d: %s, want unique", sm.Seq, res.Describe())
		}
		want := core.ShadowContext(nil, sm.Shadow)
		if !res.Contexts[0].Equal(want) {
			t.Errorf("sample %d: reconstructed %v, want %v", sm.Seq, res.Contexts[0], want)
		}
	}
}

func TestReconstructionCoversWorkloadSamples(t *testing.T) {
	pr, _ := workload.ByName("429.mcf")
	pr.TotalCalls = 4_000
	w := workload.MustBuild(pr)
	s := New(w.P)
	m := w.NewMachine(s, machine.Config{SampleEvery: 31})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	unique, other := 0, 0
	for _, sm := range rs.Samples {
		c := sm.Capture.(Capture)
		res := s.Reconstruct(c, w.P.Entry, 0)
		match := false
		want := core.ShadowContext(nil, sm.Shadow)
		for _, ctx := range res.Contexts {
			if ctx.Equal(want) {
				match = true
			}
		}
		if !match && !res.Truncated {
			t.Errorf("sample %d: true context not among %d reconstructions", sm.Seq, len(res.Contexts))
		}
		if len(res.Contexts) == 1 && !res.Truncated {
			unique++
		} else {
			other++
		}
	}
	if unique == 0 {
		t.Error("no sample reconstructed uniquely")
	}
	t.Logf("unique %d, ambiguous/failed %d", unique, other)
}

func TestReconstructFailsOnGarbage(t *testing.T) {
	fx, b := progtest.Fig1()
	p := b.MustBuild()
	fx.P = p
	s := New(p)
	res := s.Reconstruct(Capture{V: 123456789, Fn: fx.F("E")}, p.Entry, 1000)
	if len(res.Contexts) != 0 {
		t.Errorf("garbage value reconstructed: %v", res.Contexts)
	}
}

func TestDescribe(t *testing.T) {
	if got := (Result{Contexts: []core.Context{{}}}).Describe(); got != "unique" {
		t.Errorf("unique → %q", got)
	}
	if got := (Result{Contexts: []core.Context{{}, {}}}).Describe(); got != "ambiguous(2)" {
		t.Errorf("ambiguous → %q", got)
	}
	if got := (Result{Truncated: true}).Describe(); got != "failed(budget)" {
		t.Errorf("truncated → %q", got)
	}
	if got := (Result{}).Describe(); got != "failed" {
		t.Errorf("empty → %q", got)
	}
}

// TestAmbiguityArises constructs two different paths with the same hash
// — V is path-dependent, but the declared indirect fan can alias when a
// site id appears at two graph positions; here we force it with two
// sites whose ids produce the same chain.
func TestAmbiguityArises(t *testing.T) {
	// main calls f via s0 then g via s1; f and g both call h. Values at
	// h: 3*(s_mf+1)+(s_fh+1) vs 3*(s_mg+1)+(s_gh+1). Pick an id layout
	// making them equal: sites are numbered in creation order, so
	// s_mf=0, s_mg=1, s_fh=2, s_gh=3 ⇒ 3·1+3=6 vs 3·2+4=10 — not equal.
	// Create h-edges in swapped order instead: s_fh=3, s_gh=2 ⇒
	// 3·1+4=7 vs 3·2+3=9 — still unequal; equality needs
	// 3(a-b) = d-c. Use main→f (0), main→g (1) and f→h (5), g→h (2):
	// 3·1+6=9 vs 3·2+3=9. Pad with dummy sites to get those ids.
	b := prog.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	g := b.Func("g")
	h := b.Func("h")
	dummy := b.Func("dummy")
	smf := b.CallSite(mainF, f) // 0
	smg := b.CallSite(mainF, g) // 1
	sgh := b.CallSite(g, h)     // 2
	b.CallSite(dummy, dummy)    // 3
	b.CallSite(dummy, dummy)    // 4
	sfh := b.CallSite(f, h)     // 5
	var caps []Capture
	var s *Scheme
	grab := func(x prog.Exec) {
		caps = append(caps, s.Capture(x.(*machine.Thread)).(Capture))
	}
	b.Body(mainF, func(x prog.Exec) {
		x.Call(smf, prog.NoFunc)
		x.Call(smg, prog.NoFunc)
	})
	b.Body(f, func(x prog.Exec) { x.Call(sfh, prog.NoFunc) })
	b.Body(g, func(x prog.Exec) { x.Call(sgh, prog.NoFunc) })
	b.Body(h, func(x prog.Exec) { grab(x) })
	p := b.MustBuild()
	s = New(p)
	m := machine.New(p, s, machine.Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(caps) != 2 {
		t.Fatalf("got %d captures", len(caps))
	}
	if caps[0].V != caps[1].V {
		t.Fatalf("hash values differ (%d vs %d); aliasing setup broken", caps[0].V, caps[1].V)
	}
	res := s.Reconstruct(caps[0], p.Entry, 0)
	if len(res.Contexts) != 2 {
		t.Errorf("aliased value reconstructed %s, want ambiguous(2)", res.Describe())
	}
}
