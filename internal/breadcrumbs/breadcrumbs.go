// Package breadcrumbs implements the reconstruction-based baseline the
// paper cites as [5] (Bond, Baker, Guyer — "Breadcrumbs", PLDI '10):
// the runtime maintains only the probabilistic-calling-context hash
// V ← 3·V + cs (essentially free), and an offline analysis tries to
// invert captured values by searching the *static* call graph for call
// paths whose hash matches. Reconstruction can be ambiguous or fail —
// exactly the weakness the paper contrasts precise encodings against
// ("this may cause reconstruction to fail. On average, the runtime
// overhead is 10% to 20%", §7).
//
// The search walks backwards: a value V at function f was produced from
// some in-edge with site s iff V ≡ s+1 (mod 3) has a consistent
// predecessor value (V-(s+1))/3; candidates multiply at every step, so
// the searcher bounds its work and reports ambiguity.
package breadcrumbs

import (
	"fmt"

	"dacce/internal/core"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// Value is the hashed context identifier (same chain as package pcc).
type Value uint64

// Capture pairs the value with the function it was taken in — the
// minimum a Breadcrumbs-style tool records per sample.
type Capture struct {
	V  Value
	Fn prog.FuncID
}

// tls is the per-thread hash state.
type tls struct{ v Value }

// Scheme is the Breadcrumbs-style baseline.
type Scheme struct {
	p *prog.Program
	g *graph.Graph // static call graph for reconstruction
}

// New builds the scheme; the static graph is assembled from the
// program's declared structure, as an offline analysis would.
func New(p *prog.Program) *Scheme {
	s := &Scheme{p: p, g: graph.New(p)}
	for _, r := range p.ThreadRoots {
		s.g.AddRoot(r)
	}
	for _, site := range p.Sites {
		switch site.Kind {
		case prog.Normal, prog.Tail:
			s.g.AddEdge(site.ID, site.Target)
		case prog.PLT:
			s.g.AddEdge(site.ID, p.PLT[site.ID])
		case prog.Indirect, prog.TailIndirect:
			for _, t := range site.Declared {
				s.g.AddEdge(site.ID, t)
			}
		}
	}
	return s
}

// Name implements machine.Scheme.
func (*Scheme) Name() string { return "breadcrumbs" }

// Install implements machine.Scheme.
func (s *Scheme) Install(m *machine.Machine) {
	st := &stub{}
	for i := 0; i < s.p.NumSites(); i++ {
		m.SetStub(prog.SiteID(i), st)
	}
}

// ThreadStart implements machine.Scheme.
func (s *Scheme) ThreadStart(t, parent *machine.Thread) {
	state := &tls{}
	if parent != nil {
		state.v = parent.State.(*tls).v
	}
	t.State = state
}

// ThreadExit implements machine.Scheme.
func (*Scheme) ThreadExit(t *machine.Thread) {}

// Capture implements machine.Scheme.
func (s *Scheme) Capture(t *machine.Thread) any {
	return Capture{V: t.State.(*tls).v, Fn: t.SelfID()}
}

// Result is a reconstruction outcome.
type Result struct {
	// Contexts holds every call path whose hash matches; exactly one
	// means unambiguous success.
	Contexts []core.Context
	// Truncated reports that the search hit its work bound, so more
	// matches may exist.
	Truncated bool
}

// DefaultSearchBudget bounds reconstruction work (search tree nodes).
const DefaultSearchBudget = 1 << 16

// maxMatches bounds how many matching paths are materialized.
const maxMatches = 8

// Reconstruct inverts a capture against the static call graph. root is
// the thread entry the path must start at (prog.Program.Entry for the
// initial thread).
func (s *Scheme) Reconstruct(c Capture, root prog.FuncID, budget int) Result {
	if budget <= 0 {
		budget = DefaultSearchBudget
	}
	res := Result{}
	var rev []core.ContextFrame
	var dfs func(fn prog.FuncID, v Value, depth int)
	work := 0
	dfs = func(fn prog.FuncID, v Value, depth int) {
		if work++; work > budget {
			res.Truncated = true
			return
		}
		if len(res.Contexts) >= maxMatches {
			res.Truncated = true
			return
		}
		if v == 0 && fn == root {
			ctx := make(core.Context, 0, len(rev)+1)
			ctx = append(ctx, core.ContextFrame{Site: prog.NoSite, Fn: root})
			for i := len(rev) - 1; i >= 0; i-- {
				ctx = append(ctx, rev[i])
			}
			res.Contexts = append(res.Contexts, ctx)
			// Keep searching: other paths may hash identically.
		}
		if depth > 512 {
			return
		}
		n := s.g.Node(fn)
		if n == nil {
			return
		}
		for _, e := range n.In {
			step := Value(e.Site) + 1
			if v < step || (v-step)%3 != 0 {
				continue
			}
			rev = append(rev, core.ContextFrame{Site: e.Site, Fn: fn})
			dfs(e.Caller, (v-step)/3, depth+1)
			rev = rev[:len(rev)-1]
		}
	}
	dfs(c.Fn, c.V, 0)
	return res
}

// stub updates the hash around every call; tail calls never restore
// (drift adds noise, as in the real system).
type stub struct{}

func (st *stub) Prologue(t *machine.Thread, site *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	state := t.State.(*tls)
	t.C.InstrCost += machine.CostPCCHash
	prev := state.v
	state.v = 3*state.v + Value(site.ID) + 1
	return machine.Cookie{A: uint64(prev)}, st
}

func (st *stub) Epilogue(t *machine.Thread, site *prog.Site, target prog.FuncID, c machine.Cookie) {
	state := t.State.(*tls)
	state.v = Value(c.A)
}

// Describe renders a result for reports.
func (r Result) Describe() string {
	switch {
	case len(r.Contexts) == 1 && !r.Truncated:
		return "unique"
	case len(r.Contexts) == 1:
		return "unique-but-truncated"
	case len(r.Contexts) > 1:
		return fmt.Sprintf("ambiguous(%d)", len(r.Contexts))
	case r.Truncated:
		return "failed(budget)"
	default:
		return "failed"
	}
}
