// Package prog defines the program model that the DACCE machine executes.
//
// A Program is a set of Functions grouped into Modules. Each Function has
// a list of call Sites and a Body. The Body is ordinary Go code written
// against the Exec interface: it performs abstract work and invokes call
// sites. Sites carry the static information an encoder may rely on (kind,
// declared targets from a points-to analysis), while the actual target of
// an invocation is supplied at run time, exactly as with a binary.
//
// The model distinguishes the call kinds the paper treats specially:
// normal direct calls, indirect calls (function pointers / virtual
// dispatch), tail calls (direct and indirect), and PLT calls into other
// modules whose real target is resolved lazily at run time. Modules can be
// marked lazily loaded (dlopen) so that no static information about them
// exists before the first call into them.
package prog

import (
	"fmt"
	"math/rand/v2"
)

// FuncID identifies a function within a Program.
type FuncID int32

// SiteID identifies a call site within a Program.
type SiteID int32

// ModuleID identifies a module (executable or shared library).
type ModuleID int32

// Sentinel values for the identifier types.
const (
	NoFunc   FuncID   = -1
	NoSite   SiteID   = -1
	NoModule ModuleID = -1
)

// Kind classifies a call site.
type Kind uint8

// Call site kinds.
const (
	// Normal is a direct call whose target is known statically.
	Normal Kind = iota
	// Indirect is a call through a function pointer; the target is chosen
	// by the body at run time. Declared targets model a points-to result.
	Indirect
	// Tail is a direct tail call: the callee returns past the caller.
	Tail
	// TailIndirect is an indirect branch that leaves the current function,
	// treated as a tail call (paper §5.2).
	TailIndirect
	// PLT is a cross-module call through the procedure linkage table; the
	// real target is unknown until the dynamic linker resolves it.
	PLT
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Normal:
		return "normal"
	case Indirect:
		return "indirect"
	case Tail:
		return "tail"
	case TailIndirect:
		return "tail-indirect"
	case PLT:
		return "plt"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsTail reports whether the kind transfers control without creating a
// frame that the callee returns to (tail semantics).
func (k Kind) IsTail() bool { return k == Tail || k == TailIndirect }

// IsIndirect reports whether the run-time target may vary per invocation.
func (k Kind) IsIndirect() bool { return k == Indirect || k == TailIndirect }

// Exec is the view of the executing thread that function bodies program
// against. Implemented by machine.Thread.
type Exec interface {
	// Call invokes the call site s. For direct and PLT sites target is
	// ignored (pass NoFunc); for indirect sites it selects the callee.
	Call(s SiteID, target FuncID)
	// TailCall invokes a tail-call site as the final action of the body.
	// The callee conceptually returns to this function's caller, so the
	// body must not do anything after a TailCall.
	TailCall(s SiteID, target FuncID)
	// Work consumes the given number of abstract application cycles.
	Work(units int64)
	// Spawn starts a new thread executing entry (the pthread_create of
	// paper §5.3). The spawning context is recorded so the new thread's
	// full calling context stays decodable.
	Spawn(entry FuncID)
	// Rand returns the thread-local PRNG, for bodies that make weighted
	// decisions. Deterministic per (seed, thread).
	Rand() *rand.Rand
	// Depth returns the current dynamic call depth (frames on the shadow
	// stack), so bodies can bound recursion.
	Depth() int
	// Caller returns the function that called the current one (NoFunc
	// at a thread root), so bodies can model self-recursive streaks.
	Caller() FuncID
	// CallCount returns how many calls this thread has made, so bodies
	// can pace themselves against a budget and derive execution phases
	// deterministically.
	CallCount() int64
	// SelfID returns the function being executed, mainly for bodies that
	// are shared between functions.
	SelfID() FuncID
	// LoadModule loads a lazy module (dlopen). Loading an already-loaded
	// module is a no-op, so refcounted loads need no caller bookkeeping.
	LoadModule(m ModuleID)
	// UnloadModule unloads a lazy module (dlclose). The module's code is
	// gone afterwards — bodies must not call into it until a LoadModule
	// brings it back — but contexts captured while it was loaded must
	// remain decodable. Unloading an eager module or a module with one of
	// the calling thread's own frames still inside it is a model error.
	UnloadModule(m ModuleID)
}

// Body is the executable behaviour of a function.
type Body func(x Exec)

// Site is a call site in a function.
type Site struct {
	ID     SiteID
	Caller FuncID
	Kind   Kind
	// Index is the ordinal position of the site in its function, used
	// only for display ("callsite A#2").
	Index int
	// Target is the static target of Normal/Tail sites and the link-time
	// target symbol of PLT sites (resolved lazily). NoFunc for indirect.
	Target FuncID
	// Declared holds the points-to result for indirect sites: every
	// target a static analysis would identify, typically a superset of
	// what executes (false positives). Empty for direct sites. Static
	// encoders (PCCE) use it; DACCE never looks at it.
	Declared []FuncID
}

// Name returns a short human-readable name such as "f3#1".
func (s *Site) Name(p *Program) string {
	return fmt.Sprintf("%s#%d", p.Funcs[s.Caller].Name, s.Index)
}

// Function is a node in the program.
type Function struct {
	ID     FuncID
	Name   string
	Module ModuleID
	Sites  []SiteID
	Body   Body
}

// Module groups functions, modelling the main executable and shared
// libraries.
type Module struct {
	ID   ModuleID
	Name string
	// Lazy marks a dlopen-style module: static tools cannot see its
	// functions or edges before the first call into it at run time.
	Lazy bool
	// Funcs lists the functions defined in the module.
	Funcs []FuncID
}

// Program is an immutable executable program.
type Program struct {
	Funcs   []*Function
	Sites   []*Site
	Modules []*Module
	Entry   FuncID
	// ThreadRoots lists functions used as thread entry points (the
	// start routines passed to pthread_create). Static encoders treat
	// them as additional call-graph roots.
	ThreadRoots []FuncID
	// PLT maps a PLT site to the function the dynamic linker resolves it
	// to. Populated at build time; the machine consults it on the first
	// invocation of the site (lazy binding).
	PLT map[SiteID]FuncID
}

// NumFuncs returns the number of functions.
func (p *Program) NumFuncs() int { return len(p.Funcs) }

// NumSites returns the number of call sites.
func (p *Program) NumSites() int { return len(p.Sites) }

// Func returns the function with the given id.
func (p *Program) Func(id FuncID) *Function { return p.Funcs[id] }

// Site returns the site with the given id.
func (p *Program) Site(id SiteID) *Site { return p.Sites[id] }

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// SiteOf returns the i-th call site of function f.
func (p *Program) SiteOf(f FuncID, i int) SiteID { return p.Funcs[f].Sites[i] }

// Validate checks structural invariants of the program; the builder
// guarantees them, but generated programs are checked in tests.
func (p *Program) Validate() error {
	if int(p.Entry) < 0 || int(p.Entry) >= len(p.Funcs) {
		return fmt.Errorf("prog: entry %d out of range", p.Entry)
	}
	for i, f := range p.Funcs {
		if f == nil {
			return fmt.Errorf("prog: nil function %d", i)
		}
		if int(f.ID) != i {
			return fmt.Errorf("prog: function %q has id %d at index %d", f.Name, f.ID, i)
		}
		if f.Body == nil {
			return fmt.Errorf("prog: function %q has no body", f.Name)
		}
		if int(f.Module) < 0 || int(f.Module) >= len(p.Modules) {
			return fmt.Errorf("prog: function %q in unknown module %d", f.Name, f.Module)
		}
		for _, s := range f.Sites {
			if int(s) < 0 || int(s) >= len(p.Sites) {
				return fmt.Errorf("prog: function %q references unknown site %d", f.Name, s)
			}
			if p.Sites[s].Caller != f.ID {
				return fmt.Errorf("prog: site %d listed in %q but caller is %d", s, f.Name, p.Sites[s].Caller)
			}
		}
	}
	for i, s := range p.Sites {
		if s == nil {
			return fmt.Errorf("prog: nil site %d", i)
		}
		if int(s.ID) != i {
			return fmt.Errorf("prog: site at index %d has id %d", i, s.ID)
		}
		switch s.Kind {
		case Normal, Tail:
			if int(s.Target) < 0 || int(s.Target) >= len(p.Funcs) {
				return fmt.Errorf("prog: direct site %d targets unknown function %d", i, s.Target)
			}
		case PLT:
			if _, ok := p.PLT[s.ID]; !ok {
				return fmt.Errorf("prog: PLT site %d has no link-time resolution", i)
			}
		case Indirect, TailIndirect:
			if s.Target != NoFunc {
				return fmt.Errorf("prog: indirect site %d has a static target", i)
			}
		default:
			return fmt.Errorf("prog: site %d has invalid kind %d", i, s.Kind)
		}
		for _, d := range s.Declared {
			if int(d) < 0 || int(d) >= len(p.Funcs) {
				return fmt.Errorf("prog: site %d declares unknown target %d", i, d)
			}
		}
	}
	return nil
}
