package prog

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	mainF := b.Func("main")
	lib := b.Module("libm.so", false)
	plug := b.Module("plug.so", true)
	f := b.FuncIn("f", lib)
	g := b.FuncIn("g", plug)
	h := b.Func("h")

	s1 := b.CallSite(mainF, f)
	s2 := b.TailSite(f, h)
	s3 := b.IndirectSite(mainF, f, h)
	s4 := b.PLTSite(mainF, g)
	b.ThreadRoot(h)
	b.Leaf(h, 1)

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != mainF {
		t.Errorf("entry = %d, want main", p.Entry)
	}
	if p.NumFuncs() != 4 || p.NumSites() != 4 {
		t.Errorf("got %d funcs %d sites", p.NumFuncs(), p.NumSites())
	}
	if p.Site(s1).Kind != Normal || p.Site(s2).Kind != Tail || p.Site(s3).Kind != Indirect || p.Site(s4).Kind != PLT {
		t.Error("site kinds wrong")
	}
	if got := p.PLT[s4]; got != g {
		t.Errorf("PLT resolution = %d, want %d", got, g)
	}
	if len(p.Site(s3).Declared) != 2 {
		t.Errorf("declared targets = %v", p.Site(s3).Declared)
	}
	if len(p.ThreadRoots) != 1 || p.ThreadRoots[0] != h {
		t.Errorf("thread roots = %v", p.ThreadRoots)
	}
	if p.FuncByName("g").Module != plug {
		t.Error("module assignment lost")
	}
	if !p.Modules[plug].Lazy {
		t.Error("lazy flag lost")
	}
	if b.ID("f") != f {
		t.Error("ID lookup wrong")
	}
}

func TestBuilderRejectsReuse(t *testing.T) {
	b := NewBuilder()
	b.Func("main")
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("builder reuse not rejected")
	}
}

func TestBuilderNoEntry(t *testing.T) {
	b := NewBuilder()
	b.Func("notmain")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "entry") {
		t.Fatalf("missing-entry error = %v", err)
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	b := NewBuilder()
	b.Func("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate function name did not panic")
		}
	}()
	b.Func("x")
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k        Kind
		tail     bool
		indirect bool
		name     string
	}{
		{Normal, false, false, "normal"},
		{Indirect, false, true, "indirect"},
		{Tail, true, false, "tail"},
		{TailIndirect, true, true, "tail-indirect"},
		{PLT, false, false, "plt"},
	}
	for _, c := range cases {
		if c.k.IsTail() != c.tail {
			t.Errorf("%v.IsTail() = %v", c.k, c.k.IsTail())
		}
		if c.k.IsIndirect() != c.indirect {
			t.Errorf("%v.IsIndirect() = %v", c.k, c.k.IsIndirect())
		}
		if c.k.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.k, c.k.String(), c.name)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Program {
		b := NewBuilder()
		mainF := b.Func("main")
		f := b.Func("f")
		b.CallSite(mainF, f)
		return b.MustBuild()
	}

	p := mk()
	p.Entry = 99
	if err := p.Validate(); err == nil {
		t.Error("bad entry not caught")
	}

	p = mk()
	p.Sites[0].Target = 99
	if err := p.Validate(); err == nil {
		t.Error("bad target not caught")
	}

	p = mk()
	p.Sites[0].Kind = Indirect
	if err := p.Validate(); err == nil {
		t.Error("indirect site with static target not caught")
	}

	p = mk()
	p.Funcs[1].Body = nil
	if err := p.Validate(); err == nil {
		t.Error("missing body not caught")
	}
}

func TestSeqAndLeafBodies(t *testing.T) {
	b := NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	g := b.Func("g")
	s1 := b.CallSite(mainF, f)
	s2 := b.CallSite(mainF, g)
	b.Seq(mainF, 5, s1, s2)
	b.Leaf(f, 3)
	b.Leaf(g, 2)
	p := b.MustBuild()

	x := &fakeExec{}
	p.Funcs[mainF].Body(x)
	if x.work != 15 { // 5 before, 5 after each of two calls
		t.Errorf("work = %d, want 15", x.work)
	}
	if len(x.calls) != 2 || x.calls[0] != s1 || x.calls[1] != s2 {
		t.Errorf("calls = %v", x.calls)
	}
}

// fakeExec is a minimal Exec for body unit tests.
type fakeExec struct {
	work  int64
	calls []SiteID
}

func (f *fakeExec) Call(s SiteID, target FuncID)     { f.calls = append(f.calls, s) }
func (f *fakeExec) TailCall(s SiteID, target FuncID) { f.calls = append(f.calls, s) }
func (f *fakeExec) Work(units int64)                 { f.work += units }
func (f *fakeExec) Spawn(entry FuncID)               {}
func (f *fakeExec) Rand() *rand.Rand                 { return nil }
func (f *fakeExec) Depth() int                       { return 0 }
func (f *fakeExec) Caller() FuncID                   { return NoFunc }
func (f *fakeExec) CallCount() int64                 { return int64(len(f.calls)) }
func (f *fakeExec) SelfID() FuncID                   { return 0 }
func (f *fakeExec) LoadModule(m ModuleID)            {}
func (f *fakeExec) UnloadModule(m ModuleID)          {}
