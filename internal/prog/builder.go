package prog

import "fmt"

// Builder constructs Programs incrementally. It is not safe for concurrent
// use. The zero value is not usable; call NewBuilder.
type Builder struct {
	p       *Program
	byName  map[string]FuncID
	modByNm map[string]ModuleID
	built   bool
}

// NewBuilder returns a Builder with a default eagerly loaded module
// "main" already defined.
func NewBuilder() *Builder {
	b := &Builder{
		p: &Program{
			Entry: NoFunc,
			PLT:   make(map[SiteID]FuncID),
		},
		byName:  make(map[string]FuncID),
		modByNm: make(map[string]ModuleID),
	}
	b.Module("main", false)
	return b
}

// Module defines (or returns) the module with the given name.
func (b *Builder) Module(name string, lazy bool) ModuleID {
	if id, ok := b.modByNm[name]; ok {
		return id
	}
	id := ModuleID(len(b.p.Modules))
	b.p.Modules = append(b.p.Modules, &Module{ID: id, Name: name, Lazy: lazy})
	b.modByNm[name] = id
	return id
}

// Func declares a function with an empty body in module "main".
// Redeclaring a name panics: generated programs must be unambiguous.
func (b *Builder) Func(name string) FuncID {
	return b.FuncIn(name, b.modByNm["main"])
}

// FuncIn declares a function in the given module.
func (b *Builder) FuncIn(name string, m ModuleID) FuncID {
	if _, ok := b.byName[name]; ok {
		panic(fmt.Sprintf("prog: duplicate function %q", name))
	}
	if int(m) < 0 || int(m) >= len(b.p.Modules) {
		panic(fmt.Sprintf("prog: unknown module %d", m))
	}
	id := FuncID(len(b.p.Funcs))
	b.p.Funcs = append(b.p.Funcs, &Function{ID: id, Name: name, Module: m})
	b.p.Modules[m].Funcs = append(b.p.Modules[m].Funcs, id)
	b.byName[name] = id
	return id
}

// ID returns the id of a previously declared function; it panics on
// unknown names so construction mistakes surface immediately.
func (b *Builder) ID(name string) FuncID {
	id, ok := b.byName[name]
	if !ok {
		panic(fmt.Sprintf("prog: unknown function %q", name))
	}
	return id
}

func (b *Builder) addSite(s *Site) SiteID {
	s.ID = SiteID(len(b.p.Sites))
	f := b.p.Funcs[s.Caller]
	s.Index = len(f.Sites)
	b.p.Sites = append(b.p.Sites, s)
	f.Sites = append(f.Sites, s.ID)
	return s.ID
}

// CallSite adds a direct call site in caller targeting target.
func (b *Builder) CallSite(caller, target FuncID) SiteID {
	return b.addSite(&Site{Caller: caller, Kind: Normal, Target: target})
}

// TailSite adds a direct tail-call site.
func (b *Builder) TailSite(caller, target FuncID) SiteID {
	return b.addSite(&Site{Caller: caller, Kind: Tail, Target: target})
}

// IndirectSite adds an indirect call site. declared is the points-to
// result visible to static tools (may include functions that never
// execute).
func (b *Builder) IndirectSite(caller FuncID, declared ...FuncID) SiteID {
	return b.addSite(&Site{Caller: caller, Kind: Indirect, Target: NoFunc, Declared: declared})
}

// TailIndirectSite adds an indirect tail-call site.
func (b *Builder) TailIndirectSite(caller FuncID, declared ...FuncID) SiteID {
	return b.addSite(&Site{Caller: caller, Kind: TailIndirect, Target: NoFunc, Declared: declared})
}

// PLTSite adds a cross-module call through the PLT, resolved at run time
// to target.
func (b *Builder) PLTSite(caller, target FuncID) SiteID {
	id := b.addSite(&Site{Caller: caller, Kind: PLT, Target: target})
	b.p.PLT[id] = target
	return id
}

// Body installs the body of a function.
func (b *Builder) Body(f FuncID, body Body) { b.p.Funcs[f].Body = body }

// Entry marks the entry function (conventionally "main").
func (b *Builder) Entry(f FuncID) { b.p.Entry = f }

// ThreadRoot marks a function as a thread start routine (an extra
// call-graph root for encoders).
func (b *Builder) ThreadRoot(f FuncID) {
	b.p.ThreadRoots = append(b.p.ThreadRoots, f)
}

// Seq is a convenience that installs a body invoking each listed site
// once, in order, as plain calls, with the given work between them.
func (b *Builder) Seq(f FuncID, work int64, sites ...SiteID) {
	b.Body(f, func(x Exec) {
		x.Work(work)
		for _, s := range sites {
			x.Call(s, NoFunc)
			x.Work(work)
		}
	})
}

// Leaf installs a body that only performs work.
func (b *Builder) Leaf(f FuncID, work int64) {
	b.Body(f, func(x Exec) { x.Work(work) })
}

// Build finalizes and validates the program. The builder must not be
// reused afterwards.
func (b *Builder) Build() (*Program, error) {
	if b.built {
		return nil, fmt.Errorf("prog: builder reused after Build")
	}
	b.built = true
	if b.p.Entry == NoFunc {
		if id, ok := b.byName["main"]; ok {
			b.p.Entry = id
		} else {
			return nil, fmt.Errorf("prog: no entry function set and no function named main")
		}
	}
	for _, f := range b.p.Funcs {
		if f.Body == nil {
			// Functions without explicit behaviour are leaves.
			f.Body = func(Exec) {}
		}
	}
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustBuild is Build for tests and examples with known-good inputs.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
