package difftest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/workload"
)

// TestStressLockFreeReaders races the encoder's lock-free read surface
// against a live multi-threaded run with forced epoch churn: workload
// threads trap and sample, the ForceEpochs wrapper re-encodes every few
// samples, an external goroutine forces stop-the-world passes from
// outside any machine thread, and reader goroutines continuously hit
// the snapshot accessors (Epoch, MaxID, Dict, CompressCount, Stats,
// ExportBundle) that the steady-state rework moved off the mutex. Under
// -race this checks the RCU publication discipline: readers must only
// ever observe complete, immutable snapshots. Retained samples are
// decoded afterwards as the semantic check.
func TestStressLockFreeReaders(t *testing.T) {
	pr := workload.RandomProfile(13, 60, 24, 40, 2)
	pr.Threads = 4
	pr.TotalCalls = 50_000
	w, err := workload.Build(pr)
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(w.P, aggressiveOptions(nil))
	m := w.NewMachine(ForceEpochs(d, 64), machine.Config{SampleEvery: 5, Seed: pr.Seed + 1})

	var (
		done  = make(chan struct{})
		wg    sync.WaitGroup
		reads atomic.Int64
	)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-done:
					return
				default:
				}
				ep := d.Epoch()
				if dict := d.Dict(ep); dict == nil {
					t.Errorf("reader: current epoch %d has no dictionary", ep)
					return
				}
				if d.Dict(0) == nil {
					t.Error("reader: epoch 0 dictionary vanished")
					return
				}
				_ = d.MaxID()
				_ = d.CompressCount()
				if n%64 == 0 {
					_ = d.Stats()
					_ = d.ExportBundle()
				}
				reads.Add(1)
				runtime.Gosched() // keep the workload progressing on one CPU
			}
		}()
	}
	// One forcer outside any machine thread: stop-the-world passes must
	// interleave cleanly with both the workload and the readers. The
	// sleep bounds STW pressure so the workload still progresses (the
	// same pacing Stress uses for its forcers).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			d.ForceReencode(nil)
			time.Sleep(500 * time.Microsecond)
		}
	}()

	rs, runErr := m.Run()
	close(done)
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if reads.Load() == 0 {
		t.Fatal("reader goroutines never ran")
	}
	if d.Epoch() == 0 {
		t.Fatal("no re-encoding pass completed despite churn")
	}
	if len(rs.Samples) == 0 {
		t.Fatal("run retained no samples")
	}
	for _, s := range rs.Samples {
		if _, err := d.DecodeSample(s); err != nil {
			t.Fatalf("sample decode after churn: %v", err)
		}
	}
}
