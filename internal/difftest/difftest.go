package difftest

import (
	"fmt"
	"strings"

	"dacce/internal/ccdag"
	"dacce/internal/cct"
	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/pcc"
	"dacce/internal/pcce"
	"dacce/internal/persist"
	"dacce/internal/prog"
	"dacce/internal/stackwalk"
	"dacce/internal/telemetry"
	"dacce/internal/trace"
	"dacce/internal/workload"
)

// Options configures a harness run.
type Options struct {
	// Sink receives the telemetry of every replay — the DACCE encoder's
	// own events plus one EvDivergence per recorded mismatch, which is
	// what makes a flight recorder auto-dump on a found divergence.
	Sink telemetry.Sink
	// MaxDivergences caps how many divergences are recorded (and
	// emitted) in detail; the per-encoder counts keep counting past the
	// cap. Default 64.
	MaxDivergences int
}

// Divergence is one disagreement between a tracker and the oracle at
// one query point.
type Divergence struct {
	Encoder string `json:"encoder"`
	Thread  int    `json:"thread"`
	Seq     int64  `json:"seq"`
	Fn      int    `json:"fn"`
	Epoch   uint32 `json:"epoch,omitempty"`
	// Kind classifies the failure: "decode-error", "context-mismatch",
	// "value-mismatch" (PCC), "alignment" (a replay failed to
	// reproduce the query point itself), or one of the DAG leg's kinds —
	// "node-decode-error" (DecodeCaptureNode failed where the slice
	// decode did not), "node-mismatch" (node materialization disagreed
	// with the slice context), "node-split" (equal contexts interned to
	// distinct nodes) and "node-alias" (one node stood for two contexts).
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s sample %d/%d at f%d epoch %d: %s: %s",
		d.Encoder, d.Thread, d.Seq, d.Fn, d.Epoch, d.Kind, d.Detail)
}

// EncoderReport summarizes one tracker's replay.
type EncoderReport struct {
	Queries     int `json:"queries"`
	Divergences int `json:"divergences"`
}

// Result is the outcome of one harness run.
type Result struct {
	Spec    Spec `json:"spec"`
	Events  int  `json:"events"`
	Threads int  `json:"threads"`
	// Samples is the number of query points checked per tracker.
	Samples int `json:"samples"`
	// Epochs is how many re-encoding passes the DACCE replay went
	// through — the epoch-boundary coverage of the run.
	Epochs uint32 `json:"epochs"`
	// ArchivedSnapshots is how many persisted encoder snapshots the
	// DACCE replay archived and rehydrated (mid-trace checkpoints plus
	// the final state); ArchiveQueries counts the query points
	// re-decoded through them. Both are 0 when Spec.SnapshotEvery is 0.
	ArchivedSnapshots int                       `json:"archived_snapshots,omitempty"`
	ArchiveQueries    int                       `json:"archive_queries,omitempty"`
	Encoders          map[string]*EncoderReport `json:"encoders"`
	Divergences       []Divergence              `json:"divergences,omitempty"`
	// Dropped counts divergences beyond Options.MaxDivergences that
	// were counted but not recorded in detail.
	Dropped       int   `json:"dropped_divergences,omitempty"`
	PCCCollisions int64 `json:"pcc_collisions"`
	PCCDistinct   int64 `json:"pcc_distinct"`
	// IncrementalPasses is how many of the DACCE replay's re-encoding
	// passes ran as subgraph renumberings (Spec.Incremental runs only;
	// the gate that blenc.Refresh is actually exercised by the sweep's
	// incremental leg).
	IncrementalPasses int `json:"incremental_passes,omitempty"`
}

// Diverged reports whether any tracker disagreed at any query point.
func (r *Result) Diverged() bool {
	for _, rep := range r.Encoders {
		if rep.Divergences > 0 {
			return true
		}
	}
	return false
}

// aggressiveOptions returns the DACCE options the harness replays
// under: the property-test trigger levels, tuned so that small runs
// still exercise re-encoding, recursion compression and indirect
// promotion.
func aggressiveOptions(sink telemetry.Sink) core.Options {
	return core.Options{
		Trig:              core.Triggers{NewEdges: 4, UnencodedCalls: 64, CCOps: 128, HotMissSamples: 4},
		CompressMinPushes: 4,
		InlineThreshold:   2,
		Sink:              sink,
	}
}

// dacceOptions folds the spec's encoder knobs into the aggressive
// harness options (today just the incremental re-encoding leg).
func dacceOptions(spec Spec, sink telemetry.Sink) core.Options {
	o := aggressiveOptions(sink)
	o.Incremental = spec.Incremental
	return o
}

// Run executes one full differential check: build the spec's workload,
// record its trace once, then replay the identical trace under every
// selected tracker, checking each query point against the oracle.
func Run(spec Spec, opt Options) (*Result, error) {
	spec = spec.withDefaults()
	w, err := workload.Build(spec.Profile)
	if err != nil {
		return nil, err
	}

	rec := trace.NewRecorder()
	rm := w.NewMachine(rec, machine.Config{DropSamples: true})
	if _, err := rm.Run(); err != nil {
		return nil, fmt.Errorf("difftest: recording run: %w", err)
	}
	tr := rec.Trace()
	truncateTrace(tr, spec.MaxEvents)

	var prof pcce.Profile
	if spec.wants("pcce") {
		p, err := w.CollectProfile()
		if err != nil {
			return nil, fmt.Errorf("difftest: profiling run: %w", err)
		}
		prof = pcce.Profile(p)
	}
	return runTrace(w.P, tr, prof, spec, opt)
}

// RunTrace checks an explicit trace (synthesized or loaded) instead of
// recording one from the spec's workload; the spec supplies the
// harness knobs. The trace must replay on p (trace.ReplayProgram
// validates it). PCCE replays without a profile here, as a purely
// static encoder.
func RunTrace(p *prog.Program, tr *trace.Trace, spec Spec, opt Options) (*Result, error) {
	spec = spec.withDefaults()
	return runTrace(p, tr, nil, spec, opt)
}

// truncateTrace cuts each thread's stream to at most max events. Any
// prefix of a valid stream is valid: calls left open at the cut unwind
// naturally when the replay bodies run out of events.
func truncateTrace(tr *trace.Trace, max int) {
	if max <= 0 {
		return
	}
	for i, s := range tr.Streams {
		if len(s) > max {
			tr.Streams[i] = s[:max]
		}
	}
}

// sampleKey identifies one query point across replays: the sampled
// thread's spawn-tree ident (numeric thread ids are scheduling-
// dependent under concurrent spawning) and its per-thread sample
// sequence number.
type sampleKey struct {
	ident uint64
	seq   int64
}

func runTrace(p *prog.Program, tr *trace.Trace, prof pcce.Profile, spec Spec, opt Options) (*Result, error) {
	if opt.MaxDivergences <= 0 {
		opt.MaxDivergences = 64
	}
	res := &Result{
		Spec:     spec,
		Events:   tr.NumEvents(),
		Threads:  tr.NumThreads(),
		Encoders: make(map[string]*EncoderReport),
	}
	// truth pins the ground-truth context of every query point, set by
	// the first replay: all trackers are checked against the same
	// instants, so agreement with truth at every key is cross-encoder
	// equivalence, and a key mismatch is itself a divergence.
	truth := make(map[sampleKey]string)
	for _, name := range spec.Encoders {
		if err := runEncoder(name, p, tr, prof, spec, opt, res, truth); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runEncoder(name string, p *prog.Program, tr *trace.Trace, prof pcce.Profile, spec Spec, opt Options, res *Result, truth map[sampleKey]string) error {
	rp, err := trace.ReplayProgram(p, tr)
	if err != nil {
		return fmt.Errorf("difftest: %s: %w", name, err)
	}
	rep := &EncoderReport{}
	res.Encoders[name] = rep

	var sch machine.Scheme
	var d *core.DACCE
	var ps *pcce.Scheme
	var cs *cct.Scheme
	var sw *stackwalk.Scheme
	var pc *pcc.Scheme
	var archive *Archive
	switch name {
	case "dacce", "dacce-full":
		do := dacceOptions(spec, opt.Sink)
		if name == "dacce-full" {
			// The full-pass control leg: same spec, same trace, but every
			// re-encoding recomputes the assignment from scratch. The truth
			// map pins each query point to the first replay's shadow
			// context, so agreement of both legs with truth is exactly the
			// delta-vs-full equivalence gate.
			do.Incremental = false
		}
		d = core.New(rp, do)
		sch = ForceEpochs(d, spec.ForceEpochEvery)
		if name == "dacce" {
			sch, archive = SnapshotArchive(sch, d, spec.SnapshotEvery)
			if spec.Mutation != "" {
				sch = Mutate(sch, Mutation(spec.Mutation))
			}
		}
	case "pcce":
		ps = pcce.New(rp, prof, pcce.Options{})
		sch = ps
	case "cct":
		cs = cct.New()
		sch = cs
	case "stackwalk":
		sw = stackwalk.New()
		sch = sw
	case "pcc":
		pc = pcc.New()
		sch = pc
	default:
		return fmt.Errorf("difftest: unknown encoder %q (want one of %v or dacce-full)", name, AllEncoders)
	}

	m := machine.New(rp, sch, machine.Config{SampleEvery: spec.SampleEvery, Seed: spec.Profile.Seed + 1})
	rs, err := m.Run()
	if err != nil {
		return fmt.Errorf("difftest: %s replay: %w", name, err)
	}

	spawnShadow := make(map[uint64][]machine.Frame)
	for _, th := range m.Threads() {
		spawnShadow[th.Ident()] = th.SpawnShadow
	}

	var cctModel [][]core.Context
	if name == "cct" {
		cctModel, err = cctExpected(rp, tr, spec.SampleEvery)
		if err != nil {
			return fmt.Errorf("difftest: cct model: %w", err)
		}
	}
	// The DAG leg's interning invariants, per encoder instance (nodes
	// from different DAGs are never comparable): one canonical node per
	// context string, one context string per node.
	var nodeOf map[string]*ccdag.Node
	var nodeSeen map[*ccdag.Node]string
	if d != nil {
		nodeOf = make(map[string]*ccdag.Node)
		nodeSeen = make(map[*ccdag.Node]string)
	}

	// cctModel (and legacy traces generally) index by recorded stream;
	// map a live sample's ident back to its stream index, falling back
	// to the numeric id for ident-less traces.
	identIdx := identIndexOf(tr)
	streamOf := func(s machine.Sample) int {
		if idx, ok := identIdx[s.Ident]; ok {
			return idx
		}
		return s.Thread
	}

	report := func(s machine.Sample, epoch uint32, kind, detail string) {
		rep.Divergences++
		if len(res.Divergences) >= opt.MaxDivergences {
			res.Dropped++
			return
		}
		div := Divergence{
			Encoder: name, Thread: s.Thread, Seq: s.Seq, Fn: int(s.Fn),
			Epoch: epoch, Kind: kind, Detail: detail,
		}
		res.Divergences = append(res.Divergences, div)
		if opt.Sink != nil {
			opt.Sink.Emit(telemetry.Event{
				Kind: telemetry.EvDivergence, Thread: int32(s.Thread),
				Epoch: epoch, Site: prog.NoSite, Fn: s.Fn,
				Err: true, Value: uint64(s.Seq),
			})
		}
	}

	for _, s := range rs.Samples {
		rep.Queries++
		want := core.ShadowContext(spawnShadow[s.Ident], s.Shadow)
		k := sampleKey{ident: s.Ident, seq: s.Seq}
		if prev, ok := truth[k]; !ok {
			truth[k] = want.String()
		} else if prev != want.String() {
			report(s, 0, "alignment", fmt.Sprintf("replay reached %s here, first replay saw %s", want.Compact(), prev))
			continue
		}

		switch name {
		case "dacce", "dacce-full":
			epoch := uint32(0)
			if c, ok := s.Capture.(*core.Capture); ok {
				epoch = c.Epoch
			}
			ctx, err := d.DecodeCapture(s.Capture)
			if err != nil {
				report(s, epoch, "decode-error", err.Error())
			} else if msg := core.DiffContexts(ctx, want); msg != "" {
				report(s, epoch, "context-mismatch", msg)
			}
			// The DAG leg: the same capture decoded through the interning
			// path must materialize to the slice context, and the intern
			// table must stay a bijection between contexts and nodes —
			// across epochs too, since nodes are keyed by decoded frames,
			// not encoded ids.
			n, nerr := d.DecodeCaptureNode(s.Capture)
			switch {
			case nerr != nil && err == nil:
				report(s, epoch, "node-decode-error", nerr.Error())
			case nerr == nil:
				nctx := core.NodeContext(n)
				if msg := core.DiffContexts(nctx, want); msg != "" {
					report(s, epoch, "node-mismatch", msg)
				}
				// Context.String() renders functions only; the intern
				// bijection is over full (site, fn) frames.
				key := ctxKey(nctx)
				if prev, ok := nodeOf[key]; ok && prev != n {
					report(s, epoch, "node-split", fmt.Sprintf("context %s interned twice: node %d and node %d", nctx.Compact(), prev.ID(), n.ID()))
				}
				nodeOf[key] = n
				if prevKey, ok := nodeSeen[n]; ok && prevKey != key {
					report(s, epoch, "node-alias", fmt.Sprintf("node %d stood for %q, now materializes %q", n.ID(), prevKey, key))
				}
				nodeSeen[n] = key
			}
		case "pcce":
			ctx, err := ps.DecodeCapture(s.Capture)
			if err != nil {
				report(s, 0, "decode-error", err.Error())
			} else if msg := core.DiffContexts(ctx, want); msg != "" {
				report(s, 0, "context-mismatch", msg)
			}
		case "stackwalk":
			ctx, err := sw.DecodeCapture(s.Capture)
			wantPhys := physicalContext(spawnShadow[s.Ident], s.Shadow)
			if err != nil {
				report(s, 0, "decode-error", err.Error())
			} else if msg := core.DiffContexts(ctx, wantPhys); msg != "" {
				report(s, 0, "context-mismatch", msg)
			}
		case "cct":
			ctx, err := cs.DecodeCapture(s.Capture)
			si := streamOf(s)
			switch {
			case err != nil:
				report(s, 0, "decode-error", err.Error())
			case si >= len(cctModel) || s.Seq >= int64(len(cctModel[si])):
				report(s, 0, "alignment", fmt.Sprintf("no model context for sample %d/%d", s.Thread, s.Seq))
			default:
				if msg := core.DiffContexts(ctx, cctModel[si][s.Seq]); msg != "" {
					report(s, 0, "context-mismatch", msg)
				}
			}
		case "pcc":
			v, ok := s.Capture.(pcc.Value)
			if !ok {
				report(s, 0, "decode-error", fmt.Sprintf("capture is %T, not a pcc.Value", s.Capture))
				break
			}
			if exp := pcc.Expected(openSites(want)); v != exp {
				report(s, 0, "value-mismatch", fmt.Sprintf("hash %d, expected fold %d over %s", v, exp, want.Compact()))
			}
			pc.Observe(v, want.String())
		}
	}

	if rep.Queries > res.Samples {
		res.Samples = rep.Queries
	}
	switch name {
	case "dacce":
		res.Epochs = d.Epoch()
		res.IncrementalPasses = d.Stats().IncrementalPasses
		if archive != nil {
			final, err := persist.Marshal(d.ExportState())
			if err != nil {
				return fmt.Errorf("difftest: exporting final state: %w", err)
			}
			snaps, queries, err := checkArchive(archive, final, rs.Samples, spawnShadow, report)
			if err != nil {
				return err
			}
			res.ArchivedSnapshots = snaps
			res.ArchiveQueries = queries
		}
	case "pcc":
		res.PCCCollisions, res.PCCDistinct = pc.Collisions()
	}
	return nil
}

// ctxKey renders a context with both sites and functions — the exact
// identity the intern table's bijection is checked against.
func ctxKey(ctx core.Context) string {
	var b strings.Builder
	for _, f := range ctx {
		fmt.Fprintf(&b, "(%d,%d)", f.Site, f.Fn)
	}
	return b.String()
}

// identIndexOf maps each recorded thread ident to its stream index;
// empty (every lookup misses) for ident-less traces.
func identIndexOf(tr *trace.Trace) map[uint64]int {
	m := make(map[uint64]int, len(tr.Idents))
	if len(tr.Idents) != len(tr.Streams) {
		return m
	}
	for i, id := range tr.Idents {
		m[id] = i
	}
	return m
}

// physicalContext is what a stack walker must report at a query point:
// the shadow stack (and the spawn prefix) with every frame that
// tail-called onward removed, since tail calls reuse their caller's
// physical frame. The filter runs per slice, matching how the
// stackwalk scheme captured the spawn prefix from the parent thread.
func physicalContext(spawn, shadow []machine.Frame) core.Context {
	phys := func(fs []machine.Frame) []machine.Frame {
		out := make([]machine.Frame, 0, len(fs))
		for i, f := range fs {
			if i+1 < len(fs) && fs[i+1].Tail {
				continue
			}
			out = append(out, f)
		}
		return out
	}
	return core.ShadowContext(phys(spawn), phys(shadow))
}

// openSites lists the call sites of every non-root frame of a true
// context, in order — the fold input for pcc.Expected. The spawn
// inheritance of PCC (a child starts from the parent's hash) falls out
// naturally: the true context already prepends the spawn path.
func openSites(ctx core.Context) []prog.SiteID {
	out := make([]prog.SiteID, 0, len(ctx))
	for _, f := range ctx {
		if f.Site != prog.NoSite {
			out = append(out, f.Site)
		}
	}
	return out
}
