//go:build ignore

// Generates the committed seed corpus under testdata/.
//
//	go run genseeds.go
package main

import (
	"fmt"
	"log"
	"os"

	"dacce/internal/difftest"
)

func main() {
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		log.Fatal(err)
	}

	clean := difftest.RandomSpec(42)
	clean.Profile.Threads = 1 // single thread => bit-identical reports across runs
	res, err := difftest.Run(clean, difftest.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Diverged() {
		log.Fatalf("clean seed diverged: %v", res.Divergences)
	}
	fmt.Printf("clean seed: %d samples, %d epochs, 0 divergences\n", res.Samples, res.Epochs)
	if err := difftest.SaveSpec("testdata/clean-seed42.json", clean); err != nil {
		log.Fatal(err)
	}

	mutant := difftest.RandomSpec(7)
	mutant.Mutation = string(difftest.MutSkewID)
	mutant.Encoders = []string{"dacce"}
	res, err = difftest.Run(mutant, difftest.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Diverged() {
		log.Fatal("mutant seed does not diverge")
	}
	fmt.Printf("mutant seed: %d divergences recorded\n", len(res.Divergences))
	if err := difftest.SaveSpec("testdata/mutant-skew-id.json", mutant); err != nil {
		log.Fatal(err)
	}

	// Adversarial seed: every ISSUE-7 family at once, plus the
	// incremental re-encoding leg, in one deterministic spec — module
	// churn windows, mega-indirect promotion, a recursion-torture
	// descent, and spawn churn all inside a single-threaded trace.
	adv := difftest.RandomSpec(42)
	adv.Profile.Name = "adversarial-all"
	adv.Profile.Threads = 1
	adv.Profile.ChurnModules = 2
	adv.Profile.ChurnEvery = 600
	adv.Profile.MegaSites = 2
	adv.Profile.MegaTargets = 96
	adv.Profile.TortureDepth = 512
	adv.Profile.SpawnChurn = 12
	adv.Profile.SpawnRate = 0.05
	adv.Incremental = true
	res, err = difftest.Run(adv, difftest.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Diverged() {
		log.Fatalf("adversarial seed diverged: %v", res.Divergences)
	}
	if res.IncrementalPasses == 0 {
		log.Fatal("adversarial seed performed no incremental passes")
	}
	fmt.Printf("adversarial seed: %d samples, %d epochs, %d incremental passes, 0 divergences\n",
		res.Samples, res.Epochs, res.IncrementalPasses)
	if err := difftest.SaveSpec("testdata/adversarial-all.json", adv); err != nil {
		log.Fatal(err)
	}
}
