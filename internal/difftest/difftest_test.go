package difftest_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"dacce/internal/difftest"
	"dacce/internal/telemetry"
	"dacce/internal/workload"
)

// TestDiffOracleCleanSeeds is the harness's baseline claim: with no
// injected fault, a spread of randomized workloads replays through
// every tracker with zero divergences, while still crossing several
// re-encoding epochs.
func TestDiffOracleCleanSeeds(t *testing.T) {
	epochs := uint32(0)
	for seed := uint64(1); seed <= 6; seed++ {
		spec := difftest.RandomSpec(seed)
		res, err := difftest.Run(spec, difftest.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range res.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
		if res.Diverged() {
			t.Fatalf("seed %d diverged (%d recorded, %d dropped)", seed, len(res.Divergences), res.Dropped)
		}
		if res.Samples == 0 {
			t.Errorf("seed %d: no query points", seed)
		}
		for name, rep := range res.Encoders {
			if rep.Queries == 0 {
				t.Errorf("seed %d: %s answered no queries", seed, name)
			}
		}
		if res.Epochs > epochs {
			epochs = res.Epochs
		}
	}
	if epochs < 2 {
		t.Errorf("no clean seed crossed 2 epochs (max %d); the oracle is not exercising re-encoding", epochs)
	}
}

// TestDiffSeededMutationCaught is the harness's self-test: a fault
// planted in a scratch copy of the DACCE encoder must surface as a
// divergence, and only against the mutated encoder.
func TestDiffSeededMutationCaught(t *testing.T) {
	catch := func(t *testing.T, spec difftest.Spec) *difftest.Result {
		t.Helper()
		res, err := difftest.Run(spec, difftest.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Mutation, err)
		}
		for _, d := range res.Divergences {
			if d.Encoder != "dacce" {
				t.Errorf("mutation %s leaked into encoder %s: %s", spec.Mutation, d.Encoder, d)
			}
		}
		return res
	}

	t.Run("skew-id", func(t *testing.T) {
		spec := difftest.RandomSpec(1)
		spec.Mutation = string(difftest.MutSkewID)
		if res := catch(t, spec); !res.Diverged() {
			t.Fatal("skewed context ids went unnoticed")
		}
	})
	t.Run("stale-epoch", func(t *testing.T) {
		spec := difftest.RandomSpec(2)
		spec.Mutation = string(difftest.MutStaleEpoch)
		spec.ForceEpochEvery = 8 // plenty of post-epoch captures to mistag
		if res := catch(t, spec); !res.Diverged() {
			t.Fatal("stale-epoch captures went unnoticed")
		}
	})
	t.Run("drop-repetition", func(t *testing.T) {
		// The fault only fires on captures whose ccStack carries a
		// compressed recursion count, so scan seeds until a workload
		// recursive enough to produce one shows up (deterministically).
		for seed := uint64(1); seed <= 12; seed++ {
			spec := difftest.RandomSpec(seed)
			spec.Mutation = string(difftest.MutDropRepetition)
			if res := catch(t, spec); res.Diverged() {
				return
			}
		}
		t.Fatal("dropped repetition counts went unnoticed across 12 seeds")
	})
}

// TestDiffShrinkMinimizes checks the delta-debugging loop end to end:
// a failing spec shrinks to a single-threaded, strictly smaller spec
// that still fails, and prints as a pasteable regression test.
func TestDiffShrinkMinimizes(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking re-runs the harness many times")
	}
	orig := difftest.RandomSpec(3)
	orig.Mutation = string(difftest.MutSkewID)
	orig.Encoders = []string{"dacce"}
	if !difftest.DefaultCheck(orig) {
		t.Fatal("seed spec does not fail; nothing to shrink")
	}
	small, accepted := difftest.Shrink(orig, nil, 40)
	if !difftest.DefaultCheck(small) {
		t.Fatal("shrunk spec no longer fails")
	}
	if small.Profile.Threads != 1 {
		t.Errorf("shrunk spec still has %d threads", small.Profile.Threads)
	}
	if small.Profile.TotalCalls > orig.Profile.TotalCalls {
		t.Errorf("shrunk call budget %d exceeds original %d", small.Profile.TotalCalls, orig.Profile.TotalCalls)
	}
	if accepted == 0 {
		t.Error("shrinker accepted no reductions on an unminimized spec")
	}

	var buf bytes.Buffer
	if err := difftest.WriteRegressionTest(&buf, small); err != nil {
		t.Fatal(err)
	}
	src := buf.String()
	for _, want := range []string{"func TestDiffRegressionSeed", "difftest.Run", "t.Errorf"} {
		if !strings.Contains(src, want) {
			t.Errorf("regression test output missing %q:\n%s", want, src)
		}
	}
}

// TestDiffReplayFromSeedFile checks the committed seed corpus: the
// clean seed file replays with zero divergences and a bit-identical
// report across runs, and the mutant seed file reproduces its failure.
func TestDiffReplayFromSeedFile(t *testing.T) {
	clean, err := difftest.LoadSpec(filepath.Join("testdata", "clean-seed42.json"))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Profile.Threads != 1 {
		t.Fatalf("committed clean spec must be single-threaded for exact determinism, has %d threads", clean.Profile.Threads)
	}
	first, err := difftest.Run(clean, difftest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Diverged() {
		for _, d := range first.Divergences {
			t.Errorf("clean seed: %s", d)
		}
		t.Fatal("committed clean seed diverged")
	}
	second, err := difftest.Run(clean, difftest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(first)
	j2, _ := json.Marshal(second)
	if !bytes.Equal(j1, j2) {
		t.Errorf("replaying the committed seed twice produced different reports:\n%s\n%s", j1, j2)
	}

	mutant, err := difftest.LoadSpec(filepath.Join("testdata", "mutant-skew-id.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := difftest.Run(mutant, difftest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged() {
		t.Fatal("committed mutant seed no longer reproduces its divergence")
	}
}

// TestDiffStressConcurrent runs the live multi-threaded stress driver:
// externally forced re-encoding passes racing real workload threads,
// with per-thread (id, ccStack) consistency checked afterwards. Run
// with -race for the interesting half of the assertion.
func TestDiffStressConcurrent(t *testing.T) {
	pr := workload.RandomProfile(7, 50, 20, 30, 2)
	pr.Threads = 3
	pr.TotalCalls = 30_000
	spec := difftest.Spec{Profile: pr, SampleEvery: 5}
	rep, err := difftest.Stress(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("stress: %s", d)
	}
	if rep.Diverged() {
		t.Fatalf("stress run diverged (%d recorded, %d dropped)", len(rep.Divergences), rep.Dropped)
	}
	if rep.Samples == 0 {
		t.Error("stress run validated no samples")
	}
	if rep.ForcedPasses == 0 {
		t.Error("forcer goroutines never ran")
	}
	if rep.Epochs == 0 {
		t.Error("no re-encoding pass completed despite external forcing")
	}
	if rep.Threads < 3 {
		t.Errorf("stress ran %d threads, want at least 3", rep.Threads)
	}
}

// TestDiffFlightRecorderDump wires the harness to the telemetry flight
// recorder: the first divergence must trigger an automatic dump whose
// JSON lines include the triggering divergence event.
func TestDiffFlightRecorderDump(t *testing.T) {
	var dump bytes.Buffer
	fr := telemetry.NewFlightRecorder(128, &dump)
	spec := difftest.RandomSpec(1)
	spec.Mutation = string(difftest.MutSkewID)
	spec.Encoders = []string{"dacce"}
	res, err := difftest.Run(spec, difftest.Options{Sink: fr, MaxDivergences: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged() {
		t.Fatal("mutated run did not diverge; nothing to dump")
	}
	if fr.Dumps() == 0 {
		t.Fatal("divergence did not trigger a flight-recorder dump")
	}
	out := dump.String()
	if !strings.Contains(out, `"kind":"divergence"`) {
		t.Errorf("dump does not contain the divergence event:\n%.2000s", out)
	}
	if !strings.Contains(out, "--- flight recorder:") {
		t.Errorf("dump missing frame header:\n%.400s", out)
	}
}

// TestDiffArchiveCoverage pins the persistence leg of the oracle: with
// SnapshotEvery set, the DACCE replay checkpoints its persisted state
// mid-trace, and every checkpoint — rehydrated as a standalone decoder,
// exactly like a dacced tenant — re-decodes the closed-epoch query
// points with zero divergences. The final-state blob re-decodes every
// query point.
func TestDiffArchiveCoverage(t *testing.T) {
	archived, queries := 0, 0
	for seed := uint64(1); seed <= 6; seed++ {
		spec := difftest.RandomSpec(seed)
		spec.Encoders = []string{"dacce"}
		res, err := difftest.Run(spec, difftest.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Diverged() {
			for _, d := range res.Divergences {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("seed %d diverged through archived snapshots", seed)
		}
		if res.ArchivedSnapshots < 1 {
			t.Errorf("seed %d: no snapshots archived (SnapshotEvery=%d)", seed, spec.SnapshotEvery)
		}
		archived += res.ArchivedSnapshots
		queries += res.ArchiveQueries
	}
	// Across the sweep some replays must checkpoint mid-trace (beyond
	// the always-present final blob) and re-decode real query points.
	if archived < 8 {
		t.Errorf("only %d snapshots archived across 6 seeds; mid-trace checkpoints are not happening", archived)
	}
	if queries == 0 {
		t.Error("archived decoders answered no queries")
	}
}

// TestDiffArchiveOff checks the knob's zero value: no archiving, no
// archive counters.
func TestDiffArchiveOff(t *testing.T) {
	spec := difftest.RandomSpec(3)
	spec.SnapshotEvery = 0
	spec.Encoders = []string{"dacce"}
	res, err := difftest.Run(spec, difftest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ArchivedSnapshots != 0 || res.ArchiveQueries != 0 {
		t.Fatalf("SnapshotEvery=0 still archived %d snapshots / %d queries",
			res.ArchivedSnapshots, res.ArchiveQueries)
	}
}
