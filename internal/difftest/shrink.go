package difftest

import (
	"fmt"
	"io"
)

// Check reports whether a candidate spec still reproduces the failure
// being minimized.
type Check func(Spec) bool

// DefaultCheck runs the harness on the candidate and reports whether
// any divergence survived. Build or replay errors count as "not
// reproduced" so the shrinker never walks into invalid specs.
func DefaultCheck(spec Spec) bool {
	res, err := Run(spec, Options{MaxDivergences: 1})
	return err == nil && res.Diverged()
}

// shrinkPass is one reduction the shrinker may apply. apply mutates
// the candidate and reports false when it is a no-op on this spec (the
// pass is skipped without spending a check).
type shrinkPass struct {
	name  string
	apply func(*Spec) bool
}

func halve(v *int64, floor int64) bool {
	if *v <= floor {
		return false
	}
	*v /= 2
	if *v < floor {
		*v = floor
	}
	return true
}

func halveInt(v *int, floor int) bool {
	if *v <= floor {
		return false
	}
	*v /= 2
	if *v < floor {
		*v = floor
	}
	return true
}

func zeroInt(v *int) bool {
	if *v == 0 {
		return false
	}
	*v = 0
	return true
}

// shrinkPasses is the ordered reduction schedule: determinism first
// (one thread), then the big lever (call budget), then whole features,
// then structure, then the trace itself.
func shrinkPasses() []shrinkPass {
	return []shrinkPass{
		{"threads=1", func(s *Spec) bool {
			if s.Profile.Threads <= 1 {
				return false
			}
			s.Profile.Threads = 1
			return true
		}},
		{"halve-calls", func(s *Spec) bool { return halve(&s.Profile.TotalCalls, 500) }},
		{"drop-tail-sites", func(s *Spec) bool { return zeroInt(&s.Profile.TailSites) }},
		{"drop-indirect-sites", func(s *Spec) bool { return zeroInt(&s.Profile.IndirectSites) }},
		{"drop-rec-sites", func(s *Spec) bool { return zeroInt(&s.Profile.RecSites) }},
		{"drop-lazy-modules", func(s *Spec) bool {
			if s.Profile.LazyModules == 0 && s.Profile.LazyFuncs == 0 {
				return false
			}
			s.Profile.LazyModules, s.Profile.LazyFuncs = 0, 0
			return true
		}},
		// Adversarial families drop as whole features first, then (for
		// the survivors) shrink their magnitude.
		{"drop-module-churn", func(s *Spec) bool {
			if s.Profile.ChurnModules == 0 {
				return false
			}
			s.Profile.ChurnModules, s.Profile.ChurnFuncs, s.Profile.ChurnEvery = 0, 0, 0
			return true
		}},
		{"drop-mega-indirect", func(s *Spec) bool {
			if s.Profile.MegaSites == 0 {
				return false
			}
			s.Profile.MegaSites, s.Profile.MegaTargets = 0, 0
			return true
		}},
		{"drop-torture", func(s *Spec) bool { return zeroInt(&s.Profile.TortureDepth) }},
		{"drop-spawn-churn", func(s *Spec) bool {
			if s.Profile.SpawnChurn == 0 {
				return false
			}
			s.Profile.SpawnChurn, s.Profile.SpawnRate = 0, 0
			return true
		}},
		{"halve-mega-targets", func(s *Spec) bool {
			if s.Profile.MegaSites == 0 {
				return false
			}
			return halveInt(&s.Profile.MegaTargets, 2)
		}},
		{"halve-torture-depth", func(s *Spec) bool { return halveInt(&s.Profile.TortureDepth, 0) }},
		{"halve-spawn-churn", func(s *Spec) bool { return halveInt(&s.Profile.SpawnChurn, 0) }},
		{"one-phase", func(s *Spec) bool {
			if s.Profile.Phases <= 1 {
				return false
			}
			s.Profile.Phases = 1
			return true
		}},
		{"drop-cold-structure", func(s *Spec) bool {
			if !s.Profile.ColdCycles && !s.Profile.HotIndirect &&
				s.Profile.StaticFuncs <= s.Profile.ExecFuncs && s.Profile.StaticEdges <= s.Profile.ExecEdges {
				return false
			}
			s.Profile.ColdCycles, s.Profile.HotIndirect = false, false
			s.Profile.StaticFuncs = s.Profile.ExecFuncs
			s.Profile.StaticEdges = s.Profile.ExecEdges
			return true
		}},
		{"halve-funcs", func(s *Spec) bool {
			if !halveInt(&s.Profile.ExecFuncs, 10) {
				return false
			}
			if s.Profile.StaticFuncs > s.Profile.ExecFuncs {
				s.Profile.StaticFuncs = s.Profile.ExecFuncs
			}
			return true
		}},
		{"halve-edges", func(s *Spec) bool {
			if !halveInt(&s.Profile.ExecEdges, s.Profile.ExecFuncs) {
				return false
			}
			if s.Profile.StaticEdges > s.Profile.ExecEdges {
				s.Profile.StaticEdges = s.Profile.ExecEdges
			}
			return true
		}},
		{"halve-layers", func(s *Spec) bool { return halveInt(&s.Profile.Layers, 2) }},
		{"halve-events", func(s *Spec) bool {
			if s.MaxEvents == 0 {
				// Seed the trace cut from the call budget: each call is
				// at most two events (call + return) on one stream.
				s.MaxEvents = int(2 * s.Profile.TotalCalls)
			}
			if s.MaxEvents <= 64 {
				return false
			}
			s.MaxEvents /= 2
			return true
		}},
	}
}

// Shrink delta-debugs a failing spec to a smaller one that still fails
// check (DefaultCheck when nil), spending at most budget check runs
// (default 150). It greedily repeats each reduction pass while the
// failure persists and loops the schedule to a fixpoint. The input
// spec must already fail check; the minimized spec and the number of
// accepted reductions are returned.
//
// Reductions are applied to the workload profile and the trace cut
// only — never to the failure-relevant knobs (mutation, encoders,
// sampling) — so the reproducer keeps failing for the original reason.
// Multi-threaded failures are reduced to one thread first: with a
// single thread the whole run is deterministic, which is what makes
// the final reproducer replay exactly.
func Shrink(spec Spec, check Check, budget int) (Spec, int) {
	if check == nil {
		check = DefaultCheck
	}
	if budget <= 0 {
		budget = 150
	}
	spec = spec.withDefaults()
	accepted, tries := 0, 0
	passes := shrinkPasses()
	for changed := true; changed && tries < budget; {
		changed = false
		for _, p := range passes {
			for tries < budget {
				cand := spec
				if !p.apply(&cand) {
					break
				}
				tries++
				if !check(cand) {
					break
				}
				spec = cand
				accepted++
				changed = true
			}
		}
	}
	return spec, accepted
}

// WriteRegressionTest renders a minimized spec as a ready-to-paste Go
// regression test: a _test.go function that re-runs the spec through
// the harness and fails on any divergence. Paste it into a package
// that imports dacce/internal/difftest (the repository keeps such
// regressions next to the harness itself).
func WriteRegressionTest(w io.Writer, spec Spec) error {
	name := fmt.Sprintf("TestDiffRegressionSeed%d", spec.Profile.Seed)
	_, err := fmt.Fprintf(w, `// %s reproduces a cross-encoder divergence found and
// minimized by the differential harness (daccedifftest -shrink).
func %s(t *testing.T) {
	spec := %#v
	res, err := difftest.Run(spec, difftest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Divergences {
		t.Errorf("divergence: %%s", d)
	}
	if res.Dropped > 0 {
		t.Errorf("%%d further divergences dropped", res.Dropped)
	}
}
`, name, name, spec)
	return err
}
