package difftest

import (
	"sync/atomic"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// ForceEpochs wraps a DACCE encoder so that every everySamples-th
// sample (counted across all threads) forces a re-encoding pass right
// after the sample was taken. The capture preceding the pass decodes
// under the old epoch and the next one under the new epoch, which
// plants query points immediately on both sides of every epoch
// boundary — the exact transition the per-epoch dictionaries of paper
// §4.1 must keep decodable. everySamples <= 0 returns d unchanged.
func ForceEpochs(d *core.DACCE, everySamples int64) machine.Scheme {
	if everySamples <= 0 {
		return d
	}
	return &epochForcer{d: d, every: everySamples}
}

// epochForcer delegates the full Scheme surface to the encoder and
// adds the forced passes in OnSample — a clean point, the same context
// the encoder's own hot-miss trigger re-encodes from.
type epochForcer struct {
	d     *core.DACCE
	every int64
	n     atomic.Int64
}

func (f *epochForcer) Name() string                          { return f.d.Name() }
func (f *epochForcer) Install(m *machine.Machine)            { f.d.Install(m) }
func (f *epochForcer) ThreadStart(t, parent *machine.Thread) { f.d.ThreadStart(t, parent) }
func (f *epochForcer) ThreadExit(t *machine.Thread)          { f.d.ThreadExit(t) }
func (f *epochForcer) Capture(t *machine.Thread) any         { return f.d.Capture(t) }
func (f *epochForcer) Maintain(t *machine.Thread)            { f.d.Maintain(t) }
func (f *epochForcer) ReleaseCapture(capture any)            { f.d.ReleaseCapture(capture) }

// Module lifecycle forwards too: without it the machine would not see
// the encoder as a ModuleObserver and churned modules would keep stale
// stubs across unload/reload.
func (f *epochForcer) OnModuleLoad(t *machine.Thread, id prog.ModuleID)   { f.d.OnModuleLoad(t, id) }
func (f *epochForcer) OnModuleUnload(t *machine.Thread, id prog.ModuleID) { f.d.OnModuleUnload(t, id) }

// OnSample implements machine.SampleObserver.
func (f *epochForcer) OnSample(t *machine.Thread, capture any) {
	f.d.OnSample(t, capture)
	if f.n.Add(1)%f.every == 0 {
		f.d.ForceReencode(t)
	}
}

// Unwrap returns the wrapped encoder.
func (f *epochForcer) Unwrap() *core.DACCE { return f.d }
