// Package difftest is the differential oracle harness of the
// repository: it drives one deterministic workload trace through every
// context tracker side by side — DACCE, PCCE, CCT, PCC, with the
// shadow stack (and its stack-walking view) as ground truth — and
// asserts that all of them agree about the calling context at every
// sampled query point. Query points land at a fixed per-thread call
// cadence, so the same instants are checked under every scheme,
// including instants immediately before and after forced re-encoding
// epochs, inside deep recursion, and at freshly promoted indirect
// sites.
//
// A run is described by a Spec: a workload profile plus harness knobs,
// serializable to a single JSON seed file. Failing specs shrink to
// minimal reproducers (Shrink) and print as ready-to-paste regression
// tests (WriteRegressionTest). Stress adds the concurrency angle:
// live multi-threaded runs with re-encoding forced from outside
// goroutines, intended to run under the race detector.
package difftest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dacce/internal/workload"
)

// AllEncoders lists every context tracker the harness drives, in
// replay order. The DACCE replay goes first: it establishes the
// canonical query points every later replay is checked against.
// "dacce-full" — a second DACCE instance with incremental re-encoding
// forced off — is not in the default set; withDefaults adds it to
// Incremental specs so the sweep's incremental leg always carries its
// own full-pass control.
var AllEncoders = []string{"dacce", "pcce", "cct", "stackwalk", "pcc"}

// Spec describes one differential run completely: the workload whose
// trace is recorded once and replayed under every encoder, the query
// density, and the failure-injection knobs. A Spec round-trips through
// JSON, so one small seed file committed under testdata/ reproduces a
// failing run exactly.
type Spec struct {
	// Profile generates the workload; its Seed fixes both program
	// structure and run-time behaviour.
	Profile workload.Profile `json:"profile"`
	// SampleEvery is the query density: a context query every n calls
	// per thread (default 7).
	SampleEvery int64 `json:"sample_every,omitempty"`
	// ForceEpochEvery forces a DACCE re-encoding pass after every n-th
	// query (counted across threads), guaranteeing queries on both
	// sides of epoch boundaries. 0 leaves re-encoding to the adaptive
	// triggers alone.
	ForceEpochEvery int64 `json:"force_epoch_every,omitempty"`
	// SnapshotEvery archives the DACCE encoder's persisted snapshot
	// (persist.Marshal of the full state) after every n-th query,
	// counted across threads; after the replay each archived blob is
	// rehydrated into a standalone decoder and the query points whose
	// epochs were closed at archive time are re-decoded against the
	// oracle. 0 disables mid-trace archiving.
	SnapshotEvery int64 `json:"snapshot_every,omitempty"`
	// MaxEvents truncates each thread's recorded event stream before
	// replay; 0 keeps everything. The shrinker halves this to cut a
	// reproducer's trace without touching the workload.
	MaxEvents int `json:"max_events,omitempty"`
	// Encoders selects which trackers replay (default AllEncoders).
	Encoders []string `json:"encoders,omitempty"`
	// Mutation injects a deterministic fault into a scratch wrapper
	// around the DACCE encoder (see Mutation) — the harness's
	// self-test that seeded divergences are caught.
	Mutation string `json:"mutation,omitempty"`
	// Incremental runs the DACCE replay with incremental (subgraph)
	// re-encoding enabled — the sweep's second leg, asserting that
	// splice-renumbered epochs decode identically to full passes. When
	// Encoders is left to the default, the spec also gains a
	// "dacce-full" leg: the same trace replayed under full passes, so
	// incremental-vs-full equivalence is asserted directly (both legs
	// must match the truth pinned at every query point).
	Incremental bool `json:"incremental,omitempty"`
}

// withDefaults fills the zero knobs.
func (s Spec) withDefaults() Spec {
	if s.SampleEvery <= 0 {
		s.SampleEvery = 7
	}
	if len(s.Encoders) == 0 {
		s.Encoders = AllEncoders
		if s.Incremental {
			s.Encoders = append(s.Encoders[:len(s.Encoders):len(s.Encoders)], "dacce-full")
		}
	}
	return s
}

// wants reports whether the spec replays the named encoder.
func (s Spec) wants(name string) bool {
	for _, e := range s.Encoders {
		if e == name {
			return true
		}
	}
	return false
}

// splitmix is the SplitMix64 finalizer, used to derive independent
// profile shape bytes from one seed.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RandomSpec returns spec #seed of the harness's randomized family:
// the profile shape comes from workload.RandomProfile fed with bytes
// derived from the seed, and the harness knobs vary with it. The
// mapping is pure, so a seed number alone reproduces a run.
func RandomSpec(seed uint64) Spec {
	h := func(k uint64) uint64 { return splitmix(seed ^ splitmix(k)) }
	pr := workload.RandomProfile(seed, uint8(h(1)), uint8(h(2)), uint8(h(3)), uint8(h(4)))
	pr.Name = fmt.Sprintf("diff-%d", seed)
	// Half the seeds overlay one adversarial family (ISSUE 7), so every
	// sweep exercises module churn, mega-indirect dispatch, recursion
	// torture, and spawn churn alongside the plain profiles.
	switch h(8) % 8 {
	case 0:
		pr.ChurnModules = 1 + int(h(9)%3)
		pr.ChurnEvery = 400 + int64(h(9)%1200)
	case 1:
		pr.MegaSites = 1 + int(h(9)%3)
		pr.MegaTargets = 16 + int(h(9)%241)
	case 2:
		pr.TortureDepth = 256 + int(h(9)%1793)
	case 3:
		pr.SpawnChurn = 8 + int(h(9)%57)
		pr.SpawnRate = 0.05
	}
	return Spec{
		Profile:         pr,
		SampleEvery:     3 + int64(h(5)%11),
		ForceEpochEvery: 16 + int64(h(6)%48),
		SnapshotEvery:   8 + int64(h(7)%32),
	}
}

// WriteSpec serializes a spec as indented JSON.
func WriteSpec(w io.Writer, s Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSpec deserializes a spec written by WriteSpec.
func ReadSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("difftest: reading spec: %w", err)
	}
	return s, nil
}

// SaveSpec writes a spec seed file.
func SaveSpec(path string, s Spec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSpec(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSpec reads a spec seed file.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	return ReadSpec(f)
}
