package difftest

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/persist"
	"dacce/internal/prog"
)

// maxArchivedSnapshots bounds how many mid-trace blobs one replay
// keeps; later snapshot points past the cap are skipped (the final
// state is always archived separately).
const maxArchivedSnapshots = 12

// SnapshotArchive wraps the DACCE replay scheme so that every
// everySamples-th query point (counted across threads) archives the
// encoder's persisted snapshot, exactly as a live process checkpointing
// with -save-state mid-run would. After the replay the harness
// rehydrates each blob into a standalone decoder and re-checks every
// query point whose epochs were already closed at archive time — the
// persistence analogue of the epoch-boundary property: captures taken
// before a re-encoding pass must stay decodable from state saved after
// it. everySamples <= 0 returns sch unchanged with a nil archive.
func SnapshotArchive(sch machine.Scheme, d *core.DACCE, everySamples int64) (machine.Scheme, *Archive) {
	if everySamples <= 0 {
		return sch, nil
	}
	ar := &Archive{}
	return &snapshotter{Scheme: sch, d: d, every: everySamples, ar: ar}, ar
}

// Archive collects the snapshot blobs of one replay.
type Archive struct {
	mu    sync.Mutex
	blobs [][]byte
	errs  []string
}

func (a *Archive) add(blob []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.blobs) < maxArchivedSnapshots {
		a.blobs = append(a.blobs, blob)
	}
}

func (a *Archive) fail(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.errs = append(a.errs, err.Error())
}

// snapshotter delegates the Scheme surface and archives in OnSample,
// the same clean point the epoch forcer uses — so with both wrappers
// active, snapshots land immediately after forced re-encoding passes.
type snapshotter struct {
	machine.Scheme
	d     *core.DACCE
	every int64
	n     atomic.Int64
	ar    *Archive
}

// OnSample implements machine.SampleObserver.
func (f *snapshotter) OnSample(t *machine.Thread, capture any) {
	if so, ok := f.Scheme.(machine.SampleObserver); ok {
		so.OnSample(t, capture)
	}
	if f.n.Add(1)%f.every == 0 {
		blob, err := persist.Marshal(f.d.ExportState())
		if err != nil {
			f.ar.fail(fmt.Errorf("snapshot at sample %d: %w", f.n.Load(), err))
			return
		}
		f.ar.add(blob)
	}
}

// OnModuleLoad implements machine.ModuleObserver when the wrapped
// scheme tracks module lifecycle (interface embedding does not promote
// the optional surface).
func (f *snapshotter) OnModuleLoad(t *machine.Thread, id prog.ModuleID) {
	if mo, ok := f.Scheme.(machine.ModuleObserver); ok {
		mo.OnModuleLoad(t, id)
	}
}

// OnModuleUnload implements machine.ModuleObserver.
func (f *snapshotter) OnModuleUnload(t *machine.Thread, id prog.ModuleID) {
	if mo, ok := f.Scheme.(machine.ModuleObserver); ok {
		mo.OnModuleUnload(t, id)
	}
}

// Maintain implements machine.Maintainer when the wrapped scheme needs
// periodic control (DACCE's adaptive triggers do).
func (f *snapshotter) Maintain(t *machine.Thread) {
	if ma, ok := f.Scheme.(machine.Maintainer); ok {
		ma.Maintain(t)
	}
}

// captureMaxEpoch is the newest epoch a capture's decode touches: its
// own and every epoch along the spawn chain.
func captureMaxEpoch(c *core.Capture) uint32 {
	e := uint32(0)
	for ; c != nil; c = c.Spawn {
		if c.Epoch > e {
			e = c.Epoch
		}
	}
	return e
}

// checkArchive rehydrates every archived blob (mid-trace checkpoints
// plus the final state) into a standalone decoder and re-decodes the
// query points it must be able to serve, reporting any disagreement
// with the oracle through report. A mid-trace blob with n epochs owes
// correct decodes for captures touching only epochs < n-1 (closed
// before the checkpoint); the final blob owes every capture. Returns
// (snapshots checked, query decodes performed).
func checkArchive(ar *Archive, final []byte, samples []machine.Sample,
	spawnShadow map[uint64][]machine.Frame,
	report func(s machine.Sample, epoch uint32, kind, detail string)) (int, int, error) {

	type entry struct {
		blob  []byte
		final bool
	}
	var entries []entry
	if ar != nil {
		ar.mu.Lock()
		errs, blobs := ar.errs, ar.blobs
		ar.mu.Unlock()
		if len(errs) > 0 {
			return 0, 0, fmt.Errorf("difftest: %s", errs[0])
		}
		for _, b := range blobs {
			entries = append(entries, entry{blob: b})
		}
	}
	entries = append(entries, entry{blob: final, final: true})

	snapshots, queries := 0, 0
	for _, e := range entries {
		st, err := persist.Unmarshal(e.blob)
		if err != nil {
			return snapshots, queries, fmt.Errorf("difftest: archived snapshot corrupt: %w", err)
		}
		dec, err := st.NewDecoder()
		if err != nil {
			return snapshots, queries, fmt.Errorf("difftest: rehydrating archived snapshot: %w", err)
		}
		snapshots++
		closed := uint32(len(st.Epochs) - 1) // epochs strictly below this were frozen at archive time
		for _, s := range samples {
			c, ok := s.Capture.(*core.Capture)
			if !ok {
				continue
			}
			if !e.final && captureMaxEpoch(c) >= closed {
				continue
			}
			queries++
			want := core.ShadowContext(spawnShadow[s.Ident], s.Shadow)
			ctx, err := dec.Decode(c)
			if err != nil {
				report(s, c.Epoch, "archive-decode-error", err.Error())
			} else if msg := core.DiffContexts(ctx, want); msg != "" {
				report(s, c.Epoch, "archive-mismatch", msg)
			}
		}
	}
	return snapshots, queries, nil
}
