package difftest_test

import (
	"strings"
	"testing"

	"dacce/internal/difftest"
	"dacce/internal/prog"
	"dacce/internal/trace"
	"dacce/internal/workload"
)

// FuzzDiffSpec feeds arbitrary workload shapes into the differential
// checker: any divergence the fuzzer can provoke between the encoders
// on a recorded trace is a real bug in one of them.
func FuzzDiffSpec(f *testing.F) {
	f.Add(uint64(1), byte(10), byte(20), byte(30), byte(40))
	f.Add(uint64(7), byte(200), byte(3), byte(77), byte(5))
	f.Add(uint64(42), byte(119), byte(64), byte(7), byte(255))
	f.Fuzz(func(t *testing.T, seed uint64, a, b, c, d byte) {
		pr := workload.RandomProfile(seed, a, b, c, d)
		pr.TotalCalls = 2_500
		if pr.Threads > 2 {
			pr.Threads = 2
		}
		spec := difftest.Spec{Profile: pr, SampleEvery: 5, ForceEpochEvery: 6}
		res, err := difftest.Run(spec, difftest.Options{MaxDivergences: 8})
		if err != nil {
			if strings.Contains(err.Error(), "difftest:") {
				t.Fatal(err) // recording or replay broke, not workload generation
			}
			t.Skip(err)
		}
		for _, div := range res.Divergences {
			t.Errorf("%s", div)
		}
		if res.Diverged() {
			t.Fatalf("divergence on seed=%d a=%d b=%d c=%d d=%d", seed, a, b, c, d)
		}
	})
}

// FuzzDiffTrace bypasses the workload generator entirely: raw bytes
// drive a synthetic event stream over a fixed program — calls through
// whatever sites the current function owns, tail chains, indirect
// targets both declared and undeclared, early cut-offs — and the whole
// stream replays through every encoder. This reaches trace shapes the
// seeded workload bodies never emit.
func FuzzDiffTrace(f *testing.F) {
	pr := workload.RandomProfile(99, 30, 10, 44, 3)
	pr.Threads = 1
	w, err := workload.Build(pr)
	if err != nil {
		f.Fatal(err)
	}
	p := w.P
	f.Add([]byte{1, 2, 3, 5, 8, 13, 21, 34, 2, 2, 0, 9, 9, 9})
	f.Add([]byte("synthesize-a-deep-tail-chain-please-and-return"))
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := synthTrace(p, data)
		if tr.NumEvents() == 0 {
			t.Skip("bytes produced no events")
		}
		spec := difftest.Spec{Profile: pr, SampleEvery: 3, ForceEpochEvery: 5}
		res, err := difftest.RunTrace(p, tr, spec, difftest.Options{MaxDivergences: 8})
		if err != nil {
			t.Fatalf("replaying synthesized trace: %v", err)
		}
		for _, div := range res.Divergences {
			t.Errorf("%s", div)
		}
		if res.Diverged() {
			t.Fatal("divergence on synthesized trace")
		}
	})
}

// synthTrace maps fuzz bytes onto a valid single-thread event stream
// over p. The generator tracks the current function and the stack of
// open non-tail callers, so every emitted call goes through a site the
// current function actually owns — the one structural invariant a real
// execution could never violate. Everything else (ordering, depth,
// where the stream cuts off) is up to the bytes.
func synthTrace(p *prog.Program, data []byte) *trace.Trace {
	const maxEvents = 2048
	const maxDepth = 48
	cur := p.Entry
	var stack []prog.FuncID
	var evs []trace.Event
	for _, b := range data {
		if len(evs) >= maxEvents {
			break
		}
		sites := p.Funcs[cur].Sites
		if b%4 == 0 || len(sites) == 0 || len(stack) >= maxDepth {
			if len(stack) == 0 {
				break
			}
			evs = append(evs, trace.Event{Kind: trace.EvReturn})
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			continue
		}
		s := p.Site(sites[int(b/4)%len(sites)])
		target := s.Target
		switch {
		case s.Kind == prog.PLT:
			target = p.PLT[s.ID]
		case s.Kind.IsIndirect():
			if len(s.Declared) > 0 && b%3 != 0 {
				target = s.Declared[int(b)%len(s.Declared)]
			} else {
				// Undeclared target: a points-to false negative, the case
				// static encoders must survive via their runtime fallback.
				target = prog.FuncID(int(b) % p.NumFuncs())
			}
		}
		evs = append(evs, trace.Event{Kind: trace.EvCall, Site: s.ID, Target: target})
		if s.Kind.IsTail() {
			cur = target
		} else {
			stack = append(stack, cur)
			cur = target
		}
	}
	return &trace.Trace{Entries: []prog.FuncID{p.Entry}, Streams: [][]trace.Event{evs}}
}
