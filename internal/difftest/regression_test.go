package difftest_test

import (
	"testing"

	"dacce/internal/difftest"
	"dacce/internal/workload"
)

// Regression specs distilled from 1000-seed sweep failures. Each one
// pins a previously shipped encoder bug; keep them even after the
// originating code is rewritten.

// Seed 848 (shrunk): a recursive tail call whose back edge had earned
// Fig. 5e compression mutated a ccStack entry below an enclosing
// TcStack save watermark in place. The tail call runs no epilogue of
// its own, and the save restore truncates the stack but cannot reverse
// an in-place Count++, so the decoded context gained a phantom
// recursion cycle. Tail back edges must always push (see actionFor).
func TestDiffRegressionSeed848(t *testing.T) {
	spec := difftest.Spec{
		Profile: workload.Profile{
			Name: "diff-848", Suite: "SPECint", Seed: 0x350,
			StaticFuncs: 21, StaticEdges: 130, ExecFuncs: 13, ExecEdges: 29,
			Layers: 6, IndirectSites: 2, ActualTargets: 2, DeclaredTargets: 10,
			RecSites: 5, RecProb: 0.49, RecStartProb: 0.09, MaxDepth: 41,
			SelfRecFrac: 0.03, TailSites: 3, Threads: 3,
			TotalCalls: 8000, CallsPerSec: 1e6, Phases: 2,
		},
		SampleEvery: 3, ForceEpochEvery: 18, SnapshotEvery: 9,
		MaxEvents: 8000, Encoders: []string{"dacce"},
	}
	res, err := difftest.Run(spec, difftest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Divergences {
		t.Errorf("divergence: %s", d)
	}
}

// Seed 775 (shrunk): goroutine-storm threads outran a pending tail
// fix-up. The discovering trap published the tail bit and patched the
// tail site, but its stop-the-world fix-up stalled behind running
// threads; spawned threads entered the tail-containing function through
// still-stale (non-save) in-edge stubs, executed the patched tail site,
// and unwound through epilogues that leaked the pushed entry into their
// root state. Fixed by the tail-frame self-heal (healTailFrame): a
// thread re-translates its own frames before a tail call whose nearest
// non-tail enclosing frame lacks the save cookie. The race is
// scheduling-dependent, so replay the spec a few times.
func TestDiffRegressionSeed775(t *testing.T) {
	spec := difftest.Spec{
		Profile: workload.Profile{
			Name: "diff-775", Suite: "SPECint", Seed: 775,
			StaticFuncs: 145, StaticEdges: 1097, ExecFuncs: 83, ExecEdges: 145,
			Layers: 4, IndirectSites: 7, ActualTargets: 1, DeclaredTargets: 5,
			RecSites: 4, MaxDepth: 56, SelfRecFrac: 0.93, TailSites: 2,
			Threads: 2, TotalCalls: 8000, CallsPerSec: 1e6, Phases: 1,
			SpawnChurn: 10, SpawnRate: 0.05,
		},
		SampleEvery: 3, ForceEpochEvery: 52, SnapshotEvery: 30,
		MaxEvents: 8000,
		Encoders:  []string{"dacce", "pcce", "cct", "stackwalk", "pcc"},
	}
	runs := 8
	if testing.Short() {
		runs = 2
	}
	for i := 0; i < runs; i++ {
		res, err := difftest.Run(spec, difftest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Divergences {
			t.Fatalf("run %d: divergence: %s", i, d)
		}
	}
}
