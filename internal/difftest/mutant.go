package difftest

import (
	"sync/atomic"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// Mutation names a deterministic fault injected into a scratch wrapper
// around the DACCE encoder. Mutations perturb only the captures a
// wrapped scheme hands out — the encoder's real state is untouched —
// so a mutated run models exactly the class of bug the harness exists
// to catch: an id/ccStack snapshot that no longer decodes to the true
// calling context.
type Mutation string

const (
	// MutNone injects nothing.
	MutNone Mutation = ""
	// MutSkewID adds one to every third capture's context id — the
	// capture then decodes to a sibling path, or errors out of range.
	MutSkewID Mutation = "skew-id"
	// MutDropRepetition decrements the first compressed recursion
	// count on the ccStack, losing one repetition of a recursive
	// sub-path (a Fig. 5e bookkeeping bug).
	MutDropRepetition Mutation = "drop-repetition"
	// MutStaleEpoch tags captures with the previous epoch, decoding
	// them against an outdated dictionary (a Fig. 6 versioning bug).
	MutStaleEpoch Mutation = "stale-epoch"
)

// Mutations lists the injectable faults.
func Mutations() []Mutation {
	return []Mutation{MutSkewID, MutDropRepetition, MutStaleEpoch}
}

// Mutate wraps a scheme whose captures are *core.Capture so that they
// are perturbed per m before the harness sees them. MutNone returns
// inner unchanged.
func Mutate(inner machine.Scheme, m Mutation) machine.Scheme {
	if m == MutNone {
		return inner
	}
	return &mutant{Scheme: inner, kind: m}
}

// mutant perturbs captures on their way out; everything else delegates
// to the embedded scheme.
type mutant struct {
	machine.Scheme
	kind Mutation
	n    atomic.Int64
}

// Capture implements machine.Scheme. The returned capture is a fresh
// snapshot owned by the caller, so mutating it in place corrupts only
// what the harness observes, never the encoder.
func (mu *mutant) Capture(t *machine.Thread) any {
	snap := mu.Scheme.Capture(t)
	c, ok := snap.(*core.Capture)
	if !ok {
		return snap
	}
	k := mu.n.Add(1)
	switch mu.kind {
	case MutSkewID:
		if k%3 == 0 {
			c.ID++
		}
	case MutDropRepetition:
		for i := range c.CC {
			if c.CC[i].Count > 0 {
				c.CC[i].Count--
				break
			}
		}
	case MutStaleEpoch:
		if c.Epoch > 0 {
			c.Epoch--
		}
	}
	return c
}

// OnSample implements machine.SampleObserver when the inner scheme
// observes samples (the DACCE adaptive controller does).
func (mu *mutant) OnSample(t *machine.Thread, capture any) {
	if so, ok := mu.Scheme.(machine.SampleObserver); ok {
		so.OnSample(t, capture)
	}
}

// Maintain implements machine.Maintainer when the inner scheme does.
func (mu *mutant) Maintain(t *machine.Thread) {
	if ma, ok := mu.Scheme.(machine.Maintainer); ok {
		ma.Maintain(t)
	}
}

// OnModuleLoad implements machine.ModuleObserver when the inner scheme
// tracks module lifecycle. The embedded interface only promotes core
// Scheme methods, so the optional surface must forward explicitly.
func (mu *mutant) OnModuleLoad(t *machine.Thread, id prog.ModuleID) {
	if mo, ok := mu.Scheme.(machine.ModuleObserver); ok {
		mo.OnModuleLoad(t, id)
	}
}

// OnModuleUnload implements machine.ModuleObserver.
func (mu *mutant) OnModuleUnload(t *machine.Thread, id prog.ModuleID) {
	if mo, ok := mu.Scheme.(machine.ModuleObserver); ok {
		mo.OnModuleUnload(t, id)
	}
}
