package difftest

import (
	"fmt"

	"dacce/internal/core"
	"dacce/internal/prog"
	"dacce/internal/trace"
)

// cctExpected is a pure reference model of the CCT baseline's cursor
// semantics, evaluated directly over the trace: each non-tail call
// saves the cursor path and descends, each tail call descends without
// saving, and each return restores the most recent save. Samples fire
// on the machine's cadence — every sampleEvery-th call, captured
// before the call executes — so the k-th returned context of a thread
// is what the CCT scheme must decode for sample (thread, k).
//
// Crucially the model reproduces the documented tail-call drift of the
// CCT approach (captures after a tail callee returned stay attributed
// to the tail path until the enclosing call returns), which makes this
// a model-vs-implementation check rather than a truth check: the CCT
// replay must match the model exactly, drift included.
func cctExpected(p *prog.Program, tr *trace.Trace, sampleEvery int64) ([][]core.Context, error) {
	out := make([][]core.Context, len(tr.Streams))
	for ti, evs := range tr.Streams {
		cur := core.Context{{Site: prog.NoSite, Fn: tr.Entries[ti]}}
		var saved []core.Context
		var samples []core.Context
		var since int64
		for j, ev := range evs {
			switch ev.Kind {
			case trace.EvCall:
				if sampleEvery > 0 {
					since++
					if since >= sampleEvery {
						since = 0
						samples = append(samples, append(core.Context(nil), cur...))
					}
				}
				if !p.Site(ev.Site).Kind.IsTail() {
					saved = append(saved, cur)
				}
				next := make(core.Context, len(cur)+1)
				copy(next, cur)
				next[len(cur)] = core.ContextFrame{Site: ev.Site, Fn: ev.Target}
				cur = next
			case trace.EvReturn:
				if len(saved) == 0 {
					return nil, fmt.Errorf("thread %d event %d: unmatched return", ti, j)
				}
				cur = saved[len(saved)-1]
				saved = saved[:len(saved)-1]
			}
		}
		out[ti] = samples
	}
	return out, nil
}
