package difftest_test

import (
	"path/filepath"
	"testing"

	"dacce/internal/difftest"
	"dacce/internal/workload"
)

// advBase is a small profile the per-family specs build on.
func advBase(seed uint64) workload.Profile {
	pr := workload.RandomProfile(seed, 55, 33, 21, 2)
	pr.TotalCalls = 8_000
	pr.Threads = 2
	return pr
}

// TestDiffAdversarialFamilies replays each adversarial family through
// the full differential oracle and requires complete agreement — the
// tentpole property of ISSUE 7: module churn, mega-indirect dispatch,
// recursion torture, and spawn churn all decode identically under
// every tracker, including across forced epoch boundaries and archived
// snapshots.
func TestDiffAdversarialFamilies(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*workload.Profile)
	}{
		{"module-churn", func(p *workload.Profile) {
			p.ChurnModules = 2
			p.ChurnFuncs = 3
			p.ChurnEvery = 500
		}},
		{"mega-indirect", func(p *workload.Profile) {
			p.MegaSites = 2
			p.MegaTargets = 96
		}},
		{"recursion-torture", func(p *workload.Profile) {
			p.TortureDepth = 1024
		}},
		{"spawn-churn", func(p *workload.Profile) {
			p.SpawnChurn = 24
			p.SpawnRate = 0.08
		}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			pr := advBase(uint64(100 + i))
			pr.Name = "adv-" + tc.name
			tc.mut(&pr)
			spec := difftest.Spec{
				Profile:         pr,
				SampleEvery:     5,
				ForceEpochEvery: 24,
				SnapshotEvery:   16,
			}
			res, err := difftest.Run(spec, difftest.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Divergences {
				t.Errorf("divergence: %s", d)
			}
			if res.Dropped > 0 {
				t.Errorf("%d further divergences dropped", res.Dropped)
			}
			if res.Samples == 0 {
				t.Error("no query points sampled")
			}
		})
	}
}

// TestDiffIncrementalLeg runs a spec with incremental (subgraph)
// re-encoding enabled and checks that the oracle stays silent, that
// the incremental path actually ran, and that the spec automatically
// gained the "dacce-full" control leg: the same trace replayed under
// from-scratch passes, checked against the same pinned query points —
// the direct incremental-vs-full equivalence gate.
func TestDiffIncrementalLeg(t *testing.T) {
	pr := advBase(7)
	pr.Name = "incremental-leg"
	pr.ChurnModules = 1
	pr.ChurnEvery = 700
	spec := difftest.Spec{
		Profile:         pr,
		SampleEvery:     5,
		ForceEpochEvery: 20,
		Incremental:     true,
	}
	res, err := difftest.Run(spec, difftest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Divergences {
		t.Errorf("divergence: %s", d)
	}
	if res.IncrementalPasses == 0 {
		t.Error("incremental leg performed no incremental re-encoding passes")
	}
	full, ok := res.Encoders["dacce-full"]
	if !ok {
		t.Fatal("incremental spec did not gain the dacce-full control leg")
	}
	if full.Queries == 0 {
		t.Error("dacce-full leg answered no queries")
	}
	if full.Divergences != 0 {
		t.Errorf("dacce-full leg diverged %d times from the incremental leg's truth", full.Divergences)
	}
}

// TestDiffAdversarialSeedFile replays the committed adversarial corpus
// seed (all four families plus the incremental leg in one spec).
func TestDiffAdversarialSeedFile(t *testing.T) {
	spec, err := difftest.LoadSpec(filepath.Join("testdata", "adversarial-all.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := difftest.Run(spec, difftest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Divergences {
		t.Errorf("divergence: %s", d)
	}
	if res.IncrementalPasses == 0 {
		t.Error("committed adversarial seed performed no incremental passes")
	}
}

// TestShrinkDropsAdversarialFamilies checks the shrinker strips the
// adversarial knobs from a failing spec when they are irrelevant to
// the failure (a capture-level mutation reproduces without them).
func TestShrinkDropsAdversarialFamilies(t *testing.T) {
	pr := advBase(13)
	pr.Name = "shrink-adv"
	pr.ChurnModules = 2
	pr.MegaSites = 1
	pr.MegaTargets = 32
	pr.TortureDepth = 512
	pr.SpawnChurn = 8
	pr.SpawnRate = 0.05
	spec := difftest.Spec{
		Profile:     pr,
		SampleEvery: 5,
		Mutation:    string(difftest.MutSkewID),
		Encoders:    []string{"dacce"},
	}
	res, err := difftest.Run(spec, difftest.Options{MaxDivergences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged() {
		t.Fatal("mutated spec did not diverge; shrink test is vacuous")
	}
	small, accepted := difftest.Shrink(spec, nil, 120)
	if accepted == 0 {
		t.Fatal("shrinker accepted no reductions")
	}
	if small.Profile.ChurnModules != 0 || small.Profile.MegaSites != 0 ||
		small.Profile.TortureDepth != 0 || small.Profile.SpawnChurn != 0 {
		t.Errorf("adversarial knobs survived shrinking: churn=%d mega=%d torture=%d spawn=%d",
			small.Profile.ChurnModules, small.Profile.MegaSites,
			small.Profile.TortureDepth, small.Profile.SpawnChurn)
	}
}
