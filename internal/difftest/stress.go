package difftest

import (
	"fmt"
	"sync"
	"time"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/workload"
)

// liveGate delegates the full scheme surface to the DACCE encoder and
// closes started on the first sample, the signal that the machine is
// fully live and external ForceReencode calls are safe.
type liveGate struct {
	d       *core.DACCE
	started chan struct{}
	once    sync.Once
}

func (g *liveGate) Name() string                          { return g.d.Name() }
func (g *liveGate) Install(m *machine.Machine)            { g.d.Install(m) }
func (g *liveGate) ThreadStart(t, parent *machine.Thread) { g.d.ThreadStart(t, parent) }
func (g *liveGate) ThreadExit(t *machine.Thread)          { g.d.ThreadExit(t) }
func (g *liveGate) Capture(t *machine.Thread) any         { return g.d.Capture(t) }
func (g *liveGate) Maintain(t *machine.Thread)            { g.d.Maintain(t) }
func (g *liveGate) ReleaseCapture(capture any)            { g.d.ReleaseCapture(capture) }

// OnSample implements machine.SampleObserver.
func (g *liveGate) OnSample(t *machine.Thread, capture any) {
	g.d.OnSample(t, capture)
	g.once.Do(func() { close(g.started) })
}

// StressReport is the outcome of one Stress run.
type StressReport struct {
	Threads int   `json:"threads"`
	Calls   int64 `json:"calls"`
	// Samples is the number of query points validated after the run.
	Samples int `json:"samples"`
	// Epochs counts re-encoding passes: the adaptive triggers plus every
	// forced pass that actually ran.
	Epochs uint32 `json:"epochs"`
	// ForcedPasses is how many ForceReencode calls the external forcer
	// goroutines issued.
	ForcedPasses int64        `json:"forced_passes"`
	Divergences  []Divergence `json:"divergences,omitempty"`
	Dropped      int          `json:"dropped_divergences,omitempty"`
}

// Diverged reports whether any consistency check failed.
func (r *StressReport) Diverged() bool {
	return len(r.Divergences) > 0 || r.Dropped > 0
}

// Stress runs the spec's workload live — real goroutines, not a replay
// — under an aggressive DACCE encoder while dedicated forcer goroutines
// hammer ForceReencode from outside any workload thread, so stop-the-
// world re-encoding passes interleave with calls, captures and epoch
// translation on every thread. It is meant to run under the race
// detector; after the run every retained sample is checked for
// per-thread (id, ccStack) consistency:
//
//   - the capture decodes to the shadow-stack truth at that instant;
//   - the id is in range for the capture's epoch (id <= 2*maxID+1);
//   - a marker id (id > maxID) comes with a non-empty ccStack, since a
//     marker's sub-path lives on the stack by construction (§4.2).
//
// forcers <= 0 means 2. The workload profile should enable multiple
// threads for the run to stress anything.
func Stress(spec Spec, forcers int) (*StressReport, error) {
	spec = spec.withDefaults()
	if forcers <= 0 {
		forcers = 2
	}
	w, err := workload.Build(spec.Profile)
	if err != nil {
		return nil, err
	}
	d := core.New(w.P, aggressiveOptions(nil))
	gate := &liveGate{d: d, started: make(chan struct{})}
	m := w.NewMachine(gate, machine.Config{SampleEvery: spec.SampleEvery, Seed: spec.Profile.Seed + 1})

	// The forcers race the workload until it finishes, with a pass cap as
	// a backstop so a stalled run cannot spin re-encoding forever. They
	// wait for the first sample before the first pass: its delivery
	// happens after scheme installation and the entry-thread spawn, the
	// only machine activity stop-the-world does not cover.
	const maxPasses = 2000
	var (
		forced int64
		mu     sync.Mutex
		done   = make(chan struct{})
		wg     sync.WaitGroup
	)
	for i := 0; i < forcers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-gate.started:
			case <-done:
				return
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.Lock()
				stop := forced >= maxPasses
				if !stop {
					forced++
				}
				mu.Unlock()
				if stop {
					return
				}
				d.ForceReencode(nil)
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	rs, runErr := m.Run()
	close(done)
	wg.Wait()
	if runErr != nil {
		return nil, fmt.Errorf("difftest: stress run: %w", runErr)
	}

	rep := &StressReport{
		Threads:      rs.Threads,
		Calls:        rs.C.Calls,
		Epochs:       d.Epoch(),
		ForcedPasses: forced,
	}
	spawnShadow := make(map[int][]machine.Frame)
	for _, th := range m.Threads() {
		spawnShadow[th.ID()] = th.SpawnShadow
	}
	const maxDetail = 64
	report := func(s machine.Sample, epoch uint32, kind, detail string) {
		if len(rep.Divergences) >= maxDetail {
			rep.Dropped++
			return
		}
		rep.Divergences = append(rep.Divergences, Divergence{
			Encoder: "dacce", Thread: s.Thread, Seq: s.Seq, Fn: int(s.Fn),
			Epoch: epoch, Kind: kind, Detail: detail,
		})
	}
	for _, s := range rs.Samples {
		rep.Samples++
		c, ok := s.Capture.(*core.Capture)
		if !ok {
			report(s, 0, "decode-error", fmt.Sprintf("capture is %T, not *core.Capture", s.Capture))
			continue
		}
		if dict := d.Dict(c.Epoch); dict == nil {
			report(s, c.Epoch, "decode-error", "no dictionary retained for capture's epoch")
			continue
		} else {
			if c.ID > 2*dict.MaxID+1 {
				report(s, c.Epoch, "value-mismatch",
					fmt.Sprintf("id %d out of range for epoch %d (maxID %d)", c.ID, c.Epoch, dict.MaxID))
			}
			if c.ID > dict.MaxID && len(c.CC) == 0 {
				report(s, c.Epoch, "value-mismatch",
					fmt.Sprintf("marker id %d with empty ccStack", c.ID))
			}
		}
		want := core.ShadowContext(spawnShadow[s.Thread], s.Shadow)
		ctx, err := d.Decode(c)
		if err != nil {
			report(s, c.Epoch, "decode-error", err.Error())
		} else if msg := core.DiffContexts(ctx, want); msg != "" {
			report(s, c.Epoch, "context-mismatch", msg)
		}
	}
	return rep, nil
}
