package ccdag

import (
	"testing"

	"dacce/internal/prog"
)

// frameSeq decodes fuzz bytes into a frame sequence: each pair of
// bytes is one (site, fn) frame. The first frame is forced to the root
// shape (NoSite) the decoder produces.
func frameSeq(data []byte) (sites []prog.SiteID, fns []prog.FuncID) {
	for i := 0; i+1 < len(data); i += 2 {
		s := prog.SiteID(data[i])
		if len(sites) == 0 {
			s = prog.NoSite
		}
		sites = append(sites, s)
		fns = append(fns, prog.FuncID(data[i+1]))
	}
	return sites, fns
}

// internSeq interns a frame sequence root-first and returns the leaf.
func internSeq(d *DAG, sites []prog.SiteID, fns []prog.FuncID) *Node {
	var n *Node
	for i := range sites {
		if n == nil {
			n = d.Intern(nil, sites[i], fns[i])
		} else {
			n = d.Intern(n, sites[i], fns[i])
		}
	}
	return n
}

// FuzzInternMaterialize round-trips arbitrary frame sequences through
// the intern table: materializing the interned leaf must reproduce the
// sequence exactly, re-interning must be pointer-stable, every proper
// prefix must be the leaf's pred chain, and two different sequences
// must never intern to the same leaf.
func FuzzInternMaterialize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{0, 1, 2, 3, 2, 3, 2, 3})
	f.Add([]byte{255, 255, 0, 0, 7, 7})

	dag := New()
	seen := map[*Node]string{}

	f.Fuzz(func(t *testing.T, data []byte) {
		sites, fns := frameSeq(data)
		if len(sites) == 0 {
			return
		}
		leaf := internSeq(dag, sites, fns)

		// Materialize by walking preds: must reproduce the input.
		n := leaf
		for i := len(sites) - 1; i >= 0; i-- {
			if n == nil {
				t.Fatalf("pred chain ended %d frames early", i+1)
			}
			if n.Site() != sites[i] || n.Fn() != fns[i] {
				t.Fatalf("frame %d materialized as (s%d,f%d), interned (s%d,f%d)",
					i, n.Site(), n.Fn(), sites[i], fns[i])
			}
			if n.Depth() != i+1 {
				t.Fatalf("frame %d has depth %d", i, n.Depth())
			}
			n = n.Pred()
		}
		if n != nil {
			t.Fatal("pred chain longer than the interned sequence")
		}

		// Re-intern: pointer-stable.
		if again := internSeq(dag, sites, fns); again != leaf {
			t.Fatalf("re-intern produced %p, first pass %p", again, leaf)
		}

		// Cross-input canonicality: one leaf pointer, one sequence. The
		// DAG persists across fuzz iterations, so this also checks that
		// different inputs sharing prefixes never collide on a leaf.
		key := ""
		for i := range sites {
			key += string(rune(sites[i]+1)) + string(rune(fns[i]+1))
		}
		if prev, ok := seen[leaf]; ok && prev != key {
			t.Fatalf("leaf %p interned for two sequences: %q and %q", leaf, prev, key)
		}
		seen[leaf] = key
	})
}
