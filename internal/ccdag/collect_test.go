package ccdag

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dacce/internal/prog"
)

// internChain interns a depth-long chain derived from seed and returns
// the leaf.
func internChain(d *DAG, seed, depth int) *Node {
	n := d.Root(prog.FuncID(seed % 8))
	for i := 0; i < depth; i++ {
		n = d.Intern(n, prog.SiteID(seed+i), prog.FuncID((seed+i)%64))
	}
	return n
}

func TestCollectDropsStaleKeepsLive(t *testing.T) {
	d := New()
	stale := internChain(d, 1000, 10)
	if g := d.AdvanceGen(); g != 1 {
		t.Fatalf("AdvanceGen = %d, want 1", g)
	}
	live := internChain(d, 2000, 10)
	before := d.Len()

	st := d.Collect(d.Gen(), nil)
	if st.Before != before {
		t.Fatalf("CollectStats.Before = %d, want %d", st.Before, before)
	}
	// The stale chain's 10 frames are gone (its root is shared with the
	// live chain, which re-stamped it), the live one stays, pointer
	// identity intact.
	if st.Freed != 10 {
		t.Fatalf("freed %d nodes, want 10", st.Freed)
	}
	if got := d.Len(); got != before-10 {
		t.Fatalf("Len after collect = %d, want %d", got, before-10)
	}
	if again := internChain(d, 2000, 10); again != live {
		t.Fatalf("live chain lost identity across Collect: %p vs %p", again, live)
	}
	// The stale chain re-interns to fresh nodes (old ones lost
	// canonicality when dropped).
	if again := internChain(d, 1000, 10); again == stale {
		t.Fatal("dropped chain came back with the same leaf pointer")
	}
	s := d.Stats()
	if s.Collections != 1 || s.Collected != 10 {
		t.Fatalf("Stats counters = (%d passes, %d collected), want (1, 10)", s.Collections, s.Collected)
	}
}

func TestCollectPinKeepsChainCanonical(t *testing.T) {
	d := New()
	pinned := internChain(d, 3000, 6)
	d.AdvanceGen()
	st := d.Collect(d.Gen(), func(mark func(*Node)) { mark(pinned) })
	if st.Freed != 0 {
		t.Fatalf("freed %d nodes despite pin, want 0", st.Freed)
	}
	if again := internChain(d, 3000, 6); again != pinned {
		t.Fatalf("pinned chain lost identity: %p vs %p", again, pinned)
	}
}

func TestCollectFloorClampAndZeroFloor(t *testing.T) {
	d := New()
	internChain(d, 4000, 4)
	// Floor above the current generation clamps; generation 0 is live,
	// so nothing is freed.
	if st := d.Collect(99, nil); st.Freed != 0 || st.Floor != 0 {
		t.Fatalf("Collect(99) = %+v, want floor 0, freed 0", st)
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d after no-op collect, want 5", d.Len())
	}
}

func TestFresh(t *testing.T) {
	d := New()
	n := internChain(d, 5000, 3)
	if !d.Fresh(n) {
		t.Fatal("just-interned node not fresh")
	}
	d.AdvanceGen()
	if d.Fresh(n) {
		t.Fatal("node still fresh after AdvanceGen")
	}
	if m := internChain(d, 5000, 3); m != n || !d.Fresh(n) {
		t.Fatalf("re-interning did not refresh: same=%v fresh=%v", m == n, d.Fresh(n))
	}
	if d.Fresh(nil) {
		t.Fatal("nil node reported fresh")
	}
}

// TestCollectConcurrentIdentity hammers Intern from many goroutines
// while a collector advances generations and sweeps, following the
// low-water contract the encoder implements with capture refcounts:
// each worker registers the generation its walk started in, and the
// collector's floor never passes the oldest registered walk. Under
// that contract — the one real callers obey — a chain interned twice
// within one registration must come back pointer-identical, no matter
// how the sweep interleaves. Run with -race.
func TestCollectConcurrentIdentity(t *testing.T) {
	d := New()
	const (
		workers = 8
		rounds  = 400
		chains  = 32
	)
	var (
		stop      atomic.Bool
		collector sync.WaitGroup
		work      sync.WaitGroup
	)
	// inflight[w] holds 1 + the generation worker w's current walk
	// started in, 0 when idle — the test's stand-in for the encoder's
	// per-epoch capture refcounts.
	inflight := make([]atomic.Uint64, workers)
	floor := func() uint64 {
		f := d.Gen()
		for i := range inflight {
			if s := inflight[i].Load(); s != 0 && s-1 < f {
				f = s - 1
			}
		}
		return f
	}
	// Collector: advance and sweep as fast as it can, floor capped by
	// in-flight walks.
	collector.Add(1)
	go func() {
		defer collector.Done()
		for !stop.Load() {
			d.AdvanceGen()
			d.Collect(floor(), nil)
		}
	}()
	var errMu sync.Mutex
	var firstErr error
	fail := func(format string, args ...any) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		work.Add(1)
		go func(w int) {
			defer work.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				// Register the walk's start generation; the verify loop
				// closes the race with a collector that computed its
				// floor before seeing the registration (the same
				// store-then-recheck shape real refcounting needs).
				for {
					g := d.Gen()
					inflight[w].Store(g + 1)
					if d.Gen() == g {
						break
					}
				}
				seed := 100 * (1 + rng.Intn(chains))
				depth := 3 + rng.Intn(12)
				// Back-to-back interns of the same chain inside one
				// registration: the floor cannot pass the first walk's
				// stamps, so both walks must resolve to one canonical
				// leaf.
				a := internChain(d, seed, depth)
				b := internChain(d, seed, depth)
				inflight[w].Store(0)
				if a != b {
					fail("worker %d round %d: same chain interned twice gave %p vs %p", w, r, a, b)
					return
				}
				if a.Depth() != depth+1 {
					fail("worker %d round %d: leaf depth %d, want %d", w, r, a.Depth(), depth+1)
					return
				}
			}
		}(w)
	}
	// Wait for the workers, then stop the collector.
	work.Wait()
	stop.Store(true)
	collector.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	// Post-stress sanity: the table is internally consistent.
	if err := checkTable(d); err != nil {
		t.Fatal(err)
	}
}

// checkTable walks every shard and verifies each resident node hashes
// into the bucket it sits in, its pred is resident whenever the node
// is (canonical chains stay closed under pred), and Len matches the
// resident count.
func checkTable(d *DAG) error {
	resident := map[*Node]bool{}
	var count int64
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		t := sh.table.Load()
		for b := range t.buckets {
			for e := t.buckets[b].Load(); e != nil; e = e.next {
				if uint64(b) != (e.node.hash>>32)&t.mask {
					sh.mu.Unlock()
					return fmt.Errorf("node %p in bucket %d, hash says %d", e.node, b, (e.node.hash>>32)&t.mask)
				}
				if resident[e.node] {
					sh.mu.Unlock()
					return fmt.Errorf("node %p resident twice", e.node)
				}
				resident[e.node] = true
				count++
			}
		}
		sh.mu.Unlock()
	}
	if got := d.Len(); got != count {
		return fmt.Errorf("Len() = %d, resident count = %d", got, count)
	}
	for n := range resident {
		if n.pred != nil && !resident[n.pred] {
			return fmt.Errorf("resident node %p has non-resident pred %p (broken canonical chain)", n, n.pred)
		}
	}
	return nil
}

// TestCollectChurn drives many advance/intern/collect rounds with a
// rotating context population and asserts the steady-state footprint
// stays bounded by the live set, not by history.
func TestCollectChurn(t *testing.T) {
	d := New()
	for round := 0; round < 200; round++ {
		d.AdvanceGen()
		leaf := internChain(d, 100*(round%7), 8)
		st := d.Collect(d.Gen(), nil)
		// Only this round's chain (root + 8 frames) is live.
		if n := d.Len(); n != 9 {
			t.Fatalf("round %d: %d nodes resident after collect (stats %+v), want 9", round, n, st)
		}
		if !d.Fresh(leaf) {
			t.Fatalf("round %d: just-interned leaf not fresh", round)
		}
	}
	if err := checkTable(d); err != nil {
		t.Fatal(err)
	}
}
