// Package ccdag implements a global, concurrency-safe, hash-consed
// calling-context DAG: every decoded frame is interned as an immutable
// (callSite, pred) node, so a whole calling context is one *Node,
// context equality is pointer comparison, and contexts that share a
// prefix share its storage — memory grows with distinct prefixes, not
// with samples decoded. The shape follows the cactus DynamicContext
// idiom (an interned (callSite, pred*) set with O(1) push), adapted to
// concurrent interning: the intern table is sharded, reads are
// lock-free (atomic loads over immutable chain entries), and only an
// actual insertion takes its shard's mutex.
//
// Node payloads (site, fn, pred, depth, id, hash) are immutable, and
// any *Node handed out stays valid memory forever (the garbage
// collector keeps it alive while someone holds it). Canonicality,
// however, is generation-scoped: every Intern stamps the node it
// returns with the DAG's current generation, and Collect drops nodes
// whose stamp fell below a caller-chosen floor from the intern table —
// a later decode of the same context then interns a fresh node. Holders
// that need a node to stay canonical across collections either keep
// touching it through Intern, re-validate it with Fresh, or pin it via
// Collect's pin callback; the decode pipeline, the streaming profiler
// and the dacced decode memo each do one of these, so they can keep
// treating a node as a one-word, O(1)-comparable context key.
package ccdag

import (
	"sync"
	"sync/atomic"

	"dacce/internal/prog"
)

// Node is one interned context frame: function Fn entered through call
// site Site of its predecessor context Pred (prog.NoSite and a nil
// pred for a root frame). Nodes are immutable and canonical: two
// contexts are equal iff their *Node pointers are equal.
type Node struct {
	site prog.SiteID
	fn   prog.FuncID
	pred *Node

	// depth is the number of frames on the path, root included.
	depth uint32
	// id is the node's stable, dense, per-DAG export identifier
	// (assigned in intern order, starting at 1).
	id uint64
	// hash caches the node's intern hash so pushing a child mixes one
	// word instead of rehashing the whole path.
	hash uint64

	// gen is the generation that last touched the node: stamped by every
	// Intern that returns it, raised by Collect's mark phase when the
	// node is reachable from a live node or a pin. Nodes whose gen falls
	// below a Collect's floor are dropped from the intern table. Not part
	// of the node's identity or hash.
	gen atomic.Uint64
}

// touch raises n's generation stamp to at least g. Stamps only ever go
// up, so racing stampers cannot regress a newer stamp.
func (n *Node) touch(g uint64) {
	for {
		old := n.gen.Load()
		if old >= g {
			return
		}
		if n.gen.CompareAndSwap(old, g) {
			return
		}
	}
}

// Site returns the call site through which Fn was entered (prog.NoSite
// for a root frame or a spawn boundary).
func (n *Node) Site() prog.SiteID { return n.site }

// Fn returns the frame's function.
func (n *Node) Fn() prog.FuncID { return n.fn }

// Pred returns the predecessor context (nil for a root frame).
func (n *Node) Pred() *Node { return n.pred }

// Depth returns the number of frames on the node's path, root included.
func (n *Node) Depth() int { return int(n.depth) }

// ID returns the node's stable per-DAG identifier, assigned in intern
// order starting at 1 — the export key for folded output, caches and
// wire formats that cannot carry pointers.
func (n *Node) ID() uint64 { return n.id }

// entry is one immutable intern-chain link. Entries are never modified
// after publication: an insert prepends a fresh entry to its bucket
// head, and a table growth builds entirely new entries — so a reader
// that loaded any table may walk any chain without synchronization.
type entry struct {
	node *Node
	next *entry
}

// table is one shard's bucket array, published atomically so the read
// path never locks. len(buckets) is a power of two.
type table struct {
	mask    uint64
	buckets []atomic.Pointer[entry]
}

// shard is one stripe of the intern table. The mutex serializes
// writers (insertion and growth) only; lookups are lock-free.
type shard struct {
	mu    sync.Mutex
	count int64 // interned nodes in this shard, guarded by mu

	table atomic.Pointer[table]

	// hits/misses are per-shard so the hot intern path never contends
	// on a global cache line; Stats sums them.
	hits   atomic.Int64
	misses atomic.Int64
}

const (
	// shardCount stripes the intern table; must be a power of two.
	shardCount = 128
	// initialBuckets is each shard's starting bucket count.
	initialBuckets = 64
	// loadFactor is the mean chain length that triggers a growth.
	loadFactor = 2
)

// DAG is a hash-consed calling-context DAG. Create with New; all
// methods are safe for concurrent use.
type DAG struct {
	shards [shardCount]shard
	nextID atomic.Uint64

	// gen is the current generation. Interns stamp their result with it;
	// AdvanceGen bumps it at an epoch boundary; Collect drops nodes whose
	// stamp predates its floor.
	gen atomic.Uint64

	// collectMu serializes Collect passes against each other (interning
	// stays lock-free and concurrent throughout a collection).
	collectMu sync.Mutex

	// collections/collected count completed Collect passes and the total
	// nodes they reclaimed.
	collections atomic.Int64
	collected   atomic.Int64
}

// New returns an empty DAG.
func New() *DAG {
	d := &DAG{}
	for i := range d.shards {
		t := &table{
			mask:    initialBuckets - 1,
			buckets: make([]atomic.Pointer[entry], initialBuckets),
		}
		d.shards[i].table.Store(t)
	}
	return d
}

// mix is a splitmix64-style finalizer, strong enough that bucket and
// shard indexes drawn from different bit ranges stay independent.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nodeHash combines a predecessor's cached hash with the new frame.
func nodeHash(pred *Node, site prog.SiteID, fn prog.FuncID) uint64 {
	var ph uint64
	if pred != nil {
		ph = pred.hash
	}
	return mix(ph ^ mix(uint64(uint32(site))<<32|uint64(uint32(fn))))
}

// Root interns the root frame for fn: the one-frame context
// (prog.NoSite, fn). Equivalent to Intern(nil, prog.NoSite, fn).
func (d *DAG) Root(fn prog.FuncID) *Node { return d.Intern(nil, prog.NoSite, fn) }

// Intern returns the canonical node for pred extended by one frame
// (site, fn), creating it if this exact context has never been seen.
// pred must itself be canonical — returned by an Intern call of the
// same walk (walks stamp frames root-first, which the collector's
// liveness invariant relies on) — or nil for a root frame. The steady
// hit path is lock-free and allocation-free: one generation load on top
// of the chain walk.
func (d *DAG) Intern(pred *Node, site prog.SiteID, fn prog.FuncID) *Node {
	h := nodeHash(pred, site, fn)
	sh := &d.shards[h&(shardCount-1)]
	g := d.gen.Load()
	t := sh.table.Load()
	if n := lookup(t, h, pred, site, fn); n != nil {
		if n.gen.Load() != g {
			n.touch(g)
			// The stamp may have raced a Collect that already decided to
			// drop n from this shard. If the shard's table is unchanged,
			// the collector has not published its sweep yet, so its
			// post-publish rescue pass is ordered after our stamp and
			// re-inserts n; if the table moved, re-resolve under the
			// shard lock (below), which also waits out a rescue pass in
			// progress. Either way the pointer we return stays canonical.
			if sh.table.Load() != t {
				return sh.intern(d, g, h, pred, site, fn, n)
			}
		}
		sh.hits.Add(1)
		return n
	}
	return sh.intern(d, g, h, pred, site, fn, nil)
}

// lookup walks the bucket chain for (pred, site, fn). Lock-free: the
// table pointer, the bucket heads and the chain entries are all
// immutable or atomically published.
func lookup(t *table, h uint64, pred *Node, site prog.SiteID, fn prog.FuncID) *Node {
	// Bucket index from the high half so it stays independent of the
	// shard index drawn from the low bits.
	for e := t.buckets[(h>>32)&t.mask].Load(); e != nil; e = e.next {
		n := e.node
		if n.pred == pred && n.site == site && n.fn == fn {
			return n
		}
	}
	return nil
}

// intern is the slow path: re-check under the shard lock (the node may
// have been inserted since the lock-free miss), then insert. rescue,
// when non-nil, is a node the caller found and stamped in a table a
// concurrent Collect replaced: if no equivalent node is present under
// the lock, rescue itself is re-inserted, preserving pointer identity
// for every reader that already holds it.
func (sh *shard) intern(d *DAG, g, h uint64, pred *Node, site prog.SiteID, fn prog.FuncID, rescue *Node) *Node {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t := sh.table.Load()
	if n := lookup(t, h, pred, site, fn); n != nil {
		n.touch(g)
		sh.hits.Add(1)
		return n
	}
	n := rescue
	if n != nil {
		n.touch(g)
		sh.hits.Add(1)
	} else {
		depth := uint32(1)
		if pred != nil {
			depth = pred.depth + 1
		}
		n = &Node{
			site:  site,
			fn:    fn,
			pred:  pred,
			depth: depth,
			id:    d.nextID.Add(1),
			hash:  h,
		}
		n.gen.Store(g)
		sh.misses.Add(1)
	}
	if sh.count+1 > loadFactor*int64(len(t.buckets)) {
		t = sh.grow(t)
	}
	b := &t.buckets[(h>>32)&t.mask]
	b.Store(&entry{node: n, next: b.Load()})
	sh.count++
	return n
}

// grow doubles the shard's bucket array, rehashing every chain into
// fresh entries, and publishes the new table. Concurrent readers keep
// walking the old (complete, immutable) table until they reload.
func (sh *shard) grow(old *table) *table {
	nt := &table{
		mask:    uint64(len(old.buckets))*2 - 1,
		buckets: make([]atomic.Pointer[entry], len(old.buckets)*2),
	}
	for i := range old.buckets {
		for e := old.buckets[i].Load(); e != nil; e = e.next {
			b := &nt.buckets[(e.node.hash>>32)&nt.mask]
			b.Store(&entry{node: e.node, next: b.Load()})
		}
	}
	sh.table.Store(nt)
	return nt
}

// Stats is a point-in-time summary of the DAG.
type Stats struct {
	// Nodes is the number of distinct interned nodes — the number of
	// distinct context prefixes ever decoded into the DAG.
	Nodes int64 `json:"nodes"`
	// Hits and Misses count Intern calls that found an existing node
	// versus created one; Hits/(Hits+Misses) is the suffix-sharing hit
	// rate of the decode stream.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// BytesEstimate approximates the DAG's resident size: nodes, chain
	// entries and bucket arrays. Post-collection it reflects the
	// compacted table, not the historical peak.
	BytesEstimate int64 `json:"bytes_estimate"`
	// Collections and Collected count completed Collect passes and the
	// total nodes they reclaimed.
	Collections int64 `json:"collections"`
	Collected   int64 `json:"collected"`
}

// HitRate returns Hits/(Hits+Misses), or 0 before any Intern.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// nodeBytes and entryBytes approximate the allocator footprint of one
// interned node and its chain entry (object header-less Go sizes,
// rounded up to size classes).
const (
	nodeBytes  = 56
	entryBytes = 16
)

// Stats returns the DAG's current counters. Safe to call concurrently
// with interning; the counters are a consistent-enough snapshot for
// monitoring (each is individually atomic).
func (d *DAG) Stats() Stats {
	s := Stats{
		Collections: d.collections.Load(),
		Collected:   d.collected.Load(),
	}
	for i := range d.shards {
		sh := &d.shards[i]
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		sh.mu.Lock()
		n := sh.count
		buckets := int64(len(sh.table.Load().buckets))
		sh.mu.Unlock()
		s.Nodes += n
		s.BytesEstimate += n*(nodeBytes+entryBytes) + buckets*8
	}
	return s
}

// Len returns the number of interned nodes.
func (d *DAG) Len() int64 {
	var n int64
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += sh.count
		sh.mu.Unlock()
	}
	return n
}
