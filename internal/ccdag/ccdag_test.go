package ccdag

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dacce/internal/prog"
)

func TestInternCanonical(t *testing.T) {
	d := New()
	r := d.Root(0)
	if r2 := d.Root(0); r2 != r {
		t.Fatalf("Root(0) interned twice: %p vs %p", r, r2)
	}
	a := d.Intern(r, 1, 1)
	b := d.Intern(r, 1, 1)
	if a != b {
		t.Fatalf("equal frames interned to distinct nodes: %p vs %p", a, b)
	}
	if c := d.Intern(r, 2, 1); c == a {
		t.Fatal("distinct sites interned to the same node")
	}
	if c := d.Intern(r, 1, 2); c == a {
		t.Fatal("distinct functions interned to the same node")
	}
	r9 := d.Root(9)
	if c := d.Intern(r9, 1, 1); c == a {
		t.Fatal("distinct predecessors interned to the same node")
	}
	if a.Site() != 1 || a.Fn() != 1 || a.Pred() != r {
		t.Fatalf("node accessors: site=%d fn=%d pred=%p want 1,1,%p", a.Site(), a.Fn(), a.Pred(), r)
	}
}

func TestDepthAndIDs(t *testing.T) {
	d := New()
	n := d.Root(0)
	if n.Depth() != 1 {
		t.Fatalf("root depth %d, want 1", n.Depth())
	}
	seen := map[uint64]bool{n.ID(): true}
	for i := 1; i <= 100; i++ {
		n = d.Intern(n, prog.SiteID(i), prog.FuncID(i))
		if n.Depth() != i+1 {
			t.Fatalf("depth %d at frame %d, want %d", n.Depth(), i, i+1)
		}
		if n.ID() == 0 {
			t.Fatal("node id 0 assigned (ids start at 1)")
		}
		if seen[n.ID()] {
			t.Fatalf("duplicate node id %d", n.ID())
		}
		seen[n.ID()] = true
	}
	// Re-interning the same chain must create nothing new.
	before := d.Len()
	m := d.Root(0)
	for i := 1; i <= 100; i++ {
		m = d.Intern(m, prog.SiteID(i), prog.FuncID(i))
	}
	if m != n {
		t.Fatal("re-interned chain is not pointer-equal to the original")
	}
	if after := d.Len(); after != before {
		t.Fatalf("re-interning grew the DAG: %d -> %d nodes", before, after)
	}
}

func TestStats(t *testing.T) {
	d := New()
	n := d.Root(0)
	for i := 1; i < 50; i++ {
		n = d.Intern(n, prog.SiteID(i), prog.FuncID(i))
	}
	m := d.Root(0)
	for i := 1; i < 50; i++ {
		m = d.Intern(m, prog.SiteID(i), prog.FuncID(i))
	}
	s := d.Stats()
	if s.Nodes != 50 {
		t.Fatalf("Nodes = %d, want 50", s.Nodes)
	}
	if s.Misses != 50 {
		t.Fatalf("Misses = %d, want 50", s.Misses)
	}
	if s.Hits != 50 {
		t.Fatalf("Hits = %d, want 50 (the whole second chain)", s.Hits)
	}
	if s.BytesEstimate <= 0 {
		t.Fatal("BytesEstimate not positive")
	}
	if hr := s.HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", hr)
	}
}

// TestGrowth pushes enough distinct nodes through single shards to
// force several table growths and verifies every node stays reachable
// and canonical afterwards.
func TestGrowth(t *testing.T) {
	d := New()
	root := d.Root(0)
	nodes := make([]*Node, 0, 50_000)
	for i := 0; i < 50_000; i++ {
		nodes = append(nodes, d.Intern(root, prog.SiteID(i), prog.FuncID(i%97)))
	}
	for i, want := range nodes {
		if got := d.Intern(root, prog.SiteID(i), prog.FuncID(i%97)); got != want {
			t.Fatalf("node %d lost canonicality after growth: %p vs %p", i, got, want)
		}
	}
	if n := d.Len(); n != 50_001 {
		t.Fatalf("Len = %d, want 50001", n)
	}
}

// TestConcurrentIntern is the -race stress gate: many goroutines intern
// heavily overlapping suffix chains concurrently, then every path is
// re-interned serially and must resolve to the same canonical pointer
// the concurrent phase produced.
func TestConcurrentIntern(t *testing.T) {
	d := New()
	const (
		goroutines = 16
		walks      = 400
		maxDepth   = 40
	)
	type pathKey string
	var mu sync.Mutex
	canon := make(map[pathKey]*Node)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := make(map[pathKey]*Node)
			for w := 0; w < walks; w++ {
				n := d.Root(0)
				key := "r0"
				depth := 1 + rng.Intn(maxDepth)
				for i := 0; i < depth; i++ {
					// A small alphabet makes the goroutines collide on
					// the same chains constantly — the contended regime
					// the lock-free read path must get right.
					site := prog.SiteID(rng.Intn(6))
					fn := prog.FuncID(rng.Intn(6))
					n = d.Intern(n, site, fn)
					key += fmt.Sprintf("|%d,%d", site, fn)
					if prev, ok := local[pathKey(key)]; ok && prev != n {
						t.Errorf("goroutine saw two nodes for one path %s", key)
						return
					}
					local[pathKey(key)] = n
				}
			}
			mu.Lock()
			defer mu.Unlock()
			for k, n := range local {
				if prev, ok := canon[k]; ok && prev != n {
					t.Errorf("two goroutines interned distinct nodes for path %s", k)
					return
				}
				canon[k] = n
			}
		}(int64(g))
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Serial re-intern of every observed path must hit the same nodes.
	for k, want := range canon {
		n := reintern(d, string(k))
		if n != want {
			t.Fatalf("serial re-intern of %s produced %p, concurrent phase made %p", k, n, want)
		}
	}
	// Every observed path plus the shared root node.
	st := d.Stats()
	if st.Nodes != int64(len(canon))+1 {
		t.Fatalf("DAG holds %d nodes, %d distinct paths observed (+1 root)", st.Nodes, len(canon))
	}
}

// reintern rebuilds a path from its test key ("r0|site,fn|site,fn...").
func reintern(d *DAG, key string) *Node {
	n := d.Root(0)
	var site, fn int
	rest := key[len("r0"):]
	for len(rest) > 0 {
		if _, err := fmt.Sscanf(rest, "|%d,%d", &site, &fn); err != nil {
			panic("bad path key " + key)
		}
		n = d.Intern(n, prog.SiteID(site), prog.FuncID(fn))
		rest = rest[len(fmt.Sprintf("|%d,%d", site, fn)):]
	}
	return n
}

// TestInternNoAllocsWarm verifies the hit path allocates nothing — the
// property the warm decode pipeline's 0-alloc gate builds on.
func TestInternNoAllocsWarm(t *testing.T) {
	d := New()
	n := d.Root(0)
	for i := 0; i < 32; i++ {
		n = d.Intern(n, prog.SiteID(i), prog.FuncID(i))
	}
	leaf := n
	if avg := testing.AllocsPerRun(1000, func() {
		m := d.Root(0)
		for i := 0; i < 32; i++ {
			m = d.Intern(m, prog.SiteID(i), prog.FuncID(i))
		}
		if m != leaf {
			t.Fatal("warm re-intern diverged")
		}
	}); avg != 0 {
		t.Fatalf("warm intern path allocates %v allocs/op, want 0", avg)
	}
}

func BenchmarkInternWarm(b *testing.B) {
	d := New()
	n := d.Root(0)
	for i := 0; i < 64; i++ {
		n = d.Intern(n, prog.SiteID(i), prog.FuncID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := d.Root(0)
		for j := 0; j < 64; j++ {
			m = d.Intern(m, prog.SiteID(j), prog.FuncID(j))
		}
	}
}

func BenchmarkPointerEqualVsWalk(b *testing.B) {
	d := New()
	n := d.Root(0)
	for i := 0; i < 64; i++ {
		n = d.Intern(n, prog.SiteID(i), prog.FuncID(i))
	}
	m := d.Root(0)
	for i := 0; i < 64; i++ {
		m = d.Intern(m, prog.SiteID(i), prog.FuncID(i))
	}
	b.Run("pointer", func(b *testing.B) {
		eq := 0
		for i := 0; i < b.N; i++ {
			if n == m {
				eq++
			}
		}
		_ = eq
	})
}
