// Generation-scoped reclamation: the copy-compact pass that keeps the
// intern table bounded. The DAG carries a generation counter advanced
// at epoch boundaries (AdvanceGen); every Intern stamps the node it
// returns with the current generation; Collect drops every node whose
// stamp fell below a caller-chosen floor — typically the generation of
// the oldest epoch whose captures can still be decoded — from the
// intern table, while the read path stays lock-free throughout.
//
// Correctness against racing interns rests on three mechanisms:
//
//  1. Walks stamp root-first. internRev/internContext/decodeNode call
//     Intern once per frame from the root down, so a node's stamp is
//     never newer than its predecessor chain's. The mark phase can
//     therefore stop raising a chain at the first node already at the
//     floor.
//  2. Readers re-check the table after stamping. A reader that stamps
//     a node and then observes its shard's table unchanged is ordered
//     before the sweep's publish, so the collector's post-publish
//     rescue pass observes the stamp and re-inserts the node; a reader
//     that observes a new table re-resolves under the shard lock and
//     re-inserts the very node it holds if needed (shard.intern's
//     rescue parameter). Either way a returned pointer stays canonical.
//  3. Callers bound the floor by in-flight work. The encoder derives
//     the floor from its capture refcounts (a capture still decodable
//     pins its epoch's generation); dacced serializes retirement
//     against in-flight decodes. So no walk ever carries a stamp below
//     a concurrent Collect's floor.
package ccdag

import "sync/atomic"

// CollectStats reports one Collect pass.
type CollectStats struct {
	// Floor is the effective generation floor the pass ran with.
	Floor uint64 `json:"floor"`
	// Before is the interned node count when the pass started.
	Before int64 `json:"before"`
	// Freed is how many nodes the pass dropped from the intern table
	// (net of rescues). Under concurrent interning the figure is a
	// point-in-time accounting, not a heap delta.
	Freed int64 `json:"freed"`
	// Rescued counts swept nodes re-inserted by the pass itself because
	// a racing Intern stamped them after the keep decision.
	Rescued int64 `json:"rescued"`
}

// Gen returns the DAG's current generation.
func (d *DAG) Gen() uint64 { return d.gen.Load() }

// AdvanceGen starts a new generation and returns it. Call at an epoch
// boundary; nodes interned from here on carry the new stamp.
func (d *DAG) AdvanceGen() uint64 { return d.gen.Add(1) }

// RaiseGen raises the generation to at least g. Used when the caller's
// epoch counter jumps rather than increments — a warm start resuming
// at the snapshot's epoch — so generation stamps stay in lockstep with
// epochs and a later collection floor (an epoch number) cannot exceed
// the stamps of nodes interned after the jump.
func (d *DAG) RaiseGen(g uint64) {
	for {
		cur := d.gen.Load()
		if cur >= g {
			return
		}
		if d.gen.CompareAndSwap(cur, g) {
			return
		}
	}
}

// Fresh reports whether n carries the current generation's stamp — the
// cheap staleness probe for memoized node pointers (a thread's lastNode
// cache, say). A fresh node cannot be dropped by any Collect whose
// floor is at most the current generation; a stale one must be
// re-interned before reuse as a canonical key.
func (d *DAG) Fresh(n *Node) bool {
	return n != nil && n.gen.Load() == d.gen.Load()
}

// Collections returns how many Collect passes have completed.
func (d *DAG) Collections() int64 { return d.collections.Load() }

// Collected returns the total nodes reclaimed across all passes.
func (d *DAG) Collected() int64 { return d.collected.Load() }

// Collect drops every node whose generation stamp is below minGen from
// the intern table, after raising the stamp of everything reachable
// from a live node (gen ≥ minGen) or from a caller pin. pin, when
// non-nil, is called once with a mark function and must invoke it for
// every externally retained node that has to stay canonical (dacced
// passes its live memo entries); mark raises the node and its whole
// predecessor chain to the floor. A floor above the current generation
// is clamped to it; a zero floor is a no-op (generation zero is still
// live).
//
// Interning proceeds lock-free and concurrently throughout: survivors
// keep their pointer identity (the same *Node is rethreaded into the
// new bucket chains), each shard's swap is one atomic table publish,
// and nodes stamped mid-sweep by racing interns are re-inserted by the
// rescue pass below or by the racing reader itself. Dropped nodes
// remain valid memory for any holder but lose canonicality: a later
// decode of the same context interns a fresh node.
func (d *DAG) Collect(minGen uint64, pin func(mark func(*Node))) CollectStats {
	d.collectMu.Lock()
	defer d.collectMu.Unlock()
	if cur := d.gen.Load(); minGen > cur {
		minGen = cur
	}
	st := CollectStats{Floor: minGen, Before: d.Len()}
	if minGen == 0 {
		return st
	}

	// Mark: raise live predecessor chains to the floor. Stamps are
	// root-first (walks intern from the root down), so a chain whose
	// head is already at the floor is covered above the break point
	// either by the same walk's earlier stamps or by a previous mark.
	mark := func(n *Node) {
		for p := n; p != nil; p = p.pred {
			raised := false
			for {
				old := p.gen.Load()
				if old >= minGen {
					break
				}
				if p.gen.CompareAndSwap(old, minGen) {
					raised = true
					break
				}
			}
			if !raised {
				break
			}
		}
	}
	for i := range d.shards {
		t := d.shards[i].table.Load()
		for b := range t.buckets {
			for e := t.buckets[b].Load(); e != nil; e = e.next {
				if e.node.gen.Load() >= minGen {
					mark(e.node.pred)
				}
			}
		}
	}
	if pin != nil {
		pin(mark)
	}

	// Sweep: per shard, under its writer lock, rebuild the bucket array
	// with only the nodes at or above the floor — survivors keep their
	// identity — and publish it in one atomic swap. Readers keep walking
	// the old (complete, immutable) table until they reload.
	var (
		dropped []*Node
		keep    []*Node
	)
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		t := sh.table.Load()
		keep = keep[:0]
		for b := range t.buckets {
			for e := t.buckets[b].Load(); e != nil; e = e.next {
				if e.node.gen.Load() >= minGen {
					keep = append(keep, e.node)
				} else {
					dropped = append(dropped, e.node)
				}
			}
		}
		nt := &table{mask: bucketsFor(int64(len(keep))) - 1}
		nt.buckets = make([]atomic.Pointer[entry], nt.mask+1)
		for _, n := range keep {
			b := &nt.buckets[(n.hash>>32)&nt.mask]
			b.Store(&entry{node: n, next: b.Load()})
		}
		sh.table.Store(nt)
		sh.count = int64(len(keep))
		sh.mu.Unlock()
	}

	// Rescue: a racing Intern can stamp a node after its shard's keep
	// decision. If the reader saw the old table it returned the node
	// counting on us — its stamp is ordered before our publish, so this
	// re-check observes it; if it saw the new table it re-resolved under
	// the shard lock and re-inserted the node itself. Re-check every
	// dropped node once, after all shards have published, and thread the
	// re-stamped ones back in.
	for _, n := range dropped {
		if n.gen.Load() < minGen {
			continue
		}
		sh := &d.shards[n.hash&(shardCount-1)]
		sh.mu.Lock()
		t := sh.table.Load()
		if lookup(t, n.hash, n.pred, n.site, n.fn) == nil {
			if sh.count+1 > loadFactor*int64(len(t.buckets)) {
				t = sh.grow(t)
			}
			b := &t.buckets[(n.hash>>32)&t.mask]
			b.Store(&entry{node: n, next: b.Load()})
			sh.count++
			st.Rescued++
		}
		sh.mu.Unlock()
	}

	st.Freed = int64(len(dropped)) - st.Rescued
	d.collections.Add(1)
	d.collected.Add(st.Freed)
	return st
}

// bucketsFor sizes a shard's bucket array (a power of two, at least
// initialBuckets) so n nodes sit at or below the load factor.
func bucketsFor(n int64) uint64 {
	b := uint64(initialBuckets)
	for int64(b)*loadFactor < n {
		b <<= 1
	}
	return b
}
