// Package stats provides the small statistics toolkit shared by the
// experiment harnesses: streaming counters, integer histograms with CDF
// queries, geometric means, and compact scientific formatting used to
// render the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs. Values must be positive;
// non-positive values are clamped to eps so a single zero (a benchmark
// with unmeasurably small overhead) does not zero the mean.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-9
	sum := 0.0
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Hist is an exact integer-valued histogram. It stores counts per value
// in a map, so it suits distributions with moderate support (stack
// depths, ccStack depths) where exact CDFs are wanted.
type Hist struct {
	counts map[int]int64
	total  int64
	min    int
	max    int
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make(map[int]int64), min: math.MaxInt, max: math.MinInt}
}

// Add records one observation of v.
func (h *Hist) Add(v int) { h.AddN(v, 1) }

// AddN records n observations of v.
func (h *Hist) AddN(v int, n int64) {
	if n <= 0 {
		return
	}
	h.counts[v] += n
	h.total += n
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of observations.
func (h *Hist) Total() int64 { return h.total }

// Min returns the smallest observed value (0 if empty).
func (h *Hist) Min() int {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed value (0 if empty).
func (h *Hist) Max() int {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the observations.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// CDFAt returns the fraction of observations ≤ v.
func (h *Hist) CDFAt(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var n int64
	for val, c := range h.counts {
		if val <= v {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// Quantile returns the smallest value v such that CDF(v) ≥ q.
func (h *Hist) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	vals := h.Support()
	var acc int64
	need := int64(math.Ceil(q * float64(h.total)))
	if need <= 0 {
		need = 1
	}
	for _, v := range vals {
		acc += h.counts[v]
		if acc >= need {
			return v
		}
	}
	return vals[len(vals)-1]
}

// Support returns the observed values in ascending order.
func (h *Hist) Support() []int {
	vals := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

// CDF returns the cumulative distribution as parallel slices of values
// and fractions, suitable for plotting Figure 10-style curves.
func (h *Hist) CDF() (vals []int, frac []float64) {
	vals = h.Support()
	frac = make([]float64, len(vals))
	var acc int64
	for i, v := range vals {
		acc += h.counts[v]
		frac[i] = float64(acc) / float64(h.total)
	}
	return vals, frac
}

// CDFSeries resamples the CDF at nPoints evenly spaced depths from 0 to
// Max, producing fixed-length series that can be compared across runs.
func (h *Hist) CDFSeries(nPoints int) (depths []int, frac []float64) {
	if nPoints < 2 {
		nPoints = 2
	}
	maxV := h.Max()
	depths = make([]int, nPoints)
	frac = make([]float64, nPoints)
	for i := 0; i < nPoints; i++ {
		d := maxV * i / (nPoints - 1)
		depths[i] = d
		frac[i] = h.CDFAt(d)
	}
	return depths, frac
}

// SciNotation formats a large count the way the paper's Table 1 does:
// exact for small values, "1.4E+11" style for large ones, and the word
// "overflow" when the overflow flag is set.
func SciNotation(v uint64, overflow bool) string {
	if overflow {
		return "overflow"
	}
	if v < 1_000_000 {
		return fmt.Sprintf("%d", v)
	}
	f := float64(v)
	exp := int(math.Floor(math.Log10(f)))
	mant := f / math.Pow10(exp)
	return fmt.Sprintf("%.1fE+%02d", mant, exp)
}

// Pct formats a ratio as a percentage with one decimal, e.g. 0.0213 →
// "2.1%".
func Pct(r float64) string { return fmt.Sprintf("%.1f%%", 100*r) }
