package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	// A zero must not zero the whole mean (clamped to eps).
	if got := GeoMean([]float64{0, 4}); got <= 0 {
		t.Errorf("GeoMean with zero = %v, want > 0", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestHistBasics(t *testing.T) {
	h := NewHist()
	for _, v := range []int{0, 0, 1, 2, 2, 2, 5} {
		h.Add(v)
	}
	if h.Total() != 7 || h.Min() != 0 || h.Max() != 5 {
		t.Fatalf("total/min/max = %d/%d/%d", h.Total(), h.Min(), h.Max())
	}
	if got := h.CDFAt(0); math.Abs(got-2.0/7) > 1e-9 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := h.CDFAt(2); math.Abs(got-6.0/7) > 1e-9 {
		t.Errorf("CDF(2) = %v", got)
	}
	if got := h.CDFAt(5); got != 1 {
		t.Errorf("CDF(max) = %v, want 1", got)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("median = %d, want 2", got)
	}
	if got := h.Mean(); math.Abs(got-12.0/7) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	vals, frac := h.CDF()
	if len(vals) != 4 || frac[len(frac)-1] != 1 {
		t.Errorf("CDF series = %v %v", vals, frac)
	}
}

func TestHistCDFMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		h := NewHist()
		for _, v := range raw {
			h.Add(int(v % 64))
		}
		if h.Total() == 0 {
			return true
		}
		_, frac := h.CDF()
		for i := 1; i < len(frac); i++ {
			if frac[i] < frac[i-1] {
				return false
			}
		}
		return frac[len(frac)-1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistQuantileWithinSupport(t *testing.T) {
	f := func(raw []uint8, q float64) bool {
		h := NewHist()
		for _, v := range raw {
			h.Add(int(v % 100))
		}
		if h.Total() == 0 {
			return true
		}
		q = math.Abs(q)
		q -= math.Floor(q)
		v := h.Quantile(q)
		return v >= h.Min() && v <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFSeries(t *testing.T) {
	h := NewHist()
	for i := 0; i < 100; i++ {
		h.Add(i)
	}
	depths, frac := h.CDFSeries(11)
	if len(depths) != 11 || depths[0] != 0 || depths[10] != 99 {
		t.Fatalf("depths = %v", depths)
	}
	if frac[10] != 1 {
		t.Errorf("final fraction = %v", frac[10])
	}
}

func TestSciNotation(t *testing.T) {
	cases := []struct {
		v        uint64
		overflow bool
		want     string
	}{
		{42, false, "42"},
		{999999, false, "999999"},
		{140_000_000_000, false, "1.4E+11"},
		{0, true, "overflow"},
	}
	for _, c := range cases {
		if got := SciNotation(c.v, c.overflow); got != c.want {
			t.Errorf("SciNotation(%d,%v) = %q, want %q", c.v, c.overflow, got, c.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.0213); got != "2.1%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", "1")
	tb.Row("b", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line %q", lines[0])
	}
	// Numbers right-aligned: "1" should end both data lines' value col.
	if !strings.HasSuffix(lines[2], "1") || !strings.HasSuffix(lines[3], "22") {
		t.Errorf("alignment wrong:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestSeriesRendering(t *testing.T) {
	s := NewSeries("x", "y")
	s.Add(1, 0.5)
	s.Add(2, 1)
	out := s.String()
	want := "x\ty\n1\t0.5\n2\t1\n"
	if out != want {
		t.Errorf("series = %q, want %q", out, want)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}
