package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders aligned ASCII tables for the experiment binaries. Rows
// are added as strings; numeric formatting is the caller's concern.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; missing cells render empty, extra cells widen the
// table.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// Rowf appends a row of formatted values.
func (t *Table) Rowf(format string, args ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "\t"))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	nCols := len(t.header)
	for _, r := range t.rows {
		if len(r) > nCols {
			nCols = len(r)
		}
	}
	widths := make([]int, nCols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	writeRow := func(r []string) error {
		var sb strings.Builder
		for i := 0; i < nCols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			// Left-align the first column (names), right-align the rest
			// (numbers), matching the paper's table layout.
			if i == 0 {
				sb.WriteString(cell)
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			} else {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
				sb.WriteString(cell)
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if len(t.header) > 0 {
		if err := writeRow(t.header); err != nil {
			return err
		}
		total := 0
		for _, w := range widths {
			total += w
		}
		total += 2 * (nCols - 1)
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
			return err
		}
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}

// Series renders an (x, y...) numeric series as tab-separated lines with
// a header, the format used for the figure harnesses.
type Series struct {
	header []string
	rows   [][]float64
}

// NewSeries returns a series with the given column names.
func NewSeries(header ...string) *Series { return &Series{header: header} }

// Add appends one sample row.
func (s *Series) Add(vals ...float64) { s.rows = append(s.rows, vals) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.rows) }

// Write renders the series as TSV.
func (s *Series) Write(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(s.header, "\t")); err != nil {
		return err
	}
	for _, r := range s.rows {
		parts := make([]string, len(r))
		for i, v := range r {
			if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
				parts[i] = fmt.Sprintf("%d", int64(v))
			} else {
				parts[i] = fmt.Sprintf("%.4g", v)
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the series.
func (s *Series) String() string {
	var sb strings.Builder
	_ = s.Write(&sb)
	return sb.String()
}
