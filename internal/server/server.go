// Package server implements dacced's decode-as-a-service core: a
// multi-tenant registry of persisted encoder states and an HTTP/JSON
// API that resolves captured contexts against them. Each tenant is one
// snapshot — keyed by program name plus content hash, so multiple
// encodings of the same program coexist and a client can pin the exact
// state its captures were taken under. Decodes run on the snapshot's
// immutable per-epoch indexes, so any number of requests decode
// concurrently; per-tenant concurrency caps with a bounded wait queue
// turn overload into fast 429s instead of collapse.
//
// Endpoints:
//
//	GET  /healthz                   liveness + tenant count
//	POST /v1/decode                 batched decode: {tenant, captures[]}
//	GET  /v1/snapshot?tenant=NAME   download the tenant's raw snapshot
//	POST /v1/snapshot?tenant=NAME   register a snapshot (body = bytes)
//	POST /v1/retire?tenant=N&epoch=E retire epochs ≤ E (drop memo, collect DAG)
//	GET  /v1/stats                  build info + per-tenant statistics
//	GET  /metrics                   Prometheus metrics
//	GET  /debug/ccprof?tenant=NAME  live context profile (pprof/folded/tree)
//	GET  /debug/vars                metrics as JSON, with quantile snapshots
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dacce/internal/buildinfo"
	"dacce/internal/ccdag"
	"dacce/internal/ccprof"
	"dacce/internal/core"
	"dacce/internal/persist"
	"dacce/internal/prog"
	"dacce/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// MaxConcurrent caps in-flight decode requests per tenant
	// (default 4).
	MaxConcurrent int
	// QueueDepth bounds how many requests may wait for a slot per
	// tenant; the queue full, further requests get 429 (default 64).
	QueueDepth int
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// Registry receives the server's metrics; a private registry is
	// created when nil, so /metrics always serves.
	Registry *telemetry.Registry
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
}

// tenant is one registered snapshot and its admission state.
type tenant struct {
	name string
	hash string
	key  string

	dec *core.Decoder
	st  *core.EncoderState
	raw []byte

	// prof aggregates every context this tenant decodes into a live
	// calling-context profile, served from /debug/ccprof. profShard
	// spreads concurrent requests across accumulation shards.
	prof      *ccprof.Streaming
	profShard atomic.Int64

	// dag interns every context this tenant decodes; repeated contexts
	// across requests share suffix storage and feed the profiler as
	// canonical nodes. It is bounded: RetireEpoch advances its
	// generation and sweeps nodes not pinned by the surviving memo.
	dag *ccdag.DAG

	// genMu orders decodes against epoch retirement: every decode holds
	// the read side across its whole memo-lookup/walk/insert, so a
	// retirement (write side) never collects the DAG while a decode's
	// freshly interned chain is mid-flight — the server-side analogue of
	// the encoder's capture refcounts.
	genMu sync.RWMutex

	// memo caches fully-determined decodes, bucketed by capture epoch so
	// RetireEpoch drops a retired epoch's entries by unlinking its
	// bucket — O(1) per epoch, not a scan. A capture with no spawn chain
	// decodes to exactly one context per (epoch, id, fn, root, ccStack);
	// the ccStack's content enters the key as a 64-bit FNV suffix hash
	// (ccSuffixHash), which the memo treats as injective — the standard
	// content-hash assumption. Captures with a spawn prefix carry decode
	// input outside the key and are never memoized.
	memoMu     sync.RWMutex
	memo       map[uint32]map[memoKey]*ccdag.Node
	memoSize   atomic.Int64 // live entries across all epoch buckets
	memoHits   atomic.Int64
	memoMisses atomic.Int64

	// slots is the concurrency cap: a request holds one slot for the
	// duration of its decode work.
	slots chan struct{}
	// queued counts requests waiting for a slot; bounded by QueueDepth.
	queued atomic.Int64

	requests atomic.Int64
	decoded  atomic.Int64
	errors   atomic.Int64
	rejected atomic.Int64
}

// memoKey identifies one fully-determined decode within its epoch
// bucket: with no spawn prefix, (id, fn, root) plus the ccStack's
// content hash are the entire decode input. The epoch is the bucket
// index, not a key field.
type memoKey struct {
	id   uint64
	fn   prog.FuncID
	root prog.FuncID
	cc   uint64 // ccSuffixHash of the capture's ccStack
}

// ccSuffixHash folds a capture's ccStack — length and every entry,
// recursion bit included — into the 64-bit FNV the memo keys on, the
// same mix Capture.Fingerprint uses. An empty stack hashes to the FNV
// offset basis, so empty-ccStack captures keep one stable key.
func ccSuffixHash(c *core.Capture) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(len(c.CC)))
	for _, e := range c.CC {
		mix(e.ID)
		mix(uint64(uint32(e.Site)))
		mix(uint64(uint32(e.Target)))
		v := uint64(e.Count)
		if e.Rec {
			v |= 1 << 63
		}
		mix(v)
	}
	return h
}

// memoizable reports whether a capture's decode is determined by its
// (epoch bucket, memoKey) pair alone. Only a spawn prefix disqualifies:
// the spawn chain is a linked structure of further captures whose
// content the key cannot bound; ccStacks are hashed into the key.
func memoizable(c *core.Capture) bool {
	return c.Spawn == nil
}

// decodeNode resolves a capture to its interned context node, through
// the memo when the capture is memoizable. Caller holds t.genMu.RLock
// (handleDecode takes it per batch), so no retirement can sweep the
// DAG mid-walk.
func (t *tenant) decodeNode(c *core.Capture) (*ccdag.Node, error) {
	if !memoizable(c) {
		return t.dec.DecodeNode(t.dag, c)
	}
	key := memoKey{id: c.ID, fn: c.Fn, root: c.Root, cc: ccSuffixHash(c)}
	t.memoMu.RLock()
	n, ok := t.memo[c.Epoch][key]
	t.memoMu.RUnlock()
	if ok {
		t.memoHits.Add(1)
		return n, nil
	}
	n, err := t.dec.DecodeNode(t.dag, c)
	if err != nil {
		return nil, err
	}
	// Re-check under the write lock: two concurrent misses both decode,
	// but only the first insert wins — the loser adopts the resident
	// node (identical by interning, but adopting keeps the accounting
	// exact) and counts a hit, so misses always equals entries created.
	t.memoMu.Lock()
	b := t.memo[c.Epoch]
	if b == nil {
		b = map[memoKey]*ccdag.Node{}
		t.memo[c.Epoch] = b
	}
	if prev, ok := b[key]; ok {
		t.memoMu.Unlock()
		t.memoHits.Add(1)
		return prev, nil
	}
	b[key] = n
	t.memoMu.Unlock()
	t.memoSize.Add(1)
	t.memoMisses.Add(1)
	return n, nil
}

// retireEpoch declares every capture of epochs ≤ epoch dead: their memo
// buckets are unlinked, the profiler's node pins are flushed, and the
// DAG is swept with the surviving memo entries as roots. Returns the
// number of memo entries dropped and the collection's statistics.
// Blocks until in-flight decodes drain (genMu write side) and excludes
// new ones for the duration, so no mid-walk chain can be swept.
func (t *tenant) retireEpoch(epoch uint32) (int64, ccdag.CollectStats) {
	t.genMu.Lock()
	defer t.genMu.Unlock()
	var dropped int64
	t.memoMu.Lock()
	for e, b := range t.memo {
		if e <= epoch {
			dropped += int64(len(b))
			delete(t.memo, e)
		}
	}
	t.memoMu.Unlock()
	t.memoSize.Add(-dropped)
	// Fold the profiler's pending per-node counts into its merged tree
	// and drop the node keys; without this the shard maps would pin
	// every node ever sampled and the sweep below would free nothing.
	t.prof.ReleaseNodes()
	// Everything not reachable from a surviving memo entry is garbage:
	// non-memoized decodes materialize their frames inside the request,
	// so the memo is the only long-lived canonical pin. Advancing the
	// generation first makes the whole current table stale except what
	// the pin callback re-marks.
	floor := t.dag.AdvanceGen()
	st := t.dag.Collect(floor, func(mark func(*ccdag.Node)) {
		for _, b := range t.memo {
			for _, n := range b {
				mark(n)
			}
		}
	})
	return dropped, st
}

// RetireEpoch retires epochs ≤ epoch of the referenced tenant (name or
// name@hash): memo buckets for retired epochs are dropped in O(1) each,
// profiler node pins are released, and the tenant's context DAG is
// collected down to the entries the surviving memo still pins. Safe
// against concurrent decodes. Exposed over HTTP as POST /v1/retire.
func (s *Server) RetireEpoch(ref string, epoch uint32) (RetireInfo, error) {
	t := s.resolve(ref)
	if t == nil {
		return RetireInfo{}, fmt.Errorf("server: unknown tenant %q", ref)
	}
	dropped, st := t.retireEpoch(epoch)
	return RetireInfo{
		Tenant: t.name, Hash: t.hash, Epoch: epoch,
		MemoDropped: dropped, Collect: st,
	}, nil
}

// Server is the decode service. Create with New, serve via Handler.
type Server struct {
	cfg Config

	mu      sync.RWMutex
	tenants map[string]*tenant // key: "name@hash"
	latest  map[string]string  // name → most recently registered key

	inflight atomic.Int64
	mux      *http.ServeMux

	// httpInflight counts requests inside the handler on any route
	// (inflight counts only decode requests holding a slot).
	httpInflight atomic.Int64

	mRequests     func(endpoint, code string) *telemetry.Counter
	mReqDuration  func(route string) *telemetry.Histogram
	mLatency      *telemetry.Histogram
	mDecoded      *telemetry.Counter
	mErrors       *telemetry.Counter
	mRejected     *telemetry.Counter
	mInflight     *telemetry.Gauge
	mHTTPInflight *telemetry.Gauge
}

// New creates a Server.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		tenants: map[string]*tenant{},
		latest:  map[string]string{},
	}
	reg := cfg.Registry
	reg.Help("dacced_requests_total", "HTTP requests by endpoint and status code")
	reg.Help("dacced_decode_latency_us", "Batched decode request latency (µs)")
	reg.Help("dacced_contexts_decoded_total", "Captures successfully decoded")
	reg.Help("dacced_decode_errors_total", "Captures that failed to decode")
	reg.Help("dacced_rejected_total", "Requests rejected by backpressure (429)")
	reg.Help("dacced_inflight", "Decode requests currently holding a slot")
	reg.Help("dacced_queue_depth", "Requests waiting for a tenant slot")
	reg.Help("dacced_request_duration_ns", "Wall time per HTTP request by route (ns)")
	reg.Help("dacced_http_inflight", "HTTP requests currently in the handler, any route")
	reg.Help("dacced_dag_nodes", "Interned context-DAG nodes per tenant")
	reg.Help("dacced_dag_intern_hits", "Context-DAG intern lookups that found an existing node")
	reg.Help("dacced_dag_intern_misses", "Context-DAG intern lookups that created a node")
	reg.Help("dacced_dag_bytes_estimate", "Estimated context-DAG memory footprint per tenant (bytes)")
	reg.Help("dacced_memo_hits", "Decodes served from the per-tenant node memo")
	reg.Help("dacced_memo_misses", "Memoizable decodes that had to walk the snapshot")
	reg.Help("dacced_memo_size", "Live decode-memo entries per tenant, all epoch buckets")
	reg.Help("dacced_dag_collected_total", "Context-DAG nodes freed by epoch retirement per tenant")
	reg.Help("dacced_dag_collections_total", "Context-DAG reclamation passes per tenant")
	s.mRequests = func(endpoint, code string) *telemetry.Counter {
		return reg.Counter("dacced_requests_total", "endpoint", endpoint, "code", code)
	}
	s.mReqDuration = func(route string) *telemetry.Histogram {
		return reg.Histogram("dacced_request_duration_ns", telemetry.DurationBuckets(), "route", route)
	}
	s.mLatency = reg.Histogram("dacced_decode_latency_us", telemetry.ExpBuckets(10, 4, 10))
	s.mDecoded = reg.Counter("dacced_contexts_decoded_total")
	s.mErrors = reg.Counter("dacced_decode_errors_total")
	s.mRejected = reg.Counter("dacced_rejected_total")
	s.mInflight = reg.Gauge("dacced_inflight")
	s.mHTTPInflight = reg.Gauge("dacced_http_inflight")

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/decode", s.handleDecode)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/v1/retire", s.handleRetire)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/ccprof", s.handleCcprof)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	return s
}

// routeLabel normalizes a request path to a bounded metric label — the
// fixed route set, or "other" — so arbitrary client paths can't explode
// the label space.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/v1/decode", "/v1/snapshot", "/v1/retire", "/v1/stats",
		"/metrics", "/debug/ccprof", "/debug/vars":
		return path
	}
	return "other"
}

// Handler returns the server's HTTP handler: the route mux wrapped in
// timing middleware that feeds the per-route request-duration histogram
// and the whole-server in-flight gauge.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mHTTPInflight.Set(s.httpInflight.Add(1))
		start := time.Now()
		defer func() {
			s.mReqDuration(routeLabel(r.URL.Path)).ObserveDuration(time.Since(start))
			s.mHTTPInflight.Set(s.httpInflight.Add(-1))
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// DecodeLatency returns the decode-request latency histogram (µs) — the
// source for dacced's decode-p99 SLO rule.
func (s *Server) DecodeLatency() *telemetry.Histogram { return s.mLatency }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *telemetry.Registry { return s.cfg.Registry }

// Register installs a snapshot under the given program name and returns
// the tenant's content hash. Registering the same bytes twice is
// idempotent; a different snapshot under the same name becomes the
// name's new default while the old one stays addressable as name@hash.
func (s *Server) Register(name string, data []byte) (string, error) {
	if name == "" {
		return "", fmt.Errorf("server: tenant name must not be empty")
	}
	st, err := persist.Unmarshal(data)
	if err != nil {
		return "", err
	}
	dec, err := st.NewDecoder()
	if err != nil {
		return "", err
	}
	hash := persist.Hash(data)
	t := &tenant{
		name:  name,
		hash:  hash,
		key:   name + "@" + hash,
		dec:   dec,
		st:    st,
		raw:   data,
		prof:  ccprof.NewStreaming(dec.P),
		dag:   ccdag.New(),
		memo:  map[uint32]map[memoKey]*ccdag.Node{},
		slots: make(chan struct{}, s.cfg.MaxConcurrent),
	}
	s.mu.Lock()
	s.tenants[t.key] = t
	s.latest[name] = t.key
	s.mu.Unlock()
	return hash, nil
}

// Tenants returns the registered tenant keys, sorted.
func (s *Server) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.tenants))
	for k := range s.tenants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// resolve finds a tenant by exact "name@hash" key or bare name (the
// name's most recently registered snapshot).
func (s *Server) resolve(ref string) *tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t, ok := s.tenants[ref]; ok {
		return t
	}
	if key, ok := s.latest[ref]; ok {
		return s.tenants[key]
	}
	return nil
}

// acquire admits a request into the tenant's decode slots: immediately
// when a slot is free, after a bounded wait while the queue has room,
// not at all (429) when the queue is full or the client went away.
func (s *Server) acquire(r *http.Request, t *tenant) bool {
	select {
	case t.slots <- struct{}{}:
		return true
	default:
	}
	if t.queued.Add(1) > int64(s.cfg.QueueDepth) {
		t.queued.Add(-1)
		return false
	}
	defer t.queued.Add(-1)
	select {
	case t.slots <- struct{}{}:
		return true
	case <-r.Context().Done():
		return false
	}
}

func (s *Server) release(t *tenant) { <-t.slots }

// --- wire types ---

// DecodeRequest is the /v1/decode request body. Captures use the same
// JSON shape daccerun -dump writes (core.Capture's field names), so a
// captures.json can be posted as-is.
type DecodeRequest struct {
	// Tenant is a program name or name@hash key.
	Tenant string `json:"tenant"`
	// Captures are the contexts to decode, in order.
	Captures []*core.Capture `json:"captures"`
}

// Frame is one decoded calling-context frame, root first.
type Frame struct {
	Site prog.SiteID `json:"site"`
	Fn   prog.FuncID `json:"fn"`
	Name string      `json:"name"`
}

// DecodeResult is one capture's outcome: frames or an error.
type DecodeResult struct {
	Frames []Frame `json:"frames,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// DecodeResponse is the /v1/decode response body. Results are parallel
// to the request's captures.
type DecodeResponse struct {
	Tenant  string         `json:"tenant"`
	Hash    string         `json:"hash"`
	Results []DecodeResult `json:"results"`
}

// RetireInfo is the POST /v1/retire response body: what one epoch
// retirement dropped from the tenant's memo and reclaimed from its DAG.
type RetireInfo struct {
	Tenant      string             `json:"tenant"`
	Hash        string             `json:"hash"`
	Epoch       uint32             `json:"epoch"`
	MemoDropped int64              `json:"memo_dropped"`
	Collect     ccdag.CollectStats `json:"collect"`
}

// SnapshotInfo is the POST /v1/snapshot response body.
type SnapshotInfo struct {
	Tenant string `json:"tenant"`
	Hash   string `json:"hash"`
	Epochs int    `json:"epochs"`
	Funcs  int    `json:"funcs"`
	Edges  int    `json:"edges"`
	MaxID  uint64 `json:"max_id"`
}

// TenantStats is one tenant's entry in /v1/stats.
type TenantStats struct {
	Name      string `json:"name"`
	Hash      string `json:"hash"`
	Epochs    int    `json:"epochs"`
	Funcs     int    `json:"funcs"`
	Edges     int    `json:"edges"`
	MaxID     uint64 `json:"max_id"`
	Requests  int64  `json:"requests"`
	Decoded   int64  `json:"decoded"`
	Errors    int64  `json:"errors"`
	Rejected  int64  `json:"rejected"`
	Queued    int64  `json:"queued"`
	SnapBytes int    `json:"snapshot_bytes"`

	// Context-DAG and decode-memo health. DAGNodes and DAGBytesEst are
	// post-collection figures — the live intern table, not cumulative
	// interning; DAGCollections/DAGCollected show reclamation working.
	DAGNodes       int64   `json:"dag_nodes"`
	DAGHitRate     float64 `json:"dag_hit_rate"`
	DAGBytesEst    int64   `json:"dag_bytes_estimate"`
	DAGCollections int64   `json:"dag_collections"`
	DAGCollected   int64   `json:"dag_collected"`
	MemoHits       int64   `json:"memo_hits"`
	MemoMisses     int64   `json:"memo_misses"`
	MemoSize       int64   `json:"memo_size"`
}

// Stats is the /v1/stats response body.
type Stats struct {
	Build    buildinfo.Info `json:"build"`
	Inflight int64          `json:"inflight"`
	Tenants  []TenantStats  `json:"tenants"`
}

// --- handlers ---

func (s *Server) count(endpoint string, code int) {
	s.mRequests(endpoint, strconv.Itoa(code)).Inc()
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, code int, v any) {
	s.count(endpoint, code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, code int, format string, args ...any) {
	s.writeJSON(w, endpoint, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.tenants)
	s.mu.RUnlock()
	s.writeJSON(w, "healthz", http.StatusOK, map[string]any{"status": "ok", "tenants": n})
}

func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	const ep = "decode"
	if r.Method != http.MethodPost {
		s.writeError(w, ep, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DecodeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, ep, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	t := s.resolve(req.Tenant)
	if t == nil {
		s.writeError(w, ep, http.StatusNotFound, "unknown tenant %q", req.Tenant)
		return
	}
	if !s.acquire(r, t) {
		t.rejected.Add(1)
		s.mRejected.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeError(w, ep, http.StatusTooManyRequests, "tenant %s at capacity", t.key)
		return
	}
	defer s.release(t)
	s.inflight.Add(1)
	s.mInflight.Set(s.inflight.Load())
	defer func() {
		s.inflight.Add(-1)
		s.mInflight.Set(s.inflight.Load())
	}()

	start := time.Now()
	t.requests.Add(1)
	// Each request accumulates into one profiler shard for its whole
	// batch; round-robin over the slot count keeps concurrent requests
	// off each other's shard locks.
	shard := int(t.profShard.Add(1)-1) % s.cfg.MaxConcurrent
	resp := DecodeResponse{
		Tenant:  t.name,
		Hash:    t.hash,
		Results: make([]DecodeResult, 0, len(req.Captures)),
	}
	// mctx is the batch's node-materialization buffer, reused across
	// captures. The whole batch runs under the tenant's retirement
	// read-lock: a concurrent RetireEpoch drains the batch instead of
	// sweeping a chain some capture here is mid-walk on.
	var mctx core.Context
	t.genMu.RLock()
	for _, c := range req.Captures {
		var res DecodeResult
		if c == nil {
			res.Error = "null capture"
		} else if n, err := t.decodeNode(c); err != nil {
			res.Error = err.Error()
		} else {
			t.prof.ObserveContextNode(shard, n)
			mctx = core.AppendNodeContext(mctx, n)
			res.Frames = make([]Frame, 0, len(mctx))
			for _, f := range mctx {
				res.Frames = append(res.Frames, Frame{
					Site: f.Site, Fn: f.Fn, Name: t.dec.P.Funcs[f.Fn].Name,
				})
			}
		}
		if res.Error != "" {
			t.errors.Add(1)
			s.mErrors.Inc()
		} else {
			t.decoded.Add(1)
			s.mDecoded.Inc()
		}
		resp.Results = append(resp.Results, res)
	}
	t.genMu.RUnlock()
	s.mLatency.Observe(time.Since(start).Microseconds())
	s.writeJSON(w, ep, http.StatusOK, &resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	const ep = "snapshot"
	name := r.URL.Query().Get("tenant")
	switch r.Method {
	case http.MethodGet:
		t := s.resolve(name)
		if t == nil {
			s.writeError(w, ep, http.StatusNotFound, "unknown tenant %q", name)
			return
		}
		s.count(ep, http.StatusOK)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Dacce-State-Hash", t.hash)
		_, _ = w.Write(t.raw)
	case http.MethodPost, http.MethodPut:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.writeError(w, ep, http.StatusBadRequest, "reading snapshot: %v", err)
			return
		}
		hash, err := s.Register(name, data)
		if err != nil {
			s.writeError(w, ep, http.StatusBadRequest, "registering snapshot: %v", err)
			return
		}
		t := s.resolve(name + "@" + hash)
		s.writeJSON(w, ep, http.StatusOK, SnapshotInfo{
			Tenant: name, Hash: hash,
			Epochs: len(t.st.Epochs), Funcs: len(t.st.Funcs),
			Edges: len(t.st.Edges), MaxID: t.st.Epochs[len(t.st.Epochs)-1].MaxID,
		})
	default:
		s.writeError(w, ep, http.StatusMethodNotAllowed, "GET, POST or PUT required")
	}
}

// handleRetire serves POST /v1/retire?tenant=NAME&epoch=N: retire every
// epoch ≤ N of the tenant — drop their memo buckets and collect the
// context DAG down to the surviving memo's pins.
func (s *Server) handleRetire(w http.ResponseWriter, r *http.Request) {
	const ep = "retire"
	if r.Method != http.MethodPost {
		s.writeError(w, ep, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ref := r.URL.Query().Get("tenant")
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 32)
	if err != nil {
		s.writeError(w, ep, http.StatusBadRequest, "epoch parameter: %v", err)
		return
	}
	info, err := s.RetireEpoch(ref, uint32(epoch))
	if err != nil {
		s.writeError(w, ep, http.StatusNotFound, "%v", err)
		return
	}
	s.writeJSON(w, ep, http.StatusOK, &info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{Build: buildinfo.Get(), Inflight: s.inflight.Load()}
	s.mu.RLock()
	keys := make([]string, 0, len(s.tenants))
	for k := range s.tenants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		t := s.tenants[key]
		dst := t.dag.Stats()
		st.Tenants = append(st.Tenants, TenantStats{
			DAGNodes:       dst.Nodes,
			DAGHitRate:     dst.HitRate(),
			DAGBytesEst:    dst.BytesEstimate,
			DAGCollections: dst.Collections,
			DAGCollected:   dst.Collected,
			MemoHits:       t.memoHits.Load(),
			MemoMisses:     t.memoMisses.Load(),
			MemoSize:       t.memoSize.Load(),
			Name:           t.name,
			Hash:           t.hash,
			Epochs:         len(t.st.Epochs),
			Funcs:          len(t.st.Funcs),
			Edges:          len(t.st.Edges),
			MaxID:          t.st.Epochs[len(t.st.Epochs)-1].MaxID,
			Requests:       t.requests.Load(),
			Decoded:        t.decoded.Load(),
			Errors:         t.errors.Load(),
			Rejected:       t.rejected.Load(),
			Queued:         t.queued.Load(),
			SnapBytes:      len(t.raw),
		})
	}
	s.mu.RUnlock()
	s.writeJSON(w, "stats", http.StatusOK, &st)
}

// refreshTenantGauges recomputes the per-tenant scrape-time gauges:
// queue depth plus the context-DAG and decode-memo health counters.
func (s *Server) refreshTenantGauges() {
	reg := s.cfg.Registry
	s.mu.RLock()
	for _, t := range s.tenants {
		reg.Gauge("dacced_queue_depth", "tenant", t.name).Set(t.queued.Load())
		st := t.dag.Stats()
		reg.Gauge("dacced_dag_nodes", "tenant", t.name).Set(st.Nodes)
		reg.Gauge("dacced_dag_intern_hits", "tenant", t.name).Set(st.Hits)
		reg.Gauge("dacced_dag_intern_misses", "tenant", t.name).Set(st.Misses)
		reg.Gauge("dacced_dag_bytes_estimate", "tenant", t.name).Set(st.BytesEstimate)
		reg.Gauge("dacced_dag_collected_total", "tenant", t.name).Set(st.Collected)
		reg.Gauge("dacced_dag_collections_total", "tenant", t.name).Set(st.Collections)
		reg.Gauge("dacced_memo_hits", "tenant", t.name).Set(t.memoHits.Load())
		reg.Gauge("dacced_memo_misses", "tenant", t.name).Set(t.memoMisses.Load())
		reg.Gauge("dacced_memo_size", "tenant", t.name).Set(t.memoSize.Load())
	}
	s.mu.RUnlock()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshTenantGauges()
	s.count("metrics", http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.cfg.Registry.WritePrometheus(w)
}

// handleCcprof serves a tenant's live context profile. With one tenant
// registered the tenant parameter may be omitted; formats follow
// ccprof.Streaming.Handler (pprof protobuf, ?format=folded, ?format=tree).
func (s *Server) handleCcprof(w http.ResponseWriter, r *http.Request) {
	const ep = "ccprof"
	ref := r.URL.Query().Get("tenant")
	var t *tenant
	if ref == "" {
		s.mu.RLock()
		if len(s.tenants) == 1 {
			for _, only := range s.tenants {
				t = only
			}
		}
		n := len(s.tenants)
		s.mu.RUnlock()
		if t == nil {
			s.writeError(w, ep, http.StatusBadRequest,
				"tenant parameter required (%d tenants registered)", n)
			return
		}
	} else if t = s.resolve(ref); t == nil {
		s.writeError(w, ep, http.StatusNotFound, "unknown tenant %q", ref)
		return
	}
	s.count(ep, http.StatusOK)
	t.prof.Handler().ServeHTTP(w, r)
}

// handleVars serves every registered metric as JSON, histograms with
// their quantile snapshots — the machine-readable twin of /metrics.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	s.refreshTenantGauges()
	s.count("vars", http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	_ = s.cfg.Registry.WriteJSON(w)
}
