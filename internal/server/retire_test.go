package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"

	"dacce/internal/ccdag"
	"dacce/internal/core"
)

// decodeJSONBody decodes and closes an HTTP response body, failing the
// test on a non-200 status.
func decodeJSONBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestRetireEpochBoundsMemoAndDAG drives the full retirement path over
// HTTP: decode everything (warming memo, DAG and profiler), retire all
// epochs, and check that the memo empties, the DAG shrinks to what the
// (now empty) memo pins, stats expose the reclamation, and decoding the
// same captures afterwards still matches the in-process encoder — a
// retirement is a memory policy, never a data deletion.
func TestRetireEpochBoundsMemoAndDAG(t *testing.T) {
	f := newServeFixture(t, Config{}, 30_000, 29)
	if _, dr := f.decode(t, "serve", f.captures); dr == nil {
		t.Fatal("warm decode failed")
	}
	tn := f.srv.resolve("serve")
	if tn.memoSize.Load() == 0 {
		t.Fatal("warm decode memoized nothing")
	}
	nodesBefore := tn.dag.Len()

	var maxEpoch uint32
	for _, c := range f.captures {
		if c.Epoch > maxEpoch {
			maxEpoch = c.Epoch
		}
	}
	resp, err := http.Post(f.ts.URL+"/v1/retire?tenant=serve&epoch="+
		strconv.FormatUint(uint64(maxEpoch), 10), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var info RetireInfo
	decodeJSONBody(t, resp, &info)
	if info.MemoDropped == 0 || info.Collect.Freed == 0 {
		t.Fatalf("retire dropped %d memo entries, freed %d nodes — want both > 0 (%+v)",
			info.MemoDropped, info.Collect.Freed, info)
	}
	if got := tn.memoSize.Load(); got != 0 {
		t.Fatalf("memo size %d after retiring every epoch, want 0", got)
	}
	if got := tn.dag.Len(); got >= nodesBefore {
		t.Fatalf("DAG holds %d nodes after full retirement, had %d before", got, nodesBefore)
	}

	// Reclamation shows up in /v1/stats.
	var st Stats
	sresp, err := http.Get(f.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSONBody(t, sresp, &st)
	ts0 := st.Tenants[0]
	if ts0.DAGCollections == 0 || ts0.DAGCollected == 0 {
		t.Fatalf("stats report %d collections / %d collected, want both > 0",
			ts0.DAGCollections, ts0.DAGCollected)
	}
	if ts0.MemoSize != 0 {
		t.Fatalf("stats memo_size = %d after full retirement", ts0.MemoSize)
	}
	if ts0.DAGNodes != tn.dag.Len() {
		t.Fatalf("stats dag_nodes = %d, live table has %d (stale pre-collection figure?)",
			ts0.DAGNodes, tn.dag.Len())
	}

	// Post-retirement decodes still produce the in-process frames.
	_, dr := f.decode(t, "serve", f.captures[:min(512, len(f.captures))])
	if dr == nil {
		t.Fatal("decode after retirement failed")
	}
	for i, res := range dr.Results {
		want, err := f.d.Decode(f.captures[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Error != "" || len(res.Frames) != len(want) {
			t.Fatalf("capture %d after retirement: error %q, %d frames want %d",
				i, res.Error, len(res.Frames), len(want))
		}
		for j, fr := range res.Frames {
			if fr.Site != want[j].Site || fr.Fn != want[j].Fn {
				t.Fatalf("capture %d frame %d diverged after retirement", i, j)
			}
		}
	}
}

// TestMemoizableWithCC checks the CC-suffix-hash key: captures carrying
// a non-empty ccStack are memoizable now, a repeat pass serves them
// from the memo, and distinct ccStacks never collide onto one entry.
func TestMemoizableWithCC(t *testing.T) {
	f := newServeFixture(t, Config{}, 60_000, 17)
	var withCC []*core.Capture
	for _, c := range f.captures {
		if len(c.CC) > 0 && c.Spawn == nil {
			withCC = append(withCC, c)
		}
	}
	if len(withCC) == 0 {
		t.Skip("workload produced no ccStack captures without spawn chains")
	}
	if !memoizable(withCC[0]) {
		t.Fatal("ccStack capture not memoizable")
	}
	first, dr1 := f.decode(t, "serve", withCC)
	if dr1 == nil {
		t.Fatalf("first pass: HTTP %d", first.StatusCode)
	}
	tn := f.srv.resolve("serve")
	missesAfterWarm := tn.memoMisses.Load()
	_, dr2 := f.decode(t, "serve", withCC)
	if dr2 == nil {
		t.Fatal("second pass failed")
	}
	if got := tn.memoMisses.Load(); got != missesAfterWarm {
		t.Fatalf("second pass took %d new misses, want 0 (all from memo)", got-missesAfterWarm)
	}
	for i := range dr1.Results {
		a, b := dr1.Results[i], dr2.Results[i]
		if len(a.Frames) != len(b.Frames) {
			t.Fatalf("capture %d: memoized pass returned %d frames, first %d",
				i, len(b.Frames), len(a.Frames))
		}
		for j := range a.Frames {
			if a.Frames[j] != b.Frames[j] {
				t.Fatalf("capture %d frame %d changed across memoization", i, j)
			}
		}
		// Cross-check against the in-process decode: a key collision
		// between different ccStacks would surface here as wrong frames.
		want, err := f.d.Decode(withCC[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Frames) != len(want) {
			t.Fatalf("capture %d: memoized %d frames, in-process %d", i, len(b.Frames), len(want))
		}
	}
}

// TestMemoMissRaceAccounting hammers one previously unseen capture from
// many goroutines: however the misses race, exactly one insert must win
// (misses == entries created) and hits + misses must equal the decode
// count — the check-then-insert fix.
func TestMemoMissRaceAccounting(t *testing.T) {
	f := newServeFixture(t, Config{}, 30_000, 29)
	tn := f.srv.resolve("serve")
	var target *core.Capture
	for _, c := range f.captures {
		if memoizable(c) {
			target = c
			break
		}
	}
	if target == nil {
		t.Fatal("no memoizable capture in fixture")
	}
	const goroutines = 16
	var wg sync.WaitGroup
	nodes := make([]*ccdag.Node, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tn.genMu.RLock()
			n, err := tn.decodeNode(target)
			tn.genMu.RUnlock()
			if err != nil {
				t.Error(err)
				return
			}
			nodes[g] = n
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if nodes[g] != nodes[0] {
			t.Fatalf("goroutine %d resolved a different node", g)
		}
	}
	hits, misses := tn.memoHits.Load(), tn.memoMisses.Load()
	if misses != tn.memoSize.Load() {
		t.Fatalf("misses %d != memo entries %d — double-counted racing misses", misses, tn.memoSize.Load())
	}
	if hits+misses != goroutines {
		t.Fatalf("hits %d + misses %d != %d decodes", hits, misses, goroutines)
	}
}
