package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client posts decode batches to a dacced server. Unlike a bare
// http.Post it bounds every attempt with a request timeout (a dead
// server fails the call instead of hanging it forever) and retries
// transient failures — transport errors, 429 back-pressure, 502/503/504
// — a bounded number of times, honoring the server's Retry-After header
// (the server answers a full tenant queue with 429 and Retry-After: 1).
type Client struct {
	// BaseURL is the server root, e.g. http://localhost:8357.
	BaseURL string
	// Timeout bounds each individual attempt (default 30s).
	Timeout time.Duration
	// MaxRetries is how many times a retryable failure is retried after
	// the first attempt (default 3; 0 keeps the default, negative
	// disables retries).
	MaxRetries int

	// HTTPClient overrides the transport; when nil, an http.Client with
	// Timeout is used. Tests inject an httptest client here.
	HTTPClient *http.Client
	// Sleep overrides the inter-retry wait (tests record it); nil means
	// time.Sleep.
	Sleep func(time.Duration)
}

func (c *Client) retries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return 3
	}
	return c.MaxRetries
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	return &http.Client{Timeout: timeout}
}

// retryable reports whether an HTTP status is worth retrying: the
// server's back-pressure signal and gateway-style transient failures.
// Everything else (400 bad request, 404 unknown tenant, 500 decode
// failure) is deterministic and retrying it only repeats the error.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter returns the wait the server asked for, or a capped
// exponential fallback when the header is absent or unparsable.
// Only the delta-seconds header form is parsed — it is what dacced
// sends; an HTTP-date falls back to the backoff schedule.
func retryAfter(resp *http.Response, attempt int) time.Duration {
	if resp != nil {
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
				return time.Duration(secs) * time.Second
			}
		}
	}
	backoff := 250 * time.Millisecond << attempt
	if backoff > 4*time.Second {
		backoff = 4 * time.Second
	}
	return backoff
}

// Decode posts one decode request, retrying transient failures, and
// returns the parsed response. A response with a non-retryable (or
// retries-exhausted) non-200 status becomes an error carrying the
// server's message.
func (c *Client) Decode(req *DecodeRequest) (*DecodeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := c.BaseURL + "/v1/decode"
	hc := c.httpClient()
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			if attempt >= c.retries() {
				return nil, fmt.Errorf("%s: %w (after %d attempts)", url, lastErr, attempt+1)
			}
			sleep(retryAfter(nil, attempt))
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(data))
			if !retryable(resp.StatusCode) || attempt >= c.retries() {
				return nil, lastErr
			}
			sleep(retryAfter(resp, attempt))
			continue
		}
		var dr DecodeResponse
		if err := json.Unmarshal(data, &dr); err != nil {
			return nil, fmt.Errorf("bad response from %s: %w", url, err)
		}
		if len(dr.Results) != len(req.Captures) {
			return nil, fmt.Errorf("%s returned %d results for %d captures", url, len(dr.Results), len(req.Captures))
		}
		return &dr, nil
	}
}
