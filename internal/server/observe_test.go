package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"dacce/internal/ccprof"
)

// TestDebugCcprof exercises the live profile endpoint: decode a batch,
// then pull the tenant's aggregate as pprof protobuf and folded text
// and check both account for exactly the decoded contexts.
func TestDebugCcprof(t *testing.T) {
	f := newServeFixture(t, Config{}, 30_000, 17)
	n := min(400, len(f.captures))
	if _, dr := f.decode(t, "serve", f.captures[:n]); dr == nil {
		t.Fatal("decode failed")
	}

	// Single tenant registered: the tenant parameter may be omitted.
	resp, err := http.Get(f.ts.URL + "/debug/ccprof")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/ccprof: HTTP %d", resp.StatusCode)
	}
	samples, total, err := ccprof.PprofTotals(resp.Body)
	if err != nil {
		t.Fatalf("parsing pprof: %v", err)
	}
	if total != int64(n) {
		t.Errorf("pprof value sum = %d, want %d decoded contexts", total, n)
	}
	if samples == 0 || samples > n {
		t.Errorf("pprof samples = %d", samples)
	}

	// Folded view, addressed by explicit tenant key.
	resp, err = http.Get(f.ts.URL + "/debug/ccprof?tenant=serve@" + f.hash + "&format=folded")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	folded, _ := io.ReadAll(resp.Body)
	tenantP := f.srv.resolve("serve").dec.P
	back, err := ccprof.ParseFolded(tenantP, strings.NewReader(string(folded)))
	if err != nil {
		t.Fatalf("folded output does not parse: %v", err)
	}
	if back.Total() != int64(n) {
		t.Errorf("folded total = %d, want %d", back.Total(), n)
	}
}

func TestDebugCcprofErrors(t *testing.T) {
	f := newServeFixture(t, Config{}, 5_000, 29)
	resp, err := http.Get(f.ts.URL + "/debug/ccprof?tenant=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestDebugVars checks the JSON exposition: histogram entries carry
// quantile snapshots and the request middleware populated the per-route
// duration histogram and in-flight gauge.
func TestDebugVars(t *testing.T) {
	f := newServeFixture(t, Config{}, 5_000, 29)
	n := min(50, len(f.captures))
	f.decode(t, "serve", f.captures[:n])

	resp, err := http.Get(f.ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Bounds     []int64 `json:"bounds"`
			Cumulative []int64 `json:"cumulative"`
			Count      int64   `json:"count"`
			P50        int64   `json:"p50"`
			P99        int64   `json:"p99"`
			Max        int64   `json:"max"`
		} `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	h, ok := vars.Histograms[`dacced_request_duration_ns{route="/v1/decode"}`]
	if !ok {
		t.Fatalf("missing decode route duration histogram; have %d histograms", len(vars.Histograms))
	}
	if h.Count == 0 {
		t.Error("decode route histogram empty")
	}
	if h.Max <= 0 || h.P99 <= 0 || h.P50 > h.P99 || h.P99 > h.Max {
		t.Errorf("quantile snapshot not ordered: p50=%d p99=%d max=%d", h.P50, h.P99, h.Max)
	}
	if len(h.Cumulative) != len(h.Bounds)+1 {
		t.Errorf("cumulative has %d entries for %d bounds", len(h.Cumulative), len(h.Bounds))
	}
	if _, ok := vars.Gauges["dacced_http_inflight"]; !ok {
		t.Error("missing dacced_http_inflight gauge")
	}
	if vars.Histograms["dacced_decode_latency_us"].Count == 0 {
		t.Error("decode latency histogram empty")
	}
}

// TestMetricsRequestDuration checks the Prometheus exposition of the
// middleware histogram: route label present, +Inf bucket equal to
// _count.
func TestMetricsRequestDuration(t *testing.T) {
	f := newServeFixture(t, Config{}, 5_000, 29)
	n := min(50, len(f.captures))
	f.decode(t, "serve", f.captures[:n])
	// An unknown path lands in the "other" route bucket.
	if resp, err := http.Get(f.ts.URL + "/no/such/path"); err == nil {
		resp.Body.Close()
	}

	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`dacced_request_duration_ns_bucket{route="/v1/decode",le="+Inf"}`,
		`dacced_request_duration_ns_bucket{route="other",le="+Inf"}`,
		"dacced_http_inflight",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
