package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dacce/internal/core"
)

// fakeDecode is an httptest handler that runs through the given status
// script (one entry per request, last entry repeating) and answers 200
// entries with a well-formed single-result DecodeResponse.
func fakeDecode(t *testing.T, script []int, hits *int, retryAfter string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t.Helper()
		if r.URL.Path != "/v1/decode" {
			t.Errorf("request hit %s, want /v1/decode", r.URL.Path)
		}
		status := script[min(*hits, len(script)-1)]
		*hits++
		if status != http.StatusOK {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, "tenant at capacity", status)
			return
		}
		var req DecodeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad request body: %v", err)
		}
		resp := DecodeResponse{Tenant: req.Tenant, Results: make([]DecodeResult, len(req.Captures))}
		json.NewEncoder(w).Encode(resp)
	}
}

func testRequest() *DecodeRequest {
	return &DecodeRequest{Tenant: "t", Captures: []*core.Capture{{ID: 1}}}
}

// TestClientRetriesHonorRetryAfter: 429 responses are retried, waiting
// exactly the server's Retry-After seconds, and the call succeeds once
// the server recovers.
func TestClientRetriesHonorRetryAfter(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(fakeDecode(t, []int{429, 429, 200}, &hits, "1"))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL:    srv.URL,
		HTTPClient: srv.Client(),
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	resp, err := c.Decode(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(resp.Results))
	}
	if hits != 3 {
		t.Fatalf("server saw %d requests, want 3", hits)
	}
	if len(slept) != 2 || slept[0] != time.Second || slept[1] != time.Second {
		t.Fatalf("client slept %v, want [1s 1s] from Retry-After", slept)
	}
}

// TestClientRetriesBounded: a server that never recovers fails the call
// after the retry budget instead of looping forever, and the error
// carries the server's message.
func TestClientRetriesBounded(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(fakeDecode(t, []int{429}, &hits, "0"))
	defer srv.Close()

	c := &Client{
		BaseURL:    srv.URL,
		MaxRetries: 2,
		HTTPClient: srv.Client(),
		Sleep:      func(time.Duration) {},
	}
	_, err := c.Decode(testRequest())
	if err == nil {
		t.Fatal("exhausted retries did not fail the call")
	}
	if hits != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 retries)", hits)
	}
	if !strings.Contains(err.Error(), "tenant at capacity") {
		t.Fatalf("error %q does not carry the server message", err)
	}
}

// TestClientNoRetryOnDeterministicError: 4xx/5xx statuses outside the
// transient set fail immediately — retrying a bad request or an unknown
// tenant only repeats the error.
func TestClientNoRetryOnDeterministicError(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(fakeDecode(t, []int{404}, &hits, ""))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, HTTPClient: srv.Client(), Sleep: func(time.Duration) {}}
	if _, err := c.Decode(testRequest()); err == nil {
		t.Fatal("404 did not fail the call")
	}
	if hits != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retries)", hits)
	}
}

// TestClientTimeout: a hung server fails the attempt after Timeout
// instead of blocking the CLI forever.
func TestClientTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release) // LIFO: unblock the handler before srv.Close waits on it

	c := &Client{BaseURL: srv.URL, Timeout: 50 * time.Millisecond, MaxRetries: -1}
	start := time.Now()
	_, err := c.Decode(testRequest())
	if err == nil {
		t.Fatal("hung server did not fail the call")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestClientRetryAfterFallback: a retryable status without a parsable
// Retry-After waits the capped exponential fallback schedule.
func TestClientRetryAfterFallback(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(fakeDecode(t, []int{503, 503, 200}, &hits, ""))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL:    srv.URL,
		HTTPClient: srv.Client(),
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	if _, err := c.Decode(testRequest()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 || slept[0] != 250*time.Millisecond || slept[1] != 500*time.Millisecond {
		t.Fatalf("client slept %v, want the 250ms/500ms backoff fallback", slept)
	}
}
