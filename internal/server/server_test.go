package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/persist"
	"dacce/internal/workload"
)

// serveFixture is a warmed encoder, its snapshot registered on a test
// server, plus the retained samples for decode comparison.
type serveFixture struct {
	d        *core.DACCE
	captures []*core.Capture
	snap     []byte
	hash     string
	srv      *Server
	ts       *httptest.Server
}

func newServeFixture(t *testing.T, cfg Config, totalCalls, sampleEvery int64) *serveFixture {
	t.Helper()
	w, err := workload.Build(workload.Profile{
		Name:          "serve",
		Seed:          0x5E12E,
		ExecFuncs:     64,
		ExecEdges:     150,
		Layers:        8,
		IndirectSites: 3,
		ActualTargets: 3,
		RecSites:      2,
		RecProb:       0.3,
		RecStartProb:  0.05,
		Threads:       2,
		TotalCalls:    totalCalls,
		Phases:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(w.P, core.Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: sampleEvery})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := &serveFixture{d: d}
	for _, s := range rs.Samples {
		f.captures = append(f.captures, s.Capture.(*core.Capture))
	}
	f.snap, err = persist.Marshal(d.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	f.srv = New(cfg)
	f.hash, err = f.srv.Register("serve", f.snap)
	if err != nil {
		t.Fatal(err)
	}
	f.ts = httptest.NewServer(f.srv.Handler())
	t.Cleanup(f.ts.Close)
	return f
}

func (f *serveFixture) decode(t *testing.T, tenant string, caps []*core.Capture) (*http.Response, *DecodeResponse) {
	t.Helper()
	body, err := json.Marshal(DecodeRequest{Tenant: tenant, Captures: caps})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.ts.URL+"/v1/decode", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var dr DecodeResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	return resp, &dr
}

// TestRemoteDecodeMatchesInProcess is the acceptance gate: a dacced
// round trip over ≥10k captured contexts spanning at least two distinct
// epochs decodes every capture to exactly the frames the in-process
// encoder produces.
func TestRemoteDecodeMatchesInProcess(t *testing.T) {
	f := newServeFixture(t, Config{}, 150_000, 13)
	if len(f.captures) < 10_000 {
		t.Fatalf("workload retained %d captures, want ≥ 10000", len(f.captures))
	}
	epochs := map[uint32]bool{}
	for _, c := range f.captures {
		epochs[c.Epoch] = true
	}
	if len(epochs) < 2 {
		t.Fatalf("captures span %d epoch(s), want ≥ 2", len(epochs))
	}

	const batch = 512
	checked := 0
	for lo := 0; lo < len(f.captures); lo += batch {
		hi := min(lo+batch, len(f.captures))
		resp, dr := f.decode(t, "serve", f.captures[lo:hi])
		if dr == nil {
			t.Fatalf("batch %d: HTTP %d", lo/batch, resp.StatusCode)
		}
		if dr.Hash != f.hash {
			t.Fatalf("response hash %s, registered %s", dr.Hash, f.hash)
		}
		if len(dr.Results) != hi-lo {
			t.Fatalf("batch %d: %d results for %d captures", lo/batch, len(dr.Results), hi-lo)
		}
		for i, res := range dr.Results {
			c := f.captures[lo+i]
			want, err := f.d.Decode(c)
			if err != nil {
				t.Fatalf("capture %d: in-process decode: %v", lo+i, err)
			}
			if res.Error != "" {
				t.Fatalf("capture %d (epoch %d): remote error %q", lo+i, c.Epoch, res.Error)
			}
			if len(res.Frames) != len(want) {
				t.Fatalf("capture %d (epoch %d): remote %d frames, local %d", lo+i, c.Epoch, len(res.Frames), len(want))
			}
			for j, fr := range res.Frames {
				if fr.Site != want[j].Site || fr.Fn != want[j].Fn {
					t.Fatalf("capture %d frame %d: remote (s%d,f%d), local (s%d,f%d)",
						lo+i, j, fr.Site, fr.Fn, want[j].Site, want[j].Fn)
				}
			}
			checked++
		}
	}
	if checked < 10_000 {
		t.Fatalf("checked only %d captures", checked)
	}
}

// TestDecodeMemoAndDAG verifies the node-decode plumbing behind
// /v1/decode: repeated batches hit the per-tenant memo instead of
// re-walking the snapshot, results stay identical, and the DAG/memo
// health shows up in /v1/stats and on /metrics and /debug/vars.
func TestDecodeMemoAndDAG(t *testing.T) {
	f := newServeFixture(t, Config{}, 30_000, 29)
	caps := f.captures
	if len(caps) > 512 {
		caps = caps[:512]
	}
	memoable := 0
	for _, c := range caps {
		if memoizable(c) {
			memoable++
		}
	}
	if memoable == 0 {
		t.Fatal("fixture produced no memoizable captures")
	}

	_, first := f.decode(t, "serve", caps)
	_, second := f.decode(t, "serve", caps)
	if first == nil || second == nil {
		t.Fatal("decode batches failed")
	}
	for i := range first.Results {
		if fmt.Sprint(first.Results[i]) != fmt.Sprint(second.Results[i]) {
			t.Fatalf("capture %d decoded differently on the memoized pass", i)
		}
	}

	tn := f.srv.resolve("serve")
	hits, misses := tn.memoHits.Load(), tn.memoMisses.Load()
	// The second pass resolves every memoizable capture from the memo;
	// the first pass may already have hit on duplicate captures.
	if hits < int64(memoable) {
		t.Fatalf("memo hits = %d, want ≥ %d (memoizable per batch)", hits, memoable)
	}
	if misses == 0 || misses > int64(memoable) {
		t.Fatalf("memo misses = %d, want in [1, %d]", misses, memoable)
	}
	if n := tn.dag.Len(); n == 0 {
		t.Fatal("tenant DAG is empty after decodes")
	}

	// Stats surface the DAG and memo fields.
	resp, err := http.Get(f.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Tenants) != 1 {
		t.Fatalf("stats lists %d tenants", len(st.Tenants))
	}
	ts := st.Tenants[0]
	if ts.DAGNodes == 0 || ts.DAGBytesEst == 0 {
		t.Fatalf("stats missing DAG health: %+v", ts)
	}
	if ts.MemoHits != hits || ts.MemoMisses != misses {
		t.Fatalf("stats memo hits/misses %d/%d, tenant counters %d/%d",
			ts.MemoHits, ts.MemoMisses, hits, misses)
	}

	// The scrape-time gauges appear on /metrics and /debug/vars.
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(f.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, metric := range []string{"dacced_dag_nodes", "dacced_memo_hits"} {
			if !strings.Contains(string(body), metric) {
				t.Fatalf("%s missing %s:\n%s", path, metric, body)
			}
		}
	}
}

// TestBackpressure verifies the bounded queue: with one slot held and
// the one queue position taken, the next request is rejected with 429
// and a Retry-After header, and the queued request completes once the
// slot frees.
func TestBackpressure(t *testing.T) {
	f := newServeFixture(t, Config{MaxConcurrent: 1, QueueDepth: 1}, 30_000, 29)
	tn := f.srv.resolve("serve")
	if tn == nil {
		t.Fatal("tenant not registered")
	}
	// Occupy the only slot from outside, as an in-flight request would.
	tn.slots <- struct{}{}

	queued := make(chan *http.Response, 1)
	go func() {
		resp, _ := f.decode(t, "serve", f.captures[:1])
		queued <- resp
	}()
	deadline := time.Now().Add(5 * time.Second)
	for tn.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := f.decode(t, "serve", f.captures[:1])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full request got HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}

	<-tn.slots // free the slot; the queued request proceeds
	if resp := <-queued; resp.StatusCode != http.StatusOK {
		t.Fatalf("queued request got HTTP %d after slot freed, want 200", resp.StatusCode)
	}
	if tn.rejected.Load() != 1 {
		t.Fatalf("tenant counted %d rejections, want 1", tn.rejected.Load())
	}
}

// TestConcurrentDecodes hammers one tenant from many goroutines; every
// response must be a well-formed 200 or 429, and the decoded results
// must match the in-process decode (run with -race in CI).
func TestConcurrentDecodes(t *testing.T) {
	f := newServeFixture(t, Config{MaxConcurrent: 2, QueueDepth: 4}, 30_000, 29)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			caps := f.captures[g*16%len(f.captures):]
			if len(caps) > 64 {
				caps = caps[:64]
			}
			body, _ := json.Marshal(DecodeRequest{Tenant: "serve", Captures: caps})
			resp, err := http.Post(f.ts.URL+"/v1/decode", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				errs <- fmt.Errorf("goroutine %d: HTTP %d", g, resp.StatusCode)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	f := newServeFixture(t, Config{}, 30_000, 29)

	// Download must return the registered bytes verbatim.
	resp, err := http.Get(f.ts.URL + "/v1/snapshot?tenant=serve")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: HTTP %d, err %v", resp.StatusCode, err)
	}
	if !bytes.Equal(data, f.snap) {
		t.Fatal("downloaded snapshot differs from registered bytes")
	}
	if got := resp.Header.Get("X-Dacce-State-Hash"); got != f.hash {
		t.Fatalf("snapshot hash header %q, want %q", got, f.hash)
	}

	// Upload under a new name; the tenant must appear and serve decodes.
	resp, err = http.Post(f.ts.URL+"/v1/snapshot?tenant=other", "application/octet-stream", bytes.NewReader(f.snap))
	if err != nil {
		t.Fatal(err)
	}
	var info SnapshotInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Hash != f.hash || info.Epochs < 2 {
		t.Fatalf("POST snapshot: HTTP %d, info %+v", resp.StatusCode, info)
	}
	if r2, dr := f.decode(t, "other@"+f.hash, f.captures[:8]); dr == nil {
		t.Fatalf("decode against uploaded tenant: HTTP %d", r2.StatusCode)
	}

	// Corrupt upload must be rejected.
	bad := bytes.Clone(f.snap)
	bad[len(bad)/2] ^= 0xFF
	resp, err = http.Post(f.ts.URL+"/v1/snapshot?tenant=corrupt", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt snapshot upload: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestStatsHealthzMetrics(t *testing.T) {
	f := newServeFixture(t, Config{}, 30_000, 29)
	if _, dr := f.decode(t, "serve", f.captures[:32]); dr == nil {
		t.Fatal("warmup decode failed")
	}

	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status  string `json:"status"`
		Tenants int    `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || hz.Tenants != 1 {
		t.Fatalf("healthz: %+v", hz)
	}

	resp, err = http.Get(f.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Tenants) != 1 {
		t.Fatalf("stats lists %d tenants, want 1", len(st.Tenants))
	}
	ts := st.Tenants[0]
	if ts.Name != "serve" || ts.Hash != f.hash || ts.Decoded != 32 || ts.Requests != 1 || ts.Epochs < 2 {
		t.Fatalf("tenant stats: %+v", ts)
	}
	if st.Build.Version == "" || st.Build.GoVersion == "" {
		t.Fatalf("stats carries no build info: %+v", st.Build)
	}

	resp, err = http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dacced_requests_total", "dacced_decode_latency_us", "dacced_contexts_decoded_total", "dacced_queue_depth"} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("/metrics output lacks %s", want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	f := newServeFixture(t, Config{}, 30_000, 29)

	if resp, _ := f.decode(t, "nosuch", f.captures[:1]); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: HTTP %d, want 404", resp.StatusCode)
	}

	resp, err := http.Post(f.ts.URL+"/v1/decode", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(f.ts.URL + "/v1/decode")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET decode: HTTP %d, want 405", resp.StatusCode)
	}

	// A capture with an out-of-range function must produce a per-capture
	// error, not a failed request.
	badCap := &core.Capture{Fn: 1 << 20, Root: 0}
	if _, dr := f.decode(t, "serve", []*core.Capture{badCap, f.captures[0]}); dr == nil {
		t.Fatal("mixed batch failed outright")
	} else if dr.Results[0].Error == "" || dr.Results[1].Error != "" {
		t.Fatalf("mixed batch results: %+v", dr.Results)
	}
}
