package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x_total") != c {
		t.Error("same name should return the same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	g.SetUint(1 << 63) // saturates
	if g.Value() != 1<<63-1 {
		t.Errorf("saturated gauge = %d", g.Value())
	}
	if r.Counter("x_total", "k", "a") == r.Counter("x_total", "k", "b") {
		t.Error("different labels must be different instances")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{1, 4, 16})
	for _, v := range []int64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 108 {
		t.Errorf("count=%d sum=%d, want 5/108", h.Count(), h.Sum())
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`,  // 0, 1
		`h_bucket{le="4"} 3`,  // + 2
		`h_bucket{le="16"} 4`, // + 5
		`h_bucket{le="+Inf"} 5`,
		"h_sum 108",
		"h_count 5",
		"# TYPE h histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []int64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "reason", "y").Inc()
	r.Counter("b_total", "reason", "x").Add(2)
	r.Counter("a_total").Inc()
	r.Gauge("z_gauge").Set(3)
	r.Help("a_total", "the a counter")
	var b1, b2 bytes.Buffer
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("exposition is not deterministic")
	}
	out := b1.String()
	if !strings.Contains(out, "# HELP a_total the a counter") {
		t.Errorf("missing HELP line:\n%s", out)
	}
	ix := strings.Index(out, `b_total{reason="x"} 2`)
	iy := strings.Index(out, `b_total{reason="y"} 1`)
	ia := strings.Index(out, "a_total 1")
	if ix < 0 || iy < 0 || ia < 0 || !(ia < ix && ix < iy) {
		t.Errorf("families/labels not sorted:\n%s", out)
	}
	// One TYPE header per family even with several label sets.
	if strings.Count(out, "# TYPE b_total counter") != 1 {
		t.Errorf("duplicated TYPE header:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(-1)
	r.Histogram("h", []int64{2}).Observe(1)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]int64         `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Counters["c_total"] != 3 || doc.Gauges["g"] != -1 {
		t.Errorf("unexpected JSON values: %+v", doc)
	}
	h := doc.Histograms["h"]
	if h.Count != 1 || len(h.Buckets) != 2 || h.Buckets[0] != 1 {
		t.Errorf("unexpected histogram JSON: %+v", h)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total").Inc()
				r.Histogram("h", []int64{8, 64}).Observe(int64(i))
				r.Gauge("g").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 4000 {
		t.Errorf("concurrent counter = %d, want 4000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 4000 {
		t.Errorf("concurrent histogram count = %d, want 4000", got)
	}
}

func TestMetricsSink(t *testing.T) {
	m := NewMetrics()
	m.Emit(Event{Kind: EvEncoderInit, Value: 1 << 40, Aux: 1})
	for i := 0; i < 3; i++ {
		m.Emit(Event{Kind: EvEdgeDiscovered, Site: 1, Fn: 2})
	}
	m.Emit(Event{Kind: EvReencodeEnd, Reason: ReasonNewEdges, Epoch: 1, Value: 9000, Aux: 77})
	m.Emit(Event{Kind: EvReencodeEnd, Reason: ReasonCCOps, Epoch: 2, Value: 100, Aux: 80})
	m.Emit(Event{Kind: EvCCStackPush, Value: 4})
	m.Emit(Event{Kind: EvCCStackPop, Value: 3})
	m.Emit(Event{Kind: EvHandlerTrap, Site: 5})
	m.Emit(Event{Kind: EvHandlerTrap, Site: 5})
	m.Emit(Event{Kind: EvHandlerTrap, Site: 6})
	m.Emit(Event{Kind: EvDecodeRequest, Err: true})
	m.Emit(Event{Kind: EvDecodeRequest, Value: 12})
	m.Emit(Event{Kind: EvIDOverflow, Value: 1 << 62, Aux: 1 << 40})

	var b bytes.Buffer
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"dacce_edges_discovered_total 3",
		`dacce_reencode_total{reason="new_edges"} 1`,
		`dacce_reencode_total{reason="cc_ops"} 1`,
		`dacce_reencode_total{reason="forced"} 0`,
		"dacce_ccstack_push_total 1",
		"dacce_ccstack_pop_total 1",
		"dacce_handler_traps_total 3",
		`dacce_handler_hits{site="s5"} 2`,
		"dacce_handler_sites 2",
		`dacce_decode_requests_total{outcome="error"} 1`,
		`dacce_decode_requests_total{outcome="ok"} 1`,
		"dacce_id_overflow_total 1",
		"dacce_max_id 80",
		"dacce_epoch 2",
		"dacce_id_budget 1099511627776",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full output:\n%s", out)
	}
	var jb bytes.Buffer
	if err := m.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(jb.Bytes()) {
		t.Error("WriteJSON produced invalid JSON")
	}
}
