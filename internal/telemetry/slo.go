package telemetry

import (
	"sync"
	"time"

	"dacce/internal/prog"
)

// SLORule is one watched invariant: Source is sampled at every check
// and a reading above Max is a breach. Sources are pull-based so rules
// can watch quantiles (recomputed from live bucket counts), backlogs or
// any other instantaneous reading without coupling the watchdog to the
// producer.
type SLORule struct {
	// Name labels the rule in breach reports and metrics.
	Name string
	// Source returns the current reading.
	Source func() int64
	// Max is the largest acceptable reading.
	Max int64
}

// QuantileSource adapts a histogram quantile into an SLORule source.
func QuantileSource(h *Histogram, q float64) func() int64 {
	return func() int64 { return h.Quantile(q) }
}

// GaugeSource adapts a gauge into an SLORule source.
func GaugeSource(g *Gauge) func() int64 {
	return func() int64 { return g.Value() }
}

// Breach reports one rule found over threshold by a check.
type Breach struct {
	Rule  string `json:"rule"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// Watchdog evaluates SLO rules against live readings. Every breached
// rule emits an EvSLOBreach event into the sink — wiring a
// FlightRecorder in gives the auto-dump: the ring holding the events
// that led up to the breach is written out the moment the threshold is
// crossed. A per-rule cooldown keeps a persistently-breached rule from
// flooding the stream with one event (and one dump) per check.
type Watchdog struct {
	mu       sync.Mutex
	rules    []SLORule
	sink     Sink
	cooldown time.Duration
	lastFire []time.Time
	breaches []int64
}

// DefaultSLOCooldown is the default minimum spacing between two breach
// emissions of the same rule.
const DefaultSLOCooldown = 10 * time.Second

// NewWatchdog returns a watchdog emitting breaches into sink (which may
// be nil: Check still reports breaches to its caller).
func NewWatchdog(sink Sink) *Watchdog {
	return &Watchdog{sink: sink, cooldown: DefaultSLOCooldown}
}

// SetCooldown overrides the per-rule emission cooldown; 0 disables it.
func (w *Watchdog) SetCooldown(d time.Duration) {
	w.mu.Lock()
	w.cooldown = d
	w.mu.Unlock()
}

// Add registers a rule. Rules with a nil source or a non-positive
// threshold are ignored, so callers can pass optional thresholds
// straight from flag values.
func (w *Watchdog) Add(r SLORule) {
	if r.Source == nil || r.Max <= 0 {
		return
	}
	w.mu.Lock()
	w.rules = append(w.rules, r)
	w.lastFire = append(w.lastFire, time.Time{})
	w.breaches = append(w.breaches, 0)
	w.mu.Unlock()
}

// NumRules returns how many rules are registered.
func (w *Watchdog) NumRules() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.rules)
}

// Check samples every rule once and returns the rules found over
// threshold. Each breach past its cooldown is emitted as an EvSLOBreach
// into the sink.
func (w *Watchdog) Check() []Breach {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []Breach
	now := time.Now()
	for i := range w.rules {
		r := &w.rules[i]
		v := r.Source()
		if v <= r.Max {
			continue
		}
		out = append(out, Breach{Rule: r.Name, Value: v, Max: r.Max})
		w.breaches[i]++
		if w.sink == nil || (w.cooldown > 0 && now.Sub(w.lastFire[i]) < w.cooldown) {
			continue
		}
		w.lastFire[i] = now
		w.sink.Emit(Event{
			Kind: EvSLOBreach, Thread: -1,
			Site: prog.NoSite, Fn: prog.NoFunc,
			Err: true, Value: uint64(v), Aux: uint64(r.Max),
		})
	}
	return out
}

// Breaches returns the total breach count per rule name (including
// breaches suppressed by the cooldown).
func (w *Watchdog) Breaches() map[string]int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]int64, len(w.rules))
	for i := range w.rules {
		out[w.rules[i].Name] += w.breaches[i]
	}
	return out
}

// Watch runs Check every interval on a background goroutine until the
// returned stop function is called (idempotent).
func (w *Watchdog) Watch(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.Check()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
