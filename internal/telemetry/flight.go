package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultFlightCapacity is the default ring size of a FlightRecorder.
const DefaultFlightCapacity = 4096

// flightRec is one recorded event with its arrival offset.
type flightRec struct {
	At time.Duration
	Ev Event
}

// FlightRecorder is a Sink keeping the last N events in a ring buffer —
// a crash-dump view of what the encoder was doing. When it sees an
// EvIDOverflow, an EvDivergence, an EvSLOBreach, or a failed
// EvDecodeRequest it automatically dumps the ring to its output writer,
// giving the events leading up to the failure without recording the
// whole run.
type FlightRecorder struct {
	mu    sync.Mutex
	start time.Time
	ring  []flightRec
	next  int
	n     int
	out   io.Writer
	dumps int
}

// NewFlightRecorder returns a recorder keeping the last n events
// (DefaultFlightCapacity if n <= 0). out receives automatic dumps on
// overflow or decode failure; nil disables auto-dumping.
func NewFlightRecorder(n int, out io.Writer) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightCapacity
	}
	return &FlightRecorder{start: time.Now(), ring: make([]flightRec, n), out: out}
}

// Emit implements Sink.
func (f *FlightRecorder) Emit(ev Event) {
	f.mu.Lock()
	f.ring[f.next] = flightRec{At: time.Since(f.start), Ev: ev}
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	trigger := ev.Kind == EvIDOverflow || ev.Kind == EvDivergence ||
		ev.Kind == EvSLOBreach || (ev.Kind == EvDecodeRequest && ev.Err)
	out := f.out
	f.mu.Unlock()
	if trigger && out != nil {
		f.mu.Lock()
		f.dumps++
		f.mu.Unlock()
		_ = f.Dump(out)
	}
}

// Dumps returns how many automatic dumps have fired.
func (f *FlightRecorder) Dumps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// Len returns how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// flightLine is the JSON shape of one dumped event.
type flightLine struct {
	AtMicros int64  `json:"at_us"`
	Kind     string `json:"kind"`
	Thread   int32  `json:"thread"`
	Epoch    uint32 `json:"epoch"`
	Site     int    `json:"site"` // -1 when no site is involved
	Fn       int    `json:"fn"`   // -1 when no function is involved
	Reason   string `json:"reason,omitempty"`
	Err      bool   `json:"err,omitempty"`
	Value    uint64 `json:"value,omitempty"`
	Aux      uint64 `json:"aux,omitempty"`
	DurNS    int64  `json:"dur_ns,omitempty"`
}

// Dump writes the ring's events, oldest first, as JSON lines framed by
// a header and trailer comment line.
func (f *FlightRecorder) Dump(w io.Writer) error {
	f.mu.Lock()
	recs := make([]flightRec, 0, f.n)
	if f.n == len(f.ring) {
		recs = append(recs, f.ring[f.next:]...)
		recs = append(recs, f.ring[:f.next]...)
	} else {
		recs = append(recs, f.ring[:f.n]...)
	}
	f.mu.Unlock()

	if _, err := fmt.Fprintf(w, "--- flight recorder: last %d events ---\n", len(recs)); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for _, r := range recs {
		line := flightLine{
			AtMicros: r.At.Microseconds(),
			Kind:     r.Ev.Kind.String(),
			Thread:   r.Ev.Thread,
			Epoch:    r.Ev.Epoch,
			Site:     int(r.Ev.Site),
			Fn:       int(r.Ev.Fn),
			Err:      r.Ev.Err,
			Value:    r.Ev.Value,
			Aux:      r.Ev.Aux,
			DurNS:    r.Ev.DurNanos,
		}
		if r.Ev.Reason != ReasonNone {
			line.Reason = r.Ev.Reason.String()
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "--- end flight recorder ---")
	return err
}
