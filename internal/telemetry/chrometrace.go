package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto). Ph is the phase: "B"/"E" bracket a
// duration span, "i" is an instant, "C" a counter series.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"` // microseconds since trace start
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// DefaultTraceCapacity bounds retained trace events.
const DefaultTraceCapacity = 1 << 20

// ccDepthStride is how often ccStack pushes contribute a counter point:
// one "C" event per stride keeps the depth series visible without
// recording the full flood.
const ccDepthStride = 1024

// ChromeTrace is a Sink that renders the event stream as a Chrome
// trace-event file: every re-encoding epoch becomes one span (named by
// its trigger reason), discrete events become instants, and the ccStack
// depth becomes a sampled counter track. Load the output in
// chrome://tracing or https://ui.perfetto.dev.
type ChromeTrace struct {
	mu      sync.Mutex
	start   time.Time
	events  []chromeEvent
	cap     int
	dropped int64
	pushes  int64
}

// NewChromeTrace returns a trace sink retaining up to
// DefaultTraceCapacity events.
func NewChromeTrace() *ChromeTrace {
	return &ChromeTrace{start: time.Now(), cap: DefaultTraceCapacity}
}

// SetCapacity overrides the retained-event bound (before emitting).
func (c *ChromeTrace) SetCapacity(n int) { c.cap = n }

func (c *ChromeTrace) add(ev chromeEvent) {
	if len(c.events) >= c.cap {
		c.dropped++
		return
	}
	ev.Ts = time.Since(c.start).Microseconds()
	ev.Cat = "dacce"
	c.events = append(c.events, ev)
}

// Emit implements Sink.
func (c *ChromeTrace) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tid := int(ev.Thread)
	switch ev.Kind {
	case EvReencodeStart:
		c.add(chromeEvent{
			Name: "reencode", Ph: "B", Tid: tid,
			Args: map[string]any{"reason": ev.Reason.String(), "from_epoch": ev.Epoch, "edges": ev.Value},
		})
	case EvReencodeEnd:
		c.add(chromeEvent{
			Name: "reencode", Ph: "E", Tid: tid,
			Args: map[string]any{"epoch": ev.Epoch, "cost_cycles": ev.Value, "max_id": ev.Aux},
		})
	case EvCCStackPush:
		c.pushes++
		if c.pushes%ccDepthStride == 0 {
			c.add(chromeEvent{
				Name: "ccstack depth", Ph: "C", Tid: tid,
				Args: map[string]any{"depth": ev.Value},
			})
		}
	case EvCCStackPop, EvHandlerTrap, EvSample:
		// Too frequent for instants; traps and samples show up in the
		// metrics sink instead.
	default:
		args := map[string]any{"epoch": ev.Epoch}
		if ev.Site >= 0 {
			args["site"] = fmt.Sprintf("s%d", ev.Site)
		}
		if ev.Fn >= 0 {
			args["fn"] = fmt.Sprintf("f%d", ev.Fn)
		}
		if ev.Value != 0 {
			args["value"] = ev.Value
		}
		if ev.Err {
			args["error"] = true
		}
		c.add(chromeEvent{Name: ev.Kind.String(), Ph: "i", Tid: tid, Scope: "t", Args: args})
	}
}

// Export writes the accumulated trace as a JSON object with a
// traceEvents array — the format chrome://tracing loads directly.
func (c *ChromeTrace) Export(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Close any span left open by an in-flight pass so the file always
	// balances B/E pairs.
	depth := map[int]int{}
	for _, ev := range c.events {
		switch ev.Ph {
		case "B":
			depth[ev.Tid]++
		case "E":
			depth[ev.Tid]--
		}
	}
	events := c.events
	for tid, d := range depth {
		for ; d > 0; d-- {
			events = append(events, chromeEvent{
				Name: "reencode", Cat: "dacce", Ph: "E", Tid: tid,
				Ts: time.Since(c.start).Microseconds(),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":      events,
		"displayTimeUnit":  "ms",
		"dacceDroppedEvts": c.dropped,
	})
}

// Len returns the number of retained trace events.
func (c *ChromeTrace) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}
