package telemetry

import (
	"strings"
	"sync"
	"testing"

	"dacce/internal/prog"
)

func TestKindAndReasonStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	for r := Reason(0); r < NumReasons; r++ {
		s := r.String()
		if s == "" || strings.HasPrefix(s, "reason(") {
			t.Errorf("reason %d has no name", r)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range kind = %q", got)
	}
	if got := Reason(200).String(); got != "reason(200)" {
		t.Errorf("out-of-range reason = %q", got)
	}
}

func TestCountingSink(t *testing.T) {
	var c CountingSink
	c.Emit(Event{Kind: EvEdgeDiscovered})
	c.Emit(Event{Kind: EvEdgeDiscovered})
	c.Emit(Event{Kind: EvReencodeEnd, Reason: ReasonNewEdges})
	if got := c.Count(EvEdgeDiscovered); got != 2 {
		t.Errorf("Count(EvEdgeDiscovered) = %d, want 2", got)
	}
	if got := c.Total(); got != 3 {
		t.Errorf("Total() = %d, want 3", got)
	}
}

func TestCountingSinkConcurrent(t *testing.T) {
	var c CountingSink
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Emit(Event{Kind: EvCCStackPush})
			}
		}()
	}
	wg.Wait()
	if got := c.Count(EvCCStackPush); got != workers*per {
		t.Errorf("concurrent count = %d, want %d", got, workers*per)
	}
}

func TestMulti(t *testing.T) {
	var a, b CountingSink
	s := Multi(nil, &a, nil, &b)
	s.Emit(Event{Kind: EvTailFixup})
	if a.Total() != 1 || b.Total() != 1 {
		t.Errorf("multi sink did not fan out: a=%d b=%d", a.Total(), b.Total())
	}
	if Multi() != nil || Multi(nil) != nil {
		t.Error("Multi of no live sinks should be nil")
	}
	if Multi(&a) != Sink(&a) {
		t.Error("Multi of one sink should collapse to it")
	}
}

func TestFilter(t *testing.T) {
	var c CountingSink
	f := Filter(&c, EvReencodeStart, EvReencodeEnd)
	f.Emit(Event{Kind: EvCCStackPush})
	f.Emit(Event{Kind: EvReencodeStart})
	f.Emit(Event{Kind: EvReencodeEnd})
	if c.Total() != 2 {
		t.Errorf("filtered total = %d, want 2", c.Total())
	}
	if c.Count(EvCCStackPush) != 0 {
		t.Error("filter leaked an excluded kind")
	}
	if Filter(nil, EvSample) != nil {
		t.Error("Filter(nil) should be nil")
	}
}

func TestEventString(t *testing.T) {
	ev := Event{
		Kind: EvEdgeDiscovered, Thread: 3, Epoch: 2,
		Site: prog.SiteID(7), Fn: prog.FuncID(9), Value: 12,
	}
	s := ev.String()
	for _, want := range []string{"edge_discovered", "t3", "s7", "f9", "v=12"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q, missing %q", s, want)
		}
	}
	bare := Event{Kind: EvReencodeEnd, Thread: -1, Site: prog.NoSite, Fn: prog.NoFunc, Reason: ReasonForced}
	if s := bare.String(); !strings.Contains(s, "forced") || strings.Contains(s, " s-1") {
		t.Errorf("bare Event.String() = %q", s)
	}
}
