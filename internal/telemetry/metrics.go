package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; obtain shared instances from a Registry.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetUint saturates v into the int64 range and sets the gauge — id
// budgets are uint64 and may exceed math.MaxInt64.
func (g *Gauge) SetUint(v uint64) {
	if v > 1<<63-1 {
		v = 1<<63 - 1
	}
	g.v.Store(int64(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a bounded cumulative histogram: observations are counted
// into len(bounds)+1 buckets where bucket i holds observations ≤
// bounds[i] (the last bucket is +Inf). Bounds are fixed at creation, so
// observation is lock-free and allocation-free.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; cumulative at exposition
	sum     atomic.Int64
	count   atomic.Int64
	max     atomic.Int64 // exact largest observation (quantile tail anchor)
}

// NewHistogram returns a standalone histogram with the given bucket
// bounds (copied, sorted) — for always-on runtime timers that exist
// independently of any Registry.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation, or 0 before any observation.
func (h *Histogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	if m := h.max.Load(); m != math.MinInt64 {
		return m
	}
	return 0
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts:
// the crossing bucket is found on the cumulative distribution and the
// value is linearly interpolated inside it. Estimates are capped at the
// exact tracked maximum — interpolation inside a sparsely filled bucket
// would otherwise report a value no observation ever reached — so
// Quantile(1) is exact. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo, hi := h.bucketRange(i)
			frac := (rank - float64(cum)) / float64(n)
			v := int64(float64(lo) + frac*float64(hi-lo))
			if m := h.Max(); v > m {
				v = m
			}
			return v
		}
		cum += n
	}
	return h.Max()
}

// bucketRange returns the interpolation interval of bucket i, clamping
// the open-ended ends to observed reality: the first bucket starts at 0
// (or its bound for negative-free data) and the +Inf bucket ends at the
// tracked maximum.
func (h *Histogram) bucketRange(i int) (lo, hi int64) {
	if i > 0 {
		lo = h.bounds[i-1]
	}
	if i < len(h.bounds) {
		hi = h.bounds[i]
	} else {
		hi = h.Max()
		if hi < lo {
			hi = lo
		}
	}
	return lo, hi
}

// HistSnapshot is a point-in-time quantile summary of a histogram.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// Snapshot estimates p50/p90/p99 from the bucket counts and reports the
// exact maximum. The quantiles are interpolated within the crossing
// bucket, so their error is bounded by the bucket width.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// ExpBuckets returns bounds start, start*factor, ... (n values), the
// usual shape for depth and cost histograms.
func ExpBuckets(start, factor int64, n int) []int64 {
	out := make([]int64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// DurationBuckets returns the standard log-spaced nanosecond bounds for
// latency histograms: 256ns … ~2.1s, doubling. Wide enough to hold an
// encoded-call-scale event at the bottom and a pathological
// stop-the-world pause at the top.
func DurationBuckets() []int64 { return ExpBuckets(1<<8, 2, 24) }

// metricKey identifies one metric instance: a family name plus an
// already-rendered label suffix (`{k="v",...}` or empty).
type metricKey struct {
	name   string
	labels string
}

func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", labels[i], labels[i+1]))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// Registry holds named metrics and renders them in Prometheus text or
// JSON form. Metric handles are resolved once (under a lock) and then
// updated lock-free; exposition walks a sorted snapshot.
type Registry struct {
	mu       sync.Mutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*Histogram),
		help:     make(map[string]string),
	}
}

// Help sets the HELP string of a metric family.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Counter returns the counter for name and the optional key/value label
// pairs, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := metricKey{name, renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := metricKey{name, renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for name and labels, creating it with
// the given bucket bounds on first use (bounds are ignored afterwards).
func (r *Registry) Histogram(name string, bounds []int64, labels ...string) *Histogram {
	k := metricKey{name, renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// sortedKeys returns the map keys ordered by (name, labels).
func sortedKeys[V any](m map[metricKey]V) []metricKey {
	out := make([]metricKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	seen := map[string]bool{}
	header := func(name, typ string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if h := r.help[name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
	}
	for _, k := range sortedKeys(r.counters) {
		header(k.name, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", k.name, k.labels, r.counters[k].Value())
	}
	for _, k := range sortedKeys(r.gauges) {
		header(k.name, "gauge")
		fmt.Fprintf(&b, "%s%s %d\n", k.name, k.labels, r.gauges[k].Value())
	}
	for _, k := range sortedKeys(r.hists) {
		header(k.name, "histogram")
		h := r.hists[k]
		inner := strings.TrimSuffix(strings.TrimPrefix(k.labels, "{"), "}")
		le := func(bound string) string {
			if inner == "" {
				return fmt.Sprintf(`{le="%s"}`, bound)
			}
			return fmt.Sprintf(`{%s,le="%s"}`, inner, bound)
		}
		// _count is emitted from the same cumulative walk as the +Inf
		// bucket: promtext requires them equal, and reading the separate
		// count atomic could transiently disagree under concurrent
		// observation.
		var cum int64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", k.name, le(fmt.Sprint(bound)), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(&b, "%s_bucket%s %d\n", k.name, le("+Inf"), cum)
		fmt.Fprintf(&b, "%s_sum%s %d\n", k.name, k.labels, h.Sum())
		fmt.Fprintf(&b, "%s_count%s %d\n", k.name, k.labels, cum)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonHistogram is the JSON shape of one histogram: raw buckets for
// re-aggregation plus the quantile snapshot for direct reading.
type jsonHistogram struct {
	Bounds     []int64 `json:"bounds"`
	Buckets    []int64 `json:"buckets"`    // non-cumulative; len(bounds)+1
	Cumulative []int64 `json:"cumulative"` // Prometheus-style running totals
	Sum        int64   `json:"sum"`
	Count      int64   `json:"count"`
	P50        int64   `json:"p50"`
	P90        int64   `json:"p90"`
	P99        int64   `json:"p99"`
	Max        int64   `json:"max"`
}

// WriteJSON renders the registry as a single JSON object with
// "counters", "gauges" and "histograms" sections keyed by the metric's
// full name (including labels).
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := map[string]int64{}
	for k, c := range r.counters {
		counters[k.name+k.labels] = c.Value()
	}
	gauges := map[string]int64{}
	for k, g := range r.gauges {
		gauges[k.name+k.labels] = g.Value()
	}
	hists := map[string]jsonHistogram{}
	for k, h := range r.hists {
		snap := h.Snapshot()
		jh := jsonHistogram{
			Bounds: append([]int64(nil), h.bounds...),
			Sum:    snap.Sum, Count: snap.Count,
			P50: snap.P50, P90: snap.P90, P99: snap.P99, Max: snap.Max,
		}
		var cum int64
		for i := range h.buckets {
			n := h.buckets[i].Load()
			cum += n
			jh.Buckets = append(jh.Buckets, n)
			jh.Cumulative = append(jh.Cumulative, cum)
		}
		hists[k.name+k.labels] = jh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	})
}
