package telemetry

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"dacce/internal/prog"
)

// TestHistogramQuantiles checks the snapshot estimator: quantiles come
// from cumulative bucket interpolation, the max is exact, and the
// ordering p50 ≤ p90 ≤ p99 ≤ max always holds.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	// 90 values in [0,10), 9 in [10,100), 1 at 500.
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(500)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 500 {
		t.Errorf("max = %d, want exact 500", s.Max)
	}
	if s.P50 <= 0 || s.P50 > 10 {
		t.Errorf("p50 = %d, want in (0,10] (all mass in first bucket)", s.P50)
	}
	if s.P90 > 100 {
		t.Errorf("p90 = %d, want ≤ 100", s.P90)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("quantiles not ordered: %+v", s)
	}
	if q := h.Quantile(1); q != 500 {
		t.Errorf("Quantile(1) = %d, want exact max 500", q)
	}
}

// TestHistogramQuantileCappedAtMax: interpolation inside a sparsely
// filled wide bucket must never report a value larger than any
// observation.
func TestHistogramQuantileCappedAtMax(t *testing.T) {
	h := NewHistogram([]int64{1 << 20, 1 << 21, 1 << 22})
	// One observation near the bottom of the [2^21, 2^22) bucket.
	h.Observe(1<<21 + 7)
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 1<<21+7 {
			t.Errorf("Quantile(%v) = %d, want the single observation", q, got)
		}
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	s := h.Snapshot()
	if s != (HistSnapshot{}) {
		t.Errorf("empty snapshot = %+v, want zero", s)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 || h.Max() != (3*time.Millisecond).Nanoseconds() {
		t.Errorf("count=%d max=%d", h.Count(), h.Max())
	}
}

// TestPrometheusHistogramConformance is the promtext gate: buckets are
// cumulative and monotone, the +Inf bucket is present and equals
// _count, and each family has exactly one TYPE line.
func TestPrometheusHistogramConformance(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []int64{100, 1000}, "route", "a")
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	h2 := r.Histogram("lat_ns", []int64{100, 1000}, "route", "b")
	h2.Observe(70)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if n := strings.Count(text, "# TYPE lat_ns histogram"); n != 1 {
		t.Errorf("TYPE line appears %d times:\n%s", n, text)
	}

	// Per series: collect bucket values in order, check monotone
	// cumulative, +Inf present, _count == +Inf.
	type series struct {
		buckets []int64
		inf     int64
		hasInf  bool
		count   int64
	}
	byRoute := map[string]*series{"a": {}, "b": {}}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "lat_ns") {
			continue
		}
		var route string
		for r := range byRoute {
			if strings.Contains(line, fmt.Sprintf(`route="%s"`, r)) {
				route = r
			}
		}
		if route == "" {
			t.Fatalf("series without route label: %q", line)
		}
		s := byRoute[route]
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad sample line %q", line)
		}
		switch {
		case strings.Contains(line, `le="+Inf"`):
			s.inf, s.hasInf = v, true
		case strings.Contains(line, "_bucket"):
			s.buckets = append(s.buckets, v)
		case strings.Contains(line, "_count"):
			s.count = v
		}
	}
	for route, s := range byRoute {
		if !s.hasInf {
			t.Fatalf("route %s: no +Inf bucket", route)
		}
		prev := int64(0)
		for i, v := range s.buckets {
			if v < prev {
				t.Errorf("route %s: bucket %d not cumulative: %v", route, i, s.buckets)
			}
			prev = v
		}
		if s.inf < prev {
			t.Errorf("route %s: +Inf %d < last bucket %d", route, s.inf, prev)
		}
		if s.count != s.inf {
			t.Errorf("route %s: _count %d != +Inf bucket %d", route, s.count, s.inf)
		}
	}
	if byRoute["a"].inf != 3 || byRoute["b"].inf != 1 {
		t.Errorf("totals: a=%d b=%d", byRoute["a"].inf, byRoute["b"].inf)
	}
}

// TestSLOWatchdog: rules fire only above their threshold, honor the
// cooldown, and emit EvSLOBreach with the observed value and limit.
func TestSLOWatchdog(t *testing.T) {
	var sink CountingSink
	w := NewWatchdog(&sink)
	pause := NewHistogram(DurationBuckets())
	var backlog int64
	w.Add(SLORule{Name: "pause_p99_ns", Source: QuantileSource(pause, 0.99), Max: 1000})
	w.Add(SLORule{Name: "trap_backlog", Source: func() int64 { return backlog }, Max: 10})
	// Disabled rules are dropped (flag value 0 / nil source).
	w.Add(SLORule{Name: "off", Source: func() int64 { return 1 }, Max: 0})
	w.Add(SLORule{Name: "nil", Max: 5})
	if got := w.NumRules(); got != 2 {
		t.Fatalf("NumRules = %d, want 2", got)
	}

	if br := w.Check(); len(br) != 0 {
		t.Fatalf("empty state breached: %+v", br)
	}
	pause.Observe(50_000) // p99 way above 1000ns
	backlog = 3           // under limit
	br := w.Check()
	if len(br) != 1 || br[0].Rule != "pause_p99_ns" {
		t.Fatalf("breaches = %+v, want pause only", br)
	}
	if br[0].Value <= br[0].Max {
		t.Errorf("breach value %d not above max %d", br[0].Value, br[0].Max)
	}
	if n := sink.Count(EvSLOBreach); n != 1 {
		t.Errorf("EvSLOBreach emitted %d times, want 1", n)
	}

	// Cooldown: an immediately repeated check re-reports the breach but
	// does not re-emit the event.
	if br = w.Check(); len(br) != 1 {
		t.Fatalf("repeat check: %+v", br)
	}
	if n := sink.Count(EvSLOBreach); n != 1 {
		t.Errorf("cooldown violated: %d events", n)
	}
	if got := w.Breaches()["pause_p99_ns"]; got != 2 {
		t.Errorf("Breaches() = %d, want 2 (cooldown suppresses events, not counts)", got)
	}
}

// TestGaugeSource adapts a registry gauge into a rule source.
func TestGaugeSource(t *testing.T) {
	g := NewRegistry().Gauge("backlog")
	g.Set(42)
	if got := GaugeSource(g)(); got != 42 {
		t.Errorf("GaugeSource = %d", got)
	}
}

// TestSLOBreachTriggersFlightDump is the acceptance proof: a breach
// event lands in a FlightRecorder and auto-dumps the ring.
func TestSLOBreachTriggersFlightDump(t *testing.T) {
	var buf strings.Builder
	fr := NewFlightRecorder(64, &buf)
	w := NewWatchdog(fr)
	hot := NewHistogram(DurationBuckets())
	w.Add(SLORule{Name: "decode_p99_ns", Source: QuantileSource(hot, 0.99), Max: 100})

	// Some ordinary traffic first, so the dump has context.
	for i := 0; i < 5; i++ {
		fr.Emit(Event{Kind: EvSample, Thread: 0, Site: prog.NoSite, Fn: prog.NoFunc, DurNanos: 80})
	}
	hot.Observe(10_000)
	if br := w.Check(); len(br) != 1 {
		t.Fatalf("no breach: %+v", br)
	}
	if fr.Dumps() != 1 {
		t.Fatalf("flight recorder dumped %d times, want 1", fr.Dumps())
	}
	dump := buf.String()
	if !strings.Contains(dump, "slo_breach") {
		t.Errorf("dump missing the breach event:\n%s", dump)
	}
	if !strings.Contains(dump, `"dur_ns"`) {
		t.Errorf("dump lines missing dur_ns:\n%s", dump)
	}
}

// TestWatch runs the background ticker once and stops it.
func TestWatch(t *testing.T) {
	var sink CountingSink
	w := NewWatchdog(&sink)
	w.SetCooldown(0)
	fired := make(chan struct{}, 1)
	w.Add(SLORule{
		Name: "always",
		Source: func() int64 {
			select {
			case fired <- struct{}{}:
			default:
			}
			return 2
		},
		Max: 1,
	})
	stop := w.Watch(time.Millisecond)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog ticker never checked")
	}
	stop()
	stop() // idempotent
	if n := sink.Count(EvSLOBreach); n == 0 {
		t.Error("no breach emitted by background watch")
	}
}

// TestMetricsSinkLatencyHistograms: events carrying DurNanos feed the
// per-kind latency histograms.
func TestMetricsSinkLatencyHistograms(t *testing.T) {
	m := NewMetrics()
	m.Emit(Event{Kind: EvReencodeEnd, Thread: -1, Site: prog.NoSite, Fn: prog.NoFunc, DurNanos: 2_000_000})
	m.Emit(Event{Kind: EvHandlerTrap, Thread: 0, Site: prog.NoSite, Fn: prog.NoFunc, DurNanos: 900})
	m.Emit(Event{Kind: EvDecodeRequest, Thread: 0, Site: prog.NoSite, Fn: prog.NoFunc, DurNanos: 1500})
	m.Emit(Event{Kind: EvSample, Thread: 0, Site: prog.NoSite, Fn: prog.NoFunc, DurNanos: 70})
	m.Emit(Event{Kind: EvSLOBreach, Thread: -1, Site: prog.NoSite, Fn: prog.NoFunc, Err: true})

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"dacce_reencode_pause_ns_count 1",
		"dacce_trap_latency_ns_count 1",
		"dacce_decode_latency_ns_count 1",
		"dacce_sample_latency_ns_count 1",
		"dacce_slo_breach_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Events without a duration don't pollute the histograms.
	m.Emit(Event{Kind: EvSample, Thread: 0, Site: prog.NoSite, Fn: prog.NoFunc})
	sampleHist := m.Registry().Histogram("dacce_sample_latency_ns", DurationBuckets())
	if got := sampleHist.Count(); got != 1 {
		t.Errorf("zero-duration sample counted: %d", got)
	}
}

func TestEventStringDur(t *testing.T) {
	ev := Event{Kind: EvReencodeEnd, Thread: -1, Site: prog.NoSite, Fn: prog.NoFunc, DurNanos: 420}
	if !strings.Contains(ev.String(), "dur=420ns") {
		t.Errorf("String() = %q", ev.String())
	}
}
