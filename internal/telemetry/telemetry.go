// Package telemetry is the live observability layer of the DACCE
// runtime: a structured event stream describing what the adaptive
// encoder does while it runs (edges discovered, re-encoding passes with
// their trigger reason, ccStack traffic, indirect-dispatch promotions,
// id overflows, tail fix-ups, decode requests), consumers of that
// stream (a metrics registry with Prometheus-style and JSON exposition,
// a Chrome trace-event exporter, a flight recorder), and the plumbing
// to compose them.
//
// Emission is pull-free and pluggable: producers hold a Sink and emit
// events through it. A nil Sink is the fast path — producers guard
// every emission with a single nil check, so an uninstrumented run pays
// one predictable branch per event site and constructs no Event values.
//
// Sinks must be safe for concurrent use: machine threads emit from
// their own goroutines. Sinks must not call back into the emitting
// encoder (events may be emitted under its internal lock).
package telemetry

import (
	"fmt"
	"sync/atomic"

	"dacce/internal/prog"
)

// Kind identifies what an Event describes.
type Kind uint8

// Event kinds. The Value/Aux fields of an Event are kind-specific; the
// meaning for each kind is documented here.
const (
	// EvEncoderInit: an encoder was created. Value is the id budget,
	// Aux the epoch-0 maxID.
	EvEncoderInit Kind = iota
	// EvEdgeDiscovered: the runtime handler saw a call edge for the
	// first time. Site/Fn name the edge; Value is the total number of
	// discovered edges including this one.
	EvEdgeDiscovered
	// EvReencodeStart: a re-encoding pass is starting. Reason carries
	// the trigger; Epoch is the epoch being left; Value is the graph's
	// edge count. On the classic serialized path the world is already
	// stopped at this point; on the concurrent-prepare path it is still
	// running and only stops after EvReencodePrepared.
	EvReencodeStart
	// EvReencodePrepared: a concurrent pass finished computing the new
	// assignment and decode index off-pause and is about to stop the
	// world. Epoch is the epoch being left; Value is the number of
	// changed edges, Aux the number of renumbered edges; DurNanos the
	// prepare duration.
	EvReencodePrepared
	// EvReencodeEnd: the pass finished. Reason matches the start event;
	// Epoch is the new epoch; Value is the pass's model cost in cycles;
	// Aux is the new maxID; DurNanos the stop-the-world pause.
	EvReencodeEnd
	// EvCCStackPush: an unencoded or recursive call pushed on the
	// ccStack. Site/Fn name the edge; Value is the depth after the push.
	EvCCStackPush
	// EvCCStackPop: an epilogue popped the ccStack. Value is the depth
	// after the pop.
	EvCCStackPop
	// EvIndirectPromoted: an indirect site outgrew its inline compare
	// chain and got the one-probe hash table (Fig. 4). Site names it;
	// Value is the number of known targets.
	EvIndirectPromoted
	// EvIDOverflow: an encoding pass exceeded the id budget and excluded
	// cold edges to fit. Value is the unrestricted maxID (saturating),
	// Aux the budget.
	EvIDOverflow
	// EvTailFixup: a function was first discovered to contain a tail
	// call and its callers were patched (§5.2). Fn names it.
	EvTailFixup
	// EvHandlerTrap: a call site invoked the runtime handler. Site/Fn
	// name the invocation.
	EvHandlerTrap
	// EvDecodeRequest: a capture was decoded (or failed to). Epoch is
	// the capture's epoch, Fn its leaf function; Err reports failure;
	// Value is the decoded context length on success.
	EvDecodeRequest
	// EvThreadStart: a machine thread started. Fn is its entry function.
	EvThreadStart
	// EvThreadExit: a machine thread finished.
	EvThreadExit
	// EvSample: a periodic sample captured a context. Value is the
	// per-thread sample sequence number.
	EvSample
	// EvDivergence: a differential checker found two context trackers
	// disagreeing about the same instant. Fn is the sampled leaf
	// function, Value the per-thread sample sequence number, Err is
	// always set (a divergence is a failure), and Aux distinguishes the
	// checker-specific divergence class.
	EvDivergence
	// EvSLOBreach: an SLO watchdog rule found its source over threshold.
	// Value is the observed value, Aux the configured maximum, Err is
	// always set (a breach is a failure). A FlightRecorder auto-dumps on
	// it, so the events leading up to the breach are preserved.
	EvSLOBreach
	// EvModuleLoad: a dlopen-style module transitioned to loaded. Value
	// is the module id.
	EvModuleLoad
	// EvModuleUnload: a module was unloaded (dlclose). Value is the
	// module id. Contexts captured in earlier epochs must remain
	// decodable after this event.
	EvModuleUnload

	// NumKinds is the number of event kinds (for per-kind tables).
	NumKinds
)

var kindNames = [NumKinds]string{
	EvEncoderInit:      "encoder_init",
	EvEdgeDiscovered:   "edge_discovered",
	EvReencodeStart:    "reencode_start",
	EvReencodePrepared: "reencode_prepared",
	EvReencodeEnd:      "reencode_end",
	EvCCStackPush:      "ccstack_push",
	EvCCStackPop:       "ccstack_pop",
	EvIndirectPromoted: "indirect_promoted",
	EvIDOverflow:       "id_overflow",
	EvTailFixup:        "tail_fixup",
	EvHandlerTrap:      "handler_trap",
	EvDecodeRequest:    "decode_request",
	EvThreadStart:      "thread_start",
	EvThreadExit:       "thread_exit",
	EvSample:           "sample",
	EvDivergence:       "divergence",
	EvSLOBreach:        "slo_breach",
	EvModuleLoad:       "module_load",
	EvModuleUnload:     "module_unload",
}

// String returns the kind's snake_case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Reason classifies what fired an adaptive re-encoding pass (paper §4
// names three triggers; forced passes come from the API).
type Reason uint8

const (
	// ReasonNone: not a re-encoding event.
	ReasonNone Reason = iota
	// ReasonNewEdges is trigger (a): enough newly discovered edges.
	ReasonNewEdges
	// ReasonHotPath is trigger (b): frequently invoked call paths are
	// not encoded (unencoded-call traffic or sampled marker-range ids).
	ReasonHotPath
	// ReasonCCOps is trigger (c): the ccStack is accessed too often.
	ReasonCCOps
	// ReasonForced: an explicit ForceReencode call.
	ReasonForced

	// NumReasons is the number of reason values.
	NumReasons
)

var reasonNames = [NumReasons]string{
	ReasonNone:     "none",
	ReasonNewEdges: "new_edges",
	ReasonHotPath:  "hot_path",
	ReasonCCOps:    "cc_ops",
	ReasonForced:   "forced",
}

// String returns the reason's snake_case name.
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Event is one occurrence in the encoder's life. Kind determines which
// fields are meaningful (see the kind constants); unused fields are
// zero. Events are values — sinks may retain them.
type Event struct {
	// Kind says what happened.
	Kind Kind
	// Thread is the machine thread id the event occurred on, or -1 when
	// no thread was executing (API calls, idle re-encodes).
	Thread int32
	// Epoch is the encoder epoch (gTimeStamp) the event refers to.
	Epoch uint32
	// Site is the call site involved, or prog.NoSite.
	Site prog.SiteID
	// Fn is the function involved, or prog.NoFunc.
	Fn prog.FuncID
	// Reason is the re-encoding trigger for reencode events.
	Reason Reason
	// Err marks failed decode requests.
	Err bool
	// Value and Aux carry kind-specific quantities.
	Value uint64
	Aux   uint64
	// DurNanos is the wall-clock duration of the work the event
	// describes, in nanoseconds, or 0 when the producer does not time
	// it: re-encoding pause for EvReencodeEnd, handler latency for
	// EvHandlerTrap, decode latency for EvDecodeRequest, and sampling
	// controller latency for EvSample (set by machine.Instrument).
	DurNanos int64
}

func (e Event) String() string {
	s := fmt.Sprintf("%s t%d e%d", e.Kind, e.Thread, e.Epoch)
	if e.Site != prog.NoSite {
		s += fmt.Sprintf(" s%d", e.Site)
	}
	if e.Fn != prog.NoFunc {
		s += fmt.Sprintf(" f%d", e.Fn)
	}
	if e.Reason != ReasonNone {
		s += " " + e.Reason.String()
	}
	if e.Err {
		s += " err"
	}
	s = fmt.Sprintf("%s v=%d a=%d", s, e.Value, e.Aux)
	if e.DurNanos != 0 {
		s += fmt.Sprintf(" dur=%dns", e.DurNanos)
	}
	return s
}

// Sink consumes the event stream. Implementations must be safe for
// concurrent Emit calls and must not call back into the emitter.
type Sink interface {
	Emit(Event)
}

// CountingSink counts events per kind — the cheapest non-nil sink,
// useful as a liveness check and as the benchmark upper bound for
// emission overhead.
type CountingSink struct {
	counts [NumKinds]atomic.Int64
}

// Emit implements Sink.
func (c *CountingSink) Emit(ev Event) {
	if ev.Kind < NumKinds {
		c.counts[ev.Kind].Add(1)
	}
}

// Count returns how many events of kind k were emitted.
func (c *CountingSink) Count(k Kind) int64 {
	if k >= NumKinds {
		return 0
	}
	return c.counts[k].Load()
}

// Total returns the total number of events emitted.
func (c *CountingSink) Total() int64 {
	var n int64
	for i := range c.counts {
		n += c.counts[i].Load()
	}
	return n
}

// multiSink fans one stream out to several sinks.
type multiSink []Sink

func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Multi composes sinks: every event goes to each of them in order. Nil
// entries are dropped; zero or one live sink collapses to itself.
func Multi(sinks ...Sink) Sink {
	var live multiSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// filterSink forwards only selected kinds.
type filterSink struct {
	mask uint32
	next Sink
}

func (f filterSink) Emit(ev Event) {
	if ev.Kind < NumKinds && f.mask&(1<<ev.Kind) != 0 {
		f.next.Emit(ev)
	}
}

// Filter returns a sink forwarding only the listed kinds to next — the
// way to subscribe a heavy consumer to rare events without paying for
// the ccStack flood.
func Filter(next Sink, kinds ...Kind) Sink {
	if next == nil {
		return nil
	}
	var mask uint32
	for _, k := range kinds {
		if k < NumKinds {
			mask |= 1 << k
		}
	}
	return filterSink{mask: mask, next: next}
}
