package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dacce/internal/prog"
)

// chromeDoc mirrors the trace-event file shape for validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceSpans(t *testing.T) {
	c := NewChromeTrace()
	c.Emit(Event{Kind: EvEdgeDiscovered, Thread: 0, Site: 1, Fn: 2, Value: 1})
	c.Emit(Event{Kind: EvReencodeStart, Thread: 0, Reason: ReasonNewEdges, Epoch: 0, Value: 24})
	c.Emit(Event{Kind: EvReencodeEnd, Thread: 0, Reason: ReasonNewEdges, Epoch: 1, Value: 7200, Aux: 55})
	c.Emit(Event{Kind: EvTailFixup, Thread: 1, Fn: 3, Site: prog.NoSite})

	var b bytes.Buffer
	if err := c.Export(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var begins, ends, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			begins++
			if ev.Name != "reencode" || ev.Args["reason"] != "new_edges" {
				t.Errorf("unexpected B event %+v", ev)
			}
		case "E":
			ends++
		case "i":
			instants++
		}
	}
	if begins != 1 || ends != 1 {
		t.Errorf("got %d B / %d E events, want 1/1", begins, ends)
	}
	if instants != 2 {
		t.Errorf("got %d instants, want 2 (edge_discovered + tail_fixup)", instants)
	}
}

func TestChromeTraceBalancesOpenSpans(t *testing.T) {
	c := NewChromeTrace()
	c.Emit(Event{Kind: EvReencodeStart, Thread: 2, Reason: ReasonForced})
	var b bytes.Buffer
	if err := c.Export(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var begins, ends int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			begins++
		case "E":
			ends++
		}
	}
	if begins != ends {
		t.Errorf("unbalanced spans: %d B vs %d E", begins, ends)
	}
}

func TestChromeTraceCapacity(t *testing.T) {
	c := NewChromeTrace()
	c.SetCapacity(2)
	for i := 0; i < 5; i++ {
		c.Emit(Event{Kind: EvEdgeDiscovered, Site: prog.SiteID(i)})
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want capacity 2", c.Len())
	}
	var b bytes.Buffer
	if err := c.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Error("capped trace is not valid JSON")
	}
}

func TestChromeTraceCCDepthCounter(t *testing.T) {
	c := NewChromeTrace()
	for i := 0; i < 2*ccDepthStride; i++ {
		c.Emit(Event{Kind: EvCCStackPush, Value: uint64(i % 8)})
	}
	var b bytes.Buffer
	if err := c.Export(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	counters := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" {
			counters++
		}
	}
	if counters != 2 {
		t.Errorf("got %d counter events for %d pushes, want 2", counters, 2*ccDepthStride)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3, nil)
	for i := 0; i < 5; i++ {
		f.Emit(Event{Kind: EvEdgeDiscovered, Site: prog.SiteID(i), Fn: prog.NoFunc, Value: uint64(i)})
	}
	if f.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", f.Len())
	}
	var b bytes.Buffer
	if err := f.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Oldest retained event is i=2; i=0 and i=1 were overwritten.
	if strings.Contains(out, `"site":0,`) || strings.Contains(out, `"site":1,`) {
		t.Errorf("dump contains evicted events:\n%s", out)
	}
	first := strings.Index(out, `"site":2`)
	last := strings.Index(out, `"site":4`)
	if first < 0 || last < 0 || first > last {
		t.Errorf("dump not oldest-first:\n%s", out)
	}
}

func TestFlightRecorderAutoDump(t *testing.T) {
	var b bytes.Buffer
	f := NewFlightRecorder(8, &b)
	f.Emit(Event{Kind: EvEdgeDiscovered, Site: 1, Fn: 2})
	f.Emit(Event{Kind: EvDecodeRequest, Fn: 2}) // success: no dump
	if f.Dumps() != 0 || b.Len() != 0 {
		t.Fatal("successful decode should not trigger a dump")
	}
	f.Emit(Event{Kind: EvDecodeRequest, Fn: 2, Err: true})
	if f.Dumps() != 1 {
		t.Fatalf("Dumps() = %d, want 1", f.Dumps())
	}
	if !strings.Contains(b.String(), "decode_request") || !strings.Contains(b.String(), "edge_discovered") {
		t.Errorf("auto-dump missing context:\n%s", b.String())
	}
	b.Reset()
	f.Emit(Event{Kind: EvIDOverflow, Site: prog.NoSite, Fn: prog.NoFunc, Value: 9, Aux: 3})
	if f.Dumps() != 2 || !strings.Contains(b.String(), "id_overflow") {
		t.Errorf("overflow should auto-dump (dumps=%d):\n%s", f.Dumps(), b.String())
	}
}

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	f := NewFlightRecorder(0, nil)
	if len(f.ring) != DefaultFlightCapacity {
		t.Errorf("default capacity = %d, want %d", len(f.ring), DefaultFlightCapacity)
	}
}
