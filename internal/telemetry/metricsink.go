package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"dacce/internal/prog"
)

// maxTrackedSites bounds the per-site handler-hit map so a pathological
// program cannot grow the sink without bound.
const maxTrackedSites = 1 << 12

// topSites is how many hottest handler sites are exposed as labeled
// gauges in the exposition.
const topSites = 8

// Metrics is a Sink that aggregates the event stream into a Registry:
// counters for every discrete event, per-trigger re-encode counts, a
// ccStack depth histogram, a per-pass re-encode cost histogram, and
// gauges for epoch, maxID and the id budget ("ids consumed vs budget").
type Metrics struct {
	reg *Registry

	edges      *Counter
	reencode   [NumReasons]*Counter
	push, pop  *Counter
	depth      *Histogram
	cost       *Histogram
	promoted   *Counter
	overflow   *Counter
	fixups     *Counter
	traps      *Counter
	decodeOK   *Counter
	decodeErr  *Counter
	started    *Counter
	exited     *Counter
	samples    *Counter
	divergence *Counter
	sloBreach  *Counter

	pauseNs  *Histogram
	trapNs   *Histogram
	decodeNs *Histogram
	sampleNs *Histogram

	epoch  *Gauge
	maxID  *Gauge
	budget *Gauge

	siteMu   sync.Mutex
	siteHits map[prog.SiteID]int64
}

// NewMetrics returns a metrics sink over a fresh registry.
func NewMetrics() *Metrics {
	reg := NewRegistry()
	m := &Metrics{
		reg:        reg,
		edges:      reg.Counter("dacce_edges_discovered_total"),
		push:       reg.Counter("dacce_ccstack_push_total"),
		pop:        reg.Counter("dacce_ccstack_pop_total"),
		depth:      reg.Histogram("dacce_ccstack_depth", ExpBuckets(1, 2, 11)),
		cost:       reg.Histogram("dacce_reencode_cost_cycles", ExpBuckets(1<<10, 4, 11)),
		promoted:   reg.Counter("dacce_indirect_promoted_total"),
		overflow:   reg.Counter("dacce_id_overflow_total"),
		fixups:     reg.Counter("dacce_tail_fixup_total"),
		traps:      reg.Counter("dacce_handler_traps_total"),
		decodeOK:   reg.Counter("dacce_decode_requests_total", "outcome", "ok"),
		decodeErr:  reg.Counter("dacce_decode_requests_total", "outcome", "error"),
		started:    reg.Counter("dacce_threads_started_total"),
		exited:     reg.Counter("dacce_threads_exited_total"),
		samples:    reg.Counter("dacce_samples_total"),
		divergence: reg.Counter("dacce_divergences_total"),
		sloBreach:  reg.Counter("dacce_slo_breach_total"),
		pauseNs:    reg.Histogram("dacce_reencode_pause_ns", DurationBuckets()),
		trapNs:     reg.Histogram("dacce_trap_latency_ns", DurationBuckets()),
		decodeNs:   reg.Histogram("dacce_decode_latency_ns", DurationBuckets()),
		sampleNs:   reg.Histogram("dacce_sample_latency_ns", DurationBuckets()),
		epoch:      reg.Gauge("dacce_epoch"),
		maxID:      reg.Gauge("dacce_max_id"),
		budget:     reg.Gauge("dacce_id_budget"),
		siteHits:   make(map[prog.SiteID]int64),
	}
	for r := Reason(0); r < NumReasons; r++ {
		if r == ReasonNone {
			continue
		}
		m.reencode[r] = reg.Counter("dacce_reencode_total", "reason", r.String())
	}
	reg.Help("dacce_edges_discovered_total", "Call edges first seen by the runtime handler.")
	reg.Help("dacce_reencode_total", "Adaptive re-encoding passes by trigger reason.")
	reg.Help("dacce_ccstack_depth", "ccStack depth observed at each push.")
	reg.Help("dacce_reencode_cost_cycles", "Model cost of each re-encoding pass.")
	reg.Help("dacce_max_id", "Maximum context id of the current epoch.")
	reg.Help("dacce_id_budget", "Configured context-id budget.")
	reg.Help("dacce_divergences_total", "Cross-encoder divergences found by the differential checker.")
	reg.Help("dacce_slo_breach_total", "SLO watchdog rules found over threshold.")
	reg.Help("dacce_reencode_pause_ns", "Stop-the-world pause of each re-encoding pass (wall ns).")
	reg.Help("dacce_trap_latency_ns", "Runtime-handler trap latency (wall ns).")
	reg.Help("dacce_decode_latency_ns", "External decode-request latency (wall ns).")
	reg.Help("dacce_sample_latency_ns", "Sampling-controller latency per sample (wall ns).")
	return m
}

// Registry returns the backing registry, for composing extra metrics.
func (m *Metrics) Registry() *Registry { return m.reg }

// Emit implements Sink.
func (m *Metrics) Emit(ev Event) {
	switch ev.Kind {
	case EvEncoderInit:
		m.budget.SetUint(ev.Value)
		m.maxID.SetUint(ev.Aux)
	case EvEdgeDiscovered:
		m.edges.Inc()
	case EvReencodeStart:
		// Counted at end so aborted passes never show.
	case EvReencodeEnd:
		if c := m.reencode[ev.Reason]; c != nil {
			c.Inc()
		}
		m.cost.Observe(int64(ev.Value))
		m.epoch.Set(int64(ev.Epoch))
		m.maxID.SetUint(ev.Aux)
		if ev.DurNanos > 0 {
			m.pauseNs.Observe(ev.DurNanos)
		}
	case EvCCStackPush:
		m.push.Inc()
		m.depth.Observe(int64(ev.Value))
	case EvCCStackPop:
		m.pop.Inc()
	case EvIndirectPromoted:
		m.promoted.Inc()
	case EvIDOverflow:
		m.overflow.Inc()
	case EvTailFixup:
		m.fixups.Inc()
	case EvHandlerTrap:
		m.traps.Inc()
		if ev.DurNanos > 0 {
			m.trapNs.Observe(ev.DurNanos)
		}
		m.siteMu.Lock()
		if _, ok := m.siteHits[ev.Site]; ok || len(m.siteHits) < maxTrackedSites {
			m.siteHits[ev.Site]++
		}
		m.siteMu.Unlock()
	case EvDecodeRequest:
		if ev.Err {
			m.decodeErr.Inc()
		} else {
			m.decodeOK.Inc()
		}
		if ev.DurNanos > 0 {
			m.decodeNs.Observe(ev.DurNanos)
		}
	case EvThreadStart:
		m.started.Inc()
	case EvThreadExit:
		m.exited.Inc()
	case EvSample:
		m.samples.Inc()
		if ev.DurNanos > 0 {
			m.sampleNs.Observe(ev.DurNanos)
		}
	case EvDivergence:
		m.divergence.Inc()
	case EvSLOBreach:
		m.sloBreach.Inc()
	}
}

// syncDerived publishes metrics computed from accumulated state: the
// hottest handler sites as labeled gauges.
func (m *Metrics) syncDerived() {
	m.siteMu.Lock()
	type hit struct {
		site prog.SiteID
		n    int64
	}
	hits := make([]hit, 0, len(m.siteHits))
	for s, n := range m.siteHits {
		hits = append(hits, hit{s, n})
	}
	m.siteMu.Unlock()
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].n != hits[j].n {
			return hits[i].n > hits[j].n
		}
		return hits[i].site < hits[j].site
	})
	m.reg.Gauge("dacce_handler_sites").Set(int64(len(hits)))
	for i := 0; i < topSites && i < len(hits); i++ {
		m.reg.Gauge("dacce_handler_hits", "site", fmt.Sprintf("s%d", hits[i].site)).Set(hits[i].n)
	}
}

// WritePrometheus renders the current metrics in the Prometheus text
// exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.syncDerived()
	return m.reg.WritePrometheus(w)
}

// WriteJSON renders the current metrics as JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	m.syncDerived()
	return m.reg.WriteJSON(w)
}
