// Package graph implements the dynamic call graph both encoders operate
// on: nodes are functions, edges are (call site → target) pairs. DACCE
// grows the graph one invoked edge at a time; PCCE builds it up front
// from static information. The package also provides the two analyses
// the encoders need: back-edge classification by depth-first search and
// a topological order of the remaining acyclic graph.
//
// The graph is deliberately append-only: nodes and edges are never
// removed, so *Edge and *Node pointers remain valid across re-encodings
// and can key the per-epoch decode dictionaries (paper Fig. 6). All
// iteration orders are insertion orders, which makes every analysis —
// and therefore every encoding — deterministic.
//
// Synchronization is split in two. Edge existence — the (site, target)
// maps consulted and grown by the runtime handler on every trap — is
// sharded by SiteID with one mutex per shard, so concurrent discovery
// on different sites never contends (DiscoverEdge, Edge, EdgesAt are
// safe to call from any thread). The registry — NodeSeq, Edges, the
// node table and the In/Out adjacency lists that the analyses walk —
// stays the caller's job: DACCE registers discovered edges in batches
// under its scheme lock (RegisterEdges), and analyses run with the
// world stopped. AddEdge composes the two steps for single-threaded
// builders (PCCE, state restore).
package graph

import (
	"fmt"
	"sync"

	"dacce/internal/prog"
)

// Node is a function that has appeared in the call graph.
type Node struct {
	Fn   prog.FuncID
	In   []*Edge // edges targeting this function, in insertion order
	Out  []*Edge // edges leaving this function, in insertion order
	Seq  int     // insertion sequence number
	name string
}

// Name returns the function name captured at insertion.
func (n *Node) Name() string { return n.name }

// Edge is a call edge. The pair (Site, Target) is unique: a direct site
// has one edge, an indirect site one edge per distinct run-time target.
type Edge struct {
	Seq    int // insertion sequence number, also index into Graph.Edges
	Site   prog.SiteID
	Caller prog.FuncID
	Target prog.FuncID
	Kind   prog.Kind

	// Freq is the observed invocation count used by adaptive encoding to
	// order edges hottest-first. Unencoded stubs count it directly (they
	// are instrumented anyway); for zero-cost encoded edges it is
	// re-estimated from decoded samples. Bumped with atomic adds by
	// traps and the sampling controller while the world runs, and read
	// atomically by encoding passes (which may prepare concurrently with
	// live threads).
	Freq int64

	// Back marks the edge as a back edge in the most recent
	// classification; back edges are never encoded (paper §3.3).
	Back bool
}

func (e *Edge) String() string {
	return fmt.Sprintf("edge{site=%d %d->%d %s}", e.Site, e.Caller, e.Target, e.Kind)
}

// EdgeKey identifies an edge independent of insertion.
type EdgeKey struct {
	Site   prog.SiteID
	Target prog.FuncID
}

// shardCount is the number of edge-existence shards. Power of two so
// the shard index is a mask; 64 keeps the per-shard footprint tiny
// while making same-shard collisions between concurrently-trapping
// sites unlikely at realistic thread counts.
const shardCount = 64

// shard holds the edge-existence state for the sites hashing to it.
// Guarded by its own mutex so concurrent discovery scales.
type shard struct {
	mu     sync.Mutex
	edges  map[EdgeKey]*Edge
	bySite map[prog.SiteID][]*Edge
}

// Graph is a dynamic call graph.
type Graph struct {
	p       *prog.Program
	Entry   prog.FuncID
	roots   []prog.FuncID // Entry plus thread entry points, in order
	rootSet map[prog.FuncID]bool
	NodeSeq []*Node // nodes in insertion order
	Edges   []*Edge // registered edges in registration order
	nodes   map[prog.FuncID]*Node
	shards  [shardCount]shard
}

// New returns a graph over the program containing only the entry node,
// mirroring DACCE's start state ("a call graph containing only main").
func New(p *prog.Program) *Graph {
	g := &Graph{
		p:       p,
		Entry:   p.Entry,
		rootSet: make(map[prog.FuncID]bool),
		nodes:   make(map[prog.FuncID]*Node),
	}
	for i := range g.shards {
		g.shards[i].edges = make(map[EdgeKey]*Edge)
		g.shards[i].bySite = make(map[prog.SiteID][]*Edge)
	}
	g.AddNode(p.Entry)
	g.roots = []prog.FuncID{p.Entry}
	g.rootSet[p.Entry] = true
	return g
}

// shardOf returns the shard owning a site's edge-existence state.
func (g *Graph) shardOf(site prog.SiteID) *shard {
	return &g.shards[uint32(site)&(shardCount-1)]
}

// AddRoot registers fn as an additional traversal root: a thread entry
// point (paper §5.3). Idempotent; the node is added if absent.
func (g *Graph) AddRoot(fn prog.FuncID) {
	if g.rootSet[fn] {
		return
	}
	g.AddNode(fn)
	g.rootSet[fn] = true
	g.roots = append(g.roots, fn)
}

// Roots returns the traversal roots (entry first).
func (g *Graph) Roots() []prog.FuncID { return g.roots }

// Program returns the underlying program.
func (g *Graph) Program() *prog.Program { return g.p }

// NumNodes returns the number of functions in the graph.
func (g *Graph) NumNodes() int { return len(g.NodeSeq) }

// NumEdges returns the number of edges in the graph.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Node returns the node for fn, or nil if fn has not been added.
func (g *Graph) Node(fn prog.FuncID) *Node { return g.nodes[fn] }

// AddNode ensures fn is present and returns its node.
func (g *Graph) AddNode(fn prog.FuncID) *Node {
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &Node{Fn: fn, Seq: len(g.NodeSeq), name: g.p.Funcs[fn].Name}
	g.nodes[fn] = n
	g.NodeSeq = append(g.NodeSeq, n)
	return n
}

// Edge returns the edge for (site, target), or nil. Safe to call
// concurrently with discovery on any site.
func (g *Graph) Edge(site prog.SiteID, target prog.FuncID) *Edge {
	sh := g.shardOf(site)
	sh.mu.Lock()
	e := sh.edges[EdgeKey{site, target}]
	sh.mu.Unlock()
	return e
}

// EdgesAt returns all edges out of the given call site, in discovery
// order. Safe to call concurrently with discovery: the slice is
// append-only, so the returned header stays valid while new edges land
// past its length.
func (g *Graph) EdgesAt(site prog.SiteID) []*Edge {
	sh := g.shardOf(site)
	sh.mu.Lock()
	es := sh.bySite[site]
	sh.mu.Unlock()
	return es
}

// DiscoverEdge ensures the (site, target) edge exists in the site's
// shard and returns it together with whether it was newly inserted.
// Only the shard lock is taken, so concurrent discovery on different
// shards never contends. A new edge is NOT yet registered: it has
// Seq == -1, is absent from Edges/NodeSeq/In/Out, and must be passed to
// RegisterEdges (under the caller's registry synchronization) before
// any analysis or encoding pass runs.
func (g *Graph) DiscoverEdge(site prog.SiteID, target prog.FuncID) (*Edge, bool) {
	key := EdgeKey{site, target}
	sh := g.shardOf(site)
	sh.mu.Lock()
	if e, ok := sh.edges[key]; ok {
		sh.mu.Unlock()
		return e, false
	}
	s := g.p.Site(site)
	e := &Edge{
		Seq:    -1,
		Site:   site,
		Caller: s.Caller,
		Target: target,
		Kind:   s.Kind,
	}
	sh.edges[key] = e
	sh.bySite[site] = append(sh.bySite[site], e)
	sh.mu.Unlock()
	return e, true
}

// RegisterEdges adds previously discovered edges to the registry:
// assigns each its Seq, appends it to Edges and wires the caller/target
// nodes' adjacency lists. Registration order is the caller's batch
// order, which fixes every later analysis order. The caller must hold
// its registry lock (DACCE's scheme mutex); edges already registered
// are skipped, so replaying a batch is harmless.
func (g *Graph) RegisterEdges(batch []*Edge) {
	for _, e := range batch {
		if e.Seq >= 0 {
			continue
		}
		caller := g.AddNode(e.Caller)
		tnode := g.AddNode(e.Target)
		e.Seq = len(g.Edges)
		g.Edges = append(g.Edges, e)
		caller.Out = append(caller.Out, e)
		tnode.In = append(tnode.In, e)
	}
}

// AddEdge ensures the (site, target) edge exists, registered, and
// returns it together with whether it was newly inserted — the
// single-threaded composition of DiscoverEdge + RegisterEdges used by
// up-front builders (PCCE, breadcrumbs) and state restore. The caller
// must hold the registry synchronization.
func (g *Graph) AddEdge(site prog.SiteID, target prog.FuncID) (*Edge, bool) {
	e, isNew := g.DiscoverEdge(site, target)
	if isNew {
		g.RegisterEdges([]*Edge{e})
	}
	return e, isNew
}

// GetEdge implements the decoder's getEdge(cs, ifun) lookup: the edge at
// call site cs that ends at ifun (Algorithm 1, line 13). Returns nil if
// no such edge exists.
func (g *Graph) GetEdge(cs prog.SiteID, ifun prog.FuncID) *Edge {
	return g.Edge(cs, ifun)
}

// dfsColor values for ClassifyBackEdges.
const (
	white = iota // unvisited
	gray         // on the current DFS path
	black        // finished
)

// ClassifyBackEdges runs an iterative depth-first search from the entry
// node and sets Edge.Back on every edge whose target is on the current
// DFS path. Removing the back edges leaves an acyclic graph. Edges from
// nodes unreachable from the entry are also marked Back so that the
// encoder never assigns them codes (they can only be reached through
// mechanisms the encoding cannot see).
//
// The classification is deterministic: children are visited in edge
// insertion order.
func (g *Graph) ClassifyBackEdges() {
	for _, e := range g.Edges {
		e.Back = false
	}
	color := make(map[prog.FuncID]uint8, len(g.NodeSeq))

	type frame struct {
		n    *Node
		next int
	}
	for _, root := range g.roots {
		rn := g.nodes[root]
		if rn == nil || color[root] != white {
			continue
		}
		stack := []frame{{n: rn}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.n.Out) {
				e := f.n.Out[f.next]
				f.next++
				switch color[e.Target] {
				case white:
					color[e.Target] = gray
					stack = append(stack, frame{n: g.nodes[e.Target]})
				case gray:
					e.Back = true
				}
			} else {
				color[f.n.Fn] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	// Unreachable nodes: mark their outgoing edges as back so they stay
	// out of the encoding.
	for _, n := range g.NodeSeq {
		if color[n.Fn] != black {
			for _, e := range n.Out {
				e.Back = true
			}
		}
	}
}

// TopoOrder returns the nodes reachable from entry in a topological
// order of the graph without back edges. ClassifyBackEdges must have run
// on the current graph. Nodes unreachable from the entry are appended at
// the end (they have no encoded in-edges and act as isolated roots).
func (g *Graph) TopoOrder() []*Node {
	indeg := make(map[prog.FuncID]int, len(g.NodeSeq))
	for _, n := range g.NodeSeq {
		indeg[n.Fn] = 0
	}
	for _, e := range g.Edges {
		if !e.Back {
			indeg[e.Target]++
		}
	}
	order := make([]*Node, 0, len(g.NodeSeq))
	// Deterministic Kahn: seed with zero-indegree nodes in insertion
	// order; the queue preserves discovery order.
	queue := make([]*Node, 0, 8)
	for _, n := range g.NodeSeq {
		if indeg[n.Fn] == 0 {
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range n.Out {
			if e.Back {
				continue
			}
			indeg[e.Target]--
			if indeg[e.Target] == 0 {
				queue = append(queue, g.nodes[e.Target])
			}
		}
	}
	if len(order) != len(g.NodeSeq) {
		// A cycle survived classification; that would be a bug in
		// ClassifyBackEdges. Fail loudly rather than mis-encode.
		panic(fmt.Sprintf("graph: topological sort covered %d of %d nodes", len(order), len(g.NodeSeq)))
	}
	return order
}

// Reachable returns the set of nodes reachable from any root via any
// edge.
func (g *Graph) Reachable() map[prog.FuncID]bool {
	seen := make(map[prog.FuncID]bool, len(g.NodeSeq))
	var stack []*Node
	for _, root := range g.roots {
		if n := g.nodes[root]; n != nil && !seen[root] {
			seen[root] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if !seen[e.Target] {
				seen[e.Target] = true
				stack = append(stack, g.nodes[e.Target])
			}
		}
	}
	return seen
}
