// Package graph implements the dynamic call graph both encoders operate
// on: nodes are functions, edges are (call site → target) pairs. DACCE
// grows the graph one invoked edge at a time; PCCE builds it up front
// from static information. The package also provides the two analyses
// the encoders need: back-edge classification by depth-first search and
// a topological order of the remaining acyclic graph.
//
// The graph is deliberately append-only: nodes and edges are never
// removed, so *Edge and *Node pointers remain valid across re-encodings
// and can key the per-epoch decode dictionaries (paper Fig. 6). All
// iteration orders are insertion orders, which makes every analysis —
// and therefore every encoding — deterministic.
//
// Synchronization is the caller's job: DACCE mutates the graph only
// inside the runtime handler under the scheme lock, and analyses run
// with the world stopped.
package graph

import (
	"fmt"

	"dacce/internal/prog"
)

// Node is a function that has appeared in the call graph.
type Node struct {
	Fn   prog.FuncID
	In   []*Edge // edges targeting this function, in insertion order
	Out  []*Edge // edges leaving this function, in insertion order
	Seq  int     // insertion sequence number
	name string
}

// Name returns the function name captured at insertion.
func (n *Node) Name() string { return n.name }

// Edge is a call edge. The pair (Site, Target) is unique: a direct site
// has one edge, an indirect site one edge per distinct run-time target.
type Edge struct {
	Seq    int // insertion sequence number, also index into Graph.Edges
	Site   prog.SiteID
	Caller prog.FuncID
	Target prog.FuncID
	Kind   prog.Kind

	// Freq is the observed invocation count used by adaptive encoding to
	// order edges hottest-first. Unencoded stubs count it directly (they
	// are instrumented anyway); for zero-cost encoded edges it is
	// re-estimated from decoded samples. Updated only under the scheme
	// lock or with the world stopped.
	Freq int64

	// Back marks the edge as a back edge in the most recent
	// classification; back edges are never encoded (paper §3.3).
	Back bool
}

func (e *Edge) String() string {
	return fmt.Sprintf("edge{site=%d %d->%d %s}", e.Site, e.Caller, e.Target, e.Kind)
}

// EdgeKey identifies an edge independent of insertion.
type EdgeKey struct {
	Site   prog.SiteID
	Target prog.FuncID
}

// Graph is a dynamic call graph.
type Graph struct {
	p       *prog.Program
	Entry   prog.FuncID
	roots   []prog.FuncID // Entry plus thread entry points, in order
	rootSet map[prog.FuncID]bool
	NodeSeq []*Node // nodes in insertion order
	Edges   []*Edge // edges in insertion order
	nodes   map[prog.FuncID]*Node
	edges   map[EdgeKey]*Edge
	bySite  map[prog.SiteID][]*Edge
}

// New returns a graph over the program containing only the entry node,
// mirroring DACCE's start state ("a call graph containing only main").
func New(p *prog.Program) *Graph {
	g := &Graph{
		p:       p,
		Entry:   p.Entry,
		rootSet: make(map[prog.FuncID]bool),
		nodes:   make(map[prog.FuncID]*Node),
		edges:   make(map[EdgeKey]*Edge),
		bySite:  make(map[prog.SiteID][]*Edge),
	}
	g.AddNode(p.Entry)
	g.roots = []prog.FuncID{p.Entry}
	g.rootSet[p.Entry] = true
	return g
}

// AddRoot registers fn as an additional traversal root: a thread entry
// point (paper §5.3). Idempotent; the node is added if absent.
func (g *Graph) AddRoot(fn prog.FuncID) {
	if g.rootSet[fn] {
		return
	}
	g.AddNode(fn)
	g.rootSet[fn] = true
	g.roots = append(g.roots, fn)
}

// Roots returns the traversal roots (entry first).
func (g *Graph) Roots() []prog.FuncID { return g.roots }

// Program returns the underlying program.
func (g *Graph) Program() *prog.Program { return g.p }

// NumNodes returns the number of functions in the graph.
func (g *Graph) NumNodes() int { return len(g.NodeSeq) }

// NumEdges returns the number of edges in the graph.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Node returns the node for fn, or nil if fn has not been added.
func (g *Graph) Node(fn prog.FuncID) *Node { return g.nodes[fn] }

// AddNode ensures fn is present and returns its node.
func (g *Graph) AddNode(fn prog.FuncID) *Node {
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &Node{Fn: fn, Seq: len(g.NodeSeq), name: g.p.Funcs[fn].Name}
	g.nodes[fn] = n
	g.NodeSeq = append(g.NodeSeq, n)
	return n
}

// Edge returns the edge for (site, target), or nil.
func (g *Graph) Edge(site prog.SiteID, target prog.FuncID) *Edge {
	return g.edges[EdgeKey{site, target}]
}

// EdgesAt returns all edges out of the given call site.
func (g *Graph) EdgesAt(site prog.SiteID) []*Edge { return g.bySite[site] }

// AddEdge ensures the (site, target) edge exists and returns it together
// with whether it was newly inserted. Caller and target nodes are added
// as needed.
func (g *Graph) AddEdge(site prog.SiteID, target prog.FuncID) (*Edge, bool) {
	key := EdgeKey{site, target}
	if e, ok := g.edges[key]; ok {
		return e, false
	}
	s := g.p.Site(site)
	caller := g.AddNode(s.Caller)
	tnode := g.AddNode(target)
	e := &Edge{
		Seq:    len(g.Edges),
		Site:   site,
		Caller: s.Caller,
		Target: target,
		Kind:   s.Kind,
	}
	g.edges[key] = e
	g.Edges = append(g.Edges, e)
	g.bySite[site] = append(g.bySite[site], e)
	caller.Out = append(caller.Out, e)
	tnode.In = append(tnode.In, e)
	return e, true
}

// GetEdge implements the decoder's getEdge(cs, ifun) lookup: the edge at
// call site cs that ends at ifun (Algorithm 1, line 13). Returns nil if
// no such edge exists.
func (g *Graph) GetEdge(cs prog.SiteID, ifun prog.FuncID) *Edge {
	return g.Edge(cs, ifun)
}

// dfsColor values for ClassifyBackEdges.
const (
	white = iota // unvisited
	gray         // on the current DFS path
	black        // finished
)

// ClassifyBackEdges runs an iterative depth-first search from the entry
// node and sets Edge.Back on every edge whose target is on the current
// DFS path. Removing the back edges leaves an acyclic graph. Edges from
// nodes unreachable from the entry are also marked Back so that the
// encoder never assigns them codes (they can only be reached through
// mechanisms the encoding cannot see).
//
// The classification is deterministic: children are visited in edge
// insertion order.
func (g *Graph) ClassifyBackEdges() {
	for _, e := range g.Edges {
		e.Back = false
	}
	color := make(map[prog.FuncID]uint8, len(g.NodeSeq))

	type frame struct {
		n    *Node
		next int
	}
	for _, root := range g.roots {
		rn := g.nodes[root]
		if rn == nil || color[root] != white {
			continue
		}
		stack := []frame{{n: rn}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.n.Out) {
				e := f.n.Out[f.next]
				f.next++
				switch color[e.Target] {
				case white:
					color[e.Target] = gray
					stack = append(stack, frame{n: g.nodes[e.Target]})
				case gray:
					e.Back = true
				}
			} else {
				color[f.n.Fn] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	// Unreachable nodes: mark their outgoing edges as back so they stay
	// out of the encoding.
	for _, n := range g.NodeSeq {
		if color[n.Fn] != black {
			for _, e := range n.Out {
				e.Back = true
			}
		}
	}
}

// TopoOrder returns the nodes reachable from entry in a topological
// order of the graph without back edges. ClassifyBackEdges must have run
// on the current graph. Nodes unreachable from the entry are appended at
// the end (they have no encoded in-edges and act as isolated roots).
func (g *Graph) TopoOrder() []*Node {
	indeg := make(map[prog.FuncID]int, len(g.NodeSeq))
	for _, n := range g.NodeSeq {
		indeg[n.Fn] = 0
	}
	for _, e := range g.Edges {
		if !e.Back {
			indeg[e.Target]++
		}
	}
	order := make([]*Node, 0, len(g.NodeSeq))
	// Deterministic Kahn: seed with zero-indegree nodes in insertion
	// order; the queue preserves discovery order.
	queue := make([]*Node, 0, 8)
	for _, n := range g.NodeSeq {
		if indeg[n.Fn] == 0 {
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range n.Out {
			if e.Back {
				continue
			}
			indeg[e.Target]--
			if indeg[e.Target] == 0 {
				queue = append(queue, g.nodes[e.Target])
			}
		}
	}
	if len(order) != len(g.NodeSeq) {
		// A cycle survived classification; that would be a bug in
		// ClassifyBackEdges. Fail loudly rather than mis-encode.
		panic(fmt.Sprintf("graph: topological sort covered %d of %d nodes", len(order), len(g.NodeSeq)))
	}
	return order
}

// Reachable returns the set of nodes reachable from any root via any
// edge.
func (g *Graph) Reachable() map[prog.FuncID]bool {
	seen := make(map[prog.FuncID]bool, len(g.NodeSeq))
	var stack []*Node
	for _, root := range g.roots {
		if n := g.nodes[root]; n != nil && !seen[root] {
			seen[root] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if !seen[e.Target] {
				seen[e.Target] = true
				stack = append(stack, g.nodes[e.Target])
			}
		}
	}
	return seen
}
