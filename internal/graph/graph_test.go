package graph

import (
	"testing"

	"dacce/internal/prog"
)

// buildProg returns a program with funcs A..F and every pairwise direct
// site so tests can add arbitrary edges.
func buildProg(t *testing.T, names ...string) (*prog.Program, map[string]prog.FuncID, map[[2]string]prog.SiteID) {
	t.Helper()
	b := prog.NewBuilder()
	fn := map[string]prog.FuncID{}
	for _, n := range names {
		fn[n] = b.Func(n)
	}
	sites := map[[2]string]prog.SiteID{}
	for _, c := range names {
		for _, tgt := range names {
			sites[[2]string{c, tgt}] = b.CallSite(fn[c], fn[tgt])
		}
	}
	b.Entry(fn[names[0]])
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p, fn, sites
}

func TestNewContainsOnlyEntry(t *testing.T) {
	p, fn, _ := buildProg(t, "A", "B")
	g := New(p)
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph has %d nodes %d edges, want 1/0", g.NumNodes(), g.NumEdges())
	}
	if g.Node(fn["A"]) == nil {
		t.Fatal("entry node missing")
	}
	if g.Node(fn["B"]) != nil {
		t.Fatal("non-entry node present in fresh graph")
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	p, fn, sites := buildProg(t, "A", "B")
	g := New(p)
	e1, new1 := g.AddEdge(sites[[2]string{"A", "B"}], fn["B"])
	e2, new2 := g.AddEdge(sites[[2]string{"A", "B"}], fn["B"])
	if !new1 || new2 {
		t.Fatalf("insertion flags = %v,%v want true,false", new1, new2)
	}
	if e1 != e2 {
		t.Fatal("duplicate AddEdge returned a different edge")
	}
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Fatalf("graph has %d edges %d nodes, want 1/2", g.NumEdges(), g.NumNodes())
	}
}

func TestIndirectSiteMultipleEdges(t *testing.T) {
	b := prog.NewBuilder()
	a := b.Func("A")
	e := b.Func("E")
	f := b.Func("F")
	s := b.IndirectSite(a, e, f)
	b.Entry(a)
	b.Leaf(a, 0)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	g := New(p)
	g.AddEdge(s, e)
	g.AddEdge(s, f)
	if got := len(g.EdgesAt(s)); got != 2 {
		t.Fatalf("EdgesAt = %d edges, want 2", got)
	}
	if g.GetEdge(s, e) == nil || g.GetEdge(s, f) == nil {
		t.Fatal("GetEdge missed an indirect edge")
	}
	if g.GetEdge(s, a) != nil {
		t.Fatal("GetEdge invented an edge")
	}
}

func addPath(t *testing.T, g *Graph, fn map[string]prog.FuncID, sites map[[2]string]prog.SiteID, pairs ...[2]string) {
	t.Helper()
	for _, pr := range pairs {
		g.AddEdge(sites[pr], fn[pr[1]])
	}
}

func TestBackEdgeClassification(t *testing.T) {
	p, fn, sites := buildProg(t, "A", "B", "C")
	g := New(p)
	// A→B→C plus C→A (cycle) and B→B (self loop).
	addPath(t, g, fn, sites, [2]string{"A", "B"}, [2]string{"B", "C"}, [2]string{"C", "A"}, [2]string{"B", "B"})
	g.ClassifyBackEdges()
	if !g.Edge(sites[[2]string{"C", "A"}], fn["A"]).Back {
		t.Error("C→A not classified as back edge")
	}
	if !g.Edge(sites[[2]string{"B", "B"}], fn["B"]).Back {
		t.Error("self loop not classified as back edge")
	}
	if g.Edge(sites[[2]string{"A", "B"}], fn["B"]).Back {
		t.Error("A→B wrongly classified as back edge")
	}
	if g.Edge(sites[[2]string{"B", "C"}], fn["C"]).Back {
		t.Error("B→C wrongly classified as back edge")
	}
}

func TestCrossEdgeNotBack(t *testing.T) {
	p, fn, sites := buildProg(t, "A", "B", "C", "D")
	g := New(p)
	// Diamond: A→B, A→C, B→D, C→D. No cycles at all.
	addPath(t, g, fn, sites,
		[2]string{"A", "B"}, [2]string{"A", "C"}, [2]string{"B", "D"}, [2]string{"C", "D"})
	g.ClassifyBackEdges()
	for _, e := range g.Edges {
		if e.Back {
			t.Errorf("acyclic edge %v classified as back", e)
		}
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	p, fn, sites := buildProg(t, "A", "B", "C", "D", "E")
	g := New(p)
	addPath(t, g, fn, sites,
		[2]string{"A", "B"}, [2]string{"A", "C"}, [2]string{"B", "D"},
		[2]string{"C", "D"}, [2]string{"D", "E"}, [2]string{"E", "B"}) // E→B back
	g.ClassifyBackEdges()
	order := g.TopoOrder()
	pos := map[prog.FuncID]int{}
	for i, n := range order {
		pos[n.Fn] = i
	}
	if len(order) != g.NumNodes() {
		t.Fatalf("topo covered %d of %d nodes", len(order), g.NumNodes())
	}
	for _, e := range g.Edges {
		if e.Back {
			continue
		}
		if pos[e.Caller] >= pos[e.Target] {
			t.Errorf("topo order violates edge %v", e)
		}
	}
}

func TestTopoDeterministic(t *testing.T) {
	mk := func() []prog.FuncID {
		p, fn, sites := buildProg(t, "A", "B", "C", "D")
		g := New(p)
		addPath(t, g, fn, sites,
			[2]string{"A", "C"}, [2]string{"A", "B"}, [2]string{"C", "D"}, [2]string{"B", "D"})
		g.ClassifyBackEdges()
		var ids []prog.FuncID
		for _, n := range g.TopoOrder() {
			ids = append(ids, n.Fn)
		}
		return ids
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("topo order not deterministic: %v vs %v", a, b)
		}
	}
}

func TestReachable(t *testing.T) {
	p, fn, sites := buildProg(t, "A", "B", "C")
	g := New(p)
	g.AddEdge(sites[[2]string{"A", "B"}], fn["B"])
	g.AddNode(fn["C"]) // present but disconnected
	r := g.Reachable()
	if !r[fn["A"]] || !r[fn["B"]] {
		t.Error("reachable set missing connected nodes")
	}
	if r[fn["C"]] {
		t.Error("disconnected node reported reachable")
	}
}

func TestUnreachableOutEdgesMarkedBack(t *testing.T) {
	p, fn, sites := buildProg(t, "A", "B", "C", "D")
	g := New(p)
	g.AddEdge(sites[[2]string{"A", "B"}], fn["B"])
	// C→D exists but C is unreachable from A.
	g.AddEdge(sites[[2]string{"C", "D"}], fn["D"])
	g.ClassifyBackEdges()
	if !g.Edge(sites[[2]string{"C", "D"}], fn["D"]).Back {
		t.Error("edge from unreachable node not excluded from encoding")
	}
	// TopoOrder must still terminate and cover everything.
	if got := len(g.TopoOrder()); got != g.NumNodes() {
		t.Errorf("topo covered %d of %d nodes", got, g.NumNodes())
	}
}

func TestAddRootMakesSpawnedReachable(t *testing.T) {
	p, fn, sites := buildProg(t, "A", "W", "B")
	g := New(p)
	// W is a thread entry: it calls B but nothing calls W.
	g.AddEdge(sites[[2]string{"W", "B"}], fn["B"])
	g.ClassifyBackEdges()
	if !g.Edge(sites[[2]string{"W", "B"}], fn["B"]).Back {
		t.Fatal("edge from unrooted spawn entry should be excluded")
	}
	g.AddRoot(fn["W"])
	g.ClassifyBackEdges()
	if g.Edge(sites[[2]string{"W", "B"}], fn["B"]).Back {
		t.Error("edge from registered thread root still excluded")
	}
	if got := len(g.Roots()); got != 2 {
		t.Errorf("roots = %d, want 2", got)
	}
	// Idempotent.
	g.AddRoot(fn["W"])
	if got := len(g.Roots()); got != 2 {
		t.Errorf("duplicate AddRoot changed roots to %d", got)
	}
	if !g.Reachable()[fn["B"]] {
		t.Error("B not reachable via thread root")
	}
}
