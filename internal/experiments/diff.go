package experiments

import (
	"fmt"
	"io"

	"dacce/internal/difftest"
	"dacce/internal/stats"
	"dacce/internal/workload"
)

// DifferentialRow summarizes one benchmark's pass through the
// cross-encoder differential oracle.
type DifferentialRow struct {
	Name        string
	Events      int
	Queries     int
	Epochs      uint32
	Divergences int
}

// DifferentialTable runs the differential oracle over the named Table 1
// benchmarks (all of them when names is empty) with epoch forcing on,
// and renders a summary table to w (nil skips rendering). cfg.Calls
// overrides each profile's call budget — the CI short-budget job uses a
// small override — and cfg.Sink receives the replays' telemetry,
// including an EvDivergence per disagreement. Any divergence is
// reported in the rows, not as an error; the caller decides whether it
// is fatal.
func DifferentialTable(names []string, cfg RunConfig, w io.Writer) ([]DifferentialRow, error) {
	if len(names) == 0 {
		names = workload.Names()
	}
	sampleEvery := cfg.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 64
	}
	var rows []DifferentialRow
	for _, name := range names {
		pr, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		if cfg.Calls > 0 {
			pr.TotalCalls = cfg.Calls
		}
		spec := difftest.Spec{Profile: pr, SampleEvery: sampleEvery, ForceEpochEvery: 32}
		res, err := difftest.Run(spec, difftest.Options{Sink: cfg.Sink})
		if err != nil {
			return nil, fmt.Errorf("experiments: differential %s: %w", name, err)
		}
		divs := len(res.Divergences) + res.Dropped
		rows = append(rows, DifferentialRow{
			Name:        name,
			Events:      res.Events,
			Queries:     res.Samples,
			Epochs:      res.Epochs,
			Divergences: divs,
		})
	}
	if w != nil {
		t := stats.NewTable("benchmark", "events", "queries", "epochs", "divergences")
		for _, r := range rows {
			t.Row(r.Name,
				fmt.Sprintf("%d", r.Events),
				fmt.Sprintf("%d", r.Queries),
				fmt.Sprintf("%d", r.Epochs),
				fmt.Sprintf("%d", r.Divergences),
			)
		}
		if err := t.Write(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}
