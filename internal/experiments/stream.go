package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dacce/internal/ccdag"
	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/workload"
)

// StreamConfig parameterizes the streaming-decode firehose suite: a
// corpus of real captures is taken from a steady workload run, then
// replayed through the decoder far past saturation — the regime a
// long-lived profiler or decode service lives in, where every context
// has been seen before and the question is what a repeat decode costs.
// The suite prices the slice path (one materialized []ContextFrame per
// decode) against the node path (one interned *ccdag.Node per decode),
// and the DAG's two structural claims: a warm re-decode allocates
// nothing, and context equality is one pointer compare.
type StreamConfig struct {
	// Samples is the firehose length — total decodes per timed pass
	// (default 1,000,000).
	Samples int64
	// Threads is the corpus workload's thread count (default 4).
	Threads int
	// CallsPerThread is the corpus workload's call budget per thread
	// (default 150k).
	CallsPerThread int64
	// SampleEvery is the corpus sampling period in calls (default 16 —
	// dense, so the capture corpus is large and varied).
	SampleEvery int64
	// EqualityDepth is the context depth for the equality microbench
	// (default 64).
	EqualityDepth int
	// EqualityPairs is how many context pairs the equality bench sweeps
	// per measured pass (default 256).
	EqualityPairs int
}

func (c *StreamConfig) fill() {
	if c.Samples == 0 {
		c.Samples = 1_000_000
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.CallsPerThread == 0 {
		c.CallsPerThread = 150_000
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	if c.EqualityDepth == 0 {
		c.EqualityDepth = 64
	}
	if c.EqualityPairs == 0 {
		c.EqualityPairs = 256
	}
}

// StreamReport is the suite's result, serialized as BENCH_dag.json.
type StreamReport struct {
	Config     StreamConfig `json:"config"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`

	// CorpusCaptures is how many real captures the workload run
	// retained; the firehose cycles over them.
	CorpusCaptures int `json:"corpus_captures"`
	// Decoded is the total decodes each timed pass performed (≥
	// Config.Samples).
	Decoded int64 `json:"decoded"`

	// SliceNsPerSample / NodeNsPerSample are the per-decode costs of
	// the two paths over the same capture stream, DAG warm.
	SliceNsPerSample float64 `json:"slice_ns_per_sample"`
	NodeNsPerSample  float64 `json:"node_ns_per_sample"`
	// NodeSpeedupVsSlice is SliceNsPerSample / NodeNsPerSample.
	NodeSpeedupVsSlice float64 `json:"node_speedup_vs_slice"`

	// AllocsPerSampleWarm is heap allocations per decode on the warm
	// node pass — the suite's 0-alloc claim, measured over the whole
	// firehose.
	AllocsPerSampleWarm float64 `json:"allocs_per_sample_warm"`

	// DAG shape after the firehose.
	DAGNodes         int64   `json:"dag_nodes"`
	DistinctContexts int64   `json:"distinct_contexts"`
	InternHitRate    float64 `json:"intern_hit_rate"`
	DAGBytesEstimate int64   `json:"dag_bytes_estimate"`
	// BytesPerDistinctContext is DAGBytesEstimate / DistinctContexts —
	// what suffix sharing brings the marginal cost of remembering a
	// context down to.
	BytesPerDistinctContext float64 `json:"bytes_per_distinct_context"`

	// Equality microbench: pointer compare of interned nodes vs
	// DiffContexts over equal depth-EqualityDepth slice contexts.
	EqualityDepth        int     `json:"equality_depth"`
	PointerEqNsPerOp     float64 `json:"pointer_eq_ns_per_op"`
	DiffContextsNsPerOp  float64 `json:"diff_contexts_ns_per_op"`
	PointerEqSpeedup     float64 `json:"pointer_eq_speedup"`
	EqualityChecksPerRun int64   `json:"equality_checks_per_run"`
}

// Stream runs the firehose suite and returns the report.
func Stream(cfg StreamConfig) (*StreamReport, error) {
	cfg.fill()
	rep := &StreamReport{
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// Corpus: a real steady-workload run with samples retained.
	w, err := workload.Build(steadyProfile(cfg.Threads, cfg.CallsPerThread))
	if err != nil {
		return nil, err
	}
	d := core.New(w.P, core.Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: cfg.SampleEvery})
	rs, err := m.Run()
	if err != nil {
		return nil, err
	}
	captures := make([]*core.Capture, 0, len(rs.Samples))
	for _, s := range rs.Samples {
		captures = append(captures, s.Capture.(*core.Capture))
	}
	if len(captures) == 0 {
		return nil, fmt.Errorf("stream: corpus run retained no captures")
	}
	rep.CorpusCaptures = len(captures)

	// Warm pass: intern every capture once (unmeasured — this is the
	// DAG's build cost, paid once per distinct context), verify the node
	// materialization against the slice decode, and count distinct
	// contexts by their canonical leaf.
	distinct := make(map[*ccdag.Node]struct{}, len(captures))
	for i, c := range captures {
		n, err := d.DecodeNode(c)
		if err != nil {
			return nil, fmt.Errorf("stream: warm decode of capture %d: %w", i, err)
		}
		ctx, err := d.Decode(c)
		if err != nil {
			return nil, err
		}
		if diff := core.DiffContexts(core.NodeContext(n), ctx); diff != "" {
			return nil, fmt.Errorf("stream: capture %d node/slice divergence: %s", i, diff)
		}
		distinct[n] = struct{}{}
	}
	rep.DistinctContexts = int64(len(distinct))

	// Timed slice pass: cycle the corpus to the firehose length.
	rep.Decoded = cfg.Samples
	start := time.Now()
	for i := int64(0); i < cfg.Samples; i++ {
		if _, err := d.Decode(captures[i%int64(len(captures))]); err != nil {
			return nil, err
		}
	}
	rep.SliceNsPerSample = float64(time.Since(start).Nanoseconds()) / float64(cfg.Samples)

	// Timed node pass over the same stream, with the allocation meter
	// around it. The DAG is warm: every decode must resolve to existing
	// nodes without touching the heap.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start = time.Now()
	for i := int64(0); i < cfg.Samples; i++ {
		if _, err := d.DecodeNode(captures[i%int64(len(captures))]); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	rep.NodeNsPerSample = float64(elapsed.Nanoseconds()) / float64(cfg.Samples)
	rep.AllocsPerSampleWarm = float64(after.Mallocs-before.Mallocs) / float64(cfg.Samples)
	if rep.NodeNsPerSample > 0 {
		rep.NodeSpeedupVsSlice = rep.SliceNsPerSample / rep.NodeNsPerSample
	}

	st := d.DAG().Stats()
	rep.DAGNodes = st.Nodes
	rep.InternHitRate = st.HitRate()
	rep.DAGBytesEstimate = st.BytesEstimate
	if rep.DistinctContexts > 0 {
		rep.BytesPerDistinctContext = float64(st.BytesEstimate) / float64(rep.DistinctContexts)
	}

	rep.EqualityDepth = cfg.EqualityDepth
	rep.PointerEqNsPerOp, rep.DiffContextsNsPerOp, rep.EqualityChecksPerRun =
		equalityBench(cfg.EqualityDepth, cfg.EqualityPairs)
	if rep.PointerEqNsPerOp > 0 {
		rep.PointerEqSpeedup = rep.DiffContextsNsPerOp / rep.PointerEqNsPerOp
	}
	return rep, nil
}

// equalityBench prices the same question both ways: "are these two
// contexts the same?" for equal depth-`depth` contexts, asked of
// interned nodes (one pointer compare) and of slice contexts through
// DiffContexts (the helper every cross-encoder comparison in the
// repository uses). Each side sweeps `pairs` independent pairs per
// measured pass so neither comparison can be hoisted out of its loop;
// both sides answer every pair affirmatively, keeping the work
// identical in meaning.
func equalityBench(depth, pairs int) (ptrNs, diffNs float64, checks int64) {
	dag := ccdag.New()
	nodeA := make([]*ccdag.Node, pairs)
	nodeB := make([]*ccdag.Node, pairs)
	ctxA := make([]core.Context, pairs)
	ctxB := make([]core.Context, pairs)
	for i := 0; i < pairs; i++ {
		// Each pair is its own depth-long chain; A and B intern the
		// same frames, so canonicality makes them one pointer. The
		// slice twins live in separate backing arrays.
		var n *ccdag.Node
		for f := 0; f < depth; f++ {
			n = dag.Intern(n, prog.SiteID(i), prog.FuncID(f))
		}
		nodeA[i] = n
		var m *ccdag.Node
		for f := 0; f < depth; f++ {
			m = dag.Intern(m, prog.SiteID(i), prog.FuncID(f))
		}
		nodeB[i] = m
		ctxA[i] = core.NodeContext(n)
		ctxB[i] = core.NodeContext(m)
	}

	// Calibrate pass counts so each side runs long enough to time
	// reliably; the pointer side is orders of magnitude faster, so it
	// gets proportionally more passes.
	const (
		ptrPasses  = 1 << 14
		diffPasses = 1 << 8
	)
	eq := 0
	start := time.Now()
	for p := 0; p < ptrPasses; p++ {
		for i := 0; i < pairs; i++ {
			if nodeA[i] == nodeB[i] {
				eq++
			}
		}
	}
	ptrNs = float64(time.Since(start).Nanoseconds()) / float64(ptrPasses*pairs)
	if eq != ptrPasses*pairs {
		panic("equalityBench: interned pairs are not pointer-equal")
	}

	eq = 0
	start = time.Now()
	for p := 0; p < diffPasses; p++ {
		for i := 0; i < pairs; i++ {
			if core.DiffContexts(ctxA[i], ctxB[i]) == "" {
				eq++
			}
		}
	}
	diffNs = float64(time.Since(start).Nanoseconds()) / float64(diffPasses*pairs)
	if eq != diffPasses*pairs {
		panic("equalityBench: slice pairs are not DiffContexts-equal")
	}
	return ptrNs, diffNs, int64((ptrPasses + diffPasses) * pairs)
}
