package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/telemetry"
	"dacce/internal/workload"
)

// AdversarialConfig parameterizes the adversarial-workload suite
// (ISSUE 7): the mega-indirect dispatch crossover sweep, the 64-thread
// module/goroutine churn run, and the recursion-torture decode-latency
// probe. Each leg pushes one mechanism the paper's design singles out —
// Fig. 4's inline-chain-vs-hash dispatch choice, §5.1's dlopen
// lifecycle, and Fig. 5e's ccStack compression — far past the regimes
// the Table 1 profiles reach.
type AdversarialConfig struct {
	// Targets lists the mega-indirect fan-outs of the crossover sweep
	// (default 2, 4, 8, 16, 64, 256, 1024). Each count is measured
	// twice: once with the inline compare chain forced and once with
	// hash dispatch forced, so the crossover point is read directly
	// from the modeled dispatch cost.
	Targets []int
	// CrossoverCalls is the call budget per crossover run (default
	// 120k).
	CrossoverCalls int64
	// ChurnThreads is the thread count of the churn leg (default 64 —
	// the ISSUE's goroutine-storm floor).
	ChurnThreads int
	// ChurnCallsPerThread is each churn thread's budget (default 6k).
	ChurnCallsPerThread int64
	// TortureDepth is the recursion-torture stack depth (default 100k,
	// the ISSUE's 1e5 floor).
	TortureDepth int
	// TortureDecodes caps how many sampled captures the decode-latency
	// probe decodes (default 400; contexts are ~TortureDepth frames
	// deep, so decoding every sample would dominate the suite).
	TortureDecodes int
	// SampleEvery is the sampling period of the churn and torture legs
	// (default 64).
	SampleEvery int64
}

func (c *AdversarialConfig) fill() {
	if len(c.Targets) == 0 {
		c.Targets = []int{2, 4, 8, 16, 64, 256, 1024}
	}
	if c.CrossoverCalls == 0 {
		c.CrossoverCalls = 120_000
	}
	if c.ChurnThreads == 0 {
		c.ChurnThreads = 64
	}
	if c.ChurnCallsPerThread == 0 {
		c.ChurnCallsPerThread = 6_000
	}
	if c.TortureDepth == 0 {
		c.TortureDepth = 100_000
	}
	if c.TortureDecodes == 0 {
		c.TortureDecodes = 400
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 64
	}
}

// CrossoverRow is one (targets, dispatch mode) cell of the Fig. 4
// sweep.
type CrossoverRow struct {
	Targets int `json:"targets"`
	// Mode is "chain" (inline compare chain forced) or "hash" (hash
	// dispatch forced).
	Mode  string `json:"mode"`
	Calls int64  `json:"calls"`
	// ComparesPerCall and ProbesPerCall are the dispatch instruction
	// counters normalized per call.
	ComparesPerCall float64 `json:"compares_per_call"`
	ProbesPerCall   float64 `json:"probes_per_call"`
	// InstrCostPerCall is the modeled instrumentation cost per call —
	// the quantity whose chain/hash ordering flips at the crossover.
	InstrCostPerCall float64 `json:"instr_cost_per_call"`
	HandlerTraps     int64   `json:"handler_traps"`
	Epochs           uint32  `json:"epochs"`
}

// ChurnReport summarizes the 64-thread module/goroutine churn leg.
type ChurnReport struct {
	Threads       int     `json:"threads"`
	SpawnedTotal  int     `json:"spawned_total"`
	Calls         int64   `json:"calls"`
	ModuleLoads   int64   `json:"module_loads"`
	ModuleUnloads int64   `json:"module_unloads"`
	HandlerTraps  int64   `json:"handler_traps"`
	TrapsPerSec   float64 `json:"traps_per_sec"`
	Epochs        uint32  `json:"epochs"`
	PauseP50Us    float64 `json:"pause_p50_us"`
	PauseP99Us    float64 `json:"pause_p99_us"`
	PauseMaxUs    float64 `json:"pause_max_us"`
}

// TortureReport summarizes the recursion-torture decode-latency probe.
type TortureReport struct {
	Depth    int   `json:"depth"`
	Calls    int64 `json:"calls"`
	MaxDepth int   `json:"max_sampled_depth"`
	// CcStackMax is the deepest sampled ccStack — with Fig. 5e
	// compression it stays orders of magnitude below Depth.
	CcStackMax int `json:"ccstack_max"`
	Decodes    int `json:"decodes"`
	// DecodeP50Us/P99Us/MaxUs are wall-clock decode latencies of
	// sampled captures (deep contexts decode linearly in their depth).
	DecodeP50Us float64 `json:"decode_p50_us"`
	DecodeP99Us float64 `json:"decode_p99_us"`
	DecodeMaxUs float64 `json:"decode_max_us"`
	// Mismatches counts decoded contexts that disagreed with the shadow
	// stack — the suite doubles as an oracle gate and this must be 0.
	Mismatches int `json:"mismatches"`
}

// AdversarialReport is the suite's result, serialized as
// BENCH_adversarial.json.
type AdversarialReport struct {
	Config     AdversarialConfig `json:"config"`
	GoMaxProcs int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	Crossover  []CrossoverRow    `json:"crossover"`
	// CrossoverTargets is the smallest swept target count at which hash
	// dispatch beats the inline chain on modeled cost (0 if the chain
	// wins everywhere swept).
	CrossoverTargets int            `json:"crossover_targets"`
	Churn            *ChurnReport   `json:"churn"`
	Torture          *TortureReport `json:"torture"`
}

// crossoverProfile isolates mega-indirect dispatch: a tiny executed
// core so the mega sites carry nearly all call volume.
func crossoverProfile(targets int, calls int64) workload.Profile {
	return workload.Profile{
		Name:        fmt.Sprintf("adv-crossover-%d", targets),
		Seed:        0xADE1,
		ExecFuncs:   12,
		Layers:      3,
		Threads:     1,
		TotalCalls:  calls,
		Phases:      1,
		MegaSites:   4,
		MegaTargets: targets,
	}
}

// Adversarial runs the adversarial-workload suite and returns the
// report.
func Adversarial(cfg AdversarialConfig) (*AdversarialReport, error) {
	cfg.fill()
	rep := &AdversarialReport{
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// Leg 1: inline-chain vs hash dispatch crossover (Fig. 4). The
	// encoder's InlineThreshold is forced far out (chain mode) or down
	// to one (hash mode), so each row measures one dispatch strategy
	// across the whole fan-out sweep.
	costAt := map[string]map[int]float64{"chain": {}, "hash": {}}
	for _, n := range cfg.Targets {
		for _, mode := range []string{"chain", "hash"} {
			thr := 1 << 20 // chain: never promote to hash
			if mode == "hash" {
				thr = 1 // hash: promote past a single target
			}
			w, err := workload.Build(crossoverProfile(n, cfg.CrossoverCalls))
			if err != nil {
				return nil, err
			}
			d := core.New(w.P, core.Options{InlineThreshold: thr})
			m := w.NewMachine(d, machine.Config{SampleEvery: cfg.SampleEvery, DropSamples: true})
			rs, err := m.Run()
			if err != nil {
				return nil, err
			}
			row := CrossoverRow{
				Targets:          n,
				Mode:             mode,
				Calls:            rs.C.Calls,
				ComparesPerCall:  float64(rs.C.Compares) / float64(rs.C.Calls),
				ProbesPerCall:    float64(rs.C.HashProbes) / float64(rs.C.Calls),
				InstrCostPerCall: float64(rs.C.InstrCost) / float64(rs.C.Calls),
				HandlerTraps:     rs.C.HandlerTraps,
				Epochs:           d.Epoch(),
			}
			rep.Crossover = append(rep.Crossover, row)
			costAt[mode][n] = row.InstrCostPerCall
		}
	}
	for _, n := range cfg.Targets {
		if costAt["hash"][n] < costAt["chain"][n] {
			rep.CrossoverTargets = n
			break
		}
	}

	// Leg 2: module churn under a goroutine storm. The main thread
	// cycles dlopen/dlclose windows (each unload re-traps the module's
	// sites, each reload re-discovers them) while every root sheds
	// ephemeral threads, so trap handling, stub publication and spawn
	// contexts are all churning at once.
	churnPr := workload.Profile{
		Name:         "adv-churn",
		Seed:         0xADE2,
		ExecFuncs:    96,
		Layers:       6,
		Threads:      cfg.ChurnThreads,
		TotalCalls:   cfg.ChurnCallsPerThread * int64(cfg.ChurnThreads),
		Phases:       2,
		ChurnModules: 8,
		ChurnFuncs:   4,
		ChurnEvery:   400,
		SpawnChurn:   16,
		SpawnRate:    0.05,
	}
	w, err := workload.Build(churnPr)
	if err != nil {
		return nil, err
	}
	d := core.New(w.P, core.Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: cfg.SampleEvery, DropSamples: true})
	start := time.Now()
	rs, err := m.Run()
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	ph := d.PauseHist().Snapshot()
	rep.Churn = &ChurnReport{
		Threads:       cfg.ChurnThreads,
		SpawnedTotal:  rs.Threads,
		Calls:         rs.C.Calls,
		ModuleLoads:   rs.C.ModuleLoads,
		ModuleUnloads: rs.C.ModuleUnloads,
		HandlerTraps:  rs.C.HandlerTraps,
		TrapsPerSec:   float64(rs.C.HandlerTraps) / elapsed.Seconds(),
		Epochs:        d.Epoch(),
		PauseP50Us:    float64(ph.P50) / 1e3,
		PauseP99Us:    float64(ph.P99) / 1e3,
		PauseMaxUs:    float64(ph.Max) / 1e3,
	}

	// Leg 3: recursion torture. One descent reaches TortureDepth
	// frames; sampled captures are decoded afterwards against the
	// shadow stack, timing each decode.
	tortPr := workload.Profile{
		Name:         "adv-torture",
		Seed:         0xADE3,
		ExecFuncs:    12,
		Layers:       3,
		Threads:      1,
		TotalCalls:   int64(cfg.TortureDepth) * 6,
		Phases:       1,
		TortureDepth: cfg.TortureDepth,
	}
	w, err = workload.Build(tortPr)
	if err != nil {
		return nil, err
	}
	d = core.New(w.P, core.Options{})
	m = w.NewMachine(d, machine.Config{SampleEvery: cfg.SampleEvery})
	rs, err = m.Run()
	if err != nil {
		return nil, err
	}
	tr := &TortureReport{Depth: cfg.TortureDepth, Calls: rs.C.Calls}
	samples := rs.Samples
	stride := 1
	if len(samples) > cfg.TortureDecodes {
		stride = len(samples) / cfg.TortureDecodes
	}
	hist := telemetry.NewHistogram(telemetry.DurationBuckets())
	for i := 0; i < len(samples); i += stride {
		s := samples[i]
		if len(s.Shadow) > tr.MaxDepth {
			tr.MaxDepth = len(s.Shadow)
		}
		c, ok := s.Capture.(*core.Capture)
		if !ok {
			continue
		}
		if len(c.CC) > tr.CcStackMax {
			tr.CcStackMax = len(c.CC)
		}
		t0 := time.Now()
		ctx, err := d.Decode(c)
		hist.ObserveDuration(time.Since(t0))
		tr.Decodes++
		if err != nil {
			tr.Mismatches++
			continue
		}
		want := core.ShadowContext(nil, s.Shadow)
		if msg := core.DiffContexts(ctx, want); msg != "" {
			tr.Mismatches++
		}
	}
	ds := hist.Snapshot()
	tr.DecodeP50Us = float64(ds.P50) / 1e3
	tr.DecodeP99Us = float64(ds.P99) / 1e3
	tr.DecodeMaxUs = float64(ds.Max) / 1e3
	rep.Torture = tr
	return rep, nil
}
