package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestDifferentialTableClean runs two calibrated benchmarks through the
// differential oracle at a short call budget and expects full
// cross-encoder agreement plus a rendered summary row per benchmark.
func TestDifferentialTableClean(t *testing.T) {
	var buf bytes.Buffer
	rows, err := DifferentialTable([]string{"429.mcf", "401.bzip2"}, RunConfig{Calls: 6_000, SampleEvery: 13}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Divergences != 0 {
			t.Errorf("%s: %d divergences", r.Name, r.Divergences)
		}
		if r.Queries == 0 {
			t.Errorf("%s: no query points", r.Name)
		}
		if r.Events == 0 {
			t.Errorf("%s: empty trace", r.Name)
		}
		if !strings.Contains(buf.String(), r.Name) {
			t.Errorf("rendered table missing row for %s", r.Name)
		}
	}
}

// TestDifferentialTableUnknown rejects unknown benchmark names.
func TestDifferentialTableUnknown(t *testing.T) {
	if _, err := DifferentialTable([]string{"no-such-bench"}, RunConfig{Calls: 1000}, nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
