package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"

	"dacce/internal/ccprof"
	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/persist"
	"dacce/internal/server"
	"dacce/internal/workload"
)

// EvictConfig parameterizes the reclamation suite: the regime a
// week-long deployment lives in, where epochs keep retiring and the
// question is whether the decode plane's memory tracks the live set or
// the history. The suite exercises both planes the PR-10 reclamation
// covers — the encoder's context DAG (generation collection after each
// pass, driven by the capture-refcount low-water epoch) and dacced's
// epoch-bucketed memo plus per-tenant DAG (RetireEpoch) — and re-checks
// the warm node decode's 0-alloc claim with collection enabled.
type EvictConfig struct {
	// Rounds is how many epoch retirements each plane performs
	// (default 120; the acceptance floor is 100).
	Rounds int
	// Threads is the churn workload's thread count (default 2).
	Threads int
	// CallsPerRound is the churn workload's call budget per encoder
	// round (default 20k).
	CallsPerRound int64
	// SampleEvery is the sampling period in calls (default 5 — dense,
	// so every round interns fresh chains).
	SampleEvery int64
	// DecodeBatch is how many captures dacced decodes per round before
	// retiring the epoch (default 512).
	DecodeBatch int
	// WarmDecodes sizes the final 0-alloc warm-decode measurement
	// (default 200k).
	WarmDecodes int64
}

func (c *EvictConfig) fill() {
	if c.Rounds == 0 {
		c.Rounds = 120
	}
	if c.Threads == 0 {
		c.Threads = 2
	}
	if c.CallsPerRound == 0 {
		c.CallsPerRound = 20_000
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 5
	}
	if c.DecodeBatch == 0 {
		c.DecodeBatch = 512
	}
	if c.WarmDecodes == 0 {
		c.WarmDecodes = 200_000
	}
}

// EvictReport is the suite's result, serialized as BENCH_evict.json.
// "Early" figures are taken a quarter of the way in — past warm-up,
// long before the end — and "late" figures are the maximum over the
// remaining rounds, so Flat* compare steady state against steady state:
// a leak shows up as late ≫ early. The early/late series sample the
// pre-collection working set (live chains plus at most one round of
// garbage); if reclamation regressed, garbage would accumulate across
// rounds and the late peak would grow with history. Final figures are
// post-collection.
type EvictReport struct {
	Config     EvictConfig `json:"config"`
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`

	// Encoder plane: one long-lived DACCE, one churn run + forced pass
	// (= one epoch retirement) per round, streaming profiler attached
	// in node mode so shard pins exercise ReleaseNodes.
	EncoderRounds        int   `json:"encoder_rounds"`
	EncoderDAGNodesEarly int64 `json:"encoder_dag_nodes_early"`
	EncoderDAGNodesLate  int64 `json:"encoder_dag_nodes_late_peak"`
	EncoderDAGNodesFinal int64 `json:"encoder_dag_nodes_final"`
	EncoderCollections   int   `json:"encoder_collections"`
	EncoderCollected     int64 `json:"encoder_collected"`
	EncoderFlat          bool  `json:"encoder_footprint_flat"`

	// Server plane: one dacced tenant, one decode batch + RetireEpoch
	// per round.
	ServerRounds        int   `json:"server_rounds"`
	ServerMemoPeak      int64 `json:"server_memo_peak"`
	ServerMemoFinal     int64 `json:"server_memo_final"`
	ServerMemoDropped   int64 `json:"server_memo_dropped_total"`
	ServerDAGNodesEarly int64 `json:"server_dag_nodes_early"`
	ServerDAGNodesLate  int64 `json:"server_dag_nodes_late_peak"`
	ServerDAGNodesFinal int64 `json:"server_dag_nodes_final"`
	ServerCollected     int64 `json:"server_dag_collected"`
	ServerFlat          bool  `json:"server_footprint_flat"`

	// Warm decode with collection machinery live: allocations per
	// DecodeNode over an already-interned corpus.
	WarmDecodes         int64   `json:"warm_decodes"`
	AllocsPerWarmDecode float64 `json:"allocs_per_warm_decode"`
}

// evictProfile is the churn workload: like the steady profile but
// smaller per round, so a hundred rounds stay cheap.
func evictProfile(threads int, calls int64) workload.Profile {
	return workload.Profile{
		Name:          fmt.Sprintf("evict-%dt", threads),
		Seed:          0xE71C7,
		ExecFuncs:     64,
		ExecEdges:     150,
		Layers:        8,
		IndirectSites: 3,
		ActualTargets: 3,
		RecSites:      2,
		RecProb:       0.3,
		RecStartProb:  0.05,
		Threads:       threads,
		TotalCalls:    calls,
		Phases:        1,
	}
}

// flat reports whether the late steady-state peak stays within a small
// factor of the early steady state — the "bounded by the live set, not
// the history" claim. The additive slack absorbs tiny absolute counts.
func flat(early, late int64) bool {
	return late <= 2*early+1024
}

// Evict runs the reclamation suite and returns the report.
func Evict(cfg EvictConfig) (*EvictReport, error) {
	cfg.fill()
	rep := &EvictReport{
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if err := evictEncoderPlane(cfg, rep); err != nil {
		return nil, err
	}
	if err := evictServerPlane(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// evictEncoderPlane churns one encoder through cfg.Rounds epoch
// retirements. Each round runs a freshly seeded machine (different
// sampled call paths, so new chains every round) with DropSamples on —
// captures release at sample time, the low-water epoch tracks the
// current epoch, and the forced pass after the run both retires the
// epoch and collects the DAG.
func evictEncoderPlane(cfg EvictConfig, rep *EvictReport) error {
	w, err := workload.Build(evictProfile(cfg.Threads, cfg.CallsPerRound))
	if err != nil {
		return err
	}
	d := core.New(w.P, core.Options{})
	d.SetContextObserver(ccprof.NewStreaming(w.P))

	quarter := cfg.Rounds / 4
	for r := 0; r < cfg.Rounds; r++ {
		m := w.NewMachine(d, machine.Config{
			SampleEvery: cfg.SampleEvery,
			Seed:        uint64(r + 1),
			DropSamples: true,
		})
		if _, err := m.Run(); err != nil {
			return err
		}
		// Sample before the forced pass: this is the round's working set
		// plus whatever earlier rounds failed to reclaim, so a broken
		// collector shows up here as unbounded growth.
		n := d.DAG().Len()
		switch {
		case r == quarter:
			rep.EncoderDAGNodesEarly = n
		case r > quarter && n > rep.EncoderDAGNodesLate:
			rep.EncoderDAGNodesLate = n
		}
		d.ForceReencode(nil)
	}
	rep.EncoderRounds = cfg.Rounds
	rep.EncoderDAGNodesFinal = d.DAG().Len()
	st := d.Stats()
	rep.EncoderCollections = st.DAGCollections
	rep.EncoderCollected = st.DAGCollected
	rep.EncoderFlat = flat(rep.EncoderDAGNodesEarly, rep.EncoderDAGNodesLate)

	// Warm-decode alloc check, collection machinery live: build a held
	// corpus (samples retained, epochs pinned), intern it once, then
	// measure repeat decodes.
	m := w.NewMachine(d, machine.Config{SampleEvery: cfg.SampleEvery})
	rs, err := m.Run()
	if err != nil {
		return err
	}
	if len(rs.Samples) == 0 {
		return fmt.Errorf("evict: corpus run retained no captures")
	}
	captures := make([]*core.Capture, 0, len(rs.Samples))
	for _, s := range rs.Samples {
		captures = append(captures, s.Capture.(*core.Capture))
	}
	for _, c := range captures {
		if _, err := d.DecodeNode(c); err != nil {
			return err
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := int64(0); i < cfg.WarmDecodes; i++ {
		if _, err := d.DecodeNode(captures[i%int64(len(captures))]); err != nil {
			return err
		}
	}
	runtime.ReadMemStats(&after)
	rep.WarmDecodes = cfg.WarmDecodes
	rep.AllocsPerWarmDecode = float64(after.Mallocs-before.Mallocs) / float64(cfg.WarmDecodes)
	return nil
}

// evictServerPlane drives a dacced tenant through cfg.Rounds epoch
// retirements over HTTP: each round decodes a batch (repopulating memo,
// DAG and profiler pins) and then retires through /v1/retire, the
// operator's "no captures this old can still arrive" signal.
func evictServerPlane(cfg EvictConfig, rep *EvictReport) error {
	// The tenant's snapshot comes from one longer multi-epoch run with
	// samples retained — those captures are the decode traffic.
	w, err := workload.Build(evictProfile(cfg.Threads, 8*cfg.CallsPerRound))
	if err != nil {
		return err
	}
	d := core.New(w.P, core.Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: cfg.SampleEvery})
	rs, err := m.Run()
	if err != nil {
		return err
	}
	captures := make([]*core.Capture, 0, len(rs.Samples))
	for _, s := range rs.Samples {
		captures = append(captures, s.Capture.(*core.Capture))
	}
	if len(captures) == 0 {
		return fmt.Errorf("evict: server corpus retained no captures")
	}
	snap, err := persist.Marshal(d.ExportState())
	if err != nil {
		return err
	}
	srv := server.New(server.Config{})
	if _, err := srv.Register("evict", snap); err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	maxEpoch := uint32(0)
	for _, c := range captures {
		if c.Epoch > maxEpoch {
			maxEpoch = c.Epoch
		}
	}
	tenantStats := func() (server.TenantStats, error) {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			return server.TenantStats{}, err
		}
		defer resp.Body.Close()
		var st server.Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return server.TenantStats{}, err
		}
		if len(st.Tenants) != 1 {
			return server.TenantStats{}, fmt.Errorf("evict: %d tenants in stats", len(st.Tenants))
		}
		return st.Tenants[0], nil
	}

	quarter := cfg.Rounds / 4
	pos := 0
	for r := 0; r < cfg.Rounds; r++ {
		batch := make([]*core.Capture, 0, cfg.DecodeBatch)
		for i := 0; i < cfg.DecodeBatch; i++ {
			batch = append(batch, captures[pos%len(captures)])
			pos++
		}
		body, err := json.Marshal(server.DecodeRequest{Tenant: "evict", Captures: batch})
		if err != nil {
			return err
		}
		resp, err := http.Post(ts.URL+"/v1/decode", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("evict: round %d decode: HTTP %d", r, resp.StatusCode)
		}

		// Pre-retirement stats: memo and DAG at their in-use peak for the
		// round. A reclamation regression accumulates here across rounds.
		st, err := tenantStats()
		if err != nil {
			return err
		}
		if st.MemoSize > rep.ServerMemoPeak {
			rep.ServerMemoPeak = st.MemoSize
		}
		switch {
		case r == quarter:
			rep.ServerDAGNodesEarly = st.DAGNodes
		case r > quarter && st.DAGNodes > rep.ServerDAGNodesLate:
			rep.ServerDAGNodesLate = st.DAGNodes
		}

		// Retire every epoch the snapshot has: production would retire
		// trailing epochs as the source process re-encodes; retiring the
		// whole range each round is the same O(buckets) operation and the
		// strictest flatness test — nothing may survive but what the next
		// batch re-creates.
		info, err := srv.RetireEpoch("evict", maxEpoch)
		if err != nil {
			return err
		}
		rep.ServerMemoDropped += info.MemoDropped
		rep.ServerCollected += info.Collect.Freed

		if r == cfg.Rounds-1 {
			st, err = tenantStats()
			if err != nil {
				return err
			}
			rep.ServerMemoFinal = st.MemoSize
			rep.ServerDAGNodesFinal = st.DAGNodes
		}
	}
	rep.ServerRounds = cfg.Rounds
	rep.ServerFlat = flat(rep.ServerDAGNodesEarly, rep.ServerDAGNodesLate) &&
		rep.ServerMemoFinal == 0
	return nil
}
