package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dacce/internal/ccprof"
	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/telemetry"
	"dacce/internal/workload"
)

// ObservabilityConfig parameterizes the observability-overhead suite:
// the steady-state workload measured three ways at each thread count —
// the plane off, the always-on streaming context profiler attached,
// and the full plane (profiler plus a metrics sink with latency
// histograms on the event stream). The headline number is the
// profiler-on steady-state throughput overhead, which must stay within
// a few percent for the plane to deserve "always-on".
type ObservabilityConfig struct {
	// Threads lists the thread counts to sweep (default 1, 2, 4).
	Threads []int
	// CallsPerThread is each thread's call budget (default 150k).
	CallsPerThread int64
	// SampleEvery is the sampling period in calls (default 64). The
	// plane's cost is per-sample — the profiler and the latency
	// histograms ride the sampling controller, never the encoded call
	// fast path — so overhead scales with the sampling rate; lower the
	// period to stress it.
	SampleEvery int64
	// Reps is how many steady runs each (threads, mode) cell gets; the
	// fastest is reported (default 3 — the suite measures the plane's
	// cost, not scheduler noise).
	Reps int
}

func (c *ObservabilityConfig) fill() {
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4}
	}
	if c.CallsPerThread == 0 {
		c.CallsPerThread = 150_000
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 64
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
}

// ObservabilityRow is one measured (thread count, mode) cell, steady
// phase only (each cell's encoder is warmed by an unmeasured run
// first).
type ObservabilityRow struct {
	Threads int `json:"threads"`
	// Mode is "off" (no observer, no sink), "ccprof" (streaming context
	// profiler attached), or "full" (profiler plus metrics sink with
	// latency histograms fed by the instrumented scheme).
	Mode          string  `json:"mode"`
	Calls         int64   `json:"calls"`
	CallsPerSec   float64 `json:"calls_per_sec"`
	AllocsPerCall float64 `json:"allocs_per_call"`
	// ContextsObserved counts sampled contexts the profiler aggregated
	// (zero in "off" mode).
	ContextsObserved int64 `json:"contexts_observed,omitempty"`
	// OverheadPct is the throughput cost versus the same thread count's
	// "off" row, in percent (negative values are run-to-run noise).
	OverheadPct float64 `json:"overhead_pct"`
}

// ObservabilityReport is the suite's result, serialized as
// BENCH_observability.json.
type ObservabilityReport struct {
	Config     ObservabilityConfig `json:"config"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Rows       []ObservabilityRow  `json:"rows"`
	// ProfilerOverheadPct maps a thread count to the "ccprof" mode's
	// overhead; MaxProfilerOverheadPct is the worst of them — the
	// number the ≤5% always-on budget is judged on.
	ProfilerOverheadPct    map[string]float64 `json:"profiler_overhead_pct"`
	MaxProfilerOverheadPct float64            `json:"max_profiler_overhead_pct"`
}

// Observability runs the overhead suite and returns the report.
func Observability(cfg ObservabilityConfig) (*ObservabilityReport, error) {
	cfg.fill()
	rep := &ObservabilityReport{
		Config:              cfg,
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		NumCPU:              runtime.NumCPU(),
		ProfilerOverheadPct: map[string]float64{},
	}
	for _, n := range cfg.Threads {
		w, err := workload.Build(steadyProfile(n, cfg.CallsPerThread))
		if err != nil {
			return nil, err
		}
		base := 0.0
		for _, mode := range []string{"off", "ccprof", "full"} {
			opt := core.Options{}
			var sprof *ccprof.Streaming
			var mts *telemetry.Metrics
			switch mode {
			case "ccprof":
				sprof = ccprof.NewStreaming(w.P)
				opt.ContextObserver = sprof
			case "full":
				sprof = ccprof.NewStreaming(w.P)
				opt.ContextObserver = sprof
				mts = telemetry.NewMetrics()
				opt.Sink = mts
			}
			d := core.New(w.P, opt)
			var scheme machine.Scheme = d
			if mts != nil {
				// The full plane also instruments the scheme, so the
				// metrics sink sees thread lifecycle and sampling events
				// with durations — the same wiring daccerun -metrics uses.
				scheme = machine.Instrument(d, mts)
			}
			newMachine := func() *machine.Machine {
				return w.NewMachine(scheme, machine.Config{
					SampleEvery: cfg.SampleEvery,
					DropSamples: true,
				})
			}
			// Warm-up run on the fresh encoder: discovery and re-encoding
			// settle here, unmeasured — the suite prices the steady state.
			if _, err := newMachine().Run(); err != nil {
				return nil, err
			}
			best := ObservabilityRow{Threads: n, Mode: mode}
			for r := 0; r < cfg.Reps; r++ {
				m := newMachine()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				start := time.Now()
				rs, err := m.Run()
				elapsed := time.Since(start)
				runtime.ReadMemStats(&after)
				if err != nil {
					return nil, err
				}
				if cps := float64(rs.C.Calls) / elapsed.Seconds(); cps > best.CallsPerSec {
					best.Calls = rs.C.Calls
					best.CallsPerSec = cps
					best.AllocsPerCall = float64(after.Mallocs-before.Mallocs) / float64(rs.C.Calls)
				}
			}
			if sprof != nil {
				best.ContextsObserved = sprof.Observed()
			}
			switch {
			case mode == "off":
				base = best.CallsPerSec
			case base > 0:
				best.OverheadPct = (base/best.CallsPerSec - 1) * 100
			}
			rep.Rows = append(rep.Rows, best)
			if mode == "ccprof" {
				rep.ProfilerOverheadPct[fmt.Sprint(n)] = best.OverheadPct
				if best.OverheadPct > rep.MaxProfilerOverheadPct {
					rep.MaxProfilerOverheadPct = best.OverheadPct
				}
			}
		}
	}
	return rep, nil
}
