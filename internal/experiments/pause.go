package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
)

// PauseConfig parameterizes the pause-vs-graph-size suite: how long a
// re-encoding pass stops the world as the graph grows, for a fixed
// small delta of newly discovered edges. The suite stages synthetic
// graphs of 10k–1M edges, injects a delta through the same bookkeeping
// a runtime-handler trap performs, and measures one pass per rep under
// three regimes:
//
//   - incremental: bounded-pause pass (core.ReencodeNow with
//     incremental renumbering) — concurrent prepare, delta stub
//     rebuild, delta decode index, selective thread translation. The
//     pause should scale with the delta, not the graph.
//   - full: concurrent prepare with full renumbering — the assignment
//     and index are still computed off-pause, but every site is rebuilt
//     inside the pause. Isolates the delta-rebuild win from the
//     concurrent-prepare win.
//   - serialized: the classic all-in-pause pass (core.ForceReencode):
//     renumbering, index, rebuild all inside the stop-the-world window.
//
// No application threads run: the measured pause is the runtime's own
// work, which is exactly the quantity that must stop scaling with graph
// size.
type PauseConfig struct {
	// Edges lists the base graph sizes to sweep (default 10k, 100k, 1M).
	Edges []int
	// Deltas lists the per-pass injection sizes (default 64, 4096).
	Deltas []int
	// Reps is how many delta+pass rounds are measured per configuration
	// (default 5).
	Reps int
	// Modes selects the regimes (default incremental, full, serialized).
	Modes []string
	// SLOPauseP99Us, when > 0, makes the suite fail if any incremental
	// row's p99 pause exceeds this many microseconds — the CI smoke
	// gate.
	SLOPauseP99Us float64
}

func (c *PauseConfig) fill() {
	if len(c.Edges) == 0 {
		c.Edges = []int{10_000, 100_000, 1_000_000}
	}
	if len(c.Deltas) == 0 {
		c.Deltas = []int{64, 4096}
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
	if len(c.Modes) == 0 {
		c.Modes = []string{"incremental", "full", "serialized"}
	}
}

// PauseRow is one measured (edges, delta, mode) configuration. Pause
// quantiles come from the per-pass PauseNanos of the measured epochs
// only — the staging passes (cold Install, the epoch-1 seed encode) are
// excluded.
type PauseRow struct {
	Edges int    `json:"edges"`
	Delta int    `json:"delta"`
	Mode  string `json:"mode"`
	// Passes is the number of measured passes (== Reps), and
	// IncrementalPasses how many of them the incremental renumbering
	// actually served (should equal Passes in incremental mode: the
	// staged deltas never force a fallback).
	Passes            int `json:"passes"`
	IncrementalPasses int `json:"incremental_passes"`

	PauseP50Us float64 `json:"pause_p50_us"`
	PauseP99Us float64 `json:"pause_p99_us"`
	PauseMaxUs float64 `json:"pause_max_us"`
	// PrepareMeanUs is the mean off-pause prepare duration (0 for the
	// serialized mode, which has no off-pause phase).
	PrepareMeanUs float64 `json:"prepare_mean_us"`

	// Mean per-phase wall time across the measured passes. Renumber and
	// index run off-pause except in serialized mode; stub and translate
	// always run inside the pause.
	RenumberMeanUs  float64 `json:"renumber_mean_us"`
	IndexMeanUs     float64 `json:"index_mean_us"`
	StubMeanUs      float64 `json:"stub_mean_us"`
	TranslateMeanUs float64 `json:"translate_mean_us"`

	// Mean per-pass work volume.
	ChangedEdges float64 `json:"changed_edges"`
	SitesRebuilt float64 `json:"sites_rebuilt"`
}

// PauseReport is the suite's result, serialized as BENCH_pause.json.
type PauseReport struct {
	Config     PauseConfig `json:"config"`
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Rows       []PauseRow  `json:"rows"`
	// P99Ratio maps "edges/delta" to the serialized/incremental and
	// full/incremental p99 pause ratios — the headline bounded-pause
	// numbers (present when those modes were both run).
	P99RatioFullOverIncr map[string]float64 `json:"p99_ratio_full_over_incremental,omitempty"`
	P99RatioSerOverIncr  map[string]float64 `json:"p99_ratio_serialized_over_incremental,omitempty"`
}

// pauseProgram is the staged topology: main calls every function of a
// caller tier; each caller owns the direct sites of a slice of the leaf
// tier. Base edges: main→caller (W) plus caller→leaf (E−W), every one
// through its own site. On top, reps×delta reserved direct sites —
// undiscovered at seed time — target existing leaves round-robin, so a
// delta injection adds exactly delta new edges whose affected set is
// leaf-only (leaves have no out-edges, so incremental renumbering never
// cascades past them — the small-delta regime the bounded-pause pass is
// built for).
type pauseProgram struct {
	p          *prog.Program
	baseSites  []prog.SiteID // base edges, in injection order
	baseFns    []prog.FuncID
	deltaSites []prog.SiteID // reserved delta edges, consumed reps at a time
	deltaFns   []prog.FuncID
}

func buildPauseProgram(edges, delta, reps int) (*pauseProgram, error) {
	callers := 256
	if callers > edges/4 {
		callers = edges / 4
	}
	if callers < 1 {
		callers = 1
	}
	leaves := edges - callers
	if leaves < 1 {
		return nil, fmt.Errorf("pause: %d edges leave no room for a leaf tier", edges)
	}

	b := prog.NewBuilder()
	main := b.Func("main")
	pp := &pauseProgram{}

	callerFns := make([]prog.FuncID, callers)
	for i := range callerFns {
		callerFns[i] = b.Func(fmt.Sprintf("c%d", i))
		pp.baseSites = append(pp.baseSites, b.CallSite(main, callerFns[i]))
		pp.baseFns = append(pp.baseFns, callerFns[i])
	}
	leafFns := make([]prog.FuncID, leaves)
	for i := range leafFns {
		leafFns[i] = b.Func(fmt.Sprintf("l%d", i))
		caller := callerFns[i%callers]
		pp.baseSites = append(pp.baseSites, b.CallSite(caller, leafFns[i]))
		pp.baseFns = append(pp.baseFns, leafFns[i])
	}
	for i := 0; i < delta*reps; i++ {
		target := leafFns[i%leaves]
		caller := callerFns[(i/leaves)%callers]
		pp.deltaSites = append(pp.deltaSites, b.CallSite(caller, target))
		pp.deltaFns = append(pp.deltaFns, target)
	}
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	pp.p = p
	return pp, nil
}

func (pp *pauseProgram) discoveries(sites []prog.SiteID, fns []prog.FuncID) []core.Discovery {
	ds := make([]core.Discovery, len(sites))
	for i := range sites {
		ds[i] = core.Discovery{Site: sites[i], Fn: fns[i], Freq: 1}
	}
	return ds
}

// quantileNs returns the nearest-rank q-quantile of ns in microseconds.
func quantileNs(ns []int64, q float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e3
}

func meanUs(total int64, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n) / 1e3
}

// Pause runs the pause-vs-graph-size suite and returns the report.
func Pause(cfg PauseConfig) (*PauseReport, error) {
	cfg.fill()
	rep := &PauseReport{
		Config:               cfg,
		GoMaxProcs:           runtime.GOMAXPROCS(0),
		NumCPU:               runtime.NumCPU(),
		P99RatioFullOverIncr: map[string]float64{},
		P99RatioSerOverIncr:  map[string]float64{},
	}

	for _, edges := range cfg.Edges {
		for _, delta := range cfg.Deltas {
			pp, err := buildPauseProgram(edges, delta, cfg.Reps)
			if err != nil {
				return nil, err
			}
			p99ByMode := map[string]float64{}
			for _, mode := range cfg.Modes {
				row, err := runPauseMode(pp, edges, delta, mode, cfg.Reps)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, *row)
				p99ByMode[mode] = row.PauseP99Us
				if cfg.SLOPauseP99Us > 0 && mode == "incremental" && row.PauseP99Us > cfg.SLOPauseP99Us {
					return rep, fmt.Errorf(
						"pause: SLO breach: incremental p99 pause %.1fus > %.1fus at edges=%d delta=%d",
						row.PauseP99Us, cfg.SLOPauseP99Us, edges, delta)
				}
			}
			key := fmt.Sprintf("%d/%d", edges, delta)
			if incr, ok := p99ByMode["incremental"]; ok && incr > 0 {
				if full, ok := p99ByMode["full"]; ok {
					rep.P99RatioFullOverIncr[key] = full / incr
				}
				if ser, ok := p99ByMode["serialized"]; ok {
					rep.P99RatioSerOverIncr[key] = ser / incr
				}
			}
			// The staged programs are large; drop each before building the
			// next so peak memory stays one configuration's worth.
			pp = nil
			runtime.GC()
		}
	}
	return rep, nil
}

// runPauseMode stages one encoder — base graph injected, machine
// installed, one full seed pass so an incremental chain has a previous
// epoch — then measures cfg.Reps delta+pass rounds under the given
// mode.
func runPauseMode(pp *pauseProgram, edges, delta int, mode string, reps int) (*PauseRow, error) {
	d := core.New(pp.p, core.Options{Incremental: true})
	// Base edges first, with no machine installed: no stubs exist yet, so
	// staging skips reps×thousands of per-site rebuilds.
	d.InjectDiscoveries(pp.discoveries(pp.baseSites, pp.baseFns))
	m := machine.New(pp.p, d, machine.Config{})
	d.Install(m)
	// Seed pass: epoch 1, full encode. Gives the incremental mode the
	// previous assignment Refresh chains from, and all modes an equal
	// starting state.
	d.ForceReencode(nil)

	for rep := 0; rep < reps; rep++ {
		batch := pp.discoveries(
			pp.deltaSites[rep*delta:(rep+1)*delta],
			pp.deltaFns[rep*delta:(rep+1)*delta])
		d.InjectDiscoveries(batch)
		switch mode {
		case "incremental":
			d.ReencodeNow(nil, true)
		case "full":
			d.ReencodeNow(nil, false)
		case "serialized":
			d.ForceReencode(nil)
		default:
			return nil, fmt.Errorf("pause: unknown mode %q", mode)
		}
	}

	st := d.Stats()
	if len(st.History) < reps {
		return nil, fmt.Errorf("pause: %s: %d passes ran, want >= %d", mode, len(st.History), reps)
	}
	measured := st.History[len(st.History)-reps:]
	row := &PauseRow{Edges: edges, Delta: delta, Mode: mode, Passes: len(measured)}
	var pauses []int64
	var prep, renum, index, stub, translate, changed, rebuilt int64
	for _, er := range measured {
		pauses = append(pauses, er.PauseNanos)
		prep += er.PrepareNanos
		renum += er.RenumberNanos
		index += er.IndexNanos
		stub += er.StubNanos
		translate += er.TranslateNanos
		changed += int64(er.ChangedEdges)
		rebuilt += int64(er.SitesRebuilt)
		if er.Incremental {
			row.IncrementalPasses++
		}
	}
	n := len(measured)
	row.PauseP50Us = quantileNs(pauses, 0.50)
	row.PauseP99Us = quantileNs(pauses, 0.99)
	row.PauseMaxUs = quantileNs(pauses, 1.0)
	row.PrepareMeanUs = meanUs(prep, n)
	row.RenumberMeanUs = meanUs(renum, n)
	row.IndexMeanUs = meanUs(index, n)
	row.StubMeanUs = meanUs(stub, n)
	row.TranslateMeanUs = meanUs(translate, n)
	row.ChangedEdges = float64(changed) / float64(n)
	row.SitesRebuilt = float64(rebuilt) / float64(n)
	return row, nil
}
