package experiments

import (
	"fmt"
	"sort"
	"testing"

	"dacce/internal/blenc"
	"dacce/internal/core"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/persist"
	"dacce/internal/prog"
	"dacce/internal/workload"
)

// coldRun executes the profile's workload on a fresh encoder in the
// given discovery mode and returns the warmed encoder and run stats.
func coldRun(t *testing.T, pr workload.Profile, serialized bool) (*core.DACCE, *workload.Workload, *machine.RunStats) {
	t.Helper()
	w, err := workload.Build(pr)
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(w.P, core.Options{SerializedDiscovery: serialized})
	m := w.NewMachine(d, machine.Config{SampleEvery: 31})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return d, w, rs
}

// edgeSet returns the graph's registered edge keys, sorted.
func edgeSet(g *graph.Graph) []graph.EdgeKey {
	keys := make([]graph.EdgeKey, 0, len(g.Edges))
	for _, e := range g.Edges {
		keys = append(keys, graph.EdgeKey{Site: e.Site, Target: e.Target})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Site != keys[j].Site {
			return keys[i].Site < keys[j].Site
		}
		return keys[i].Target < keys[j].Target
	})
	return keys
}

// canonicalDict re-encodes the graph's edge set from a canonical
// rebuild: edges inserted in sorted (site, target) order with no
// frequency heat and no hot-first ordering. Two graphs with the same
// edge set always canonicalize to the identical assignment, whatever
// order concurrent discovery registered their edges in.
func canonicalDict(g *graph.Graph, p *prog.Program) *blenc.Assignment {
	clone := graph.New(p)
	for _, r := range g.Roots() {
		clone.AddRoot(r)
	}
	for _, k := range edgeSet(g) {
		clone.AddEdge(k.Site, k.Target)
	}
	return blenc.Encode(clone, blenc.Options{NoHotOrder: true})
}

// diffColdStart runs the profile cold under the sharded trap path and
// under the serialized baseline and returns a description of the first
// mismatch between the two outcomes, or "" when they agree.
func diffColdStart(t *testing.T, pr workload.Profile) string {
	t.Helper()
	ds, ws, _ := coldRun(t, pr, false)
	dg, wg, _ := coldRun(t, pr, true)

	gs, gg := ds.Graph(), dg.Graph()
	es, eg := edgeSet(gs), edgeSet(gg)
	if len(es) != len(eg) {
		return fmt.Sprintf("edge sets differ: sharded %d edges, serialized %d", len(es), len(eg))
	}
	for i := range es {
		if es[i] != eg[i] {
			return fmt.Sprintf("edge sets differ at %d: sharded %v, serialized %v", i, es[i], eg[i])
		}
	}
	if ss, sg := ds.Stats(), dg.Stats(); ss.EdgesDiscovered != len(es) || sg.EdgesDiscovered != len(eg) {
		return fmt.Sprintf("discovered-edge counters off: sharded %d, serialized %d, want %d",
			ss.EdgesDiscovered, sg.EdgesDiscovered, len(es))
	}

	// The live dictionaries may encode in different hot orders (the
	// runs pass at different times, so per-edge heat differs at
	// snapshot), but the context-count structure they assign is a
	// function of the graph alone.
	as, ag := canonicalDict(gs, ws.P), canonicalDict(gg, wg.P)
	if as.MaxID != ag.MaxID {
		return fmt.Sprintf("canonical MaxID differs: sharded %d, serialized %d", as.MaxID, ag.MaxID)
	}
	if len(as.NumCC) != len(ag.NumCC) {
		return fmt.Sprintf("canonical NumCC sizes differ: sharded %d, serialized %d", len(as.NumCC), len(ag.NumCC))
	}
	for fn, n := range as.NumCC {
		if ag.NumCC[fn] != n {
			return fmt.Sprintf("canonical NumCC[f%d] differs: sharded %d, serialized %d", fn, n, ag.NumCC[fn])
		}
	}
	for k, c := range as.Codes {
		if ag.Codes[k] != c {
			return fmt.Sprintf("canonical code for %v differs: sharded %v, serialized %v", k, c, ag.Codes[k])
		}
	}
	return ""
}

// TestConcurrentColdStart is the tentpole's correctness gate: four
// goroutine threads trap the same cold graph through the sharded
// discovery path (run under -race in CI), and the final graph and
// canonical dictionary must match the serialized baseline run bit for
// bit. The sharded run's samples must decode against the machine's
// shadow stacks, and a warm start from its snapshot must replay the
// identical workload with zero handler traps.
func TestConcurrentColdStart(t *testing.T) {
	pr := warmupProfile(4, 6_000)
	pr.Name = "coldstart-race"
	if d := diffColdStart(t, pr); d != "" {
		t.Fatal(d)
	}

	d, _, rs := coldRun(t, pr, false)
	if rs.C.HandlerTraps == 0 {
		t.Fatal("cold run executed no handler traps; the test exercised nothing")
	}
	if len(rs.Samples) == 0 {
		t.Fatal("no samples retained")
	}
	for i, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if len(ctx) < len(s.Shadow) {
			t.Fatalf("sample %d: decode has %d frames, shadow %d", i, len(ctx), len(s.Shadow))
		}
		local := ctx[len(ctx)-len(s.Shadow):]
		for j, f := range s.Shadow {
			if local[j].Fn != f.Fn {
				t.Fatalf("sample %d frame %d: decoded f%d, shadow f%d", i, j, local[j].Fn, f.Fn)
			}
		}
	}

	// Warm-start replay through the persistence codec: the sharded
	// structures must export deterministically enough to re-patch every
	// site before first touch.
	data, err := persist.Marshal(d.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	st, err := persist.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := workload.Build(pr)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := core.Restore(w2.P, core.Options{}, st)
	if err != nil {
		t.Fatal(err)
	}
	m := w2.NewMachine(d2, machine.Config{SampleEvery: 31, DropSamples: true})
	rs2, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs2.C.HandlerTraps != 0 {
		t.Fatalf("warm-started replay executed %d handler traps, want 0", rs2.C.HandlerTraps)
	}
}

// sweepProfile derives a small per-seed cold-start workload: varied
// shape (fan-out, indirect sites, recursion, 2–4 threads) but a budget
// small enough that a thousand seeds stay testable under -race.
func sweepProfile(seed uint64) workload.Profile {
	threads := 2 + int(seed%3)
	return workload.Profile{
		Name:          fmt.Sprintf("coldsweep-%d", seed),
		Seed:          seed*0x9E3779B97F4A7C15 + 1,
		ExecFuncs:     28 + int(seed%5)*8,
		ExecEdges:     60 + int(seed%7)*20,
		Layers:        5 + int(seed%4),
		IndirectSites: int(seed % 4),
		ActualTargets: 2 + int(seed%2),
		RecSites:      int(seed % 3),
		RecProb:       0.25,
		RecStartProb:  0.05,
		Threads:       threads,
		TotalCalls:    2_000 * int64(threads),
		Phases:        1,
	}
}

// TestColdStartSeedSweep is the differential sweep from the acceptance
// gate: a thousand seeded workload shapes, each discovered cold by
// concurrent sharded threads and by the serialized baseline, must agree
// on the final graph and canonical dictionary with zero divergences.
// -short runs a spot-check slice.
func TestColdStartSeedSweep(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 50
	}
	divergences := 0
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		if d := diffColdStart(t, sweepProfile(seed)); d != "" {
			divergences++
			t.Errorf("seed %d: %s", seed, d)
			if divergences >= 5 {
				t.Fatalf("%d divergences; stopping the sweep early", divergences)
			}
		}
	}
	if divergences != 0 {
		t.Fatalf("differential sweep: %d of %d seeds diverged", divergences, seeds)
	}
}
