package experiments

import (
	"fmt"
	"io"

	"dacce/internal/stats"
	"dacce/internal/workload"
)

// WriteReport runs the full evaluation and writes EXPERIMENTS.md:
// paper-versus-measured for Table 1 and Figures 8–10, with the headline
// checks computed from the data. progress receives per-benchmark status
// lines.
func WriteReport(w io.Writer, cfg RunConfig, progress io.Writer) error {
	cfg.fill()
	rows, err := Table1(workload.Profiles(), cfg, progress)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, `# EXPERIMENTS — paper vs. measured

Reproduction of the evaluation of *Dynamic and Adaptive Calling Context
Encoding* (CGO 2014) on the synthetic workload substrate described in
DESIGN.md. Absolute numbers are not expected to match — the paper ran
SPEC CPU2006 (ref) and Parsec 2.1 (native) for minutes on a Xeon
E7-4807 under binary instrumentation; this repository runs calibrated
synthetic workloads for milliseconds of model time under a documented
cost model. What must match is the *shape*: who wins, by roughly what
factor, and where the qualitative crossovers fall. Divergences and
their causes are listed per experiment.

Regenerate everything with:

    go run ./cmd/daccebench report -calls %d

`, cfg.Calls)

	writeTable1Section(w, rows)
	writeFig8Section(w, rows)
	if err := writeFig9Section(w, cfg); err != nil {
		return err
	}
	if err := writeFig10Section(w, cfg, rows); err != nil {
		return err
	}
	return nil
}

func writeTable1Section(w io.Writer, rows []*BenchResult) {
	fmt.Fprintf(w, `## Table 1 — benchmark characteristics under PCCE and DACCE

Paper columns per benchmark: static graph size and maxID under PCCE;
dynamic graph size, maxID, ccStack rate/depth, re-encoding count (gTS)
and re-encoding cost under DACCE; call rate.

| benchmark | paper PCCE N/E | meas. PCCE N/E | paper DACCE N/E | meas. DACCE N/E | paper dMaxID | meas. dMaxID | paper gTS | meas. gTS | paper depth | meas. depth |
|---|---|---|---|---|---|---|---|---|---|---|
`)
	for _, r := range rows {
		p := r.Paper
		fmt.Fprintf(w, "| %s | %d/%d | %d/%d | %d/%d | %d/%d | — | %s | %d | %d | %.2f | %.2f |\n",
			r.Profile.Name,
			p.PCCENodes, p.PCCEEdges, r.PCCE.Nodes, r.PCCE.Edges,
			p.DACCENodes, p.DACCEEdges, r.DACCE.Nodes, r.DACCE.Edges,
			stats.SciNotation(r.DACCE.MaxID, false),
			p.GTS, r.DACCE.GTS, p.Depth, r.DACCE.CCDepth)
	}

	// Headline checks.
	smallerNodes, smallerMaxID, overflows := 0, 0, 0
	for _, r := range rows {
		if r.DACCE.Nodes < r.PCCE.Nodes && r.DACCE.Edges < r.PCCE.Edges {
			smallerNodes++
		}
		if r.PCCE.Overflow || r.DACCE.MaxID < r.PCCE.MaxID {
			smallerMaxID++
		}
		if r.PCCE.Overflow {
			overflows++
		}
	}
	fmt.Fprintf(w, `
**Shape checks.** Dynamic graph strictly smaller than static on
%d/%d benchmarks (paper: all); DACCE maxID below PCCE's on %d/%d
(paper: all); PCCE's unrestricted encoding overflows 64-bit ids on
%d benchmarks (paper: 2 — 400.perlbench and 403.gcc; here the
points-to-inflated static graphs of the other indirect-heavy benchmarks
also overflow, because the synthetic declared-target fan multiplies
paths somewhat more aggressively than the originals' — same mechanism,
wider blast radius). Static nodes/edges match the paper by
construction (the generator is calibrated to them); the dynamic graph
is *discovered*, so measured DACCE nodes/edges landing within ~±20%%
of the paper's confirms the executed-core calibration. gTS counts land
in the paper's range (single digits for stable benchmarks, tens to ~100
for phase-heavy ones).

`, smallerNodes, len(rows), smallerMaxID, len(rows), overflows)
}

func writeFig8Section(w io.Writer, rows []*BenchResult) {
	fmt.Fprintf(w, `## Figure 8 — runtime overhead, PCCE vs DACCE

Overhead here is the cost model's steady-state instrumentation overhead
(DESIGN.md §6): per-call instrumentation cycles over application
cycles, measured after the one-time discovery warm-up, with re-encoding
cost accounted separately (it is Table 1's "costs" column; over the
paper's minute-long runs it amortizes below 0.1%%, which a
millisecond-long model run cannot reproduce by summation).

| benchmark | PCCE | DACCE | winner |
|---|---|---|---|
`)
	var po, do []float64
	dacceWins, measurable := 0, 0
	for _, r := range rows {
		winner := "—"
		if r.PCCE.Overhead >= 0.005 || r.DACCE.Overhead >= 0.005 {
			measurable++
			if r.PCCE.Overhead < r.DACCE.Overhead {
				winner = "PCCE"
			} else {
				winner = "DACCE"
				dacceWins++
			}
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", r.Profile.Name,
			stats.Pct(r.PCCE.Overhead), stats.Pct(r.DACCE.Overhead), winner)
		po = append(po, r.PCCE.Overhead)
		do = append(do, r.DACCE.Overhead)
	}
	gp, gd := overheadGeoMean(po), overheadGeoMean(do)
	fmt.Fprintf(w, "| **geomean** | **%s** | **%s** | |\n", stats.Pct(gp), stats.Pct(gd))
	fmt.Fprintf(w, `
Geomeans floor each benchmark at 0.2%% — many low-call-rate benchmarks
measure ≈0%% for both schemes, and a geometric mean over true zeros is
meaningless.

**Paper:** geomean ≈ 2.5%% (PCCE) vs ≈ 2%% (DACCE); DACCE clearly ahead
on 400.perlbench, 483.xalancbmk and x264; PCCE slightly ahead on
458.sjeng, 433.milc, 434.zeusmp.

**Measured:** geomean %s (PCCE) vs %s (DACCE); among the %d benchmarks
with measurable (≥0.5%%) overhead, DACCE is ahead on %d — the rest tie
at ≈0%% because their per-call application work dwarfs any
instrumentation (the paper's low bars).
The showcase benchmarks reproduce: 400.perlbench (false back edges
from cold static cycles push PCCE onto the ccStack), 445.gobmk and
453.povray, and x264 (PCCE's inline compare chain over many indirect
targets vs DACCE's one-probe hash); 458.sjeng goes to PCCE exactly as
in the paper (static profiling is representative there, and DACCE pays
for its dynamic profiling). Known divergences: 483.xalancbmk is a
near-tie here instead of a DACCE win — our synthetic run is too short
for its late edge discovery to amortize fully — and on milc/zeusmp the
paper shows DACCE marginally *worse* while both round to ~0%% here,
because the model prices DACCE's dynamic profiling but not the
microarchitectural side effects of dynamic binary patching.

`, stats.Pct(gp), stats.Pct(gd), measurable, dacceWins)
}

func writeFig9Section(w io.Writer, cfg RunConfig) error {
	fmt.Fprintf(w, `## Figure 9 — progress of encoding over time

The paper plots, for 445.gobmk / 483.xalancbmk / 458.sjeng / 433.milc,
the number of encoded nodes/edges and the maximum context id per sample
tick: re-encoding fires frequently at the beginning, the encoding
reaches a steady state quickly, and later adjustments track new call
paths and hot-path changes.

`)
	for _, name := range Fig9Names {
		s, err := Fig9(name, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "### %s\n\n```\n%s```\n\n", name, s.String())
	}
	fmt.Fprintf(w, `**Shape check.** In every series the node/edge counts rise steeply in
the first few samples and flatten (the epoch column shows the same
early clustering of re-encodings the paper describes); maxID moves with
the discovered graph. The paper's 483.xalancbmk anecdote — maxID
*decreasing* after a re-encoding when a newly found cycle turned an
encoded edge into a back edge — is possible in this implementation for
the same reason (back edges are dropped from the numbering each pass)
and visible in some seeds as a non-monotone maxID step.

`)
	return nil
}

func writeFig10Section(w io.Writer, cfg RunConfig, rows []*BenchResult) error {
	fmt.Fprintf(w, `## Figure 10 — cumulative stack-depth distributions

The paper plots, for x264 / 445.gobmk / 459.GemsFDTD / 483.xalancbmk,
the CDF of the call-stack depth and of the ccStack depth at sampled
context instances.

`)
	for _, name := range Fig10Names {
		s, err := Fig10(name, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "### %s\n\n```\n%s```\n\n", name, s.String())
	}
	fmt.Fprintf(w, `**Shape check.** For most benchmarks (459.GemsFDTD typical) the
ccStack CDF is at ~100%% by depth 0–1 — contexts fit in the single id —
while the call-stack CDF climbs gradually; that is the paper's central
claim about encoding compactness. The recursion-heavy pair keeps a
ccStack tail: 483.xalancbmk's ccStack CDF reaches 100%% only at depth
tens (paper: ~44 with adaptive encoding), and its call-stack depth has
much larger magnitude than the others, as in the paper (we do not reach
the paper's extreme ~7200-frame xalancbmk stacks — the synthetic
recursion is depth-bounded — but the ordering and the
"ccStack ≪ call stack" gap reproduce).
`)
	return nil
}
