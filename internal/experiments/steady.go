package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dacce/internal/blenc"
	"dacce/internal/ccprof"
	"dacce/internal/core"
	"dacce/internal/graph"
	"dacce/internal/machine"
	"dacce/internal/persist"
	"dacce/internal/prog"
	"dacce/internal/workload"
)

// SteadyConfig parameterizes the multi-threaded steady-state
// scalability suite: the same workload at 1/2/4/8 threads, each thread
// count measured twice — a warm-up run on a fresh encoder (discovery,
// re-encoding passes) and a steady run that reuses the warmed encoder,
// the regime the paper's minutes-long benchmarks spend their time in.
type SteadyConfig struct {
	// Threads lists the thread counts to sweep (default 1, 2, 4, 8).
	Threads []int
	// CallsPerThread is each thread's call budget (default 200k).
	CallsPerThread int64
	// SampleEvery is the sampling period in calls (default 3 —
	// deliberately aggressive, so the sampling controller's decode is a
	// real part of the steady-state load the lock-free paths must carry).
	SampleEvery int64
	// Compare additionally runs every configuration under a
	// mutex-serialized wrapper reproducing the pre-snapshot locking
	// discipline (global lock around the sampling controller and the
	// periodic maintenance check, per-sample capture allocation), and
	// reports the lock-free/serialized throughput ratio.
	Compare bool
	// LoadState warm-starts the lock-free encoder from this snapshot
	// instead of a cold start, so even the "warmup" phase runs on the
	// persisted encoding (expect zero handler traps). SaveState writes
	// the warmed encoder's snapshot after the steady run. Because each
	// thread count generates its own program, both require a single
	// entry in Threads.
	LoadState string `json:"load_state,omitempty"`
	SaveState string `json:"save_state,omitempty"`
	// CcprofOut attaches the always-on streaming context profiler to the
	// lock-free encoder and writes the aggregated context profile here
	// after the steady run (pprof protobuf; folded text when the name
	// ends in .folded). Because each thread count generates its own
	// program, it requires a single entry in Threads.
	CcprofOut string `json:"ccprof_out,omitempty"`
}

func (c *SteadyConfig) fill() {
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8}
	}
	if c.CallsPerThread == 0 {
		c.CallsPerThread = 200_000
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 3
	}
}

// SteadyRow is one measured (thread count, mode, phase) configuration.
type SteadyRow struct {
	Threads int `json:"threads"`
	// Mode is "lockfree" (the build under test) or "serialized" (the
	// global-mutex comparison wrapper).
	Mode string `json:"mode"`
	// Phase is "warmup" (fresh encoder: discovery + re-encoding) or
	// "steady" (warmed encoder, stable encoding).
	Phase         string  `json:"phase"`
	Calls         int64   `json:"calls"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	CallsPerSec   float64 `json:"calls_per_sec"`
	AllocsPerCall float64 `json:"allocs_per_call"`
	Epochs        uint32  `json:"epochs"`
	HandlerTraps  int64   `json:"handler_traps"`
	Samples       int64   `json:"samples"`
}

// SteadyReport is the suite's result, serialized as
// BENCH_steady_state.json.
type SteadyReport struct {
	Config     SteadyConfig `json:"config"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Rows       []SteadyRow  `json:"rows"`
	// Scaling maps a thread count to steady-state lock-free throughput
	// relative to 1 thread.
	Scaling map[string]float64 `json:"scaling,omitempty"`
	// Speedup maps a thread count to the steady-state lock-free vs
	// serialized throughput ratio (present when Compare is set).
	Speedup map[string]float64 `json:"speedup,omitempty"`
	// CcprofContexts counts the sampled contexts the streaming profiler
	// aggregated into CcprofOut (present when CcprofOut is set).
	CcprofContexts int64 `json:"ccprof_contexts,omitempty"`
}

// steadyProfile is the synthetic scalability workload for n threads:
// a mid-size executed core with deep-enough stacks that the sampling
// controller's decode does real work, a few indirect and recursive
// sites so every stub kind stays on the path, and a single phase so the
// warmed encoder reaches a genuinely steady encoding.
func steadyProfile(n int, callsPerThread int64) workload.Profile {
	return workload.Profile{
		Name:          fmt.Sprintf("steady-%dt", n),
		Seed:          0x57EAD1,
		ExecFuncs:     96,
		ExecEdges:     220,
		Layers:        10,
		IndirectSites: 4,
		ActualTargets: 3,
		RecSites:      2,
		RecProb:       0.3,
		RecStartProb:  0.05,
		Threads:       n,
		TotalCalls:    callsPerThread * int64(n),
		Phases:        1,
	}
}

// serializedScheme reproduces the pre-snapshot build for the comparison
// rows: one global mutex serializes every sampling-controller entry and
// every periodic maintenance check across all threads, and captures are
// never released to the pool, so each sample allocates its snapshot —
// the locking and allocation discipline the lock-free rework replaced.
//
// During warm-up the wrapper simply locks around the encoder's own
// controller, so adaptation (discovery, re-encoding) behaves
// identically in both modes. For the steady run, freeze() additionally
// installs the old sampling path itself: a per-sample Decoder walking
// graph in-edge lists with dictionary map lookups and fresh slices —
// the exact decode the controller used to run while holding the global
// lock.
type serializedScheme struct {
	d   *core.DACCE
	mu  sync.Mutex
	old *oldSampler
}

func (s *serializedScheme) Name() string                          { return s.d.Name() }
func (s *serializedScheme) Install(m *machine.Machine)            { s.d.Install(m) }
func (s *serializedScheme) ThreadStart(t, parent *machine.Thread) { s.d.ThreadStart(t, parent) }
func (s *serializedScheme) ThreadExit(t *machine.Thread)          { s.d.ThreadExit(t) }
func (s *serializedScheme) Capture(t *machine.Thread) any         { return s.d.Capture(t) }

// OnSample serializes controller entry on the global mutex. The mutex
// is always dropped before delegating anything that can stop the world
// (Maintain, or the encoder's own controller): a stopper waits for
// every running thread to park at a safepoint, and a thread blocked on
// s.mu is running but can never park, so holding the lock across a
// re-encoding pass would deadlock the machine.
func (s *serializedScheme) OnSample(t *machine.Thread, capture any) {
	if s.old != nil {
		s.mu.Lock()
		s.old.onSample(capture)
		s.mu.Unlock()
		s.d.Maintain(t)
		return
	}
	s.mu.Lock()
	s.mu.Unlock() //lint:ignore SA2001 empty section models the old per-sample lock acquisition
	s.d.OnSample(t, capture)
}

// Maintain pays the old per-tick global-lock acquisition, then runs the
// trigger check unlocked (see OnSample for why the lock cannot be held
// across a possible stop-the-world).
func (s *serializedScheme) Maintain(t *machine.Thread) {
	s.mu.Lock()
	s.mu.Unlock() //lint:ignore SA2001 empty section models the old per-tick lock acquisition
	s.d.Maintain(t)
}

// oldSampler is the pre-snapshot sampling controller, rebuilt from the
// exported decode API: a graph-walking Decoder constructed per sample,
// decoding with fresh slice copies, then crediting edge heat. It works
// on a frozen clone of the call graph taken at a quiescent point (the
// clone's in-edge lists have the same layout and lookup pattern the
// live graph walk had, and freezing keeps the comparison run race-free
// against the rare late edge discovery).
type oldSampler struct {
	p     *prog.Program
	g     *graph.Graph
	dicts []*blenc.Assignment
	edges map[graph.EdgeKey]*graph.Edge // live edges, for atomic Freq credit
}

// freeze snaps the old-path decode state between the warm-up and steady
// runs. Must be called while no machine is running.
func (s *serializedScheme) freeze(p *prog.Program) {
	live := s.d.Graph()
	clone := graph.New(p)
	edges := make(map[graph.EdgeKey]*graph.Edge, len(live.Edges))
	for _, r := range live.Roots() {
		clone.AddRoot(r)
	}
	for _, e := range live.Edges {
		clone.AddEdge(e.Site, e.Target)
		edges[graph.EdgeKey{Site: e.Site, Target: e.Target}] = e
	}
	var dicts []*blenc.Assignment
	for ep := uint32(0); ; ep++ {
		dict := s.d.Dict(ep)
		if dict == nil {
			break
		}
		dicts = append(dicts, dict)
	}
	s.old = &oldSampler{p: p, g: clone, dicts: dicts, edges: edges}
}

func (o *oldSampler) onSample(capture any) {
	c, ok := capture.(*core.Capture)
	if !ok || c == nil || int(c.Epoch) >= len(o.dicts) {
		return
	}
	dec := &core.Decoder{P: o.p, G: o.g, Dicts: o.dicts}
	ctx, err := dec.Decode(c)
	if err != nil {
		return
	}
	for i := 1; i < len(ctx); i++ {
		if e := o.edges[graph.EdgeKey{Site: ctx[i].Site, Target: ctx[i].Fn}]; e != nil {
			atomic.AddInt64(&e.Freq, 1)
		}
	}
}

// SteadyState runs the scalability suite and returns the report.
func SteadyState(cfg SteadyConfig) (*SteadyReport, error) {
	cfg.fill()
	if (cfg.LoadState != "" || cfg.SaveState != "") && len(cfg.Threads) != 1 {
		return nil, fmt.Errorf("steady: -save-state/-load-state need a single -threads value (each thread count generates its own program), got %v", cfg.Threads)
	}
	if cfg.CcprofOut != "" && len(cfg.Threads) != 1 {
		return nil, fmt.Errorf("steady: -ccprof-out needs a single -threads value (each thread count generates its own program), got %v", cfg.Threads)
	}
	rep := &SteadyReport{
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scaling:    map[string]float64{},
	}
	if cfg.Compare {
		rep.Speedup = map[string]float64{}
	}

	steadyRate := map[int]float64{}
	for _, n := range cfg.Threads {
		pr := steadyProfile(n, cfg.CallsPerThread)
		w, err := workload.Build(pr)
		if err != nil {
			return nil, err
		}

		run := func(mode string, d *core.DACCE, scheme machine.Scheme, phase string) (*SteadyRow, error) {
			m := w.NewMachine(scheme, machine.Config{
				SampleEvery: cfg.SampleEvery,
				DropSamples: true,
			})
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			rs, err := m.Run()
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				return nil, err
			}
			row := SteadyRow{
				Threads:       n,
				Mode:          mode,
				Phase:         phase,
				Calls:         rs.C.Calls,
				ElapsedMs:     float64(elapsed.Microseconds()) / 1e3,
				CallsPerSec:   float64(rs.C.Calls) / elapsed.Seconds(),
				AllocsPerCall: float64(after.Mallocs-before.Mallocs) / float64(rs.C.Calls),
				Epochs:        d.Epoch(),
				HandlerTraps:  rs.C.HandlerTraps,
				Samples:       rs.C.Samples,
			}
			rep.Rows = append(rep.Rows, row)
			return &row, nil
		}

		// Lock-free build: warm-up on a fresh encoder (or one restored
		// from a snapshot), then a steady run reusing it (Install
		// re-traps every site; the warmed graph re-patches them on first
		// touch without new discoveries). -ccprof-out rides the build
		// under test: the streaming profiler observes every sampled
		// context the controller decodes.
		opt := core.Options{}
		var sprof *ccprof.Streaming
		if cfg.CcprofOut != "" {
			sprof = ccprof.NewStreaming(w.P)
			opt.ContextObserver = sprof
		}
		var d *core.DACCE
		if cfg.LoadState != "" {
			d, err = persist.WarmStart(cfg.LoadState, w.P, opt)
			if err != nil {
				return nil, err
			}
		} else {
			d = core.New(w.P, opt)
		}
		if _, err := run("lockfree", d, d, "warmup"); err != nil {
			return nil, err
		}
		steady, err := run("lockfree", d, d, "steady")
		if err != nil {
			return nil, err
		}
		steadyRate[n] = steady.CallsPerSec
		if cfg.SaveState != "" {
			if err := persist.SaveEncoder(cfg.SaveState, d); err != nil {
				return nil, err
			}
		}
		if sprof != nil {
			if err := writeCcprof(cfg.CcprofOut, sprof.Profile()); err != nil {
				return nil, err
			}
			rep.CcprofContexts = sprof.Total()
		}

		if cfg.Compare {
			ds := core.New(w.P, core.Options{})
			ws := &serializedScheme{d: ds}
			if _, err := run("serialized", ds, ws, "warmup"); err != nil {
				return nil, err
			}
			ws.freeze(w.P)
			ser, err := run("serialized", ds, ws, "steady")
			if err != nil {
				return nil, err
			}
			if ser.CallsPerSec > 0 {
				rep.Speedup[fmt.Sprint(n)] = steady.CallsPerSec / ser.CallsPerSec
			}
		}
	}
	if base := steadyRate[cfg.Threads[0]]; base > 0 {
		for n, r := range steadyRate {
			rep.Scaling[fmt.Sprint(n)] = r / base
		}
	}
	return rep, nil
}

// writeCcprof writes an aggregated context profile to path: folded text
// when the name ends in .folded, gzipped pprof protobuf otherwise.
func writeCcprof(path string, pr *ccprof.Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".folded") {
		err = pr.WriteFolded(f)
	} else {
		err = pr.WritePprof(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
