// Package experiments regenerates the paper's evaluation: Table 1
// (benchmark characteristics under PCCE and DACCE), Figure 8 (runtime
// overhead), Figure 9 (encoding progress over time) and Figure 10
// (cumulative stack-depth distributions). The same entry points back
// the daccebench binary and the root-level Go benchmarks.
package experiments

import (
	"fmt"
	"io"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/pcce"
	"dacce/internal/stats"
	"dacce/internal/telemetry"
	"dacce/internal/workload"
)

// RunConfig scales the experiments.
type RunConfig struct {
	// Calls overrides each profile's TotalCalls when > 0.
	Calls int64
	// SampleEvery is the sampling period in calls (default 256); DACCE's
	// adaptive controller consumes the samples, as in the paper.
	SampleEvery int64
	// KeepSamples retains samples for depth CDFs (Fig. 10).
	KeepSamples bool
	// Sink receives telemetry events from every run when non-nil: the
	// DACCE encoder's event stream plus, via machine.Instrument, thread
	// lifecycle and sampling events from the baselines too.
	Sink telemetry.Sink
}

func (c *RunConfig) fill() {
	if c.SampleEvery == 0 {
		c.SampleEvery = 256
	}
}

// SchemeResult is one scheme's view of one benchmark run.
type SchemeResult struct {
	Nodes    int
	Edges    int
	MaxID    uint64
	Overflow bool
	CCPerSec float64
	CCDepth  float64
	Overhead float64
	GTS      int     // DACCE only
	CostUs   float64 // DACCE only: total re-encoding cost
}

// BenchResult is one benchmark's Table 1 row.
type BenchResult struct {
	Profile     workload.Profile
	Paper       workload.PaperRow
	PCCE        SchemeResult
	DACCE       SchemeResult
	CallsPerSec float64

	// DACCEStats/Samples are retained for the figure harnesses.
	DACCEStats   *core.Stats
	DACCESamples []machine.Sample
	DACCE_       *core.DACCE
}

// RunBenchmark executes one benchmark under PCCE and DACCE and collects
// the Table 1 columns.
func RunBenchmark(pr workload.Profile, cfg RunConfig) (*BenchResult, error) {
	cfg.fill()
	if cfg.Calls > 0 {
		pr.TotalCalls = cfg.Calls
	}
	w, err := workload.Build(pr)
	if err != nil {
		return nil, err
	}
	res := &BenchResult{Profile: pr}
	for _, p := range workload.PaperRows() {
		if p.Name == pr.Name {
			res.Paper = p
		}
	}

	// PCCE: profiling run first, then the measured run.
	prof, err := w.CollectProfile()
	if err != nil {
		return nil, fmt.Errorf("%s: profiling run: %w", pr.Name, err)
	}
	steady := pr.TotalCalls / int64(pr.Threads) / 2
	ps := pcce.New(w.P, pcce.Profile(prof), pcce.Options{})
	pm := w.NewMachine(machine.Instrument(ps, cfg.Sink), machine.Config{SampleEvery: cfg.SampleEvery, DropSamples: !cfg.KeepSamples, SteadyAfterCalls: steady})
	prs, err := pm.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: pcce run: %w", pr.Name, err)
	}
	res.PCCE = SchemeResult{
		Nodes:    ps.Graph().NumNodes(),
		Edges:    ps.Graph().NumEdges(),
		MaxID:    ps.Assignment().UnrestrictedMaxID,
		Overflow: ps.Overflowed(),
		CCPerSec: prs.CCOpsPerSecond(),
		CCDepth:  prs.C.AvgCCDepth(),
		Overhead: prs.SteadyOverhead(),
	}

	// DACCE.
	d := core.New(w.P, core.Options{TrackProgress: true, Sink: cfg.Sink})
	dm := w.NewMachine(machine.Instrument(d, cfg.Sink), machine.Config{SampleEvery: cfg.SampleEvery, DropSamples: !cfg.KeepSamples, SteadyAfterCalls: steady})
	drs, err := dm.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: dacce run: %w", pr.Name, err)
	}
	st := d.Stats()
	res.DACCE = SchemeResult{
		Nodes:    st.Nodes,
		Edges:    st.Edges,
		MaxID:    st.MaxID,
		Overflow: st.Overflowed,
		CCPerSec: drs.CCOpsPerSecond(),
		CCDepth:  drs.C.AvgCCDepth(),
		Overhead: drs.SteadyOverhead(),
		GTS:      st.GTS,
		CostUs:   st.ReencodeCostMicros(),
	}
	res.CallsPerSec = drs.CallsPerSecond()
	res.DACCEStats = st
	res.DACCESamples = drs.Samples
	res.DACCE_ = d
	return res, nil
}

// Table1 runs every profile (or the named subset) and returns the rows.
func Table1(profiles []workload.Profile, cfg RunConfig, progress io.Writer) ([]*BenchResult, error) {
	var out []*BenchResult
	for _, pr := range profiles {
		r, err := RunBenchmark(pr, cfg)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			fmt.Fprintf(progress, "  %-16s done (dacce %d nodes / %d edges, gTS %d)\n",
				pr.Name, r.DACCE.Nodes, r.DACCE.Edges, r.DACCE.GTS)
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderTable1 prints the Table 1 analog.
func RenderTable1(rows []*BenchResult, w io.Writer) error {
	t := stats.NewTable("benchmark",
		"pcceNodes", "pcceEdges", "pcceMaxID", "pcceCC/s", "pcceDep",
		"dNodes", "dEdges", "dMaxID", "dCC/s", "dDep", "gTS", "cost(us)", "calls/s")
	for _, r := range rows {
		t.Row(r.Profile.Name,
			fmt.Sprintf("%d", r.PCCE.Nodes),
			fmt.Sprintf("%d", r.PCCE.Edges),
			stats.SciNotation(r.PCCE.MaxID, r.PCCE.Overflow),
			fmt.Sprintf("%.0f", r.PCCE.CCPerSec),
			fmt.Sprintf("%.2f", r.PCCE.CCDepth),
			fmt.Sprintf("%d", r.DACCE.Nodes),
			fmt.Sprintf("%d", r.DACCE.Edges),
			stats.SciNotation(r.DACCE.MaxID, false),
			fmt.Sprintf("%.0f", r.DACCE.CCPerSec),
			fmt.Sprintf("%.2f", r.DACCE.CCDepth),
			fmt.Sprintf("%d", r.DACCE.GTS),
			fmt.Sprintf("%.0f", r.DACCE.CostUs),
			fmt.Sprintf("%.0f", r.CallsPerSec),
		)
	}
	return t.Write(w)
}

// RenderFig8 prints the runtime-overhead comparison with the geomean
// rows the paper reports (≈2.5% PCCE, ≈2% DACCE).
func RenderFig8(rows []*BenchResult, w io.Writer) error {
	t := stats.NewTable("benchmark", "PCCE", "DACCE", "winner")
	var po, do []float64
	for _, r := range rows {
		winner := "dacce"
		if r.PCCE.Overhead < r.DACCE.Overhead {
			winner = "pcce"
		}
		t.Row(r.Profile.Name, stats.Pct(r.PCCE.Overhead), stats.Pct(r.DACCE.Overhead), winner)
		po = append(po, r.PCCE.Overhead)
		do = append(do, r.DACCE.Overhead)
	}
	t.Row("geomean", stats.Pct(overheadGeoMean(po)), stats.Pct(overheadGeoMean(do)), "")
	return t.Write(w)
}

// overheadGeoMean floors each overhead at 0.2% before the geometric
// mean: many low-call-rate benchmarks measure ≈0%, and a geometric mean
// over true zeros is meaningless (the paper's bars bottom out at a
// visible fraction of a percent too).
func overheadGeoMean(xs []float64) float64 {
	fl := make([]float64, len(xs))
	for i, x := range xs {
		if x < 0.002 {
			x = 0.002
		}
		fl[i] = x
	}
	return stats.GeoMean(fl)
}

// Fig9Names are the four benchmarks the paper plots.
var Fig9Names = []string{"445.gobmk", "483.xalancbmk", "458.sjeng", "433.milc"}

// Fig9 runs one benchmark with progress tracking and returns the
// (sample, nodes, edges, maxID) series.
func Fig9(name string, cfg RunConfig) (*stats.Series, error) {
	cfg.fill()
	pr, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", name)
	}
	if cfg.Calls > 0 {
		pr.TotalCalls = cfg.Calls
	}
	w, err := workload.Build(pr)
	if err != nil {
		return nil, err
	}
	d := core.New(w.P, core.Options{TrackProgress: true, ProgressEvery: 4, Sink: cfg.Sink})
	m := w.NewMachine(machine.Instrument(d, cfg.Sink), machine.Config{SampleEvery: cfg.SampleEvery, DropSamples: true})
	if _, err := m.Run(); err != nil {
		return nil, err
	}
	s := stats.NewSeries("sample", "nodes", "edges", "maxID", "epoch")
	for _, p := range d.Stats().Progress {
		s.Add(float64(p.Sample), float64(p.Nodes), float64(p.Edges), float64(p.MaxID), float64(p.Epoch))
	}
	return s, nil
}

// Fig10Names are the four benchmarks the paper plots.
var Fig10Names = []string{"x264", "445.gobmk", "459.GemsFDTD", "483.xalancbmk"}

// Fig10 runs one benchmark retaining samples and returns the cumulative
// distributions of call-stack depth and ccStack depth.
func Fig10(name string, cfg RunConfig) (*stats.Series, error) {
	cfg.fill()
	cfg.KeepSamples = true
	pr, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", name)
	}
	if cfg.Calls > 0 {
		pr.TotalCalls = cfg.Calls
	}
	w, err := workload.Build(pr)
	if err != nil {
		return nil, err
	}
	d := core.New(w.P, core.Options{Sink: cfg.Sink})
	m := w.NewMachine(machine.Instrument(d, cfg.Sink), machine.Config{SampleEvery: cfg.SampleEvery})
	rs, err := m.Run()
	if err != nil {
		return nil, err
	}
	callH, ccH := stats.NewHist(), stats.NewHist()
	for _, s := range rs.Samples {
		callH.Add(len(s.Shadow))
		if c, ok := s.Capture.(*core.Capture); ok {
			ccH.Add(len(c.CC))
		}
	}
	ser := stats.NewSeries("depth", "callstackCDF", "ccstackCDF")
	maxD := callH.Max()
	if ccH.Max() > maxD {
		maxD = ccH.Max()
	}
	points := 40
	if maxD < points {
		points = maxD + 1
	}
	for i := 0; i < points; i++ {
		dep := maxD * i / maxInt(points-1, 1)
		ser.Add(float64(dep), callH.CDFAt(dep), ccH.CDFAt(dep))
	}
	return ser, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
