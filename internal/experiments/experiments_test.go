package experiments

import (
	"strings"
	"testing"

	"dacce/internal/workload"
)

func TestRunBenchmarkShape(t *testing.T) {
	pr, _ := workload.ByName("456.hmmer")
	r, err := RunBenchmark(pr, RunConfig{Calls: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	// The headline shape of Table 1 on a single row.
	if r.DACCE.Nodes >= r.PCCE.Nodes {
		t.Errorf("dynamic nodes %d not < static %d", r.DACCE.Nodes, r.PCCE.Nodes)
	}
	if r.DACCE.Edges >= r.PCCE.Edges {
		t.Errorf("dynamic edges %d not < static %d", r.DACCE.Edges, r.PCCE.Edges)
	}
	if !r.PCCE.Overflow && r.DACCE.MaxID >= r.PCCE.MaxID {
		t.Errorf("dacce maxID %d not < pcce %d", r.DACCE.MaxID, r.PCCE.MaxID)
	}
	if r.DACCE.GTS == 0 {
		t.Error("no re-encodings on a discovering workload")
	}
	if r.CallsPerSec <= 0 {
		t.Error("calls/s not computed")
	}
	if r.Paper.Name != "456.hmmer" {
		t.Errorf("paper row not attached: %+v", r.Paper)
	}
}

func TestRenderers(t *testing.T) {
	pr, _ := workload.ByName("429.mcf")
	r, err := RunBenchmark(pr, RunConfig{Calls: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	var t1, f8 strings.Builder
	if err := RenderTable1([]*BenchResult{r}, &t1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t1.String(), "429.mcf") {
		t.Errorf("table 1 missing benchmark row:\n%s", t1.String())
	}
	if err := RenderFig8([]*BenchResult{r}, &f8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f8.String(), "geomean") {
		t.Errorf("fig 8 missing geomean:\n%s", f8.String())
	}
}

func TestFig9Series(t *testing.T) {
	s, err := Fig9("433.milc", RunConfig{Calls: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 3 {
		t.Fatalf("progress series has %d points", s.Len())
	}
	out := s.String()
	if !strings.HasPrefix(out, "sample\tnodes\tedges\tmaxID\tepoch") {
		t.Errorf("series header wrong: %q", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestFig10Series(t *testing.T) {
	s, err := Fig10("445.gobmk", RunConfig{Calls: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 2 {
		t.Fatalf("CDF series has %d points", s.Len())
	}
	// Final CDF values must reach 1.
	lines := strings.Split(strings.TrimSpace(s.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, "\t1\t1") {
		t.Errorf("CDFs do not reach 1: %q", last)
	}
}

func TestFig9UnknownBenchmark(t *testing.T) {
	if _, err := Fig9("nope", RunConfig{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestWriteReportEndToEnd runs the full EXPERIMENTS.md generator on a
// reduced call budget: every section must render with its headline
// numbers filled in.
func TestWriteReportEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full 41-benchmark sweep")
	}
	var sb strings.Builder
	if err := WriteReport(&sb, RunConfig{Calls: 12_000}, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"## Table 1", "## Figure 8", "## Figure 9", "## Figure 10",
		"400.perlbench", "streamcluster", "geomean", "Shape check",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The reduced budget shortens the figure series; the structural
	// floor still catches an empty or truncated report.
	if len(out) < 9_000 {
		t.Errorf("report suspiciously small: %d bytes", len(out))
	}
}
