package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/persist"
	"dacce/internal/telemetry"
	"dacce/internal/workload"
)

// WarmupConfig parameterizes the cold-start scalability suite: a
// discovery-dense workload run from an empty call graph at 1/2/4/8
// threads, measuring how fast the runtime handler absorbs the burst of
// first invocations. Each thread count is measured under the sharded
// trap path (per-shard graph locks, per-thread publication buffers,
// coalesced re-encoding) and — with Compare — under the global-lock
// baseline (SerializedDiscovery), plus a warm-start replay of the same
// workload from the cold run's snapshot, which must trap zero times.
type WarmupConfig struct {
	// Threads lists the thread counts to sweep (default 1, 2, 4, 8).
	Threads []int
	// CallsPerThread is each thread's call budget (default 25k — small
	// on purpose: the suite measures cold start, so discovery and
	// re-encoding should dominate the run, not steady-state calls).
	CallsPerThread int64
	// SampleEvery is the sampling period in calls (default 64; the
	// sampling controller's trigger checks are part of the cold-start
	// path under test, but the suite is not a sampling benchmark).
	SampleEvery int64
	// Compare additionally runs every configuration with
	// core.Options.SerializedDiscovery — every trap through the global
	// scheme mutex, every trigger firing its own stop-the-world pass —
	// and reports the sharded/global trap-throughput ratio.
	Compare bool
	// NoReplay skips the warm-start replay rows.
	NoReplay bool
}

func (c *WarmupConfig) fill() {
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8}
	}
	if c.CallsPerThread == 0 {
		c.CallsPerThread = 25_000
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 64
	}
}

// WarmupRow is one measured (thread count, mode, phase) configuration.
type WarmupRow struct {
	Threads int `json:"threads"`
	// Mode is "sharded" (the build under test) or "global" (the
	// SerializedDiscovery baseline).
	Mode string `json:"mode"`
	// Phase is "cold" (empty graph, every edge discovered by trap) or
	// "replay" (same workload warm-started from the cold run's
	// marshaled snapshot; must trap zero times).
	Phase string `json:"phase"`
	Calls int64  `json:"calls"`
	// HandlerTraps counts runtime-handler invocations; TrapsPerSec is
	// the suite's headline cold-start metric.
	HandlerTraps    int64   `json:"handler_traps"`
	TrapsPerSec     float64 `json:"traps_per_sec"`
	EdgesDiscovered int     `json:"edges_discovered"`
	// Patches counts stub rewrites (trap installation + discovery and
	// re-encoding rebuilds).
	Patches     int64   `json:"patches"`
	Epochs      uint32  `json:"epochs"`
	Passes      int     `json:"reencode_passes"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	CallsPerSec float64 `json:"calls_per_sec"`
	// TimeToStableMs is the wall time from run start to the end of the
	// last re-encoding pass — after it the encoding never changed
	// again, so it is the cold-start settling time.
	TimeToStableMs float64 `json:"time_to_stable_ms"`
	// PauseP50Us/PauseP99Us/PauseMaxUs are STW re-encode pause quantiles
	// from the encoder's always-on pause histogram: what each
	// re-encoding pass cost the threads it stopped, not just how many
	// passes ran.
	PauseP50Us float64 `json:"pause_p50_us"`
	PauseP99Us float64 `json:"pause_p99_us"`
	PauseMaxUs float64 `json:"pause_max_us"`
}

// WarmupReport is the suite's result, serialized as BENCH_warmup.json.
type WarmupReport struct {
	Config     WarmupConfig `json:"config"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Rows       []WarmupRow  `json:"rows"`
	// TrapSpeedup maps a thread count to the sharded/global cold-start
	// trap-throughput ratio (present when Compare is set).
	TrapSpeedup map[string]float64 `json:"trap_speedup,omitempty"`
	// ReplayTraps maps a thread count to the handler traps of the
	// warm-start replay (the persistence gate: must be zero).
	ReplayTraps map[string]int64 `json:"replay_traps,omitempty"`
}

// warmupProfile is the synthetic cold-start workload for n threads: a
// wide, edge-dense executed core so the first thousands of calls are
// almost all first invocations, and a thick indirect-site population
// whose per-site rebuilds are where the sharded path and the global
// lock differ most. The per-thread call budget is deliberately small —
// the suite measures the discovery burst, not the steady state after
// it.
func warmupProfile(n int, callsPerThread int64) workload.Profile {
	return workload.Profile{
		Name:          fmt.Sprintf("warmup-%dt", n),
		Seed:          0xC0DD,
		ExecFuncs:     520,
		ExecEdges:     2_600,
		Layers:        12,
		IndirectSites: 48,
		ActualTargets: 6,
		RecSites:      2,
		RecProb:       0.3,
		RecStartProb:  0.05,
		Threads:       n,
		TotalCalls:    callsPerThread * int64(n),
		Phases:        1,
	}
}

// passClock is a telemetry sink that timestamps re-encoding passes so
// the suite can report time-to-stable-epoch. Telemetry events carry no
// wall time (the encoder is clock-free); the suite supplies its own.
type passClock struct {
	start time.Time

	mu     sync.Mutex
	lastMs float64
	passes int
}

func (c *passClock) Emit(ev telemetry.Event) {
	if ev.Kind != telemetry.EvReencodeEnd {
		return
	}
	c.mu.Lock()
	c.lastMs = time.Since(c.start).Seconds() * 1e3
	c.passes++
	c.mu.Unlock()
}

// Warmup runs the cold-start scalability suite and returns the report.
func Warmup(cfg WarmupConfig) (*WarmupReport, error) {
	cfg.fill()
	rep := &WarmupReport{
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if cfg.Compare {
		rep.TrapSpeedup = map[string]float64{}
	}
	if !cfg.NoReplay {
		rep.ReplayTraps = map[string]int64{}
	}

	for _, n := range cfg.Threads {
		pr := warmupProfile(n, cfg.CallsPerThread)
		w, err := workload.Build(pr)
		if err != nil {
			return nil, err
		}

		run := func(mode, phase string, d *core.DACCE, clock *passClock) (*WarmupRow, error) {
			m := w.NewMachine(d, machine.Config{
				SampleEvery: cfg.SampleEvery,
				DropSamples: true,
			})
			clock.start = time.Now()
			rs, err := m.Run()
			elapsed := time.Since(clock.start)
			if err != nil {
				return nil, err
			}
			st := d.Stats()
			ph := d.PauseHist().Snapshot()
			row := WarmupRow{
				Threads:         n,
				Mode:            mode,
				Phase:           phase,
				Calls:           rs.C.Calls,
				HandlerTraps:    rs.C.HandlerTraps,
				TrapsPerSec:     float64(rs.C.HandlerTraps) / elapsed.Seconds(),
				EdgesDiscovered: st.EdgesDiscovered,
				Patches:         rs.Patches,
				Epochs:          d.Epoch(),
				Passes:          clock.passes,
				ElapsedMs:       float64(elapsed.Microseconds()) / 1e3,
				CallsPerSec:     float64(rs.C.Calls) / elapsed.Seconds(),
				TimeToStableMs:  clock.lastMs,
				PauseP50Us:      float64(ph.P50) / 1e3,
				PauseP99Us:      float64(ph.P99) / 1e3,
				PauseMaxUs:      float64(ph.Max) / 1e3,
			}
			rep.Rows = append(rep.Rows, row)
			return &row, nil
		}

		// Sharded cold start: empty graph, every edge enters through the
		// batched trap path.
		clock := &passClock{}
		d := core.New(w.P, core.Options{Sink: telemetry.Filter(clock, telemetry.EvReencodeEnd)})
		cold, err := run("sharded", "cold", d, clock)
		if err != nil {
			return nil, err
		}

		// Warm-start replay: marshal the cold encoder's snapshot through
		// the persistence codec (what -save-state writes), restore it
		// into a fresh encoder, and replay the identical workload. The
		// restored stub table must re-patch every site before first
		// touch — zero handler traps.
		if !cfg.NoReplay {
			data, err := persist.Marshal(d.ExportState())
			if err != nil {
				return nil, err
			}
			st, err := persist.Unmarshal(data)
			if err != nil {
				return nil, err
			}
			d2, err := core.Restore(w.P, core.Options{}, st)
			if err != nil {
				return nil, err
			}
			replay, err := run("sharded", "replay", d2, &passClock{})
			if err != nil {
				return nil, err
			}
			rep.ReplayTraps[fmt.Sprint(n)] = replay.HandlerTraps
		}

		// Global-lock baseline: the identical cold start with every trap
		// serialized on the scheme mutex and every trigger firing paying
		// its own stop-the-world pass.
		if cfg.Compare {
			gclock := &passClock{}
			dg := core.New(w.P, core.Options{
				SerializedDiscovery: true,
				Sink:                telemetry.Filter(gclock, telemetry.EvReencodeEnd),
			})
			global, err := run("global", "cold", dg, gclock)
			if err != nil {
				return nil, err
			}
			if global.TrapsPerSec > 0 {
				rep.TrapSpeedup[fmt.Sprint(n)] = cold.TrapsPerSec / global.TrapsPerSec
			}
		}
	}
	return rep, nil
}
