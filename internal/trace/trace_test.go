package trace

import (
	"bytes"
	"testing"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/progtest"
	"dacce/internal/workload"
)

// record runs a program under the recorder.
func record(t *testing.T, p *prog.Program, cfg machine.Config) *Trace {
	t.Helper()
	r := NewRecorder()
	m := machine.New(p, r, cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return r.Trace()
}

func TestRecordReplayIdentical(t *testing.T) {
	pr, _ := workload.ByName("456.hmmer")
	pr.TotalCalls = 20_000
	w := workload.MustBuild(pr)

	tr := record(t, w.P, machine.Config{Seed: pr.Seed + 1})
	if tr.NumEvents() == 0 {
		t.Fatal("empty trace")
	}

	rp, err := ReplayProgram(w.P, tr)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(rp, machine.NullScheme{}, machine.Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The replay performs exactly the recorded calls.
	var wantCalls int64
	for _, s := range tr.Streams {
		for _, ev := range s {
			if ev.Kind == EvCall {
				wantCalls++
			}
		}
	}
	if rs.C.Calls != wantCalls {
		t.Errorf("replayed %d calls, recorded %d", rs.C.Calls, wantCalls)
	}
}

func TestReplayUnderDACCEDecodes(t *testing.T) {
	pr, _ := workload.ByName("445.gobmk")
	pr.TotalCalls = 15_000
	w := workload.MustBuild(pr)
	tr := record(t, w.P, machine.Config{Seed: pr.Seed + 1})

	rp, err := ReplayProgram(w.P, tr)
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(rp, core.Options{})
	m := machine.New(rp, d, machine.Config{SampleEvery: 23})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Samples) == 0 {
		t.Fatal("no samples during replay")
	}
	for _, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("sample %d: %v", s.Seq, err)
		}
		if want := core.ShadowContext(nil, s.Shadow); !ctx.Equal(want) {
			t.Errorf("sample %d: %v != %v", s.Seq, ctx, want)
		}
	}
}

func TestReplayTailCalls(t *testing.T) {
	fx, b := progtest.Fig7()
	p := b.MustBuild()
	fx.P = p
	sc := progtest.NewScript(p)
	sc.Root = []progtest.Call{
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"), progtest.By(fx.S("DF")))),
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DE")))),
	}
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	tr := record(t, p, machine.Config{})

	rp, err := ReplayProgram(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	var deepest []machine.Frame
	d := core.New(rp, core.Options{})
	m := machine.New(rp, d, machine.Config{SampleEvery: 1})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.TailCalls != 1 {
		t.Errorf("replayed %d tail calls, want 1", rs.C.TailCalls)
	}
	for _, s := range rs.Samples {
		if len(s.Shadow) > len(deepest) {
			deepest = s.Shadow
		}
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		if want := core.ShadowContext(nil, s.Shadow); !ctx.Equal(want) {
			t.Errorf("decoded %v != %v", ctx, want)
		}
	}
	// The deepest sampled context includes the tail-calling chain.
	if len(deepest) != 3 {
		t.Errorf("deepest replayed context %v, want depth 3 (A,C/B,D)", deepest)
	}
}

func TestReplayThreads(t *testing.T) {
	pr, _ := workload.ByName("dedup") // 4 threads
	pr.TotalCalls = 8_000
	w := workload.MustBuild(pr)
	tr := record(t, w.P, machine.Config{Seed: pr.Seed + 1})
	if tr.NumThreads() != 4 {
		t.Fatalf("recorded %d threads, want 4", tr.NumThreads())
	}
	rp, err := ReplayProgram(w.P, tr)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(rp, machine.NullScheme{}, machine.Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Threads != 4 {
		t.Errorf("replayed %d threads, want 4", rs.Threads)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	pr, _ := workload.ByName("429.mcf")
	pr.TotalCalls = 5_000
	w := workload.MustBuild(pr)
	tr := record(t, w.P, machine.Config{Seed: 1})

	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NumThreads() != tr.NumThreads() || tr2.NumEvents() != tr.NumEvents() {
		t.Fatalf("roundtrip lost data: %d/%d events, %d/%d threads",
			tr2.NumEvents(), tr.NumEvents(), tr2.NumThreads(), tr.NumThreads())
	}
	for i := range tr.Streams {
		if tr.Entries[i] != tr2.Entries[i] {
			t.Fatalf("thread %d entry differs", i)
		}
		for j := range tr.Streams[i] {
			if tr.Streams[i][j] != tr2.Streams[i][j] {
				t.Fatalf("thread %d event %d differs: %+v vs %+v", i, j, tr.Streams[i][j], tr2.Streams[i][j])
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})); err == nil {
		t.Error("implausible thread count accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	pr, _ := workload.ByName("429.mcf")
	w := workload.MustBuild(pr)
	if _, err := ReplayProgram(w.P, &Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReplayRejectsCorruptTrace(t *testing.T) {
	pr, _ := workload.ByName("429.mcf")
	w := MustBuildHelper(pr)
	bad := []*Trace{
		{Entries: []prog.FuncID{0}, Streams: [][]Event{{{Kind: EvCall, Site: 9999, Target: 0}}}},
		{Entries: []prog.FuncID{0}, Streams: [][]Event{{{Kind: EvCall, Site: 0, Target: -3}}}},
		{Entries: []prog.FuncID{9999}, Streams: [][]Event{{}}},
		{Entries: []prog.FuncID{0}, Streams: [][]Event{{{Kind: EvReturn}}}},
		{Entries: []prog.FuncID{0}, Streams: [][]Event{{{Kind: EventKind(99)}}}},
		{Entries: []prog.FuncID{0, 1}, Streams: [][]Event{{}}},
	}
	for i, tr := range bad {
		if _, err := ReplayProgram(w.P, tr); err == nil {
			t.Errorf("corrupt trace %d accepted", i)
		}
	}
}

// MustBuildHelper keeps the test import list tidy.
func MustBuildHelper(pr workload.Profile) *workload.Workload {
	pr.TotalCalls = 100
	return workload.MustBuild(pr)
}

func TestSyntheticWorkCharged(t *testing.T) {
	pr, _ := workload.ByName("429.mcf")
	pr.TotalCalls = 2_000
	w := workload.MustBuild(pr)
	tr := record(t, w.P, machine.Config{Seed: 1})
	rp, err := ReplayProgram(w.P, tr)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(rp, machine.NullScheme{}, machine.Config{})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.WorkUnits != 0 {
		t.Fatalf("replay without synthetic work charged %d units", rs.C.WorkUnits)
	}

	tr.SyntheticWork = 50
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.SyntheticWork != 50 {
		t.Fatalf("SyntheticWork lost in serialization: %d", tr2.SyntheticWork)
	}
	rp2, err := ReplayProgram(w.P, tr2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := machine.New(rp2, machine.NullScheme{}, machine.Config{})
	rs2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := 50 * rs2.C.Calls; rs2.C.WorkUnits != want {
		t.Fatalf("synthetic work = %d, want %d", rs2.C.WorkUnits, want)
	}
}
